#include "model/action.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/check.hpp"

namespace meda {
namespace {

TEST(Action, ClassPartition) {
  int cardinal = 0, dbl = 0, ordinal = 0, widen = 0, heighten = 0;
  for (Action a : kAllActions) {
    switch (action_class(a)) {
      case ActionClass::kCardinal: ++cardinal; break;
      case ActionClass::kDouble: ++dbl; break;
      case ActionClass::kOrdinal: ++ordinal; break;
      case ActionClass::kWiden: ++widen; break;
      case ActionClass::kHeighten: ++heighten; break;
    }
  }
  // A = A_d ∪ A_dd ∪ A_dd' ∪ A_↓ ∪ A_↑, four actions each.
  EXPECT_EQ(cardinal, 4);
  EXPECT_EQ(dbl, 4);
  EXPECT_EQ(ordinal, 4);
  EXPECT_EQ(widen, 4);
  EXPECT_EQ(heighten, 4);
}

TEST(Action, CardinalOf) {
  EXPECT_EQ(cardinal_of(Action::kN), Dir::N);
  EXPECT_EQ(cardinal_of(Action::kSS), Dir::S);
  EXPECT_EQ(cardinal_of(Action::kEE), Dir::E);
  EXPECT_EQ(cardinal_of(Action::kW), Dir::W);
  EXPECT_THROW(cardinal_of(Action::kNE), PreconditionError);
  EXPECT_THROW(cardinal_of(Action::kWidenNE), PreconditionError);
}

TEST(Action, OrdinalOf) {
  EXPECT_EQ(ordinal_of(Action::kNE), Ordinal::NE);
  EXPECT_EQ(ordinal_of(Action::kWidenSW), Ordinal::SW);
  EXPECT_EQ(ordinal_of(Action::kHeightenNW), Ordinal::NW);
  EXPECT_THROW(ordinal_of(Action::kN), PreconditionError);
  EXPECT_THROW(ordinal_of(Action::kEE), PreconditionError);
}

TEST(Action, MovementsTranslateWithoutReshaping) {
  const Rect d{3, 2, 7, 5};
  EXPECT_EQ(apply(Action::kN, d), d.shifted(0, 1));
  EXPECT_EQ(apply(Action::kS, d), d.shifted(0, -1));
  EXPECT_EQ(apply(Action::kE, d), d.shifted(1, 0));
  EXPECT_EQ(apply(Action::kW, d), d.shifted(-1, 0));
  EXPECT_EQ(apply(Action::kNN, d), d.shifted(0, 2));
  EXPECT_EQ(apply(Action::kSS, d), d.shifted(0, -2));
  EXPECT_EQ(apply(Action::kEE, d), d.shifted(2, 0));
  EXPECT_EQ(apply(Action::kWW, d), d.shifted(-2, 0));
  EXPECT_EQ(apply(Action::kNE, d), d.shifted(1, 1));
  EXPECT_EQ(apply(Action::kNW, d), d.shifted(-1, 1));
  EXPECT_EQ(apply(Action::kSE, d), d.shifted(1, -1));
  EXPECT_EQ(apply(Action::kSW, d), d.shifted(-1, -1));
  for (Action a : {Action::kN, Action::kNN, Action::kNE, Action::kSW}) {
    const Rect r = apply(a, d);
    EXPECT_EQ(r.width(), d.width());
    EXPECT_EQ(r.height(), d.height());
  }
}

TEST(Action, WidenIncreasesWidthDecreasesHeight) {
  const Rect d{3, 2, 7, 5};  // 5×4
  for (Action a : {Action::kWidenNE, Action::kWidenNW, Action::kWidenSE,
                   Action::kWidenSW}) {
    const Rect r = apply(a, d);
    EXPECT_EQ(r.width(), d.width() + 1) << to_string(a);
    EXPECT_EQ(r.height(), d.height() - 1) << to_string(a);
    // Width + height is conserved by morphing.
    EXPECT_EQ(r.width() + r.height(), d.width() + d.height());
  }
}

TEST(Action, HeightenIncreasesHeightDecreasesWidth) {
  const Rect d{3, 2, 7, 5};
  for (Action a : {Action::kHeightenNE, Action::kHeightenNW,
                   Action::kHeightenSE, Action::kHeightenSW}) {
    const Rect r = apply(a, d);
    EXPECT_EQ(r.width(), d.width() - 1) << to_string(a);
    EXPECT_EQ(r.height(), d.height() + 1) << to_string(a);
  }
}

TEST(Action, MorphDirectionAnchorsTheNamedCorner) {
  const Rect d{3, 2, 7, 5};
  // a_↓NE extends east and releases the south row (droplet creeps NE).
  EXPECT_EQ(apply(Action::kWidenNE, d), (Rect{3, 3, 8, 5}));
  EXPECT_EQ(apply(Action::kWidenNW, d), (Rect{2, 3, 7, 5}));
  EXPECT_EQ(apply(Action::kWidenSE, d), (Rect{3, 2, 8, 4}));
  EXPECT_EQ(apply(Action::kWidenSW, d), (Rect{2, 2, 7, 4}));
  // a_↑NE extends north and releases the west column.
  EXPECT_EQ(apply(Action::kHeightenNE, d), (Rect{4, 2, 7, 6}));
  EXPECT_EQ(apply(Action::kHeightenNW, d), (Rect{3, 2, 6, 6}));
  EXPECT_EQ(apply(Action::kHeightenSE, d), (Rect{4, 1, 7, 5}));
  EXPECT_EQ(apply(Action::kHeightenSW, d), (Rect{3, 1, 6, 5}));
}

TEST(Action, MorphAreaChangesByAtMostMaxDimension) {
  // |A' − A| = |h − w − 1| for widen; morphing approximately conserves
  // droplet volume for near-square droplets.
  const Rect square{0, 0, 4, 4};  // 5×5
  EXPECT_EQ(apply(Action::kWidenNE, square).area(), 24);      // 6×4
  EXPECT_EQ(apply(Action::kHeightenSW, square).area(), 24);   // 4×6
}

TEST(Action, MorphOnDegenerateDropletThrows) {
  const Rect row{0, 0, 4, 0};  // height 1
  EXPECT_THROW(apply(Action::kWidenNE, row), PreconditionError);
  const Rect column{0, 0, 0, 4};  // width 1
  EXPECT_THROW(apply(Action::kHeightenNE, column), PreconditionError);
}

TEST(Action, NamesAreUnique) {
  std::set<std::string_view> names;
  for (Action a : kAllActions) names.insert(to_string(a));
  EXPECT_EQ(names.size(), kAllActions.size());
}

}  // namespace
}  // namespace meda
