#include "model/guards.hpp"

#include <gtest/gtest.h>

#include "model/frontier.hpp"
#include "util/check.hpp"

namespace meda {
namespace {

const ActionRules kDefaultRules{};  // r = 3/2, everything enabled

TEST(Guards, MovementsAreUnguarded) {
  const Rect d{3, 2, 7, 5};
  for (Action a : {Action::kN, Action::kS, Action::kE, Action::kW,
                   Action::kNE, Action::kNW, Action::kSE, Action::kSW}) {
    EXPECT_TRUE(guard_satisfied(a, d, kDefaultRules)) << to_string(a);
  }
}

TEST(Guards, DoubleStepRequiresHalfLength) {
  // g_NN/g_SS: h >= 4; g_EE/g_WW: w >= 4 (a droplet can reliably move at
  // most half its length per cycle).
  const Rect tall{0, 0, 2, 3};  // 3×4
  EXPECT_TRUE(guard_satisfied(Action::kNN, tall, kDefaultRules));
  EXPECT_TRUE(guard_satisfied(Action::kSS, tall, kDefaultRules));
  EXPECT_FALSE(guard_satisfied(Action::kEE, tall, kDefaultRules));
  EXPECT_FALSE(guard_satisfied(Action::kWW, tall, kDefaultRules));
  const Rect wide{0, 0, 3, 2};  // 4×3
  EXPECT_FALSE(guard_satisfied(Action::kNN, wide, kDefaultRules));
  EXPECT_TRUE(guard_satisfied(Action::kEE, wide, kDefaultRules));
}

// The paper's worked guard example: r = 3/2 and δ = (3, 2, 7, 5) gives
// g_↑ = 1 and g_↓ = 0.
TEST(Guards, PaperGuardExample) {
  const Rect d{3, 2, 7, 5};
  ActionRules rules;
  rules.max_aspect_ratio = 1.5;
  for (Action a : {Action::kHeightenNE, Action::kHeightenNW,
                   Action::kHeightenSE, Action::kHeightenSW}) {
    EXPECT_TRUE(guard_satisfied(a, d, rules)) << to_string(a);
  }
  for (Action a : {Action::kWidenNE, Action::kWidenNW, Action::kWidenSE,
                   Action::kWidenSW}) {
    EXPECT_FALSE(guard_satisfied(a, d, rules)) << to_string(a);
  }
}

TEST(Guards, SquareDropletsCannotMorphUnderDefaultRatio) {
  // (h + 1)/(w − 1) for a w×w droplet exceeds 3/2 for w <= 4; 5×5 sits
  // exactly on the boundary (1.5 <= 1.5 holds).
  for (int w : {2, 3, 4}) {
    const Rect d = Rect::from_size(0, 0, w, w);
    EXPECT_FALSE(guard_satisfied(Action::kHeightenNE, d, kDefaultRules));
    EXPECT_FALSE(guard_satisfied(Action::kWidenNE, d, kDefaultRules));
  }
  const Rect five = Rect::from_size(0, 0, 5, 5);
  EXPECT_TRUE(guard_satisfied(Action::kHeightenNE, five, kDefaultRules));
}

TEST(Guards, MorphGuardPreventsDegenerateResults) {
  ActionRules permissive;
  permissive.max_aspect_ratio = 100.0;
  const Rect row{0, 0, 4, 0};  // 5×1
  EXPECT_FALSE(guard_satisfied(Action::kWidenNE, row, permissive));
  const Rect col{0, 0, 0, 4};  // 1×5
  EXPECT_FALSE(guard_satisfied(Action::kHeightenNE, col, permissive));
}

TEST(Guards, GuardBoundsPostMorphAspectRatio) {
  ActionRules rules;
  rules.max_aspect_ratio = 2.0;
  // For every droplet where the guard passes, the morphed droplet's aspect
  // ratio stays within [1/r, r].
  for (int w = 2; w <= 7; ++w) {
    for (int h = 2; h <= 7; ++h) {
      const Rect d = Rect::from_size(0, 0, w, h);
      if (guard_satisfied(Action::kHeightenNE, d, rules)) {
        const Rect r = apply(Action::kHeightenNE, d);
        EXPECT_LE(r.aspect_ratio(), 2.0 + 1e-12);
        EXPECT_GE(r.aspect_ratio(), 0.5 - 1e-12);
      }
      if (guard_satisfied(Action::kWidenNE, d, rules)) {
        const Rect r = apply(Action::kWidenNE, d);
        EXPECT_LE(r.aspect_ratio(), 2.0 + 1e-12);
      }
    }
  }
}

TEST(ActionEnabled, RespectsClassSwitches) {
  const Rect d{5, 5, 8, 8};  // 4×4
  const Rect chip{0, 0, 29, 29};
  ActionRules rules;
  rules.enable_double_steps = false;
  EXPECT_FALSE(action_enabled(Action::kEE, d, rules, chip));
  EXPECT_TRUE(action_enabled(Action::kE, d, rules, chip));
  rules = ActionRules{};
  rules.enable_ordinal = false;
  EXPECT_FALSE(action_enabled(Action::kNE, d, rules, chip));
  rules = ActionRules{};
  rules.enable_morphing = false;
  const Rect morphable{5, 5, 9, 8};  // 5×4: g_↑ holds under r = 3/2
  EXPECT_FALSE(action_enabled(Action::kHeightenNE, morphable, rules, chip));
  rules = ActionRules{};
  EXPECT_TRUE(action_enabled(Action::kHeightenNE, morphable, rules, chip));
}

TEST(ActionEnabled, DisabledWhenFrontierFallsOffChip) {
  const Rect chip{0, 0, 9, 9};
  // Droplet flush against the north edge: no MCs exist to pull it north.
  const Rect at_top{2, 6, 5, 9};
  EXPECT_FALSE(action_enabled(Action::kN, at_top, ActionRules{}, chip));
  EXPECT_FALSE(action_enabled(Action::kNE, at_top, ActionRules{}, chip));
  EXPECT_FALSE(action_enabled(Action::kNW, at_top, ActionRules{}, chip));
  EXPECT_TRUE(action_enabled(Action::kS, at_top, ActionRules{}, chip));
  EXPECT_TRUE(action_enabled(Action::kE, at_top, ActionRules{}, chip));
}

TEST(ActionEnabled, DoubleStepNeedsTwoCellsOfClearance) {
  const Rect chip{0, 0, 9, 9};
  // 4×4 droplet one cell from the east edge: the single step fits, but the
  // double step's final pattern would leave the chip.
  const Rect d{5, 3, 8, 6};
  EXPECT_TRUE(action_enabled(Action::kE, d, ActionRules{}, chip));
  EXPECT_FALSE(action_enabled(Action::kEE, d, ActionRules{}, chip));
  // Two cells of clearance: both steps fit.
  const Rect d2{4, 3, 7, 6};
  EXPECT_TRUE(action_enabled(Action::kEE, d2, ActionRules{}, chip));
}

TEST(ActionEnabled, InteriorDropletHasAllMovementActions) {
  const Rect chip{0, 0, 29, 29};
  const Rect d{10, 10, 13, 13};  // 4×4 deep inside
  int enabled = 0;
  for (Action a : kAllActions)
    if (action_enabled(a, d, ActionRules{}, chip)) ++enabled;
  // 4 cardinal + 4 double + 4 ordinal; morphs blocked by the 3/2 guard.
  EXPECT_EQ(enabled, 12);
}

TEST(Guards, RejectsInvalidAspectBound) {
  ActionRules rules;
  rules.max_aspect_ratio = 0.5;
  const Rect droplet{0, 0, 3, 3};
  EXPECT_THROW(guard_satisfied(Action::kWidenNE, droplet, rules),
               PreconditionError);
}

}  // namespace
}  // namespace meda
