#include "model/actuation.hpp"

#include <gtest/gtest.h>

#include <array>

#include "util/check.hpp"

namespace meda {
namespace {

TEST(Actuation, HeldDropletKeepsItsPattern) {
  const Rect droplet{3, 2, 7, 5};
  EXPECT_EQ(actuated_pattern(droplet, std::nullopt), droplet);
}

TEST(Actuation, CommandedDropletChargesTheTarget) {
  const Rect droplet{3, 2, 7, 5};
  EXPECT_EQ(actuated_pattern(droplet, Action::kNE), droplet.shifted(1, 1));
  EXPECT_EQ(actuated_pattern(droplet, Action::kEE), droplet.shifted(2, 0));
  EXPECT_EQ(actuated_pattern(droplet, Action::kWidenNE),
            apply(Action::kWidenNE, droplet));
}

// Example 1's actuation matrix: U_ij = 1 exactly on [3,7]×[2,5].
TEST(Actuation, PaperExample1Matrix) {
  const std::array<DropletCommand, 1> commands = {
      DropletCommand{Rect{3, 2, 7, 5}, std::nullopt}};
  const BoolMatrix u = build_actuation_matrix(12, 10, commands);
  EXPECT_EQ(actuated_count(u), 20);
  for (int y = 0; y < 10; ++y)
    for (int x = 0; x < 12; ++x)
      EXPECT_EQ(u(x, y) != 0, x >= 3 && x <= 7 && y >= 2 && y <= 5);
}

TEST(Actuation, MultipleDropletsMerge) {
  const std::array<DropletCommand, 2> commands = {
      DropletCommand{Rect{0, 0, 1, 1}, Action::kE},   // target (1,0,2,1)
      DropletCommand{Rect{5, 5, 6, 6}, std::nullopt}};
  const BoolMatrix u = build_actuation_matrix(10, 10, commands);
  EXPECT_EQ(actuated_count(u), 8);
  EXPECT_TRUE(u(1, 0));
  EXPECT_TRUE(u(2, 1));
  EXPECT_FALSE(u(0, 0));  // vacated column is released
  EXPECT_TRUE(u(5, 5));
}

TEST(Actuation, OverlappingPatternsCountOnce) {
  const std::array<DropletCommand, 2> commands = {
      DropletCommand{Rect{0, 0, 2, 2}, std::nullopt},
      DropletCommand{Rect{1, 1, 3, 3}, std::nullopt}};
  const BoolMatrix u = build_actuation_matrix(10, 10, commands);
  EXPECT_EQ(actuated_count(u), 9 + 9 - 4);
}

TEST(Actuation, PatternsClipToTheChip) {
  const std::array<DropletCommand, 1> commands = {
      DropletCommand{Rect{8, 8, 9, 9}, Action::kNE}};  // target partly off
  const BoolMatrix u = build_actuation_matrix(10, 10, commands);
  EXPECT_EQ(actuated_count(u), 1);  // only (9, 9) remains on-chip
  EXPECT_TRUE(u(9, 9));
}

TEST(Actuation, EmptyCommandListGivesZeroMatrix) {
  const BoolMatrix u = build_actuation_matrix(6, 4, {});
  EXPECT_EQ(actuated_count(u), 0);
}

TEST(Actuation, RejectsInvalidInput) {
  EXPECT_THROW(build_actuation_matrix(0, 5, {}), PreconditionError);
  EXPECT_THROW(actuated_pattern(Rect::none(), std::nullopt),
               PreconditionError);
}

}  // namespace
}  // namespace meda
