#include "model/frontier.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace meda {
namespace {

// The running example droplet δ = (3, 2, 7, 5) used throughout Section V.
const Rect kDelta{3, 2, 7, 5};

// Example 2: Fr(δ; a_NE, E) = [8,8]×[3,6], Fr(δ; a_NE, N) = [4,8]×[6,6].
TEST(Frontier, PaperExample2) {
  EXPECT_EQ(frontier(kDelta, Action::kNE, Dir::E), (Rect{8, 3, 8, 6}));
  EXPECT_EQ(frontier(kDelta, Action::kNE, Dir::N), (Rect{4, 6, 8, 6}));
}

// Table II rows for δ = (x_a, y_a, x_b, y_b) = (3, 2, 7, 5).
TEST(Frontier, TableIICardinals) {
  EXPECT_EQ(frontier(kDelta, Action::kN, Dir::N), (Rect{3, 6, 7, 6}));
  EXPECT_EQ(frontier(kDelta, Action::kS, Dir::S), (Rect{3, 1, 7, 1}));
  EXPECT_EQ(frontier(kDelta, Action::kE, Dir::E), (Rect{8, 2, 8, 5}));
  EXPECT_EQ(frontier(kDelta, Action::kW, Dir::W), (Rect{2, 2, 2, 5}));
  // Perpendicular frontiers are empty.
  EXPECT_FALSE(frontier(kDelta, Action::kN, Dir::E).valid());
  EXPECT_FALSE(frontier(kDelta, Action::kN, Dir::W).valid());
  EXPECT_FALSE(frontier(kDelta, Action::kE, Dir::N).valid());
  EXPECT_FALSE(frontier(kDelta, Action::kE, Dir::S).valid());
}

TEST(Frontier, TableIIOrdinals) {
  EXPECT_EQ(frontier(kDelta, Action::kNE, Dir::N), (Rect{4, 6, 8, 6}));
  EXPECT_EQ(frontier(kDelta, Action::kNE, Dir::E), (Rect{8, 3, 8, 6}));
  EXPECT_EQ(frontier(kDelta, Action::kNW, Dir::N), (Rect{2, 6, 6, 6}));
  EXPECT_EQ(frontier(kDelta, Action::kNW, Dir::W), (Rect{2, 3, 2, 6}));
  EXPECT_EQ(frontier(kDelta, Action::kSE, Dir::S), (Rect{4, 1, 8, 1}));
  EXPECT_EQ(frontier(kDelta, Action::kSE, Dir::E), (Rect{8, 1, 8, 4}));
  EXPECT_EQ(frontier(kDelta, Action::kSW, Dir::S), (Rect{2, 1, 6, 1}));
  EXPECT_EQ(frontier(kDelta, Action::kSW, Dir::W), (Rect{2, 1, 2, 4}));
}

TEST(Frontier, TableIIMorphs) {
  EXPECT_EQ(frontier(kDelta, Action::kWidenNE, Dir::E), (Rect{8, 3, 8, 5}));
  EXPECT_EQ(frontier(kDelta, Action::kWidenNW, Dir::W), (Rect{2, 3, 2, 5}));
  EXPECT_EQ(frontier(kDelta, Action::kWidenSE, Dir::E), (Rect{8, 2, 8, 4}));
  EXPECT_EQ(frontier(kDelta, Action::kWidenSW, Dir::W), (Rect{2, 2, 2, 4}));
  EXPECT_EQ(frontier(kDelta, Action::kHeightenNE, Dir::N),
            (Rect{4, 6, 7, 6}));
  EXPECT_EQ(frontier(kDelta, Action::kHeightenNW, Dir::N),
            (Rect{3, 6, 6, 6}));
  EXPECT_EQ(frontier(kDelta, Action::kHeightenSE, Dir::S),
            (Rect{4, 1, 7, 1}));
  EXPECT_EQ(frontier(kDelta, Action::kHeightenSW, Dir::S),
            (Rect{3, 1, 6, 1}));
}

TEST(Frontier, DoubleStepFirstFrontierEqualsSingleStep) {
  for (auto [dbl, single] :
       {std::pair{Action::kNN, Action::kN}, {Action::kSS, Action::kS},
        {Action::kEE, Action::kE}, {Action::kWW, Action::kW}}) {
    const Dir d = cardinal_of(single);
    EXPECT_EQ(frontier(kDelta, dbl, d), frontier(kDelta, single, d));
  }
}

// |Fr| column of Table II over a sweep of droplet shapes.
class FrontierSizeTest : public ::testing::TestWithParam<Rect> {};

TEST_P(FrontierSizeTest, CardinalSizesMatchTableII) {
  const Rect d = GetParam();
  const int w = d.width();
  const int h = d.height();
  EXPECT_EQ(frontier_size(d, Action::kN, Dir::N), w);
  EXPECT_EQ(frontier_size(d, Action::kS, Dir::S), w);
  EXPECT_EQ(frontier_size(d, Action::kE, Dir::E), h);
  EXPECT_EQ(frontier_size(d, Action::kW, Dir::W), h);
  EXPECT_EQ(frontier_size(d, Action::kN, Dir::E), 0);
  EXPECT_EQ(frontier_size(d, Action::kE, Dir::N), 0);
}

TEST_P(FrontierSizeTest, OrdinalSizesMatchTableII) {
  const Rect d = GetParam();
  const int w = d.width();
  const int h = d.height();
  for (Action a : {Action::kNE, Action::kNW, Action::kSE, Action::kSW}) {
    EXPECT_EQ(frontier_size(d, a, vertical(ordinal_of(a))), w)
        << to_string(a);
    EXPECT_EQ(frontier_size(d, a, horizontal(ordinal_of(a))), h)
        << to_string(a);
  }
}

TEST_P(FrontierSizeTest, MorphSizesMatchTableII) {
  const Rect d = GetParam();
  if (d.height() >= 2) {
    for (Action a : {Action::kWidenNE, Action::kWidenNW, Action::kWidenSE,
                     Action::kWidenSW}) {
      EXPECT_EQ(frontier_size(d, a, horizontal(ordinal_of(a))),
                d.height() - 1)
          << to_string(a);
    }
  }
  if (d.width() >= 2) {
    for (Action a : {Action::kHeightenNE, Action::kHeightenNW,
                     Action::kHeightenSE, Action::kHeightenSW}) {
      EXPECT_EQ(frontier_size(d, a, vertical(ordinal_of(a))), d.width() - 1)
          << to_string(a);
    }
  }
}

TEST_P(FrontierSizeTest, FrontiersAreDisjointFromTheDroplet) {
  const Rect d = GetParam();
  for (Action a : kAllActions) {
    if ((action_class(a) == ActionClass::kWiden && d.height() < 2) ||
        (action_class(a) == ActionClass::kHeighten && d.width() < 2))
      continue;
    const FrontierDirs dirs = pulling_directions(a);
    for (int i = 0; i < dirs.count; ++i) {
      const Rect fr = frontier(d, a, dirs.dirs[i]);
      ASSERT_TRUE(fr.valid());
      EXPECT_FALSE(fr.intersects(d)) << to_string(a);
      // Frontier MCs are adjacent to the droplet. Ordinal frontiers are
      // shifted diagonally, so on droplets of width/height 1 they only
      // touch at a corner (gap 2); otherwise the gap is exactly 1.
      const int max_gap =
          (action_class(a) == ActionClass::kOrdinal &&
           (d.width() == 1 || d.height() == 1))
              ? 2
              : 1;
      EXPECT_LE(fr.manhattan_gap(d), max_gap) << to_string(a);
      EXPECT_GE(fr.manhattan_gap(d), 1) << to_string(a);
    }
  }
}

TEST_P(FrontierSizeTest, FrontiersLieInsideTheSuccessorPattern) {
  // Every pulling MC is covered by the actuated target pattern a(δ) for
  // single-step actions (the actuated cells are what pull the droplet).
  const Rect d = GetParam();
  for (Action a : kAllActions) {
    if (action_class(a) == ActionClass::kDouble) continue;
    if ((action_class(a) == ActionClass::kWiden && d.height() < 2) ||
        (action_class(a) == ActionClass::kHeighten && d.width() < 2))
      continue;
    const Rect target = apply(a, d);
    const FrontierDirs dirs = pulling_directions(a);
    for (int i = 0; i < dirs.count; ++i) {
      const Rect fr = frontier(d, a, dirs.dirs[i]);
      EXPECT_TRUE(target.contains(fr))
          << to_string(a) << " frontier " << fr.to_string() << " target "
          << target.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DropletShapes, FrontierSizeTest,
    ::testing::Values(Rect{3, 2, 7, 5},    // the paper's 5×4 example
                      Rect{0, 0, 2, 2},    // 3×3
                      Rect{10, 10, 13, 13},// 4×4
                      Rect{5, 5, 10, 9},   // 6×5
                      Rect{2, 3, 3, 8},    // 2×6 tall
                      Rect{4, 4, 9, 5},    // 6×2 wide
                      Rect{1, 1, 1, 4},    // 1×4 column
                      Rect{1, 1, 4, 1}));  // 4×1 row

}  // namespace
}  // namespace meda
