#include "model/smg.hpp"

#include "core/synthesizer.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/check.hpp"

namespace meda::smg {
namespace {

Game make_game() {
  return Game(Rect{0, 0, 19, 19}, ActionRules{}, 2,
              HealthEstimator::kScaled);
}

State make_state(const Rect& droplet, int health_code = 3) {
  State s;
  s.droplet = droplet;
  s.health = IntMatrix(20, 20, health_code);
  s.turn = Player::kController;
  return s;
}

TEST(Smg, EnabledActionsMatchInteriorExpectation) {
  const Game game = make_game();
  const State s = make_state(Rect{8, 8, 11, 11});  // 4×4 interior
  const auto actions = game.enabled_actions(s);
  // 4 cardinal + 4 double + 4 ordinal (morphs blocked by the 3/2 guard).
  EXPECT_EQ(actions.size(), 12u);
}

TEST(Smg, EnabledActionsShrinkAtTheEdge) {
  const Game game = make_game();
  const State s = make_state(Rect{0, 0, 3, 3});  // corner droplet
  const auto actions = game.enabled_actions(s);
  for (Action a : actions) {
    EXPECT_NE(a, Action::kS);
    EXPECT_NE(a, Action::kW);
    EXPECT_NE(a, Action::kSW);
  }
}

TEST(Smg, ControllerTransitionIsFullHealthDeterministic) {
  const Game game = make_game();
  const State s = make_state(Rect{8, 8, 11, 11});
  const auto branches = game.controller_transition(s, Action::kE);
  ASSERT_EQ(branches.size(), 1u);  // scaled estimator: H=3 → force 1
  EXPECT_EQ(branches[0].state.droplet, (Rect{9, 8, 12, 11}));
  EXPECT_EQ(branches[0].state.turn, Player::kDegradation);
  EXPECT_DOUBLE_EQ(branches[0].probability, 1.0);
}

TEST(Smg, ControllerTransitionBranchesUnderDegradedHealth) {
  const Game game = make_game();
  const State s = make_state(Rect{8, 8, 11, 11}, /*health_code=*/2);
  const auto branches = game.controller_transition(s, Action::kNE);
  ASSERT_EQ(branches.size(), 4u);  // dd', d, d', ε
  const double total = std::accumulate(
      branches.begin(), branches.end(), 0.0,
      [](double acc, const Branch& b) { return acc + b.probability; });
  EXPECT_NEAR(total, 1.0, 1e-12);
  for (const Branch& b : branches) {
    EXPECT_EQ(b.state.turn, Player::kDegradation);
    EXPECT_EQ(b.state.health, s.health);  // ① cannot change H
  }
}

TEST(Smg, ControllerTransitionRejectsDisabledAction) {
  const Game game = make_game();
  const State s = make_state(Rect{0, 0, 3, 3});
  EXPECT_THROW(game.controller_transition(s, Action::kS), PreconditionError);
}

TEST(Smg, TurnOrderIsEnforced) {
  const Game game = make_game();
  State s = make_state(Rect{8, 8, 11, 11});
  s.turn = Player::kDegradation;
  EXPECT_THROW(game.enabled_actions(s), PreconditionError);
  EXPECT_THROW(game.controller_transition(s, Action::kE), PreconditionError);
  s.turn = Player::kController;
  EXPECT_THROW(game.degradation_transition(s, DegradationMove{}),
               PreconditionError);
}

TEST(Smg, DegradationMoveDecrementsSelectedCells) {
  const Game game = make_game();
  State s = make_state(Rect{8, 8, 11, 11});
  s.turn = Player::kDegradation;
  DegradationMove move;
  move.cells = {Vec2i{0, 0}, Vec2i{5, 5}, Vec2i{5, 5}};  // ② may batch cells
  const State next = game.degradation_transition(s, move);
  EXPECT_EQ(next.turn, Player::kController);
  EXPECT_EQ(next.health.at(0, 0), 2);
  EXPECT_EQ(next.health.at(5, 5), 1);  // decremented twice
  EXPECT_EQ(next.health.at(1, 1), 3);
  EXPECT_EQ(next.droplet, s.droplet);
}

TEST(Smg, DegradationClampsAtZero) {
  const Game game = make_game();
  State s = make_state(Rect{8, 8, 11, 11}, /*health_code=*/0);
  s.turn = Player::kDegradation;
  DegradationMove move;
  move.cells = {Vec2i{3, 3}};
  const State next = game.degradation_transition(s, move);
  EXPECT_EQ(next.health.at(3, 3), 0);
}

TEST(Smg, DegradationMoveOutsideChipThrows) {
  const Game game = make_game();
  State s = make_state(Rect{8, 8, 11, 11});
  s.turn = Player::kDegradation;
  DegradationMove move;
  move.cells = {Vec2i{25, 0}};
  EXPECT_THROW(game.degradation_transition(s, move), PreconditionError);
}

TEST(Smg, PlayoutWithFrozenHealthFollowsTheInducedMdp) {
  // The Section VI-C reduction: while player ② stays idle, playing the SMG
  // under a strategy synthesized from the induced MDP reaches the goal, and
  // the visited states all carry the frozen health matrix.
  const Rect chip_bounds{0, 0, 14, 7};
  ActionRules rules;
  rules.enable_morphing = false;
  const Game game(chip_bounds, rules, 2, HealthEstimator::kScaled);

  assay::RoutingJob rj;
  rj.start = Rect::from_size(0, 2, 3, 3);
  rj.goal = Rect::from_size(10, 2, 3, 3);
  rj.hazard = chip_bounds;
  core::SynthesisConfig config;
  config.rules = rules;
  const core::Synthesizer synth(chip_bounds, config);
  const IntMatrix frozen(15, 8, 3);
  const core::SynthesisResult r = synth.synthesize(rj, frozen, 2);
  ASSERT_TRUE(r.feasible);

  State s = make_state(rj.start);
  s.health = frozen;
  int turns = 0;
  while (!rj.goal.contains(s.droplet) && turns++ < 50) {
    const auto action = r.strategy.action(s.droplet);
    ASSERT_TRUE(action.has_value()) << s.droplet.to_string();
    const auto branches = game.controller_transition(s, *action);
    ASSERT_EQ(branches.size(), 1u);  // full health: deterministic
    s = branches[0].state;
    EXPECT_EQ(s.health, frozen);  // ① transitions never change H
    s = game.degradation_transition(s, DegradationMove{});  // ② idles
  }
  EXPECT_TRUE(rj.goal.contains(s.droplet));
  EXPECT_EQ(turns, 10);  // 10 single-step east moves for a 3×3 droplet
}

TEST(Smg, DegradationMovesChangeTheControllersModel) {
  // When player ② degrades the frontier to zero, a re-synthesis from the
  // new H must route around it (the adaptive loop's core assumption).
  const Rect chip_bounds{0, 0, 14, 9};
  ActionRules rules;
  rules.enable_morphing = false;
  const Game game(chip_bounds, rules, 2, HealthEstimator::kScaled);
  State s = make_state(Rect::from_size(0, 3, 3, 3));
  s.health = IntMatrix(15, 10, 3);
  s.turn = Player::kDegradation;
  DegradationMove kill_wall;
  for (int y = 2; y < 10; ++y)
    for (int repeat = 0; repeat < 3; ++repeat)
      kill_wall.cells.push_back(Vec2i{7, y});  // 3 decrements → code 0
  s = game.degradation_transition(s, kill_wall);

  assay::RoutingJob rj;
  rj.start = s.droplet;
  rj.goal = Rect::from_size(11, 3, 3, 3);
  rj.hazard = chip_bounds;
  core::SynthesisConfig config;
  config.rules = rules;
  const core::Synthesizer synth(chip_bounds, config);
  const core::SynthesisResult r = synth.synthesize(rj, s.health, 2);
  ASSERT_TRUE(r.feasible);
  // The straight path takes 11 steps; the detour through the southern gap
  // costs strictly more.
  EXPECT_GT(r.expected_cycles, 11.0);
}

TEST(Smg, EmptyDegradationMoveIsIdentityOnHealth) {
  const Game game = make_game();
  State s = make_state(Rect{8, 8, 11, 11});
  s.turn = Player::kDegradation;
  const State next = game.degradation_transition(s, DegradationMove{});
  EXPECT_EQ(next.health, s.health);
  EXPECT_EQ(next.turn, Player::kController);
}

}  // namespace
}  // namespace meda::smg
