#include "model/outcomes.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "model/guards.hpp"
#include "util/check.hpp"

namespace meda {
namespace {

/// Chip-sized force matrix with a uniform value.
DoubleMatrix uniform_force(double f, int w = 20, int h = 20) {
  return DoubleMatrix(w, h, f);
}

double total_probability(const std::vector<Outcome>& outcomes) {
  return std::accumulate(outcomes.begin(), outcomes.end(), 0.0,
                         [](double acc, const Outcome& o) {
                           return acc + o.probability;
                         });
}

// Example 3 of the paper: δ = (3, 2, 7, 5) actuated under a_NE with
// D(8, 3:6) = (0.6, 0.5, 0.8, 0.9) and D(4:8, 6) = (0.9, 0.4, 0.9, 0.7, 0.9)
// (the example feeds degradation values directly as forces):
// p(NE) = 0.76 · 0.7 = 0.532.
TEST(Outcomes, PaperExample3) {
  const Rect d{3, 2, 7, 5};
  DoubleMatrix force = uniform_force(1.0);
  force(8, 3) = 0.6;
  force(8, 4) = 0.5;
  force(8, 5) = 0.8;
  force(8, 6) = 0.9;
  force(4, 6) = 0.9;
  force(5, 6) = 0.4;
  force(6, 6) = 0.9;
  force(7, 6) = 0.7;
  force(8, 6) = 0.9;

  const auto outcomes = action_outcomes(d, Action::kNE, force);
  ASSERT_EQ(outcomes.size(), 4u);
  double p_ne = 0, p_n = 0, p_e = 0, p_stay = 0;
  for (const Outcome& o : outcomes) {
    if (o.droplet == d.shifted(1, 1)) p_ne = o.probability;
    else if (o.droplet == d.shifted(0, 1)) p_n = o.probability;
    else if (o.droplet == d.shifted(1, 0)) p_e = o.probability;
    else if (o.droplet == d) p_stay = o.probability;
  }
  EXPECT_NEAR(p_ne, 0.532, 1e-9);
  // The paper's example lists {0.168, 0.228} for the single-direction
  // events: p(N) = s_N·(1−s_E) = 0.76·0.3, p(E) = (1−s_N)·s_E = 0.24·0.7.
  EXPECT_NEAR(p_n, 0.228, 1e-9);
  EXPECT_NEAR(p_e, 0.168, 1e-9);
  EXPECT_NEAR(p_stay, 0.24 * 0.3, 1e-9);
  EXPECT_NEAR(total_probability(outcomes), 1.0, 1e-12);
}

TEST(MeanFrontierForce, AveragesAndClamps) {
  DoubleMatrix force = uniform_force(0.5, 10, 10);
  force(5, 5) = 2.0;   // clamped to 1
  force(5, 6) = -1.0;  // clamped to 0
  EXPECT_NEAR(mean_frontier_force(force, Rect{5, 5, 5, 6}), 0.5, 1e-12);
  EXPECT_THROW(mean_frontier_force(force, Rect{9, 9, 10, 9}),
               PreconditionError);
}

TEST(Outcomes, CardinalEventSpace) {
  const Rect d{5, 5, 8, 8};
  const auto outcomes =
      action_outcomes(d, Action::kN, uniform_force(0.8));
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].droplet, d.shifted(0, 1));
  EXPECT_NEAR(outcomes[0].probability, 0.8, 1e-12);
  EXPECT_EQ(outcomes[1].droplet, d);
  EXPECT_NEAR(outcomes[1].probability, 0.2, 1e-12);
}

TEST(Outcomes, DoubleStepEventSpace) {
  // p(dd) = s1·s2, p(d) = s1·(1−s2), p(ε) = 1−s1.
  const Rect d{5, 5, 8, 8};
  const auto outcomes =
      action_outcomes(d, Action::kEE, uniform_force(0.6));
  ASSERT_EQ(outcomes.size(), 3u);
  double p_two = 0, p_one = 0, p_stay = 0;
  for (const Outcome& o : outcomes) {
    if (o.droplet == d.shifted(2, 0)) p_two = o.probability;
    else if (o.droplet == d.shifted(1, 0)) p_one = o.probability;
    else if (o.droplet == d) p_stay = o.probability;
  }
  EXPECT_NEAR(p_two, 0.36, 1e-12);
  EXPECT_NEAR(p_one, 0.24, 1e-12);
  EXPECT_NEAR(p_stay, 0.4, 1e-12);
}

TEST(Outcomes, DoubleStepSecondFrontierUsesShiftedDroplet) {
  const Rect d{5, 5, 8, 8};
  DoubleMatrix force = uniform_force(1.0);
  // First-step frontier (x = 9) healthy; second-step frontier (x = 10) dead.
  for (int y = 5; y <= 8; ++y) force(10, y) = 0.0;
  const auto outcomes = action_outcomes(d, Action::kEE, force);
  double p_two = 0, p_one = 0;
  for (const Outcome& o : outcomes) {
    if (o.droplet == d.shifted(2, 0)) p_two = o.probability;
    if (o.droplet == d.shifted(1, 0)) p_one = o.probability;
  }
  EXPECT_NEAR(p_two, 0.0, 1e-12);
  EXPECT_NEAR(p_one, 1.0, 1e-12);
}

TEST(Outcomes, MorphEventSpace) {
  const Rect d{5, 5, 9, 8};  // 5×4
  const auto outcomes =
      action_outcomes(d, Action::kWidenNE, uniform_force(0.7));
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].droplet, apply(Action::kWidenNE, d));
  EXPECT_NEAR(outcomes[0].probability, 0.7, 1e-12);
  EXPECT_NEAR(total_probability(outcomes), 1.0, 1e-12);
}

TEST(Outcomes, ZeroProbabilityBranchesAreOmitted) {
  const Rect d{5, 5, 8, 8};
  const auto certain = action_outcomes(d, Action::kN, uniform_force(1.0));
  ASSERT_EQ(certain.size(), 1u);
  EXPECT_EQ(certain[0].droplet, d.shifted(0, 1));
  const auto impossible = action_outcomes(d, Action::kN, uniform_force(0.0));
  ASSERT_EQ(impossible.size(), 1u);
  EXPECT_EQ(impossible[0].droplet, d);
}

/// Property sweep: outcome distributions are well-formed for every action.
class OutcomeDistributionTest
    : public ::testing::TestWithParam<std::tuple<Action, double>> {};

TEST_P(OutcomeDistributionTest, SumsToOneAndStaysNonNegative) {
  const auto [action, f] = GetParam();
  const Rect d{8, 8, 12, 11};  // 5×4 interior droplet on a 20×20 grid
  const auto outcomes = action_outcomes(d, action, uniform_force(f));
  EXPECT_NEAR(total_probability(outcomes), 1.0, 1e-12);
  for (const Outcome& o : outcomes) {
    EXPECT_GT(o.probability, 0.0);
    EXPECT_LE(o.probability, 1.0 + 1e-12);
    EXPECT_TRUE(o.droplet.valid());
  }
}

TEST_P(OutcomeDistributionTest, SuccessfulOutcomeIsApplyResult) {
  const auto [action, f] = GetParam();
  if (f <= 0.0) return;
  const Rect d{8, 8, 12, 11};
  const auto outcomes = action_outcomes(d, action, uniform_force(f));
  EXPECT_EQ(outcomes.front().droplet, apply(action, d));
}

INSTANTIATE_TEST_SUITE_P(
    AllActionsAndForces, OutcomeDistributionTest,
    ::testing::Combine(::testing::ValuesIn(kAllActions),
                       ::testing::Values(0.0, 0.3, 0.7, 1.0)));

TEST(Outcomes, ForceFnOverloadMatchesTheMatrixOverload) {
  const Rect d{5, 5, 8, 8};
  DoubleMatrix matrix = uniform_force(0.5);
  matrix(9, 6) = 0.9;
  const ForceFn fn = [&matrix](int x, int y) { return matrix(x, y); };
  for (Action a : {Action::kE, Action::kNE, Action::kEE}) {
    const auto via_matrix = action_outcomes(d, a, matrix);
    const auto via_fn = action_outcomes(d, a, fn);
    ASSERT_EQ(via_matrix.size(), via_fn.size()) << to_string(a);
    for (std::size_t i = 0; i < via_matrix.size(); ++i) {
      EXPECT_EQ(via_matrix[i].droplet, via_fn[i].droplet);
      EXPECT_DOUBLE_EQ(via_matrix[i].probability, via_fn[i].probability);
    }
  }
}

TEST(Outcomes, MatrixOverloadRejectsOutOfBoundsFrontier) {
  const DoubleMatrix force(10, 10, 1.0);
  // Droplet at the matrix edge: the eastward frontier indexes column 10.
  const Rect d{7, 3, 9, 5};
  EXPECT_THROW(action_outcomes(d, Action::kE, force), PreconditionError);
}

TEST(ForceFromDegradation, SquaresAndClamps) {
  DoubleMatrix d(3, 1);
  d(0, 0) = 0.5;
  d(1, 0) = 1.0;
  d(2, 0) = 1.7;  // out-of-range degradations are clamped
  const DoubleMatrix f = force_from_degradation(d);
  EXPECT_DOUBLE_EQ(f(0, 0), 0.25);
  EXPECT_DOUBLE_EQ(f(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(f(2, 0), 1.0);
}

TEST(ForceFromHealth, ScaledEstimatorEndpoints) {
  IntMatrix h(4, 1);
  h(0, 0) = 0;
  h(1, 0) = 1;
  h(2, 0) = 2;
  h(3, 0) = 3;
  const DoubleMatrix f = force_from_health(h, 2, HealthEstimator::kScaled);
  EXPECT_DOUBLE_EQ(f(0, 0), 0.0);
  EXPECT_NEAR(f(1, 0), 1.0 / 9.0, 1e-12);
  EXPECT_NEAR(f(2, 0), 4.0 / 9.0, 1e-12);
  EXPECT_DOUBLE_EQ(f(3, 0), 1.0);
}

TEST(FullHealthForce, AllOnes) {
  const DoubleMatrix f = full_health_force(5, 4);
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 5; ++x) EXPECT_DOUBLE_EQ(f(x, y), 1.0);
}

}  // namespace
}  // namespace meda
