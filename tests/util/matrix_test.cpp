#include "util/matrix.hpp"

#include <gtest/gtest.h>

namespace meda {
namespace {

TEST(Matrix, ConstructionAndFill) {
  DoubleMatrix m(4, 3, 1.5);
  EXPECT_EQ(m.width(), 4);
  EXPECT_EQ(m.height(), 3);
  EXPECT_EQ(m.size(), 12u);
  for (int y = 0; y < 3; ++y)
    for (int x = 0; x < 4; ++x) EXPECT_DOUBLE_EQ(m.at(x, y), 1.5);
  m.fill(0.0);
  EXPECT_DOUBLE_EQ(m.at(3, 2), 0.0);
}

TEST(Matrix, DefaultIsEmpty) {
  IntMatrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.width(), 0);
}

TEST(Matrix, InBounds) {
  IntMatrix m(5, 2);
  EXPECT_TRUE(m.in_bounds(0, 0));
  EXPECT_TRUE(m.in_bounds(4, 1));
  EXPECT_FALSE(m.in_bounds(5, 0));
  EXPECT_FALSE(m.in_bounds(0, 2));
  EXPECT_FALSE(m.in_bounds(-1, 0));
}

TEST(Matrix, AtThrowsOutOfBounds) {
  IntMatrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), PreconditionError);
  EXPECT_THROW(m.at(0, -1), PreconditionError);
}

TEST(Matrix, ElementsAreIndependent) {
  IntMatrix m(3, 3);
  m.at(1, 2) = 7;
  m.at(2, 1) = 9;
  EXPECT_EQ(m.at(1, 2), 7);
  EXPECT_EQ(m.at(2, 1), 9);
  EXPECT_EQ(m.at(0, 0), 0);
}

TEST(Matrix, EqualityComparesDimensionsAndData) {
  IntMatrix a(2, 2), b(2, 2), c(2, 3);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  b.at(0, 0) = 1;
  EXPECT_FALSE(a == b);
}

TEST(Matrix, DataLayoutIsRowMajorInY) {
  IntMatrix m(3, 2);
  m.at(2, 0) = 5;  // index 2
  m.at(0, 1) = 6;  // index 3
  EXPECT_EQ(m.data()[2], 5);
  EXPECT_EQ(m.data()[3], 6);
}

TEST(Matrix, RejectsNegativeDimensions) {
  EXPECT_THROW(IntMatrix(-1, 2), PreconditionError);
}

}  // namespace
}  // namespace meda
