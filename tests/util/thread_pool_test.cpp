#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/check.hpp"

namespace meda::util {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i)
      pool.submit([&count] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
  }
}

TEST(ThreadPool, WaitRethrowsTheFirstTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The pool stays usable after the error is collected.
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, RejectsNonPositiveWorkerCounts) {
  EXPECT_THROW(ThreadPool pool(0), PreconditionError);
}

TEST(EffectiveJobs, CapsByItemCountAndResolvesAuto) {
  EXPECT_EQ(effective_jobs(4, 100), 4);
  EXPECT_EQ(effective_jobs(8, 3), 3);     // never more workers than items
  EXPECT_EQ(effective_jobs(1, 100), 1);
  EXPECT_GE(effective_jobs(0, 100), 1);   // 0 = hardware concurrency
  EXPECT_GE(effective_jobs(-1, 100), 1);
}

TEST(ParallelFor, VisitsEachIndexExactlyOnce) {
  for (const int jobs : {1, 2, 8}) {
    std::vector<std::atomic<int>> visits(257);
    for (auto& v : visits) v.store(0);
    parallel_for(jobs, visits.size(),
                 [&](std::size_t i) { visits[i].fetch_add(1); });
    for (std::size_t i = 0; i < visits.size(); ++i)
      EXPECT_EQ(visits[i].load(), 1) << "jobs=" << jobs << " i=" << i;
  }
}

TEST(ParallelFor, SerialFallbackPreservesOrder) {
  // jobs = 1 must run on the calling thread, in index order.
  std::vector<std::size_t> order;
  parallel_for(1, 10, [&](std::size_t i) { order.push_back(i); });
  std::vector<std::size_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ParallelFor, SlotWritesMatchTheSerialPath) {
  // The campaign pattern: each index writes its own slot; the gathered
  // result must be identical at any job count.
  auto run = [](int jobs) {
    std::vector<double> slots(64, 0.0);
    parallel_for(jobs, slots.size(), [&](std::size_t i) {
      slots[i] = static_cast<double>(i * i) / 7.0;
    });
    return slots;
  };
  const std::vector<double> serial = run(1);
  EXPECT_EQ(run(4), serial);
  EXPECT_EQ(run(16), serial);
}

TEST(ParallelFor, PropagatesBodyExceptions) {
  EXPECT_THROW(
      parallel_for(4, 32,
                   [](std::size_t i) {
                     if (i == 17) throw std::runtime_error("body boom");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, EmptyRangeIsANoOp) {
  parallel_for(4, 0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ShutdownUnderLoadDrainsEveryQueuedJob) {
  // A long-lived service destroys its pool while jobs are still queued; the
  // destructor must drain them deterministically — every submitted job runs
  // exactly once, no hang, no drop. Slow jobs keep the queue non-empty at
  // destruction time.
  std::atomic<int> executed{0};
  constexpr int kJobs = 64;
  {
    ThreadPool pool(2);
    for (int i = 0; i < kJobs; ++i) {
      pool.submit([&executed] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        executed.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // No wait(): destruction races the queue on purpose.
  }
  EXPECT_EQ(executed.load(), kJobs);
}

TEST(ThreadPool, ShutdownUnderLoadWithThrowingJobsDoesNotHang) {
  // Destruction with queued jobs that throw: errors are swallowed by the
  // drain (there is no wait() left to rethrow into), but every job still
  // runs and the destructor still joins.
  std::atomic<int> executed{0};
  constexpr int kJobs = 32;
  {
    ThreadPool pool(3);
    for (int i = 0; i < kJobs; ++i) {
      pool.submit([&executed, i] {
        executed.fetch_add(1, std::memory_order_relaxed);
        if (i % 2 == 0) throw std::runtime_error("job boom");
      });
    }
  }
  EXPECT_EQ(executed.load(), kJobs);
}

TEST(ParseJobsFlag, ParsesBothSpellings) {
  const char* argv1[] = {"bench", "--jobs", "4"};
  EXPECT_EQ(parse_jobs_flag(3, const_cast<char**>(argv1)), 4);
  const char* argv2[] = {"bench", "--jobs=8"};
  EXPECT_EQ(parse_jobs_flag(2, const_cast<char**>(argv2)), 8);
  const char* argv3[] = {"bench"};
  EXPECT_EQ(parse_jobs_flag(1, const_cast<char**>(argv3)), 1);
  EXPECT_EQ(parse_jobs_flag(1, const_cast<char**>(argv3), 7), 7);
  const char* argv4[] = {"bench", "--jobs=0"};
  EXPECT_EQ(parse_jobs_flag(2, const_cast<char**>(argv4)), 0);
}

}  // namespace
}  // namespace meda::util
