#include "util/benchjson.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace meda::util {
namespace {

// A trimmed-down Google-Benchmark JSON file: context block, one aggregate
// row (must be skipped), duplicate iteration rows (must be averaged), and a
// microsecond-unit row (must normalize to ns).
const char* kSample = R"json({
  "context": {
    "date": "2026-08-08T00:00:00+00:00",
    "host_name": "ci",
    "num_cpus": 1
  },
  "benchmarks": [
    {
      "name": "BM_Solve/20",
      "run_type": "iteration",
      "real_time": 100.0,
      "cpu_time": 90.0,
      "time_unit": "ns"
    },
    {
      "name": "BM_Solve/20",
      "run_type": "iteration",
      "real_time": 300.0,
      "cpu_time": 110.0,
      "time_unit": "ns"
    },
    {
      "name": "BM_Solve/20_mean",
      "run_type": "aggregate",
      "real_time": 200.0,
      "cpu_time": 100.0,
      "time_unit": "ns"
    },
    {
      "name": "BM_Build",
      "run_type": "iteration",
      "real_time": 2.5,
      "cpu_time": 2.0,
      "time_unit": "us"
    }
  ]
})json";

TEST(BenchJson, ParsesEntriesAndSkipsNothingAtParseTime) {
  std::vector<BenchEntry> entries;
  std::string error;
  ASSERT_TRUE(parse_benchmark_json(kSample, entries, &error)) << error;
  ASSERT_EQ(entries.size(), 4u);  // aggregates are filtered later, not here
  EXPECT_EQ(entries[0].name, "BM_Solve/20");
  EXPECT_EQ(entries[0].run_type, "iteration");
  EXPECT_DOUBLE_EQ(entries[0].cpu_time, 90.0);
  EXPECT_EQ(entries[3].time_unit, "us");
}

TEST(BenchJson, RejectsMalformedInputWithAnError) {
  std::vector<BenchEntry> entries;
  std::string error;
  EXPECT_FALSE(parse_benchmark_json("{\"benchmarks\": [", entries, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(parse_benchmark_json("not json", entries, nullptr));
  EXPECT_FALSE(parse_benchmark_json("{\"context\": {}}", entries, &error))
      << "a file with no benchmarks array must not parse";
}

TEST(BenchJson, TimeUnitNormalization) {
  EXPECT_DOUBLE_EQ(time_unit_to_ns("ns"), 1.0);
  EXPECT_DOUBLE_EQ(time_unit_to_ns("us"), 1e3);
  EXPECT_DOUBLE_EQ(time_unit_to_ns("ms"), 1e6);
  EXPECT_DOUBLE_EQ(time_unit_to_ns("s"), 1e9);
  EXPECT_DOUBLE_EQ(time_unit_to_ns("parsec"), 1.0);  // unknown → assume ns
}

std::vector<BenchEntry> entries_of(
    std::initializer_list<std::pair<const char*, double>> rows) {
  std::vector<BenchEntry> out;
  for (const auto& [name, cpu] : rows) {
    BenchEntry e;
    e.name = name;
    e.run_type = "iteration";
    e.real_time = cpu * 2;  // distinct so --metric real is distinguishable
    e.cpu_time = cpu;
    out.push_back(e);
  }
  return out;
}

TEST(BenchJson, CompareMatchesByNameAveragesRepsAndSortsOutput) {
  const auto baseline =
      entries_of({{"b", 100.0}, {"a", 50.0}, {"gone", 10.0}});
  auto candidate = entries_of({{"a", 100.0}, {"b", 100.0}, {"new", 5.0}});
  // Two repetition rows for "a" average to 75 ns.
  candidate.push_back(entries_of({{"a", 50.0}}).front());

  const BenchComparison diff = compare_benchmarks(baseline, candidate);
  ASSERT_EQ(diff.matched.size(), 2u);
  EXPECT_EQ(diff.matched[0].name, "a");  // name-sorted
  EXPECT_DOUBLE_EQ(diff.matched[0].baseline_ns, 50.0);
  EXPECT_DOUBLE_EQ(diff.matched[0].candidate_ns, 75.0);
  EXPECT_DOUBLE_EQ(diff.matched[0].ratio, 1.5);
  EXPECT_EQ(diff.matched[1].name, "b");
  EXPECT_DOUBLE_EQ(diff.matched[1].ratio, 1.0);
  ASSERT_EQ(diff.only_baseline.size(), 1u);
  EXPECT_EQ(diff.only_baseline[0], "gone");
  ASSERT_EQ(diff.only_candidate.size(), 1u);
  EXPECT_EQ(diff.only_candidate[0], "new");
}

TEST(BenchJson, CompareSkipsAggregateRowsAndHonorsRealTimeMetric) {
  auto baseline = entries_of({{"a", 100.0}});
  auto candidate = entries_of({{"a", 100.0}});
  BenchEntry aggregate;
  aggregate.name = "a";
  aggregate.run_type = "aggregate";
  aggregate.cpu_time = 1e9;  // would wreck the mean if it were counted
  aggregate.real_time = 1e9;
  candidate.push_back(aggregate);

  const BenchComparison cpu = compare_benchmarks(baseline, candidate, true);
  ASSERT_EQ(cpu.matched.size(), 1u);
  EXPECT_DOUBLE_EQ(cpu.matched[0].ratio, 1.0);

  const BenchComparison real = compare_benchmarks(baseline, candidate, false);
  ASSERT_EQ(real.matched.size(), 1u);
  EXPECT_DOUBLE_EQ(real.matched[0].baseline_ns, 200.0);  // real = 2x cpu
  EXPECT_DOUBLE_EQ(real.matched[0].ratio, 1.0);
}

TEST(BenchJson, CompareNormalizesMixedTimeUnits) {
  auto baseline = entries_of({{"a", 1000.0}});  // 1000 ns
  std::vector<BenchEntry> candidate;
  BenchEntry e;
  e.name = "a";
  e.run_type = "iteration";
  e.cpu_time = 2.0;  // 2 us = 2000 ns
  e.real_time = 2.0;
  e.time_unit = "us";
  candidate.push_back(e);
  const BenchComparison diff = compare_benchmarks(baseline, candidate);
  ASSERT_EQ(diff.matched.size(), 1u);
  EXPECT_DOUBLE_EQ(diff.matched[0].candidate_ns, 2000.0);
  EXPECT_DOUBLE_EQ(diff.matched[0].ratio, 2.0);
}

TEST(BenchJson, ZeroBaselineYieldsZeroRatioNotInf) {
  const auto baseline = entries_of({{"a", 0.0}});
  const auto candidate = entries_of({{"a", 10.0}});
  const BenchComparison diff = compare_benchmarks(baseline, candidate);
  ASSERT_EQ(diff.matched.size(), 1u);
  EXPECT_DOUBLE_EQ(diff.matched[0].ratio, 0.0);
}

}  // namespace
}  // namespace meda::util
