#include "util/checkpoint.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace meda::util {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(DigestBuilder, DistinguishesValuesAndOrder) {
  EXPECT_NE(DigestBuilder().mix(1).value(), DigestBuilder().mix(2).value());
  EXPECT_NE(DigestBuilder().mix(1).mix(2).value(),
            DigestBuilder().mix(2).mix(1).value());
}

TEST(DigestBuilder, StringsAreLengthPrefixed) {
  // Without the length prefix "ab"+"c" and "a"+"bc" would hash the same
  // byte stream — and two assay lists could share a checkpoint digest.
  EXPECT_NE(
      DigestBuilder().mix(std::string("ab")).mix(std::string("c")).value(),
      DigestBuilder().mix(std::string("a")).mix(std::string("bc")).value());
}

TEST(SlotCheckpoint, InactiveByDefault) {
  SlotCheckpoint cp;
  EXPECT_FALSE(cp.active());
  EXPECT_EQ(cp.restored(0), nullptr);
  cp.record(0, "ignored");  // no-op, must not throw
  cp.flush();
}

TEST(SlotCheckpoint, RoundTripsRecordedSlots) {
  const std::string path = temp_path("cp_roundtrip.txt");
  std::remove(path.c_str());
  {
    SlotCheckpoint cp;
    cp.open(path, 0xABCDu, false, 4);
    EXPECT_TRUE(cp.active());
    cp.record(0, "alpha");
    cp.record(2, "gamma 3 4");
    cp.flush();
  }
  SlotCheckpoint resumed;
  resumed.open(path, 0xABCDu, true, 4);
  EXPECT_EQ(resumed.restored_count(), 2u);
  ASSERT_NE(resumed.restored(0), nullptr);
  EXPECT_EQ(*resumed.restored(0), "alpha");
  EXPECT_EQ(resumed.restored(1), nullptr);
  ASSERT_NE(resumed.restored(2), nullptr);
  EXPECT_EQ(*resumed.restored(2), "gamma 3 4");
  EXPECT_EQ(resumed.restored(3), nullptr);
}

TEST(SlotCheckpoint, DigestMismatchStartsFresh) {
  const std::string path = temp_path("cp_digest.txt");
  std::remove(path.c_str());
  {
    SlotCheckpoint cp;
    cp.open(path, 1, false, 2);
    cp.record(0, "old config");
    cp.flush();
  }
  SlotCheckpoint resumed;
  resumed.open(path, 2, true, 2);  // different digest: incompatible
  EXPECT_EQ(resumed.restored_count(), 0u);
  EXPECT_EQ(resumed.restored(0), nullptr);
}

TEST(SlotCheckpoint, SlotCountMismatchStartsFresh) {
  const std::string path = temp_path("cp_count.txt");
  std::remove(path.c_str());
  {
    SlotCheckpoint cp;
    cp.open(path, 7, false, 2);
    cp.record(0, "two-slot grid");
    cp.flush();
  }
  SlotCheckpoint resumed;
  resumed.open(path, 7, true, 3);
  EXPECT_EQ(resumed.restored_count(), 0u);
}

TEST(SlotCheckpoint, ResumeFalseIgnoresTheExistingFile) {
  const std::string path = temp_path("cp_noresume.txt");
  std::remove(path.c_str());
  {
    SlotCheckpoint cp;
    cp.open(path, 7, false, 2);
    cp.record(0, "stale");
    cp.flush();
  }
  SlotCheckpoint fresh;
  fresh.open(path, 7, false, 2);
  EXPECT_EQ(fresh.restored_count(), 0u);
}

TEST(SlotCheckpoint, TruncatedFileRestoresOnlyCompleteLines) {
  // Simulates a kill mid-write with a pre-rename tool: a torn trailing line
  // must not poison the resume — its slot is simply recomputed.
  const std::string path = temp_path("cp_torn.txt");
  std::remove(path.c_str());
  {
    SlotCheckpoint cp;
    cp.open(path, 9, false, 3);
    cp.record(0, "complete");
    cp.record(1, "will be torn");
    cp.flush();
  }
  std::string content = read_file(path);
  ASSERT_FALSE(content.empty());
  content.resize(content.size() - 8);  // tear the tail of the last line
  {
    std::ofstream out(path, std::ios::trunc);
    out << content;
  }
  SlotCheckpoint resumed;
  resumed.open(path, 9, true, 3);
  EXPECT_EQ(resumed.restored_count(), 1u);
  ASSERT_NE(resumed.restored(0), nullptr);
  EXPECT_EQ(*resumed.restored(0), "complete");
  EXPECT_EQ(resumed.restored(1), nullptr);
}

TEST(SlotCheckpoint, FlushEveryRewritesPeriodically) {
  const std::string path = temp_path("cp_periodic.txt");
  std::remove(path.c_str());
  SlotCheckpoint cp;
  cp.open(path, 5, false, 4, /*flush_every=*/2);
  cp.record(0, "a");
  EXPECT_TRUE(read_file(path).empty());  // below the cadence: no file yet
  cp.record(1, "b");                     // second new slot triggers a write
  const std::string content = read_file(path);
  EXPECT_NE(content.find("meda-checkpoint v1"), std::string::npos);
  EXPECT_NE(content.find("0 a"), std::string::npos);
  EXPECT_NE(content.find("1 b"), std::string::npos);
}

TEST(SlotCheckpoint, RejectsMultilinePayloadsAndBadSlots) {
  SlotCheckpoint cp;
  cp.open(temp_path("cp_reject.txt"), 5, false, 2);
  EXPECT_THROW(cp.record(0, "two\nlines"), PreconditionError);
  EXPECT_THROW(cp.record(2, "out of range"), PreconditionError);
}

}  // namespace
}  // namespace meda::util
