#include "util/deadline.hpp"

#include <gtest/gtest.h>

namespace meda::util {
namespace {

TEST(Deadline, DefaultTokenIsInactiveAndNeverExpires) {
  Deadline d;
  EXPECT_FALSE(d.active());
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(d.expired());
}

TEST(Deadline, CheckBudgetSurvivesExactlyNPolls) {
  Deadline d = Deadline::after_checks(3);
  EXPECT_TRUE(d.active());
  EXPECT_FALSE(d.expired());  // poll 1
  EXPECT_FALSE(d.expired());  // poll 2
  EXPECT_FALSE(d.expired());  // poll 3
  EXPECT_TRUE(d.expired());   // poll 4: budget exhausted
}

TEST(Deadline, ZeroCheckBudgetIsAlreadyExpired) {
  Deadline d = Deadline::after_checks(0);
  EXPECT_TRUE(d.expired());
}

TEST(Deadline, ExpiryIsSticky) {
  Deadline d = Deadline::after_checks(1);
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(d.expired());
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(d.expired());
}

TEST(Deadline, CopiesShareTheBudgetAndTheExpiry) {
  // The solver stack passes Deadline by value (SolveConfig copies); every
  // copy must drain the same budget and observe the same expiry — this is
  // what lets an expired pmax self-terminate the following rmin.
  Deadline a = Deadline::after_checks(2);
  Deadline b = a;
  EXPECT_FALSE(a.expired());  // drains the shared budget
  EXPECT_FALSE(b.expired());
  EXPECT_TRUE(a.expired());
  EXPECT_TRUE(b.expired());
}

TEST(Deadline, CancelExpiresEveryCopy) {
  Deadline a;
  Deadline b = a;
  EXPECT_FALSE(b.expired());
  a.cancel();
  EXPECT_TRUE(a.active());
  EXPECT_TRUE(a.expired());
  EXPECT_TRUE(b.expired());
}

TEST(Deadline, NonPositiveTimeBudgetExpiresImmediately) {
  EXPECT_TRUE(Deadline::after_seconds(0.0).expired());
  EXPECT_TRUE(Deadline::after_seconds(-1.0).expired());
}

TEST(Deadline, GenerousTimeBudgetDoesNotExpire) {
  Deadline d = Deadline::after_seconds(3600.0);
  EXPECT_TRUE(d.active());
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(d.expired());
}

}  // namespace
}  // namespace meda::util
