#include "util/deadline.hpp"

#include <gtest/gtest.h>

namespace meda::util {
namespace {

TEST(Deadline, DefaultTokenIsInactiveAndNeverExpires) {
  Deadline d;
  EXPECT_FALSE(d.active());
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(d.expired());
}

TEST(Deadline, CheckBudgetSurvivesExactlyNPolls) {
  Deadline d = Deadline::after_checks(3);
  EXPECT_TRUE(d.active());
  EXPECT_FALSE(d.expired());  // poll 1
  EXPECT_FALSE(d.expired());  // poll 2
  EXPECT_FALSE(d.expired());  // poll 3
  EXPECT_TRUE(d.expired());   // poll 4: budget exhausted
}

TEST(Deadline, ZeroCheckBudgetIsAlreadyExpired) {
  Deadline d = Deadline::after_checks(0);
  EXPECT_TRUE(d.expired());
}

TEST(Deadline, ExpiryIsSticky) {
  Deadline d = Deadline::after_checks(1);
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(d.expired());
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(d.expired());
}

TEST(Deadline, CopiesShareTheBudgetAndTheExpiry) {
  // The solver stack passes Deadline by value (SolveConfig copies); every
  // copy must drain the same budget and observe the same expiry — this is
  // what lets an expired pmax self-terminate the following rmin.
  Deadline a = Deadline::after_checks(2);
  Deadline b = a;
  EXPECT_FALSE(a.expired());  // drains the shared budget
  EXPECT_FALSE(b.expired());
  EXPECT_TRUE(a.expired());
  EXPECT_TRUE(b.expired());
}

TEST(Deadline, CancelExpiresEveryCopy) {
  Deadline a;
  Deadline b = a;
  EXPECT_FALSE(b.expired());
  a.cancel();
  EXPECT_TRUE(a.active());
  EXPECT_TRUE(a.expired());
  EXPECT_TRUE(b.expired());
}

TEST(Deadline, NonPositiveTimeBudgetExpiresImmediately) {
  EXPECT_TRUE(Deadline::after_seconds(0.0).expired());
  EXPECT_TRUE(Deadline::after_seconds(-1.0).expired());
  // Born expired without a clock comparison: the very first poll is true
  // and the token reads active (its ledger/solver callers treat it like
  // any other expired budget).
  Deadline d = Deadline::after_seconds(-1e300);
  EXPECT_TRUE(d.active());
  EXPECT_TRUE(d.expired());
}

TEST(Deadline, GenerousTimeBudgetDoesNotExpire) {
  Deadline d = Deadline::after_seconds(3600.0);
  EXPECT_TRUE(d.active());
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(d.expired());
}

TEST(Deadline, HugeTimeBudgetSaturatesInsteadOfWrapping) {
  // Budgets beyond steady_clock's representable range used to overflow the
  // duration cast and wrap the expiry into the past.
  for (const double seconds : {1e18, 1e300}) {
    Deadline d = Deadline::after_seconds(seconds);
    EXPECT_TRUE(d.active());
    for (int i = 0; i < 100; ++i)
      EXPECT_FALSE(d.expired()) << "seconds=" << seconds;
  }
}

TEST(Deadline, CheckBudgetBoundaryIsDeterministic) {
  // Exhaustion exactly at the boundary: budget N flips on poll N+1, on
  // every machine, with no time component involved.
  for (const std::uint64_t budget : {1ull, 7ull, 64ull}) {
    Deadline d = Deadline::after_checks(budget);
    for (std::uint64_t poll = 0; poll < budget; ++poll)
      EXPECT_FALSE(d.expired()) << "budget=" << budget << " poll=" << poll;
    EXPECT_TRUE(d.expired()) << "budget=" << budget;
  }
}

TEST(Deadline, ChecksUsedCountsEveryPollAcrossCopies) {
  Deadline a = Deadline::after_checks(3);
  Deadline b = a;
  EXPECT_EQ(a.check_limit(), 3u);
  EXPECT_TRUE(a.has_check_limit());
  EXPECT_EQ(a.checks_used(), 0u);
  (void)a.expired();
  (void)b.expired();
  EXPECT_EQ(a.checks_used(), 2u);
  EXPECT_EQ(b.checks_used(), 2u);
  // Polls past expiry keep counting (settle() clamps to the armed limit).
  for (int i = 0; i < 5; ++i) (void)a.expired();
  EXPECT_GE(a.checks_used(), 4u);
}

TEST(DeadlineLedger, AcquireArmsTheSmallerOfCapAndRemaining) {
  DeadlineLedger ledger(10);
  EXPECT_EQ(ledger.remaining(), 10u);
  Deadline capped = ledger.acquire(4);
  EXPECT_EQ(capped.check_limit(), 4u);
  Deadline uncapped = ledger.acquire(0);
  EXPECT_EQ(uncapped.check_limit(), 10u);
  Deadline wide = ledger.acquire(100);
  EXPECT_EQ(wide.check_limit(), 10u);
}

TEST(DeadlineLedger, SettleChargesConsumedPollsClampedToArmed) {
  DeadlineLedger ledger(10);
  Deadline d = ledger.acquire(4);
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(d.expired());
  ledger.settle(d);
  EXPECT_EQ(ledger.remaining(), 7u);
  EXPECT_EQ(ledger.spent(), 3u);
  // A solve that blows its budget keeps polling; the tenant owes at most
  // the armed limit.
  Deadline blown = ledger.acquire(4);
  for (int i = 0; i < 20; ++i) (void)blown.expired();
  ledger.settle(blown);
  EXPECT_EQ(ledger.remaining(), 3u);
  EXPECT_EQ(ledger.spent(), 7u);
}

TEST(DeadlineLedger, ExhaustedLedgerHandsOutExpiredTokensUntilRefill) {
  DeadlineLedger ledger(2);
  Deadline d = ledger.acquire(0);
  (void)d.expired();
  (void)d.expired();
  ledger.settle(d);
  EXPECT_TRUE(ledger.exhausted());
  Deadline starved = ledger.acquire(100);
  EXPECT_TRUE(starved.expired());  // after_checks(0): born exhausted
  ledger.refill();
  EXPECT_FALSE(ledger.exhausted());
  EXPECT_EQ(ledger.remaining(), 2u);
  EXPECT_EQ(ledger.spent(), 2u);  // spent survives refills (lifetime total)
  EXPECT_FALSE(ledger.acquire(1).expired());
}

TEST(DeadlineLedger, UnlimitedLedgerArmsOnlyThePerSolveCap) {
  DeadlineLedger ledger;  // budget 0 = unlimited
  EXPECT_TRUE(ledger.unlimited());
  EXPECT_FALSE(ledger.exhausted());
  EXPECT_FALSE(ledger.acquire(0).active());  // inactive: callee's config
  EXPECT_EQ(ledger.acquire(5).check_limit(), 5u);
  Deadline d = ledger.acquire(5);
  (void)d.expired();
  ledger.settle(d);
  EXPECT_FALSE(ledger.exhausted());
}

}  // namespace
}  // namespace meda::util
