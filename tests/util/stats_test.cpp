#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <algorithm>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace meda::stats {
namespace {

TEST(Stats, MeanAndVariance) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(population_variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(population_stddev(xs), 2.0);
  EXPECT_NEAR(sample_variance(xs), 4.0 * 8.0 / 7.0, 1e-12);
}

TEST(Stats, MeanOfEmptyThrows) {
  EXPECT_THROW(mean({}), PreconditionError);
}

TEST(Stats, CovarianceOfIndependentShiftedCopies) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> ys = {11, 12, 13, 14, 15};
  EXPECT_DOUBLE_EQ(covariance(xs, ys), population_variance(xs));
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> up = {2, 4, 6, 8};
  const std::vector<double> down = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(pearson(xs, down), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSeriesIsZeroByConvention) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> flat = {5, 5, 5, 5};
  EXPECT_EQ(pearson(xs, flat), 0.0);
}

TEST(Stats, PearsonBoolMatchesDoublePearson) {
  Rng rng(5);
  std::vector<unsigned char> a(200), b(200);
  std::vector<double> ad(200), bd(200);
  for (int i = 0; i < 200; ++i) {
    a[i] = rng.bernoulli(0.4);
    b[i] = rng.bernoulli(0.6) ? a[i] : rng.bernoulli(0.5);
    ad[i] = a[i];
    bd[i] = b[i];
  }
  EXPECT_NEAR(pearson_bool(a, b), pearson(ad, bd), 1e-10);
}

TEST(Stats, PearsonBoolIdenticalVectorsIsOne) {
  std::vector<unsigned char> a = {1, 0, 1, 1, 0, 0, 1};
  EXPECT_NEAR(pearson_bool(a, a), 1.0, 1e-12);
}

TEST(Stats, LinearFitRecoversExactLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 - 0.25 * i);
  }
  const FitResult fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
  EXPECT_NEAR(fit.slope, -0.25, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
  EXPECT_NEAR(fit.r2_adjusted, 1.0, 1e-12);
}

TEST(Stats, LinearFitNoisyHasHighButImperfectR2) {
  Rng rng(7);
  std::vector<double> xs, ys;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(i);
    ys.push_back(1.0 + 2.0 * i + rng.normal(0.0, 3.0));
  }
  const FitResult fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 0.1);
  EXPECT_GT(fit.r2, 0.95);
  EXPECT_LT(fit.r2, 1.0);
  EXPECT_LE(fit.r2_adjusted, fit.r2);
}

TEST(Stats, LinearFitRejectsConstantX) {
  const std::vector<double> xs = {2, 2, 2, 2};
  const std::vector<double> ys = {1, 2, 3, 4};
  EXPECT_THROW(linear_fit(xs, ys), PreconditionError);
}

TEST(Stats, ExponentialFitRecoversDecayRate) {
  std::vector<double> xs, ys;
  for (int i = 0; i <= 40; ++i) {
    xs.push_back(i * 25.0);
    ys.push_back(0.8 * std::exp(-0.002 * i * 25.0));
  }
  const FitResult fit = exponential_fit(xs, ys);
  EXPECT_NEAR(fit.slope, -0.002, 1e-9);
  EXPECT_NEAR(std::exp(fit.intercept), 0.8, 1e-9);
  EXPECT_NEAR(fit.r2_adjusted, 1.0, 1e-9);
}

TEST(Stats, ExponentialFitRejectsNonPositiveY) {
  const std::vector<double> xs = {1, 2, 3};
  const std::vector<double> ys = {1.0, 0.0, 0.5};
  EXPECT_THROW(exponential_fit(xs, ys), PreconditionError);
}

TEST(Stats, RunningStatsMatchesBatch) {
  Rng rng(11);
  RunningStats acc;
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(5.0, 2.0);
    xs.push_back(x);
    acc.add(x);
  }
  EXPECT_EQ(acc.count(), 500u);
  EXPECT_NEAR(acc.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(acc.stddev(), sample_stddev(xs), 1e-9);
  EXPECT_DOUBLE_EQ(acc.min(), *std::min_element(xs.begin(), xs.end()));
  EXPECT_DOUBLE_EQ(acc.max(), *std::max_element(xs.begin(), xs.end()));
}

TEST(Stats, RunningStatsSingleSampleHasZeroStddev) {
  RunningStats acc;
  acc.add(3.0);
  EXPECT_EQ(acc.stddev(), 0.0);
  EXPECT_EQ(acc.mean(), 3.0);
}

TEST(Stats, RunningStatsEmptyMeanThrows) {
  RunningStats acc;
  EXPECT_THROW(acc.mean(), PreconditionError);
}

TEST(Stats, Ci95HalfwidthSmallSample) {
  RunningStats acc;
  acc.add(1.0);
  EXPECT_EQ(acc.ci95_halfwidth(), 0.0);
  acc.add(3.0);
  // n = 2, dof = 1: t = 12.706, sd = sqrt(2) → 12.706·sqrt(2)/sqrt(2).
  EXPECT_NEAR(acc.ci95_halfwidth(), 12.706, 1e-9);
}

TEST(Stats, Ci95HalfwidthShrinksWithSamples) {
  Rng rng(3);
  RunningStats small, large;
  for (int i = 0; i < 5; ++i) small.add(rng.normal(0.0, 1.0));
  for (int i = 0; i < 500; ++i) large.add(rng.normal(0.0, 1.0));
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
  // Asymptotic regime: ±1.96·sd/sqrt(n).
  EXPECT_NEAR(large.ci95_halfwidth(),
              1.96 * large.stddev() / std::sqrt(500.0), 1e-9);
}

}  // namespace
}  // namespace meda::stats
