#include "util/journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace meda::util {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(AppendJournal, DisabledWithEmptyPath) {
  AppendJournal journal;
  journal.open("", 0x1u, true);
  EXPECT_FALSE(journal.enabled());
  journal.append("dropped");  // no-op, must not throw
  EXPECT_TRUE(journal.records().empty());
}

TEST(AppendJournal, RoundTripsAppendedRecords) {
  const std::string path = temp_path("journal_roundtrip.txt");
  std::remove(path.c_str());
  {
    AppendJournal journal;
    journal.open(path, 0xFEEDu, false);
    ASSERT_TRUE(journal.enabled());
    journal.append("solve 1 a");
    journal.append("solve 2 b");
    ASSERT_EQ(journal.records().size(), 2u);  // appends visible immediately
    EXPECT_EQ(journal.records()[1], "solve 2 b");
  }
  AppendJournal resumed;
  resumed.open(path, 0xFEEDu, true);
  EXPECT_EQ(resumed.restored_count(), 2u);
  ASSERT_EQ(resumed.records().size(), 2u);
  EXPECT_EQ(resumed.records()[0], "solve 1 a");
  EXPECT_EQ(resumed.records()[1], "solve 2 b");
  // Appends after resume land behind the replayed prefix, on disk and in
  // records().
  resumed.append("solve 3 c");
  EXPECT_EQ(resumed.records().size(), 3u);
  EXPECT_EQ(read_file(path),
            read_file(path).substr(0, read_file(path).find('\n') + 1) +
                "solve 1 a\nsolve 2 b\nsolve 3 c\n");
}

TEST(AppendJournal, DigestMismatchStartsFresh) {
  const std::string path = temp_path("journal_digest.txt");
  std::remove(path.c_str());
  {
    AppendJournal journal;
    journal.open(path, 0xAAAAu, false);
    journal.append("stale");
  }
  AppendJournal resumed;
  resumed.open(path, 0xBBBBu, true);
  EXPECT_TRUE(resumed.enabled());
  EXPECT_EQ(resumed.restored_count(), 0u);
  EXPECT_TRUE(resumed.records().empty());
  // The stale file was replaced by a fresh header for the new digest.
  AppendJournal again;
  again.open(path, 0xBBBBu, true);
  EXPECT_EQ(again.restored_count(), 0u);
}

TEST(AppendJournal, GarbageOrWrongVersionStartsFresh) {
  const std::string path = temp_path("journal_garbage.txt");
  for (const char* contents :
       {"not a journal at all\n", "meda-journal v2 0000000000000001\n",
        "meda-journal v1 zzzz\nrecord\n", ""}) {
    {
      std::ofstream out(path, std::ios::trunc);
      out << contents;
    }
    AppendJournal journal;
    journal.open(path, 0x1u, true);
    EXPECT_TRUE(journal.enabled()) << contents;
    EXPECT_EQ(journal.restored_count(), 0u) << contents;
  }
}

TEST(AppendJournal, TornTailLineIsDropped) {
  const std::string path = temp_path("journal_torn.txt");
  std::remove(path.c_str());
  {
    AppendJournal journal;
    journal.open(path, 0xC0DEu, false);
    journal.append("complete 1");
    journal.append("complete 2");
  }
  {
    // Simulate a SIGKILL mid-append: a trailing record with no '\n'.
    std::ofstream out(path, std::ios::app);
    out << "torn rec";
  }
  AppendJournal resumed;
  resumed.open(path, 0xC0DEu, true);
  ASSERT_EQ(resumed.restored_count(), 2u);
  EXPECT_EQ(resumed.records()[1], "complete 2");
  // The torn tail is physically rewritten away, so a new append does not
  // splice onto it.
  resumed.append("complete 3");
  const std::string contents = read_file(path);
  EXPECT_EQ(contents.find("torn"), std::string::npos);
  EXPECT_NE(contents.find("complete 3\n"), std::string::npos);
}

TEST(AppendJournal, RejectsMultiLinePayloads) {
  const std::string path = temp_path("journal_multiline.txt");
  std::remove(path.c_str());
  AppendJournal journal;
  journal.open(path, 0x2u, false);
  EXPECT_THROW(journal.append("two\nlines"), PreconditionError);
}

TEST(AppendJournal, ReopenWithoutResumeTruncates) {
  const std::string path = temp_path("journal_truncate.txt");
  std::remove(path.c_str());
  {
    AppendJournal journal;
    journal.open(path, 0x3u, false);
    journal.append("old");
  }
  AppendJournal fresh;
  fresh.open(path, 0x3u, false);
  EXPECT_EQ(fresh.restored_count(), 0u);
  AppendJournal check;
  check.open(path, 0x3u, true);
  EXPECT_EQ(check.restored_count(), 0u);
}

}  // namespace
}  // namespace meda::util
