#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/check.hpp"

namespace meda {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Every line starts its second column at the same offset.
  EXPECT_NE(out.find("alpha  1"), std::string::npos);
  EXPECT_NE(out.find("b      22"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), PreconditionError);
}

TEST(TableFormat, FmtDouble) {
  EXPECT_EQ(fmt_double(0.5319, 3), "0.532");
  EXPECT_EQ(fmt_double(2.0, 1), "2.0");
}

TEST(TableFormat, FmtIntThousandsSeparators) {
  EXPECT_EQ(fmt_int(0), "0");
  EXPECT_EQ(fmt_int(999), "999");
  EXPECT_EQ(fmt_int(1913), "1,913");
  EXPECT_EQ(fmt_int(26720), "26,720");
  EXPECT_EQ(fmt_int(1234567), "1,234,567");
  EXPECT_EQ(fmt_int(-1913), "-1,913");
}

TEST(TableFormat, FmtSci) {
  EXPECT_EQ(fmt_sci(2.375e-15, 3), "2.375e-15");
}

}  // namespace
}  // namespace meda
