#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace meda {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = "/tmp/meda_csv_test.csv";
  {
    CsvWriter csv(path, {"assay", "router", "cycles"});
    ASSERT_TRUE(csv.is_open());
    csv.write_row({"CEP", "adaptive", "141"});
    csv.write_row({"CEP", "baseline", "162"});
  }
  EXPECT_EQ(read_file(path),
            "assay,router,cycles\nCEP,adaptive,141\nCEP,baseline,162\n");
  std::remove(path.c_str());
}

TEST(CsvWriter, EscapesCommasAndQuotes) {
  const std::string path = "/tmp/meda_csv_escape_test.csv";
  {
    CsvWriter csv(path, {"name", "note"});
    csv.write_row({"a,b", "say \"hi\""});
  }
  EXPECT_EQ(read_file(path), "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
  std::remove(path.c_str());
}

TEST(CsvWriter, RowWidthMismatchThrows) {
  const std::string path = "/tmp/meda_csv_width_test.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.write_row({"only"}), PreconditionError);
  std::remove(path.c_str());
}

TEST(CsvWriter, EmptyHeaderThrows) {
  EXPECT_THROW(CsvWriter("/tmp/meda_csv_empty.csv", {}), PreconditionError);
}

TEST(CsvWriter, UnwritablePathIsNotOpenButDoesNotThrow) {
  CsvWriter csv("/nonexistent-dir/out.csv", {"a"});
  EXPECT_FALSE(csv.is_open());
  EXPECT_NO_THROW(csv.write_row({"1"}));  // silently dropped
}

}  // namespace
}  // namespace meda
