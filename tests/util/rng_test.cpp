#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>

#include "util/check.hpp"

namespace meda {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformDegenerateIntervalReturnsBound) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform(3.0, 3.0), 3.0);
}

TEST(Rng, UniformRejectsReversedBounds) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform(5.0, 2.0), PreconditionError);
}

TEST(Rng, UniformIntCoversRangeInclusively) {
  Rng rng(3);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(0, 4));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 4);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliClampOutOfRange) {
  Rng rng(11);
  EXPECT_FALSE(rng.bernoulli(-0.5));
  EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(Rng, BernoulliFrequencyNearP) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.02);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(17);
  const std::array<double, 3> weights = {1.0, 0.0, 3.0};
  std::array<int, 3> counts = {0, 0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) counts[rng.categorical(weights)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.25, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.75, 0.02);
}

TEST(Rng, CategoricalRejectsAllZero) {
  Rng rng(17);
  const std::array<double, 2> weights = {0.0, 0.0};
  EXPECT_THROW(rng.categorical(weights), PreconditionError);
}

TEST(Rng, CategoricalRejectsNegative) {
  Rng rng(17);
  const std::array<double, 2> weights = {0.5, -0.1};
  EXPECT_THROW(rng.categorical(weights), PreconditionError);
}

TEST(Rng, NormalMomentsRoughlyMatch) {
  Rng rng(19);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 0.5);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.02);
  EXPECT_NEAR(var, 0.25, 0.02);
}

TEST(Rng, ForkedStreamsAreDecorrelated) {
  Rng parent(23);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIsDeterministicAndIndependentOfParentUse) {
  // A fork's stream is a pure function of (parent seed, consumed draws at
  // fork time, stream id): forking twice from identical parents yields
  // identical children, and draws made from the parent *after* the fork
  // must not perturb the child. The simulator relies on this to keep the
  // sensing channel decorrelated from the substrate.
  Rng parent_a(101), parent_b(101);
  Rng child_a = parent_a.fork(0x5E45);
  Rng child_b = parent_b.fork(0x5E45);
  for (int i = 0; i < 20; ++i) parent_a.next_u64();  // only parent_a drained
  for (int i = 0; i < 50; ++i)
    ASSERT_EQ(child_a.next_u64(), child_b.next_u64()) << "draw " << i;
}

TEST(Rng, Refork) {
  // Same stream id re-forked after the parent advanced gives a new stream —
  // fork ids alone do not collide across parent states.
  Rng parent(7);
  Rng first = parent.fork(5);
  parent.next_u64();
  Rng second = parent.fork(5);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (first.next_u64() == second.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(29);
  const auto sample = sample_without_replacement(rng, 50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  EXPECT_GE(*unique.begin(), 0);
  EXPECT_LT(*unique.rbegin(), 50);
}

TEST(Rng, SampleWholePopulation) {
  Rng rng(31);
  const auto sample = sample_without_replacement(rng, 10, 10);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleRejectsOversizedRequest) {
  Rng rng(31);
  EXPECT_THROW(sample_without_replacement(rng, 5, 6), PreconditionError);
}

}  // namespace
}  // namespace meda
