#include "geometry/direction.hpp"

#include <gtest/gtest.h>

#include "geometry/point.hpp"

namespace meda {
namespace {

TEST(Direction, UnitVectors) {
  EXPECT_EQ(unit(Dir::N), (Vec2i{0, 1}));
  EXPECT_EQ(unit(Dir::S), (Vec2i{0, -1}));
  EXPECT_EQ(unit(Dir::E), (Vec2i{1, 0}));
  EXPECT_EQ(unit(Dir::W), (Vec2i{-1, 0}));
}

TEST(Direction, OrdinalComponents) {
  EXPECT_EQ(vertical(Ordinal::NE), Dir::N);
  EXPECT_EQ(horizontal(Ordinal::NE), Dir::E);
  EXPECT_EQ(vertical(Ordinal::SW), Dir::S);
  EXPECT_EQ(horizontal(Ordinal::SW), Dir::W);
  EXPECT_EQ(vertical(Ordinal::NW), Dir::N);
  EXPECT_EQ(horizontal(Ordinal::NW), Dir::W);
  EXPECT_EQ(vertical(Ordinal::SE), Dir::S);
  EXPECT_EQ(horizontal(Ordinal::SE), Dir::E);
}

TEST(Direction, OrdinalUnitIsSumOfComponents) {
  for (Ordinal o : kAllOrdinals)
    EXPECT_EQ(unit(o), unit(vertical(o)) + unit(horizontal(o)));
}

TEST(Direction, Opposites) {
  for (Dir d : kAllDirs) {
    EXPECT_NE(opposite(d), d);
    EXPECT_EQ(opposite(opposite(d)), d);
    EXPECT_EQ(unit(opposite(d)) + unit(d), (Vec2i{0, 0}));
  }
}

TEST(Direction, IsVertical) {
  EXPECT_TRUE(is_vertical(Dir::N));
  EXPECT_TRUE(is_vertical(Dir::S));
  EXPECT_FALSE(is_vertical(Dir::E));
  EXPECT_FALSE(is_vertical(Dir::W));
}

TEST(Direction, Names) {
  EXPECT_EQ(to_string(Dir::N), "N");
  EXPECT_EQ(to_string(Ordinal::SW), "SW");
}

TEST(Point, ManhattanAndChebyshev) {
  EXPECT_EQ(manhattan({0, 0}, {3, 4}), 7);
  EXPECT_EQ(manhattan({-1, 2}, {2, -2}), 7);
  EXPECT_EQ(chebyshev({0, 0}, {3, 4}), 4);
  EXPECT_EQ(chebyshev({5, 5}, {5, 5}), 0);
}

}  // namespace
}  // namespace meda
