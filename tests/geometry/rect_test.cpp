#include "geometry/rect.hpp"

#include <gtest/gtest.h>

namespace meda {
namespace {

// Example 1 of the paper: δ = (3, 2, 7, 5).
TEST(Rect, PaperExample1Geometry) {
  const Rect d{3, 2, 7, 5};
  EXPECT_TRUE(d.valid());
  EXPECT_EQ(d.width(), 5);
  EXPECT_EQ(d.height(), 4);
  EXPECT_EQ(d.area(), 20);
  EXPECT_DOUBLE_EQ(d.aspect_ratio(), 5.0 / 4.0);
}

TEST(Rect, PaperExample1Membership) {
  const Rect d{3, 2, 7, 5};
  // U_ij = 1 exactly on [3,7]×[2,5].
  for (int x = 0; x < 12; ++x)
    for (int y = 0; y < 10; ++y)
      EXPECT_EQ(d.contains(x, y), x >= 3 && x <= 7 && y >= 2 && y <= 5)
          << "(" << x << ", " << y << ")";
}

TEST(Rect, NoneIsInvalid) {
  EXPECT_FALSE(Rect::none().valid());
}

TEST(Rect, FromSize) {
  const Rect r = Rect::from_size(2, 3, 4, 5);
  EXPECT_EQ(r, (Rect{2, 3, 5, 7}));
  EXPECT_EQ(r.width(), 4);
  EXPECT_EQ(r.height(), 5);
}

// Example 4: a 4×4 droplet at center (17.5, 2.5) spans (16, 1, 19, 4).
TEST(Rect, FromCenterMatchesPaperExample4) {
  EXPECT_EQ(Rect::from_center(17.5, 2.5, 4, 4), (Rect{16, 1, 19, 4}));
  EXPECT_EQ(Rect::from_center(17.5, 28.5, 4, 4), (Rect{16, 27, 19, 30}));
}

// Table IV M4: a 6×5 droplet at (40.5, 15.5) spans (38, 14, 43, 18).
TEST(Rect, FromCenterMatchesPaperTable4MagRow) {
  EXPECT_EQ(Rect::from_center(40.5, 15.5, 6, 5), (Rect{38, 14, 43, 18}));
  EXPECT_EQ(Rect::from_center(10.5, 15.5, 6, 5), (Rect{8, 14, 13, 18}));
}

TEST(Rect, CenterRoundTrips) {
  const Rect r = Rect::from_center(10.5, 20.5, 4, 4);
  EXPECT_DOUBLE_EQ(r.center_x(), 10.5);
  EXPECT_DOUBLE_EQ(r.center_y(), 20.5);
}

TEST(Rect, ContainsRect) {
  const Rect outer{0, 0, 9, 9};
  EXPECT_TRUE(outer.contains(Rect{0, 0, 9, 9}));
  EXPECT_TRUE(outer.contains(Rect{3, 3, 5, 5}));
  EXPECT_FALSE(outer.contains(Rect{3, 3, 10, 5}));
  EXPECT_FALSE(outer.contains(Rect{-1, 0, 5, 5}));
}

TEST(Rect, Intersects) {
  const Rect a{0, 0, 4, 4};
  EXPECT_TRUE(a.intersects(Rect{4, 4, 8, 8}));   // share the corner cell
  EXPECT_FALSE(a.intersects(Rect{5, 0, 8, 4}));  // adjacent, disjoint
  EXPECT_FALSE(a.intersects(Rect::none()));
}

TEST(Rect, ShiftedAndInflated) {
  const Rect r{2, 3, 4, 5};
  EXPECT_EQ(r.shifted(1, -2), (Rect{3, 1, 5, 3}));
  EXPECT_EQ(r.inflated(3), (Rect{-1, 0, 7, 8}));
}

TEST(Rect, UnionWith) {
  const Rect a{0, 0, 2, 2};
  const Rect b{5, 1, 6, 7};
  EXPECT_EQ(a.union_with(b), (Rect{0, 0, 6, 7}));
  EXPECT_EQ(Rect::none().union_with(b), b);
  EXPECT_EQ(a.union_with(Rect::none()), a);
}

TEST(Rect, IntersectionWith) {
  const Rect a{0, 0, 5, 5};
  const Rect b{3, 3, 8, 8};
  EXPECT_EQ(a.intersection_with(b), (Rect{3, 3, 5, 5}));
  EXPECT_FALSE(a.intersection_with(Rect{6, 6, 8, 8}).valid());
}

TEST(Rect, ManhattanGap) {
  const Rect a{0, 0, 2, 2};
  EXPECT_EQ(a.manhattan_gap(Rect{1, 1, 3, 3}), 0);  // overlapping
  EXPECT_EQ(a.manhattan_gap(Rect{3, 0, 5, 2}), 1);  // edge-adjacent
  EXPECT_EQ(a.manhattan_gap(Rect{4, 0, 6, 2}), 2);
  EXPECT_EQ(a.manhattan_gap(Rect{3, 3, 5, 5}), 2);  // diagonal adjacency
  EXPECT_EQ(a.manhattan_gap(Rect{0, 5, 2, 7}), 3);
}

TEST(Rect, HashDistinguishesRects) {
  const std::hash<Rect> h;
  EXPECT_NE(h(Rect{0, 0, 1, 1}), h(Rect{0, 0, 1, 2}));
  EXPECT_EQ(h(Rect{3, 2, 7, 5}), h(Rect{3, 2, 7, 5}));
}

}  // namespace
}  // namespace meda
