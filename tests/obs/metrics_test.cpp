#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "json_lint.hpp"

namespace meda::obs {
namespace {

using meda::testing::JsonLint;

TEST(MetricsRegistry, NullSinkUntilEnabled) {
  MetricsRegistry registry;
  registry.add("a");
  registry.set("g", 1.0);
  registry.observe("h", 2.0, kPow2Buckets);
  EXPECT_TRUE(registry.empty());
  EXPECT_EQ(registry.counter("a"), 0u);
  registry.enable();
  registry.add("a");
  EXPECT_EQ(registry.counter("a"), 1u);
  registry.disable();
  registry.add("a");
  EXPECT_EQ(registry.counter("a"), 1u);
}

TEST(MetricsRegistry, CountersAccumulateWithDefaultAndExplicitDeltas) {
  MetricsRegistry registry;
  registry.enable();
  registry.add("synth.calls");
  registry.add("synth.calls");
  registry.add("synth.states", 42);
  EXPECT_EQ(registry.counter("synth.calls"), 2u);
  EXPECT_EQ(registry.counter("synth.states"), 42u);
  EXPECT_EQ(registry.counter("never.recorded"), 0u);
}

TEST(MetricsRegistry, GaugesKeepTheLastValue) {
  MetricsRegistry registry;
  registry.enable();
  registry.set("filter.suspects", 3.0);
  registry.set("filter.suspects", 1.0);
  EXPECT_DOUBLE_EQ(registry.gauge("filter.suspects"), 1.0);
  EXPECT_DOUBLE_EQ(registry.gauge("never.recorded"), 0.0);
}

TEST(Histogram, CumulativeBucketsPlusInfAndMeanRecovery) {
  MetricsRegistry registry;
  registry.enable();
  const double bounds[] = {1.0, 10.0, 100.0};
  registry.observe("h", 0.5, bounds);
  registry.observe("h", 5.0, bounds);
  registry.observe("h", 50.0, bounds);
  registry.observe("h", 5000.0, bounds);  // lands in the implicit +inf bucket
  const Histogram* h = registry.histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 4u);
  EXPECT_DOUBLE_EQ(h->sum(), 5055.5);
  ASSERT_EQ(h->bucket_counts().size(), 3u);
  EXPECT_EQ(h->bucket_counts()[0], 1u);  // ≤ 1
  EXPECT_EQ(h->bucket_counts()[1], 2u);  // ≤ 10 (cumulative)
  EXPECT_EQ(h->bucket_counts()[2], 3u);  // ≤ 100
  EXPECT_EQ(registry.histogram("never.recorded"), nullptr);
}

TEST(MetricsRegistry, TextSnapshotIsNameSortedAndDeterministic) {
  // Two registries fed the same series in different orders must produce
  // byte-identical snapshots (map iteration is name-ordered).
  MetricsRegistry a;
  a.enable();
  a.add("zeta", 2);
  a.set("alpha", 0.5);
  a.observe("mid", 3.0, kPow2Buckets);

  MetricsRegistry b;
  b.enable();
  b.observe("mid", 3.0, kPow2Buckets);
  b.add("zeta");
  b.add("zeta");
  b.set("alpha", 0.25);
  b.set("alpha", 0.5);

  EXPECT_EQ(a.snapshot_text(), b.snapshot_text());
  EXPECT_EQ(a.snapshot_json(), b.snapshot_json());

  // Within a series kind, lines come out name-sorted regardless of the
  // order the counters were first touched.
  a.add("beta");
  const std::string text = a.snapshot_text();
  const std::size_t beta = text.find("beta");
  const std::size_t zeta = text.find("zeta");
  ASSERT_NE(beta, std::string::npos);
  ASSERT_NE(zeta, std::string::npos);
  EXPECT_LT(beta, zeta);
}

TEST(MetricsRegistry, JsonSnapshotIsWellFormed) {
  MetricsRegistry registry;
  registry.enable();
  registry.add("sched.cycles", 100);
  registry.set("filter.suspects", 2.0);
  registry.observe("synth.seconds", 0.02, kSecondsBuckets);
  const std::string json = registry.snapshot_json();
  EXPECT_TRUE(JsonLint::valid(json)) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(MetricsRegistry, WriteSnapshotPicksFormatByExtension) {
  MetricsRegistry registry;
  registry.enable();
  registry.add("a", 7);

  const std::string json_path = ::testing::TempDir() + "obs_metrics.json";
  const std::string text_path = ::testing::TempDir() + "obs_metrics.txt";
  registry.write_snapshot(json_path);
  registry.write_snapshot(text_path);

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };
  EXPECT_EQ(slurp(json_path), registry.snapshot_json());
  EXPECT_EQ(slurp(text_path), registry.snapshot_text());
  std::remove(json_path.c_str());
  std::remove(text_path.c_str());
}

TEST(MetricsRegistry, ClearDropsSeriesButKeepsEnabledFlag) {
  MetricsRegistry registry;
  registry.enable();
  registry.add("a");
  registry.clear();
  EXPECT_TRUE(registry.empty());
  EXPECT_TRUE(registry.enabled());
  registry.add("a");
  EXPECT_EQ(registry.counter("a"), 1u);
}

}  // namespace
}  // namespace meda::obs
