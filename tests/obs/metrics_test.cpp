#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <span>
#include <sstream>

#include "json_lint.hpp"

namespace meda::obs {
namespace {

using meda::testing::JsonLint;

TEST(MetricsRegistry, NullSinkUntilEnabled) {
  MetricsRegistry registry;
  registry.add("a");
  registry.set("g", 1.0);
  registry.observe("h", 2.0, kPow2Buckets);
  EXPECT_TRUE(registry.empty());
  EXPECT_EQ(registry.counter("a"), 0u);
  registry.enable();
  registry.add("a");
  EXPECT_EQ(registry.counter("a"), 1u);
  registry.disable();
  registry.add("a");
  EXPECT_EQ(registry.counter("a"), 1u);
}

TEST(MetricsRegistry, CountersAccumulateWithDefaultAndExplicitDeltas) {
  MetricsRegistry registry;
  registry.enable();
  registry.add("synth.calls");
  registry.add("synth.calls");
  registry.add("synth.states", 42);
  EXPECT_EQ(registry.counter("synth.calls"), 2u);
  EXPECT_EQ(registry.counter("synth.states"), 42u);
  EXPECT_EQ(registry.counter("never.recorded"), 0u);
}

TEST(MetricsRegistry, GaugesKeepTheLastValue) {
  MetricsRegistry registry;
  registry.enable();
  registry.set("filter.suspects", 3.0);
  registry.set("filter.suspects", 1.0);
  EXPECT_DOUBLE_EQ(registry.gauge("filter.suspects"), 1.0);
  EXPECT_DOUBLE_EQ(registry.gauge("never.recorded"), 0.0);
}

TEST(Histogram, CumulativeBucketsPlusInfAndMeanRecovery) {
  MetricsRegistry registry;
  registry.enable();
  const double bounds[] = {1.0, 10.0, 100.0};
  registry.observe("h", 0.5, bounds);
  registry.observe("h", 5.0, bounds);
  registry.observe("h", 50.0, bounds);
  registry.observe("h", 5000.0, bounds);  // lands in the implicit +inf bucket
  const Histogram* h = registry.histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 4u);
  EXPECT_DOUBLE_EQ(h->sum(), 5055.5);
  ASSERT_EQ(h->bucket_counts().size(), 3u);
  EXPECT_EQ(h->bucket_counts()[0], 1u);  // ≤ 1
  EXPECT_EQ(h->bucket_counts()[1], 2u);  // ≤ 10 (cumulative)
  EXPECT_EQ(h->bucket_counts()[2], 3u);  // ≤ 100
  EXPECT_EQ(registry.histogram("never.recorded"), nullptr);
}

TEST(Histogram, TracksExactMinMaxSum) {
  Histogram h = Histogram::log2();
  EXPECT_DOUBLE_EQ(h.min(), 0.0);  // empty histogram reads as zeros
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  h.observe(5.0);
  EXPECT_DOUBLE_EQ(h.min(), 5.0);  // first observation sets both ends
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  h.observe(2.0);
  h.observe(40.0);
  EXPECT_DOUBLE_EQ(h.min(), 2.0);
  EXPECT_DOUBLE_EQ(h.max(), 40.0);
  EXPECT_DOUBLE_EQ(h.sum(), 47.0);
  EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, Log2BucketsPlacePowersOfTwoOnTheirOwnBound) {
  Histogram h = Histogram::log2();
  h.observe(1.0);   // → bound 1
  h.observe(2.0);   // → bound 2, not 4
  h.observe(3.0);   // → bound 4
  h.observe(4.0);   // → bound 4
  h.observe(9.0);   // → bound 16
  const auto buckets = h.cumulative_buckets();
  // Gap-free run of exponents from 1 up through 16 (bound 8 renders even
  // though nothing landed in it).
  ASSERT_EQ(buckets.size(), 5u);
  EXPECT_DOUBLE_EQ(buckets[0].first, 1.0);
  EXPECT_DOUBLE_EQ(buckets[1].first, 2.0);
  EXPECT_DOUBLE_EQ(buckets[2].first, 4.0);
  EXPECT_DOUBLE_EQ(buckets[3].first, 8.0);
  EXPECT_DOUBLE_EQ(buckets[4].first, 16.0);
  EXPECT_EQ(buckets[0].second, 1u);  // cumulative counts
  EXPECT_EQ(buckets[1].second, 2u);
  EXPECT_EQ(buckets[2].second, 4u);
  EXPECT_EQ(buckets[3].second, 4u);
  EXPECT_EQ(buckets[4].second, 5u);
}

TEST(Histogram, Log2NonPositiveObservationsLandInTheZeroBucket) {
  Histogram h = Histogram::log2();
  h.observe(0.0);
  h.observe(-3.0);
  h.observe(2.0);
  const auto buckets = h.cumulative_buckets();
  ASSERT_GE(buckets.size(), 2u);
  EXPECT_DOUBLE_EQ(buckets[0].first, 0.0);
  EXPECT_EQ(buckets[0].second, 2u);
  EXPECT_DOUBLE_EQ(buckets.back().first, 2.0);
  EXPECT_EQ(buckets.back().second, 3u);
  EXPECT_DOUBLE_EQ(h.min(), -3.0);
}

TEST(Histogram, QuantilesAreBucketBoundsClampedToObservedRange) {
  const double bounds[] = {1.0, 10.0, 100.0};
  Histogram h{std::span<const double>(bounds)};
  for (int i = 0; i < 9; ++i) h.observe(5.0);  // bucket ≤10
  h.observe(70.0);                             // bucket ≤100
  // rank(p50) = 5 → bound 10; rank(p90) = 9 → bound 10; rank(p99) = 10 →
  // bound 100, clamped to the exact max 70.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.9), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 70.0);
  // A single observation reports itself at every quantile: the bucket
  // bound (1.0 here for 0.5) clamps down to the exact max.
  Histogram single{std::span<const double>(bounds)};
  single.observe(0.5);
  EXPECT_DOUBLE_EQ(single.quantile(0.5), 0.5);
  EXPECT_DOUBLE_EQ(single.quantile(0.99), 0.5);
}

TEST(Histogram, QuantileResolvesPlusInfBucketToMax) {
  const double bounds[] = {1.0, 2.0};
  Histogram h{std::span<const double>(bounds)};
  h.observe(1.0);
  h.observe(500.0);  // +inf bucket
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 500.0);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_DOUBLE_EQ(snap.max, 500.0);
  EXPECT_DOUBLE_EQ(snap.p99, 500.0);
}

TEST(MetricsRegistry, ObserveLog2CreatesALog2Histogram) {
  MetricsRegistry registry;
  registry.observe_log2("h", 8.0);  // disabled: dropped
  EXPECT_TRUE(registry.empty());
  registry.enable();
  registry.observe_log2("h", 8.0);
  registry.observe_log2("h", 9.0);
  const Histogram* h = registry.histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 2u);
  const auto buckets = h->cumulative_buckets();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_DOUBLE_EQ(buckets[0].first, 8.0);
  EXPECT_DOUBLE_EQ(buckets[1].first, 16.0);
}

TEST(MetricsRegistry, SnapshotCarriesDerivedHistogramLines) {
  MetricsRegistry registry;
  registry.enable();
  const double bounds[] = {1.0, 10.0};
  registry.observe("lat_seconds", 0.5, bounds);
  registry.observe("lat_seconds", 7.0, bounds);
  const std::string text = registry.snapshot_text();
  for (const char* stat :
       {"_count", "_sum", "_min", "_max", "_p50", "_p90", "_p99"})
    EXPECT_NE(text.find(std::string("lat_seconds") + stat),
              std::string::npos)
        << stat << " missing from:\n" << text;
  EXPECT_NE(text.find("lat_seconds{le=\"+Inf\"} 2"), std::string::npos);
  const std::string json = registry.snapshot_json();
  EXPECT_TRUE(JsonLint::valid(json)) << json;
  for (const char* field :
       {"\"count\"", "\"sum\"", "\"min\"", "\"max\"", "\"p50\"", "\"p90\"",
        "\"p99\"", "\"buckets\""})
    EXPECT_NE(json.find(field), std::string::npos) << field;
}

TEST(MetricsRegistry, HistogramSnapshotsAreOrderIndependent) {
  // The same multiset of observations in any order → byte-identical
  // snapshots; this is what makes --metrics deterministic at any --jobs.
  MetricsRegistry a;
  a.enable();
  for (const double v : {3.0, 100.0, 0.0, 7.0, 7.0}) a.observe_log2("h", v);
  MetricsRegistry b;
  b.enable();
  for (const double v : {7.0, 0.0, 7.0, 100.0, 3.0}) b.observe_log2("h", v);
  EXPECT_EQ(a.snapshot_text(), b.snapshot_text());
  EXPECT_EQ(a.snapshot_json(), b.snapshot_json());
}

TEST(MetricsRegistry, TextSnapshotIsNameSortedAndDeterministic) {
  // Two registries fed the same series in different orders must produce
  // byte-identical snapshots (map iteration is name-ordered).
  MetricsRegistry a;
  a.enable();
  a.add("zeta", 2);
  a.set("alpha", 0.5);
  a.observe("mid", 3.0, kPow2Buckets);

  MetricsRegistry b;
  b.enable();
  b.observe("mid", 3.0, kPow2Buckets);
  b.add("zeta");
  b.add("zeta");
  b.set("alpha", 0.25);
  b.set("alpha", 0.5);

  EXPECT_EQ(a.snapshot_text(), b.snapshot_text());
  EXPECT_EQ(a.snapshot_json(), b.snapshot_json());

  // Within a series kind, lines come out name-sorted regardless of the
  // order the counters were first touched.
  a.add("beta");
  const std::string text = a.snapshot_text();
  const std::size_t beta = text.find("beta");
  const std::size_t zeta = text.find("zeta");
  ASSERT_NE(beta, std::string::npos);
  ASSERT_NE(zeta, std::string::npos);
  EXPECT_LT(beta, zeta);
}

TEST(MetricsRegistry, JsonSnapshotIsWellFormed) {
  MetricsRegistry registry;
  registry.enable();
  registry.add("sched.cycles", 100);
  registry.set("filter.suspects", 2.0);
  registry.observe("synth.seconds", 0.02, kSecondsBuckets);
  const std::string json = registry.snapshot_json();
  EXPECT_TRUE(JsonLint::valid(json)) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(MetricsRegistry, WriteSnapshotPicksFormatByExtension) {
  MetricsRegistry registry;
  registry.enable();
  registry.add("a", 7);

  const std::string json_path = ::testing::TempDir() + "obs_metrics.json";
  const std::string text_path = ::testing::TempDir() + "obs_metrics.txt";
  registry.write_snapshot(json_path);
  registry.write_snapshot(text_path);

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };
  EXPECT_EQ(slurp(json_path), registry.snapshot_json());
  EXPECT_EQ(slurp(text_path), registry.snapshot_text());
  std::remove(json_path.c_str());
  std::remove(text_path.c_str());
}

TEST(MetricsRegistry, ClearDropsSeriesButKeepsEnabledFlag) {
  MetricsRegistry registry;
  registry.enable();
  registry.add("a");
  registry.clear();
  EXPECT_TRUE(registry.empty());
  EXPECT_TRUE(registry.enabled());
  registry.add("a");
  EXPECT_EQ(registry.counter("a"), 1u);
}

}  // namespace
}  // namespace meda::obs
