#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>

#include "assay/benchmarks.hpp"
#include "core/scheduler.hpp"
#include "obs/obs.hpp"
#include "sim/simulated_chip.hpp"
#include "json_lint.hpp"

/// Integration coverage for the observability layer: a real seeded scheduler
/// run must export a well-formed Chrome trace with properly nested spans and
/// cycle-domain counter tracks, produce byte-identical metric snapshots on
/// identical seeds, and — crucially — leave the simulation itself untouched:
/// ExecutionStats from an instrumented run must equal the null-sink run's.

namespace meda::obs {
namespace {

using meda::testing::JsonLint;

sim::SimulatedChipConfig noisy_chip_config() {
  sim::SimulatedChipConfig config;
  config.chip.width = assay::kChipWidth;
  config.chip.height = assay::kChipHeight;
  config.sensor.bit_flip_p = 0.02;
  config.sensor.stuck_fraction = 0.01;
  return config;
}

core::SchedulerConfig robust_router() {
  core::SchedulerConfig config;
  config.filter.enabled = true;
  config.recovery.enabled = true;
  config.max_cycles = 2000;
  return config;
}

core::ExecutionStats run_seeded(std::uint64_t seed) {
  sim::SimulatedChip chip(noisy_chip_config(), Rng(seed));
  core::Scheduler scheduler(robust_router());
  return scheduler.run(chip, assay::covid_rat());
}

/// The process-global context must not leak state between tests (or into the
/// rest of the suite): every test starts and ends with null sinks.
class ObsScheduler : public ::testing::Test {
 protected:
  void SetUp() override { ctx().reset(); }
  void TearDown() override { ctx().reset(); }
};

TEST_F(ObsScheduler, TraceExportsNestedSpansAndCycleTracks) {
#ifdef MEDA_OBS_DISABLED
  GTEST_SKIP() << "instrumentation compiled out (MEDA_OBS=OFF)";
#endif
  ctx().tracer().enable();
  const core::ExecutionStats stats = run_seeded(7);
  EXPECT_TRUE(stats.success) << stats.failure_reason;

  const Tracer& tracer = ctx().tracer();
  ASSERT_GT(tracer.event_count(), 0u);
  EXPECT_TRUE(JsonLint::valid(tracer.to_json()));

  // Duration spans balance per track, never dip below depth 0, and include
  // the scheduler → synthesis nesting the issue calls for.
  std::map<std::uint64_t, int> depth;
  std::map<std::string, int> begins;
  std::uint64_t async_b = 0, async_e = 0, counters = 0, cycle_events = 0;
  for (const TraceEvent& event : tracer.events()) {
    switch (event.ph) {
      case 'B':
        ++depth[event.tid];
        ++begins[event.name];
        break;
      case 'E':
        ASSERT_GT(depth[event.tid], 0) << "unbalanced E on tid " << event.tid;
        --depth[event.tid];
        break;
      case 'b': ++async_b; break;
      case 'e': ++async_e; break;
      case 'C': ++counters; break;
      default: break;
    }
    if (event.pid == TraceTrack::kCyclePid) ++cycle_events;
  }
  for (const auto& [tid, d] : depth) EXPECT_EQ(d, 0) << "tid " << tid;
  EXPECT_EQ(begins["execute"], 1);
  EXPECT_GT(begins["cycle"], 0);
  // The adaptive path synthesizes through the incremental entry point
  // ("resynthesize" spans, warm or cold); detours and the baseline keep the
  // plain "synthesize" span.
  EXPECT_GT(begins["synthesize"] + begins["resynthesize"], 0);
  EXPECT_GT(begins["mdp_build"], 0);
  // Per-job async spans pair up; every route opened also closed.
  EXPECT_GT(async_b, 0u);
  EXPECT_EQ(async_b, async_e);
  // Cycle-domain counter tracks (droplet count & co) landed on pid 2.
  EXPECT_GT(counters, 0u);
  EXPECT_GT(cycle_events, 0u);
}

TEST_F(ObsScheduler, SynthesisSpansNestInsideTheRunSpan) {
#ifdef MEDA_OBS_DISABLED
  GTEST_SKIP() << "instrumentation compiled out (MEDA_OBS=OFF)";
#endif
  ctx().tracer().enable();
  run_seeded(7);
  // Replay the B/E stream: whenever a synthesis span ("synthesize" or the
  // incremental "resynthesize") is open, the "execute" span must be open
  // too (synthesis happens inside the run).
  const auto is_synth = [](const std::string& name) {
    return name == "synthesize" || name == "resynthesize";
  };
  int execute_depth = 0, synth_depth = 0;
  std::vector<std::string> stack;
  for (const TraceEvent& event : ctx().tracer().events()) {
    if (event.tid != TraceTrack::kMainTid) continue;
    if (event.ph == 'B') {
      stack.push_back(event.name);
      if (event.name == "execute") ++execute_depth;
      if (is_synth(event.name)) {
        ++synth_depth;
        EXPECT_GT(execute_depth, 0) << "synthesize outside execute";
      }
    } else if (event.ph == 'E') {
      ASSERT_FALSE(stack.empty());
      if (stack.back() == "execute") --execute_depth;
      if (is_synth(stack.back())) --synth_depth;
      stack.pop_back();
    }
  }
  EXPECT_TRUE(stack.empty());
  EXPECT_EQ(execute_depth, 0);
  EXPECT_EQ(synth_depth, 0);
}

/// Strips `_seconds`-suffixed series (the only nondeterministic ones — see
/// metrics.hpp) from a text snapshot.
std::string strip_time_series(const std::string& snapshot) {
  std::istringstream in(snapshot);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("_seconds") == std::string::npos) out << line << '\n';
  }
  return out.str();
}

TEST_F(ObsScheduler, MetricsSnapshotsAreDeterministicForAFixedSeed) {
#ifdef MEDA_OBS_DISABLED
  GTEST_SKIP() << "instrumentation compiled out (MEDA_OBS=OFF)";
#endif
  ctx().metrics().enable();
  run_seeded(7);
  const std::string first = strip_time_series(ctx().metrics().snapshot_text());

  ctx().reset();
  ctx().metrics().enable();
  run_seeded(7);
  const std::string second =
      strip_time_series(ctx().metrics().snapshot_text());

  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // The snapshot carries the scheduler/synthesis/filter series the docs
  // promise.
  EXPECT_NE(first.find("sched.runs"), std::string::npos);
  EXPECT_NE(first.find("synth.calls"), std::string::npos);
  EXPECT_NE(first.find("filter.frames"), std::string::npos);
  EXPECT_TRUE(JsonLint::valid(ctx().metrics().snapshot_json()));
}

TEST_F(ObsScheduler, NullSinkRunMatchesInstrumentedRunExactly) {
  // Observability must be read-only: enabling the sinks cannot perturb the
  // simulation. Compare everything except wall-clock time.
  const core::ExecutionStats quiet = run_seeded(7);

  ctx().tracer().enable();
  ctx().metrics().enable();
  const core::ExecutionStats loud = run_seeded(7);

  EXPECT_EQ(quiet.success, loud.success);
  EXPECT_EQ(quiet.cycles, loud.cycles);
  EXPECT_EQ(quiet.synthesis_calls, loud.synthesis_calls);
  EXPECT_EQ(quiet.library_hits, loud.library_hits);
  EXPECT_EQ(quiet.resyntheses, loud.resyntheses);
  EXPECT_EQ(quiet.completed_mos, loud.completed_mos);
  EXPECT_EQ(quiet.aborted_mos, loud.aborted_mos);
  EXPECT_EQ(quiet.recovery, loud.recovery);
  EXPECT_EQ(quiet.recovery_events, loud.recovery_events);
  EXPECT_EQ(quiet.events, loud.events);
  ASSERT_EQ(quiet.mo_timings.size(), loud.mo_timings.size());
  for (std::size_t i = 0; i < quiet.mo_timings.size(); ++i) {
    EXPECT_EQ(quiet.mo_timings[i].activated, loud.mo_timings[i].activated);
    EXPECT_EQ(quiet.mo_timings[i].completed, loud.mo_timings[i].completed);
  }
}

TEST_F(ObsScheduler, EventLogSupersedesRecoveryEvents) {
  // The unified event log is filled unconditionally (no sinks needed) and
  // contains at least the ladder firings the legacy view records.
  const core::ExecutionStats stats = run_seeded(7);
  EXPECT_GE(stats.events.size(), stats.recovery_events.size());
  for (const core::RecoveryEvent& legacy : stats.recovery_events) {
    const bool mirrored = std::any_of(
        stats.events.begin(), stats.events.end(), [&](const Event& e) {
          return e.category == "recovery" && e.cycle == legacy.cycle &&
                 e.name == core::to_string(legacy.action) &&
                 e.scope == legacy.mo;
        });
    EXPECT_TRUE(mirrored) << "unmirrored ladder firing at cycle "
                          << legacy.cycle;
  }
  // And the formatted log is consumable.
  EXPECT_TRUE(JsonLint::valid(events_json(stats.events)));
}

}  // namespace
}  // namespace meda::obs
