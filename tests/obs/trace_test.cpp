#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/events.hpp"
#include "json_lint.hpp"

namespace meda::obs {
namespace {

using meda::testing::JsonLint;

TEST(Stopwatch, TotalAndLapAreMonotonic) {
  Stopwatch watch;
  const double a = watch.total_seconds();
  const double lap = watch.lap_seconds();
  const double b = watch.total_seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(lap, 0.0);
  EXPECT_GE(b, a);
}

TEST(JsonQuote, EscapesControlAndSpecialCharacters) {
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_quote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(json_quote("a\nb"), "\"a\\nb\"");
  EXPECT_TRUE(JsonLint::valid(json_quote(std::string("\x01\x1f tab\t"))));
}

TEST(Tracer, NullSinkUntilEnabled) {
  Tracer tracer;
  tracer.begin("cat", "span");
  tracer.end();
  tracer.instant("cat", "marker");
  tracer.cycle_counter("droplets", 3, 17);
  EXPECT_EQ(tracer.event_count(), 0u);
  tracer.enable();
  tracer.instant("cat", "marker");
  EXPECT_EQ(tracer.event_count(), 1u);
  tracer.disable();
  tracer.instant("cat", "marker");
  EXPECT_EQ(tracer.event_count(), 1u);
}

TEST(Tracer, SpansNestAndBalance) {
  Tracer tracer;
  tracer.enable();
  {
    SpanScope outer(tracer, "sched", "execute");
    {
      SpanScope inner(tracer, "synth", "synthesize");
      inner.arg("states", std::int64_t{42});
    }
  }
  const auto& events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].ph, 'B');
  EXPECT_EQ(events[0].name, "execute");
  EXPECT_EQ(events[1].ph, 'B');
  EXPECT_EQ(events[1].name, "synthesize");
  EXPECT_EQ(events[2].ph, 'E');  // inner closes first (proper nesting)
  EXPECT_EQ(events[3].ph, 'E');
  // Timestamps are monotone within the track.
  EXPECT_LE(events[0].ts, events[1].ts);
  EXPECT_LE(events[1].ts, events[2].ts);
  EXPECT_LE(events[2].ts, events[3].ts);
  // The inner span's args rode along on its closing event.
  ASSERT_EQ(events[2].args.size(), 1u);
  EXPECT_EQ(events[2].args[0].first, "states");
  EXPECT_EQ(events[2].args[0].second, "42");
}

TEST(Tracer, AsyncSpansCarryPairingIds) {
  Tracer tracer;
  tracer.enable();
  tracer.async_begin("job", "MO 1 route", 7);
  tracer.async_end("job", "MO 1 route", 7, {{"outcome", "\"arrived\""}});
  const auto& events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].ph, 'b');
  EXPECT_EQ(events[1].ph, 'e');
  EXPECT_EQ(events[0].id, 7u);
  EXPECT_EQ(events[1].id, 7u);
  EXPECT_EQ(events[0].tid, TraceTrack::kJobTid);
}

TEST(Tracer, CycleDomainEventsLandOnTheCyclePid) {
  Tracer tracer;
  tracer.enable();
  tracer.cycle_counter("droplets_on_chip", 4, 123);
  tracer.cycle_instant("health-change", 124);
  const auto& events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].ph, 'C');
  EXPECT_EQ(events[0].pid, TraceTrack::kCyclePid);
  EXPECT_EQ(events[0].ts, 123u);  // ts IS the operational cycle
  EXPECT_EQ(events[1].ph, 'i');
  EXPECT_EQ(events[1].ts, 124u);
}

TEST(Tracer, ExportsSyntacticallyValidChromeTraceJson) {
  Tracer tracer;
  tracer.enable();
  {
    SpanScope span(tracer, "sched", "execute");
    span.arg("label", "quote\"me\n");
    span.arg("ratio", 0.25);
    tracer.instant("event", "watchdog-resense", "stuck at (3,4)");
  }
  tracer.async_begin("job", "MO 0 route", 1);
  tracer.async_end("job", "MO 0 route", 1);
  tracer.cycle_counter("droplets_on_chip", 2, 9);
  const std::string json = tracer.to_json();
  EXPECT_TRUE(JsonLint::valid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  // Metadata names both time domains for the trace viewer.
  EXPECT_NE(json.find("process_name"), std::string::npos);
}

TEST(Tracer, WriteJsonRoundTripsThroughAFile) {
  Tracer tracer;
  tracer.enable();
  tracer.instant("cat", "marker");
  const std::string path = ::testing::TempDir() + "obs_trace_test.json";
  tracer.write_json(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_TRUE(JsonLint::valid(buffer.str()));
  EXPECT_EQ(buffer.str(), tracer.to_json());
  std::remove(path.c_str());
}

TEST(Tracer, ClearDropsEventsButKeepsEnabledFlag) {
  Tracer tracer;
  tracer.enable();
  tracer.instant("cat", "marker");
  tracer.clear();
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_TRUE(tracer.enabled());
}

TEST(Events, FormatAndJson) {
  const std::vector<Event> events = {
      {412, "recovery", "quarantine", 3, "5 cell(s) blocking (7,8)"},
      {500, "stall", "blocked-by-droplet", -1, ""},
  };
  const std::string text = format_events(events);
  EXPECT_NE(text.find("cycle 412"), std::string::npos);
  EXPECT_NE(text.find("[recovery/quarantine]"), std::string::npos);
  EXPECT_NE(text.find("MO 3"), std::string::npos);
  EXPECT_NE(text.find("blocked-by-droplet"), std::string::npos);
  EXPECT_TRUE(JsonLint::valid(events_json(events)));
}

}  // namespace
}  // namespace meda::obs
