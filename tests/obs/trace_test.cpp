#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/events.hpp"
#include "json_lint.hpp"

namespace meda::obs {
namespace {

using meda::testing::JsonLint;

TEST(Stopwatch, TotalAndLapAreMonotonic) {
  Stopwatch watch;
  const double a = watch.total_seconds();
  const double lap = watch.lap_seconds();
  const double b = watch.total_seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(lap, 0.0);
  EXPECT_GE(b, a);
}

TEST(JsonQuote, EscapesControlAndSpecialCharacters) {
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_quote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(json_quote("a\nb"), "\"a\\nb\"");
  EXPECT_TRUE(JsonLint::valid(json_quote(std::string("\x01\x1f tab\t"))));
}

TEST(JsonQuote, EscapesEveryControlCharacter) {
  for (int c = 0x00; c < 0x20; ++c) {
    const std::string quoted = json_quote(std::string(1, static_cast<char>(c)));
    EXPECT_TRUE(JsonLint::valid(quoted)) << "control byte " << c;
    // The raw control byte must not survive into the output.
    EXPECT_EQ(quoted.find(static_cast<char>(c)), std::string::npos) << c;
  }
  EXPECT_EQ(json_quote(std::string(1, '\x01')), "\"\\u0001\"");
  EXPECT_EQ(json_quote(std::string(1, '\x1f')), "\"\\u001f\"");
}

TEST(JsonQuote, PassesThroughValidUtf8) {
  // 2-, 3-, and 4-byte sequences: µ, →, and a droplet emoji.
  EXPECT_EQ(json_quote("5\xC2\xB5m"), "\"5\xC2\xB5m\"");
  EXPECT_EQ(json_quote("a\xE2\x86\x92" "b"), "\"a\xE2\x86\x92" "b\"");
  EXPECT_EQ(json_quote("\xF0\x9F\x92\xA7"), "\"\xF0\x9F\x92\xA7\"");
  EXPECT_TRUE(JsonLint::valid(json_quote("mix \xC2\xB5 \xE2\x86\x92 end")));
}

TEST(JsonQuote, ReplacesInvalidUtf8WithReplacementEscape) {
  // Each malformed byte becomes the escaped replacement character so the
  // emitted trace is always valid JSON regardless of what landed in a name.
  EXPECT_EQ(json_quote("a\xFF"), "\"a\\ufffd\"");           // lone invalid byte
  EXPECT_EQ(json_quote("\x80x"), "\"\\ufffdx\"");           // bare continuation
  EXPECT_EQ(json_quote("\xC0\xAF"), "\"\\ufffd\\ufffd\"");  // overlong 2-byte
  EXPECT_EQ(json_quote("\xED\xA0\x80"),                     // UTF-16 surrogate
            "\"\\ufffd\\ufffd\\ufffd\"");
  EXPECT_EQ(json_quote("a\xE2\x86"), "\"a\\ufffd\\ufffd\"");  // truncated 3-byte
  EXPECT_EQ(json_quote("\xF5\x80\x80\x80"),  // above U+10FFFF
            "\"\\ufffd\\ufffd\\ufffd\\ufffd\"");
  for (const char* bad : {"a\xFF", "\xC0\xAF", "\xED\xA0\x80", "a\xE2\x86"})
    EXPECT_TRUE(JsonLint::valid(json_quote(bad))) << bad;
}

TEST(JsonLint, RejectsRawInvalidUtf8InsideStrings) {
  // The lint itself must catch what json_quote guards against; otherwise the
  // escaping tests above prove nothing.
  EXPECT_TRUE(JsonLint::valid("\"5\xC2\xB5m\""));
  EXPECT_FALSE(JsonLint::valid("\"a\xFF\""));
  EXPECT_FALSE(JsonLint::valid("\"\xC0\xAF\""));
  EXPECT_FALSE(JsonLint::valid("\"\xED\xA0\x80\""));
  EXPECT_FALSE(JsonLint::valid("\"a\xE2\x86\""));
}

TEST(Tracer, NullSinkUntilEnabled) {
  Tracer tracer;
  tracer.begin("cat", "span");
  tracer.end();
  tracer.instant("cat", "marker");
  tracer.cycle_counter("droplets", 3, 17);
  EXPECT_EQ(tracer.event_count(), 0u);
  tracer.enable();
  tracer.instant("cat", "marker");
  EXPECT_EQ(tracer.event_count(), 1u);
  tracer.disable();
  tracer.instant("cat", "marker");
  EXPECT_EQ(tracer.event_count(), 1u);
}

TEST(Tracer, SpansNestAndBalance) {
  Tracer tracer;
  tracer.enable();
  {
    SpanScope outer(tracer, "sched", "execute");
    {
      SpanScope inner(tracer, "synth", "synthesize");
      inner.arg("states", std::int64_t{42});
    }
  }
  const auto& events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].ph, 'B');
  EXPECT_EQ(events[0].name, "execute");
  EXPECT_EQ(events[1].ph, 'B');
  EXPECT_EQ(events[1].name, "synthesize");
  EXPECT_EQ(events[2].ph, 'E');  // inner closes first (proper nesting)
  EXPECT_EQ(events[3].ph, 'E');
  // Timestamps are monotone within the track.
  EXPECT_LE(events[0].ts, events[1].ts);
  EXPECT_LE(events[1].ts, events[2].ts);
  EXPECT_LE(events[2].ts, events[3].ts);
  // The inner span's args rode along on its closing event.
  ASSERT_EQ(events[2].args.size(), 1u);
  EXPECT_EQ(events[2].args[0].first, "states");
  EXPECT_EQ(events[2].args[0].second, "42");
}

TEST(Tracer, AsyncSpansCarryPairingIds) {
  Tracer tracer;
  tracer.enable();
  tracer.async_begin("job", "MO 1 route", 7);
  tracer.async_end("job", "MO 1 route", 7, {{"outcome", "\"arrived\""}});
  const auto& events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].ph, 'b');
  EXPECT_EQ(events[1].ph, 'e');
  EXPECT_EQ(events[0].id, 7u);
  EXPECT_EQ(events[1].id, 7u);
  EXPECT_EQ(events[0].tid, TraceTrack::kJobTid);
}

TEST(Tracer, CycleDomainEventsLandOnTheCyclePid) {
  Tracer tracer;
  tracer.enable();
  tracer.cycle_counter("droplets_on_chip", 4, 123);
  tracer.cycle_instant("health-change", 124);
  const auto& events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].ph, 'C');
  EXPECT_EQ(events[0].pid, TraceTrack::kCyclePid);
  EXPECT_EQ(events[0].ts, 123u);  // ts IS the operational cycle
  EXPECT_EQ(events[1].ph, 'i');
  EXPECT_EQ(events[1].ts, 124u);
}

TEST(Tracer, SweepCountersLandOnTheSweepPid) {
  Tracer tracer;
  tracer.enable();
  tracer.sweep_counter("vi.residual.pmax", 0.125, 3);
  const auto& events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].ph, 'C');
  EXPECT_EQ(events[0].pid, TraceTrack::kSweepPid);
  EXPECT_EQ(events[0].ts, 3u);  // ts IS the Gauss-Seidel sweep index
  EXPECT_EQ(events[0].cat, "sweep");
  // The sweep domain is named in the exported metadata.
  const std::string json = tracer.to_json();
  EXPECT_TRUE(JsonLint::valid(json)) << json;
  EXPECT_NE(json.find("solver convergence"), std::string::npos);
}

TEST(Tracer, ExportsSyntacticallyValidChromeTraceJson) {
  Tracer tracer;
  tracer.enable();
  {
    SpanScope span(tracer, "sched", "execute");
    span.arg("label", "quote\"me\n");
    span.arg("ratio", 0.25);
    tracer.instant("event", "watchdog-resense", "stuck at (3,4)");
  }
  tracer.async_begin("job", "MO 0 route", 1);
  tracer.async_end("job", "MO 0 route", 1);
  tracer.cycle_counter("droplets_on_chip", 2, 9);
  const std::string json = tracer.to_json();
  EXPECT_TRUE(JsonLint::valid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  // Metadata names both time domains for the trace viewer.
  EXPECT_NE(json.find("process_name"), std::string::npos);
}

TEST(Tracer, WriteJsonRoundTripsThroughAFile) {
  Tracer tracer;
  tracer.enable();
  tracer.instant("cat", "marker");
  const std::string path = ::testing::TempDir() + "obs_trace_test.json";
  tracer.write_json(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_TRUE(JsonLint::valid(buffer.str()));
  EXPECT_EQ(buffer.str(), tracer.to_json());
  std::remove(path.c_str());
}

TEST(Tracer, ClearDropsEventsButKeepsEnabledFlag) {
  Tracer tracer;
  tracer.enable();
  tracer.instant("cat", "marker");
  tracer.clear();
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_TRUE(tracer.enabled());
}

TEST(Events, FormatAndJson) {
  const std::vector<Event> events = {
      {412, "recovery", "quarantine", 3, "5 cell(s) blocking (7,8)"},
      {500, "stall", "blocked-by-droplet", -1, ""},
  };
  const std::string text = format_events(events);
  EXPECT_NE(text.find("cycle 412"), std::string::npos);
  EXPECT_NE(text.find("[recovery/quarantine]"), std::string::npos);
  EXPECT_NE(text.find("MO 3"), std::string::npos);
  EXPECT_NE(text.find("blocked-by-droplet"), std::string::npos);
  EXPECT_TRUE(JsonLint::valid(events_json(events)));
}

}  // namespace
}  // namespace meda::obs
