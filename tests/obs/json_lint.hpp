#pragma once

#include <cctype>
#include <string_view>

/// Minimal recursive-descent JSON syntax checker for the obs tests: enough
/// to assert that exported traces / metric snapshots are well-formed JSON
/// without pulling a JSON library into the build.

namespace meda::testing {

class JsonLint {
 public:
  static bool valid(std::string_view text) {
    JsonLint lint(text);
    lint.skip_ws();
    if (!lint.value()) return false;
    lint.skip_ws();
    return lint.pos_ == text.size();
  }

 private:
  explicit JsonLint(std::string_view text) : text_(text) {}

  bool value() {
    if (depth_ > 64 || pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++depth_;
    ++pos_;  // '{'
    skip_ws();
    if (eat('}')) return --depth_ >= 0;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return --depth_ >= 0;
      return false;
    }
  }

  bool array() {
    ++depth_;
    ++pos_;  // '['
    skip_ws();
    if (eat(']')) return --depth_ >= 0;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) return --depth_ >= 0;
      return false;
    }
  }

  bool string() {
    if (!eat('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i)
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_++])))
              return false;
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    eat('-');
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace meda::testing
