#pragma once

#include <cctype>
#include <string_view>

/// Minimal recursive-descent JSON syntax checker for the obs tests: enough
/// to assert that exported traces / metric snapshots are well-formed JSON
/// without pulling a JSON library into the build.

namespace meda::testing {

class JsonLint {
 public:
  static bool valid(std::string_view text) {
    JsonLint lint(text);
    lint.skip_ws();
    if (!lint.value()) return false;
    lint.skip_ws();
    return lint.pos_ == text.size();
  }

 private:
  explicit JsonLint(std::string_view text) : text_(text) {}

  bool value() {
    if (depth_ > 64 || pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++depth_;
    ++pos_;  // '{'
    skip_ws();
    if (eat('}')) return --depth_ >= 0;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return --depth_ >= 0;
      return false;
    }
  }

  bool array() {
    ++depth_;
    ++pos_;  // '['
    skip_ws();
    if (eat(']')) return --depth_ >= 0;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) return --depth_ >= 0;
      return false;
    }
  }

  /// RFC 3629 validity of the multi-byte sequence starting at pos_;
  /// advances past it when valid. JSON text must be valid UTF-8, so a lone
  /// 0x80-0xFF byte (or an overlong/surrogate/out-of-range sequence) makes
  /// the document invalid even though older parsers pass it through.
  bool utf8_sequence() {
    const auto byte = [&](std::size_t i) {
      return static_cast<unsigned char>(text_[pos_ + i]);
    };
    const unsigned char lead = byte(0);
    std::size_t len = 0;
    unsigned char lo = 0x80, hi = 0xBF;
    if (lead >= 0xC2 && lead <= 0xDF) {
      len = 2;
    } else if (lead >= 0xE0 && lead <= 0xEF) {
      len = 3;
      if (lead == 0xE0) lo = 0xA0;
      if (lead == 0xED) hi = 0x9F;
    } else if (lead >= 0xF0 && lead <= 0xF4) {
      len = 4;
      if (lead == 0xF0) lo = 0x90;
      if (lead == 0xF4) hi = 0x8F;
    } else {
      return false;
    }
    if (pos_ + len > text_.size()) return false;
    if (byte(1) < lo || byte(1) > hi) return false;
    for (std::size_t i = 2; i < len; ++i)
      if (byte(i) < 0x80 || byte(i) > 0xBF) return false;
    pos_ += len;
    return true;
  }

  bool string() {
    if (!eat('"')) return false;
    while (pos_ < text_.size()) {
      if (static_cast<unsigned char>(text_[pos_]) >= 0x80) {
        if (!utf8_sequence()) return false;
        continue;
      }
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i)
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_++])))
              return false;
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    eat('-');
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace meda::testing
