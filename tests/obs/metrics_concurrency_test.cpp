// Concurrent metrics recording from ThreadPool workers: counters and
// histograms are commutative, so the registry must produce byte-identical
// snapshots regardless of worker count or interleaving. Run under TSan
// (cmake -DMEDA_SANITIZE=thread) to exercise the locking itself.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace meda::obs {
namespace {

// The per-index workload: deterministic in the index alone, so any
// distribution of indices over workers records the same multiset.
void record_index(MetricsRegistry& registry, std::size_t i) {
  registry.add("work.items");
  registry.add("work.units", i % 7);
  registry.observe("work.size", static_cast<double>(i % 100),
                   kStateCountBuckets);
  registry.observe_log2("work.age", static_cast<double>(i % 1000));
}

constexpr std::size_t kItems = 2000;

std::string snapshot_at_jobs(int jobs) {
  MetricsRegistry registry;
  registry.enable();
  util::parallel_for(jobs, kItems,
                     [&](std::size_t i) { record_index(registry, i); });
  return registry.snapshot_text();
}

TEST(MetricsConcurrency, CountersAndHistogramsSurviveConcurrentUpdates) {
  MetricsRegistry registry;
  registry.enable();
  util::ThreadPool pool(4);
  for (int w = 0; w < 4; ++w) {
    pool.submit([&registry] {
      for (std::size_t i = 0; i < kItems; ++i) record_index(registry, i);
    });
  }
  pool.wait();
  EXPECT_EQ(registry.counter("work.items"), 4u * kItems);
  const Histogram* h = registry.histogram("work.age");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 4u * kItems);
}

TEST(MetricsConcurrency, SnapshotsAreByteIdenticalAtAnyJobCount) {
  const std::string serial = snapshot_at_jobs(1);
  EXPECT_EQ(snapshot_at_jobs(2), serial);
  EXPECT_EQ(snapshot_at_jobs(4), serial);
  EXPECT_EQ(snapshot_at_jobs(8), serial);
}

TEST(MetricsConcurrency, ConcurrentFirstTouchCreatesEachSeriesOnce) {
  // Many threads racing to create the same histogram must converge on one
  // series with the full count (no lost updates on first touch).
  MetricsRegistry registry;
  registry.enable();
  util::parallel_for(8, 64, [&](std::size_t i) {
    registry.observe_log2("contended", static_cast<double>(i));
    registry.add("contended.count");
  });
  const Histogram* h = registry.histogram("contended");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 64u);
  EXPECT_EQ(registry.counter("contended.count"), 64u);
}

}  // namespace
}  // namespace meda::obs
