#include "assay/parser.hpp"
#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "assay/benchmarks.hpp"
#include "assay/helper.hpp"
#include "util/check.hpp"

namespace meda::assay {
namespace {

constexpr const char* kExample = R"(
# PCR master-mix preparation
name My Master Mix

M0 = dis 17.5 3.5 16
M1 = dis 17.5 25.5 16
M2 = mix M0 M1 11 15 hold=8
M3 = spt M2 11 8 11 22
M4 = dsc M3.1 11 26
M5 = mag M3.0 30 15 hold=15   # detection
M6 = out M5 54 15
)";

TEST(AssayParser, ParsesTheExampleDocument) {
  const MoList list = parse_assay_string(kExample);
  EXPECT_EQ(list.name, "My Master Mix");
  ASSERT_EQ(list.ops.size(), 7u);
  EXPECT_EQ(list.ops[0].type, MoType::kDispense);
  EXPECT_EQ(list.ops[0].area, 16);
  EXPECT_DOUBLE_EQ(list.ops[0].locs[0].x, 17.5);
  EXPECT_EQ(list.ops[2].type, MoType::kMix);
  EXPECT_EQ(list.ops[2].hold_cycles, 8);
  EXPECT_EQ(list.ops[2].pre, (std::vector<PreRef>{{0, 0}, {1, 0}}));
  EXPECT_EQ(list.ops[3].type, MoType::kSplit);
  ASSERT_EQ(list.ops[3].locs.size(), 2u);
  EXPECT_EQ(list.ops[4].type, MoType::kDiscard);
  EXPECT_EQ(list.ops[4].pre, (std::vector<PreRef>{{3, 1}}));
  EXPECT_EQ(list.ops[5].pre, (std::vector<PreRef>{{3, 0}}));
  EXPECT_EQ(list.ops[5].hold_cycles, 15);
  EXPECT_EQ(list.ops[6].type, MoType::kOutput);
}

TEST(AssayParser, ParsedAssayValidatesAndDecomposes) {
  const MoList list = parse_assay_string(kExample);
  const Rect chip{0, 0, kChipWidth - 1, kChipHeight - 1};
  EXPECT_NO_THROW(validate(list, chip));
  EXPECT_FALSE(make_all_routing_jobs(list, chip).empty());
}

TEST(AssayParser, DiluteSyntax) {
  const MoList list = parse_assay_string(
      "M0 = dis 5 15 16\nM1 = dis 15 3 16\n"
      "M2 = dlt M0 M1 15 15 15 22 hold=6\n"
      "M3 = dsc M2.1 15 26\nM4 = out M2.0 54 15\n");
  ASSERT_EQ(list.ops.size(), 5u);
  EXPECT_EQ(list.ops[2].type, MoType::kDilute);
  EXPECT_EQ(list.ops[2].hold_cycles, 6);
  ASSERT_EQ(list.ops[2].locs.size(), 2u);
  EXPECT_DOUBLE_EQ(list.ops[2].locs[1].y, 22.0);
}

TEST(AssayParser, RoundTripsThroughSerialization) {
  for (const MoList& original :
       {master_mix(), serial_dilution(), gene_expression()}) {
    const MoList reparsed = parse_assay_string(to_assay_text(original));
    EXPECT_EQ(reparsed.name, original.name);
    ASSERT_EQ(reparsed.ops.size(), original.ops.size());
    for (std::size_t i = 0; i < original.ops.size(); ++i) {
      EXPECT_EQ(reparsed.ops[i].type, original.ops[i].type) << i;
      EXPECT_EQ(reparsed.ops[i].pre, original.ops[i].pre) << i;
      EXPECT_EQ(reparsed.ops[i].hold_cycles, original.ops[i].hold_cycles)
          << i;
      ASSERT_EQ(reparsed.ops[i].locs.size(), original.ops[i].locs.size());
      for (std::size_t k = 0; k < original.ops[i].locs.size(); ++k) {
        EXPECT_DOUBLE_EQ(reparsed.ops[i].locs[k].x,
                         original.ops[i].locs[k].x);
        EXPECT_DOUBLE_EQ(reparsed.ops[i].locs[k].y,
                         original.ops[i].locs[k].y);
      }
    }
  }
}

TEST(AssayParser, ErrorsCarryLineNumbers) {
  try {
    parse_assay_string("M0 = dis 5 15 16\nM1 = bogus 1 2 3\n");
    FAIL() << "expected a parse error";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(AssayParser, RejectsForwardAndSelfReferences) {
  EXPECT_THROW(parse_assay_string("M0 = mag M0 5 5\n"), PreconditionError);
  EXPECT_THROW(parse_assay_string("M0 = mag M1 5 5\n"), PreconditionError);
}

TEST(AssayParser, RejectsBadNamesAndArity) {
  EXPECT_THROW(parse_assay_string("M1 = dis 5 5 16\n"), PreconditionError);
  EXPECT_THROW(parse_assay_string("M0 = dis 5 5\n"), PreconditionError);
  EXPECT_THROW(parse_assay_string("M0 = dis 5 5 16 7\n"), PreconditionError);
  EXPECT_THROW(parse_assay_string("M0 dis 5 5 16\n"), PreconditionError);
}

TEST(AssayParser, RejectsHoldOnHoldlessTypes) {
  EXPECT_THROW(parse_assay_string("M0 = dis 5 5 16 hold=3\n"),
               PreconditionError);
}

TEST(AssayParser, RejectsEmptyDocument) {
  EXPECT_THROW(parse_assay_string("  \n# nothing\n"), PreconditionError);
}

TEST(AssayParser, RejectsBadNumbers) {
  EXPECT_THROW(parse_assay_string("M0 = dis five 5 16\n"),
               PreconditionError);
  EXPECT_THROW(parse_assay_string("M0 = dis 5 5 16x\n"), PreconditionError);
}

TEST(AssayParser, LoadsFromFile) {
  const std::string path = "/tmp/meda_parser_test.assay";
  {
    std::ofstream out(path);
    out << kExample;
  }
  const MoList list = load_assay_file(path);
  EXPECT_EQ(list.ops.size(), 7u);
  std::remove(path.c_str());
  EXPECT_THROW(load_assay_file("/nonexistent/assay"), PreconditionError);
}

}  // namespace
}  // namespace meda::assay
