#include "assay/benchmarks.hpp"

#include <gtest/gtest.h>

#include <set>

#include "assay/helper.hpp"

namespace meda::assay {
namespace {

const Rect kChip{0, 0, kChipWidth - 1, kChipHeight - 1};

std::vector<MoList> all_benchmarks(int area = 16) {
  std::vector<MoList> all = evaluation_suite(area);
  const std::vector<MoList> corr = correlation_suite(area);
  all.insert(all.end(), corr.begin(), corr.end());
  return all;
}

TEST(Benchmarks, EvaluationSuiteMatchesPaperOrder) {
  const auto suite = evaluation_suite();
  ASSERT_EQ(suite.size(), 6u);
  EXPECT_EQ(suite[0].name, "Master-Mix");
  EXPECT_EQ(suite[1].name, "CEP");
  EXPECT_EQ(suite[2].name, "Serial Dilution");
  EXPECT_EQ(suite[3].name, "NuIP");
  EXPECT_EQ(suite[4].name, "COVID-RAT");
  EXPECT_EQ(suite[5].name, "COVID-PCR");
}

TEST(Benchmarks, CorrelationSuiteMatchesPaperSection3C) {
  const auto suite = correlation_suite();
  ASSERT_EQ(suite.size(), 3u);
  EXPECT_EQ(suite[0].name, "ChIP");
  EXPECT_EQ(suite[1].name, "Multiplex in-vitro");
  EXPECT_EQ(suite[2].name, "Gene Expression");
}

TEST(Benchmarks, AllValidateOnTheReferenceChip) {
  for (const MoList& list : all_benchmarks())
    EXPECT_NO_THROW(validate(list, kChip)) << list.name;
}

TEST(Benchmarks, CepSubAssaysValidateAndCompose) {
  // The paper: "The CEP bioprotocol comprises three bioassays, namely, cell
  // lysis, mRNA extraction, and mRNA purification."
  const MoList stages[] = {cep_cell_lysis(), cep_mrna_extraction(),
                           cep_mrna_purification()};
  for (const MoList& stage : stages) {
    EXPECT_NO_THROW(validate(stage, kChip)) << stage.name;
    EXPECT_FALSE(make_all_routing_jobs(stage, kChip).empty());
  }
  // Relative sizes: the composed CEP protocol is longer than any stage.
  const MoList full = cep();
  for (const MoList& stage : stages)
    EXPECT_GT(full.ops.size(), stage.ops.size()) << stage.name;
}

TEST(Benchmarks, CorrelationSuiteValidatesAcrossTheFig3DropletSizes) {
  for (int area : {9, 16, 25, 36})
    for (const MoList& list : correlation_suite(area))
      EXPECT_NO_THROW(validate(list, kChip)) << list.name << "@" << area;
}

TEST(Benchmarks, RelativeLengthsMatchThePaper) {
  // NuIP and Serial Dilution are the long bioassays; Master-Mix and
  // COVID-RAT the short ones (Section VII).
  const auto suite = evaluation_suite();
  auto ops = [&](int i) { return suite[static_cast<std::size_t>(i)].ops.size(); };
  EXPECT_GT(ops(3), ops(0));  // NuIP > Master-Mix
  EXPECT_GT(ops(3), ops(4));  // NuIP > COVID-RAT
  EXPECT_GT(ops(2), ops(4));  // Serial Dilution > COVID-RAT
  EXPECT_GT(ops(5), ops(0));  // COVID-PCR > Master-Mix
}

TEST(Benchmarks, EveryAssayEndsWithOutputsOrDiscards) {
  for (const MoList& list : all_benchmarks()) {
    int sinks = 0;
    for (const Mo& mo : list.ops)
      if (mo.type == MoType::kOutput || mo.type == MoType::kDiscard) ++sinks;
    EXPECT_GE(sinks, 1) << list.name;
  }
}

TEST(Benchmarks, SerialDilutionIsAFourStageLadder) {
  const MoList list = serial_dilution();
  int dilutions = 0;
  for (const Mo& mo : list.ops)
    if (mo.type == MoType::kDilute) ++dilutions;
  EXPECT_EQ(dilutions, 4);
  EXPECT_EQ(list.ops.size(), 14u);
}

TEST(Benchmarks, MultiplexHasTwoIndependentChains) {
  const MoList list = multiplex_invitro();
  // Exactly two ops have no predecessors reachable from each other: count
  // connected components by union of pre edges.
  std::vector<int> component(list.ops.size());
  for (std::size_t i = 0; i < component.size(); ++i)
    component[i] = static_cast<int>(i);
  const auto find = [&](int x) {
    while (component[static_cast<std::size_t>(x)] != x)
      x = component[static_cast<std::size_t>(x)];
    return x;
  };
  for (const Mo& mo : list.ops)
    for (const PreRef& ref : mo.pre)
      component[static_cast<std::size_t>(find(mo.id))] = find(ref.mo);
  std::set<int> roots;
  for (std::size_t i = 0; i < component.size(); ++i)
    roots.insert(find(static_cast<int>(i)));
  EXPECT_EQ(roots.size(), 2u);
}

TEST(Benchmarks, RoutingJobsAreWellFormedForAllAssays) {
  for (const MoList& list : all_benchmarks()) {
    const auto rjs = make_all_routing_jobs(list, kChip);
    EXPECT_FALSE(rjs.empty()) << list.name;
    for (const RoutingJob& rj : rjs) {
      EXPECT_TRUE(kChip.contains(rj.goal)) << list.name;
      EXPECT_TRUE(rj.hazard.contains(rj.goal)) << list.name;
    }
  }
}

TEST(Benchmarks, DispenseGoalsAreNearAChipEdge) {
  // Dispensed droplets must be reachable from an edge without crossing the
  // whole chip (the entry port is the goal's projection onto the nearest
  // edge).
  for (const MoList& list : all_benchmarks()) {
    const auto outputs = compute_outputs(list);
    for (const Mo& mo : list.ops) {
      if (mo.type != MoType::kDispense) continue;
      const Rect goal = outputs[static_cast<std::size_t>(mo.id)][0];
      const int to_edge =
          std::min({goal.xa, goal.ya, kChip.xb - goal.xb,
                    kChip.yb - goal.yb});
      EXPECT_LE(to_edge, 6) << list.name << " M" << mo.id;
    }
  }
}

TEST(Benchmarks, HoldCyclesAreReasonable) {
  for (const MoList& list : all_benchmarks()) {
    for (const Mo& mo : list.ops) {
      EXPECT_GE(mo.hold_cycles, 0) << list.name;
      EXPECT_LE(mo.hold_cycles, 40) << list.name;
      if (mo.type == MoType::kMagSense) {
        EXPECT_GT(mo.hold_cycles, 0) << list.name << " M" << mo.id;
      }
    }
  }
}

}  // namespace
}  // namespace meda::assay
