#include "assay/summary.hpp"

#include <gtest/gtest.h>

#include "assay/benchmarks.hpp"
#include "assay/registry.hpp"
#include "util/check.hpp"

namespace meda::assay {
namespace {

const Rect kChip{0, 0, kChipWidth - 1, kChipHeight - 1};

TEST(Summary, SerialDilutionStructure) {
  const AssaySummary s = summarize(serial_dilution(), kChip);
  EXPECT_EQ(s.operations, 14);
  EXPECT_EQ(s.count(MoType::kDispense), 5);
  EXPECT_EQ(s.count(MoType::kDilute), 4);
  EXPECT_EQ(s.count(MoType::kDiscard), 4);
  EXPECT_EQ(s.count(MoType::kOutput), 1);
  EXPECT_EQ(s.count(MoType::kMix), 0);
  // 5 dispensed + 4 dilution splits.
  EXPECT_EQ(s.droplets_created, 9);
  // 4 dilutions with hold = 8 each.
  EXPECT_EQ(s.total_hold_cycles, 32);
  // Chain: dis → dlt → dlt → dlt → dlt → out.
  EXPECT_EQ(s.critical_path, 6);
  EXPECT_GT(s.transport_distance, 50.0);
}

TEST(Summary, CovidRatIsShortAndLinear) {
  const AssaySummary s = summarize(covid_rat(), kChip);
  EXPECT_EQ(s.operations, 5);
  EXPECT_EQ(s.critical_path, 4);  // dis → mix → mag → out
  EXPECT_EQ(s.droplets_created, 2);
}

TEST(Summary, MultiplexCriticalPathIsOneChain) {
  // Two parallel chains: depth stays at one chain's length.
  const AssaySummary s = summarize(multiplex_invitro(), kChip);
  EXPECT_EQ(s.operations, 10);
  EXPECT_EQ(s.critical_path, 4);
}

TEST(Summary, PaperLengthOrderingHoldsOnTransportPlusHolds) {
  // The paper calls NuIP and Serial Dilution the long bioassays; combined
  // transport + processing demand reflects that ordering.
  const auto load = [](const MoList& list) {
    const AssaySummary s = summarize(list, kChip);
    return s.transport_distance + s.total_hold_cycles;
  };
  EXPECT_GT(load(nuip()), load(master_mix()));
  EXPECT_GT(load(nuip()), load(covid_rat()));
  EXPECT_GT(load(serial_dilution()), load(covid_rat()));
}

TEST(Summary, EveryRegisteredBenchmarkSummarizes) {
  for (const BenchmarkInfo& info : list_benchmarks()) {
    const AssaySummary s = summarize(make_benchmark(info.key), kChip);
    EXPECT_GT(s.operations, 0) << info.key;
    EXPECT_GE(s.critical_path, 2) << info.key;
    EXPECT_GT(s.droplets_created, 0) << info.key;
    EXPECT_GT(s.transport_distance, 0.0) << info.key;
    int total = 0;
    for (const int c : s.counts) total += c;
    EXPECT_EQ(total, s.operations) << info.key;
  }
}

TEST(Summary, RejectsInvalidLists) {
  AssayBuilder b("bad");
  b.dispense(10, 10, 16);  // never consumed
  const MoList list = std::move(b).build();
  EXPECT_THROW(summarize(list, kChip), PreconditionError);
}

}  // namespace
}  // namespace meda::assay
