#include "assay/helper.hpp"

#include <gtest/gtest.h>

#include "assay/benchmarks.hpp"
#include "util/check.hpp"

namespace meda::assay {
namespace {

// Table IV uses the paper's 1-based coordinates on a 60×30 chip; zone() is
// coordinate-agnostic, so passing the 1-based chip box reproduces the rows.
const Rect kPaperChip{1, 1, 60, 30};

TEST(Zone, PaperTable4DispenseRow) {
  // M1: δ_g = (16, 01, 19, 04) → δ_h = (13, 01, 22, 07).
  const Rect goal{16, 1, 19, 4};
  EXPECT_EQ(zone(Rect::none(), goal, kPaperChip), (Rect{13, 1, 22, 7}));
  // M2: δ_g = (16, 27, 19, 30) → δ_h = (13, 24, 22, 30).
  EXPECT_EQ(zone(Rect::none(), Rect{16, 27, 19, 30}, kPaperChip),
            (Rect{13, 24, 22, 30}));
}

TEST(Zone, PaperTable4MixRows) {
  // RJ3.0: δ_s = (16, 01, 19, 04), δ_g = (09, 14, 12, 17)
  //        → δ_h = (06, 01, 22, 20).
  EXPECT_EQ(zone(Rect{16, 1, 19, 4}, Rect{9, 14, 12, 17}, kPaperChip),
            (Rect{6, 1, 22, 20}));
  // RJ3.1: δ_s = (16, 27, 19, 30), δ_g = (09, 14, 12, 17)
  //        → δ_h = (06, 11, 22, 30).
  EXPECT_EQ(zone(Rect{16, 27, 19, 30}, Rect{9, 14, 12, 17}, kPaperChip),
            (Rect{6, 11, 22, 30}));
}

TEST(Zone, PaperTable4MagRow) {
  // M4: δ_s = (08, 14, 13, 18), δ_g = (38, 14, 43, 18)
  //     → δ_h = (05, 11, 46, 21).
  EXPECT_EQ(zone(Rect{8, 14, 13, 18}, Rect{38, 14, 43, 18}, kPaperChip),
            (Rect{5, 11, 46, 21}));
}

TEST(Zone, ClampsToChipOnAllSides) {
  const Rect chip{0, 0, 9, 9};
  EXPECT_EQ(zone(Rect{0, 0, 1, 1}, Rect{8, 8, 9, 9}, chip), chip);
}

TEST(Zone, CustomMargin) {
  const Rect chip{0, 0, 59, 29};
  EXPECT_EQ(zone(Rect{10, 10, 13, 13}, Rect{20, 10, 23, 13}, chip, 1),
            (Rect{9, 9, 24, 14}));
  EXPECT_EQ(zone(Rect{10, 10, 13, 13}, Rect{20, 10, 23, 13}, chip, 0),
            (Rect{10, 10, 23, 13}));
}

TEST(Zone, AlwaysContainsStartAndGoal) {
  const Rect chip{0, 0, 59, 29};
  const Rect start{2, 3, 5, 6};
  const Rect goal{50, 20, 53, 23};
  const Rect h = zone(start, goal, chip);
  EXPECT_TRUE(h.contains(start));
  EXPECT_TRUE(h.contains(goal));
  EXPECT_TRUE(chip.contains(h));
}

/// Rebuilds the paper's Fig. 12 / Table IV example bioassay.
MoList paper_example_assay() {
  AssayBuilder b("paper-example");
  const int m1 = b.dispense(17.5, 2.5, 16);
  const int m2 = b.dispense(17.5, 28.5, 16);
  const int m3 = b.mix({m1}, {m2}, 10.5, 15.5);
  const int m4 = b.mag({m3}, 40.5, 15.5);
  b.output({m4}, 55.5, 15.5);
  return std::move(b).build();
}

TEST(ComputeOutputs, PaperExampleDropletPlacements) {
  const MoList list = paper_example_assay();
  const auto outputs = compute_outputs(list);
  ASSERT_EQ(outputs.size(), 5u);
  const std::vector<Rect> m1 = {Rect{16, 1, 19, 4}};
  const std::vector<Rect> m2 = {Rect{16, 27, 19, 30}};
  // Mix output: 32 cells → 6×5 centered at (10.5, 15.5) = (8, 14, 13, 18).
  const std::vector<Rect> m3 = {Rect{8, 14, 13, 18}};
  // Mag keeps the droplet size at the sensing site.
  const std::vector<Rect> m4 = {Rect{38, 14, 43, 18}};
  EXPECT_EQ(outputs[0], m1);
  EXPECT_EQ(outputs[1], m2);
  EXPECT_EQ(outputs[2], m3);
  EXPECT_EQ(outputs[3], m4);
  EXPECT_TRUE(outputs[4].empty());
}

TEST(MakeRoutingJobs, PaperTable4MagRow) {
  const MoList list = paper_example_assay();
  const auto outputs = compute_outputs(list);
  const auto rjs =
      make_routing_jobs(list, 3, outputs, Rect{1, 1, 60, 30});
  ASSERT_EQ(rjs.size(), 1u);
  EXPECT_EQ(rjs[0].start, (Rect{8, 14, 13, 18}));
  EXPECT_EQ(rjs[0].goal, (Rect{38, 14, 43, 18}));
  EXPECT_EQ(rjs[0].hazard, (Rect{5, 11, 46, 21}));
  EXPECT_EQ(rjs[0].mo, 3);
}

TEST(MakeRoutingJobs, DispenseStartsOffChip) {
  const MoList list = paper_example_assay();
  const auto outputs = compute_outputs(list);
  const auto rjs =
      make_routing_jobs(list, 0, outputs, Rect{1, 1, 60, 30});
  ASSERT_EQ(rjs.size(), 1u);
  EXPECT_FALSE(rjs[0].start.valid());  // δ_s = "none": entering the chip
  EXPECT_EQ(rjs[0].goal, (Rect{16, 1, 19, 4}));
  EXPECT_EQ(rjs[0].hazard, (Rect{13, 1, 22, 7}));
}

TEST(MakeRoutingJobs, MixDecomposesIntoTwoConvergingJobs) {
  const MoList list = paper_example_assay();
  const auto outputs = compute_outputs(list);
  const auto rjs =
      make_routing_jobs(list, 2, outputs, Rect{1, 1, 60, 30});
  ASSERT_EQ(rjs.size(), 2u);
  EXPECT_EQ(rjs[0].start, (Rect{16, 1, 19, 4}));
  EXPECT_EQ(rjs[1].start, (Rect{16, 27, 19, 30}));
  // Goals are input-sized patterns at the mixer location.
  EXPECT_EQ(rjs[0].goal, (Rect{9, 14, 12, 17}));
  EXPECT_EQ(rjs[1].goal, (Rect{9, 14, 12, 17}));
  EXPECT_EQ(rjs[0].hazard, (Rect{6, 1, 22, 20}));
  EXPECT_EQ(rjs[1].hazard, (Rect{6, 11, 22, 30}));
  EXPECT_EQ(rjs[0].index, 0);
  EXPECT_EQ(rjs[1].index, 1);
}

TEST(MakeRoutingJobs, SplitProducesTwoJobsFromTheSplitPoint) {
  AssayBuilder b("split");
  const int d = b.dispense(30.5, 15.5, 32);  // 6×5
  const int s = b.split({d}, 15.5, 15.5, 45.5, 15.5);
  b.output({s, 0}, 5.5, 15.5);
  b.output({s, 1}, 55.5, 15.5);
  const MoList list = std::move(b).build();
  const Rect chip{0, 0, 59, 29};
  validate(list, chip);
  const auto outputs = compute_outputs(list);
  const auto rjs = make_routing_jobs(list, 1, outputs, chip);
  ASSERT_EQ(rjs.size(), 2u);
  // Both jobs start at the parent droplet's location (Algorithm 1; the
  // scheduler re-anchors at the physical split halves at runtime).
  EXPECT_EQ(rjs[0].start, outputs[0][0]);
  EXPECT_EQ(rjs[1].start, outputs[0][0]);
  // 32 splits into 16 + 16 → two 4×4 goals.
  EXPECT_EQ(rjs[0].goal.area(), 16);
  EXPECT_EQ(rjs[1].goal.area(), 16);
}

TEST(MakeRoutingJobs, DiluteProducesFourJobs) {
  AssayBuilder b("dilute");
  const int sample = b.dispense(10.5, 10.5, 16);
  const int buffer = b.dispense(10.5, 20.5, 16);
  const int dlt = b.dilute({sample}, {buffer}, 30.5, 15.5, 50.5, 15.5);
  b.output({dlt, 0}, 30.5, 25.5);
  b.output({dlt, 1}, 55.5, 15.5);
  const MoList list = std::move(b).build();
  const Rect chip{0, 0, 59, 29};
  validate(list, chip);
  const auto outputs = compute_outputs(list);
  const auto rjs = make_routing_jobs(list, 2, outputs, chip);
  ASSERT_EQ(rjs.size(), 4u);
  // Jobs 0/1: the mix phase converging on loc[0].
  EXPECT_EQ(rjs[0].start, outputs[0][0]);
  EXPECT_EQ(rjs[1].start, outputs[1][0]);
  EXPECT_DOUBLE_EQ(rjs[0].goal.center_x(), 30.5);
  // Jobs 2/3: the split phase; job 2 stays at loc[0], job 3 leaves for
  // loc[1].
  EXPECT_EQ(rjs[2].start, rjs[2].goal);
  EXPECT_DOUBLE_EQ(rjs[3].goal.center_x(), 50.5);
  // Split halves of 32 are two 16-cell droplets.
  EXPECT_EQ(rjs[2].goal.area(), 16);
  EXPECT_EQ(rjs[3].goal.area(), 16);
}

TEST(MakeAllRoutingJobs, CoversEveryMo) {
  const Rect chip{0, 0, kChipWidth - 1, kChipHeight - 1};
  const MoList list = serial_dilution();
  const auto rjs = make_all_routing_jobs(list, chip);
  // 1 dis + 4×(dis + dlt + dsc) + 1 out → 1 + 4·(1 + 4 + 1) + 1 jobs.
  EXPECT_EQ(rjs.size(), 1u + 4u * 6u + 1u);
  for (const RoutingJob& rj : rjs) {
    EXPECT_TRUE(rj.goal.valid());
    EXPECT_TRUE(rj.hazard.valid());
    EXPECT_TRUE(chip.contains(rj.hazard));
    EXPECT_TRUE(rj.hazard.contains(rj.goal));
    if (rj.start.valid()) {
      EXPECT_TRUE(rj.hazard.contains(rj.start));
    }
  }
}

TEST(Zone, RejectsInvalidInput) {
  EXPECT_THROW(zone(Rect::none(), Rect::none(), Rect{0, 0, 9, 9}),
               PreconditionError);
  EXPECT_THROW(
      zone(Rect::none(), Rect{0, 0, 1, 1}, Rect{0, 0, 9, 9}, -1),
      PreconditionError);
}

}  // namespace
}  // namespace meda::assay
