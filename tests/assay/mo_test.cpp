#include "assay/mo.hpp"

#include <gtest/gtest.h>

#include "assay/benchmarks.hpp"
#include "util/check.hpp"

namespace meda::assay {
namespace {

TEST(MoType, InputOutputCountsMatchTableIII) {
  EXPECT_EQ(input_count(MoType::kDispense), 0);
  EXPECT_EQ(output_count(MoType::kDispense), 1);
  EXPECT_EQ(input_count(MoType::kOutput), 1);
  EXPECT_EQ(output_count(MoType::kOutput), 0);
  EXPECT_EQ(input_count(MoType::kDiscard), 1);
  EXPECT_EQ(output_count(MoType::kDiscard), 0);
  EXPECT_EQ(input_count(MoType::kMix), 2);
  EXPECT_EQ(output_count(MoType::kMix), 1);
  EXPECT_EQ(input_count(MoType::kSplit), 1);
  EXPECT_EQ(output_count(MoType::kSplit), 2);
  EXPECT_EQ(input_count(MoType::kDilute), 2);
  EXPECT_EQ(output_count(MoType::kDilute), 2);
  EXPECT_EQ(input_count(MoType::kMagSense), 1);
  EXPECT_EQ(output_count(MoType::kMagSense), 1);
}

TEST(MoType, Names) {
  EXPECT_EQ(to_string(MoType::kDispense), "dis");
  EXPECT_EQ(to_string(MoType::kOutput), "out");
  EXPECT_EQ(to_string(MoType::kDiscard), "dsc");
  EXPECT_EQ(to_string(MoType::kMix), "mix");
  EXPECT_EQ(to_string(MoType::kSplit), "spt");
  EXPECT_EQ(to_string(MoType::kDilute), "dlt");
  EXPECT_EQ(to_string(MoType::kMagSense), "mag");
}

TEST(SizeForArea, ExactSquares) {
  for (int side : {1, 2, 3, 4, 5, 6}) {
    const DropletSize s = size_for_area(side * side);
    EXPECT_EQ(s.w, side);
    EXPECT_EQ(s.h, side);
    EXPECT_DOUBLE_EQ(s.error, 0.0);
  }
}

// Table IV: the 32-cell mix product is approximated by a 6×5 pattern with
// 6.3% area error.
TEST(SizeForArea, PaperTable4MixProduct) {
  const DropletSize s = size_for_area(32);
  EXPECT_EQ(s.w, 6);
  EXPECT_EQ(s.h, 5);
  EXPECT_NEAR(s.error, 2.0 / 32.0, 1e-12);  // 6.25%, printed as 6.3%
}

TEST(SizeForArea, RectangularExact) {
  const DropletSize s20 = size_for_area(20);
  EXPECT_EQ(s20.w, 5);
  EXPECT_EQ(s20.h, 4);
  EXPECT_DOUBLE_EQ(s20.error, 0.0);
  const DropletSize s12 = size_for_area(12);
  EXPECT_EQ(s12.w, 4);
  EXPECT_EQ(s12.h, 3);
}

TEST(SizeForArea, ConstraintsHoldAcrossSweep) {
  for (int area = 1; area <= 200; ++area) {
    const DropletSize s = size_for_area(area);
    EXPECT_GE(s.w, s.h) << area;
    EXPECT_LE(s.w - s.h, 1) << area;
    EXPECT_NEAR(s.error,
                std::abs(s.w * s.h - area) / static_cast<double>(area),
                1e-12);
    // No other legal pattern has strictly smaller error.
    for (int h = 1; h * h <= area + h; ++h) {
      for (int w : {h, h + 1}) {
        const double err =
            std::abs(w * h - area) / static_cast<double>(area);
        EXPECT_GE(err, s.error - 1e-12)
            << "area " << area << ": " << w << "x" << h << " beats "
            << s.w << "x" << s.h;
      }
    }
  }
}

TEST(SizeForArea, TiesPreferTheLargerPattern) {
  // Area 18: 4×4 (16) and 5×4 (20) both err by 2; volume conservation
  // prefers 5×4.
  const DropletSize s = size_for_area(18);
  EXPECT_EQ(s.w, 5);
  EXPECT_EQ(s.h, 4);
}

TEST(SizeForArea, RejectsNonPositive) {
  EXPECT_THROW(size_for_area(0), PreconditionError);
}

TEST(Validate, AcceptsAllBenchmarks) {
  const Rect chip{0, 0, kChipWidth - 1, kChipHeight - 1};
  // Evaluation suite at the paper's default 4×4 dispense size; the Fig. 3
  // correlation suite across the full droplet-size sweep.
  for (const MoList& list : evaluation_suite()) {
    EXPECT_NO_THROW(validate(list, chip)) << list.name;
  }
  for (int area : {9, 16, 25, 36}) {
    for (const MoList& list : correlation_suite(area)) {
      EXPECT_NO_THROW(validate(list, chip)) << list.name << " area " << area;
    }
  }
}

TEST(Validate, RejectsForwardReference) {
  AssayBuilder b("bad");
  const int d = b.dispense(10, 10, 16);
  MoList list = std::move(b).build();
  list.ops[0].pre = {PreRef{0, 0}};  // dispense cannot consume anything
  (void)d;
  EXPECT_THROW(validate(list, Rect{0, 0, 59, 29}), PreconditionError);
}

TEST(Validate, RejectsDoubleConsumption) {
  AssayBuilder b("bad");
  const int d = b.dispense(10, 10, 16);
  b.output({d}, 30, 15);
  b.output({d}, 40, 15);  // the same droplet consumed twice
  const MoList list = std::move(b).build();
  EXPECT_THROW(validate(list, Rect{0, 0, 59, 29}), PreconditionError);
}

TEST(Validate, RejectsUnconsumedOutput) {
  AssayBuilder b("bad");
  b.dispense(10, 10, 16);  // droplet never consumed
  const MoList list = std::move(b).build();
  EXPECT_THROW(validate(list, Rect{0, 0, 59, 29}), PreconditionError);
}

TEST(Validate, RejectsOffChipPlacement) {
  AssayBuilder b("bad");
  const int d = b.dispense(1.0, 10.0, 16);  // 4×4 at cx=1 → xa=-1
  b.output({d}, 30, 15);
  const MoList list = std::move(b).build();
  EXPECT_THROW(validate(list, Rect{0, 0, 59, 29}), PreconditionError);
}

TEST(Validate, RejectsOutOfRangeOutputIndex) {
  AssayBuilder b("bad");
  const int d = b.dispense(10, 10, 16);
  b.output({d, 1}, 30, 15);  // dispense has a single output (index 0)
  const MoList list = std::move(b).build();
  EXPECT_THROW(validate(list, Rect{0, 0, 59, 29}), PreconditionError);
}

TEST(Validate, AreaPropagationThroughMixAndSplit) {
  AssayBuilder b("areas");
  const int d0 = b.dispense(10, 8, 16);
  const int d1 = b.dispense(10, 22, 16);
  const int m = b.mix({d0}, {d1}, 25, 15);          // 32
  const int s = b.split({m}, 25, 8, 25, 22);        // 16 + 16
  b.output({s, 0}, 50, 8);
  b.output({s, 1}, 50, 22);
  const MoList list = std::move(b).build();
  EXPECT_NO_THROW(validate(list, Rect{0, 0, 59, 29}));
}

TEST(MergeAssays, OffsetsIdsAndReferences) {
  const MoList a = covid_rat();
  const MoList b = master_mix();
  const MoList merged = merge_assays(a, b);
  EXPECT_EQ(merged.name, "COVID-RAT + Master-Mix");
  ASSERT_EQ(merged.ops.size(), a.ops.size() + b.ops.size());
  const int offset = static_cast<int>(a.ops.size());
  for (std::size_t i = 0; i < merged.ops.size(); ++i)
    EXPECT_EQ(merged.ops[i].id, static_cast<int>(i));
  for (std::size_t i = 0; i < b.ops.size(); ++i) {
    const Mo& original = b.ops[i];
    const Mo& moved = merged.ops[i + a.ops.size()];
    EXPECT_EQ(moved.type, original.type);
    ASSERT_EQ(moved.pre.size(), original.pre.size());
    for (std::size_t k = 0; k < original.pre.size(); ++k) {
      EXPECT_EQ(moved.pre[k].mo, original.pre[k].mo + offset);
      EXPECT_EQ(moved.pre[k].out, original.pre[k].out);
    }
  }
}

TEST(TranslateAssay, ShiftsEveryLocation) {
  const MoList original = covid_rat();
  const MoList shifted = translate_assay(original, 2.0, -3.0);
  for (std::size_t i = 0; i < original.ops.size(); ++i) {
    for (std::size_t k = 0; k < original.ops[i].locs.size(); ++k) {
      EXPECT_DOUBLE_EQ(shifted.ops[i].locs[k].x,
                       original.ops[i].locs[k].x + 2.0);
      EXPECT_DOUBLE_EQ(shifted.ops[i].locs[k].y,
                       original.ops[i].locs[k].y - 3.0);
    }
  }
}

TEST(MergeAssays, PanelOfTwoValidatesInDisjointRegions) {
  // Two compact single-chain assays placed in the south and north halves.
  const auto make_chain = [](double band_y) {
    AssayBuilder b("chain");
    const int sample = b.dispense(4.5, band_y, 16);
    const int reagent = b.dispense(16.5, band_y, 16);
    const int mixed = b.mix({sample}, {reagent}, 28.0, band_y, 6);
    const int read = b.mag({mixed}, 40.0, band_y, 8);
    b.output({read}, 54.0, band_y);
    return std::move(b).build();
  };
  const MoList merged = merge_assays(make_chain(6.5), make_chain(23.5));
  EXPECT_NO_THROW(
      validate(merged, Rect{0, 0, kChipWidth - 1, kChipHeight - 1}));
}

TEST(MoList, OpAccessorBoundsChecked) {
  const MoList list = master_mix();
  EXPECT_EQ(list.op(0).id, 0);
  EXPECT_THROW(list.op(-1), PreconditionError);
  EXPECT_THROW(list.op(static_cast<int>(list.ops.size())),
               PreconditionError);
}

}  // namespace
}  // namespace meda::assay
