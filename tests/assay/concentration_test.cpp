#include "assay/concentration.hpp"

#include <gtest/gtest.h>

#include "assay/benchmarks.hpp"
#include "util/check.hpp"

namespace meda::assay {
namespace {

TEST(Concentration, SerialDilutionHalvesEveryStage) {
  // The benchmark's chemical intent: sample at concentration 1 diluted 1:1
  // with buffer four times → the output droplet is at 1/16.
  const MoList list = serial_dilution();
  // MO 0 is the sample dispense; all buffers default to 0.
  const std::map<int, double> inputs = {{0, 1.0}};
  const auto conc = compute_concentrations(list, inputs);
  // Dilution stages are MOs 2, 5, 8, 11 (see benchmarks.cpp).
  EXPECT_DOUBLE_EQ(conc[2][0], 0.5);
  EXPECT_DOUBLE_EQ(conc[2][1], 0.5);
  EXPECT_DOUBLE_EQ(conc[5][0], 0.25);
  EXPECT_DOUBLE_EQ(conc[8][0], 0.125);
  EXPECT_DOUBLE_EQ(conc[11][0], 0.0625);
  // The final output MO (13) receives the 1/16 droplet.
  EXPECT_DOUBLE_EQ(exit_concentration(list, 13, inputs), 0.0625);
}

TEST(Concentration, MixIsVolumeWeighted) {
  AssayBuilder b("weighted");
  const int strong = b.dispense(10, 8, 32);   // volume 32 at c = 0.9
  const int weak = b.dispense(10, 22, 16);    // volume 16 at c = 0.3
  const int mixed = b.mix({strong}, {weak}, 30, 15);
  b.output({mixed}, 54, 15);
  const MoList list = std::move(b).build();
  const auto conc =
      compute_concentrations(list, {{strong, 0.9}, {weak, 0.3}});
  EXPECT_NEAR(conc[2][0], (0.9 * 32 + 0.3 * 16) / 48.0, 1e-12);
}

TEST(Concentration, SplitPreservesConcentration) {
  AssayBuilder b("split");
  const int d = b.dispense(30.5, 15.5, 32);
  const int s = b.split({d}, 15.5, 15.5, 45.5, 15.5);
  b.output({s, 0}, 5.5, 15.5);
  b.output({s, 1}, 55.5, 15.5);
  const MoList list = std::move(b).build();
  const auto conc = compute_concentrations(list, {{d, 0.7}});
  EXPECT_DOUBLE_EQ(conc[1][0], 0.7);
  EXPECT_DOUBLE_EQ(conc[1][1], 0.7);
}

TEST(Concentration, MagSensePassesThrough) {
  const MoList list = covid_rat();
  const auto conc = compute_concentrations(list, {{0, 0.8}});
  // sample (0.8, area 16) + reagent (0, 16) → 0.4 through the sensing step.
  EXPECT_DOUBLE_EQ(conc[3][0], 0.4);
}

TEST(Concentration, UnlistedDispensesDefaultToBuffer) {
  const MoList list = covid_rat();
  const auto conc = compute_concentrations(list, {});
  EXPECT_DOUBLE_EQ(conc[2][0], 0.0);
}

TEST(Concentration, RejectsNegativeConcentration) {
  const MoList list = covid_rat();
  EXPECT_THROW(compute_concentrations(list, {{0, -0.5}}),
               PreconditionError);
}

TEST(Concentration, ExitConcentrationRequiresASink) {
  const MoList list = covid_rat();
  EXPECT_THROW(exit_concentration(list, 0, {}), PreconditionError);
}

}  // namespace
}  // namespace meda::assay
