#include "assay/planner.hpp"

#include <gtest/gtest.h>

#include "assay/benchmarks.hpp"
#include "core/scheduler.hpp"
#include "sim/simulated_chip.hpp"
#include "util/check.hpp"

namespace meda::assay {
namespace {

const Rect kChip{0, 0, kChipWidth - 1, kChipHeight - 1};

/// An unplaced master-mix-style sequencing graph.
std::vector<SgNode> mix_graph() {
  return {
      SgNode{MoType::kDispense, {}, 16, 0},
      SgNode{MoType::kDispense, {}, 16, 0},
      SgNode{MoType::kMix, {{0}, {1}}, 16, 8},
      SgNode{MoType::kMagSense, {{2}}, 16, 12},
      SgNode{MoType::kOutput, {{3}}, 16, 0},
  };
}

TEST(Planner, PlacesAValidMixGraph) {
  const MoList list = plan_placement("planned-mix", mix_graph(), kChip);
  EXPECT_EQ(list.name, "planned-mix");
  ASSERT_EQ(list.ops.size(), 5u);
  EXPECT_NO_THROW(validate(list, kChip));  // plan_placement validates too
  // Dispense ports touch the south band; the exit port hugs the east edge.
  EXPECT_LT(list.ops[0].locs[0].y, 6.0);
  EXPECT_GT(list.ops[4].locs[0].x, kChip.xb - 8.0);
}

TEST(Planner, PlannedGraphRunsEndToEnd) {
  const MoList list = plan_placement("planned-mix", mix_graph(), kChip);
  sim::SimulatedChipConfig config;
  config.chip.width = kChipWidth;
  config.chip.height = kChipHeight;
  sim::SimulatedChip chip(config, Rng(55));
  core::Scheduler scheduler(core::SchedulerConfig{});
  const core::ExecutionStats stats = scheduler.run(chip, list);
  EXPECT_TRUE(stats.success) << stats.failure_reason;
}

TEST(Planner, SplitAndDiluteGetSecondarySites) {
  const std::vector<SgNode> graph = {
      SgNode{MoType::kDispense, {}, 16, 0},
      SgNode{MoType::kDispense, {}, 16, 0},
      SgNode{MoType::kDilute, {{0}, {1}}, 16, 6},
      SgNode{MoType::kSplit, {{2, 0}}, 16, 0},
      SgNode{MoType::kDiscard, {{2, 1}}, 16, 0},
      SgNode{MoType::kOutput, {{3, 0}}, 16, 0},
      SgNode{MoType::kOutput, {{3, 1}}, 16, 0},
  };
  const MoList list = plan_placement("planned-dilute", graph, kChip);
  ASSERT_EQ(list.ops[2].locs.size(), 2u);
  ASSERT_EQ(list.ops[3].locs.size(), 2u);
  // Secondary sites are vertically displaced from the primary.
  EXPECT_NE(list.ops[2].locs[0].y, list.ops[2].locs[1].y);
  EXPECT_DOUBLE_EQ(list.ops[2].locs[0].x, list.ops[2].locs[1].x);
}

TEST(Planner, PlannedDiluteRunsEndToEnd) {
  const std::vector<SgNode> graph = {
      SgNode{MoType::kDispense, {}, 16, 0},
      SgNode{MoType::kDispense, {}, 16, 0},
      SgNode{MoType::kDilute, {{0}, {1}}, 16, 6},
      SgNode{MoType::kDiscard, {{2, 1}}, 16, 0},
      SgNode{MoType::kOutput, {{2, 0}}, 16, 0},
  };
  const MoList list = plan_placement("planned-dilute", graph, kChip);
  sim::SimulatedChipConfig config;
  config.chip.width = kChipWidth;
  config.chip.height = kChipHeight;
  sim::SimulatedChip chip(config, Rng(56));
  core::Scheduler scheduler(core::SchedulerConfig{});
  const core::ExecutionStats stats = scheduler.run(chip, list);
  EXPECT_TRUE(stats.success) << stats.failure_reason;
}

TEST(Planner, RoundTripsTheBenchmarkGraphs) {
  // Strip the hand placements from each benchmark and re-plan: the result
  // must validate and execute.
  for (const MoList& original :
       {master_mix(), covid_rat(), serial_dilution()}) {
    const std::vector<SgNode> graph = to_sequence_graph(original);
    const MoList planned =
        plan_placement(original.name + " (re-planned)", graph, kChip);
    ASSERT_EQ(planned.ops.size(), original.ops.size());
    sim::SimulatedChipConfig config;
    config.chip.width = kChipWidth;
    config.chip.height = kChipHeight;
    sim::SimulatedChip chip(config, Rng(57));
    core::SchedulerConfig sched;
    sched.max_cycles = 4000;
    core::Scheduler scheduler(sched);
    const core::ExecutionStats stats = scheduler.run(chip, planned);
    EXPECT_TRUE(stats.success) << planned.name << ": "
                               << stats.failure_reason;
  }
}

TEST(Planner, DeterministicPlacement) {
  const MoList a = plan_placement("x", mix_graph(), kChip);
  const MoList b = plan_placement("x", mix_graph(), kChip);
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.ops[i].locs[0].x, b.ops[i].locs[0].x);
    EXPECT_DOUBLE_EQ(a.ops[i].locs[0].y, b.ops[i].locs[0].y);
  }
}

TEST(Planner, RejectsMalformedGraphs) {
  // Forward reference.
  EXPECT_THROW(plan_placement(
                   "bad", {SgNode{MoType::kMagSense, {{0}}, 16, 0}}, kChip),
               PreconditionError);
  // Unconsumed output (caught by the final validation).
  EXPECT_THROW(
      plan_placement("bad", {SgNode{MoType::kDispense, {}, 16, 0}}, kChip),
      PreconditionError);
}

TEST(Planner, RejectsChipsThatAreTooSmall) {
  std::vector<SgNode> graph;
  // 20 dispense ports cannot fit along the edges of a 16-wide chip.
  for (int i = 0; i < 20; ++i)
    graph.push_back(SgNode{MoType::kDispense, {}, 16, 0});
  for (int i = 0; i < 20; ++i)
    graph.push_back(SgNode{MoType::kOutput, {{i}}, 16, 0});
  EXPECT_THROW(plan_placement("bad", graph, Rect{0, 0, 15, 15}),
               PreconditionError);
}

TEST(Planner, ToSequenceGraphPreservesStructure) {
  const MoList original = serial_dilution();
  const std::vector<SgNode> graph = to_sequence_graph(original);
  ASSERT_EQ(graph.size(), original.ops.size());
  for (std::size_t i = 0; i < graph.size(); ++i) {
    EXPECT_EQ(graph[i].type, original.ops[i].type);
    EXPECT_EQ(graph[i].pre, original.ops[i].pre);
    EXPECT_EQ(graph[i].hold_cycles, original.ops[i].hold_cycles);
  }
}

}  // namespace
}  // namespace meda::assay
