#include "assay/registry.hpp"

#include <gtest/gtest.h>

#include <set>

#include "assay/benchmarks.hpp"
#include "util/check.hpp"

namespace meda::assay {
namespace {

TEST(Registry, ListsTwelveBenchmarksWithUniqueKeys) {
  const auto infos = list_benchmarks();
  EXPECT_EQ(infos.size(), 12u);
  std::set<std::string> keys;
  for (const BenchmarkInfo& info : infos) {
    EXPECT_FALSE(info.key.empty());
    EXPECT_FALSE(info.description.empty());
    keys.insert(info.key);
  }
  EXPECT_EQ(keys.size(), infos.size());
}

TEST(Registry, EveryListedBenchmarkInstantiatesAndValidates) {
  const Rect chip{0, 0, kChipWidth - 1, kChipHeight - 1};
  for (const BenchmarkInfo& info : list_benchmarks()) {
    const MoList list = make_benchmark(info.key);
    EXPECT_FALSE(list.ops.empty()) << info.key;
    EXPECT_NO_THROW(validate(list, chip)) << info.key;
  }
}

TEST(Registry, KeysMatchTheFactories) {
  EXPECT_EQ(make_benchmark("serial-dilution").name, "Serial Dilution");
  EXPECT_EQ(make_benchmark("cep-lysis").name, "CEP: cell lysis");
  EXPECT_EQ(make_benchmark("multiplex").name, "Multiplex in-vitro");
}

TEST(Registry, PassesTheDropletAreaThrough) {
  const MoList small = make_benchmark("chip-ip", 9);
  const MoList large = make_benchmark("chip-ip", 36);
  EXPECT_EQ(small.ops[0].area, 9);
  EXPECT_EQ(large.ops[0].area, 36);
}

TEST(Registry, UnknownKeyListsTheAlternatives) {
  try {
    make_benchmark("bogus");
    FAIL() << "expected an exception";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bogus"), std::string::npos);
    EXPECT_NE(what.find("serial-dilution"), std::string::npos);
  }
}

}  // namespace
}  // namespace meda::assay
