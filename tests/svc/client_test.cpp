#include "svc/client.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "svc/service.hpp"

namespace meda::svc {
namespace {

constexpr int kBits = 2;

ServiceConfig base_config() {
  ServiceConfig config;
  config.synthesis.rules.enable_morphing = false;
  config.chip_bounds = Rect{0, 0, 19, 19};
  config.health_bits = kBits;
  return config;
}

assay::RoutingJob straight_east(int x0, int cells) {
  assay::RoutingJob rj;
  rj.start = Rect::from_size(x0, 4, 3, 3);
  rj.goal = Rect::from_size(x0 + cells, 4, 3, 3);
  rj.hazard = Rect{0, 0, 19, 19};
  return rj;
}

TEST(SynthesisClient, ReturnsTheServiceResult) {
  SynthesisService service(base_config());
  const int t = service.register_tenant("chip");
  SynthesisClient client(&service, t);
  const core::BackendOutcome out = client.synthesize(
      straight_east(0, 8), IntMatrix(20, 20, 3), kBits, 9,
      core::DigestClass::kPlain);
  EXPECT_FALSE(out.shed);
  EXPECT_STREQ(out.shed_reason, "");
  EXPECT_TRUE(out.result.feasible);
  EXPECT_NEAR(out.result.expected_cycles, 8.0, 1e-9);  // 3×3: single steps
}

TEST(SynthesisClient, ShedsImmediatelyWhenTheDeadlineIsBornExpired) {
  SynthesisService service(base_config());
  const int t = service.register_tenant("chip");
  ClientConfig cc;
  cc.deadline_ticks = 0;  // every submission is born expired
  SynthesisClient client(&service, t, cc);
  const core::BackendOutcome out = client.synthesize(
      straight_east(0, 8), IntMatrix(20, 20, 3), kBits, 9,
      core::DigestClass::kPlain);
  EXPECT_TRUE(out.shed);
  EXPECT_STREQ(out.shed_reason, "expired");
  // Non-retryable: no backoff ticks were spent on the service clock.
  EXPECT_EQ(service.now(), 0u);
}

TEST(SynthesisClient, ShedsImmediatelyWhenTheBudgetWindowIsSpent) {
  ServiceConfig config = base_config();
  config.tenant_budget_sweeps = 1;
  SynthesisService service(config);
  const int t = service.register_tenant("chip");
  SynthesisClient client(&service, t);
  // First call spends the one-sweep window (the solve expires, the ledger
  // settles to exhausted)...
  const core::BackendOutcome first = client.synthesize(
      straight_east(0, 8), IntMatrix(20, 20, 3), kBits, 9,
      core::DigestClass::kPlain);
  EXPECT_FALSE(first.shed);
  EXPECT_TRUE(first.result.deadline_expired);
  // ...so the second is refused at admission, without retries.
  const core::BackendOutcome second = client.synthesize(
      straight_east(1, 8), IntMatrix(20, 20, 3), kBits, 10,
      core::DigestClass::kPlain);
  EXPECT_TRUE(second.shed);
  EXPECT_STREQ(second.shed_reason, "budget_exhausted");
}

TEST(SynthesisClient, BacksOffAndRetriesQueuePressureBeforeShedding) {
  ServiceConfig config = base_config();
  config.queue_capacity = 1;
  SynthesisService service(config);
  const int blocker = service.register_tenant("blocker");
  const int t = service.register_tenant("chip");
  // A queued job the client never drains keeps the bounded queue full.
  ASSERT_TRUE(service
                  .submit(blocker, straight_east(0, 8), IntMatrix(20, 20, 3),
                          1000, 1)
                  .accepted);
  ClientConfig cc;
  cc.max_attempts = 3;
  cc.backoff_base_ticks = 1;
  SynthesisClient client(&service, t, cc);
  const core::BackendOutcome out = client.synthesize(
      straight_east(1, 8), IntMatrix(20, 20, 3), kBits, 9,
      core::DigestClass::kPlain);
  EXPECT_TRUE(out.shed);
  EXPECT_STREQ(out.shed_reason, "queue_full");
  // Two retryable refusals backed off 1 then 2 ticks before the final one.
  EXPECT_EQ(service.now(), 3u);
}

TEST(SynthesisClient, QueuedJobCancelledWhileWaitingShedsAsExpired) {
  ServiceConfig config = base_config();
  config.max_wave = 1;
  SynthesisService service(config);
  const int t = service.register_tenant("chip");
  // A one-tick deadline cannot survive even the first wave of a busy
  // queue: an urgent competitor's wave cost pushes the clock past it.
  ASSERT_TRUE(service
                  .submit(t, straight_east(0, 8), IntMatrix(20, 20, 3), 2, 1)
                  .accepted);
  service.advance(1);
  ClientConfig cc;
  cc.deadline_ticks = 1;
  SynthesisClient client(&service, t, cc);
  const core::BackendOutcome out = client.synthesize(
      straight_east(1, 8), IntMatrix(20, 20, 3), kBits, 9,
      core::DigestClass::kPlain);
  EXPECT_TRUE(out.shed);
  EXPECT_STREQ(out.shed_reason, "expired");
}

}  // namespace
}  // namespace meda::svc
