#include <gtest/gtest.h>

#include "assay/benchmarks.hpp"
#include "core/scheduler.hpp"
#include "sim/simulated_chip.hpp"
#include "svc/client.hpp"
#include "svc/service.hpp"

/// Integration: a Scheduler whose synthesis runs through the multi-tenant
/// service via a SynthesisClient backend — both the happy path (the assay
/// completes with every solve service-side) and the saturated path (every
/// submission shed; the scheduler degrades to its local bounded-A*
/// fallback and still completes the assay).

namespace meda::svc {
namespace {

sim::SimulatedChipConfig chip_config() {
  sim::SimulatedChipConfig config;
  config.chip.width = assay::kChipWidth;
  config.chip.height = assay::kChipHeight;
  return config;
}

ServiceConfig service_config() {
  ServiceConfig config;
  config.chip_bounds = Rect{0, 0, assay::kChipWidth - 1,
                            assay::kChipHeight - 1};
  config.health_bits = 2;  // the paper's sensor resolution (biochip default)
  return config;
}

TEST(SchedulerBackend, ServiceBackedRunCompletesTheAssay) {
  SynthesisService service(service_config());
  const int tenant = service.register_tenant("chip0");
  SynthesisClient client(&service, tenant);
  sim::SimulatedChip chip(chip_config(), Rng(5));
  core::SchedulerConfig config;
  config.backend = &client;
  core::Scheduler scheduler(config);
  const core::ExecutionStats stats = scheduler.run(chip, assay::master_mix());
  EXPECT_TRUE(stats.success) << stats.failure_reason;
  EXPECT_GT(stats.synthesis_calls, 0);
  EXPECT_EQ(stats.service_sheds, 0);
  // The solves landed in the *service's* shared library, not a local one.
  EXPECT_GT(service.library().size(), 0u);
}

TEST(SchedulerBackend, ServiceBackedRunMatchesTheLocalRun) {
  // On the same chip seed, the service path and the local path synthesize
  // from identical inputs — the executions must agree cycle for cycle.
  core::ExecutionStats local_stats;
  {
    sim::SimulatedChip chip(chip_config(), Rng(17));
    core::Scheduler scheduler(core::SchedulerConfig{});
    local_stats = scheduler.run(chip, assay::master_mix());
  }
  SynthesisService service(service_config());
  const int tenant = service.register_tenant("chip0");
  SynthesisClient client(&service, tenant);
  sim::SimulatedChip chip(chip_config(), Rng(17));
  core::SchedulerConfig config;
  config.backend = &client;
  core::Scheduler scheduler(config);
  const core::ExecutionStats stats = scheduler.run(chip, assay::master_mix());
  ASSERT_TRUE(stats.success) << stats.failure_reason;
  ASSERT_TRUE(local_stats.success) << local_stats.failure_reason;
  EXPECT_EQ(stats.cycles, local_stats.cycles);
  EXPECT_EQ(stats.completed_mos, local_stats.completed_mos);
}

TEST(SchedulerBackend, SaturatedServiceDegradesToFallbackAndCompletes) {
  SynthesisService service(service_config());
  const int tenant = service.register_tenant("chip0");
  ClientConfig cc;
  cc.deadline_ticks = 0;  // every submission is refused at admission
  SynthesisClient client(&service, tenant, cc);
  sim::SimulatedChip chip(chip_config(), Rng(5));
  core::SchedulerConfig config;
  config.backend = &client;
  config.recovery.enabled = true;  // shed degrades through the ladder
  core::Scheduler scheduler(config);
  const core::ExecutionStats stats = scheduler.run(chip, assay::master_mix());
  EXPECT_TRUE(stats.success) << stats.failure_reason;
  EXPECT_GT(stats.service_sheds, 0);
  EXPECT_GT(stats.recovery.fallback_routes, 0);
  EXPECT_EQ(service.library().size(), 0u);  // nothing ever reached a solve
}

TEST(SchedulerBackend, ShedWithRecoveryDisabledFailsTheRun) {
  SynthesisService service(service_config());
  const int tenant = service.register_tenant("chip0");
  ClientConfig cc;
  cc.deadline_ticks = 0;
  SynthesisClient client(&service, tenant, cc);
  sim::SimulatedChip chip(chip_config(), Rng(5));
  core::SchedulerConfig config;
  config.backend = &client;
  config.recovery.enabled = false;
  core::Scheduler scheduler(config);
  const core::ExecutionStats stats = scheduler.run(chip, assay::master_mix());
  EXPECT_FALSE(stats.success);
  EXPECT_NE(stats.failure_reason.find("shed"), std::string::npos);
}

}  // namespace
}  // namespace meda::svc
