#include "svc/service.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/journal.hpp"

namespace meda::svc {
namespace {

constexpr int kBits = 2;  // full health = 3

ServiceConfig base_config() {
  ServiceConfig config;
  config.synthesis.rules.enable_morphing = false;
  config.chip_bounds = Rect{0, 0, 19, 19};
  config.health_bits = kBits;
  return config;
}

assay::RoutingJob straight_east(int x0, int cells) {
  assay::RoutingJob rj;
  rj.start = Rect::from_size(x0, 4, 3, 3);
  rj.goal = Rect::from_size(x0 + cells, 4, 3, 3);
  rj.hazard = Rect{0, 0, 19, 19};
  return rj;
}

IntMatrix full_health() { return IntMatrix(20, 20, 3); }

/// Enables the global metrics registry for one test and restores the
/// previous state after, so metric assertions don't leak across tests.
class MetricsScope {
 public:
  MetricsScope() {
    obs::ctx().metrics().clear();
    obs::ctx().metrics().enable();
  }
  ~MetricsScope() {
    obs::ctx().metrics().clear();
    obs::ctx().metrics().disable();
  }
  std::uint64_t counter(const std::string& name) const {
    return obs::ctx().metrics().counter(name);
  }
};

TEST(SynthesisService, AdmissionShedsWithTypedReasonsInOrder) {
  MetricsScope metrics;
  ServiceConfig config = base_config();
  config.tenant_inflight_cap = 2;
  config.queue_capacity = 3;
  SynthesisService service(config);
  const int a = service.register_tenant("a");
  const int b = service.register_tenant("b");

  // Born-expired deadline is checked first.
  const SubmitTicket expired =
      service.submit(a, straight_east(0, 8), full_health(), 0, 1);
  EXPECT_FALSE(expired.accepted);
  EXPECT_EQ(expired.reason, ShedReason::kExpired);

  // Tenant cap: a's third in-flight job sheds, b is unaffected.
  EXPECT_TRUE(
      service.submit(a, straight_east(0, 8), full_health(), 100, 1).accepted);
  EXPECT_TRUE(
      service.submit(a, straight_east(1, 8), full_health(), 100, 2).accepted);
  const SubmitTicket capped =
      service.submit(a, straight_east(2, 8), full_health(), 100, 3);
  EXPECT_FALSE(capped.accepted);
  EXPECT_EQ(capped.reason, ShedReason::kTenantCap);

  // Queue capacity: the bounded queue (3) is full after b's first job.
  EXPECT_TRUE(
      service.submit(b, straight_east(2, 8), full_health(), 100, 3).accepted);
  const SubmitTicket overflow =
      service.submit(b, straight_east(3, 8), full_health(), 100, 4);
  EXPECT_FALSE(overflow.accepted);
  EXPECT_EQ(overflow.reason, ShedReason::kQueueFull);

  EXPECT_EQ(metrics.counter("svc.shed"), 3u);
  EXPECT_EQ(metrics.counter("svc.shed.expired"), 1u);
  EXPECT_EQ(metrics.counter("svc.shed.tenant_cap"), 1u);
  EXPECT_EQ(metrics.counter("svc.shed.queue_full"), 1u);
  EXPECT_EQ(metrics.counter("svc.accepted"), 3u);
}

TEST(SynthesisService, ExpiredQueuedJobsAreCancelledBeforeDispatch) {
  MetricsScope metrics;
  SynthesisService service(base_config());
  const int t = service.register_tenant("chip");
  const SubmitTicket ticket =
      service.submit(t, straight_east(0, 8), full_health(), 5, 1);
  ASSERT_TRUE(ticket.accepted);
  service.advance(10);
  EXPECT_EQ(service.drain(), 1u);
  const std::optional<JobOutcome> out = service.take(ticket.seq);
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->cancelled);
  EXPECT_FALSE(out->result.feasible);
  EXPECT_EQ(out->wait_ticks, 10u);
  // Cancelled before dispatch: no solve was spent on it.
  EXPECT_EQ(metrics.counter("svc.solves"), 0u);
  EXPECT_EQ(metrics.counter("svc.cancelled"), 1u);
}

TEST(SynthesisService, CoalescesIdenticalJobsAcrossTenants) {
  MetricsScope metrics;
  ServiceConfig config = base_config();
  config.tenant_budget_sweeps = 10000;
  config.synthesis.deadline_sweeps = 1000;
  SynthesisService service(config);
  const int a = service.register_tenant("a");
  const int b = service.register_tenant("b");
  const assay::RoutingJob rj = straight_east(0, 8);
  const SubmitTicket ta = service.submit(a, rj, full_health(), 100, 42);
  const SubmitTicket tb = service.submit(b, rj, full_health(), 100, 42);
  ASSERT_TRUE(ta.accepted);
  ASSERT_TRUE(tb.accepted);
  EXPECT_EQ(service.drain(), 2u);

  const std::optional<JobOutcome> oa = service.take(ta.seq);
  const std::optional<JobOutcome> ob = service.take(tb.seq);
  ASSERT_TRUE(oa.has_value());
  ASSERT_TRUE(ob.has_value());
  EXPECT_FALSE(oa->coalesced);  // earliest submitter is the primary
  EXPECT_TRUE(ob->coalesced);
  EXPECT_TRUE(oa->result.feasible);
  EXPECT_EQ(oa->result.expected_cycles, ob->result.expected_cycles);
  EXPECT_EQ(oa->result.stats.states, ob->result.stats.states);

  // One solve served both waiters, and only the primary paid budget.
  EXPECT_EQ(metrics.counter("svc.solves"), 1u);
  EXPECT_EQ(metrics.counter("svc.coalesced"), 1u);
  EXPECT_GT(service.tenant_ledger(a).spent(), 0u);
  EXPECT_EQ(service.tenant_ledger(b).spent(), 0u);
}

TEST(SynthesisService, DispatchIsEarliestDeadlineFirst) {
  ServiceConfig config = base_config();
  config.max_wave = 1;  // one group per wave so dispatch order is visible
  SynthesisService service(config);
  const int t = service.register_tenant("chip");
  const SubmitTicket relaxed =
      service.submit(t, straight_east(0, 8), full_health(), 1000, 1);
  const SubmitTicket urgent =
      service.submit(t, straight_east(1, 8), full_health(), 10, 2);
  ASSERT_TRUE(relaxed.accepted);
  ASSERT_TRUE(urgent.accepted);
  EXPECT_EQ(service.drain(), 2u);
  const std::optional<JobOutcome> ou = service.take(urgent.seq);
  const std::optional<JobOutcome> orx = service.take(relaxed.seq);
  ASSERT_TRUE(ou.has_value());
  ASSERT_TRUE(orx.has_value());
  // The urgent job (submitted second) was dispatched in the first wave;
  // the relaxed one waited for the urgent wave's logical cost.
  EXPECT_FALSE(ou->cancelled);
  EXPECT_EQ(ou->wait_ticks, 0u);
  EXPECT_GT(orx->wait_ticks, 0u);
}

TEST(SynthesisService, LibraryHitsServeForFreeAndSkipTheSolver) {
  MetricsScope metrics;
  SynthesisService service(base_config());
  const int t = service.register_tenant("chip");
  const SubmitTicket first =
      service.submit(t, straight_east(0, 8), full_health(), 100, 7);
  service.drain();
  ASSERT_TRUE(service.take(first.seq)->result.feasible);

  const std::uint64_t clock_before = service.now();
  const SubmitTicket second =
      service.submit(t, straight_east(0, 8), full_health(), 100, 7);
  service.drain();
  const std::optional<JobOutcome> out = service.take(second.seq);
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->library_hit);
  EXPECT_TRUE(out->result.feasible);
  EXPECT_EQ(service.now(), clock_before);  // hits cost zero logical ticks
  EXPECT_EQ(metrics.counter("svc.solves"), 1u);
  EXPECT_EQ(metrics.counter("svc.library_hits"), 1u);
}

TEST(SynthesisService, BudgetExhaustionIsolatesTenants) {
  ServiceConfig config = base_config();
  config.tenant_budget_sweeps = 1;  // one sweep per window: exhausts fast
  SynthesisService service(config);
  const int storm = service.register_tenant("storm");
  const int calm = service.register_tenant("calm");

  const SubmitTicket ticket =
      service.submit(storm, straight_east(0, 8), full_health(), 100, 1);
  ASSERT_TRUE(ticket.accepted);
  service.drain();
  const std::optional<JobOutcome> out = service.take(ticket.seq);
  ASSERT_TRUE(out.has_value());
  // A one-sweep budget cannot converge: the solve comes back expired...
  EXPECT_TRUE(out->result.deadline_expired);
  EXPECT_TRUE(service.tenant_ledger(storm).exhausted());

  // ...and the storm tenant is refused admission while its sibling is not.
  const SubmitTicket refused =
      service.submit(storm, straight_east(1, 8), full_health(), 100, 2);
  EXPECT_FALSE(refused.accepted);
  EXPECT_EQ(refused.reason, ShedReason::kBudgetExhausted);
  EXPECT_TRUE(
      service.submit(calm, straight_east(1, 8), full_health(), 100, 2)
          .accepted);
  EXPECT_FALSE(service.tenant_ledger(calm).exhausted());

  // A new budget window re-admits the storm tenant.
  service.refill_budgets();
  EXPECT_TRUE(
      service.submit(storm, straight_east(2, 8), full_health(), 100, 3)
          .accepted);
}

TEST(SynthesisService, TakeIsOneShot) {
  SynthesisService service(base_config());
  const int t = service.register_tenant("chip");
  const SubmitTicket ticket =
      service.submit(t, straight_east(0, 8), full_health(), 100, 1);
  EXPECT_FALSE(service.take(ticket.seq).has_value());  // not drained yet
  service.drain();
  EXPECT_TRUE(service.take(ticket.seq).has_value());
  EXPECT_FALSE(service.take(ticket.seq).has_value());
  EXPECT_FALSE(service.take(12345).has_value());
}

/// Drives one fixed submission scenario and snapshots everything observable.
struct Snapshot {
  std::vector<JobOutcome> outcomes;
  std::uint64_t clock = 0;
  std::vector<std::uint64_t> spent;
};

Snapshot run_scenario(int jobs, util::AppendJournal* journal = nullptr) {
  ServiceConfig config = base_config();
  config.jobs = jobs;
  config.max_wave = 4;  // fixed wave width: byte-identity at any jobs count
  config.tenant_budget_sweeps = 5000;
  config.synthesis.deadline_sweeps = 1000;
  config.journal = journal;
  SynthesisService service(config);
  const int a = service.register_tenant("a");
  const int b = service.register_tenant("b");
  std::vector<SubmitTicket> tickets;
  IntMatrix degraded = full_health();
  for (int y = 0; y < 20; ++y) degraded(9, y) = 1;
  tickets.push_back(service.submit(a, straight_east(0, 8), full_health(),
                                   100, 11));
  tickets.push_back(service.submit(b, straight_east(0, 8), full_health(),
                                   100, 11));  // coalesces with the first
  tickets.push_back(service.submit(a, straight_east(2, 9), degraded, 200, 12));
  tickets.push_back(service.submit(b, straight_east(1, 6), full_health(),
                                   50, 13));
  tickets.push_back(service.submit(a, straight_east(4, 7), full_health(),
                                   300, 14));
  service.drain();
  tickets.push_back(service.submit(b, straight_east(0, 8), full_health(),
                                   100, 11));  // library hit second round
  service.drain();
  Snapshot snap;
  snap.clock = service.now();
  snap.spent = {service.tenant_ledger(a).spent(),
                service.tenant_ledger(b).spent()};
  for (const SubmitTicket& t : tickets) {
    MEDA_REQUIRE(t.accepted, "scenario submissions must be accepted");
    std::optional<JobOutcome> out = service.take(t.seq);
    MEDA_REQUIRE(out.has_value(), "scenario job must complete");
    snap.outcomes.push_back(std::move(*out));
  }
  return snap;
}

void expect_identical(const Snapshot& x, const Snapshot& y,
                      bool expect_replayed) {
  EXPECT_EQ(x.clock, y.clock);
  EXPECT_EQ(x.spent, y.spent);
  ASSERT_EQ(x.outcomes.size(), y.outcomes.size());
  for (std::size_t i = 0; i < x.outcomes.size(); ++i) {
    const JobOutcome& a = x.outcomes[i];
    const JobOutcome& b = y.outcomes[i];
    EXPECT_EQ(a.seq, b.seq);
    EXPECT_EQ(a.tenant, b.tenant);
    EXPECT_EQ(a.cancelled, b.cancelled);
    EXPECT_EQ(a.coalesced, b.coalesced);
    EXPECT_EQ(a.library_hit, b.library_hit);
    EXPECT_EQ(a.wait_ticks, b.wait_ticks);
    EXPECT_EQ(a.result.feasible, b.result.feasible);
    EXPECT_EQ(a.result.deadline_expired, b.result.deadline_expired);
    // Bit-exact, not approximate: crash resume and thread-count invariance
    // both promise byte-identical CSVs.
    EXPECT_EQ(a.result.expected_cycles, b.result.expected_cycles);
    EXPECT_EQ(a.result.reach_probability, b.result.reach_probability);
    EXPECT_EQ(a.result.stats.states, b.result.stats.states);
    EXPECT_EQ(a.result.stats.transitions, b.result.stats.transitions);
    EXPECT_EQ(a.result.strategy.size(), b.result.strategy.size());
    if (expect_replayed && !a.library_hit && !a.coalesced) {
      EXPECT_TRUE(b.replayed) << "outcome " << i;
    }
  }
}

TEST(SynthesisService, OutcomesAreIdenticalAtAnyThreadCount) {
  expect_identical(run_scenario(1), run_scenario(4),
                   /*expect_replayed=*/false);
}

TEST(SynthesisService, JournalReplayReproducesARunByteIdentically) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "svc_journal_test.log")
          .string();
  std::remove(path.c_str());

  util::AppendJournal straight;
  straight.open(path, 0xfeedu, /*resume=*/false);
  ASSERT_TRUE(straight.enabled());
  const Snapshot first = run_scenario(2, &straight);

  // A fresh service generation resumes from the journal: every solve is
  // served by replay, and everything observable matches bit for bit —
  // including the tenants' ledger charges.
  util::AppendJournal resumed;
  resumed.open(path, 0xfeedu, /*resume=*/true);
  EXPECT_GT(resumed.restored_count(), 0u);
  const Snapshot second = run_scenario(2, &resumed);
  expect_identical(first, second, /*expect_replayed=*/true);
  if (!HasFailure()) std::remove(path.c_str());
}

TEST(SynthesisService, ReplayIsKeyedOnTheArmedBudget) {
  // The same routing key solved under a different armed sweep budget must
  // not be served from the journal: the key includes the armed budget.
  const std::string path =
      (std::filesystem::temp_directory_path() / "svc_journal_key_test.log")
          .string();
  std::remove(path.c_str());
  util::AppendJournal journal;
  journal.open(path, 0x1u, /*resume=*/false);

  ServiceConfig config = base_config();
  config.synthesis.deadline_sweeps = 1000;
  config.journal = &journal;
  {
    SynthesisService service(config);
    const int t = service.register_tenant("chip");
    service.submit(t, straight_east(0, 8), full_health(), 100, 5);
    service.drain();
  }
  util::AppendJournal resumed;
  resumed.open(path, 0x1u, /*resume=*/true);
  config.journal = &resumed;
  config.synthesis.deadline_sweeps = 7;  // different per-solve arming
  SynthesisService service(config);
  const int t = service.register_tenant("chip");
  const SubmitTicket ticket =
      service.submit(t, straight_east(0, 8), full_health(), 100, 5);
  service.drain();
  const std::optional<JobOutcome> out = service.take(ticket.seq);
  ASSERT_TRUE(out.has_value());
  EXPECT_FALSE(out->replayed);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace meda::svc
