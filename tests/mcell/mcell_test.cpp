#include "mcell/mcell.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"

namespace meda::mcell {
namespace {

TEST(ParallelPlate, MatchesTableI) {
  // 50×50 µm² electrode, silicone-oil permittivity 19 pF/m, 20 µm gap →
  // the paper's healthy capacitance 2.375 fF.
  const double c =
      parallel_plate_capacitance(50e-6 * 50e-6, 19e-12, 20e-6);
  EXPECT_NEAR(c, 2.375e-15, 1e-18);
}

TEST(ParallelPlate, RejectsNonPositiveInputs) {
  EXPECT_THROW(parallel_plate_capacitance(0.0, 1.0, 1.0), PreconditionError);
  EXPECT_THROW(parallel_plate_capacitance(1.0, -1.0, 1.0), PreconditionError);
}

TEST(Transient, DischargeTracksAnalyticExponential) {
  const CircuitParams params;
  const double r = params.r_healthy;
  const double c = params.c_healthy;
  const Transient trace = simulate_discharge(r, c, params);
  const double tau_ns = r * c * 1e9;
  for (double t : {5.0, 15.0, 30.0, 50.0}) {
    const double analytic = params.vdd * std::exp(-t / tau_ns);
    EXPECT_NEAR(trace.at(t), analytic, params.vdd * 0.005) << "t = " << t;
  }
}

TEST(Transient, StartsAtVddAndDecaysMonotonically) {
  const CircuitParams params;
  const Transient trace =
      simulate_discharge(params.r_complete, params.c_complete, params);
  EXPECT_DOUBLE_EQ(trace.v.front(), params.vdd);
  for (std::size_t i = 1; i < trace.v.size(); ++i)
    EXPECT_LT(trace.v[i], trace.v[i - 1]);
}

TEST(Transient, InterpolationClampsToEnds) {
  const CircuitParams params;
  const Transient trace =
      simulate_discharge(params.r_healthy, params.c_healthy, params);
  EXPECT_DOUBLE_EQ(trace.at(-1.0), trace.v.front());
  EXPECT_DOUBLE_EQ(trace.at(1e9), trace.v.back());
}

TEST(ThresholdCrossing, MatchesAnalyticSolution) {
  const CircuitParams params;
  const Transient trace =
      simulate_discharge(params.r_healthy, params.c_healthy, params);
  const double tau_ns = params.r_healthy * params.c_healthy * 1e9;
  const double analytic = tau_ns * std::log(params.vdd / params.vth);
  EXPECT_NEAR(threshold_crossing_ns(trace, params.vth), analytic,
              analytic * 0.01);
}

TEST(ThresholdCrossing, OrderedByDegradationSeverity) {
  const CircuitParams params;
  const double t_h = threshold_crossing_ns(
      simulate_discharge(params.r_healthy, params.c_healthy, params),
      params.vth);
  const double t_p = threshold_crossing_ns(
      simulate_discharge(params.r_partial, params.c_partial, params),
      params.vth);
  const double t_c = threshold_crossing_ns(
      simulate_discharge(params.r_complete, params.c_complete, params),
      params.vth);
  // Degraded MCs discharge faster ("charging/discharging time is less").
  EXPECT_LT(t_c, t_p);
  EXPECT_LT(t_p, t_h);
}

TEST(SenseCode, ThreeHealthClassesWithPaperSkew) {
  const CircuitParams params;  // 5 ns skew (the paper's design point)
  EXPECT_EQ(sense_code(HealthClass::kHealthy, params), 0b11);
  EXPECT_EQ(sense_code(HealthClass::kComplete, params), 0b00);
  // Partially degraded: the two DFFs disagree.
  const int partial = sense_code(HealthClass::kPartial, params);
  EXPECT_TRUE(partial == 0b10 || partial == 0b01);
}

TEST(SenseCode, Classification) {
  EXPECT_EQ(classify(0b11), HealthClass::kHealthy);
  EXPECT_EQ(classify(0b00), HealthClass::kComplete);
  EXPECT_EQ(classify(0b10), HealthClass::kPartial);
  EXPECT_EQ(classify(0b01), HealthClass::kPartial);
  EXPECT_THROW(classify(4), PreconditionError);
}

TEST(SkewWindow, ContainsPaperDesignPoint) {
  const CircuitParams params;
  const SkewWindow window = distinguishing_skew_window(params);
  EXPECT_TRUE(window.valid());
  EXPECT_TRUE(window.contains(5.0));
}

TEST(SkewWindow, SkewsOutsideWindowFailToDistinguish) {
  CircuitParams params;
  const SkewWindow window = distinguishing_skew_window(params);
  // A skew below the window: the added DFF fires before the partial MC has
  // crossed the threshold, so partial reads "11" like healthy.
  params.clk_skew_ns = window.lo_ns * 0.5;
  EXPECT_EQ(sense_code(HealthClass::kPartial, params),
            sense_code(HealthClass::kHealthy, params));
  // A skew beyond the window: healthy also crosses before the added edge,
  // so healthy no longer reads "11".
  params.clk_skew_ns = window.hi_ns * 1.5;
  EXPECT_NE(sense_code(HealthClass::kHealthy, params), 0b11);
}

TEST(SkewWindow, SenseCodesConsistentAcrossWindowSweep) {
  CircuitParams params;
  const SkewWindow window = distinguishing_skew_window(params);
  for (double skew = window.lo_ns + 0.2; skew < window.hi_ns;
       skew += 0.5) {
    params.clk_skew_ns = skew;
    EXPECT_EQ(classify(sense_code(HealthClass::kHealthy, params)),
              HealthClass::kHealthy);
    EXPECT_EQ(classify(sense_code(HealthClass::kPartial, params)),
              HealthClass::kPartial);
    EXPECT_EQ(classify(sense_code(HealthClass::kComplete, params)),
              HealthClass::kComplete);
  }
}

TEST(SensingRobustness, NoiselessSensingIsPerfect) {
  Rng rng(1);
  const CircuitParams params;
  for (HealthClass cls : {HealthClass::kHealthy, HealthClass::kPartial,
                          HealthClass::kComplete}) {
    const ClassificationStats stats = classification_errors(
        cls, params, NoiseModel{0.0, 0.0}, 500, rng);
    EXPECT_EQ(stats.errors, 0) << static_cast<int>(cls);
    EXPECT_DOUBLE_EQ(stats.error_rate, 0.0);
  }
}

TEST(SensingRobustness, JitterDegradesThePartialClassFirst) {
  // The partial class sits between two decision boundaries (≈ 3 ns and
  // ≈ 2 ns of margin); the healthy and complete classes have more slack.
  Rng rng(2);
  const CircuitParams params;
  const NoiseModel jitter{0.0, 1.5};
  const auto partial = classification_errors(HealthClass::kPartial, params,
                                             jitter, 4000, rng);
  const auto healthy = classification_errors(HealthClass::kHealthy, params,
                                             jitter, 4000, rng);
  EXPECT_GT(partial.error_rate, 0.01);
  EXPECT_GT(partial.error_rate, healthy.error_rate);
}

TEST(SensingRobustness, ErrorRateGrowsWithNoise) {
  Rng rng(3);
  const CircuitParams params;
  double prev = -1.0;
  for (const double jitter : {0.5, 1.5, 3.0}) {
    const auto stats = classification_errors(
        HealthClass::kPartial, params, NoiseModel{0.0, jitter}, 6000, rng);
    EXPECT_GE(stats.error_rate, prev - 0.02) << jitter;  // ~monotone
    prev = stats.error_rate;
  }
  EXPECT_GT(prev, 0.1);
}

TEST(SensingRobustness, LargeCapacitanceVariationBreaksClassification) {
  // ±5% C variation dwarfs the 0.2% healthy-to-complete spread of Table I:
  // a noticeable fraction of partial cells misread.
  Rng rng(4);
  const CircuitParams params;
  const auto stats = classification_errors(
      HealthClass::kPartial, params, NoiseModel{0.05, 0.0}, 4000, rng);
  EXPECT_GT(stats.error_rate, 0.08);
  // And it hurts far more than sub-nanosecond jitter.
  const auto tiny_jitter = classification_errors(
      HealthClass::kPartial, params, NoiseModel{0.0, 0.3}, 4000, rng);
  EXPECT_GT(stats.error_rate, tiny_jitter.error_rate);
}

TEST(SensingRobustness, RejectsBadInput) {
  Rng rng(5);
  const CircuitParams params;
  EXPECT_THROW(classification_errors(HealthClass::kHealthy, params,
                                     NoiseModel{-0.1, 0.0}, 10, rng),
               PreconditionError);
  EXPECT_THROW(classification_errors(HealthClass::kHealthy, params,
                                     NoiseModel{}, 0, rng),
               PreconditionError);
}

TEST(Simulate, RejectsBadParameters) {
  const CircuitParams params;
  EXPECT_THROW(simulate_discharge(0.0, 1e-15, params), PreconditionError);
  CircuitParams coarse = params;
  coarse.sim_dt_ns = 1e9;  // dt larger than the RC constant
  EXPECT_THROW(
      simulate_discharge(params.r_healthy, params.c_healthy, coarse),
      PreconditionError);
}

}  // namespace
}  // namespace meda::mcell
