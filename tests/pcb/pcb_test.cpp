#include "pcb/pcb.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"

namespace meda::pcb {
namespace {

TEST(Electrode, CapacitanceGrowsLinearlyWithActuations) {
  Electrode e(electrode_2mm());
  const double c0 = e.capacitance_pf();
  e.actuate(1.0);
  const double step = e.capacitance_pf() - c0;
  EXPECT_GT(step, 0.0);
  for (int i = 0; i < 99; ++i) e.actuate(1.0);
  EXPECT_NEAR(e.capacitance_pf() - c0, 100.0 * step, 1e-9);
  EXPECT_EQ(e.actuation_count(), 100);
}

TEST(Electrode, ResidualChargeBoostsTrappingRate) {
  Electrode short_act(electrode_3mm());
  Electrode long_act(electrode_3mm());
  short_act.actuate(1.0);
  long_act.actuate(5.0);
  const double c0 = electrode_3mm().c0_pf;
  const double short_gain = short_act.capacitance_pf() - c0;
  const double long_gain = long_act.capacitance_pf() - c0;
  // 5 s actuation beyond the residual threshold: 5× the seconds AND the
  // boost factor — much faster than 5×.
  EXPECT_NEAR(long_gain / short_gain, 5.0 * electrode_3mm().residual_boost,
              1e-9);
}

TEST(Electrode, LargerElectrodesTrapFaster) {
  EXPECT_LT(electrode_2mm().trap_rate_pf_per_s,
            electrode_3mm().trap_rate_pf_per_s);
  EXPECT_LT(electrode_3mm().trap_rate_pf_per_s,
            electrode_4mm().trap_rate_pf_per_s);
  EXPECT_LT(electrode_2mm().c0_pf, electrode_4mm().c0_pf);
}

TEST(Electrode, ChargingTimeIsRcLog) {
  Electrode e(electrode_2mm());
  // t = −RC ln(1 − f); with f = 1 − 1/e this is exactly RC.
  const double f = 1.0 - std::exp(-1.0);
  const double rc = 1e6 * e.capacitance_pf() * 1e-12;
  EXPECT_NEAR(e.charging_time_s(1e6, f), rc, rc * 1e-9);
}

TEST(Electrode, ChargingTimeRejectsBadFraction) {
  Electrode e(electrode_2mm());
  EXPECT_THROW(e.charging_time_s(1e6, 1.0), PreconditionError);
  EXPECT_THROW(e.charging_time_s(1e6, 0.0), PreconditionError);
  EXPECT_THROW(e.charging_time_s(0.0, 0.5), PreconditionError);
}

TEST(MeasurementRig, NoiselessMeasurementRecoversCapacitance) {
  Rng rng(1);
  MeasurementRig rig;
  rig.noise_rel = 0.0;
  Electrode e(electrode_4mm());
  EXPECT_NEAR(rig.measure_capacitance_pf(e, rng), e.capacitance_pf(), 1e-9);
}

TEST(MeasurementRig, NoisyMeasurementIsUnbiased) {
  Rng rng(2);
  MeasurementRig rig;  // 1% noise
  Electrode e(electrode_3mm());
  double sum = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) sum += rig.measure_capacitance_pf(e, rng);
  EXPECT_NEAR(sum / n, e.capacitance_pf(), e.capacitance_pf() * 0.002);
}

TEST(DegradationExperiment, SeriesIsLinearWithHighR2) {
  Rng rng(3);
  const MeasurementRig rig;
  const DegradationSeries series = run_degradation_experiment(
      electrode_2mm(), rig, 1.0, 600, 50, rng);
  EXPECT_EQ(series.actuations.size(), 13u);  // 0, 50, ..., 600
  const stats::FitResult fit =
      stats::linear_fit(series.actuations, series.capacitance_pf);
  EXPECT_NEAR(fit.slope, electrode_2mm().trap_rate_pf_per_s, 0.001);
  EXPECT_GT(fit.r2, 0.9);
}

TEST(DegradationExperiment, ResidualModeSlopeIsBoosted) {
  Rng rng(4);
  MeasurementRig rig;
  rig.noise_rel = 0.0;
  const auto slow = run_degradation_experiment(electrode_3mm(), rig, 1.0,
                                               400, 50, rng);
  const auto fast = run_degradation_experiment(electrode_3mm(), rig, 5.0,
                                               400, 50, rng);
  const double slope_slow =
      stats::linear_fit(slow.actuations, slow.capacitance_pf).slope;
  const double slope_fast =
      stats::linear_fit(fast.actuations, fast.capacitance_pf).slope;
  EXPECT_NEAR(slope_fast / slope_slow, 20.0, 0.1);  // 5 s × 4 boost
}

TEST(ForceSeries, NoiselessMatchesGroundTruth) {
  Rng rng(5);
  const DegradationParams truth{0.556, 822.7};
  const ForceSeries series =
      measure_relative_force(truth, 1000, 100, 0.0, rng);
  for (std::size_t i = 0; i < series.actuations.size(); ++i) {
    EXPECT_NEAR(series.relative_force[i],
                truth.relative_force(static_cast<std::uint64_t>(
                    series.actuations[i])),
                1e-12);
  }
}

TEST(ForceFit, RecoversPaperParameters) {
  Rng rng(6);
  const DegradationParams truth{0.543, 805.5};  // Fig. 6, 3×3 mm electrode
  const ForceSeries series =
      measure_relative_force(truth, 1500, 100, 0.03, rng);
  const ForceFit fit = fit_force_model(series, truth.c);
  EXPECT_NEAR(fit.tau, truth.tau, 0.02);
  EXPECT_DOUBLE_EQ(fit.c, truth.c);
  EXPECT_NEAR(fit.k, 2.0 * std::log(truth.tau) / truth.c,
              std::abs(fit.k) * 0.05);
  EXPECT_GT(fit.r2_adjusted, 0.94);  // the paper's acceptance bar
}

TEST(ForceFit, RejectsNonPositiveReference) {
  Rng rng(7);
  const ForceSeries series =
      measure_relative_force(DegradationParams{0.5, 100.0}, 300, 50, 0.0,
                             rng);
  EXPECT_THROW(fit_force_model(series, 0.0), PreconditionError);
}

}  // namespace
}  // namespace meda::pcb
