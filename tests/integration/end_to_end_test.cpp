// End-to-end system tests: full bioassays through the adaptive-routing
// framework on the simulated MEDA biochip.

#include <gtest/gtest.h>

#include "assay/benchmarks.hpp"
#include "core/scheduler.hpp"
#include "sim/experiments.hpp"
#include "sim/simulated_chip.hpp"

namespace meda {
namespace {

sim::SimulatedChipConfig reference_chip() {
  sim::SimulatedChipConfig config;
  config.chip.width = assay::kChipWidth;
  config.chip.height = assay::kChipHeight;
  return config;
}

TEST(EndToEnd, AllNineBenchmarksCompleteOnHealthyChips) {
  std::vector<assay::MoList> all = assay::evaluation_suite();
  for (assay::MoList& list : assay::correlation_suite())
    all.push_back(std::move(list));
  for (const assay::MoList& list : all) {
    sim::SimulatedChip chip(reference_chip(), Rng(101));
    core::SchedulerConfig config;
    config.max_cycles = 3000;
    core::Scheduler scheduler(config);
    const core::ExecutionStats stats = scheduler.run(chip, list);
    EXPECT_TRUE(stats.success) << list.name << ": " << stats.failure_reason;
    EXPECT_TRUE(chip.droplets().empty()) << list.name;
    EXPECT_EQ(stats.resyntheses, 0) << list.name;  // nothing degraded yet
  }
}

TEST(EndToEnd, ActuationAccountingIsConsistent) {
  sim::SimulatedChip chip(reference_chip(), Rng(102));
  core::Scheduler scheduler(core::SchedulerConfig{});
  const core::ExecutionStats stats =
      scheduler.run(chip, assay::master_mix());
  ASSERT_TRUE(stats.success);
  EXPECT_EQ(chip.substrate().cycles(), stats.cycles);
  // Each cycle actuates at least one droplet pattern while any MO is
  // active, so the total actuations exceed the cycle count.
  EXPECT_GT(chip.substrate().total_actuations(), stats.cycles);
}

TEST(EndToEnd, FaultInjectionDegradesBaselineMoreThanAdaptive) {
  // Aggregate over a few pre-worn faulty chips: the adaptive router must
  // complete at least as many executions as the baseline and never more
  // cycles on the same chip when both succeed everywhere.
  int adaptive_successes = 0;
  int baseline_successes = 0;
  for (int seed = 0; seed < 4; ++seed) {
    for (const bool adaptive : {true, false}) {
      sim::RepeatedRunsConfig config;
      config.chip = reference_chip();
      config.chip.chip.degradation = DegradationRange{0.5, 0.9, 60.0, 150.0};
      config.chip.pre_wear_max = 150;
      config.chip.faults.mode = FaultMode::kClustered;
      config.chip.faults.faulty_fraction = 0.08;
      config.chip.faults.fail_at_lo = 15;
      config.chip.faults.fail_at_hi = 120;
      config.scheduler.adaptive = adaptive;
      config.scheduler.max_cycles = 1000;
      config.runs = 4;
      config.seed = 9000 + static_cast<std::uint64_t>(seed);
      for (const sim::RunRecord& r :
           sim::run_repeated(assay::serial_dilution(), config)) {
        (adaptive ? adaptive_successes : baseline_successes) += r.success;
      }
    }
  }
  EXPECT_GT(adaptive_successes, baseline_successes);
}

TEST(EndToEnd, AdaptiveReroutesAroundMidRunFailures) {
  // Faults tripping mid-run force health changes; the adaptive scheduler
  // must observe them (re-syntheses > 0) and still finish.
  sim::SimulatedChipConfig config = reference_chip();
  config.chip.degradation = DegradationRange{0.5, 0.9, 60.0, 150.0};
  config.pre_wear_max = 150;
  config.faults.mode = FaultMode::kClustered;
  config.faults.faulty_fraction = 0.10;
  config.faults.fail_at_lo = 5;
  config.faults.fail_at_hi = 60;
  sim::SimulatedChip chip(config, Rng(4242));
  core::SchedulerConfig sched;
  sched.adaptive = true;
  sched.max_cycles = 3000;
  core::Scheduler scheduler(sched);
  const core::ExecutionStats stats = scheduler.run(chip, assay::cep());
  EXPECT_TRUE(stats.success) << stats.failure_reason;
  EXPECT_GT(stats.resyntheses, 0);
}

TEST(EndToEnd, HybridLibraryAmortizesSynthesisAcrossExecutions) {
  sim::RepeatedRunsConfig config;
  config.chip = reference_chip();
  config.scheduler.adaptive = true;
  config.runs = 4;
  config.seed = 71;
  const auto runs = sim::run_repeated(assay::covid_pcr(), config);
  ASSERT_EQ(runs.size(), 4u);
  for (const sim::RunRecord& r : runs) ASSERT_TRUE(r.success);
  // On an undamaged chip the health digest stays constant, so later
  // executions are served from the library.
  EXPECT_GT(runs[1].stats.library_hits, 0);
  EXPECT_LT(runs[3].stats.synthesis_calls, runs[0].stats.synthesis_calls);
}

TEST(EndToEnd, TwoAssayPanelRunsConcurrently) {
  // A diagnostic panel: two independent assay chains merged into one MO
  // list, executing simultaneously in disjoint chip bands.
  const auto make_chain = [](const char* name, double band_y) {
    assay::AssayBuilder b(name);
    const int sample = b.dispense(4.5, band_y, 16);
    const int reagent = b.dispense(16.5, band_y, 16);
    const int mixed = b.mix({sample}, {reagent}, 28.0, band_y, 6);
    const int read = b.mag({mixed}, 40.0, band_y, 8);
    b.output({read}, 54.0, band_y);
    return std::move(b).build();
  };
  const assay::MoList panel =
      assay::merge_assays(make_chain("A", 6.5), make_chain("B", 23.5));
  sim::SimulatedChip chip(reference_chip(), Rng(105));
  core::Scheduler scheduler(core::SchedulerConfig{});
  const core::ExecutionStats stats = scheduler.run(chip, panel);
  ASSERT_TRUE(stats.success) << stats.failure_reason;
  EXPECT_TRUE(chip.droplets().empty());
  // The chains genuinely overlap in time: chain B's mix (MO 7) starts
  // before chain A's output (MO 4) completes.
  EXPECT_LT(stats.mo_timings[7].activated, stats.mo_timings[4].completed);
  // And the panel is barely slower than a single chain.
  sim::SimulatedChip solo_chip(reference_chip(), Rng(105));
  const core::ExecutionStats solo =
      core::Scheduler(core::SchedulerConfig{})
          .run(solo_chip, make_chain("A", 6.5));
  EXPECT_LT(stats.cycles, 2 * solo.cycles);
}

TEST(EndToEnd, SynthesisWallTimeStaysInteractive) {
  // Section VII-D argues on-demand synthesis latency matters; our explicit
  // engine synthesizes a whole bioassay's strategies well under a second.
  sim::SimulatedChip chip(reference_chip(), Rng(103));
  core::Scheduler scheduler(core::SchedulerConfig{});
  const core::ExecutionStats stats = scheduler.run(chip, assay::nuip());
  ASSERT_TRUE(stats.success);
  EXPECT_LT(stats.synthesis_seconds, 1.0);
}

TEST(EndToEnd, DropletCountBookkeepingThroughSplitAndMerge) {
  // Serial dilution repeatedly merges and splits; every intermediate
  // droplet must be consumed by the end of the run.
  sim::SimulatedChip chip(reference_chip(), Rng(104));
  core::Scheduler scheduler(core::SchedulerConfig{});
  const core::ExecutionStats stats =
      scheduler.run(chip, assay::serial_dilution());
  ASSERT_TRUE(stats.success);
  EXPECT_TRUE(chip.droplets().empty());
}

}  // namespace
}  // namespace meda
