// Golden tests tying the paper's worked examples together end to end.

#include <gtest/gtest.h>

#include "assay/benchmarks.hpp"
#include "assay/helper.hpp"
#include "assay/mo.hpp"
#include "core/synthesizer.hpp"
#include "model/frontier.hpp"
#include "model/guards.hpp"
#include "model/outcomes.hpp"

namespace meda {
namespace {

// ---------------------------------------------------------------------------
// Example 1 — droplet model: δ = (3, 2, 7, 5) with w=5, h=4, A=20, AR=5/4,
// and the induced actuation matrix U.
TEST(PaperExamples, Example1DropletModel) {
  const Rect delta{3, 2, 7, 5};
  EXPECT_EQ(delta.width(), 5);
  EXPECT_EQ(delta.height(), 4);
  EXPECT_EQ(delta.area(), 20);
  EXPECT_DOUBLE_EQ(delta.aspect_ratio(), 1.25);
  BoolMatrix u(12, 10);
  for (int y = 0; y < 10; ++y)
    for (int x = 0; x < 12; ++x) u(x, y) = delta.contains(x, y);
  int actuated = 0;
  for (unsigned char v : u.data()) actuated += v;
  EXPECT_EQ(actuated, 20);
}

// ---------------------------------------------------------------------------
// Example 2 — frontier sets of a_NE on δ = (3, 2, 7, 5).
TEST(PaperExamples, Example2FrontierSets) {
  const Rect delta{3, 2, 7, 5};
  EXPECT_EQ(frontier(delta, Action::kNE, Dir::E), (Rect{8, 3, 8, 6}));
  EXPECT_EQ(frontier(delta, Action::kNE, Dir::N), (Rect{4, 6, 8, 6}));
  EXPECT_EQ(frontier_size(delta, Action::kNE, Dir::E), 4);
  EXPECT_EQ(frontier_size(delta, Action::kNE, Dir::N), 5);
}

// ---------------------------------------------------------------------------
// Example 3 — transition probability p(NE | δ, a_NE) = 0.76 · 0.7 = 0.532.
TEST(PaperExamples, Example3TransitionProbability) {
  const Rect delta{3, 2, 7, 5};
  DoubleMatrix force(12, 10, 1.0);
  force(8, 3) = 0.6;
  force(8, 4) = 0.5;
  force(8, 5) = 0.8;
  force(8, 6) = 0.9;
  force(4, 6) = 0.9;
  force(5, 6) = 0.4;
  force(6, 6) = 0.9;
  force(7, 6) = 0.7;
  const double s_n =
      mean_frontier_force(force, frontier(delta, Action::kNE, Dir::N));
  const double s_e =
      mean_frontier_force(force, frontier(delta, Action::kNE, Dir::E));
  EXPECT_NEAR(s_n, 0.76, 1e-12);
  EXPECT_NEAR(s_e, 0.70, 1e-12);
  EXPECT_NEAR(s_n * s_e, 0.532, 1e-12);
}

// ---------------------------------------------------------------------------
// Guard example of Section V-B: r = 3/2, δ = (3, 2, 7, 5) → g_↑ holds,
// g_↓ does not.
TEST(PaperExamples, SectionVBGuardExample) {
  const Rect delta{3, 2, 7, 5};
  ActionRules rules;
  rules.max_aspect_ratio = 1.5;
  EXPECT_TRUE(guard_satisfied(Action::kHeightenNE, delta, rules));
  EXPECT_FALSE(guard_satisfied(Action::kWidenNE, delta, rules));
}

// ---------------------------------------------------------------------------
// Examples 4 & 5 / Table IV — the full MO→RJ decomposition of the Fig. 12
// sequence graph on a 60×30 chip (the paper's 1-based coordinates).
TEST(PaperExamples, Table4FullDecomposition) {
  assay::AssayBuilder b("fig12");
  const int m1 = b.dispense(17.5, 2.5, 16);
  const int m2 = b.dispense(17.5, 28.5, 16);
  const int m3 = b.mix({m1}, {m2}, 10.5, 15.5);
  const int m4 = b.mag({m3}, 40.5, 15.5);
  b.output({m4}, 55.5, 15.5);
  const assay::MoList list = std::move(b).build();
  const Rect chip{1, 1, 60, 30};
  const auto outputs = assay::compute_outputs(list);

  // M1 / M2 — dispense rows.
  {
    const auto rjs = assay::make_routing_jobs(list, 0, outputs, chip);
    ASSERT_EQ(rjs.size(), 1u);
    EXPECT_EQ(rjs[0].goal, (Rect{16, 1, 19, 4}));
    EXPECT_EQ(rjs[0].hazard, (Rect{13, 1, 22, 7}));
  }
  {
    const auto rjs = assay::make_routing_jobs(list, 1, outputs, chip);
    EXPECT_EQ(rjs[0].goal, (Rect{16, 27, 19, 30}));
    EXPECT_EQ(rjs[0].hazard, (Rect{13, 24, 22, 30}));
  }
  // M3 — mix rows RJ3.0 / RJ3.1.
  {
    const auto rjs = assay::make_routing_jobs(list, 2, outputs, chip);
    ASSERT_EQ(rjs.size(), 2u);
    EXPECT_EQ(rjs[0].start, (Rect{16, 1, 19, 4}));
    EXPECT_EQ(rjs[0].goal, (Rect{9, 14, 12, 17}));
    EXPECT_EQ(rjs[0].hazard, (Rect{6, 1, 22, 20}));
    EXPECT_EQ(rjs[1].start, (Rect{16, 27, 19, 30}));
    EXPECT_EQ(rjs[1].goal, (Rect{9, 14, 12, 17}));
    EXPECT_EQ(rjs[1].hazard, (Rect{6, 11, 22, 30}));
  }
  // M4 — mag row: the 32-cell mix product becomes a 6×5 pattern (6.3%
  // error) routed from (8, 14, 13, 18) to (38, 14, 43, 18) within
  // (5, 11, 46, 21).
  {
    const assay::DropletSize size = assay::size_for_area(32);
    EXPECT_EQ(size.w, 6);
    EXPECT_EQ(size.h, 5);
    EXPECT_NEAR(size.error, 0.0625, 1e-12);
    const auto rjs = assay::make_routing_jobs(list, 3, outputs, chip);
    ASSERT_EQ(rjs.size(), 1u);
    EXPECT_EQ(rjs[0].start, (Rect{8, 14, 13, 18}));
    EXPECT_EQ(rjs[0].goal, (Rect{38, 14, 43, 18}));
    EXPECT_EQ(rjs[0].hazard, (Rect{5, 11, 46, 21}));
  }
}

// ---------------------------------------------------------------------------
// Table V — the routing-job MDPs match the paper's state counts up to its
// two extra absorbing bookkeeping states (see EXPERIMENTS.md).
TEST(PaperExamples, TableVStateCountsMinusTwo) {
  const struct {
    int area, droplet, paper_states;
  } rows[] = {{10, 3, 67}, {10, 4, 52}, {10, 5, 39}, {10, 6, 28},
              {20, 3, 327}, {20, 4, 292}, {20, 5, 259}, {20, 6, 228},
              {30, 3, 787}, {30, 4, 732}, {30, 5, 679}, {30, 6, 628}};
  core::SynthesisConfig config;
  config.rules.enable_morphing = false;
  for (const auto& row : rows) {
    const Rect chip{0, 0, row.area - 1, row.area - 1};
    assay::RoutingJob rj;
    rj.start = Rect::from_size(0, 0, row.droplet, row.droplet);
    rj.goal = Rect::from_size(row.area - row.droplet,
                              row.area - row.droplet, row.droplet,
                              row.droplet);
    rj.hazard = chip;
    const core::Synthesizer synth(chip, config);
    const core::SynthesisResult r = synth.synthesize(
        rj, IntMatrix(row.area, row.area, 2), 2);
    EXPECT_EQ(r.stats.states, static_cast<std::size_t>(row.paper_states - 2))
        << row.area << "/" << row.droplet;
    EXPECT_TRUE(r.feasible);
  }
}

}  // namespace
}  // namespace meda
