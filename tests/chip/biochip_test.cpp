#include "chip/biochip.hpp"

#include <gtest/gtest.h>

#include "chip/microelectrode.hpp"
#include "util/check.hpp"

namespace meda {
namespace {

BiochipConfig small_config() {
  BiochipConfig config;
  config.width = 8;
  config.height = 6;
  config.health_bits = 2;
  return config;
}

TEST(Microelectrode, ActuationCountingAndDegradation) {
  Microelectrode mc(DegradationParams{0.5, 100.0});
  EXPECT_EQ(mc.actuations(), 0u);
  EXPECT_DOUBLE_EQ(mc.degradation(), 1.0);
  mc.actuate();
  mc.actuate_n(99);
  EXPECT_EQ(mc.actuations(), 100u);
  EXPECT_NEAR(mc.degradation(), 0.5, 1e-12);
  EXPECT_NEAR(mc.relative_force(), 0.25, 1e-12);
  EXPECT_EQ(mc.health(2), 2);
}

TEST(Microelectrode, DegradationCacheInvalidatesOnActuation) {
  Microelectrode mc(DegradationParams{0.5, 10.0});
  const double d0 = mc.degradation();
  mc.actuate_n(10);
  EXPECT_LT(mc.degradation(), d0);
  const double d1 = mc.degradation();
  EXPECT_DOUBLE_EQ(mc.degradation(), d1);  // cached value is stable
}

TEST(Microelectrode, InjectedFaultTripsAtThreshold) {
  Microelectrode mc(DegradationParams{0.9, 500.0});
  mc.inject_fault(5);
  EXPECT_TRUE(mc.fault_injected());
  EXPECT_FALSE(mc.failed());
  mc.actuate_n(4);
  EXPECT_FALSE(mc.failed());
  EXPECT_GT(mc.degradation(), 0.9);
  mc.actuate();
  EXPECT_TRUE(mc.failed());
  EXPECT_DOUBLE_EQ(mc.degradation(), 0.0);
  EXPECT_EQ(mc.health(2), 0);
}

TEST(Microelectrode, HealthyMcNeverFails) {
  Microelectrode mc(DegradationParams{0.9, 500.0});
  EXPECT_FALSE(mc.fault_injected());
  mc.actuate_n(1000000);
  EXPECT_FALSE(mc.failed());
}

TEST(DegradationRangeTest, SamplesWithinBounds) {
  Rng rng(3);
  const DegradationRange range{0.5, 0.9, 200.0, 500.0};
  for (int i = 0; i < 200; ++i) {
    const DegradationParams p = range.sample(rng);
    EXPECT_GE(p.tau, 0.5);
    EXPECT_LT(p.tau, 0.9);
    EXPECT_GE(p.c, 200.0);
    EXPECT_LT(p.c, 500.0);
  }
}

TEST(DegradationRangeTest, RejectsInvalidRanges) {
  Rng rng(3);
  EXPECT_THROW((DegradationRange{0.9, 0.5, 1, 2}.sample(rng)),
               PreconditionError);
  EXPECT_THROW((DegradationRange{0.5, 0.9, 0.0, 2}.sample(rng)),
               PreconditionError);
}

TEST(Biochip, GeometryAndBounds) {
  Rng rng(1);
  Biochip chip(small_config(), rng);
  EXPECT_EQ(chip.width(), 8);
  EXPECT_EQ(chip.height(), 6);
  EXPECT_EQ(chip.bounds(), (Rect{0, 0, 7, 5}));
  EXPECT_TRUE(chip.in_bounds(7, 5));
  EXPECT_FALSE(chip.in_bounds(8, 0));
  EXPECT_TRUE(chip.in_bounds(Rect{0, 0, 7, 5}));
  EXPECT_FALSE(chip.in_bounds(Rect{0, 0, 8, 5}));
  EXPECT_THROW(chip.mc(8, 0), PreconditionError);
}

TEST(Biochip, FreshChipSensesTopHealthEverywhere) {
  Rng rng(1);
  Biochip chip(small_config(), rng);
  const IntMatrix h = chip.health_matrix();
  for (int y = 0; y < 6; ++y)
    for (int x = 0; x < 8; ++x) EXPECT_EQ(h(x, y), 3);
  const DoubleMatrix d = chip.degradation_matrix();
  for (int y = 0; y < 6; ++y)
    for (int x = 0; x < 8; ++x) EXPECT_DOUBLE_EQ(d(x, y), 1.0);
}

TEST(Biochip, PatternActuationIncrementsOnlySetCells) {
  Rng rng(1);
  Biochip chip(small_config(), rng);
  BoolMatrix pattern(8, 6);
  pattern(2, 3) = 1;
  pattern(5, 1) = 1;
  chip.actuate(pattern);
  chip.actuate(pattern);
  EXPECT_EQ(chip.mc(2, 3).actuations(), 2u);
  EXPECT_EQ(chip.mc(5, 1).actuations(), 2u);
  EXPECT_EQ(chip.mc(0, 0).actuations(), 0u);
  EXPECT_EQ(chip.total_actuations(), 4u);
  EXPECT_EQ(chip.cycles(), 2u);
}

TEST(Biochip, RectActuationClipsToChip) {
  Rng rng(1);
  Biochip chip(small_config(), rng);
  chip.actuate(Rect{6, 4, 10, 9});  // extends past the chip
  EXPECT_EQ(chip.mc(6, 4).actuations(), 1u);
  EXPECT_EQ(chip.mc(7, 5).actuations(), 1u);
  EXPECT_EQ(chip.total_actuations(), 4u);  // 2×2 clipped area
}

TEST(Biochip, PatternDimensionMismatchThrows) {
  Rng rng(1);
  Biochip chip(small_config(), rng);
  EXPECT_THROW(chip.actuate(BoolMatrix(4, 4)), PreconditionError);
}

TEST(Biochip, AreaHealthMatrixIsClippedView) {
  Rng rng(1);
  Biochip chip(small_config(), rng);
  chip.mc(3, 2).actuate_n(1000000);  // wear one cell to the floor
  const IntMatrix h = chip.health_matrix(Rect{2, 1, 4, 3});
  EXPECT_EQ(h.width(), 3);
  EXPECT_EQ(h.height(), 3);
  EXPECT_EQ(h(1, 1), chip.mc(3, 2).health(2));  // relative coordinates
  EXPECT_EQ(h(0, 0), 3);
}

TEST(Biochip, ActuationMatrixMatchesPerCellCounts) {
  Rng rng(1);
  Biochip chip(small_config(), rng);
  chip.actuate(Rect{0, 0, 1, 1});
  chip.actuate(Rect{0, 0, 0, 0});
  const Matrix<std::uint64_t> n = chip.actuation_matrix();
  EXPECT_EQ(n(0, 0), 2u);
  EXPECT_EQ(n(1, 0), 1u);
  EXPECT_EQ(n(1, 1), 1u);
  EXPECT_EQ(n(2, 2), 0u);
}

TEST(Biochip, HealthDropsWithWear) {
  Rng rng(7);
  BiochipConfig config = small_config();
  config.degradation = DegradationRange{0.5, 0.5, 100.0, 100.0};
  Biochip chip(config, rng);
  chip.mc(1, 1).actuate_n(100);  // D = 0.5 → H = 2
  chip.mc(2, 2).actuate_n(300);  // D = 0.125 → H = 0
  const IntMatrix h = chip.health_matrix();
  EXPECT_EQ(h(1, 1), 2);
  EXPECT_EQ(h(2, 2), 0);
  EXPECT_EQ(h(0, 0), 3);
}

TEST(Biochip, RejectsInvalidConfig) {
  Rng rng(1);
  BiochipConfig config;
  config.width = 0;
  EXPECT_THROW(Biochip(config, rng), PreconditionError);
  config = small_config();
  config.health_bits = 0;
  EXPECT_THROW(Biochip(config, rng), PreconditionError);
}

}  // namespace
}  // namespace meda
