#include "chip/fault_injection.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/check.hpp"

namespace meda {
namespace {

Biochip make_chip(Rng& rng, int w = 20, int h = 10) {
  BiochipConfig config;
  config.width = w;
  config.height = h;
  return Biochip(config, rng);
}

TEST(FaultInjection, NoneModeInjectsNothing) {
  Rng rng(1);
  Biochip chip = make_chip(rng);
  FaultInjectionConfig config;
  config.mode = FaultMode::kNone;
  EXPECT_TRUE(inject_faults(chip, config, rng).empty());
}

TEST(FaultInjection, UniformHitsTargetCount) {
  Rng rng(2);
  Biochip chip = make_chip(rng);  // 200 cells
  FaultInjectionConfig config;
  config.mode = FaultMode::kUniform;
  config.faulty_fraction = 0.10;
  const auto injected = inject_faults(chip, config, rng);
  EXPECT_EQ(injected.size(), 20u);
  std::set<Vec2i> unique(injected.begin(), injected.end());
  EXPECT_EQ(unique.size(), injected.size());  // no duplicates
  for (const Vec2i& p : injected) {
    EXPECT_TRUE(chip.in_bounds(p.x, p.y));
    EXPECT_TRUE(chip.mc(p.x, p.y).fault_injected());
  }
}

TEST(FaultInjection, OnlyInjectedCellsAreFaulty) {
  Rng rng(3);
  Biochip chip = make_chip(rng);
  FaultInjectionConfig config;
  config.mode = FaultMode::kUniform;
  config.faulty_fraction = 0.05;
  const auto injected = inject_faults(chip, config, rng);
  const std::set<Vec2i> marked(injected.begin(), injected.end());
  int faulty = 0;
  for (int y = 0; y < chip.height(); ++y) {
    for (int x = 0; x < chip.width(); ++x) {
      if (chip.mc(x, y).fault_injected()) {
        ++faulty;
        EXPECT_TRUE(marked.contains(Vec2i{x, y}));
      }
    }
  }
  EXPECT_EQ(faulty, static_cast<int>(injected.size()));
}

TEST(FaultInjection, ClusteredFormsSquareClusters) {
  Rng rng(4);
  Biochip chip = make_chip(rng, 40, 30);
  FaultInjectionConfig config;
  config.mode = FaultMode::kClustered;
  config.faulty_fraction = 0.05;
  config.cluster_size = 2;
  const auto injected = inject_faults(chip, config, rng);
  EXPECT_GE(injected.size(), 60u);  // ≈ 5% of 1200 cells
  // Every injected cell has at least one injected neighbour within its 2×2
  // cluster (clusters may merge but never leave isolated cells).
  const std::set<Vec2i> marked(injected.begin(), injected.end());
  for (const Vec2i& p : injected) {
    bool has_neighbor = false;
    for (int dy = -1; dy <= 1 && !has_neighbor; ++dy)
      for (int dx = -1; dx <= 1 && !has_neighbor; ++dx)
        if ((dx != 0 || dy != 0) && marked.contains(Vec2i{p.x + dx, p.y + dy}))
          has_neighbor = true;
    EXPECT_TRUE(has_neighbor) << "isolated faulty cell at (" << p.x << ", "
                              << p.y << ")";
  }
}

TEST(FaultInjection, ThresholdsWithinConfiguredRange) {
  Rng rng(5);
  Biochip chip = make_chip(rng);
  FaultInjectionConfig config;
  config.mode = FaultMode::kUniform;
  config.faulty_fraction = 0.2;
  config.fail_at_lo = 10;
  config.fail_at_hi = 20;
  const auto injected = inject_faults(chip, config, rng);
  for (const Vec2i& p : injected) {
    Microelectrode& mc = chip.mc(p.x, p.y);
    mc.actuate_n(9);
    EXPECT_FALSE(mc.failed());
    mc.actuate_n(11);  // now at 20 >= any threshold in [10, 20]
    EXPECT_TRUE(mc.failed());
  }
}

TEST(FaultInjection, InjectionIsDeterministicPerSeed) {
  Rng rng_a(77), rng_b(77);
  Biochip chip_a = make_chip(rng_a);
  Biochip chip_b = make_chip(rng_b);
  FaultInjectionConfig config;
  config.mode = FaultMode::kClustered;
  config.faulty_fraction = 0.08;
  EXPECT_EQ(inject_faults(chip_a, config, rng_a),
            inject_faults(chip_b, config, rng_b));
}

TEST(FaultInjection, ZeroFractionInjectsNothing) {
  Rng rng(6);
  Biochip chip = make_chip(rng);
  FaultInjectionConfig config;
  config.mode = FaultMode::kUniform;
  config.faulty_fraction = 0.0;
  EXPECT_TRUE(inject_faults(chip, config, rng).empty());
}

TEST(FaultInjection, ClusteredHitsTargetCountExactly) {
  // Regression: the clustered placer used to overshoot (a full cluster was
  // stamped even when fewer cells were needed) or undershoot (clusters
  // landing on already-chosen cells were simply wasted). It must now pin
  // the count to round(fraction · cells), like the uniform mode.
  Rng rng(7);
  for (const double fraction : {0.02, 0.05, 0.11}) {
    for (const int cluster_size : {2, 3}) {
      Biochip chip = make_chip(rng, 40, 30);  // 1200 cells
      FaultInjectionConfig config;
      config.mode = FaultMode::kClustered;
      config.faulty_fraction = fraction;
      config.cluster_size = cluster_size;
      const auto injected = inject_faults(chip, config, rng);
      const auto target =
          static_cast<std::size_t>(std::llround(fraction * 1200));
      EXPECT_EQ(injected.size(), target)
          << "fraction " << fraction << ", cluster " << cluster_size;
      std::set<Vec2i> unique(injected.begin(), injected.end());
      EXPECT_EQ(unique.size(), injected.size());
    }
  }
}

TEST(FaultInjection, ClusteredReachesHighFractionsOnSmallChips) {
  // Dense regime: on a small chip most cluster placements collide with
  // already-chosen cells, so the placer must grow existing clusters at
  // their frontier instead of spinning or giving up short.
  Rng rng(8);
  Biochip chip = make_chip(rng, 8, 6);  // 48 cells
  FaultInjectionConfig config;
  config.mode = FaultMode::kClustered;
  config.faulty_fraction = 0.75;
  const auto injected = inject_faults(chip, config, rng);
  EXPECT_EQ(injected.size(), 36u);
  for (const Vec2i& p : injected) EXPECT_TRUE(chip.in_bounds(p.x, p.y));
}

TEST(FaultInjection, ClusteredStaysInBoundsNearEdges) {
  // Clusters anchored near the east/south edges must clamp, not spill.
  Rng rng(9);
  Biochip chip = make_chip(rng, 5, 5);
  FaultInjectionConfig config;
  config.mode = FaultMode::kClustered;
  config.faulty_fraction = 0.5;
  config.cluster_size = 3;
  const auto injected = inject_faults(chip, config, rng);
  EXPECT_EQ(injected.size(), 13u);  // round(0.5 · 25), half rounds up
  for (const Vec2i& p : injected) EXPECT_TRUE(chip.in_bounds(p.x, p.y));
}

TEST(FaultInjection, RejectsBadFraction) {
  Rng rng(6);
  Biochip chip = make_chip(rng);
  FaultInjectionConfig config;
  config.faulty_fraction = 1.5;
  config.mode = FaultMode::kUniform;
  EXPECT_THROW(inject_faults(chip, config, rng), PreconditionError);
}

}  // namespace
}  // namespace meda
