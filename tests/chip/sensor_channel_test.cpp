#include "chip/sensor_channel.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace meda {
namespace {

IntMatrix random_health(int w, int h, int bits, Rng& rng) {
  IntMatrix health(w, h);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      health(x, y) = rng.uniform_int(0, (1 << bits) - 1);
  return health;
}

TEST(SensorChannel, DefaultConstructedIsTransparent) {
  SensorChannel channel;
  Rng rng(1);
  const IntMatrix truth = random_health(6, 4, 2, rng);
  EXPECT_EQ(channel.read(truth, rng), truth);
  EXPECT_EQ(channel.bits_flipped(), 0u);
  EXPECT_EQ(channel.frames_dropped(), 0u);
}

TEST(SensorChannel, NoiselessChannelIsLossless) {
  // A constructed channel with zero noise still serializes through the scan
  // chain and parses back — the frame must survive the round trip.
  Rng rng(2);
  SensorChannel channel(SensorNoiseConfig{}, 8, 5, 3, rng.fork(1));
  for (int i = 0; i < 5; ++i) {
    const IntMatrix truth = random_health(8, 5, 3, rng);
    EXPECT_EQ(channel.read(truth, rng), truth);
  }
  EXPECT_EQ(channel.frames_read(), 5u);
  EXPECT_EQ(channel.bits_flipped(), 0u);
  EXPECT_EQ(channel.stuck_bits(), 0);
}

TEST(SensorChannel, RejectsBadProbabilities) {
  Rng rng(3);
  SensorNoiseConfig config;
  config.bit_flip_p = 1.5;
  EXPECT_THROW(SensorChannel(config, 4, 4, 2, rng.fork(1)),
               PreconditionError);
  config = SensorNoiseConfig{};
  config.frame_drop_p = 1.0;  // would starve the reader forever
  EXPECT_THROW(SensorChannel(config, 4, 4, 2, rng.fork(2)),
               PreconditionError);
  config = SensorNoiseConfig{};
  config.stuck_fraction = -0.1;
  EXPECT_THROW(SensorChannel(config, 4, 4, 2, rng.fork(3)),
               PreconditionError);
}

TEST(SensorChannel, RejectsMismatchedFrame) {
  Rng rng(4);
  SensorChannel channel(SensorNoiseConfig{}, 4, 3, 2, rng.fork(1));
  EXPECT_THROW(channel.read(IntMatrix(5, 3, 0), rng), PreconditionError);
}

TEST(SensorChannel, BitFlipsCorruptTheFrame) {
  Rng rng(5);
  SensorNoiseConfig config;
  config.bit_flip_p = 0.5;
  SensorChannel channel(config, 20, 10, 2, rng.fork(1));
  const IntMatrix truth(20, 10, 0);
  const IntMatrix seen = channel.read(truth, rng);
  EXPECT_NE(seen, truth);  // 400 bits at p = 0.5: all-clean is impossible
  EXPECT_GT(channel.bits_flipped(), 0u);
}

TEST(SensorChannel, StuckBitsArePersistentAcrossReads) {
  Rng rng(6);
  SensorNoiseConfig config;
  config.stuck_fraction = 0.25;
  config.stuck_at_one_share = 1.0;  // all stuck-at-1
  SensorChannel channel(config, 10, 10, 3, rng.fork(1));
  EXPECT_EQ(channel.stuck_bits(), 75);  // 25% of 10*10*3 positions
  const IntMatrix truth(10, 10, 0);
  const IntMatrix r1 = channel.read(truth, rng);
  const IntMatrix r2 = channel.read(truth, rng);
  EXPECT_EQ(r1, r2);     // the defect pattern is frozen at construction
  EXPECT_NE(r1, truth);  // stuck-at-1 bits must surface over all-zero truth
}

TEST(SensorChannel, StuckAtZeroOnlyPullsReadingsDown) {
  Rng rng(7);
  SensorNoiseConfig config;
  config.stuck_fraction = 0.3;
  config.stuck_at_one_share = 0.0;  // all stuck-at-0
  const int bits = 2;
  SensorChannel channel(config, 12, 8, bits, rng.fork(1));
  const IntMatrix truth(12, 8, (1 << bits) - 1);
  const IntMatrix seen = channel.read(truth, rng);
  int lowered = 0;
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 12; ++x) {
      EXPECT_LE(seen(x, y), truth(x, y));
      if (seen(x, y) < truth(x, y)) ++lowered;
    }
  }
  EXPECT_GT(lowered, 0);
}

TEST(SensorChannel, FrameDropServesTheStaleFrame) {
  Rng rng(8);
  SensorNoiseConfig config;
  config.frame_drop_p = 0.9;
  SensorChannel channel(config, 6, 4, 2, rng.fork(1));
  const IntMatrix first(6, 4, 3);
  // The very first read is never dropped: there is nothing stale to serve.
  EXPECT_EQ(channel.read(first, rng), first);
  EXPECT_EQ(channel.frames_dropped(), 0u);
  EXPECT_EQ(channel.staleness(), 0u);

  const IntMatrix changed(6, 4, 1);
  IntMatrix prev = first;
  std::uint64_t dropped = 0;
  for (int i = 0; i < 30; ++i) {
    const IntMatrix seen = channel.read(changed, rng);
    if (channel.frames_dropped() > dropped) {
      dropped = channel.frames_dropped();
      EXPECT_EQ(seen, prev);  // a dropped read re-serves the stale frame
    } else {
      EXPECT_EQ(seen, changed);
    }
    prev = seen;
  }
  EXPECT_GT(dropped, 0u);  // P(no drop in 30 reads at 0.9) ≈ 1e-30
}

TEST(SensorChannel, DeterministicPerSeed) {
  SensorNoiseConfig config;
  config.bit_flip_p = 0.05;
  config.stuck_fraction = 0.1;
  config.frame_drop_p = 0.2;
  auto sequence = [&config]() {
    Rng rng(99);
    SensorChannel channel(config, 9, 7, 2, rng.fork(1));
    std::vector<IntMatrix> frames;
    Rng truth_rng(5);
    for (int i = 0; i < 10; ++i)
      frames.push_back(channel.read(random_health(9, 7, 2, truth_rng), rng));
    return frames;
  };
  EXPECT_EQ(sequence(), sequence());
}

}  // namespace
}  // namespace meda
