#include "chip/degradation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"

namespace meda {
namespace {

TEST(DegradationParams, FreshElectrodeIsFullHealth) {
  const DegradationParams p{0.556, 822.7};
  EXPECT_DOUBLE_EQ(p.degradation(0), 1.0);
  EXPECT_DOUBLE_EQ(p.relative_force(0), 1.0);
}

TEST(DegradationParams, MatchesClosedForm) {
  const DegradationParams p{0.7, 350.0};
  for (const std::uint64_t n : {1ull, 10ull, 350ull, 1000ull}) {
    const double expected = std::pow(0.7, static_cast<double>(n) / 350.0);
    EXPECT_NEAR(p.degradation(n), expected, 1e-12);
    EXPECT_NEAR(p.relative_force(n), expected * expected, 1e-12);
  }
}

TEST(DegradationParams, AtNEqualsCDegradationEqualsTau) {
  const DegradationParams p{0.556, 822.0};
  EXPECT_NEAR(p.degradation(822), 0.556, 1e-12);
  // F̄(c) = τ² per eq. (2).
  EXPECT_NEAR(p.relative_force(822), 0.556 * 0.556, 1e-12);
}

TEST(DegradationParams, MonotoneDecreasing) {
  const DegradationParams p{0.5, 200.0};
  double prev = 1.1;
  for (std::uint64_t n = 0; n <= 2000; n += 100) {
    const double d = p.degradation(n);
    EXPECT_LT(d, prev);
    prev = d;
  }
}

TEST(DegradationParams, TauZeroDiesImmediately) {
  const DegradationParams p{0.0, 100.0};
  EXPECT_DOUBLE_EQ(p.degradation(0), 1.0);
  EXPECT_DOUBLE_EQ(p.degradation(1), 0.0);
}

TEST(DegradationParams, TauOneNeverDegrades) {
  const DegradationParams p{1.0, 100.0};
  EXPECT_DOUBLE_EQ(p.degradation(1000000), 1.0);
}

TEST(DegradationParams, InvalidParametersThrow) {
  EXPECT_THROW((DegradationParams{1.5, 100.0}.degradation(1)),
               PreconditionError);
  EXPECT_THROW((DegradationParams{-0.1, 100.0}.degradation(1)),
               PreconditionError);
  EXPECT_THROW((DegradationParams{0.5, 0.0}.degradation(1)),
               PreconditionError);
}

TEST(QuantizeHealth, TwoBitBuckets) {
  // H = min(2^b − 1, ⌊2^b·D⌋) with b = 2.
  EXPECT_EQ(quantize_health(1.0, 2), 3);  // clamped top code
  EXPECT_EQ(quantize_health(0.99, 2), 3);
  EXPECT_EQ(quantize_health(0.75, 2), 3);
  EXPECT_EQ(quantize_health(0.7499, 2), 2);
  EXPECT_EQ(quantize_health(0.5, 2), 2);
  EXPECT_EQ(quantize_health(0.4999, 2), 1);
  EXPECT_EQ(quantize_health(0.25, 2), 1);
  EXPECT_EQ(quantize_health(0.2499, 2), 0);
  EXPECT_EQ(quantize_health(0.0, 2), 0);
}

TEST(QuantizeHealth, GeneralBitWidths) {
  EXPECT_EQ(quantize_health(1.0, 1), 1);
  EXPECT_EQ(quantize_health(0.49, 1), 0);
  EXPECT_EQ(quantize_health(1.0, 4), 15);
  EXPECT_EQ(quantize_health(0.5, 4), 8);
}

TEST(QuantizeHealth, MonotoneInDegradation) {
  for (int b : {1, 2, 3, 4}) {
    int prev = -1;
    for (double d = 0.0; d <= 1.0; d += 0.01) {
      const int h = quantize_health(d, b);
      EXPECT_GE(h, prev);
      prev = h;
    }
  }
}

TEST(QuantizeHealth, RejectsBadInput) {
  EXPECT_THROW(quantize_health(1.1, 2), PreconditionError);
  EXPECT_THROW(quantize_health(-0.1, 2), PreconditionError);
  EXPECT_THROW(quantize_health(0.5, 0), PreconditionError);
}

TEST(EstimateDegradation, ScaledMapsEndpointsExactly) {
  // The paper's "substitute H for D" convention.
  EXPECT_DOUBLE_EQ(estimate_degradation(3, 2, HealthEstimator::kScaled), 1.0);
  EXPECT_DOUBLE_EQ(estimate_degradation(0, 2, HealthEstimator::kScaled), 0.0);
  EXPECT_NEAR(estimate_degradation(2, 2, HealthEstimator::kScaled), 2.0 / 3.0,
              1e-12);
  EXPECT_NEAR(estimate_degradation(1, 2, HealthEstimator::kScaled), 1.0 / 3.0,
              1e-12);
}

TEST(EstimateDegradation, MidpointLowerUpper) {
  EXPECT_DOUBLE_EQ(estimate_degradation(2, 2, HealthEstimator::kMidpoint),
                   0.625);
  EXPECT_DOUBLE_EQ(estimate_degradation(2, 2, HealthEstimator::kLower), 0.5);
  EXPECT_DOUBLE_EQ(estimate_degradation(2, 2, HealthEstimator::kUpper), 0.75);
  // Upper estimate of the top bucket is clamped to 1.
  EXPECT_DOUBLE_EQ(estimate_degradation(3, 2, HealthEstimator::kUpper), 1.0);
}

TEST(EstimateDegradation, MidpointRoundTripsThroughQuantization) {
  for (int h = 0; h <= 3; ++h) {
    const double d = estimate_degradation(h, 2, HealthEstimator::kMidpoint);
    EXPECT_EQ(quantize_health(d, 2), h);
  }
}

TEST(EstimateDegradation, RejectsBadCodes) {
  EXPECT_THROW(estimate_degradation(4, 2, HealthEstimator::kScaled),
               PreconditionError);
  EXPECT_THROW(estimate_degradation(-1, 2, HealthEstimator::kScaled),
               PreconditionError);
}

}  // namespace
}  // namespace meda
