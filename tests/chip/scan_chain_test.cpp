#include "chip/scan_chain.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace meda {
namespace {

TEST(ScanChain, HealthRoundTrip) {
  Rng rng(1);
  IntMatrix health(7, 5);
  for (int y = 0; y < 5; ++y)
    for (int x = 0; x < 7; ++x) health(x, y) = rng.uniform_int(0, 3);
  const std::vector<bool> stream = scan_out_health(health, 2);
  EXPECT_EQ(stream.size(), 7u * 5u * 2u);
  EXPECT_EQ(scan_in_health(stream, 7, 5, 2), health);
}

TEST(ScanChain, HealthRoundTripGeneralBitWidths) {
  Rng rng(2);
  for (const int bits : {1, 3, 4, 8}) {
    IntMatrix health(4, 3);
    for (int y = 0; y < 3; ++y)
      for (int x = 0; x < 4; ++x)
        health(x, y) = rng.uniform_int(0, (1 << bits) - 1);
    EXPECT_EQ(scan_in_health(scan_out_health(health, bits), 4, 3, bits),
              health)
        << bits << " bits";
  }
}

TEST(ScanChain, BitOrderIsRowMajorLsbFirst) {
  IntMatrix health(2, 1);
  health(0, 0) = 0b01;  // original DFF (MSB) = 0, added DFF (LSB) = 1
  health(1, 0) = 0b10;
  const std::vector<bool> stream = scan_out_health(health, 2);
  ASSERT_EQ(stream.size(), 4u);
  EXPECT_TRUE(stream[0]);   // MC(0,0) bit 0
  EXPECT_FALSE(stream[1]);  // MC(0,0) bit 1
  EXPECT_FALSE(stream[2]);  // MC(1,0) bit 0
  EXPECT_TRUE(stream[3]);   // MC(1,0) bit 1
}

TEST(ScanChain, ActuationRoundTrip) {
  Rng rng(3);
  BoolMatrix pattern(9, 6);
  for (int y = 0; y < 6; ++y)
    for (int x = 0; x < 9; ++x) pattern(x, y) = rng.bernoulli(0.4);
  const std::vector<bool> stream = scan_out_actuation(pattern);
  EXPECT_EQ(stream.size(), 54u);
  EXPECT_EQ(scan_in_actuation(stream, 9, 6), pattern);
}

TEST(ScanChain, RejectsCodesThatDoNotFit) {
  IntMatrix health(2, 2, 5);
  EXPECT_THROW(scan_out_health(health, 2), PreconditionError);
  EXPECT_NO_THROW(scan_out_health(health, 3));
}

TEST(ScanChain, RejectsLengthMismatch) {
  EXPECT_THROW(scan_in_health(std::vector<bool>(7), 2, 2, 2),
               PreconditionError);
  EXPECT_THROW(scan_in_actuation(std::vector<bool>(5), 2, 2),
               PreconditionError);
}

}  // namespace
}  // namespace meda
