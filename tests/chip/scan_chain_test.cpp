#include "chip/scan_chain.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace meda {
namespace {

TEST(ScanChain, HealthRoundTrip) {
  Rng rng(1);
  IntMatrix health(7, 5);
  for (int y = 0; y < 5; ++y)
    for (int x = 0; x < 7; ++x) health(x, y) = rng.uniform_int(0, 3);
  const std::vector<bool> stream = scan_out_health(health, 2);
  EXPECT_EQ(stream.size(), 7u * 5u * 2u);
  EXPECT_EQ(scan_in_health(stream, 7, 5, 2), health);
}

TEST(ScanChain, HealthRoundTripGeneralBitWidths) {
  Rng rng(2);
  for (const int bits : {1, 3, 4, 8}) {
    IntMatrix health(4, 3);
    for (int y = 0; y < 3; ++y)
      for (int x = 0; x < 4; ++x)
        health(x, y) = rng.uniform_int(0, (1 << bits) - 1);
    EXPECT_EQ(scan_in_health(scan_out_health(health, bits), 4, 3, bits),
              health)
        << bits << " bits";
  }
}

TEST(ScanChain, BitOrderIsRowMajorLsbFirst) {
  IntMatrix health(2, 1);
  health(0, 0) = 0b01;  // original DFF (MSB) = 0, added DFF (LSB) = 1
  health(1, 0) = 0b10;
  const std::vector<bool> stream = scan_out_health(health, 2);
  ASSERT_EQ(stream.size(), 4u);
  EXPECT_TRUE(stream[0]);   // MC(0,0) bit 0
  EXPECT_FALSE(stream[1]);  // MC(0,0) bit 1
  EXPECT_FALSE(stream[2]);  // MC(1,0) bit 0
  EXPECT_TRUE(stream[3]);   // MC(1,0) bit 1
}

TEST(ScanChain, ActuationRoundTrip) {
  Rng rng(3);
  BoolMatrix pattern(9, 6);
  for (int y = 0; y < 6; ++y)
    for (int x = 0; x < 9; ++x) pattern(x, y) = rng.bernoulli(0.4);
  const std::vector<bool> stream = scan_out_actuation(pattern);
  EXPECT_EQ(stream.size(), 54u);
  EXPECT_EQ(scan_in_actuation(stream, 9, 6), pattern);
}

TEST(ScanChain, RejectsCodesThatDoNotFit) {
  IntMatrix health(2, 2, 5);
  EXPECT_THROW(scan_out_health(health, 2), PreconditionError);
  EXPECT_NO_THROW(scan_out_health(health, 3));
}

TEST(ScanChain, RejectsLengthMismatch) {
  EXPECT_THROW(scan_in_health(std::vector<bool>(7), 2, 2, 2),
               PreconditionError);
  EXPECT_THROW(scan_in_actuation(std::vector<bool>(5), 2, 2),
               PreconditionError);
}

TEST(ScanChain, FuzzedHealthRoundTripOverGeometriesAndBitDepths) {
  // Property: scan_in_health ∘ scan_out_health == identity for every
  // geometry and bit depth. 200 random (w, h, bits, codes) draws.
  Rng rng(0xF022);
  for (int iter = 0; iter < 200; ++iter) {
    const int w = rng.uniform_int(1, 24);
    const int h = rng.uniform_int(1, 24);
    const int bits = rng.uniform_int(1, 12);
    IntMatrix health(w, h);
    for (int y = 0; y < h; ++y)
      for (int x = 0; x < w; ++x)
        health(x, y) = rng.uniform_int(0, (1 << bits) - 1);
    const std::vector<bool> stream = scan_out_health(health, bits);
    ASSERT_EQ(stream.size(),
              static_cast<std::size_t>(w) * h * bits)
        << w << "x" << h << "@" << bits;
    ASSERT_EQ(scan_in_health(stream, w, h, bits), health)
        << w << "x" << h << "@" << bits;
  }
}

TEST(ScanChain, FuzzedActuationRoundTrip) {
  Rng rng(0xF023);
  for (int iter = 0; iter < 100; ++iter) {
    const int w = rng.uniform_int(1, 32);
    const int h = rng.uniform_int(1, 32);
    BoolMatrix pattern(w, h);
    for (int y = 0; y < h; ++y)
      for (int x = 0; x < w; ++x) pattern(x, y) = rng.bernoulli(0.5);
    ASSERT_EQ(scan_in_actuation(scan_out_actuation(pattern), w, h), pattern)
        << w << "x" << h;
  }
}

TEST(ScanChain, RejectsOffByOneStreamLengths) {
  // A truncated or over-long bitstream — the symptom of a desynchronized
  // scan clock — must be rejected, never silently re-framed.
  Rng rng(0xF024);
  for (int iter = 0; iter < 50; ++iter) {
    const int w = rng.uniform_int(1, 16);
    const int h = rng.uniform_int(1, 16);
    const int bits = rng.uniform_int(1, 8);
    const std::size_t exact =
        static_cast<std::size_t>(w) * h * bits;
    EXPECT_THROW(scan_in_health(std::vector<bool>(exact + 1), w, h, bits),
                 PreconditionError);
    if (exact > 0)
      EXPECT_THROW(scan_in_health(std::vector<bool>(exact - 1), w, h, bits),
                   PreconditionError);
    EXPECT_NO_THROW(scan_in_health(std::vector<bool>(exact), w, h, bits));
  }
}

}  // namespace
}  // namespace meda
