#include "core/scheduler.hpp"

#include <gtest/gtest.h>

#include "assay/benchmarks.hpp"
#include "core/library.hpp"
#include "obs/obs.hpp"
#include "sim/simulated_chip.hpp"
#include "util/check.hpp"

namespace meda::core {
namespace {

sim::SimulatedChipConfig chip_config() {
  sim::SimulatedChipConfig config;
  config.chip.width = assay::kChipWidth;
  config.chip.height = assay::kChipHeight;
  return config;
}

TEST(DispenseEntryRect, ProjectsToTheNearestEdge) {
  const Rect chip{0, 0, 59, 29};
  // Goal near the west edge.
  EXPECT_EQ(dispense_entry_rect(Rect{2, 14, 5, 17}, chip),
            (Rect{0, 14, 3, 17}));
  // Goal near the south edge.
  EXPECT_EQ(dispense_entry_rect(Rect{16, 1, 19, 4}, chip),
            (Rect{16, 0, 19, 3}));
  // Goal near the north edge.
  EXPECT_EQ(dispense_entry_rect(Rect{16, 26, 19, 29}, chip),
            (Rect{16, 26, 19, 29}));  // already touching
  // Goal near the east edge.
  EXPECT_EQ(dispense_entry_rect(Rect{55, 14, 58, 17}, chip),
            (Rect{56, 14, 59, 17}));
}

TEST(DispenseEntryRect, EntryTouchesAnEdge) {
  const Rect chip{0, 0, 59, 29};
  for (int cx = 3; cx < 57; cx += 7) {
    for (int cy = 3; cy < 27; cy += 5) {
      const Rect goal = Rect::from_size(cx, cy, 4, 4);
      if (!chip.contains(goal)) continue;
      const Rect entry = dispense_entry_rect(goal, chip);
      EXPECT_TRUE(chip.contains(entry));
      EXPECT_TRUE(entry.xa == 0 || entry.xb == 59 || entry.ya == 0 ||
                  entry.yb == 29);
      // The projection preserves the perpendicular coordinate.
      EXPECT_TRUE(entry.xa == goal.xa || entry.ya == goal.ya);
    }
  }
}

TEST(SplitRects, HalvesAreDisjointOnChipAndSized) {
  const Rect chip{0, 0, 59, 29};
  for (const Rect droplet :
       {Rect{10, 10, 15, 14}, Rect{2, 2, 5, 9}, Rect{0, 0, 5, 4},
        Rect{54, 25, 59, 29}}) {
    const int area = droplet.area();
    const auto [p0, p1] =
        split_rects(droplet, (area + 1) / 2, area / 2, chip);
    EXPECT_TRUE(chip.contains(p0)) << droplet.to_string();
    EXPECT_TRUE(chip.contains(p1)) << droplet.to_string();
    EXPECT_GE(p0.manhattan_gap(p1), 1) << droplet.to_string();
    // Pattern sizing follows the |w − h| <= 1 rule.
    EXPECT_LE(std::abs(p0.width() - p0.height()), 1);
    EXPECT_LE(std::abs(p1.width() - p1.height()), 1);
  }
}

TEST(SplitRects, SplitsAlongTheLongerAxis) {
  const Rect chip{0, 0, 59, 29};
  const Rect wide{10, 10, 15, 13};  // 6×4
  const auto [w0, w1] = split_rects(wide, 12, 12, chip);
  EXPECT_LT(w0.xb, w1.xa);  // side by side in x
  const Rect tall{10, 10, 13, 15};  // 4×6
  const auto [t0, t1] = split_rects(tall, 12, 12, chip);
  EXPECT_LT(t0.yb, t1.ya);  // stacked in y
}

TEST(Scheduler, CompletesMasterMixOnAHealthyChip) {
  sim::SimulatedChip chip(chip_config(), Rng(5));
  Scheduler scheduler(SchedulerConfig{});
  const ExecutionStats stats = scheduler.run(chip, assay::master_mix());
  EXPECT_TRUE(stats.success) << stats.failure_reason;
  EXPECT_GT(stats.cycles, 0u);
  EXPECT_GT(stats.synthesis_calls, 0);
  EXPECT_TRUE(stats.failure_reason.empty());
  // All droplets have left the chip at completion.
  EXPECT_TRUE(chip.droplets().empty());
}

TEST(Scheduler, CompletesEveryBenchmarkBothRouters) {
  for (const assay::MoList& list : assay::evaluation_suite()) {
    for (const bool adaptive : {true, false}) {
      sim::SimulatedChip chip(chip_config(), Rng(11));
      SchedulerConfig config;
      config.adaptive = adaptive;
      config.max_cycles = 3000;
      Scheduler scheduler(config);
      const ExecutionStats stats = scheduler.run(chip, list);
      EXPECT_TRUE(stats.success)
          << list.name << (adaptive ? " adaptive: " : " baseline: ")
          << stats.failure_reason;
    }
  }
}

TEST(Scheduler, AdaptiveEqualsBaselineOnAFreshChip) {
  // With the scaled estimator a fully healthy chip synthesizes the same
  // shortest paths as the degradation-blind baseline.
  std::uint64_t cycles[2];
  for (const bool adaptive : {false, true}) {
    sim::SimulatedChip chip(chip_config(), Rng(21));
    SchedulerConfig config;
    config.adaptive = adaptive;
    Scheduler scheduler(config);
    const ExecutionStats stats = scheduler.run(chip, assay::covid_rat());
    ASSERT_TRUE(stats.success) << stats.failure_reason;
    cycles[adaptive ? 1 : 0] = stats.cycles;
  }
  EXPECT_EQ(cycles[0], cycles[1]);
}

TEST(Scheduler, DeterministicGivenTheSameSeed) {
  auto run_once = [] {
    sim::SimulatedChip chip(chip_config(), Rng(33));
    Scheduler scheduler(SchedulerConfig{});
    return scheduler.run(chip, assay::serial_dilution());
  };
  const ExecutionStats a = run_once();
  const ExecutionStats b = run_once();
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.synthesis_calls, b.synthesis_calls);
}

TEST(Scheduler, CycleLimitAborts) {
  sim::SimulatedChip chip(chip_config(), Rng(5));
  SchedulerConfig config;
  config.max_cycles = 5;
  Scheduler scheduler(config);
  const ExecutionStats stats = scheduler.run(chip, assay::master_mix());
  EXPECT_FALSE(stats.success);
  EXPECT_EQ(stats.failure_reason, "cycle limit exceeded");
  EXPECT_EQ(stats.cycles, 5u);
}

TEST(Scheduler, SharedLibraryServesRepeatExecutions) {
  sim::SimulatedChip chip(chip_config(), Rng(44));
  StrategyLibrary library;
  SchedulerConfig config;
  config.adaptive = false;  // digest is constant → guaranteed reuse
  Scheduler scheduler(config, &library);
  const ExecutionStats first = scheduler.run(chip, assay::covid_rat());
  ASSERT_TRUE(first.success);
  chip.clear_droplets();
  const ExecutionStats second = scheduler.run(chip, assay::covid_rat());
  ASSERT_TRUE(second.success);
  EXPECT_EQ(first.library_hits, 0);
  EXPECT_GT(second.library_hits, 0);
  EXPECT_LT(second.synthesis_calls, first.synthesis_calls);
}

TEST(Scheduler, LibraryDisabledSynthesizesEveryJob) {
  sim::SimulatedChip chip(chip_config(), Rng(44));
  SchedulerConfig config;
  config.use_library = false;
  Scheduler scheduler(config);
  const ExecutionStats stats = scheduler.run(chip, assay::covid_rat());
  ASSERT_TRUE(stats.success);
  EXPECT_EQ(stats.library_hits, 0);
}

TEST(Scheduler, SynthesisLatencyDelaysButCompletes) {
  std::uint64_t base_cycles = 0;
  for (const int latency : {0, 5}) {
    sim::SimulatedChip chip(chip_config(), Rng(55));
    SchedulerConfig config;
    config.synthesis_latency_cycles = latency;
    config.max_cycles = 3000;
    Scheduler scheduler(config);
    const ExecutionStats stats = scheduler.run(chip, assay::covid_rat());
    ASSERT_TRUE(stats.success) << stats.failure_reason;
    if (latency == 0) {
      base_cycles = stats.cycles;
    } else {
      EXPECT_GT(stats.cycles, base_cycles);
    }
  }
}

TEST(Scheduler, AdaptiveEscapesAFaultWallBaselineStalls) {
  // Kill a wall of MCs across the COVID-RAT transport corridor before the
  // run; the sensed H=0 cells force the adaptive router around it, while
  // the baseline pushes into dead cells until the cycle limit.
  auto run = [](bool adaptive) {
    sim::SimulatedChip chip(chip_config(), Rng(66));
    // Dead wall across the baseline's entire row band (the 6×5 droplet
    // travels on rows 13-17), with a gap at rows 18-20 that still lies
    // inside the routing job's hazard zone.
    for (int y = 0; y <= 17; ++y)
      for (int x = 26; x <= 27; ++x)
        chip.substrate().mc(x, y).inject_fault(0);
    SchedulerConfig config;
    config.adaptive = adaptive;
    config.max_cycles = 800;
    Scheduler scheduler(config);
    return scheduler.run(chip, assay::covid_rat());
  };
  const ExecutionStats adaptive = run(true);
  const ExecutionStats baseline = run(false);
  EXPECT_TRUE(adaptive.success) << adaptive.failure_reason;
  EXPECT_FALSE(baseline.success);
}

TEST(Scheduler, MoTimingsFormAValidSchedule) {
  sim::SimulatedChip chip(chip_config(), Rng(5));
  Scheduler scheduler(SchedulerConfig{});
  const assay::MoList assay_list = assay::serial_dilution();
  const ExecutionStats stats = scheduler.run(chip, assay_list);
  ASSERT_TRUE(stats.success);
  ASSERT_EQ(stats.mo_timings.size(), assay_list.ops.size());
  for (const MoTiming& t : stats.mo_timings) {
    EXPECT_TRUE(t.done) << "M" << t.mo;
    EXPECT_LE(t.activated, t.completed) << "M" << t.mo;
    EXPECT_LE(t.completed, stats.cycles) << "M" << t.mo;
    // Every MO activates only after all its predecessors completed.
    for (const assay::PreRef& ref : assay_list.op(t.mo).pre) {
      EXPECT_GE(t.activated,
                stats.mo_timings[static_cast<std::size_t>(ref.mo)].completed)
          << "M" << t.mo << " before its predecessor M" << ref.mo;
    }
    // Holds are a lower bound on the span of holding operations.
    EXPECT_GE(t.completed - t.activated,
              static_cast<std::uint64_t>(assay_list.op(t.mo).hold_cycles))
        << "M" << t.mo;
  }
}

TEST(Scheduler, RouteRecordsTrackModelPredictions) {
  sim::SimulatedChip chip(chip_config(), Rng(5));
  Scheduler scheduler(SchedulerConfig{});
  const ExecutionStats stats = scheduler.run(chip, assay::covid_rat());
  ASSERT_TRUE(stats.success);
  ASSERT_FALSE(stats.routes.empty());
  std::uint64_t total_route_cycles = 0;
  for (const RouteRecord& r : stats.routes) {
    EXPECT_GE(r.mo, 0);
    EXPECT_GT(r.expected_cycles, 0.0);
    // On a fresh chip moves are deterministic: a route can be delayed by
    // scheduling (waiting on partners) but never finish faster than the
    // model's shortest path.
    EXPECT_GE(static_cast<double>(r.actual_cycles),
              r.expected_cycles - 1e-9);
    total_route_cycles += r.actual_cycles;
  }
  EXPECT_LE(stats.routes.size(), 8u);  // covid-rat has few routes
  EXPECT_GT(total_route_cycles, 0u);
}

TEST(Scheduler, MoTimingsMarkUnfinishedOpsOnAbort) {
  sim::SimulatedChip chip(chip_config(), Rng(5));
  SchedulerConfig config;
  config.max_cycles = 10;  // far too few for the whole assay
  Scheduler scheduler(config);
  const ExecutionStats stats = scheduler.run(chip, assay::serial_dilution());
  ASSERT_FALSE(stats.success);
  bool any_unfinished = false;
  for (const MoTiming& t : stats.mo_timings) any_unfinished |= !t.done;
  EXPECT_TRUE(any_unfinished);
}

TEST(Scheduler, ReactiveRecoveryRescuesAStuckBaseline) {
  // Same dead-wall scenario as above: the pure baseline stalls forever,
  // while the retrial-recovery variant re-routes after 8 stuck cycles.
  auto run = [](int reactive_stuck) {
    sim::SimulatedChip chip(chip_config(), Rng(66));
    for (int y = 0; y <= 17; ++y)
      for (int x = 26; x <= 27; ++x)
        chip.substrate().mc(x, y).inject_fault(0);
    SchedulerConfig config;
    config.adaptive = false;
    config.reactive_recovery_stuck_cycles = reactive_stuck;
    config.max_cycles = 800;
    Scheduler scheduler(config);
    return scheduler.run(chip, assay::covid_rat());
  };
  const ExecutionStats no_recovery = run(0);
  EXPECT_FALSE(no_recovery.success);
  const ExecutionStats recovered = run(8);
  EXPECT_TRUE(recovered.success) << recovered.failure_reason;
  EXPECT_GT(recovered.resyntheses, 0);
}

TEST(Scheduler, ReactiveRecoveryIsIgnoredByTheAdaptiveRouter) {
  sim::SimulatedChip chip(chip_config(), Rng(21));
  SchedulerConfig config;
  config.adaptive = true;
  config.reactive_recovery_stuck_cycles = 4;
  Scheduler scheduler(config);
  const ExecutionStats stats = scheduler.run(chip, assay::covid_rat());
  EXPECT_TRUE(stats.success);
  EXPECT_EQ(stats.resyntheses, 0);  // nothing degraded, nothing reactive
}

TEST(Scheduler, RunsWithNonDefaultHealthBits) {
  for (const int bits : {1, 3, 4}) {
    sim::SimulatedChipConfig config = chip_config();
    config.chip.health_bits = bits;
    sim::SimulatedChip chip(config, Rng(91));
    Scheduler scheduler(SchedulerConfig{});
    const ExecutionStats stats = scheduler.run(chip, assay::covid_rat());
    EXPECT_TRUE(stats.success) << "b = " << bits << ": "
                               << stats.failure_reason;
  }
}

TEST(Scheduler, WiderZoneMarginStillCompletes) {
  for (const int margin : {1, 5}) {
    sim::SimulatedChip chip(chip_config(), Rng(92));
    SchedulerConfig config;
    config.zone_margin = margin;
    Scheduler scheduler(config);
    const ExecutionStats stats = scheduler.run(chip, assay::master_mix());
    EXPECT_TRUE(stats.success) << "margin " << margin << ": "
                               << stats.failure_reason;
  }
}

TEST(Scheduler, PmaxQueryConfigurationAlsoRoutes) {
  sim::SimulatedChip chip(chip_config(), Rng(93));
  SchedulerConfig config;
  config.synthesis.query = Query::kPmaxReachability;
  Scheduler scheduler(config);
  const ExecutionStats stats = scheduler.run(chip, assay::covid_rat());
  EXPECT_TRUE(stats.success) << stats.failure_reason;
}

TEST(Scheduler, RejectsAssayThatDoesNotFitTheChip) {
  sim::SimulatedChipConfig small = chip_config();
  small.chip.width = 10;
  small.chip.height = 10;
  sim::SimulatedChip chip(small, Rng(5));
  Scheduler scheduler(SchedulerConfig{});
  EXPECT_THROW(scheduler.run(chip, assay::master_mix()), PreconditionError);
}

TEST(Scheduler, ContentionDetoursGoThroughTheStrategyLibrary) {
  // Droplet-avoiding re-syntheses are cached under a position-keyed digest
  // (the masked health view folds the avoid-rectangles into the key), so
  // every detour request must resolve to exactly one library lookup: a hit
  // or a miss, never a bypass. This end-of-life clustered-fault scenario
  // (seed 5) deterministically produces contention detours.
#ifdef MEDA_OBS_DISABLED
  GTEST_SKIP() << "instrumentation compiled out (MEDA_OBS=OFF)";
#endif
  obs::ctx().reset();
  obs::ctx().metrics().enable();
  sim::SimulatedChipConfig cc = chip_config();
  cc.chip.degradation = DegradationRange{0.5, 0.9, 40.0, 100.0};
  cc.pre_wear_max = 250;
  cc.faults.mode = FaultMode::kClustered;
  cc.faults.faulty_fraction = 0.08;
  cc.faults.fail_at_lo = 10;
  cc.faults.fail_at_hi = 100;
  sim::SimulatedChip chip(cc, Rng(5));
  SchedulerConfig config;
  config.adaptive = true;
  config.max_cycles = 2500;
  config.filter.enabled = true;
  config.recovery.enabled = true;
  // Pin the legacy fixed-threshold watchdog: the detour count below was
  // characterized under stuck_cycles = 12 escalation timing.
  config.recovery.progress_watchdog = false;
  config.recovery.stuck_cycles = 12;
  config.recovery.quarantine_after_watchdogs = 3;
  StrategyLibrary library;
  Scheduler scheduler(config, &library);
  const ExecutionStats stats = scheduler.run(chip, assay::cep());
  ASSERT_GE(stats.recovery.contention_detours, 1);
  const obs::MetricsRegistry& m = obs::ctx().metrics();
  EXPECT_EQ(m.counter("sched.detour_library_hits") +
                m.counter("sched.detour_library_misses"),
            static_cast<std::uint64_t>(stats.recovery.contention_detours));
  obs::ctx().reset();
}

}  // namespace
}  // namespace meda::core
