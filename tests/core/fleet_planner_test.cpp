#include "core/fleet_planner.hpp"

#include <gtest/gtest.h>

#include "sim/simulated_chip.hpp"
#include "util/check.hpp"

namespace meda::core {
namespace {

FleetPlannerConfig no_morph_config() {
  FleetPlannerConfig config;
  config.rules.enable_morphing = false;
  return config;
}

assay::RoutingJob job(const Rect& start, const Rect& goal,
                      const Rect& hazard) {
  assay::RoutingJob rj;
  rj.start = start;
  rj.goal = goal;
  rj.hazard = hazard;
  return rj;
}

/// Replays a fleet plan kinematically, asserting pairwise separation at the
/// beginning of every cycle, and returns the final positions.
std::vector<Rect> replay(const FleetPlan& plan,
                         std::vector<Rect> positions, int min_gap) {
  for (std::size_t t = 0; t < plan.makespan; ++t) {
    for (std::size_t i = 0; i < positions.size(); ++i)
      if (plan.steps[i][t]) positions[i] = apply(*plan.steps[i][t],
                                                 positions[i]);
    for (std::size_t i = 0; i < positions.size(); ++i)
      for (std::size_t j = i + 1; j < positions.size(); ++j)
        EXPECT_GE(positions[i].manhattan_gap(positions[j]), min_gap)
            << "cycle " << t;
  }
  return positions;
}

TEST(FleetPlanner, SingleDropletMatchesShortestPath) {
  const Rect chip{0, 0, 19, 9};
  const auto j0 = job(Rect::from_size(0, 3, 4, 4),
                      Rect::from_size(10, 3, 4, 4), chip);
  const std::vector<assay::RoutingJob> jobs = {j0};
  const FleetPlan plan = plan_fleet(jobs, chip, no_morph_config());
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.makespan, 5u);  // 10 cells with double steps
  const auto finals = replay(plan, {j0.start}, 2);
  EXPECT_TRUE(j0.goal.contains(finals[0]));
}

TEST(FleetPlanner, ThreeDropletRotation) {
  // Three droplets cyclically exchange three stations — every pairwise
  // assignment conflicts with another droplet's start.
  const Rect chip{0, 0, 19, 19};
  const Rect a = Rect::from_size(2, 2, 3, 3);
  const Rect b = Rect::from_size(14, 2, 3, 3);
  const Rect c = Rect::from_size(8, 14, 3, 3);
  const std::vector<assay::RoutingJob> jobs = {job(a, b, chip),
                                               job(b, c, chip),
                                               job(c, a, chip)};
  const FleetPlan plan = plan_fleet(jobs, chip, no_morph_config());
  ASSERT_TRUE(plan.feasible);
  const auto finals = replay(plan, {a, b, c}, 2);
  EXPECT_TRUE(jobs[0].goal.contains(finals[0]));
  EXPECT_TRUE(jobs[1].goal.contains(finals[1]));
  EXPECT_TRUE(jobs[2].goal.contains(finals[2]));
}

TEST(FleetPlanner, TrajectoriesMatchStepsAndStartAtTheStarts) {
  const Rect chip{0, 0, 19, 9};
  const std::vector<assay::RoutingJob> jobs = {
      job(Rect::from_size(0, 0, 3, 3), Rect::from_size(12, 0, 3, 3), chip),
      job(Rect::from_size(0, 6, 3, 3), Rect::from_size(12, 6, 3, 3), chip)};
  const FleetPlan plan = plan_fleet(jobs, chip, no_morph_config());
  ASSERT_TRUE(plan.feasible);
  ASSERT_EQ(plan.trajectories.size(), 2u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(plan.trajectories[i][0], jobs[i].start);
    Rect pos = jobs[i].start;
    for (std::size_t t = 0; t < plan.makespan; ++t) {
      if (plan.steps[i][t]) pos = apply(*plan.steps[i][t], pos);
      EXPECT_EQ(plan.trajectories[i][t + 1], pos) << i << " t=" << t;
    }
    EXPECT_TRUE(jobs[i].goal.contains(pos));
  }
}

TEST(FleetPlanner, LaterDropletWaitsForACrossingHigherPriorityOne) {
  // Droplet 0 crosses droplet 1's corridor; droplet 1 must wait or detour,
  // so its arrival is later than its solo optimum.
  const Rect chip{0, 0, 15, 15};
  const auto j0 = job(Rect::from_size(6, 0, 3, 3),
                      Rect::from_size(6, 12, 3, 3), chip);  // south → north
  const auto j1 = job(Rect::from_size(0, 6, 3, 3),
                      Rect::from_size(12, 6, 3, 3), chip);  // west → east
  const std::vector<assay::RoutingJob> both = {j0, j1};
  const FleetPlan plan = plan_fleet(both, chip, no_morph_config());
  ASSERT_TRUE(plan.feasible);
  replay(plan, {j0.start, j1.start}, 2);
  const std::vector<assay::RoutingJob> solo = {j1};
  const FleetPlan solo_plan = plan_fleet(solo, chip, no_morph_config());
  // Droplet 1's share of the fleet plan is at least the solo makespan.
  EXPECT_GE(plan.makespan, solo_plan.makespan);
}

TEST(FleetPlanner, SwapSolvableWithEnoughClearance) {
  // A swap in a 10-row corridor: droplet 0 plans its solo optimum along
  // the middle; droplet 1 still has room to pass two rows away.
  const Rect chip{0, 0, 23, 9};
  const auto j0 = job(Rect::from_size(0, 2, 3, 3),
                      Rect::from_size(21, 2, 3, 3), chip);
  const auto j1 = job(Rect::from_size(21, 2, 3, 3),
                      Rect::from_size(0, 2, 3, 3), chip);
  const std::vector<assay::RoutingJob> jobs = {j0, j1};
  const FleetPlan plan = plan_fleet(jobs, chip, no_morph_config());
  ASSERT_TRUE(plan.feasible);
  const auto finals = replay(plan, {j0.start, j1.start}, 2);
  EXPECT_TRUE(j0.goal.contains(finals[0]));
  EXPECT_TRUE(j1.goal.contains(finals[1]));
}

TEST(FleetPlanner, PrioritizedPlanningIsIncompleteWhereJointSearchWins) {
  // The 8-row corridor swap: the jointly-searched pair plan passes (see
  // pair_planner_test), but prioritized planning fails — droplet 0's solo
  // optimum hogs the middle rows and leaves no 2-gap lane for droplet 1.
  // This documents the classic prioritized-MAPF trade-off.
  const Rect chip{0, 0, 23, 7};
  const auto j0 = job(Rect::from_size(0, 2, 3, 3),
                      Rect::from_size(21, 2, 3, 3), chip);
  const auto j1 = job(Rect::from_size(21, 2, 3, 3),
                      Rect::from_size(0, 2, 3, 3), chip);
  const std::vector<assay::RoutingJob> jobs = {j0, j1};
  FleetPlannerConfig config = no_morph_config();
  config.horizon = 96;
  const FleetPlan plan = plan_fleet(jobs, chip, config);
  EXPECT_FALSE(plan.feasible);
}

TEST(FleetPlanner, ExecutesOnTheSimulator) {
  const Rect chip_bounds{0, 0, 19, 19};
  sim::SimulatedChipConfig config;
  config.chip.width = 20;
  config.chip.height = 20;
  sim::SimulatedChip chip(config, Rng(17));
  const Rect a = Rect::from_size(2, 2, 3, 3);
  const Rect b = Rect::from_size(14, 2, 3, 3);
  const Rect c = Rect::from_size(8, 14, 3, 3);
  const std::vector<assay::RoutingJob> jobs = {job(a, b, chip_bounds),
                                               job(b, c, chip_bounds),
                                               job(c, a, chip_bounds)};
  const FleetPlan plan = plan_fleet(jobs, chip_bounds, no_morph_config());
  ASSERT_TRUE(plan.feasible);
  const DropletId da = chip.dispense(Rect::from_size(2, 0, 3, 3));
  chip.step({Command{da, Action::kN, -1}});
  chip.step({Command{da, Action::kN, -1}});
  // da now at a; dispense the others at edges and walk them in.
  ASSERT_EQ(chip.droplet_position(da), a);
  const DropletId db = chip.dispense(Rect::from_size(14, 0, 3, 3));
  chip.step({Command{db, Action::kN, -1}});
  chip.step({Command{db, Action::kN, -1}});
  ASSERT_EQ(chip.droplet_position(db), b);
  const DropletId dc = chip.dispense(Rect::from_size(8, 17, 3, 3));
  chip.step({Command{dc, Action::kS, -1}});
  chip.step({Command{dc, Action::kS, -1}});
  chip.step({Command{dc, Action::kS, -1}});
  ASSERT_EQ(chip.droplet_position(dc), c);

  const DropletId ids[] = {da, db, dc};
  for (std::size_t t = 0; t < plan.makespan; ++t) {
    std::vector<Command> commands;
    for (std::size_t i = 0; i < 3; ++i)
      if (plan.steps[i][t])
        commands.push_back(Command{ids[i], *plan.steps[i][t], -1});
    chip.step(commands);
  }
  EXPECT_TRUE(jobs[0].goal.contains(chip.droplet_position(da)));
  EXPECT_TRUE(jobs[1].goal.contains(chip.droplet_position(db)));
  EXPECT_TRUE(jobs[2].goal.contains(chip.droplet_position(dc)));
  EXPECT_EQ(chip.blocked_moves(), 0u);
}

TEST(FleetPlanner, RejectsTouchingStarts) {
  const Rect chip{0, 0, 19, 9};
  const std::vector<assay::RoutingJob> jobs = {
      job(Rect::from_size(0, 0, 3, 3), Rect::from_size(10, 0, 3, 3), chip),
      job(Rect::from_size(3, 0, 3, 3), Rect::from_size(14, 0, 3, 3), chip)};
  EXPECT_THROW(plan_fleet(jobs, chip, no_morph_config()),
               PreconditionError);
}

TEST(FleetPlanner, HorizonBoundFailsGracefully) {
  const Rect chip{0, 0, 23, 7};
  FleetPlannerConfig config = no_morph_config();
  config.horizon = 4;  // far too short for a 21-column transport
  const std::vector<assay::RoutingJob> jobs = {
      job(Rect::from_size(0, 2, 3, 3), Rect::from_size(21, 2, 3, 3), chip)};
  const FleetPlan plan = plan_fleet(jobs, chip, config);
  EXPECT_FALSE(plan.feasible);
}

TEST(FleetPlanner, ExactMinGapStartsAlongTheChipEdgeAreAccepted) {
  // Two droplets hugging opposite chip edges with exactly min_gap = 2 rows
  // between them: the separation precondition is a >=, not a >, and the
  // chip edge itself imposes no extra gap.
  const Rect chip{0, 0, 19, 6};
  const auto j0 = job(Rect::from_size(0, 0, 3, 3),
                      Rect::from_size(16, 0, 3, 3), chip);
  const auto j1 = job(Rect::from_size(0, 4, 3, 3),
                      Rect::from_size(16, 4, 3, 3), chip);
  ASSERT_EQ(j0.start.manhattan_gap(j1.start), 2);
  const std::vector<assay::RoutingJob> jobs = {j0, j1};
  const FleetPlan plan = plan_fleet(jobs, chip, no_morph_config());
  ASSERT_TRUE(plan.feasible);
  const auto finals = replay(plan, {j0.start, j1.start}, 2);
  EXPECT_TRUE(j0.goal.contains(finals[0]));
  EXPECT_TRUE(j1.goal.contains(finals[1]));
}

TEST(FleetPlanner, DetoursAroundAHigherPriorityDropletParkedOnItsGoal) {
  // Droplet 0 arrives quickly and parks dead-center in droplet 1's
  // straight west → east lane; droplet 1 must route around the parked
  // droplet while honoring the separation rule.
  const Rect chip{0, 0, 19, 11};
  const auto j0 = job(Rect::from_size(8, 0, 3, 3),
                      Rect::from_size(8, 4, 3, 3), chip);
  const auto j1 = job(Rect::from_size(0, 4, 3, 3),
                      Rect::from_size(16, 4, 3, 3), chip);
  const std::vector<assay::RoutingJob> jobs = {j0, j1};
  const FleetPlan plan = plan_fleet(jobs, chip, no_morph_config());
  ASSERT_TRUE(plan.feasible);
  const auto finals = replay(plan, {j0.start, j1.start}, 2);
  EXPECT_TRUE(j0.goal.contains(finals[0]));
  EXPECT_TRUE(j1.goal.contains(finals[1]));
  // With double steps the sidestep can be makespan-free, but droplet 1 must
  // leave its straight y = 4..6 lane at some point to clear the parked
  // droplet (the replay above already asserted separation every cycle).
  bool left_lane = false;
  for (const Rect& pos : plan.trajectories[1])
    if (pos.ya != 4) left_lane = true;
  EXPECT_TRUE(left_lane);
}

TEST(FleetPlanner, ReportsInfeasibleWhenAGoalConflictsWithAParkedDroplet) {
  // Droplet 1's goal lies within min_gap of droplet 0's parking position:
  // no arrival of droplet 1 can stay conflict-free, so the plan reports
  // infeasibility (it does not throw — starts were legal).
  const Rect chip{0, 0, 19, 9};
  FleetPlannerConfig config = no_morph_config();
  config.horizon = 64;
  const auto j0 = job(Rect::from_size(0, 3, 3, 3),
                      Rect::from_size(10, 3, 3, 3), chip);
  const auto j1 = job(Rect::from_size(16, 3, 3, 3),
                      Rect::from_size(13, 3, 3, 3), chip);
  ASSERT_LT(j0.goal.manhattan_gap(j1.goal), 2);
  const std::vector<assay::RoutingJob> jobs = {j0, j1};
  const FleetPlan plan = plan_fleet(jobs, chip, config);
  EXPECT_FALSE(plan.feasible);
}

TEST(ReplicaCorridors, SplitsTheZoneIntoDisjointBands) {
  const Rect chip{0, 0, 59, 29};
  assay::RoutingJob rj = job(Rect::from_size(26, 0, 4, 4),
                             Rect::from_size(26, 20, 4, 4),
                             Rect{23, 0, 32, 26});
  const ReplicaCorridorPlan plan = plan_replica_corridors(rj, 2, chip);
  ASSERT_TRUE(plan.feasible);
  EXPECT_TRUE(plan.disjoint);
  ASSERT_EQ(plan.corridors.size(), 2u);
  const Rect& b0 = plan.corridors[0].band;
  const Rect& b1 = plan.corridors[1].band;
  // Vertical travel: the bands split the zone's width, do not overlap, and
  // each is wide enough for the 4-wide droplet plus one cell of slack.
  EXPECT_FALSE(b0.intersection_with(b1).valid());
  EXPECT_GE(b0.width(), 5);
  EXPECT_GE(b1.width(), 5);
  EXPECT_EQ(b0.width() + b1.width(), rj.hazard.width());
  // Each replica masks exactly its sibling's band.
  ASSERT_EQ(plan.corridors[0].masked.size(), 1u);
  ASSERT_EQ(plan.corridors[1].masked.size(), 1u);
  EXPECT_EQ(plan.corridors[0].masked[0], b1);
  EXPECT_EQ(plan.corridors[1].masked[0], b0);
}

TEST(ReplicaCorridors, FunnelsSpanTheFullZoneAcrossBothEndpoints) {
  const Rect chip{0, 0, 59, 29};
  assay::RoutingJob rj = job(Rect::from_size(26, 0, 4, 4),
                             Rect::from_size(26, 20, 4, 4),
                             Rect{23, 0, 32, 26});
  const ReplicaCorridorPlan plan =
      plan_replica_corridors(rj, 2, chip, /*funnel_margin=*/2);
  ASSERT_TRUE(plan.disjoint);
  // Vertical travel: each funnel is a full-width slab of the zone covering
  // its endpoint plus the margin, so every band connects to both ports.
  EXPECT_EQ(plan.start_funnel, (Rect{23, 0, 32, 5}));
  EXPECT_EQ(plan.goal_funnel, (Rect{23, 18, 32, 25}));
  EXPECT_TRUE(plan.start_funnel.contains(rj.start));
  EXPECT_TRUE(plan.goal_funnel.contains(rj.goal));
}

TEST(ReplicaCorridors, DegradesToBestEffortInAThinZone) {
  // Three replicas need 3 x 5 = 15 cells across a 10-wide zone: the plan
  // degrades to shared unmasked corridors instead of failing.
  const Rect chip{0, 0, 59, 29};
  assay::RoutingJob rj = job(Rect::from_size(26, 0, 4, 4),
                             Rect::from_size(26, 20, 4, 4),
                             Rect{23, 0, 32, 26});
  const ReplicaCorridorPlan plan = plan_replica_corridors(rj, 3, chip);
  ASSERT_TRUE(plan.feasible);
  EXPECT_FALSE(plan.disjoint);
  ASSERT_EQ(plan.corridors.size(), 3u);
  for (const ReplicaCorridor& corridor : plan.corridors) {
    EXPECT_EQ(corridor.band, rj.hazard.intersection_with(chip));
    EXPECT_TRUE(corridor.masked.empty());
  }
}

TEST(ReplicaCorridors, SingleReplicaOwnsTheWholeZone) {
  const Rect chip{0, 0, 59, 29};
  assay::RoutingJob rj = job(Rect::from_size(26, 0, 4, 4),
                             Rect::from_size(26, 20, 4, 4),
                             Rect{23, 0, 32, 26});
  const ReplicaCorridorPlan plan = plan_replica_corridors(rj, 1, chip);
  ASSERT_TRUE(plan.feasible);
  EXPECT_FALSE(plan.disjoint);
  ASSERT_EQ(plan.corridors.size(), 1u);
  EXPECT_EQ(plan.corridors[0].band, rj.hazard.intersection_with(chip));
}

}  // namespace
}  // namespace meda::core
