#include "core/health_filter.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace meda::core {
namespace {

HealthFilterConfig quick_config() {
  HealthFilterConfig config;
  config.enabled = true;
  config.down_confirm = 2;
  config.up_confirm = 4;
  config.suspect_threshold = 3;
  config.suspect_decay_frames = 0;  // no decay: disagreements accumulate
  return config;
}

TEST(HealthFilter, SeedsFromTheFirstFrame) {
  HealthFilter filter(quick_config());
  EXPECT_FALSE(filter.seeded());
  const IntMatrix frame(5, 4, 3);
  filter.observe(frame);
  EXPECT_TRUE(filter.seeded());
  EXPECT_EQ(filter.estimate(), frame);
}

TEST(HealthFilter, TransientFlipIsDebounced) {
  HealthFilter filter(quick_config());
  IntMatrix frame(5, 4, 3);
  filter.observe(frame);
  IntMatrix glitched = frame;
  glitched(2, 1) = 0;  // one-frame transient
  filter.observe(glitched);
  EXPECT_EQ(filter.estimate()(2, 1), 3);  // not adopted yet
  filter.observe(frame);                  // reading recovers
  filter.observe(frame);
  EXPECT_EQ(filter.estimate(), frame);
  EXPECT_GT(filter.rejected_updates(), 0u);
  EXPECT_EQ(filter.adopted_updates(), 0u);
}

TEST(HealthFilter, PersistentDecreaseAdoptedAfterDownConfirm) {
  HealthFilter filter(quick_config());  // down_confirm = 2
  IntMatrix frame(5, 4, 3);
  filter.observe(frame);
  IntMatrix degraded = frame;
  degraded(1, 2) = 1;
  filter.observe(degraded);
  EXPECT_EQ(filter.estimate()(1, 2), 3);  // first disagreeing read
  filter.observe(degraded);
  EXPECT_EQ(filter.estimate()(1, 2), 1);  // second consecutive read: adopt
  EXPECT_EQ(filter.adopted_updates(), 1u);
}

TEST(HealthFilter, IncreaseNeedsMoreConfirmationThanDecrease) {
  // The monotone-wear prior: health readings that *rise* fight the physics
  // and need up_confirm (= 4) consecutive reads instead of 2.
  HealthFilter filter(quick_config());
  IntMatrix frame(5, 4, 1);
  filter.observe(frame);
  IntMatrix raised = frame;
  raised(3, 3) = 3;
  for (int i = 0; i < 3; ++i) {
    filter.observe(raised);
    EXPECT_EQ(filter.estimate()(3, 3), 1) << "read " << i + 1;
  }
  filter.observe(raised);  // 4th consecutive read
  EXPECT_EQ(filter.estimate()(3, 3), 3);
}

TEST(HealthFilter, InterruptedStreakStartsOver) {
  HealthFilter filter(quick_config());
  IntMatrix frame(4, 4, 3);
  filter.observe(frame);
  IntMatrix degraded = frame;
  degraded(0, 0) = 0;
  filter.observe(degraded);  // streak 1 of 2
  filter.observe(frame);     // agreement resets the candidate
  filter.observe(degraded);  // streak 1 of 2 again
  EXPECT_EQ(filter.estimate()(0, 0), 3);
  filter.observe(degraded);
  EXPECT_EQ(filter.estimate()(0, 0), 0);
}

TEST(HealthFilter, ForceResenseReseedsVerbatim) {
  HealthFilter filter(quick_config());
  filter.observe(IntMatrix(4, 3, 3));
  IntMatrix fresh(4, 3, 2);
  filter.force_resense();
  filter.observe(fresh);  // adopted without any debounce
  EXPECT_EQ(filter.estimate(), fresh);
}

TEST(HealthFilter, FlakyCellBecomesSuspect) {
  HealthFilter filter(quick_config());  // suspect_threshold = 3
  IntMatrix frame(4, 4, 3);
  filter.observe(frame);
  // A flaky DFF makes the cell's reading bounce between two wrong values;
  // the estimate never settles on the noise (the candidate keeps changing)
  // but the disagreement score accumulates to the suspect threshold.
  IntMatrix noisy = frame;
  for (int i = 0; i < 4; ++i) {
    noisy(2, 2) = (i % 2 == 0) ? 1 : 2;
    filter.observe(noisy);
  }
  EXPECT_EQ(filter.estimate()(2, 2), 3);  // noise was never adopted
  EXPECT_EQ(filter.suspect_count(), 1);
  EXPECT_NE(filter.suspect()(2, 2), 0);
  // Sticky: agreeing reads do not clear the flag.
  filter.observe(frame);
  EXPECT_EQ(filter.suspect_count(), 1);
}

TEST(HealthFilter, SuspectStateSurvivesForcedResense) {
  HealthFilter filter(quick_config());
  IntMatrix frame(4, 4, 3);
  filter.observe(frame);
  IntMatrix noisy = frame;
  for (int i = 0; i < 4; ++i) {
    noisy(1, 1) = (i % 2 == 0) ? 0 : 2;
    filter.observe(noisy);
  }
  ASSERT_EQ(filter.suspect_count(), 1);
  filter.force_resense();
  filter.observe(frame);
  EXPECT_EQ(filter.suspect_count(), 1);  // the defect memory is kept
}

TEST(HealthFilter, ConfidenceSaturatesAtTheCap) {
  HealthFilterConfig config = quick_config();
  config.confidence_cap = 3;
  HealthFilter filter(config);
  const IntMatrix frame(3, 3, 2);
  for (int i = 0; i < 10; ++i) filter.observe(frame);
  EXPECT_EQ(filter.confidence()(1, 1), 3);
}

TEST(HealthFilter, RejectsDimensionChanges) {
  HealthFilter filter(quick_config());
  filter.observe(IntMatrix(4, 3, 1));
  EXPECT_THROW(filter.observe(IntMatrix(3, 4, 1)), PreconditionError);
}

}  // namespace
}  // namespace meda::core
