#include "core/value_iteration.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/compiled_mdp.hpp"
#include "core/mdp.hpp"
#include "core/synthesizer.hpp"
#include "model/outcomes.hpp"
#include "util/deadline.hpp"
#include "util/rng.hpp"

/// Fuzzed equivalence oracle for the warm-started solver: over long random
/// health-delta sequences, solve_reach_avoid_warm on the patched model must
/// reproduce a cold solve_reach_avoid of the very same model — identical
/// policies (the shared tie-break rule) and values within solver tolerance —
/// while its telemetry reports the warm path truthfully.

namespace meda::core {
namespace {

constexpr int kGrid = 12;
constexpr int kBits = 3;
constexpr int kFull = (1 << kBits) - 1;

Rect chip() { return Rect{0, 0, kGrid - 1, kGrid - 1}; }

DoubleMatrix force_of(const IntMatrix& health) {
  return force_from_health(health, kBits, HealthEstimator::kScaled);
}

assay::RoutingJob fixture_job() {
  assay::RoutingJob rj;
  rj.start = Rect::from_size(0, 4, 4, 4);
  rj.goal = Rect::from_size(8, 4, 4, 4);
  rj.hazard = chip();
  return rj;
}

struct Fixture {
  IntMatrix health{kGrid, kGrid, 5};
  CompiledMdp compiled;
  CompiledGeometry geometry;
  ReachAvoidSolution prior;

  explicit Fixture(const SolveConfig& config = {}) {
    const RoutingMdp mdp = build_routing_mdp(fixture_job(), force_of(health),
                                             chip(), ActionRules{});
    compiled = compile_mdp(mdp);
    geometry = compile_geometry(mdp);
    prior = solve_reach_avoid(compiled, config);
  }

  /// Perturbs @p count cells inside (0, full) — topology-stable — and
  /// patches the compiled model. Returns the dirty seed set.
  std::vector<std::uint32_t> mutate(Rng& rng, int count) {
    IntMatrix before = health;
    for (int i = 0; i < count; ++i)
      health(rng.uniform_int(0, kGrid - 1), rng.uniform_int(0, kGrid - 1)) =
          rng.uniform_int(1, kFull - 1);
    const MdpPatch patch = patch_compiled_mdp(
        compiled, geometry, force_of(health), chip(), chip(),
        health_delta_cells(before, health));
    EXPECT_TRUE(patch.patched);
    return patch.dirty_states;
  }
};

void expect_equivalent(const ReachAvoidSolution& warm,
                       const ReachAvoidSolution& cold, const char* label) {
  ASSERT_EQ(warm.pmax.values.size(), cold.pmax.values.size()) << label;
  // Identical tie-breaks: the warm verification sweeps recompute every
  // argmax with the cold backup arithmetic, so the policies match exactly.
  EXPECT_EQ(warm.pmax.chosen, cold.pmax.chosen) << label;
  EXPECT_EQ(warm.rmin.chosen, cold.rmin.chosen) << label;
  for (std::size_t s = 0; s < cold.pmax.values.size(); ++s) {
    EXPECT_NEAR(warm.pmax.values[s], cold.pmax.values[s], 1e-7)
        << label << " pmax state " << s;
    if (std::isinf(cold.rmin.values[s])) {
      EXPECT_TRUE(std::isinf(warm.rmin.values[s]))
          << label << " rmin state " << s;
    } else {
      EXPECT_NEAR(warm.rmin.values[s], cold.rmin.values[s], 1e-6)
          << label << " rmin state " << s;
    }
  }
}

TEST(WarmSolve, FuzzedDeltaSequencesMatchColdSolves) {
  // ≥ 100 random warm solves across independent delta lineages, each chained
  // warm-on-warm (the prior of step k is the warm result of step k−1, as in
  // the scheduler).
  Rng rng(0xace50001u);
  int solves = 0;
  for (int seq = 0; seq < 25; ++seq) {
    Fixture f;
    for (int step = 0; step < 5; ++step) {
      const std::vector<std::uint32_t> dirty =
          f.mutate(rng, rng.uniform_int(1, 6));
      // On this 81-state toy grid a couple of cells dirty a large fraction
      // of the states; widen the frontier threshold so the fuzz actually
      // exercises the worklist instead of always falling back.
      SolveConfig config;
      config.warm_dirty_fraction = 1.0;
      const ReachAvoidSolution warm =
          solve_reach_avoid_warm(f.compiled, f.prior, dirty, config);
      const ReachAvoidSolution cold = solve_reach_avoid(f.compiled);
      expect_equivalent(warm, cold, "fuzz");
      EXPECT_TRUE(warm.pmax.warm_started);
      EXPECT_TRUE(warm.rmin.warm_started);
      EXPECT_FALSE(cold.pmax.warm_started);
      // Seeding at the prior fixed point can only shorten verification.
      EXPECT_LE(warm.pmax.iterations, cold.pmax.iterations);
      f.prior = warm;
      ++solves;
    }
  }
  EXPECT_GE(solves, 100);
}

TEST(WarmSolve, IsDeterministic) {
  Rng rng(0xace50002u);
  Fixture f;
  const std::vector<std::uint32_t> dirty = f.mutate(rng, 4);
  SolveConfig config;
  config.warm_dirty_fraction = 1.0;  // toy grid: keep the worklist engaged
  const ReachAvoidSolution a =
      solve_reach_avoid_warm(f.compiled, f.prior, dirty, config);
  const ReachAvoidSolution b =
      solve_reach_avoid_warm(f.compiled, f.prior, dirty, config);
  EXPECT_EQ(a.pmax.values, b.pmax.values);
  EXPECT_EQ(a.rmin.values, b.rmin.values);
  EXPECT_EQ(a.pmax.chosen, b.pmax.chosen);
  EXPECT_EQ(a.rmin.chosen, b.rmin.chosen);
  EXPECT_EQ(a.pmax.warm_pops, b.pmax.warm_pops);
  EXPECT_EQ(a.rmin.warm_pops, b.rmin.warm_pops);
}

TEST(WarmSolve, WideDirtyFrontierFallsBackToFullSweeps) {
  Rng rng(0xace50003u);
  Fixture f;
  const std::vector<std::uint32_t> dirty = f.mutate(rng, 4);
  SolveConfig config;
  config.warm_dirty_fraction = 0.0;  // every frontier counts as too wide
  const ReachAvoidSolution warm =
      solve_reach_avoid_warm(f.compiled, f.prior, dirty, config);
  EXPECT_TRUE(warm.pmax.warm_fell_back);
  EXPECT_EQ(warm.pmax.warm_pops, 0u);
  expect_equivalent(warm, solve_reach_avoid(f.compiled), "fallback");
}

TEST(WarmSolve, ZeroPopBudgetDisablesTheWorklist) {
  Rng rng(0xace50004u);
  Fixture f;
  const std::vector<std::uint32_t> dirty = f.mutate(rng, 3);
  SolveConfig config;
  config.warm_pop_budget_sweeps = 0;  // seeded-but-swept
  const ReachAvoidSolution warm =
      solve_reach_avoid_warm(f.compiled, f.prior, dirty, config);
  EXPECT_EQ(warm.pmax.warm_pops, 0u);
  EXPECT_EQ(warm.rmin.warm_pops, 0u);
  expect_equivalent(warm, solve_reach_avoid(f.compiled), "no worklist");
}

TEST(WarmSolve, ReportsWarmStartTruthfully) {
  Fixture f;
  // Deterministic delta far from the goal rect: on this fixture pmax is 1
  // everywhere, so the worklist is seeded purely from the dirty states —
  // cells near the start guarantee non-goal (hence poppable) seeds.
  IntMatrix before = f.health;
  f.health(2, 5) = 2;
  f.health(3, 6) = 3;
  const MdpPatch patch = patch_compiled_mdp(
      f.compiled, f.geometry, force_of(f.health), chip(), chip(),
      health_delta_cells(before, f.health));
  ASSERT_TRUE(patch.patched);
  const std::vector<std::uint32_t>& dirty = patch.dirty_states;
  SolveConfig config;
  config.warm_dirty_fraction = 1.0;  // toy grid: keep the worklist engaged
  const ReachAvoidSolution warm =
      solve_reach_avoid_warm(f.compiled, f.prior, dirty, config);
  EXPECT_TRUE(warm.pmax.warm_started);
  EXPECT_FALSE(warm.pmax.warm_fell_back);
  EXPECT_GT(warm.pmax.warm_seeds, 0u);
  EXPECT_GT(warm.pmax.warm_pops, 0u);
  // A cold solve of the same model carries no warm telemetry.
  const ReachAvoidSolution cold = solve_reach_avoid(f.compiled);
  EXPECT_FALSE(cold.pmax.warm_started);
  EXPECT_EQ(cold.pmax.warm_pops, 0u);
  EXPECT_EQ(cold.pmax.warm_seeds, 0u);
}

TEST(WarmSolve, DeadlineExpiryIsReportedAndUnusable) {
  Rng rng(0xace50006u);
  Fixture f;
  const std::vector<std::uint32_t> dirty = f.mutate(rng, 4);
  SolveConfig config;
  config.deadline = util::Deadline::after_checks(1);
  const ReachAvoidSolution warm =
      solve_reach_avoid_warm(f.compiled, f.prior, dirty, config);
  EXPECT_TRUE(warm.pmax.deadline_expired || warm.rmin.deadline_expired);
  EXPECT_EQ(warm.rmin.termination, SolveTermination::kDeadline);
}

}  // namespace
}  // namespace meda::core
