#include <gtest/gtest.h>

#include <algorithm>

#include "assay/benchmarks.hpp"
#include "core/scheduler.hpp"
#include "core/synthesizer.hpp"
#include "model/outcomes.hpp"
#include "obs/obs.hpp"
#include "sim/simulated_chip.hpp"
#include "util/rng.hpp"

/// @file deadline_guardrail_test.cpp
/// Deadline-bounded synthesis end to end: a synthesis that blows its budget
/// reports deadline_expired instead of hanging; the scheduler degrades to
/// the bounded A* fallback route, records the ladder event and metrics, and
/// retries full synthesis with exponential backoff once health changes.

namespace meda::core {
namespace {

sim::SimulatedChipConfig chip_config() {
  sim::SimulatedChipConfig config;
  config.chip.width = assay::kChipWidth;
  config.chip.height = assay::kChipHeight;
  return config;
}

bool fired(const ExecutionStats& stats, RecoveryAction action) {
  return std::any_of(stats.recovery_events.begin(),
                     stats.recovery_events.end(),
                     [action](const RecoveryEvent& e) {
                       return e.action == action;
                     });
}

bool logged(const ExecutionStats& stats, const std::string& name) {
  return std::any_of(stats.events.begin(), stats.events.end(),
                     [&name](const obs::Event& e) { return e.name == name; });
}

TEST(SynthesizerDeadline, SweepBudgetExpiresDeterministically) {
  // A one-sweep budget cannot converge any real routing job: the result
  // must come back deadline_expired (and infeasible), never cached.
  SynthesisConfig config;
  config.rules.enable_morphing = false;
  config.deadline_sweeps = 1;
  assay::RoutingJob rj;
  rj.start = Rect::from_size(0, 4, 4, 4);
  rj.goal = Rect::from_size(12, 4, 4, 4);
  rj.hazard = Rect{0, 0, 29, 29};
  const Synthesizer synth(Rect{0, 0, 29, 29}, config);
  const SynthesisResult r =
      synth.synthesize_with_force(rj, full_health_force(30, 30));
  EXPECT_TRUE(r.deadline_expired);
  EXPECT_FALSE(r.feasible);
  EXPECT_TRUE(r.strategy.empty());
}

TEST(SynthesizerDeadline, GenerousBudgetDoesNotInterfere) {
  SynthesisConfig config;
  config.rules.enable_morphing = false;
  config.deadline_sweeps = 100000;
  assay::RoutingJob rj;
  rj.start = Rect::from_size(0, 4, 4, 4);
  rj.goal = Rect::from_size(8, 4, 4, 4);
  rj.hazard = Rect{0, 0, 29, 29};
  const Synthesizer synth(Rect{0, 0, 29, 29}, config);
  const SynthesisResult r =
      synth.synthesize_with_force(rj, full_health_force(30, 30));
  EXPECT_FALSE(r.deadline_expired);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.expected_cycles, 4.0, 1e-9);
}

TEST(DeadlineGuardrail, FallbackRouteCompletesTheAssay) {
  // The acceptance scenario: every synthesis call blows a one-sweep budget
  // mid-assay, yet the run completes on fallback routes alone, with the
  // ladder event and the roll-up metrics recorded.
#ifndef MEDA_OBS_DISABLED
  obs::ctx().reset();
  obs::ctx().metrics().enable();
#endif
  sim::SimulatedChip chip(chip_config(), Rng(7));
  SchedulerConfig config;
  config.adaptive = true;
  config.synthesis.deadline_sweeps = 1;
  config.recovery.enabled = true;
  Scheduler scheduler(config);
  const ExecutionStats stats = scheduler.run(chip, assay::covid_rat());
  EXPECT_TRUE(stats.success) << stats.failure_reason;
  EXPECT_GT(stats.recovery.synthesis_deadlines, 0);
  EXPECT_GT(stats.recovery.fallback_routes, 0);
  EXPECT_TRUE(fired(stats, RecoveryAction::kSynthesisDeadline));
  EXPECT_TRUE(logged(stats, "fallback-route"));
#ifndef MEDA_OBS_DISABLED
  const obs::MetricsRegistry& m = obs::ctx().metrics();
  EXPECT_GT(m.counter("synth.deadline_expired"), 0u);
  EXPECT_EQ(m.counter("recovery.synthesis_deadlines"),
            static_cast<std::uint64_t>(stats.recovery.synthesis_deadlines));
  EXPECT_EQ(m.counter("recovery.fallback_routes"),
            static_cast<std::uint64_t>(stats.recovery.fallback_routes));
  obs::ctx().reset();
#endif
}

TEST(DeadlineGuardrail, WithoutRecoveryTheRunFailsFast) {
  sim::SimulatedChip chip(chip_config(), Rng(7));
  SchedulerConfig config;
  config.adaptive = true;
  config.synthesis.deadline_sweeps = 1;
  Scheduler scheduler(config);
  const ExecutionStats stats = scheduler.run(chip, assay::covid_rat());
  EXPECT_FALSE(stats.success);
  EXPECT_NE(stats.failure_reason.find("deadline"), std::string::npos)
      << stats.failure_reason;
}

TEST(DeadlineGuardrail, HealthChangeAfterBackoffRetriesFullSynthesis) {
  // On a degrading chip the health digest keeps changing while the fallback
  // route is active. Changes inside the backoff window re-run only the
  // cheap fallback router; the first change after the window retries the
  // full synthesis (which expires again here — the budget never grows — so
  // the strike count climbs past one).
  sim::SimulatedChipConfig cc = chip_config();
  // Wear fast enough that the health view shifts mid-route, slow enough
  // that the chip stays routable and the fallback stays feasible.
  cc.chip.degradation = DegradationRange{0.5, 0.9, 150.0, 400.0};
  cc.pre_wear_max = 50;
  sim::SimulatedChip chip(cc, Rng(7));
  SchedulerConfig config;
  config.adaptive = true;
  config.max_cycles = 2500;
  config.synthesis.deadline_sweeps = 1;
  config.recovery.enabled = true;
  config.recovery.fallback_backoff_base_cycles = 2;  // tiny window
  Scheduler scheduler(config);
  const ExecutionStats stats = scheduler.run(chip, assay::cep());
  EXPECT_GE(stats.recovery.synthesis_deadlines, 2);
  EXPECT_GE(stats.recovery.fallback_routes, 2);
  EXPECT_TRUE(logged(stats, "deadline-retry"));
}

TEST(DeadlineGuardrail, FallbackOffDegradesToTheRetryLadder) {
  sim::SimulatedChip chip(chip_config(), Rng(7));
  SchedulerConfig config;
  config.adaptive = true;
  config.synthesis.deadline_sweeps = 1;
  config.recovery.enabled = true;
  config.recovery.fallback_on_deadline = false;
  config.recovery.max_retries = 1;
  config.recovery.backoff_base_cycles = 1;
  Scheduler scheduler(config);
  const ExecutionStats stats = scheduler.run(chip, assay::covid_rat());
  // Every attempt expires, so the retry ladder can only abort the jobs.
  EXPECT_FALSE(stats.success);
  EXPECT_EQ(stats.recovery.fallback_routes, 0);
  EXPECT_GT(stats.recovery.synthesis_retries, 0);
  EXPECT_GT(stats.recovery.aborted_jobs, 0);
}

}  // namespace
}  // namespace meda::core
