#include "core/compiled_mdp.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/value_iteration.hpp"
#include "model/outcomes.hpp"

/// Structure tests for the CSR flattening plus the golden-equivalence suite:
/// on real routing MDPs built from uniform / degraded / clustered-fault
/// force fixtures, the compiled solvers must reproduce the legacy solvers'
/// values (within tolerance) and their exact policies.

namespace meda::core {
namespace {

RoutingMdp make_mdp(std::size_t droplet_states,
                    std::vector<std::size_t> goal_states) {
  RoutingMdp mdp;
  mdp.droplets.resize(droplet_states);
  for (std::size_t i = 0; i < droplet_states; ++i)
    mdp.droplets[i] = Rect::from_size(static_cast<int>(i), 0, 1, 1);
  mdp.choices.resize(droplet_states);
  mdp.is_goal.assign(droplet_states, false);
  for (std::size_t g : goal_states) mdp.is_goal[g] = true;
  mdp.start = 0;
  return mdp;
}

void add_choice(RoutingMdp& mdp, std::size_t state, Action a,
                std::vector<Transition> transitions) {
  mdp.choices[state].push_back(Choice{a, 1.0, std::move(transitions)});
}

TEST(CompileMdp, FactorsOutSelfLoops) {
  // s0: {goal 0.3, stay 0.7} → one off-state branch, scale 1/(1−0.7).
  RoutingMdp mdp = make_mdp(2, {1});
  add_choice(mdp, 0, Action::kE, {{1, 0.3}, {0, 0.7}});
  const CompiledMdp c = compile_mdp(mdp);
  ASSERT_EQ(c.num_droplet_states, 2u);
  ASSERT_EQ(c.choice_count(), 1u);
  EXPECT_EQ(c.choice_offset[0], 0u);
  EXPECT_EQ(c.choice_offset[1], 1u);
  EXPECT_EQ(c.choice_offset[2], 1u);  // goal state has no choices
  ASSERT_EQ(c.trans_offset[1] - c.trans_offset[0], 1u);
  EXPECT_EQ(c.target[0], 1u);
  EXPECT_DOUBLE_EQ(c.probability[0], 0.3);
  EXPECT_NEAR(c.inv_one_minus_q[0], 1.0 / 0.3, 1e-12);
  EXPECT_DOUBLE_EQ(c.cost[0], 1.0);
}

TEST(CompileMdp, PureSelfLoopGetsZeroScale) {
  RoutingMdp mdp = make_mdp(2, {1});
  add_choice(mdp, 0, Action::kE, {{0, 1.0}});
  const CompiledMdp c = compile_mdp(mdp);
  ASSERT_EQ(c.choice_count(), 1u);
  EXPECT_DOUBLE_EQ(c.inv_one_minus_q[0], 0.0);
  EXPECT_EQ(c.trans_offset[1], c.trans_offset[0]);  // no off-state branch
}

TEST(CompileMdp, SweepOrderAnchorsAtTheGoal) {
  // Chain 0 → 1 → 2(goal); state 3 cannot reach the goal.
  RoutingMdp mdp = make_mdp(4, {2});
  add_choice(mdp, 0, Action::kE, {{1, 1.0}});
  add_choice(mdp, 1, Action::kE, {{2, 1.0}});
  add_choice(mdp, 3, Action::kE, {{3, 1.0}});
  const CompiledMdp c = compile_mdp(mdp);
  ASSERT_EQ(c.sweep_order.size(), 4u);
  // A permutation of the droplet states…
  std::vector<std::uint32_t> sorted = c.sweep_order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::uint32_t>{0, 1, 2, 3}));
  // …with reverse-BFS layering: goal first, then its predecessors outward,
  // unanchored states last.
  EXPECT_EQ(c.sweep_order[0], 2u);
  EXPECT_EQ(c.sweep_order[1], 1u);
  EXPECT_EQ(c.sweep_order[2], 0u);
  EXPECT_EQ(c.sweep_order[3], 3u);
  EXPECT_EQ(c.goal_reachable, 3u);
}

TEST(CompileMdp, LocalChoiceIndicesMatchTheRoutingMdp) {
  // Two choices on s0: the compiled Solution must report the same local
  // index the legacy solver does, whichever representation solved it.
  RoutingMdp mdp = make_mdp(2, {1});
  add_choice(mdp, 0, Action::kE, {{1, 0.9}, {2, 0.1}});  // risky
  add_choice(mdp, 0, Action::kN, {{1, 0.2}, {0, 0.8}});  // safe retry
  const Solution fast = solve_pmax(compile_mdp(mdp));
  const Solution legacy = solve_pmax_legacy(mdp);
  EXPECT_EQ(fast.chosen[0], 1);
  EXPECT_EQ(fast.chosen, legacy.chosen);
}

// Golden equivalence on real routing MDPs ---------------------------------

constexpr int kGrid = 12;  // 12×12 chip fixture

DoubleMatrix uniform_force() { return full_health_force(kGrid, kGrid); }

/// A worn vertical band through the middle of the route.
DoubleMatrix degraded_force() {
  DoubleMatrix force = full_health_force(kGrid, kGrid);
  for (int y = 0; y < kGrid; ++y)
    for (int x = 4; x <= 6; ++x) force(x, y) = 0.45;
  return force;
}

/// Dead 2×2 clusters acting as roadblocks.
DoubleMatrix clustered_fault_force() {
  DoubleMatrix force = full_health_force(kGrid, kGrid);
  for (const auto& [cx, cy] :
       {std::pair{3, 3}, std::pair{6, 7}, std::pair{8, 2}}) {
    for (int dy = 0; dy < 2; ++dy)
      for (int dx = 0; dx < 2; ++dx) force(cx + dx, cy + dy) = 0.0;
  }
  return force;
}

RoutingMdp fixture_mdp(const DoubleMatrix& force) {
  assay::RoutingJob rj;
  rj.start = Rect::from_size(0, 4, 4, 4);
  rj.goal = Rect::from_size(8, 4, 4, 4);
  rj.hazard = Rect{0, 0, kGrid - 1, kGrid - 1};
  return build_routing_mdp(rj, force, Rect{0, 0, kGrid - 1, kGrid - 1},
                           ActionRules{});
}

void expect_equivalent(const RoutingMdp& mdp, const char* label) {
  const Solution legacy_pmax = solve_pmax_legacy(mdp);
  const Solution legacy_rmin = solve_rmin_legacy(mdp);
  const ReachAvoidSolution fast = solve_reach_avoid(mdp);
  ASSERT_EQ(fast.pmax.values.size(), legacy_pmax.values.size()) << label;
  for (std::size_t s = 0; s < legacy_pmax.values.size(); ++s) {
    EXPECT_NEAR(fast.pmax.values[s], legacy_pmax.values[s], 1e-7)
        << label << " pmax state " << s;
    if (std::isinf(legacy_rmin.values[s])) {
      EXPECT_TRUE(std::isinf(fast.rmin.values[s]))
          << label << " rmin state " << s;
    } else {
      EXPECT_NEAR(fast.rmin.values[s], legacy_rmin.values[s], 1e-6)
          << label << " rmin state " << s;
    }
  }
  // The shared tie-break rule (lowest action index within kTieEps) makes
  // the two paths' policies identical, not just equal in value.
  EXPECT_EQ(fast.pmax.chosen, legacy_pmax.chosen) << label;
  EXPECT_EQ(fast.rmin.chosen, legacy_rmin.chosen) << label;
}

TEST(SolverEquivalence, UniformForce) {
  expect_equivalent(fixture_mdp(uniform_force()), "uniform");
}

TEST(SolverEquivalence, DegradedForce) {
  expect_equivalent(fixture_mdp(degraded_force()), "degraded");
}

TEST(SolverEquivalence, ClusteredFaultForce) {
  expect_equivalent(fixture_mdp(clustered_fault_force()), "clustered");
}

TEST(SolverEquivalence, TieBreakPicksTheLowestActionIndex) {
  // Two byte-identical choices: an exact tie. Both solver paths must settle
  // on choice 0 (the lowest action index), pinning the shared rule.
  RoutingMdp mdp = make_mdp(2, {1});
  add_choice(mdp, 0, Action::kE, {{1, 0.5}, {0, 0.5}});
  add_choice(mdp, 0, Action::kN, {{1, 0.5}, {0, 0.5}});
  EXPECT_EQ(solve_pmax_legacy(mdp).chosen[0], 0);
  EXPECT_EQ(solve_rmin_legacy(mdp).chosen[0], 0);
  const ReachAvoidSolution fast = solve_reach_avoid(mdp);
  EXPECT_EQ(fast.pmax.chosen[0], 0);
  EXPECT_EQ(fast.rmin.chosen[0], 0);
}

}  // namespace
}  // namespace meda::core
