#include "core/synthesizer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "assay/benchmarks.hpp"
#include "core/scheduler.hpp"
#include "sim/simulated_chip.hpp"
#include "util/rng.hpp"

/// Incremental re-synthesis (Synthesizer::resynthesize): the warm path must
/// be observationally identical to Algorithm 2 from scratch — same strategy,
/// same values within solver tolerance — while the ResynthesisContext
/// lifecycle (prime, reuse, topology fallback, deadline invalidation)
/// behaves as documented. The scheduler-level test pins the
/// resyntheses_warm counter end to end.

namespace meda::core {
namespace {

constexpr int kGrid = 12;
constexpr int kBits = 3;

Rect chip() { return Rect{0, 0, kGrid - 1, kGrid - 1}; }

IntMatrix uniform_health(int level) {
  return IntMatrix(kGrid, kGrid, level);
}

assay::RoutingJob fixture_job() {
  assay::RoutingJob rj;
  rj.start = Rect::from_size(0, 4, 4, 4);
  rj.goal = Rect::from_size(8, 4, 4, 4);
  rj.hazard = chip();
  return rj;
}

std::map<Rect, Action> to_map(const Strategy& strategy) {
  return {strategy.begin(), strategy.end()};
}

void expect_same_result(const SynthesisResult& a, const SynthesisResult& b,
                        const char* label) {
  EXPECT_EQ(a.feasible, b.feasible) << label;
  EXPECT_EQ(to_map(a.strategy), to_map(b.strategy)) << label;
  if (std::isinf(a.expected_cycles) || std::isinf(b.expected_cycles)) {
    EXPECT_EQ(std::isinf(a.expected_cycles), std::isinf(b.expected_cycles))
        << label;
  } else {
    EXPECT_NEAR(a.expected_cycles, b.expected_cycles, 1e-6) << label;
  }
  EXPECT_NEAR(a.reach_probability, b.reach_probability, 1e-9) << label;
}

TEST(Resynthesize, ColdPrimeMatchesSynthesize) {
  const Synthesizer synth(chip());
  const IntMatrix health = uniform_health(5);
  ResynthesisContext ctx;
  const SynthesisResult incremental =
      synth.resynthesize(fixture_job(), health, kBits, ctx);
  const SynthesisResult reference =
      synth.synthesize(fixture_job(), health, kBits);
  expect_same_result(incremental, reference, "cold prime");
  EXPECT_FALSE(incremental.warm);
  EXPECT_TRUE(ctx.valid);
  EXPECT_EQ(ctx.anchor, fixture_job());
  EXPECT_EQ(ctx.health, health);
}

TEST(Resynthesize, WarmDeltaMatchesColdSynthesis) {
  const Synthesizer synth(chip());
  IntMatrix health = uniform_health(5);
  ResynthesisContext ctx;
  synth.resynthesize(fixture_job(), health, kBits, ctx);
  ASSERT_TRUE(ctx.valid);

  Rng rng(0x12e50001u);
  for (int step = 0; step < 6; ++step) {
    for (int i = rng.uniform_int(1, 4); i > 0; --i)
      health(rng.uniform_int(0, kGrid - 1), rng.uniform_int(0, kGrid - 1)) =
          rng.uniform_int(1, (1 << kBits) - 2);
    const SynthesisResult warm =
        synth.resynthesize(fixture_job(), health, kBits, ctx);
    EXPECT_TRUE(warm.warm) << "step " << step;
    EXPECT_TRUE(ctx.valid);
    const SynthesisResult cold =
        synth.synthesize(fixture_job(), health, kBits);
    expect_same_result(warm, cold, "warm delta");
  }
}

TEST(Resynthesize, ReanchoredStartStaysWarm) {
  const Synthesizer synth(chip());
  IntMatrix health = uniform_health(5);
  ResynthesisContext ctx;
  synth.resynthesize(fixture_job(), health, kBits, ctx);

  // The droplet advanced one cell east; the new start is a state the
  // retained model already explored, so the lineage keeps its warm path.
  assay::RoutingJob moved = fixture_job();
  moved.start = moved.start.shifted(1, 0);
  health(5, 5) = 3;
  const SynthesisResult warm = synth.resynthesize(moved, health, kBits, ctx);
  EXPECT_TRUE(warm.warm);
  expect_same_result(warm, synth.synthesize(moved, health, kBits),
                     "re-anchored");
}

TEST(Resynthesize, GoalChangeGoesCold) {
  const Synthesizer synth(chip());
  const IntMatrix health = uniform_health(5);
  ResynthesisContext ctx;
  synth.resynthesize(fixture_job(), health, kBits, ctx);

  assay::RoutingJob other = fixture_job();
  other.goal = Rect::from_size(4, 8, 4, 4);
  const SynthesisResult result =
      synth.resynthesize(other, health, kBits, ctx);
  EXPECT_FALSE(result.warm);
  EXPECT_TRUE(ctx.valid);  // re-primed for the new goal
  EXPECT_EQ(ctx.anchor, other);
}

TEST(Resynthesize, TopologyChangeGoesColdAndReprimes) {
  const Synthesizer synth(chip());
  IntMatrix health = uniform_health(5);
  ResynthesisContext ctx;
  synth.resynthesize(fixture_job(), health, kBits, ctx);

  // A dead wall kills whole frontiers: the delta is not expressible as an
  // in-place patch, so this synthesis must rebuild cold…
  for (int y = 0; y < kGrid; ++y) health(7, y) = 0;
  const SynthesisResult cold =
      synth.resynthesize(fixture_job(), health, kBits, ctx);
  EXPECT_FALSE(cold.warm);
  expect_same_result(cold, synth.synthesize(fixture_job(), health, kBits),
                     "topology cold");
  // …and re-prime the context: the next small delta goes warm again.
  ASSERT_TRUE(ctx.valid);
  health(2, 2) = 3;
  const SynthesisResult warm =
      synth.resynthesize(fixture_job(), health, kBits, ctx);
  EXPECT_TRUE(warm.warm);
  expect_same_result(warm, synth.synthesize(fixture_job(), health, kBits),
                     "re-primed");
}

TEST(Resynthesize, DeadlineExpiryInvalidatesTheContext) {
  // Prime with an unbounded synthesizer, then re-synthesize under a 1-sweep
  // budget: the warm attempt patches the retained model before the solver
  // gives up, so the context must be discarded wholesale.
  SynthesisConfig slow;
  const Synthesizer primer(chip(), slow);
  IntMatrix health = uniform_health(5);
  ResynthesisContext ctx;
  primer.resynthesize(fixture_job(), health, kBits, ctx);
  ASSERT_TRUE(ctx.valid);

  SynthesisConfig strict;
  strict.deadline_sweeps = 1;
  const Synthesizer bounded(chip(), strict);
  health(5, 5) = 2;
  const SynthesisResult result =
      bounded.resynthesize(fixture_job(), health, kBits, ctx);
  EXPECT_TRUE(result.deadline_expired);
  EXPECT_FALSE(result.feasible);
  EXPECT_FALSE(ctx.valid);
}

TEST(Resynthesize, IncrementalDisabledBypassesTheContext) {
  SynthesisConfig config;
  config.incremental = false;
  const Synthesizer synth(chip(), config);
  const IntMatrix health = uniform_health(5);
  ResynthesisContext ctx;
  const SynthesisResult result =
      synth.resynthesize(fixture_job(), health, kBits, ctx);
  EXPECT_FALSE(result.warm);
  EXPECT_FALSE(ctx.valid);  // never touched
  expect_same_result(result, synth.synthesize(fixture_job(), health, kBits),
                     "disabled");
}

TEST(Scheduler, CountsWarmResynthesesOnADegradingChip) {
  sim::SimulatedChipConfig config;
  config.chip.width = assay::kChipWidth;
  config.chip.height = assay::kChipHeight;
  config.chip.degradation = DegradationRange{0.5, 0.9, 60.0, 150.0};
  config.pre_wear_max = 150;
  config.faults.mode = FaultMode::kClustered;
  config.faults.faulty_fraction = 0.10;
  config.faults.fail_at_lo = 5;
  config.faults.fail_at_hi = 60;
  sim::SimulatedChip chip(config, Rng(4242));
  SchedulerConfig sched;
  sched.adaptive = true;
  sched.max_cycles = 3000;
  Scheduler scheduler(sched);
  const ExecutionStats stats = scheduler.run(chip, assay::cep());
  EXPECT_TRUE(stats.success) << stats.failure_reason;
  EXPECT_GT(stats.resyntheses, 0);
  // Health keeps drifting along each route, so at least part of the
  // re-syntheses ride the incremental warm path.
  EXPECT_GT(stats.resyntheses_warm, 0);
  // Warm solves happen only where a synthesis actually ran.
  EXPECT_LE(stats.resyntheses_warm, stats.synthesis_calls);
}

}  // namespace
}  // namespace meda::core
