#include "core/library_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "assay/benchmarks.hpp"
#include "core/scheduler.hpp"
#include "sim/experiments.hpp"
#include "sim/simulated_chip.hpp"
#include "util/check.hpp"

namespace meda::core {
namespace {

/// Builds a library by running the offline phase for COVID-RAT.
StrategyLibrary precomputed_library() {
  StrategyLibrary library;
  BiochipConfig chip;
  chip.width = assay::kChipWidth;
  chip.height = assay::kChipHeight;
  sim::precompute_offline_library(library, assay::covid_rat(), chip,
                                  SchedulerConfig{});
  return library;
}

TEST(LibraryIo, RoundTripsThroughAStream) {
  const StrategyLibrary original = precomputed_library();
  ASSERT_GT(original.size(), 0u);
  std::stringstream buffer;
  save_library(original, buffer);
  StrategyLibrary loaded;
  load_library(loaded, buffer);
  ASSERT_EQ(loaded.size(), original.size());
  const auto original_entries = original.entries();
  const auto loaded_entries = loaded.entries();
  for (std::size_t i = 0; i < original_entries.size(); ++i) {
    EXPECT_EQ(loaded_entries[i].start, original_entries[i].start);
    EXPECT_EQ(loaded_entries[i].goal, original_entries[i].goal);
    EXPECT_EQ(loaded_entries[i].hazard, original_entries[i].hazard);
    EXPECT_EQ(loaded_entries[i].digest, original_entries[i].digest);
    const SynthesisResult& a = *original_entries[i].result;
    const SynthesisResult& b = *loaded_entries[i].result;
    EXPECT_EQ(b.feasible, a.feasible);
    EXPECT_DOUBLE_EQ(b.expected_cycles, a.expected_cycles);
    EXPECT_DOUBLE_EQ(b.reach_probability, a.reach_probability);
    EXPECT_EQ(b.strategy.size(), a.strategy.size());
    for (const auto& [droplet, action] : a.strategy)
      EXPECT_EQ(b.strategy.action(droplet), action) << droplet.to_string();
  }
}

TEST(LibraryIo, LoadedLibraryServesASchedulerRun) {
  // The deployment flow: precompute offline, save, restart, load, run with
  // zero runtime synthesis.
  const std::string path = "/tmp/meda_library_io_test.medalib";
  {
    const StrategyLibrary library = precomputed_library();
    save_library_file(library, path);
  }
  StrategyLibrary loaded;
  load_library_file(loaded, path);
  std::remove(path.c_str());

  sim::SimulatedChipConfig config;
  config.chip.width = assay::kChipWidth;
  config.chip.height = assay::kChipHeight;
  sim::SimulatedChip chip(config, Rng(77));
  Scheduler scheduler(SchedulerConfig{}, &loaded);
  const ExecutionStats stats = scheduler.run(chip, assay::covid_rat());
  ASSERT_TRUE(stats.success) << stats.failure_reason;
  EXPECT_EQ(stats.synthesis_calls, 0);
  EXPECT_GT(stats.library_hits, 0);
}

TEST(LibraryIo, SerializesInfiniteExpectations) {
  StrategyLibrary library;
  assay::RoutingJob rj;
  rj.start = Rect::from_size(0, 0, 3, 3);
  rj.goal = Rect::from_size(8, 0, 3, 3);
  rj.hazard = Rect{0, 0, 11, 5};
  SynthesisResult infeasible;  // default: feasible=false, E=inf, p=0
  library.store(rj, 7, infeasible);
  std::stringstream buffer;
  save_library(library, buffer);
  EXPECT_NE(buffer.str().find(" inf "), std::string::npos);
  StrategyLibrary loaded;
  load_library(loaded, buffer);
  const SynthesisResult* entry = loaded.lookup(rj, 7);
  ASSERT_NE(entry, nullptr);
  EXPECT_FALSE(entry->feasible);
  EXPECT_TRUE(std::isinf(entry->expected_cycles));
}

TEST(LibraryIo, RejectsMalformedHeaders) {
  // A wrong header means the file is not a library at all: typed throw
  // (LibraryLoadError is-a PreconditionError, so pre-existing catch sites
  // keep working).
  StrategyLibrary library;
  std::stringstream bad_magic("notalib 1\n");
  EXPECT_THROW(load_library(library, bad_magic), LibraryLoadError);
  std::stringstream bad_version("medalib 9\n");
  EXPECT_THROW(load_library(library, bad_version), PreconditionError);
  EXPECT_THROW(load_library_file(library, "/nonexistent/lib"),
               LibraryLoadError);
}

TEST(LibraryIo, SkipsTruncatedEntryInsteadOfThrowing) {
  // Past a valid header, corruption is entry-granular: the torn entry is
  // skipped whole (nothing partially stored) and counted.
  StrategyLibrary library;
  std::stringstream truncated(
      "medalib 1\nentry 0 0 2 2 8 0 10 2 0 0 11 5 7 1 4");
  const LibraryLoadStats stats = load_library(library, truncated);
  EXPECT_EQ(stats.loaded, 0u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(library.size(), 0u);
}

TEST(LibraryIo, ResynchronizesPastGarbageAndBadEntries) {
  // A valid entry, then a garbled one, then another valid one: both valid
  // entries load, the garbled one is counted as rejected.
  StrategyLibrary good;
  assay::RoutingJob rj;
  rj.start = Rect::from_size(0, 0, 3, 3);
  rj.goal = Rect::from_size(4, 0, 3, 3);
  rj.hazard = Rect{0, 0, 9, 5};
  SynthesisResult r;
  r.feasible = true;
  r.expected_cycles = 4.0;
  r.reach_probability = 1.0;
  good.store(rj, 1, r);
  rj.goal = Rect::from_size(6, 0, 3, 3);
  good.store(rj, 2, r);
  std::stringstream buffer;
  save_library(good, buffer);
  const std::string text = buffer.str();
  const std::size_t second = text.find("entry", text.find("entry") + 1);
  ASSERT_NE(second, std::string::npos);
  const std::string corrupted = text.substr(0, second) +
                                "entry 0 0 2 2 WAT garbage bytes\n" +
                                text.substr(second);

  StrategyLibrary library;
  std::stringstream in(corrupted);
  const LibraryLoadStats stats = load_library(library, in);
  EXPECT_EQ(stats.loaded, 2u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(library.size(), 2u);
}

TEST(LibraryIo, RejectsAbsurdRowCounts) {
  // A garbled row count must not allocate/parse gigabytes: entries claiming
  // more rows than any real strategy are rejected outright.
  StrategyLibrary library;
  std::stringstream in(
      "medalib 1\nentry 0 0 2 2 4 0 6 2 0 0 9 5 7 1 10 1 999999999999\n");
  const LibraryLoadStats stats = load_library(library, in);
  EXPECT_EQ(stats.loaded, 0u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(library.size(), 0u);
}

TEST(LibraryIo, FuzzedTruncationNeverThrowsAndLoadsAPrefix) {
  // Chop a valid multi-entry file at every byte offset past the header:
  // the loader must never throw, never store a partial strategy, and the
  // loaded entries must be a prefix subset of the original file's.
  const StrategyLibrary original = precomputed_library();
  ASSERT_GE(original.size(), 2u);
  std::stringstream buffer;
  save_library(original, buffer);
  const std::string text = buffer.str();
  const std::size_t header_end = text.find('\n') + 1;

  for (std::size_t cut = header_end; cut <= text.size(); ++cut) {
    StrategyLibrary library;
    std::stringstream in(text.substr(0, cut));
    LibraryLoadStats stats;
    ASSERT_NO_THROW(stats = load_library(library, in)) << "cut=" << cut;
    EXPECT_EQ(stats.loaded, library.size()) << "cut=" << cut;
    EXPECT_LE(library.size(), original.size()) << "cut=" << cut;
    // Every loaded entry must exactly match an entry of the original
    // library — truncation can drop entries but never distort one.
    for (const StrategyLibrary::EntryView& view : library.entries()) {
      assay::RoutingJob job;
      job.start = view.start;
      job.goal = view.goal;
      job.hazard = view.hazard;
      const SynthesisResult* full = original.lookup(job, view.digest);
      ASSERT_NE(full, nullptr) << "cut=" << cut;
      ASSERT_EQ(view.result->strategy.size(), full->strategy.size())
          << "cut=" << cut;
      for (const auto& [droplet, action] : full->strategy)
        EXPECT_EQ(view.result->strategy.action(droplet), action)
            << "cut=" << cut << " droplet=" << droplet.to_string();
    }
  }
}

TEST(LibraryIo, LoadMergesWithExistingEntries) {
  StrategyLibrary library;
  assay::RoutingJob rj;
  rj.start = Rect::from_size(0, 0, 3, 3);
  rj.goal = Rect::from_size(4, 0, 3, 3);
  rj.hazard = Rect{0, 0, 9, 5};
  SynthesisResult r;
  r.feasible = true;
  r.expected_cycles = 4.0;
  library.store(rj, 1, r);

  StrategyLibrary other;
  rj.goal = Rect::from_size(6, 0, 3, 3);
  r.expected_cycles = 6.0;
  other.store(rj, 2, r);
  std::stringstream buffer;
  save_library(other, buffer);
  load_library(library, buffer);
  EXPECT_EQ(library.size(), 2u);
}

}  // namespace
}  // namespace meda::core
