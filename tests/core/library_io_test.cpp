#include "core/library_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "assay/benchmarks.hpp"
#include "core/scheduler.hpp"
#include "sim/experiments.hpp"
#include "sim/simulated_chip.hpp"
#include "util/check.hpp"

namespace meda::core {
namespace {

/// Builds a library by running the offline phase for COVID-RAT.
StrategyLibrary precomputed_library() {
  StrategyLibrary library;
  BiochipConfig chip;
  chip.width = assay::kChipWidth;
  chip.height = assay::kChipHeight;
  sim::precompute_offline_library(library, assay::covid_rat(), chip,
                                  SchedulerConfig{});
  return library;
}

TEST(LibraryIo, RoundTripsThroughAStream) {
  const StrategyLibrary original = precomputed_library();
  ASSERT_GT(original.size(), 0u);
  std::stringstream buffer;
  save_library(original, buffer);
  StrategyLibrary loaded;
  load_library(loaded, buffer);
  ASSERT_EQ(loaded.size(), original.size());
  const auto original_entries = original.entries();
  const auto loaded_entries = loaded.entries();
  for (std::size_t i = 0; i < original_entries.size(); ++i) {
    EXPECT_EQ(loaded_entries[i].start, original_entries[i].start);
    EXPECT_EQ(loaded_entries[i].goal, original_entries[i].goal);
    EXPECT_EQ(loaded_entries[i].hazard, original_entries[i].hazard);
    EXPECT_EQ(loaded_entries[i].digest, original_entries[i].digest);
    const SynthesisResult& a = *original_entries[i].result;
    const SynthesisResult& b = *loaded_entries[i].result;
    EXPECT_EQ(b.feasible, a.feasible);
    EXPECT_DOUBLE_EQ(b.expected_cycles, a.expected_cycles);
    EXPECT_DOUBLE_EQ(b.reach_probability, a.reach_probability);
    EXPECT_EQ(b.strategy.size(), a.strategy.size());
    for (const auto& [droplet, action] : a.strategy)
      EXPECT_EQ(b.strategy.action(droplet), action) << droplet.to_string();
  }
}

TEST(LibraryIo, LoadedLibraryServesASchedulerRun) {
  // The deployment flow: precompute offline, save, restart, load, run with
  // zero runtime synthesis.
  const std::string path = "/tmp/meda_library_io_test.medalib";
  {
    const StrategyLibrary library = precomputed_library();
    save_library_file(library, path);
  }
  StrategyLibrary loaded;
  load_library_file(loaded, path);
  std::remove(path.c_str());

  sim::SimulatedChipConfig config;
  config.chip.width = assay::kChipWidth;
  config.chip.height = assay::kChipHeight;
  sim::SimulatedChip chip(config, Rng(77));
  Scheduler scheduler(SchedulerConfig{}, &loaded);
  const ExecutionStats stats = scheduler.run(chip, assay::covid_rat());
  ASSERT_TRUE(stats.success) << stats.failure_reason;
  EXPECT_EQ(stats.synthesis_calls, 0);
  EXPECT_GT(stats.library_hits, 0);
}

TEST(LibraryIo, SerializesInfiniteExpectations) {
  StrategyLibrary library;
  assay::RoutingJob rj;
  rj.start = Rect::from_size(0, 0, 3, 3);
  rj.goal = Rect::from_size(8, 0, 3, 3);
  rj.hazard = Rect{0, 0, 11, 5};
  SynthesisResult infeasible;  // default: feasible=false, E=inf, p=0
  library.store(rj, 7, infeasible);
  std::stringstream buffer;
  save_library(library, buffer);
  EXPECT_NE(buffer.str().find(" inf "), std::string::npos);
  StrategyLibrary loaded;
  load_library(loaded, buffer);
  const SynthesisResult* entry = loaded.lookup(rj, 7);
  ASSERT_NE(entry, nullptr);
  EXPECT_FALSE(entry->feasible);
  EXPECT_TRUE(std::isinf(entry->expected_cycles));
}

TEST(LibraryIo, RejectsMalformedFiles) {
  StrategyLibrary library;
  std::stringstream bad_magic("notalib 1\n");
  EXPECT_THROW(load_library(library, bad_magic), PreconditionError);
  std::stringstream bad_version("medalib 9\n");
  EXPECT_THROW(load_library(library, bad_version), PreconditionError);
  std::stringstream truncated(
      "medalib 1\nentry 0 0 2 2 8 0 10 2 0 0 11 5 7 1 4");
  EXPECT_THROW(load_library(library, truncated), PreconditionError);
  EXPECT_THROW(load_library_file(library, "/nonexistent/lib"),
               PreconditionError);
}

TEST(LibraryIo, LoadMergesWithExistingEntries) {
  StrategyLibrary library;
  assay::RoutingJob rj;
  rj.start = Rect::from_size(0, 0, 3, 3);
  rj.goal = Rect::from_size(4, 0, 3, 3);
  rj.hazard = Rect{0, 0, 9, 5};
  SynthesisResult r;
  r.feasible = true;
  r.expected_cycles = 4.0;
  library.store(rj, 1, r);

  StrategyLibrary other;
  rj.goal = Rect::from_size(6, 0, 3, 3);
  r.expected_cycles = 6.0;
  other.store(rj, 2, r);
  std::stringstream buffer;
  save_library(other, buffer);
  load_library(library, buffer);
  EXPECT_EQ(library.size(), 2u);
}

}  // namespace
}  // namespace meda::core
