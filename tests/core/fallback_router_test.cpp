#include "core/fallback_router.hpp"

#include <gtest/gtest.h>

#include "model/action.hpp"
#include "util/check.hpp"

namespace meda::core {
namespace {

assay::RoutingJob straight_east(int cells, int droplet = 4) {
  assay::RoutingJob rj;
  rj.start = Rect::from_size(0, 4, droplet, droplet);
  rj.goal = Rect::from_size(cells, 4, droplet, droplet);
  rj.hazard = Rect{0, 0, 19, 19};
  return rj;
}

/// Walks the path strategy from rj.start, asserting it reaches the goal
/// within @p limit perfect pulls; returns the number of actions taken.
int walk(const Strategy& strategy, const assay::RoutingJob& rj,
         int limit = 200) {
  Rect pos = rj.start;
  int steps = 0;
  while (!rj.goal.contains(pos)) {
    const auto action = strategy.action(pos);
    if (!action.has_value() || steps >= limit) {
      ADD_FAILURE() << "path strategy dead-ends after " << steps << " steps";
      return steps;
    }
    pos = apply(*action, pos);
    ++steps;
  }
  return steps;
}

TEST(FallbackRouter, FindsTheStraightLineWithDoubleSteps) {
  const Rect chip{0, 0, 19, 19};
  const IntMatrix health(20, 20, 3);
  const assay::RoutingJob rj = straight_east(8);
  const FallbackResult r = fallback_route(rj, health, chip);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.path_length, 4);  // 8 cells east at 2 cells per double step
  EXPECT_EQ(walk(r.strategy, rj), 4);
  EXPECT_GT(r.expansions, 0);
}

TEST(FallbackRouter, RoutesAroundDeadCells) {
  const Rect chip{0, 0, 19, 19};
  IntMatrix health(20, 20, 3);
  // Wall with a 3-row gap at the top — just wide enough for the 3×3 droplet.
  for (int y = 3; y < 20; ++y) health(10, y) = 0;
  assay::RoutingJob rj;
  rj.start = Rect::from_size(2, 8, 3, 3);
  rj.goal = Rect::from_size(15, 8, 3, 3);
  rj.hazard = chip;
  const FallbackResult r = fallback_route(rj, health, chip);
  ASSERT_TRUE(r.feasible);
  // Direct gap is 13; the detour through the northern gap costs more.
  EXPECT_GT(r.path_length, (13 + 1) / 2);
  const int steps = walk(r.strategy, rj);
  EXPECT_EQ(steps, r.path_length);
}

TEST(FallbackRouter, ReportsInfeasibleAcrossAFullWall) {
  const Rect chip{0, 0, 19, 19};
  IntMatrix health(20, 20, 3);
  for (int y = 0; y < 20; ++y)
    for (int x = 10; x <= 11; ++x) health(x, y) = 0;
  assay::RoutingJob rj;
  rj.start = Rect::from_size(2, 8, 3, 3);
  rj.goal = Rect::from_size(15, 8, 3, 3);
  rj.hazard = chip;
  const FallbackResult r = fallback_route(rj, health, chip);
  EXPECT_FALSE(r.feasible);
  EXPECT_TRUE(r.strategy.empty());
}

TEST(FallbackRouter, ExpansionBudgetBoundsTheSearch) {
  const Rect chip{0, 0, 19, 19};
  const IntMatrix health(20, 20, 3);
  FallbackConfig config;
  config.max_expansions = 2;  // far too small to cross the chip
  const FallbackResult r =
      fallback_route(straight_east(14), health, chip, config);
  EXPECT_FALSE(r.feasible);
  EXPECT_LE(r.expansions, 2);
}

TEST(FallbackRouter, IsDeterministic) {
  const Rect chip{0, 0, 19, 19};
  IntMatrix health(20, 20, 3);
  for (int y = 5; y < 15; ++y) health(9, y) = 0;
  const assay::RoutingJob rj = straight_east(12, 3);
  const FallbackResult a = fallback_route(rj, health, chip);
  const FallbackResult b = fallback_route(rj, health, chip);
  ASSERT_TRUE(a.feasible);
  EXPECT_EQ(a.path_length, b.path_length);
  EXPECT_EQ(a.expansions, b.expansions);
  Rect pos = rj.start;
  while (!rj.goal.contains(pos)) {
    const auto action_a = a.strategy.action(pos);
    const auto action_b = b.strategy.action(pos);
    ASSERT_TRUE(action_a.has_value());
    ASSERT_EQ(*action_a, *action_b);
    pos = apply(*action_a, pos);
  }
}

TEST(FallbackRouter, CellsUnderTheDropletAreExemptFromHealthChecks) {
  // The droplet occludes its own cells from sensing; a "dead" reading under
  // the droplet must not strand it in place.
  const Rect chip{0, 0, 19, 19};
  IntMatrix health(20, 20, 3);
  const assay::RoutingJob rj = straight_east(6);
  for (int y = rj.start.ya; y <= rj.start.yb; ++y)
    for (int x = rj.start.xa; x <= rj.start.xb; ++x) health(x, y) = 0;
  const FallbackResult r = fallback_route(rj, health, chip);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(walk(r.strategy, rj), r.path_length);
}

TEST(FallbackRouter, RejectsMalformedInputs) {
  const Rect chip{0, 0, 19, 19};
  const IntMatrix health(20, 20, 3);
  assay::RoutingJob off_chip = straight_east(4);
  off_chip.start = Rect::from_size(18, 18, 4, 4);  // hangs off the chip
  EXPECT_THROW(fallback_route(off_chip, health, chip), PreconditionError);
  const IntMatrix small(10, 10, 3);
  EXPECT_THROW(fallback_route(straight_east(4), small, chip),
               PreconditionError);
  FallbackConfig config;
  config.max_expansions = 0;
  EXPECT_THROW(fallback_route(straight_east(4), health, chip, config),
               PreconditionError);
}

}  // namespace
}  // namespace meda::core
