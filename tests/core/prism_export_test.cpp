#include "core/prism_export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "model/outcomes.hpp"

namespace meda::core {
namespace {

RoutingMdp small_mdp() {
  assay::RoutingJob rj;
  rj.start = Rect::from_size(0, 0, 3, 3);
  rj.goal = Rect::from_size(4, 0, 3, 3);
  rj.hazard = Rect{0, 0, 6, 4};
  ActionRules rules;
  rules.enable_morphing = false;
  return build_routing_mdp(rj, DoubleMatrix(8, 6, 0.5), Rect{0, 0, 7, 5},
                           rules);
}

TEST(PrismExport, StatesFileListsEveryStateOnce) {
  const RoutingMdp mdp = small_mdp();
  std::ostringstream os;
  write_prism_states(mdp, os);
  std::istringstream is(os.str());
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "(xa,ya,xb,yb)");
  std::size_t rows = 0;
  while (std::getline(is, line)) {
    EXPECT_EQ(line.find(std::to_string(rows) + ":("), 0u) << line;
    ++rows;
  }
  EXPECT_EQ(rows, mdp.state_count());
  // The sink carries the out-of-band tuple.
  EXPECT_NE(os.str().find(std::to_string(mdp.hazard_sink()) +
                          ":(-1,-1,-1,-1)"),
            std::string::npos);
}

TEST(PrismExport, TransitionsHeaderMatchesBody) {
  const RoutingMdp mdp = small_mdp();
  std::ostringstream os;
  write_prism_transitions(mdp, os);
  std::istringstream is(os.str());
  std::size_t states = 0, choices = 0, transitions = 0;
  is >> states >> choices >> transitions;
  EXPECT_EQ(states, mdp.state_count());
  std::size_t rows = 0;
  std::string line;
  std::getline(is, line);  // rest of header line
  while (std::getline(is, line))
    if (!line.empty()) ++rows;
  EXPECT_EQ(rows, transitions);
}

TEST(PrismExport, TransitionRowsAreStochasticPerChoice) {
  const RoutingMdp mdp = small_mdp();
  std::ostringstream os;
  write_prism_transitions(mdp, os);
  std::istringstream is(os.str());
  std::string header;
  std::getline(is, header);
  // Accumulate probability per (state, choice).
  std::map<std::pair<long, long>, double> mass;
  long s, c, t;
  double p;
  std::string action;
  while (is >> s >> c >> t >> p >> action) {
    EXPECT_GT(p, 0.0);
    EXPECT_LE(p, 1.0);
    mass[{s, c}] += p;
  }
  EXPECT_FALSE(mass.empty());
  for (const auto& [key, total] : mass)
    EXPECT_NEAR(total, 1.0, 1e-9)
        << "state " << key.first << " choice " << key.second;
}

TEST(PrismExport, EveryStateHasAtLeastOneChoice) {
  // PRISM's explicit importer rejects deadlocked states; absorbing states
  // must carry self-loops.
  const RoutingMdp mdp = small_mdp();
  std::ostringstream os;
  write_prism_transitions(mdp, os);
  std::istringstream is(os.str());
  std::string header;
  std::getline(is, header);
  std::vector<bool> has_choice(mdp.state_count(), false);
  long s, c, t;
  double p;
  std::string action;
  while (is >> s >> c >> t >> p >> action)
    has_choice[static_cast<std::size_t>(s)] = true;
  for (std::size_t i = 0; i < has_choice.size(); ++i)
    EXPECT_TRUE(has_choice[i]) << "state " << i;
}

TEST(PrismExport, LabelsMarkInitGoalHazard) {
  const RoutingMdp mdp = small_mdp();
  std::ostringstream os;
  write_prism_labels(mdp, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("0=\"init\""), std::string::npos);
  EXPECT_NE(text.find("2=\"goal\""), std::string::npos);
  EXPECT_NE(text.find("3=\"hazard\""), std::string::npos);
  EXPECT_NE(text.find(std::to_string(mdp.start) + ": 0"),
            std::string::npos);
  EXPECT_NE(text.find(std::to_string(mdp.hazard_sink()) + ": 3"),
            std::string::npos);
  // Exactly one goal state in this model.
  std::size_t goal_rows = 0;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line))
    if (line.size() > 2 && line.substr(line.size() - 2) == " 2") ++goal_rows;
  EXPECT_EQ(goal_rows, 1u);
}

TEST(PrismExport, PropertiesEncodeThePapersQueries) {
  std::ostringstream os;
  write_prism_properties(os);
  const std::string props = os.str();
  EXPECT_NE(props.find("Pmax=? [ !\"hazard\" U \"goal\" ];"),
            std::string::npos);
  EXPECT_NE(props.find("Rmin=? [ F \"goal\" ];"), std::string::npos);
}

TEST(PrismExport, WritesAllFourFiles) {
  const RoutingMdp mdp = small_mdp();
  const std::string base = "/tmp/meda_prism_export_test";
  export_prism_model(mdp, base);
  for (const char* ext : {".sta", ".tra", ".lab", ".props"}) {
    std::ifstream in(base + ext);
    EXPECT_TRUE(in.is_open()) << ext;
    std::string first;
    std::getline(in, first);
    EXPECT_FALSE(first.empty()) << ext;
    std::remove((base + ext).c_str());
  }
}

}  // namespace
}  // namespace meda::core
