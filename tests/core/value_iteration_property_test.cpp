// Property tests cross-validating the value-iteration engine on random
// routing-shaped MDPs:
//  - the extracted optimal policy's exact value (dense linear solve of the
//    induced Markov chain) equals the VI fixed point;
//  - no single-choice deviation improves on the reported values (Bellman
//    optimality);
//  - Pmax values are consistent with Rmin feasibility.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/value_iteration.hpp"
#include "util/rng.hpp"

namespace meda::core {
namespace {

/// Dense Gaussian elimination with partial pivoting: solves A·x = b.
std::vector<double> solve_linear(std::vector<std::vector<double>> a,
                                 std::vector<double> b) {
  const std::size_t n = b.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row)
      if (std::abs(a[row][col]) > std::abs(a[pivot][col])) pivot = row;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    EXPECT_GT(std::abs(a[col][col]), 1e-12) << "singular system";
    for (std::size_t row = col + 1; row < n; ++row) {
      const double f = a[row][col] / a[col][col];
      for (std::size_t k = col; k < n; ++k) a[row][k] -= f * a[col][k];
      b[row] -= f * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t row = n; row-- > 0;) {
    double acc = b[row];
    for (std::size_t k = row + 1; k < n; ++k) acc -= a[row][k] * x[k];
    x[row] = acc / a[row][row];
  }
  return x;
}

/// Random MDP with one goal state and a hazard sink; choices have 2-3
/// successors including (sometimes) a self-loop and (rarely) the sink.
RoutingMdp random_mdp(Rng& rng, std::size_t states) {
  RoutingMdp mdp;
  mdp.droplets.resize(states);
  for (std::size_t i = 0; i < states; ++i)
    mdp.droplets[i] = Rect::from_size(static_cast<int>(i), 0, 1, 1);
  mdp.choices.resize(states);
  mdp.is_goal.assign(states, false);
  mdp.is_goal[states - 1] = true;
  mdp.start = 0;
  const auto sink = static_cast<std::uint32_t>(states);

  for (std::size_t s = 0; s + 1 < states; ++s) {
    const int num_choices = rng.uniform_int(1, 3);
    for (int c = 0; c < num_choices; ++c) {
      Choice choice;
      choice.action = static_cast<Action>(rng.uniform_int(0, 19));
      // Forward-biased successors keep the goal reachable.
      std::vector<std::uint32_t> targets;
      targets.push_back(static_cast<std::uint32_t>(
          rng.uniform_int(static_cast<int>(s) + 1,
                          static_cast<int>(states) - 1)));
      if (rng.bernoulli(0.6))
        targets.push_back(static_cast<std::uint32_t>(s));  // self-loop
      if (rng.bernoulli(0.3))
        targets.push_back(static_cast<std::uint32_t>(
            rng.uniform_int(0, static_cast<int>(states) - 1)));
      if (rng.bernoulli(0.15)) targets.push_back(sink);
      std::vector<double> weights(targets.size());
      double total = 0.0;
      for (double& w : weights) {
        w = rng.uniform(0.1, 1.0);
        total += w;
      }
      for (std::size_t i = 0; i < targets.size(); ++i)
        choice.transitions.push_back(
            Transition{targets[i], weights[i] / total});
      mdp.choices[s].push_back(std::move(choice));
    }
  }
  return mdp;
}

/// Exact expected-cycles of the chosen policy via linear solve, restricted
/// to states with finite VI value.
std::vector<double> exact_policy_cost(const RoutingMdp& mdp,
                                      const Solution& sol) {
  const std::size_t n = mdp.droplets.size();
  std::vector<std::vector<double>> a(n, std::vector<double>(n, 0.0));
  std::vector<double> b(n, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    a[s][s] = 1.0;
    if (mdp.is_goal[s] || sol.chosen[s] < 0) continue;  // J = 0 or excluded
    const Choice& choice =
        mdp.choices[s][static_cast<std::size_t>(sol.chosen[s])];
    b[s] = 1.0;
    for (const Transition& t : choice.transitions) {
      if (t.target < n) a[s][t.target] -= t.probability;
      // sink contributes nothing (cost accounted as infeasible elsewhere)
    }
  }
  return solve_linear(std::move(a), std::move(b));
}

class RandomMdpTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomMdpTest, RminMatchesExactPolicyEvaluation) {
  Rng rng(1234 + static_cast<std::uint64_t>(GetParam()));
  const RoutingMdp mdp = random_mdp(rng, 12 + GetParam() % 9);
  const Solution sol = solve_rmin(mdp);
  ASSERT_TRUE(sol.converged);
  // Exact policy evaluation only over almost-surely-winning states whose
  // chosen policy never leaves the winning region (guaranteed by solve_rmin
  // choice admissibility).
  bool any_finite = false;
  for (std::size_t s = 0; s < mdp.droplets.size(); ++s)
    any_finite |= std::isfinite(sol.values[s]) && !mdp.is_goal[s];
  if (!any_finite) return;  // degenerate instance
  const std::vector<double> exact = exact_policy_cost(mdp, sol);
  for (std::size_t s = 0; s < mdp.droplets.size(); ++s) {
    if (!std::isfinite(sol.values[s])) continue;
    EXPECT_NEAR(sol.values[s], exact[s], 1e-5) << "state " << s;
  }
}

TEST_P(RandomMdpTest, RminSatisfiesBellmanOptimality) {
  Rng rng(777 + static_cast<std::uint64_t>(GetParam()));
  const RoutingMdp mdp = random_mdp(rng, 10 + GetParam() % 7);
  const Solution sol = solve_rmin(mdp);
  for (std::size_t s = 0; s < mdp.droplets.size(); ++s) {
    if (mdp.is_goal[s] || !std::isfinite(sol.values[s])) continue;
    // The reported value must be <= the one-step lookahead of EVERY
    // admissible choice, and equal for the chosen one.
    for (const Choice& choice : mdp.choices[s]) {
      double rest = 0.0, self = 0.0;
      bool admissible = true;
      for (const Transition& t : choice.transitions) {
        if (t.target == s) {
          self += t.probability;
        } else if (t.target < mdp.droplets.size() &&
                   std::isfinite(sol.values[t.target])) {
          rest += t.probability * sol.values[t.target];
        } else {
          admissible = false;  // leads outside the winning region
          break;
        }
      }
      if (!admissible || self >= 1.0 - 1e-12) continue;
      const double lookahead = (1.0 + rest) / (1.0 - self);
      EXPECT_LE(sol.values[s], lookahead + 1e-6) << "state " << s;
    }
  }
}

TEST_P(RandomMdpTest, PmaxBoundsAndConsistencyWithRmin) {
  Rng rng(4242 + static_cast<std::uint64_t>(GetParam()));
  const RoutingMdp mdp = random_mdp(rng, 14);
  const Solution pmax = solve_pmax(mdp);
  const Solution rmin = solve_rmin(mdp);
  for (std::size_t s = 0; s < mdp.droplets.size(); ++s) {
    EXPECT_GE(pmax.values[s], -1e-12);
    EXPECT_LE(pmax.values[s], 1.0 + 1e-12);
    // Finite expected cycles ⟹ the goal is almost-surely reachable.
    if (std::isfinite(rmin.values[s]) && !mdp.is_goal[s]) {
      EXPECT_NEAR(pmax.values[s], 1.0, 1e-6) << "state " << s;
    }
    // Pmax < 1 ⟹ Rmin must be ∞ (PRISM reward semantics).
    if (pmax.values[s] < 1.0 - 1e-6) {
      EXPECT_TRUE(std::isinf(rmin.values[s])) << "state " << s;
    }
  }
}

TEST_P(RandomMdpTest, PmaxMatchesExactPolicyEvaluation) {
  Rng rng(31415 + static_cast<std::uint64_t>(GetParam()));
  const RoutingMdp mdp = random_mdp(rng, 12);
  const Solution sol = solve_pmax(mdp);
  // Exact reach probability of the chosen policy: V = P_π V with V(goal)=1.
  const std::size_t n = mdp.droplets.size();
  std::vector<std::vector<double>> a(n, std::vector<double>(n, 0.0));
  std::vector<double> b(n, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    a[s][s] = 1.0;
    if (mdp.is_goal[s]) {
      b[s] = 1.0;
      continue;
    }
    if (sol.chosen[s] < 0) continue;  // V = 0 (no choice)
    const Choice& choice =
        mdp.choices[s][static_cast<std::size_t>(sol.chosen[s])];
    for (const Transition& t : choice.transitions)
      if (t.target < n) a[s][t.target] -= t.probability;
  }
  const std::vector<double> exact = solve_linear(std::move(a), std::move(b));
  for (std::size_t s = 0; s < n; ++s)
    EXPECT_NEAR(sol.values[s], exact[s], 1e-5) << "state " << s;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMdpTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace meda::core
