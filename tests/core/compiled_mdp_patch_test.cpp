#include "core/compiled_mdp.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/mdp.hpp"
#include "core/synthesizer.hpp"
#include "model/outcomes.hpp"
#include "util/rng.hpp"

/// In-place health patching of a CompiledMdp (patch_compiled_mdp): over
/// randomized health-delta sequences a topology-preserving patch must leave
/// the model byte-identical to a fresh compile under the new force, and any
/// delta that adds or removes outcomes (a frontier dying outright, a dead
/// cell reviving — the quarantine/parole transitions) must abort so the
/// caller rebuilds cold.

namespace meda::core {
namespace {

constexpr int kGrid = 12;
constexpr int kBits = 3;
constexpr int kFull = (1 << kBits) - 1;  // healthiest sensed level

Rect chip() { return Rect{0, 0, kGrid - 1, kGrid - 1}; }

IntMatrix uniform_health(int level) {
  return IntMatrix(kGrid, kGrid, level);
}

DoubleMatrix force_of(const IntMatrix& health) {
  return force_from_health(health, kBits, HealthEstimator::kScaled);
}

assay::RoutingJob fixture_job() {
  assay::RoutingJob rj;
  rj.start = Rect::from_size(0, 4, 4, 4);
  rj.goal = Rect::from_size(8, 4, 4, 4);
  rj.hazard = chip();
  return rj;
}

struct CompiledPair {
  CompiledMdp mdp;
  CompiledGeometry geometry;
};

CompiledPair compile_fixture(const DoubleMatrix& force,
                             double lambda = 0.0) {
  const RoutingMdp mdp = build_routing_mdp(fixture_job(), force, chip(),
                                           ActionRules{}, lambda);
  return {compile_mdp(mdp), compile_geometry(mdp)};
}

/// Exact (bitwise) equality of every solver-facing array.
void expect_byte_equivalent(const CompiledMdp& patched,
                            const CompiledMdp& fresh, const char* label) {
  EXPECT_EQ(patched.num_droplet_states, fresh.num_droplet_states) << label;
  EXPECT_EQ(patched.choice_offset, fresh.choice_offset) << label;
  EXPECT_EQ(patched.trans_offset, fresh.trans_offset) << label;
  EXPECT_EQ(patched.target, fresh.target) << label;
  EXPECT_EQ(patched.probability, fresh.probability) << label;
  EXPECT_EQ(patched.inv_one_minus_q, fresh.inv_one_minus_q) << label;
  EXPECT_EQ(patched.cost, fresh.cost) << label;
  EXPECT_EQ(patched.is_goal, fresh.is_goal) << label;
  EXPECT_EQ(patched.sweep_order, fresh.sweep_order) << label;
  EXPECT_EQ(patched.pred_offset, fresh.pred_offset) << label;
  EXPECT_EQ(patched.pred_state, fresh.pred_state) << label;
}

/// Perturbs @p count random cells to levels in [1, kFull-1]: strictly
/// positive (no cell dies) and strictly below full health (no frontier hits
/// probability 1), so the outcome set — and hence the topology — is stable.
std::vector<Vec2i> perturb(Rng& rng, IntMatrix& health, int count) {
  IntMatrix before = health;
  for (int i = 0; i < count; ++i) {
    const int x = rng.uniform_int(0, kGrid - 1);
    const int y = rng.uniform_int(0, kGrid - 1);
    health(x, y) = rng.uniform_int(1, kFull - 1);
  }
  return health_delta_cells(before, health);
}

TEST(HealthDeltaCells, ReportsChangedCellsRowMajor) {
  IntMatrix before = uniform_health(5);
  IntMatrix after = before;
  after(7, 2) = 3;
  after(1, 2) = 4;
  after(4, 9) = 0;
  const std::vector<Vec2i> delta = health_delta_cells(before, after);
  ASSERT_EQ(delta.size(), 3u);
  EXPECT_EQ(delta[0], (Vec2i{1, 2}));  // ascending y, then x
  EXPECT_EQ(delta[1], (Vec2i{7, 2}));
  EXPECT_EQ(delta[2], (Vec2i{4, 9}));
  EXPECT_TRUE(health_delta_cells(before, before).empty());
}

TEST(PatchCompiledMdp, EmptyDeltaIsANoOp) {
  const IntMatrix health = uniform_health(5);
  CompiledPair c = compile_fixture(force_of(health));
  const CompiledMdp before = c.mdp;
  const MdpPatch patch = patch_compiled_mdp(c.mdp, c.geometry,
                                            force_of(health), chip(), chip(),
                                            {});
  EXPECT_TRUE(patch.patched);
  EXPECT_TRUE(patch.dirty_states.empty());
  EXPECT_EQ(patch.states_rescanned, 0u);
  expect_byte_equivalent(c.mdp, before, "noop");
}

TEST(PatchCompiledMdp, RandomDeltaSequencesMatchFreshCompiles) {
  Rng rng(0x5eed0001u);
  for (int seq = 0; seq < 10; ++seq) {
    IntMatrix health = uniform_health(5);
    CompiledPair c = compile_fixture(force_of(health));
    for (int step = 0; step < 4; ++step) {
      const std::vector<Vec2i> delta =
          perturb(rng, health, rng.uniform_int(1, 5));
      const DoubleMatrix force = force_of(health);
      const MdpPatch patch = patch_compiled_mdp(c.mdp, c.geometry, force,
                                                chip(), chip(), delta);
      ASSERT_TRUE(patch.patched) << "seq " << seq << " step " << step;
      const CompiledPair fresh = compile_fixture(force);
      expect_byte_equivalent(c.mdp, fresh.mdp, "random delta");
      // Dirty states come out ascending (the warm solver's seed contract)
      // and each one was actually rescanned.
      EXPECT_TRUE(std::is_sorted(patch.dirty_states.begin(),
                                 patch.dirty_states.end()));
      EXPECT_LE(patch.dirty_states.size(), patch.states_rescanned);
    }
  }
}

TEST(PatchCompiledMdp, WearCostDeltasMatchFreshCompiles) {
  constexpr double kLambda = 0.3;
  Rng rng(0x5eed0002u);
  for (int seq = 0; seq < 5; ++seq) {
    IntMatrix health = uniform_health(5);
    CompiledPair c = compile_fixture(force_of(health), kLambda);
    for (int step = 0; step < 3; ++step) {
      const std::vector<Vec2i> delta =
          perturb(rng, health, rng.uniform_int(1, 4));
      const DoubleMatrix force = force_of(health);
      const MdpPatch patch = patch_compiled_mdp(c.mdp, c.geometry, force,
                                                chip(), chip(), delta,
                                                kLambda);
      ASSERT_TRUE(patch.patched) << "seq " << seq << " step " << step;
      const CompiledPair fresh = compile_fixture(force, kLambda);
      expect_byte_equivalent(c.mdp, fresh.mdp, "wear delta");
    }
  }
}

TEST(PatchCompiledMdp, SingleDeadCellInAWideFrontierStaysPatchable) {
  // One quarantined cell inside a 4-cell frontier leaves the mean force
  // positive: every outcome keeps probability > 0, so the topology holds
  // and the patch must still reproduce a fresh compile exactly.
  IntMatrix health = uniform_health(5);
  CompiledPair c = compile_fixture(force_of(health));
  IntMatrix before = health;
  health(6, 5) = 0;
  const DoubleMatrix force = force_of(health);
  const MdpPatch patch =
      patch_compiled_mdp(c.mdp, c.geometry, force, chip(), chip(),
                         health_delta_cells(before, health));
  ASSERT_TRUE(patch.patched);
  EXPECT_FALSE(patch.dirty_states.empty());
  expect_byte_equivalent(c.mdp, compile_fixture(force).mdp, "single dead");
}

TEST(PatchCompiledMdp, DeadFrontierAbortsThePatch) {
  // Quarantining a full droplet-height column kills entire frontiers: move
  // outcomes through it drop to probability 0 and vanish from the outcome
  // set, which a topology-preserving patch cannot express.
  IntMatrix health = uniform_health(5);
  CompiledPair c = compile_fixture(force_of(health));
  IntMatrix before = health;
  for (int y = 0; y < kGrid; ++y) health(7, y) = 0;
  const MdpPatch patch =
      patch_compiled_mdp(c.mdp, c.geometry, force_of(health), chip(), chip(),
                         health_delta_cells(before, health));
  EXPECT_FALSE(patch.patched);
  EXPECT_TRUE(patch.dirty_states.empty());
}

TEST(PatchCompiledMdp, RevivedFrontierAbortsThePatch) {
  // Parole of a dead wall: the model was built without the outcomes (and
  // possibly without the states) behind it, so reviving the cells must
  // force a cold recompile rather than a partial patch.
  IntMatrix walled = uniform_health(5);
  for (int y = 0; y < kGrid; ++y) walled(7, y) = 0;
  CompiledPair c = compile_fixture(force_of(walled));
  IntMatrix healed = walled;
  for (int y = 0; y < kGrid; ++y) healed(7, y) = 5;
  const MdpPatch patch =
      patch_compiled_mdp(c.mdp, c.geometry, force_of(healed), chip(), chip(),
                         health_delta_cells(walled, healed));
  EXPECT_FALSE(patch.patched);
  EXPECT_TRUE(patch.dirty_states.empty());
}

TEST(PatchCompiledMdp, FullHealthTransitionAbortsThePatch) {
  // Raising a frontier to full health drives its success probability to 1:
  // the failure self-loop still folds into q, but a double move's
  // intermediate outcome (s1·(1−s2)) vanishes — topology again.
  IntMatrix health = uniform_health(5);
  CompiledPair c = compile_fixture(force_of(health));
  IntMatrix before = health;
  for (int y = 0; y < kGrid; ++y)
    for (int x = 4; x <= 6; ++x) health(x, y) = kFull;
  const MdpPatch patch =
      patch_compiled_mdp(c.mdp, c.geometry, force_of(health), chip(), chip(),
                         health_delta_cells(before, health));
  EXPECT_FALSE(patch.patched);
}

}  // namespace
}  // namespace meda::core
