#include "core/synthesizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "model/outcomes.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"

namespace meda::core {
namespace {

SynthesisConfig no_morph_config() {
  SynthesisConfig config;
  config.rules.enable_morphing = false;
  return config;
}

assay::RoutingJob straight_east(int cells, int droplet = 4) {
  assay::RoutingJob rj;
  rj.start = Rect::from_size(0, 4, droplet, droplet);
  rj.goal = Rect::from_size(cells, 4, droplet, droplet);
  rj.hazard = Rect{0, 0, 29, 29};
  return rj;
}

TEST(Synthesizer, FullHealthShortestPathUsesDoubleSteps) {
  const Synthesizer synth(Rect{0, 0, 29, 29}, no_morph_config());
  const SynthesisResult r = synth.synthesize_with_force(
      straight_east(8), full_health_force(30, 30));
  EXPECT_TRUE(r.feasible);
  EXPECT_NEAR(r.expected_cycles, 4.0, 1e-9);  // 8 cells / 2 per cycle
  EXPECT_NEAR(r.reach_probability, 1.0, 1e-9);
  EXPECT_EQ(r.strategy.action(Rect::from_size(0, 4, 4, 4)), Action::kEE);
}

TEST(Synthesizer, SmallDropletCannotDoubleStep) {
  // A 3×3 droplet fails g_EE (w < 4): 8 single steps.
  const Synthesizer synth(Rect{0, 0, 29, 29}, no_morph_config());
  const SynthesisResult r = synth.synthesize_with_force(
      straight_east(8, 3), full_health_force(30, 30));
  EXPECT_NEAR(r.expected_cycles, 8.0, 1e-9);
}

TEST(Synthesizer, DiagonalRouteUsesOrdinals) {
  assay::RoutingJob rj;
  rj.start = Rect::from_size(0, 0, 3, 3);
  rj.goal = Rect::from_size(6, 6, 3, 3);
  rj.hazard = Rect{0, 0, 19, 19};
  const Synthesizer synth(Rect{0, 0, 19, 19}, no_morph_config());
  const SynthesisResult r =
      synth.synthesize_with_force(rj, full_health_force(20, 20));
  EXPECT_NEAR(r.expected_cycles, 6.0, 1e-9);  // 6 diagonal moves
  EXPECT_EQ(r.strategy.action(rj.start), Action::kNE);
}

TEST(Synthesizer, RoutesAroundADeadWall) {
  // A dead wall with a gap: the strategy must detour through the gap.
  const Rect chip{0, 0, 19, 19};
  DoubleMatrix force = full_health_force(20, 20);
  for (int y = 4; y < 20; ++y) force(10, y) = 0.0;  // wall above y=4
  assay::RoutingJob rj;
  rj.start = Rect::from_size(2, 8, 3, 3);
  rj.goal = Rect::from_size(15, 8, 3, 3);
  rj.hazard = chip;
  const Synthesizer synth(chip, no_morph_config());
  const SynthesisResult r = synth.synthesize_with_force(rj, force);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.reach_probability, 1.0, 1e-9);
  // Direct distance is 13 columns; the detour through the southern gap
  // costs strictly more cycles than the unobstructed route.
  const SynthesisResult open =
      synth.synthesize_with_force(rj, full_health_force(20, 20));
  EXPECT_GT(r.expected_cycles, open.expected_cycles);
  EXPECT_TRUE(std::isfinite(r.expected_cycles));
}

TEST(Synthesizer, FullyBlockedJobIsInfeasible) {
  const Rect chip{0, 0, 19, 19};
  DoubleMatrix force = full_health_force(20, 20);
  for (int y = 0; y < 20; ++y) force(10, y) = 0.0;  // full-height dead wall
  assay::RoutingJob rj;
  rj.start = Rect::from_size(2, 8, 3, 3);
  rj.goal = Rect::from_size(15, 8, 3, 3);
  rj.hazard = chip;
  const Synthesizer synth(chip, no_morph_config());
  const SynthesisResult r = synth.synthesize_with_force(rj, force);
  EXPECT_FALSE(r.feasible);
  EXPECT_TRUE(std::isinf(r.expected_cycles));
  EXPECT_NEAR(r.reach_probability, 0.0, 1e-9);
  EXPECT_TRUE(r.strategy.empty());
}

TEST(Synthesizer, PrefersHealthyDetourOverWeakShortcut) {
  // The direct corridor is weak (force 0.04 → ~25 cycles per step); a
  // healthy detour 4 rows south wins on expected cycles.
  const Rect chip{0, 0, 19, 19};
  DoubleMatrix force = full_health_force(20, 20);
  for (int x = 6; x <= 12; ++x)
    for (int y = 6; y <= 12; ++y) force(x, y) = 0.04;
  assay::RoutingJob rj;
  rj.start = Rect::from_size(2, 8, 3, 3);
  rj.goal = Rect::from_size(15, 8, 3, 3);
  rj.hazard = chip;
  const Synthesizer synth(chip, no_morph_config());
  const SynthesisResult r = synth.synthesize_with_force(rj, force);
  ASSERT_TRUE(r.feasible);
  // Weak-corridor crossing would cost >> 30 expected cycles; the detour
  // stays close to the unobstructed optimum.
  EXPECT_LT(r.expected_cycles, 30.0);
}

TEST(Synthesizer, SynthesizeFromHealthMatchesScaledForce) {
  const Rect chip{0, 0, 19, 19};
  IntMatrix health(20, 20, 3);
  for (int y = 0; y < 20; ++y) health(9, y) = 1;
  const Synthesizer synth(chip, no_morph_config());
  const SynthesisResult via_health =
      synth.synthesize(straight_east(10, 3), health, 2);
  const SynthesisResult via_force = synth.synthesize_with_force(
      straight_east(10, 3),
      force_from_health(health, 2, HealthEstimator::kScaled));
  EXPECT_NEAR(via_health.expected_cycles, via_force.expected_cycles, 1e-9);
  EXPECT_EQ(via_health.stats.states, via_force.stats.states);
}

TEST(Synthesizer, PmaxQueryExtractsLexicographically) {
  // φ_p alone ties everywhere on a healthy chip; the extracted strategy
  // breaks ties by expected cycles, so it still routes optimally.
  SynthesisConfig config = no_morph_config();
  config.query = Query::kPmaxReachability;
  const Synthesizer synth(Rect{0, 0, 29, 29}, config);
  const SynthesisResult r = synth.synthesize_with_force(
      straight_east(8), full_health_force(30, 30));
  EXPECT_TRUE(r.feasible);
  EXPECT_NEAR(r.reach_probability, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.expected_cycles, 4.0);
  EXPECT_EQ(r.strategy.action(Rect::from_size(0, 4, 4, 4)), Action::kEE);
}

TEST(Synthesizer, StartInsideGoalIsTriviallyFeasible) {
  assay::RoutingJob rj;
  rj.start = Rect::from_size(5, 5, 3, 3);
  rj.goal = Rect{4, 4, 8, 8};
  rj.hazard = Rect{0, 0, 19, 19};
  const Synthesizer synth(Rect{0, 0, 19, 19}, no_morph_config());
  const SynthesisResult r =
      synth.synthesize_with_force(rj, full_health_force(20, 20));
  EXPECT_TRUE(r.feasible);
  EXPECT_NEAR(r.expected_cycles, 0.0, 1e-12);
}

TEST(Synthesizer, StrategyCoversAllNonGoalReachableStates) {
  const Rect chip{0, 0, 19, 19};
  DoubleMatrix force(20, 20, 0.5);  // branching outcomes everywhere
  assay::RoutingJob rj;
  rj.start = Rect::from_size(0, 0, 4, 4);
  rj.goal = Rect::from_size(10, 10, 4, 4);
  rj.hazard = Rect{0, 0, 15, 15};
  const Synthesizer synth(chip, no_morph_config());
  const SynthesisResult r = synth.synthesize_with_force(rj, force);
  ASSERT_TRUE(r.feasible);
  const RoutingMdp mdp =
      build_routing_mdp(rj, force, chip, no_morph_config().rules);
  for (std::size_t s = 0; s < mdp.droplets.size(); ++s) {
    if (!mdp.is_goal[s]) {
      EXPECT_TRUE(r.strategy.action(mdp.droplets[s]).has_value())
          << mdp.droplets[s].to_string();
    }
  }
}

/// Follows a strategy's success outcomes deterministically from the start,
/// returning the visited droplet rectangles (cap at 100 steps).
std::vector<Rect> greedy_walk(const Strategy& strategy, const Rect& start,
                              const Rect& goal) {
  std::vector<Rect> path = {start};
  Rect pos = start;
  for (int i = 0; i < 100 && !goal.contains(pos); ++i) {
    const auto action = strategy.action(pos);
    if (!action) break;
    pos = apply(*action, pos);
    path.push_back(pos);
  }
  return path;
}

TEST(Synthesizer, WearPenaltyReroutesAroundWornCells) {
  // A worn (but fully usable) band crosses the straight corridor. The pure
  // cycle-count query pushes through it; the wear-aware query with a large
  // λ detours around it even though that costs extra cycles.
  const Rect chip{0, 0, 19, 19};
  IntMatrix health(20, 20, 3);
  for (int x = 9; x <= 11; ++x)
    for (int y = 4; y < 20; ++y) health(x, y) = 2;  // worn band, gap south
  assay::RoutingJob rj;
  rj.start = Rect::from_size(2, 8, 3, 3);
  rj.goal = Rect::from_size(15, 8, 3, 3);
  rj.hazard = chip;

  SynthesisConfig plain = no_morph_config();
  SynthesisConfig wear_aware = no_morph_config();
  wear_aware.wear_penalty_lambda = 25.0;
  const SynthesisResult r_plain =
      Synthesizer(chip, plain).synthesize(rj, health, 2);
  const SynthesisResult r_wear =
      Synthesizer(chip, wear_aware).synthesize(rj, health, 2);
  ASSERT_TRUE(r_plain.feasible);
  ASSERT_TRUE(r_wear.feasible);

  const auto touches_band = [](const std::vector<Rect>& path) {
    for (const Rect& r : path)
      for (int x = 9; x <= 11; ++x)
        for (int y = 4; y < 20; ++y)
          if (r.contains(x, y)) return true;
    return false;
  };
  EXPECT_TRUE(touches_band(greedy_walk(r_plain.strategy, rj.start, rj.goal)));
  EXPECT_FALSE(touches_band(greedy_walk(r_wear.strategy, rj.start, rj.goal)));
}

TEST(Synthesizer, ZeroWearPenaltyMatchesPlainQuery) {
  const Rect chip{0, 0, 19, 19};
  IntMatrix health(20, 20, 3);
  health(10, 9) = 1;
  SynthesisConfig explicit_zero = no_morph_config();
  explicit_zero.wear_penalty_lambda = 0.0;
  const SynthesisResult a =
      Synthesizer(chip, no_morph_config()).synthesize(straight_east(12, 3),
                                                      health, 2);
  const SynthesisResult b =
      Synthesizer(chip, explicit_zero).synthesize(straight_east(12, 3),
                                                  health, 2);
  EXPECT_DOUBLE_EQ(a.expected_cycles, b.expected_cycles);
}

TEST(Synthesizer, NegativeWearPenaltyRejected) {
  SynthesisConfig config = no_morph_config();
  config.wear_penalty_lambda = -1.0;
  const Synthesizer synth(Rect{0, 0, 19, 19}, config);
  EXPECT_THROW(
      synth.synthesize_with_force(straight_east(8), full_health_force(20, 20)),
      PreconditionError);
}

TEST(Synthesizer, TimingAndStatsArePopulated) {
  const Synthesizer synth(Rect{0, 0, 29, 29}, no_morph_config());
  const SynthesisResult r = synth.synthesize_with_force(
      straight_east(12), full_health_force(30, 30));
  EXPECT_GT(r.stats.states, 0u);
  EXPECT_GT(r.stats.choices, 0u);
  EXPECT_GT(r.stats.transitions, 0u);
  EXPECT_GE(r.construction_seconds, 0.0);
  EXPECT_GE(r.solve_seconds, 0.0);
}

TEST(Synthesizer, RejectsWrongSizedHealthMatrix) {
  const Synthesizer synth(Rect{0, 0, 29, 29});
  EXPECT_THROW(synth.synthesize(straight_east(8), IntMatrix(10, 10, 3), 2),
               PreconditionError);
}

TEST(Synthesizer, OneCompileOnePmaxOneRminPerSynthesis) {
  // Regression pin for the double-solve fix: the legacy Rmin query ran a
  // full pmax inside solve_rmin on top of its own pmax pass (two pmax
  // solves per synthesis). The combined solve_reach_avoid compiles once and
  // answers both queries from it.
#ifdef MEDA_OBS_DISABLED
  GTEST_SKIP() << "instrumentation compiled out (MEDA_OBS=OFF)";
#endif
  obs::ctx().reset();
  obs::ctx().metrics().enable();
  const Synthesizer synth(Rect{0, 0, 29, 29}, no_morph_config());
  const SynthesisResult r = synth.synthesize_with_force(
      straight_east(8), full_health_force(30, 30));
  EXPECT_TRUE(r.feasible);
  const obs::MetricsRegistry& m = obs::ctx().metrics();
  EXPECT_EQ(m.counter("vi.compile.calls"), 1u);
  EXPECT_EQ(m.counter("vi.pmax.solves"), 1u);
  EXPECT_EQ(m.counter("vi.rmin.solves"), 1u);
  // The legacy reference path must stay out of the production pipeline.
  EXPECT_EQ(m.counter("vi.pmax_legacy.solves"), 0u);
  EXPECT_EQ(m.counter("vi.rmin_legacy.solves"), 0u);
  obs::ctx().reset();
}

}  // namespace
}  // namespace meda::core
