#include "core/value_iteration.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "model/outcomes.hpp"

namespace meda::core {
namespace {

/// Hand-built MDP helper: droplet rects are placeholders distinguishing
/// states; semantics live entirely in the transition structure.
RoutingMdp make_mdp(std::size_t droplet_states,
                    std::vector<std::size_t> goal_states) {
  RoutingMdp mdp;
  mdp.droplets.resize(droplet_states);
  for (std::size_t i = 0; i < droplet_states; ++i)
    mdp.droplets[i] = Rect::from_size(static_cast<int>(i), 0, 1, 1);
  mdp.choices.resize(droplet_states);
  mdp.is_goal.assign(droplet_states, false);
  for (std::size_t g : goal_states) mdp.is_goal[g] = true;
  mdp.start = 0;
  return mdp;
}

void add_choice(RoutingMdp& mdp, std::size_t state, Action a,
                std::vector<Transition> transitions) {
  mdp.choices[state].push_back(Choice{a, 1.0, std::move(transitions)});
}

TEST(Pmax, RetryLoopReachesAlmostSurely) {
  // s0 --(p=0.3 goal, 0.7 stay)--> goal: committed retries give Pmax = 1.
  RoutingMdp mdp = make_mdp(2, {1});
  add_choice(mdp, 0, Action::kE, {{1, 0.3}, {0, 0.7}});
  const Solution sol = solve_pmax(mdp);
  EXPECT_TRUE(sol.converged);
  EXPECT_NEAR(sol.values[0], 1.0, 1e-9);
  EXPECT_EQ(sol.chosen[0], 0);
}

TEST(Pmax, HazardRiskReducesProbability) {
  // Single choice: 0.8 goal, 0.2 hazard sink.
  RoutingMdp mdp = make_mdp(2, {1});
  add_choice(mdp, 0, Action::kE, {{1, 0.8}, {2 /*sink*/, 0.2}});
  const Solution sol = solve_pmax(mdp);
  EXPECT_NEAR(sol.values[0], 0.8, 1e-9);
  EXPECT_DOUBLE_EQ(sol.values[mdp.hazard_sink()], 0.0);
}

TEST(Pmax, PicksTheSaferChoice) {
  // Choice A: 0.9 goal / 0.1 hazard. Choice B: 0.2 goal / 0.8 stay (retry
  // forever → certain). Pmax must pick B.
  RoutingMdp mdp = make_mdp(2, {1});
  add_choice(mdp, 0, Action::kE, {{1, 0.9}, {2, 0.1}});
  add_choice(mdp, 0, Action::kN, {{1, 0.2}, {0, 0.8}});
  const Solution sol = solve_pmax(mdp);
  EXPECT_NEAR(sol.values[0], 1.0, 1e-9);
  EXPECT_EQ(sol.chosen[0], 1);
}

TEST(Pmax, UnreachableGoalIsZero) {
  // s0's only move self-loops forever.
  RoutingMdp mdp = make_mdp(2, {1});
  add_choice(mdp, 0, Action::kE, {{0, 1.0}});
  const Solution sol = solve_pmax(mdp);
  EXPECT_DOUBLE_EQ(sol.values[0], 0.0);
}

TEST(Pmax, GoalStateHasValueOne) {
  RoutingMdp mdp = make_mdp(2, {1});
  add_choice(mdp, 0, Action::kE, {{1, 1.0}});
  const Solution sol = solve_pmax(mdp);
  EXPECT_DOUBLE_EQ(sol.values[1], 1.0);
}

TEST(Rmin, GeometricRetryHasExpectedCyclesOneOverP) {
  // Success probability p per attempt → E[cycles] = 1/p.
  for (const double p : {1.0, 0.5, 0.25, 0.1}) {
    RoutingMdp mdp = make_mdp(2, {1});
    add_choice(mdp, 0, Action::kE, {{1, p}, {0, 1.0 - p}});
    const Solution sol = solve_rmin(mdp);
    EXPECT_NEAR(sol.values[0], 1.0 / p, 1e-6) << "p = " << p;
  }
}

TEST(Rmin, ChainAddsExpectations) {
  // s0 → s1 → goal with success probabilities 0.5 and 0.25:
  // E = 2 + 4 = 6.
  RoutingMdp mdp = make_mdp(3, {2});
  add_choice(mdp, 0, Action::kE, {{1, 0.5}, {0, 0.5}});
  add_choice(mdp, 1, Action::kE, {{2, 0.25}, {1, 0.75}});
  const Solution sol = solve_rmin(mdp);
  EXPECT_NEAR(sol.values[0], 6.0, 1e-6);
  EXPECT_NEAR(sol.values[1], 4.0, 1e-6);
  EXPECT_DOUBLE_EQ(sol.values[2], 0.0);
}

TEST(Rmin, PrefersFastPathOverSlowPath) {
  // Two routes to goal: direct with p = 0.2 (E = 5) or detour via s1 with
  // two certain steps (E = 2). Rmin must take the detour.
  RoutingMdp mdp = make_mdp(3, {2});
  add_choice(mdp, 0, Action::kE, {{2, 0.2}, {0, 0.8}});
  add_choice(mdp, 0, Action::kN, {{1, 1.0}});
  add_choice(mdp, 1, Action::kE, {{2, 1.0}});
  const Solution sol = solve_rmin(mdp);
  EXPECT_NEAR(sol.values[0], 2.0, 1e-9);
  EXPECT_EQ(sol.chosen[0], 1);
}

TEST(Rmin, ExcludesChoicesThatRiskTheHazard) {
  // Fast but hazardous (0.9 goal / 0.1 sink) vs slow and safe (p = 0.1).
  // PRISM's Rmin over □¬hazard ∧ ◇goal requires almost-sure reachability,
  // so only the safe choice is admissible: E = 10.
  RoutingMdp mdp = make_mdp(2, {1});
  add_choice(mdp, 0, Action::kE, {{1, 0.9}, {2, 0.1}});
  add_choice(mdp, 0, Action::kN, {{1, 0.1}, {0, 0.9}});
  const Solution sol = solve_rmin(mdp);
  EXPECT_NEAR(sol.values[0], 10.0, 1e-6);
  EXPECT_EQ(sol.chosen[0], 1);
}

TEST(Rmin, InfeasibleStatesGetInfinity) {
  // Goal unreachable: Rmin = ∞ (the paper's (π, k) = (∅, ∞) case).
  RoutingMdp mdp = make_mdp(2, {1});
  add_choice(mdp, 0, Action::kE, {{0, 1.0}});
  const Solution sol = solve_rmin(mdp);
  EXPECT_TRUE(std::isinf(sol.values[0]));
  EXPECT_EQ(sol.chosen[0], -1);
}

TEST(Rmin, HazardOnlyPathIsInfeasible) {
  RoutingMdp mdp = make_mdp(2, {1});
  add_choice(mdp, 0, Action::kE, {{2, 1.0}});  // straight into the sink
  const Solution sol = solve_rmin(mdp);
  EXPECT_TRUE(std::isinf(sol.values[0]));
}

TEST(Rmin, BranchingOutcomesWeightedCorrectly) {
  // Ordinal-style branching: from s0, action moves to goal w.p. 0.5,
  // to s1 w.p. 0.3, stays w.p. 0.2. From s1 a certain step reaches goal.
  // J(s0) = (1 + 0.3·J(s1)) / 0.8 with J(s1) = 1 → J(s0) = 1.625.
  RoutingMdp mdp = make_mdp(3, {2});
  add_choice(mdp, 0, Action::kNE, {{2, 0.5}, {1, 0.3}, {0, 0.2}});
  add_choice(mdp, 1, Action::kE, {{2, 1.0}});
  const Solution sol = solve_rmin(mdp);
  EXPECT_NEAR(sol.values[0], 1.625, 1e-9);
}

TEST(Solvers, DeterministicShortestPathOnGrid) {
  // End-to-end sanity on a real routing MDP: with full health, Rmin equals
  // the optimal move count (Chebyshev-ish metric with double steps).
  assay::RoutingJob rj;
  rj.start = Rect::from_size(0, 0, 4, 4);
  rj.goal = Rect::from_size(8, 0, 4, 4);
  rj.hazard = Rect{0, 0, 11, 11};
  const Rect chip{0, 0, 11, 11};
  ActionRules rules;
  rules.enable_morphing = false;
  const RoutingMdp mdp =
      build_routing_mdp(rj, full_health_force(12, 12), chip, rules);
  const Solution rmin = solve_rmin(mdp);
  // 8 cells east with double steps = 4 cycles.
  EXPECT_NEAR(rmin.values[mdp.start], 4.0, 1e-9);
  const Solution pmax = solve_pmax(mdp);
  EXPECT_NEAR(pmax.values[mdp.start], 1.0, 1e-9);
}

TEST(SolveTermination, StableLabels) {
  EXPECT_STREQ(to_string(SolveTermination::kConverged), "converged");
  EXPECT_STREQ(to_string(SolveTermination::kSweepLimit), "sweep_limit");
  EXPECT_STREQ(to_string(SolveTermination::kDeadline), "deadline");
}

/// Linear chain s0 → s1 → … → goal with one certain step each: the legacy
/// state-index-order sweep propagates the goal value one state per sweep,
/// so convergence takes ~length sweeps — a controllable sweep count.
RoutingMdp make_chain(std::size_t length) {
  RoutingMdp mdp = make_mdp(length, {length - 1});
  for (std::size_t s = 0; s + 1 < length; ++s)
    add_choice(mdp, s, Action::kE, {{static_cast<std::uint32_t>(s + 1), 1.0}});
  return mdp;
}

TEST(Telemetry, ConvergedSolveReportsCauseWorkAndResiduals) {
  RoutingMdp mdp = make_mdp(2, {1});
  add_choice(mdp, 0, Action::kE, {{1, 0.3}, {0, 0.7}});
  for (const Solution& sol : {solve_pmax(mdp), solve_rmin(mdp),
                             solve_pmax_legacy(mdp), solve_rmin_legacy(mdp)}) {
    EXPECT_TRUE(sol.converged);
    EXPECT_EQ(sol.termination, SolveTermination::kConverged);
    EXPECT_GT(sol.states_touched, 0u);
    ASSERT_FALSE(sol.sweep_residuals.empty());
    EXPECT_EQ(sol.sweep_residuals.size(),
              std::min<std::size_t>(static_cast<std::size_t>(sol.iterations),
                                    kResidualRingCapacity));
    // The ring's newest entry is the residual that stopped the solve.
    EXPECT_DOUBLE_EQ(sol.sweep_residuals.back(), sol.final_residual);
    EXPECT_LT(sol.final_residual, 1e-9);
  }
}

TEST(Telemetry, SweepLimitStopIsTagged) {
  const RoutingMdp mdp = make_chain(6);
  SolveConfig config;
  config.max_iterations = 2;  // goal value cannot reach s0 in two sweeps
  const Solution sol = solve_pmax_legacy(mdp, config);
  EXPECT_FALSE(sol.converged);
  EXPECT_FALSE(sol.deadline_expired);
  EXPECT_EQ(sol.termination, SolveTermination::kSweepLimit);
  EXPECT_EQ(sol.iterations, 2);
  EXPECT_EQ(sol.sweep_residuals.size(), 2u);
}

TEST(Telemetry, DeadlineStopIsTagged) {
  const RoutingMdp mdp = make_chain(6);
  SolveConfig config;
  config.deadline = util::Deadline::after_checks(1);  // expire on sweep 2
  const Solution sol = solve_pmax_legacy(mdp, config);
  EXPECT_FALSE(sol.converged);
  EXPECT_TRUE(sol.deadline_expired);
  EXPECT_EQ(sol.termination, SolveTermination::kDeadline);
}

TEST(Telemetry, ResidualRingIsBoundedAndChronological) {
  // A 100-state chain needs ~100 legacy sweeps, overflowing the 64-entry
  // ring: only the newest kResidualRingCapacity residuals survive, oldest
  // first, ending in the converging residual.
  const RoutingMdp mdp = make_chain(100);
  const Solution sol = solve_pmax_legacy(mdp);
  EXPECT_TRUE(sol.converged);
  EXPECT_GT(sol.iterations, static_cast<int>(kResidualRingCapacity));
  ASSERT_EQ(sol.sweep_residuals.size(), kResidualRingCapacity);
  EXPECT_DOUBLE_EQ(sol.sweep_residuals.back(), sol.final_residual);
  // While the goal value is still propagating, each sweep's max change is
  // 1.0; the tail of the curve must end below tolerance.
  EXPECT_DOUBLE_EQ(sol.sweep_residuals.front(), 1.0);
  EXPECT_LT(sol.sweep_residuals.back(), 1e-9);
}

TEST(Telemetry, StatesTouchedCountsPerStateUpdates) {
  // In the chain every non-goal state is updated every sweep on the legacy
  // path, so the work metric is exactly sweeps × (length − 1).
  const std::size_t length = 10;
  const RoutingMdp mdp = make_chain(length);
  const Solution sol = solve_pmax_legacy(mdp);
  EXPECT_EQ(sol.states_touched,
            static_cast<std::uint64_t>(sol.iterations) * (length - 1));
}

TEST(Solvers, RejectBadConfig) {
  RoutingMdp mdp = make_mdp(2, {1});
  add_choice(mdp, 0, Action::kE, {{1, 1.0}});
  SolveConfig config;
  config.tolerance = 0.0;
  EXPECT_THROW(solve_pmax(mdp, config), PreconditionError);
  config = SolveConfig{};
  config.max_iterations = 0;
  EXPECT_THROW(solve_rmin(mdp, config), PreconditionError);
}

}  // namespace
}  // namespace meda::core
