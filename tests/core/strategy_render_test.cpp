#include "core/strategy_render.hpp"

// Also exercises the umbrella header from test code.
#include "meda.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace meda::core {
namespace {

TEST(StrategyRender, GlyphsAreDistinctPerDirection) {
  EXPECT_EQ(action_glyph(Action::kN), '^');
  EXPECT_EQ(action_glyph(Action::kEE), 'E');
  EXPECT_EQ(action_glyph(Action::kNE), '/');
  EXPECT_EQ(action_glyph(Action::kWidenSW), 'w');
  EXPECT_EQ(action_glyph(Action::kHeightenNE), 'h');
}

TEST(StrategyRender, StraightEastFieldShowsDoubleSteps) {
  const Rect chip{0, 0, 17, 7};
  assay::RoutingJob rj;
  rj.start = Rect::from_size(0, 2, 4, 4);
  rj.goal = Rect::from_size(12, 2, 4, 4);
  rj.hazard = chip;
  SynthesisConfig config;
  config.rules.enable_morphing = false;
  const Synthesizer synth(chip, config);
  const SynthesisResult r =
      synth.synthesize_with_force(rj, full_health_force(18, 8));
  ASSERT_TRUE(r.feasible);
  const std::string field = render_strategy_field(r.strategy, rj, 4, 4);
  // 5 rows of anchors (y = 4..0 printed north to south) + newlines.
  EXPECT_EQ(std::count(field.begin(), field.end(), '\n'), 5);
  // The goal anchor is marked and double-steps dominate the start row.
  EXPECT_NE(field.find('*'), std::string::npos);
  EXPECT_NE(field.find('E'), std::string::npos);
  // Every anchored position is covered (no blanks inside the field).
  EXPECT_EQ(field.find("  "), std::string::npos);
}

TEST(StrategyRender, DetourFieldAvoidsTheDeadWall) {
  const Rect chip{0, 0, 19, 11};
  DoubleMatrix force = full_health_force(20, 12);
  for (int y = 3; y < 12; ++y) force(9, y) = 0.0;  // wall with a south gap
  assay::RoutingJob rj;
  rj.start = Rect::from_size(1, 5, 3, 3);
  rj.goal = Rect::from_size(15, 5, 3, 3);
  rj.hazard = chip;
  SynthesisConfig config;
  config.rules.enable_morphing = false;
  const Synthesizer synth(chip, config);
  const SynthesisResult r = synth.synthesize_with_force(rj, force);
  ASSERT_TRUE(r.feasible);
  const std::string field = render_strategy_field(r.strategy, rj, 3, 3);
  // The start row steers south around the wall: southbound glyphs exist.
  EXPECT_TRUE(field.find('v') != std::string::npos ||
              field.find('S') != std::string::npos ||
              field.find('r') != std::string::npos ||
              field.find('j') != std::string::npos)
      << field;
}

TEST(StrategyRender, UncoveredPositionsAreBlank) {
  Strategy sparse;
  sparse.set(Rect::from_size(0, 0, 2, 2), Action::kE);
  assay::RoutingJob rj;
  rj.start = Rect::from_size(0, 0, 2, 2);
  rj.goal = Rect::from_size(4, 0, 2, 2);
  rj.hazard = Rect{0, 0, 5, 3};
  const std::string field = render_strategy_field(sparse, rj, 2, 2);
  EXPECT_NE(field.find('>'), std::string::npos);
  EXPECT_NE(field.find(' '), std::string::npos);
  EXPECT_NE(field.find('*'), std::string::npos);
}

TEST(StrategyRender, RejectsBadDimensions) {
  assay::RoutingJob rj;
  rj.hazard = Rect{0, 0, 5, 5};
  rj.goal = Rect{0, 0, 1, 1};
  EXPECT_THROW(render_strategy_field(Strategy{}, rj, 0, 2),
               PreconditionError);
}

}  // namespace
}  // namespace meda::core
