#include "core/recovery.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace meda::core {
namespace {

TEST(Recovery, ActionNamesAreStable) {
  // The names appear in CSV output and execution reports; pin them.
  EXPECT_EQ(to_string(RecoveryAction::kWatchdogResense), "watchdog-resense");
  EXPECT_EQ(to_string(RecoveryAction::kSynthesisRetry), "synthesis-retry");
  EXPECT_EQ(to_string(RecoveryAction::kBackoff), "backoff");
  EXPECT_EQ(to_string(RecoveryAction::kQuarantine), "quarantine");
  EXPECT_EQ(to_string(RecoveryAction::kJobAbort), "job-abort");
}

TEST(Recovery, FormatEventsRendersOneLineEach) {
  std::vector<RecoveryEvent> events;
  events.push_back({RecoveryAction::kWatchdogResense, 12, 3, "stuck"});
  events.push_back({RecoveryAction::kQuarantine, 40, -1, "2 suspect cell(s)"});
  const std::string text = format_events(events);
  EXPECT_NE(text.find("cycle 12 [watchdog-resense] MO 3: stuck"),
            std::string::npos);
  // Execution-wide events (mo = -1) omit the MO tag.
  EXPECT_NE(text.find("cycle 40 [quarantine]: 2 suspect cell(s)"),
            std::string::npos);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

TEST(Recovery, CountersAnyReflectsActivity) {
  RecoveryCounters counters;
  EXPECT_FALSE(counters.any());
  counters.backoff_cycles = 1;
  EXPECT_TRUE(counters.any());
  counters = RecoveryCounters{};
  counters.aborted_jobs = 1;
  EXPECT_TRUE(counters.any());
}

}  // namespace
}  // namespace meda::core
