#include "core/library.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace meda::core {
namespace {

assay::RoutingJob sample_job() {
  assay::RoutingJob rj;
  rj.start = Rect::from_size(0, 0, 4, 4);
  rj.goal = Rect::from_size(10, 0, 4, 4);
  rj.hazard = Rect{0, 0, 16, 9};
  return rj;
}

SynthesisResult sample_result(double cycles) {
  SynthesisResult r;
  r.feasible = true;
  r.expected_cycles = cycles;
  r.strategy.set(Rect::from_size(0, 0, 4, 4), Action::kEE);
  return r;
}

TEST(HealthDigest, SensitiveToChangesInsideTheArea) {
  IntMatrix h(20, 10, 3);
  const Rect area{2, 2, 8, 6};
  const std::uint64_t before = health_digest(h, area);
  h(5, 4) = 2;
  EXPECT_NE(health_digest(h, area), before);
}

TEST(HealthDigest, InsensitiveToChangesOutsideTheArea) {
  IntMatrix h(20, 10, 3);
  const Rect area{2, 2, 8, 6};
  const std::uint64_t before = health_digest(h, area);
  h(15, 8) = 0;
  h(0, 0) = 1;
  EXPECT_EQ(health_digest(h, area), before);
}

TEST(HealthDigest, AreaClippedToTheMatrix) {
  IntMatrix h(20, 10, 3);
  const std::uint64_t full = health_digest(h, Rect{0, 0, 19, 9});
  const std::uint64_t overhang = health_digest(h, Rect{-5, -5, 25, 15});
  EXPECT_EQ(full, overhang);
}

TEST(HealthDigest, DistinguishesPositionOfChange) {
  IntMatrix a(10, 10, 3), b(10, 10, 3);
  a(2, 2) = 1;
  b(3, 2) = 1;
  const Rect area{0, 0, 9, 9};
  EXPECT_NE(health_digest(a, area), health_digest(b, area));
}

TEST(StrategyLibrary, StoreAndLookup) {
  StrategyLibrary lib;
  const assay::RoutingJob rj = sample_job();
  EXPECT_EQ(lib.lookup(rj, 42), nullptr);
  EXPECT_EQ(lib.misses(), 1u);
  lib.store(rj, 42, sample_result(5.0));
  const SynthesisResult* hit = lib.lookup(rj, 42);
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ(hit->expected_cycles, 5.0);
  EXPECT_EQ(lib.hits(), 1u);
  EXPECT_EQ(lib.size(), 1u);
}

TEST(StrategyLibrary, DigestDistinguishesEntries) {
  StrategyLibrary lib;
  const assay::RoutingJob rj = sample_job();
  lib.store(rj, 1, sample_result(5.0));
  EXPECT_EQ(lib.lookup(rj, 2), nullptr);
  lib.store(rj, 2, sample_result(7.0));
  EXPECT_EQ(lib.size(), 2u);
  EXPECT_DOUBLE_EQ(lib.lookup(rj, 1)->expected_cycles, 5.0);
  EXPECT_DOUBLE_EQ(lib.lookup(rj, 2)->expected_cycles, 7.0);
}

TEST(StrategyLibrary, JobGeometryDistinguishesEntries) {
  StrategyLibrary lib;
  assay::RoutingJob rj = sample_job();
  lib.store(rj, 1, sample_result(5.0));
  rj.start = rj.start.shifted(1, 0);  // re-anchored mid-route job
  EXPECT_EQ(lib.lookup(rj, 1), nullptr);
  rj = sample_job();
  rj.goal = rj.goal.shifted(0, 1);
  EXPECT_EQ(lib.lookup(rj, 1), nullptr);
  rj = sample_job();
  rj.hazard = rj.hazard.inflated(1);
  EXPECT_EQ(lib.lookup(rj, 1), nullptr);
}

TEST(StrategyLibrary, StoreOverwritesNewerResult) {
  StrategyLibrary lib;
  const assay::RoutingJob rj = sample_job();
  lib.store(rj, 9, sample_result(5.0));
  lib.store(rj, 9, sample_result(3.0));
  EXPECT_EQ(lib.size(), 1u);
  EXPECT_DOUBLE_EQ(lib.lookup(rj, 9)->expected_cycles, 3.0);
}

TEST(DetourDigest, SaltSeparatesTheKeyFamilies) {
  // The collision that must not happen: a *plain* health matrix H2 that is
  // value-equal to some droplet-*masked* view masked(H1) hashes to the same
  // FNV digest — without the salt, a detour entry (synthesized around a
  // droplet obstacle) would be served for a plain lookup on H2, steering a
  // droplet around an obstacle that is not there (or vice versa). The salt
  // keeps the two families disjoint even on identical matrices.
  const Rect area{0, 0, 9, 9};
  IntMatrix h1(10, 10, 3);
  // masked(H1): another droplet's inflated footprint clamped to 0.
  IntMatrix masked = h1;
  for (int y = 3; y <= 6; ++y)
    for (int x = 3; x <= 6; ++x) masked(x, y) = 0;
  // H2: a plain health matrix that *happens* to equal the masked view
  // (a 4x4 block of genuinely dead cells).
  const IntMatrix h2 = masked;
  EXPECT_EQ(health_digest(h2, area), health_digest(masked, area));
  EXPECT_NE(health_digest(h2, area), detour_digest(masked, area));
  // And the same separation in the library itself: storing under the detour
  // key must not satisfy a plain-digest lookup.
  StrategyLibrary lib;
  const assay::RoutingJob rj = sample_job();
  lib.store(rj, detour_digest(masked, area), sample_result(5.0));
  EXPECT_EQ(lib.lookup(rj, health_digest(h2, area)), nullptr);
  EXPECT_NE(lib.lookup(rj, detour_digest(masked, area)), nullptr);
}

TEST(DetourDigest, IsDeterministicallyDerivedFromTheHealthDigest) {
  const Rect area{0, 0, 9, 9};
  const IntMatrix h(10, 10, 2);
  EXPECT_EQ(detour_digest(h, area),
            health_digest(h, area) ^ kDetourDigestSalt);
}

TEST(StrategyLibrary, PerClassStatsAttributeOperations) {
  StrategyLibrary lib;
  const assay::RoutingJob rj = sample_job();
  lib.store(rj, 1, sample_result(5.0), DigestClass::kPlain);
  lib.store(rj, 2, sample_result(6.0), DigestClass::kDetour);
  (void)lib.lookup(rj, 1, DigestClass::kPlain);   // plain hit
  (void)lib.lookup(rj, 3, DigestClass::kPlain);   // plain miss
  (void)lib.lookup(rj, 2, DigestClass::kDetour);  // detour hit
  lib.store(rj, 1, sample_result(4.0), DigestClass::kPlain);  // overwrite

  const LibraryStats& stats = lib.stats();
  EXPECT_EQ(stats.plain.inserts, 1u);
  EXPECT_EQ(stats.plain.hits, 1u);
  EXPECT_EQ(stats.plain.misses, 1u);
  EXPECT_EQ(stats.plain.overwrites, 1u);
  EXPECT_EQ(stats.detour.inserts, 1u);
  EXPECT_EQ(stats.detour.hits, 1u);
  EXPECT_EQ(stats.detour.misses, 0u);
  // The legacy accessors are the cross-class totals.
  EXPECT_EQ(lib.hits(), 2u);
  EXPECT_EQ(lib.misses(), 1u);
  EXPECT_EQ(stats.totals().inserts, 2u);
}

TEST(StrategyLibrary, StatsRollUpAcrossInstances) {
  LibraryStats a, b;
  a.plain.hits = 3;
  a.detour.evictions = 1;
  b.plain.hits = 2;
  b.plain.misses = 4;
  a += b;
  EXPECT_EQ(a.plain.hits, 5u);
  EXPECT_EQ(a.plain.misses, 4u);
  EXPECT_EQ(a.detour.evictions, 1u);
  EXPECT_EQ(a.totals().hits, 5u);
}

TEST(StrategyLibrary, CapacityEvictsOldestInsertionFirst) {
  StrategyLibrary lib;
  lib.set_capacity(2);
  const assay::RoutingJob rj = sample_job();
  lib.store(rj, 1, sample_result(1.0));
  lib.store(rj, 2, sample_result(2.0));
  lib.store(rj, 3, sample_result(3.0));  // evicts digest 1 (FIFO)
  EXPECT_EQ(lib.size(), 2u);
  EXPECT_EQ(lib.lookup(rj, 1), nullptr);
  EXPECT_NE(lib.lookup(rj, 2), nullptr);
  EXPECT_NE(lib.lookup(rj, 3), nullptr);
  EXPECT_EQ(lib.stats().plain.evictions, 1u);
}

TEST(StrategyLibrary, OverwriteKeepsOriginalInsertionOrder) {
  StrategyLibrary lib;
  lib.set_capacity(2);
  const assay::RoutingJob rj = sample_job();
  lib.store(rj, 1, sample_result(1.0));
  lib.store(rj, 2, sample_result(2.0));
  lib.store(rj, 1, sample_result(9.0));  // overwrite: still oldest
  lib.store(rj, 3, sample_result(3.0));  // must evict digest 1, not 2
  EXPECT_EQ(lib.lookup(rj, 1), nullptr);
  ASSERT_NE(lib.lookup(rj, 2), nullptr);
  EXPECT_EQ(lib.stats().plain.overwrites, 1u);
  EXPECT_EQ(lib.stats().plain.evictions, 1u);
}

TEST(StrategyLibrary, ShrinkingCapacityEvictsImmediately) {
  StrategyLibrary lib;
  const assay::RoutingJob rj = sample_job();
  for (std::uint64_t d = 1; d <= 4; ++d)
    lib.store(rj, d, sample_result(static_cast<double>(d)));
  lib.set_capacity(2);
  EXPECT_EQ(lib.size(), 2u);
  EXPECT_EQ(lib.stats().plain.evictions, 2u);
  EXPECT_EQ(lib.lookup(rj, 1), nullptr);  // oldest two are gone
  EXPECT_EQ(lib.lookup(rj, 2), nullptr);
  EXPECT_NE(lib.lookup(rj, 3), nullptr);
  EXPECT_NE(lib.lookup(rj, 4), nullptr);
  lib.set_capacity(0);  // back to unlimited: nothing else is evicted
  lib.store(rj, 5, sample_result(5.0));
  EXPECT_EQ(lib.size(), 3u);
}

TEST(StrategyLibrary, EvictionAttributesToTheEvictedEntrysClass) {
  StrategyLibrary lib;
  lib.set_capacity(1);
  const assay::RoutingJob rj = sample_job();
  lib.store(rj, 1, sample_result(1.0), DigestClass::kDetour);
  lib.store(rj, 2, sample_result(2.0), DigestClass::kPlain);
  // The detour entry was evicted by a plain store: the eviction belongs to
  // the detour class.
  EXPECT_EQ(lib.stats().detour.evictions, 1u);
  EXPECT_EQ(lib.stats().plain.evictions, 0u);
}

TEST(DigestClass, StableLabels) {
  EXPECT_STREQ(to_string(DigestClass::kPlain), "plain");
  EXPECT_STREQ(to_string(DigestClass::kDetour), "detour");
}

TEST(StrategyLibrary, ClearResetsEverything) {
  StrategyLibrary lib;
  lib.store(sample_job(), 1, sample_result(5.0));
  (void)lib.lookup(sample_job(), 1);
  lib.clear();
  EXPECT_EQ(lib.size(), 0u);
  EXPECT_EQ(lib.hits(), 0u);
  EXPECT_EQ(lib.misses(), 0u);
  EXPECT_TRUE(lib.tenant_stats().empty());
}

TEST(StrategyLibrary, LookupCopyReturnsDetachedResult) {
  StrategyLibrary lib;
  const assay::RoutingJob rj = sample_job();
  EXPECT_FALSE(lib.lookup_copy(rj, 7).has_value());
  lib.store(rj, 7, sample_result(5.0));
  std::optional<SynthesisResult> copy = lib.lookup_copy(rj, 7);
  ASSERT_TRUE(copy.has_value());
  EXPECT_DOUBLE_EQ(copy->expected_cycles, 5.0);
  // The copy survives eviction of the underlying entry.
  lib.clear();
  EXPECT_DOUBLE_EQ(copy->expected_cycles, 5.0);
  // lookup_copy participates in the same stats as lookup.
  EXPECT_EQ(lib.hits(), 0u);  // clear reset them; the hit above was counted
}

TEST(StrategyLibrary, AttributesOperationsToTenants) {
  StrategyLibrary lib;
  const assay::RoutingJob rj = sample_job();
  lib.store(rj, 1, sample_result(1.0), DigestClass::kPlain, /*tenant=*/0);
  (void)lib.lookup(rj, 1, DigestClass::kPlain, /*tenant=*/0);   // hit
  (void)lib.lookup_copy(rj, 1, DigestClass::kPlain, /*tenant=*/3);  // hit
  (void)lib.lookup(rj, 2, DigestClass::kPlain, /*tenant=*/3);   // miss
  (void)lib.lookup(rj, 2, DigestClass::kPlain);  // unattributed miss

  const std::map<int, LibraryStats> per_tenant = lib.tenant_stats();
  ASSERT_EQ(per_tenant.size(), 2u);
  EXPECT_EQ(per_tenant.at(0).plain.inserts, 1u);
  EXPECT_EQ(per_tenant.at(0).plain.hits, 1u);
  EXPECT_EQ(per_tenant.at(3).plain.hits, 1u);
  EXPECT_EQ(per_tenant.at(3).plain.misses, 1u);
  // Global stats see every operation regardless of attribution.
  EXPECT_EQ(lib.hits(), 2u);
  EXPECT_EQ(lib.misses(), 2u);
}

TEST(StrategyLibrary, ConcurrentLookupCopyAndStoreAreSafe) {
  StrategyLibrary lib;
  const assay::RoutingJob rj = sample_job();
  lib.store(rj, 0, sample_result(0.0));
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&lib, &rj, t] {
      for (int i = 0; i < 200; ++i) {
        if (t % 2 == 0) {
          lib.store(rj, static_cast<std::uint64_t>(i % 8),
                    sample_result(static_cast<double>(i)), DigestClass::kPlain,
                    t);
        } else {
          std::optional<SynthesisResult> copy =
              lib.lookup_copy(rj, static_cast<std::uint64_t>(i % 8),
                              DigestClass::kPlain, t);
          if (copy.has_value()) (void)copy->expected_cycles;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(lib.tenant_stats().size(), 4u);
  EXPECT_EQ(lib.hits() + lib.misses(), 400u);
}

}  // namespace
}  // namespace meda::core
