#include "core/routability.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace meda::core {
namespace {

RoutabilityConfig small_config() {
  RoutabilityConfig config;
  config.jobs = 30;
  config.droplet_side = 3;
  config.synthesis.rules.enable_morphing = false;
  return config;
}

TEST(Routability, PristineChipIsFullyRoutableWithUnitStretch) {
  const IntMatrix health(30, 20, 3);
  Rng rng(1);
  const RoutabilityReport report =
      assess_routability(health, 2, small_config(), rng);
  EXPECT_EQ(report.jobs, 30);
  EXPECT_EQ(report.feasible, 30);
  EXPECT_DOUBLE_EQ(report.feasible_fraction, 1.0);
  EXPECT_NEAR(report.mean_stretch, 1.0, 1e-9);
  EXPECT_GT(report.mean_expected_cycles, 0.0);
}

TEST(Routability, DeadBandCutsTheFeasibleFraction) {
  IntMatrix health(30, 20, 3);
  for (int y = 0; y < 20; ++y)
    for (int x = 14; x <= 16; ++x) health(x, y) = 0;  // full dead band
  Rng rng(2);
  const RoutabilityReport report =
      assess_routability(health, 2, small_config(), rng);
  // Every job crossing the band is infeasible.
  EXPECT_LT(report.feasible_fraction, 1.0);
  EXPECT_GT(report.feasible_fraction, 0.0);  // same-side jobs still work
}

TEST(Routability, UniformWearShowsUpAsStretch) {
  const IntMatrix health(30, 20, 2);  // everything one bucket down
  Rng rng(3);
  const RoutabilityReport report =
      assess_routability(health, 2, small_config(), rng);
  EXPECT_DOUBLE_EQ(report.feasible_fraction, 1.0);
  // Scaled estimator: D̂ = 2/3 → force 4/9 → stretch ≈ 9/4 per step.
  EXPECT_GT(report.mean_stretch, 1.5);
}

TEST(Routability, DeterministicPerRngState) {
  const IntMatrix health(30, 20, 3);
  Rng a(7), b(7);
  const RoutabilityReport ra =
      assess_routability(health, 2, small_config(), a);
  const RoutabilityReport rb =
      assess_routability(health, 2, small_config(), b);
  EXPECT_EQ(ra.feasible, rb.feasible);
  EXPECT_DOUBLE_EQ(ra.mean_expected_cycles, rb.mean_expected_cycles);
}

TEST(Routability, WorseHealthNeverImprovesTheReport) {
  IntMatrix healthy(30, 20, 3);
  IntMatrix worn(30, 20, 3);
  for (int y = 5; y < 15; ++y)
    for (int x = 10; x < 20; ++x) worn(x, y) = 1;
  Rng a(11), b(11);
  const RoutabilityReport rh =
      assess_routability(healthy, 2, small_config(), a);
  const RoutabilityReport rw =
      assess_routability(worn, 2, small_config(), b);
  EXPECT_GE(rh.feasible, rw.feasible);
  EXPECT_LE(rh.mean_stretch, rw.mean_stretch + 1e-9);
}

TEST(Routability, RejectsBadConfig) {
  const IntMatrix health(30, 20, 3);
  Rng rng(1);
  RoutabilityConfig config = small_config();
  config.jobs = 0;
  EXPECT_THROW(assess_routability(health, 2, config, rng),
               PreconditionError);
  config = small_config();
  config.droplet_side = 25;  // taller than the chip
  EXPECT_THROW(assess_routability(health, 2, config, rng),
               PreconditionError);
}

}  // namespace
}  // namespace meda::core
