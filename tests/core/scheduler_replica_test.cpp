#include <gtest/gtest.h>

#include <map>
#include <set>

#include "assay/benchmarks.hpp"
#include "core/library.hpp"
#include "core/scheduler.hpp"
#include "sim/simulated_chip.hpp"
#include "util/check.hpp"

/// @file scheduler_replica_test.cpp
/// N-modular-redundant droplet execution: replica launch, the k = 1 of N
/// vote/merge, region-disjoint corridor routing, the replica-failover rung
/// of the recovery ladder, and the shared per-MO synthesis budget.

namespace meda::core {
namespace {

sim::SimulatedChipConfig chip_config() {
  sim::SimulatedChipConfig config;
  config.chip.width = assay::kChipWidth;
  config.chip.height = assay::kChipHeight;
  return config;
}

/// One dispense MO annotated with the given redundancy degree, placed so
/// its routing zone is thick enough for truly disjoint corridors, plus the
/// output MO that consumes the droplet (validation requires a consumer).
assay::MoList replicated_dispense(int replicas, double cx = 30.0,
                                  double cy = 15.0) {
  assay::AssayBuilder builder("replicated-dispense");
  const int d = builder.dispense(cx, cy, 16);
  builder.output({d, 0}, 55.0, cy);
  assay::MoList list = std::move(builder).build();
  list.ops[static_cast<std::size_t>(d)].replicas = replicas;
  return list;
}

/// Minimal fake chip: full health, deterministic movement (a commanded
/// action always lands), no outcome sampling. Droplets listed in `stuck`
/// ignore every command — a mechanically dead droplet the health sensors
/// cannot see, which drives the ladder into the replica-failover rung.
class FakeChip : public BiochipIo {
 public:
  explicit FakeChip(Rect bounds) : bounds_(bounds) {}

  std::set<DropletId> stuck;

  Rect bounds() const override { return bounds_; }
  int health_bits() const override { return 3; }
  IntMatrix sense_health() const override {
    return IntMatrix(bounds_.width(), bounds_.height(), 7);
  }
  Rect droplet_position(DropletId id) const override {
    return droplets_.at(id);
  }
  bool location_clear(const Rect& at) const override {
    if (!bounds_.contains(at)) return false;
    for (const auto& [id, pos] : droplets_)
      if (pos.manhattan_gap(at) < 2) return false;
    return true;
  }
  DropletId dispense(const Rect& at) override {
    droplets_[next_] = at;
    return next_++;
  }
  void discard(DropletId id) override { droplets_.erase(id); }
  DropletId merge(DropletId a, DropletId b, const Rect& merged) override {
    droplets_.erase(a);
    droplets_.erase(b);
    droplets_[next_] = merged;
    return next_++;
  }
  bool split_clear(DropletId, const Rect&, const Rect&) const override {
    return false;
  }
  std::pair<DropletId, DropletId> split(DropletId, const Rect&,
                                        const Rect&) override {
    MEDA_REQUIRE(false, "FakeChip does not split");
    return {-1, -1};
  }
  void step(const std::vector<Command>& commands) override {
    for (const Command& c : commands) {
      if (!c.action || stuck.contains(c.droplet)) continue;
      const Rect target = apply(*c.action, droplets_.at(c.droplet));
      if (bounds_.contains(target)) droplets_.at(c.droplet) = target;
    }
    ++cycle_;
  }
  std::uint64_t cycle() const override { return cycle_; }

  std::size_t droplet_count() const { return droplets_.size(); }

 private:
  Rect bounds_;
  std::map<DropletId, Rect> droplets_;
  DropletId next_ = 1;
  std::uint64_t cycle_ = 0;
};

TEST(SchedulerReplica, VoteMergeCompletesOnFirstArrival) {
  sim::SimulatedChip chip(chip_config(), Rng(7));
  SchedulerConfig config;
  Scheduler scheduler(config);
  const ExecutionStats stats = scheduler.run(chip, replicated_dispense(2));
  ASSERT_TRUE(stats.success) << stats.failure_reason;
  EXPECT_EQ(stats.replica.launched, 2);
  EXPECT_EQ(stats.replica.merges, 1);
  EXPECT_EQ(stats.replica.retired, 1);
  EXPECT_EQ(stats.replica.failovers, 0);
  EXPECT_GT(stats.replica.droplet_cycles, 0u);
  EXPECT_EQ(stats.completed_mos, 2);  // the dispense and its output
  EXPECT_EQ(stats.aborted_mos, 0);
  // Exactly one winner and one loser were recorded.
  ASSERT_EQ(stats.replica_routes.size(), 2u);
  int winners = 0;
  for (const ReplicaRouteRecord& record : stats.replica_routes)
    winners += record.winner ? 1 : 0;
  EXPECT_EQ(winners, 1);
}

TEST(SchedulerReplica, LoserDrainsOffTheChip) {
  sim::SimulatedChip chip(chip_config(), Rng(7));
  SchedulerConfig config;
  config.max_cycles = 2000;
  Scheduler scheduler(config);
  assay::AssayBuilder builder("replicated-then-output");
  const int d = builder.dispense(30.0, 15.0, 16);
  builder.output({d, 0}, 55.0, 15.0);
  assay::MoList list = std::move(builder).build();
  list.ops[static_cast<std::size_t>(d)].replicas = 2;
  const ExecutionStats stats = scheduler.run(chip, list);
  ASSERT_TRUE(stats.success) << stats.failure_reason;
  EXPECT_EQ(stats.replica.retired, 1);
  // Winner left via the output MO, loser via its waste route.
  EXPECT_TRUE(chip.droplets().empty());
}

TEST(SchedulerReplica, RoutesArePairwiseRegionDisjoint) {
  sim::SimulatedChip chip(chip_config(), Rng(7));
  SchedulerConfig config;
  config.record_replica_trails = true;
  Scheduler scheduler(config);
  const ExecutionStats stats = scheduler.run(chip, replicated_dispense(2));
  ASSERT_TRUE(stats.success) << stats.failure_reason;
  ASSERT_EQ(stats.replica_routes.size(), 2u);
  for (const ReplicaRouteRecord& record : stats.replica_routes) {
    // The zone at this placement is thick enough: full disjointness, no
    // best-effort degradation.
    ASSERT_FALSE(record.mask_best_effort);
    ASSERT_TRUE(record.band.valid());
    ASSERT_FALSE(record.trail.empty());
    // Outside the shared endpoint funnels every cell the replica touched
    // lies inside its own corridor band.
    for (const Rect& pos : record.trail) {
      for (int y = pos.ya; y <= pos.yb; ++y)
        for (int x = pos.xa; x <= pos.xb; ++x) {
          if (record.start_funnel.contains(x, y) ||
              record.goal_funnel.contains(x, y))
            continue;
          EXPECT_TRUE(record.band.contains(x, y))
              << "replica " << record.replica << " left its band at (" << x
              << ", " << y << ")";
        }
    }
  }
  // The two bands themselves are disjoint.
  EXPECT_EQ(stats.replica_routes[0]
                .band.intersection_with(stats.replica_routes[1].band)
                .valid(),
            false);
}

TEST(SchedulerReplica, ThinZoneDegradesToBestEffort) {
  sim::SimulatedChip chip(chip_config(), Rng(7));
  SchedulerConfig config;
  config.record_replica_trails = true;
  Scheduler scheduler(config);
  // Three replicas need 3 × (1 + 4) = 15 cells across the zone, but the
  // vertical corridor here is only ~10 wide: the plan must degrade
  // gracefully to best-effort disjointness, not fail the MO.
  const ExecutionStats stats = scheduler.run(chip, replicated_dispense(3));
  ASSERT_TRUE(stats.success) << stats.failure_reason;
  EXPECT_EQ(stats.replica.merges, 1);
  EXPECT_GE(stats.replica.best_effort_masks, 1);
  ASSERT_FALSE(stats.replica_routes.empty());
  for (const ReplicaRouteRecord& record : stats.replica_routes)
    EXPECT_TRUE(record.mask_best_effort);
}

TEST(SchedulerReplica, BaselineRouterIgnoresReplication) {
  sim::SimulatedChip chip(chip_config(), Rng(7));
  SchedulerConfig config;
  config.adaptive = false;
  Scheduler scheduler(config);
  const ExecutionStats stats = scheduler.run(chip, replicated_dispense(3));
  ASSERT_TRUE(stats.success) << stats.failure_reason;
  EXPECT_EQ(stats.replica.launched, 0);
  EXPECT_FALSE(stats.replica.any());
}

TEST(SchedulerReplica, ConfigFloorReplicatesCriticalDispenses) {
  // replicate_critical_dispenses raises dispenses feeding a mix; the
  // stand-alone dispense (no mix consumer) stays un-replicated.
  sim::SimulatedChip chip(chip_config(), Rng(9));
  SchedulerConfig config;
  config.replicate_critical_dispenses = 2;
  config.max_cycles = 3000;
  Scheduler scheduler(config);
  const ExecutionStats stats = scheduler.run(chip, assay::master_mix());
  ASSERT_TRUE(stats.success) << stats.failure_reason;
  EXPECT_GT(stats.replica.launched, 0);
  EXPECT_GT(stats.replica.merges, 0);
  EXPECT_EQ(stats.replica.launched,
            stats.replica.merges + stats.replica.retired +
                stats.replica.failovers);
}

TEST(SchedulerReplica, FailoverAbandonsAStuckReplicaWithoutAbortingTheMo) {
  // A large chip with a center goal: the winner's route is long enough for
  // the stuck replica's ladder (watchdog → quarantine → bounded retries)
  // to fail over before the merge.
  FakeChip chip(Rect{0, 0, 119, 119});
  // The second replica dispensed (droplet id 2) is mechanically dead: it
  // never executes a command while its cells keep reading healthy.
  chip.stuck = {2};
  SchedulerConfig config;
  config.recovery.enabled = true;
  // A tight per-replica budget: the dead replica must exhaust its rung of
  // the ladder while its healthy sibling is still in flight.
  config.recovery.max_retries = 1;
  config.recovery.backoff_base_cycles = 1;
  config.recovery.quarantine_after_watchdogs = 1;
  config.recovery.progress_watchdog = false;
  config.recovery.stuck_cycles = 3;
  config.max_cycles = 3000;
  Scheduler scheduler(config);
  const ExecutionStats stats =
      scheduler.run(chip, replicated_dispense(2, 60.0, 60.0));
  ASSERT_TRUE(stats.success) << stats.failure_reason;
  EXPECT_EQ(stats.replica.launched, 2);
  EXPECT_EQ(stats.replica.failovers, 1);
  EXPECT_EQ(stats.replica.merges, 1);
  EXPECT_EQ(stats.replica.retired, 0);  // the loser was abandoned, not retired
  // The failover rung fired and is distinguishable from a job abort.
  bool failover_event = false;
  for (const RecoveryEvent& e : stats.recovery_events)
    failover_event |= e.action == RecoveryAction::kReplicaFailover;
  EXPECT_TRUE(failover_event);
  // An abandoned replica never counts as an aborted MO.
  EXPECT_EQ(stats.aborted_mos, 0);
  EXPECT_EQ(stats.recovery.aborted_jobs, 0);
  EXPECT_EQ(stats.completed_mos, 2);  // the dispense and its output
  // The abandoned record is sealed as such.
  int abandoned = 0;
  for (const ReplicaRouteRecord& record : stats.replica_routes)
    abandoned += record.abandoned ? 1 : 0;
  EXPECT_EQ(abandoned, 1);
}

TEST(SchedulerReplica, AllReplicaFailureEscalatesToGracefulAbort) {
  FakeChip chip(Rect{0, 0, 59, 29});
  chip.stuck = {1, 2};  // both replicas mechanically dead
  SchedulerConfig config;
  config.recovery.enabled = true;
  config.recovery.max_retries = 2;
  config.recovery.quarantine_after_watchdogs = 1;
  config.recovery.progress_watchdog = false;
  config.recovery.stuck_cycles = 4;
  config.max_cycles = 3000;
  Scheduler scheduler(config);
  const ExecutionStats stats = scheduler.run(chip, replicated_dispense(2));
  EXPECT_FALSE(stats.success);
  EXPECT_EQ(stats.replica.failovers, 2);
  // The dispense aborts, and its dependent output MO cascade-aborts.
  EXPECT_EQ(stats.aborted_mos, 2);
  EXPECT_EQ(stats.recovery.aborted_jobs, 2);
  EXPECT_EQ(stats.completed_mos, 0);
}

TEST(SchedulerReplica, SharedDeadlineBudgetIsNeverCached) {
  // A 1-sweep budget expires every solve; the shared per-MO token must
  // keep N replicas within one budget and deadline-expired results must
  // never enter the strategy library.
  sim::SimulatedChip chip(chip_config(), Rng(7));
  StrategyLibrary library;
  SchedulerConfig config;
  config.synthesis.deadline_sweeps = 1;
  config.recovery.enabled = true;
  config.recovery.fallback_on_deadline = true;
  config.max_cycles = 3000;
  Scheduler scheduler(config, &library);
  const ExecutionStats stats = scheduler.run(chip, replicated_dispense(2));
  ASSERT_TRUE(stats.success) << stats.failure_reason;
  EXPECT_GE(stats.recovery.synthesis_deadlines, 2);
  EXPECT_GT(stats.recovery.fallback_routes, 0);
  EXPECT_EQ(library.stats().replica.inserts, 0u);
  EXPECT_EQ(library.stats().plain.inserts, 0u);
}

TEST(SchedulerReplica, DeterministicGivenTheSameSeed) {
  auto run_once = [] {
    sim::SimulatedChip chip(chip_config(), Rng(33));
    SchedulerConfig config;
    config.recovery.enabled = true;
    Scheduler scheduler(config);
    return scheduler.run(chip, replicated_dispense(2));
  };
  const ExecutionStats a = run_once();
  const ExecutionStats b = run_once();
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.replica, b.replica);
  EXPECT_EQ(a.replica_routes.size(), b.replica_routes.size());
}

TEST(SchedulerReplica, ReplicasValidateOnDispensesOnly) {
  assay::AssayBuilder builder("bad-replicas");
  const int d = builder.dispense(30.0, 15.0, 16);
  builder.output({d, 0}, 55.0, 15.0);
  assay::MoList list = std::move(builder).build();
  list.ops[1].replicas = 2;  // the output MO — not meaningful
  EXPECT_THROW(assay::validate(list, Rect{0, 0, 59, 29}), PreconditionError);
}

}  // namespace
}  // namespace meda::core
