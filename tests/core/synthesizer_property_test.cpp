// Property sweeps over the synthesizer: monotonicity and consistency
// relations that must hold for any routing job.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/synthesizer.hpp"
#include "model/outcomes.hpp"
#include "util/rng.hpp"

namespace meda::core {
namespace {

SynthesisConfig no_morph_config() {
  SynthesisConfig config;
  config.rules.enable_morphing = false;
  return config;
}

/// (droplet side, travel distance) sweep fixture.
class SynthesizerSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SynthesizerSweep, FullHealthExpectedCyclesMatchKinematics) {
  const auto [side, distance] = GetParam();
  const Rect chip{0, 0, 39, 19};
  assay::RoutingJob rj;
  rj.start = Rect::from_size(0, 4, side, side);
  rj.goal = Rect::from_size(distance, 4, side, side);
  rj.hazard = chip;
  const Synthesizer synth(chip, no_morph_config());
  const SynthesisResult r =
      synth.synthesize_with_force(rj, full_health_force(40, 20));
  ASSERT_TRUE(r.feasible);
  // Double steps need side >= 4: cycles = ceil(d/2); else d single steps.
  const double expected =
      side >= 4 ? std::ceil(distance / 2.0) : distance;
  EXPECT_DOUBLE_EQ(r.expected_cycles, expected)
      << "side " << side << " distance " << distance;
  EXPECT_DOUBLE_EQ(r.reach_probability, 1.0);
}

TEST_P(SynthesizerSweep, UniformWearScalesExpectedCyclesInversely) {
  const auto [side, distance] = GetParam();
  const Rect chip{0, 0, 39, 19};
  assay::RoutingJob rj;
  rj.start = Rect::from_size(0, 4, side, side);
  rj.goal = Rect::from_size(distance, 4, side, side);
  rj.hazard = chip;
  const Synthesizer synth(chip, no_morph_config());
  double previous = 0.0;
  for (const double f : {1.0, 0.8, 0.5, 0.3}) {
    const SynthesisResult r =
        synth.synthesize_with_force(rj, DoubleMatrix(40, 20, f));
    ASSERT_TRUE(r.feasible) << f;
    // Uniform force: single steps cost 1/f; double steps (side >= 4) have
    // expected progress f(1+f) per cycle, so cost strictly decreases in f.
    EXPECT_GT(r.expected_cycles, previous) << f;
    previous = r.expected_cycles;
    // And the model-exact lower bound: at least distance/(2f) cycles.
    EXPECT_GE(r.expected_cycles, distance / (2.0 * f) - 1e-9) << f;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SidesAndDistances, SynthesizerSweep,
    ::testing::Combine(::testing::Values(3, 4, 5),
                       ::testing::Values(4, 8, 14)));

TEST(SynthesizerProperties, ExpandingHazardNeverHurts) {
  // A larger routing area can only improve (or preserve) the optimum.
  const Rect chip{0, 0, 29, 29};
  DoubleMatrix force = full_health_force(30, 30);
  for (int y = 2; y < 30; ++y) force(12, y) = 0.02;  // weak wall, south gap
  assay::RoutingJob rj;
  rj.start = Rect::from_size(2, 10, 3, 3);
  rj.goal = Rect::from_size(22, 10, 3, 3);
  const Synthesizer synth(chip, no_morph_config());
  double previous = std::numeric_limits<double>::infinity();
  for (const int margin : {1, 3, 6, 10}) {
    rj.hazard = assay::zone(rj.start, rj.goal, chip, margin);
    const SynthesisResult r = synth.synthesize_with_force(rj, force);
    ASSERT_TRUE(r.feasible) << margin;
    EXPECT_LE(r.expected_cycles, previous + 1e-9) << margin;
    previous = r.expected_cycles;
  }
}

TEST(SynthesizerProperties, CellImprovementNeverHurts) {
  // Raising any single cell's force cannot increase the optimal expected
  // cycles (sampled over a few cells).
  const Rect chip{0, 0, 19, 9};
  DoubleMatrix force(20, 10, 0.5);
  assay::RoutingJob rj;
  rj.start = Rect::from_size(0, 3, 3, 3);
  rj.goal = Rect::from_size(14, 3, 3, 3);
  rj.hazard = chip;
  const Synthesizer synth(chip, no_morph_config());
  const double base =
      synth.synthesize_with_force(rj, force).expected_cycles;
  for (const auto& [x, y] : {std::pair{5, 4}, {10, 3}, {13, 5}, {2, 2}}) {
    DoubleMatrix improved = force;
    improved(x, y) = 1.0;
    const double better =
        synth.synthesize_with_force(rj, improved).expected_cycles;
    EXPECT_LE(better, base + 1e-9) << x << "," << y;
  }
}

TEST(SynthesizerProperties, PmaxNeverBelowAnyFeasibleRminPolicy) {
  // Whenever Rmin is finite, Pmax must be 1 (consistency between queries
  // at the synthesizer level, across a sweep of degraded fields).
  const Rect chip{0, 0, 19, 9};
  const Synthesizer synth(chip, no_morph_config());
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    DoubleMatrix force(20, 10);
    for (int y = 0; y < 10; ++y)
      for (int x = 0; x < 20; ++x)
        force(x, y) = rng.bernoulli(0.1) ? 0.0 : rng.uniform(0.2, 1.0);
    assay::RoutingJob rj;
    rj.start = Rect::from_size(0, 3, 3, 3);
    rj.goal = Rect::from_size(15, 3, 3, 3);
    rj.hazard = chip;
    const SynthesisResult r = synth.synthesize_with_force(rj, force);
    if (std::isfinite(r.expected_cycles)) {
      EXPECT_NEAR(r.reach_probability, 1.0, 1e-6) << trial;
    }
  }
}

}  // namespace
}  // namespace meda::core
