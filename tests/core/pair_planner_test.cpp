#include "core/pair_planner.hpp"

#include <gtest/gtest.h>

#include "model/outcomes.hpp"
#include "sim/simulated_chip.hpp"
#include "util/check.hpp"

namespace meda::core {
namespace {

PairPlannerConfig no_morph_config() {
  PairPlannerConfig config;
  config.rules.enable_morphing = false;
  return config;
}

assay::RoutingJob job(const Rect& start, const Rect& goal,
                      const Rect& hazard) {
  assay::RoutingJob rj;
  rj.start = start;
  rj.goal = goal;
  rj.hazard = hazard;
  return rj;
}

/// Applies a plan's intended outcomes (full-health semantics) and checks
/// the separation invariant along the way.
std::pair<Rect, Rect> replay(const PairPlan& plan, Rect a, Rect b,
                             int min_gap) {
  for (const PairPlanStep& step : plan.steps) {
    if (step.a) a = apply(*step.a, a);
    if (step.b) b = apply(*step.b, b);
    EXPECT_GE(a.manhattan_gap(b), min_gap);
  }
  return {a, b};
}

TEST(PairPlanner, DisjointCorridorsMakespanIsTheSlowerRoute) {
  const Rect chip{0, 0, 29, 19};
  const DoubleMatrix force = full_health_force(30, 20);
  // Droplet a: 8 cells east (4 double steps); droplet b: 4 cells east.
  const auto ja = job(Rect::from_size(0, 2, 4, 4),
                      Rect::from_size(8, 2, 4, 4), Rect{0, 0, 29, 7});
  const auto jb = job(Rect::from_size(0, 13, 4, 4),
                      Rect::from_size(4, 13, 4, 4), Rect{0, 12, 29, 19});
  const PairPlan plan = plan_pair(ja, jb, force, chip, no_morph_config());
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.steps.size(), 4u);  // makespan = slower droplet
  EXPECT_DOUBLE_EQ(plan.expected_cycles, 4.0);
  const auto [fa, fb] = replay(plan, ja.start, jb.start, 2);
  EXPECT_TRUE(ja.goal.contains(fa));
  EXPECT_TRUE(jb.goal.contains(fb));
}

TEST(PairPlanner, SwapInACorridorWithAPassingBay) {
  // A 6-row corridor with droplets that must exchange ends: independent
  // shortest paths collide head-on; the joint plan uses the vertical space
  // to pass. (3×3 droplets, corridor 24×8.)
  const Rect chip{0, 0, 23, 7};
  const DoubleMatrix force = full_health_force(24, 8);
  const Rect hazard = chip;
  const auto ja = job(Rect::from_size(0, 2, 3, 3),
                      Rect::from_size(21, 2, 3, 3), hazard);
  const auto jb = job(Rect::from_size(21, 2, 3, 3),
                      Rect::from_size(0, 2, 3, 3), hazard);
  const PairPlan plan = plan_pair(ja, jb, force, chip, no_morph_config());
  ASSERT_TRUE(plan.feasible);
  const auto [fa, fb] = replay(plan, ja.start, jb.start, 2);
  EXPECT_TRUE(ja.goal.contains(fa));
  EXPECT_TRUE(jb.goal.contains(fb));
  // 21 columns of travel each; passing costs a bounded detour.
  EXPECT_GE(plan.steps.size(), 11u);
  EXPECT_LE(plan.steps.size(), 24u);
}

TEST(PairPlanner, SwapIsInfeasibleWithoutAPassingBay) {
  // A corridor exactly as tall as the droplets plus the separation gap on
  // one side only: there is no room to pass.
  const Rect chip{0, 0, 23, 3};  // 4 rows; 3×3 droplets can't pass
  const DoubleMatrix force = full_health_force(24, 4);
  const auto ja = job(Rect::from_size(0, 0, 3, 3),
                      Rect::from_size(21, 0, 3, 3), chip);
  const auto jb = job(Rect::from_size(21, 0, 3, 3),
                      Rect::from_size(0, 0, 3, 3), chip);
  const PairPlan plan = plan_pair(ja, jb, force, chip, no_morph_config());
  EXPECT_FALSE(plan.feasible);
}

TEST(PairPlanner, SeparationRuleHoldsInEveryIntermediateState) {
  const Rect chip{0, 0, 19, 9};
  const DoubleMatrix force = full_health_force(20, 10);
  // Crossing routes: a goes east along the middle, b goes west.
  const auto ja = job(Rect::from_size(0, 3, 3, 3),
                      Rect::from_size(16, 3, 3, 3), chip);
  const auto jb = job(Rect::from_size(16, 3, 3, 3),
                      Rect::from_size(0, 3, 3, 3), chip);
  const PairPlan plan = plan_pair(ja, jb, force, chip, no_morph_config());
  ASSERT_TRUE(plan.feasible);
  replay(plan, ja.start, jb.start, 2);  // asserts the gap at every step
}

TEST(PairPlanner, WeightsSteerAroundWornCells) {
  const Rect chip{0, 0, 19, 11};
  DoubleMatrix force = full_health_force(20, 12);
  for (int x = 8; x <= 10; ++x)
    for (int y = 0; y <= 5; ++y) force(x, y) = 0.05;  // worn southern band
  const auto ja = job(Rect::from_size(0, 1, 3, 3),
                      Rect::from_size(16, 1, 3, 3), chip);
  // b parks far north, out of the way.
  const auto jb = job(Rect::from_size(0, 9, 3, 3),
                      Rect::from_size(2, 9, 3, 3), chip);
  const PairPlan plan = plan_pair(ja, jb, force, chip, no_morph_config());
  ASSERT_TRUE(plan.feasible);
  // Droplet a detours north of the worn band: no step may cost > 3
  // expected cycles (crossing the band would cost ~20 per step).
  EXPECT_LT(plan.expected_cycles, 3.0 * plan.steps.size());
  Rect a = ja.start;
  for (const PairPlanStep& step : plan.steps) {
    if (step.a) a = apply(*step.a, a);
    for (int x = 8; x <= 10; ++x)
      for (int y = 0; y <= 5; ++y)
        EXPECT_FALSE(a.contains(x, y)) << a.to_string();
  }
}

TEST(PairPlanner, ExecutesOnTheSimulator) {
  // Drive the swap plan open-loop on a healthy simulated chip: moves are
  // deterministic, so the plan executes exactly.
  const Rect chip_bounds{0, 0, 23, 7};
  sim::SimulatedChipConfig config;
  config.chip.width = 24;
  config.chip.height = 8;
  sim::SimulatedChip chip(config, Rng(3));
  const auto ja = job(Rect::from_size(0, 2, 3, 3),
                      Rect::from_size(21, 2, 3, 3), chip_bounds);
  const auto jb = job(Rect::from_size(21, 2, 3, 3),
                      Rect::from_size(0, 2, 3, 3), chip_bounds);
  const PairPlan plan = plan_pair(ja, jb, full_health_force(24, 8),
                                  chip_bounds, no_morph_config());
  ASSERT_TRUE(plan.feasible);
  const DropletId da = chip.dispense(ja.start);
  const DropletId db = chip.dispense(jb.start);
  for (const PairPlanStep& step : plan.steps) {
    std::vector<Command> commands;
    if (step.a) commands.push_back(Command{da, *step.a, -1});
    if (step.b) commands.push_back(Command{db, *step.b, -1});
    chip.step(commands);
  }
  EXPECT_TRUE(ja.goal.contains(chip.droplet_position(da)));
  EXPECT_TRUE(jb.goal.contains(chip.droplet_position(db)));
  EXPECT_EQ(chip.blocked_moves(), 0u);
}

TEST(PairPlanner, StartAtGoalsIsTrivial) {
  const Rect chip{0, 0, 19, 9};
  const auto ja = job(Rect::from_size(0, 0, 3, 3),
                      Rect::from_size(0, 0, 3, 3), chip);
  const auto jb = job(Rect::from_size(10, 0, 3, 3),
                      Rect::from_size(10, 0, 3, 3), chip);
  const PairPlan plan =
      plan_pair(ja, jb, full_health_force(20, 10), chip, no_morph_config());
  ASSERT_TRUE(plan.feasible);
  EXPECT_TRUE(plan.steps.empty());
  EXPECT_DOUBLE_EQ(plan.expected_cycles, 0.0);
}

TEST(PairPlanner, RejectsTouchingStartPair) {
  const Rect chip{0, 0, 19, 9};
  const auto ja = job(Rect::from_size(0, 0, 3, 3),
                      Rect::from_size(10, 0, 3, 3), chip);
  const auto jb = job(Rect::from_size(3, 0, 3, 3),  // overlapping a
                      Rect::from_size(15, 0, 3, 3), chip);
  EXPECT_THROW(plan_pair(ja, jb, full_health_force(20, 10), chip,
                         no_morph_config()),
               PreconditionError);
}

TEST(PairPlanner, EffortBoundFailsGracefully) {
  const Rect chip{0, 0, 23, 7};
  PairPlannerConfig config = no_morph_config();
  config.max_expansions = 10;
  const auto ja = job(Rect::from_size(0, 2, 3, 3),
                      Rect::from_size(21, 2, 3, 3), chip);
  const auto jb = job(Rect::from_size(21, 2, 3, 3),
                      Rect::from_size(0, 2, 3, 3), chip);
  const PairPlan plan =
      plan_pair(ja, jb, full_health_force(24, 8), chip, config);
  EXPECT_FALSE(plan.feasible);
  EXPECT_LE(plan.states_expanded, 11u);
}

}  // namespace
}  // namespace meda::core
