#include "core/mdp.hpp"

#include <gtest/gtest.h>

#include "model/outcomes.hpp"
#include "util/check.hpp"

namespace meda::core {
namespace {

ActionRules no_morph_rules() {
  ActionRules rules;
  rules.enable_morphing = false;
  return rules;
}

/// Routing job across a square area with droplet and area side lengths.
assay::RoutingJob corner_to_corner(int area_side, int droplet_side) {
  assay::RoutingJob rj;
  rj.start = Rect::from_size(0, 0, droplet_side, droplet_side);
  rj.goal = Rect::from_size(area_side - droplet_side,
                            area_side - droplet_side, droplet_side,
                            droplet_side);
  rj.hazard = Rect{0, 0, area_side - 1, area_side - 1};
  return rj;
}

TEST(RoutingMdpBuilder, TableVStateCounts) {
  // Table V (minus the paper's two extra absorbing bookkeeping states):
  // states = (A − w + 1)² positions + 1 hazard sink.
  struct Row {
    int area, droplet;
    std::size_t states;
  };
  for (const Row row : {Row{10, 3, 65}, Row{10, 4, 50}, Row{10, 5, 37},
                        Row{10, 6, 26}, Row{20, 3, 325}, Row{20, 4, 290},
                        Row{20, 5, 257}, Row{20, 6, 226}, Row{30, 3, 785},
                        Row{30, 4, 730}, Row{30, 5, 677}, Row{30, 6, 626}}) {
    const Rect chip{0, 0, row.area - 1, row.area - 1};
    const RoutingMdp mdp = build_routing_mdp(
        corner_to_corner(row.area, row.droplet),
        full_health_force(row.area, row.area), chip, no_morph_rules());
    EXPECT_EQ(mdp.stats().states, row.states)
        << row.area << "x" << row.area << " droplet " << row.droplet;
  }
}

TEST(RoutingMdpBuilder, GoalStatesAreAbsorbing) {
  const Rect chip{0, 0, 9, 9};
  const RoutingMdp mdp =
      build_routing_mdp(corner_to_corner(10, 3), full_health_force(10, 10),
                        chip, no_morph_rules());
  int goals = 0;
  for (std::size_t s = 0; s < mdp.droplets.size(); ++s) {
    if (mdp.is_goal[s]) {
      ++goals;
      EXPECT_TRUE(mdp.choices[s].empty());
      EXPECT_TRUE(mdp.droplets[s] == Rect::from_size(7, 7, 3, 3));
    } else {
      EXPECT_FALSE(mdp.choices[s].empty());
    }
  }
  EXPECT_EQ(goals, 1);
}

TEST(RoutingMdpBuilder, ChoiceDistributionsSumToOne) {
  const Rect chip{0, 0, 19, 19};
  DoubleMatrix force(20, 20, 0.6);
  const RoutingMdp mdp = build_routing_mdp(corner_to_corner(20, 4), force,
                                           chip, ActionRules{});
  for (const auto& choices : mdp.choices) {
    for (const Choice& c : choices) {
      double total = 0.0;
      for (const Transition& t : c.transitions) {
        EXPECT_GT(t.probability, 0.0);
        EXPECT_LE(t.target, mdp.hazard_sink());
        total += t.probability;
      }
      EXPECT_NEAR(total, 1.0, 1e-12);
    }
  }
}

TEST(RoutingMdpBuilder, HazardSinkReachableWhenHazardSmallerThanChip) {
  const Rect chip{0, 0, 19, 19};
  assay::RoutingJob rj;
  rj.start = Rect::from_size(5, 5, 3, 3);
  rj.goal = Rect::from_size(10, 5, 3, 3);
  rj.hazard = Rect{4, 4, 14, 9};  // strictly inside the chip
  const RoutingMdp mdp = build_routing_mdp(rj, full_health_force(20, 20),
                                           chip, no_morph_rules());
  bool sink_reachable = false;
  for (const auto& choices : mdp.choices)
    for (const Choice& c : choices)
      for (const Transition& t : c.transitions)
        if (t.target == mdp.hazard_sink()) sink_reachable = true;
  EXPECT_TRUE(sink_reachable);
  // Every droplet state lies within the hazard bounds.
  for (const Rect& d : mdp.droplets) EXPECT_TRUE(rj.hazard.contains(d));
}

TEST(RoutingMdpBuilder, MorphingExpandsTheShapeSpace) {
  const Rect chip{0, 0, 11, 11};
  assay::RoutingJob rj;
  rj.start = Rect::from_size(0, 0, 5, 4);  // 5×4 can morph under r = 3/2
  rj.goal = Rect::from_size(7, 8, 5, 4);
  rj.hazard = chip;
  ActionRules with_morph;
  const RoutingMdp with =
      build_routing_mdp(rj, full_health_force(12, 12), chip, with_morph);
  const RoutingMdp without = build_routing_mdp(
      rj, full_health_force(12, 12), chip, no_morph_rules());
  EXPECT_GT(with.stats().states, without.stats().states);
  // All morph shapes conserve w + h.
  for (const Rect& d : with.droplets)
    EXPECT_EQ(d.width() + d.height(), 9);
}

TEST(RoutingMdpBuilder, StartStateIsInterned) {
  const Rect chip{0, 0, 9, 9};
  const RoutingMdp mdp =
      build_routing_mdp(corner_to_corner(10, 3), full_health_force(10, 10),
                        chip, no_morph_rules());
  EXPECT_EQ(mdp.droplets[mdp.start], Rect::from_size(0, 0, 3, 3));
}

TEST(RoutingMdpBuilder, StartAtGoalYieldsTrivialModel) {
  const Rect chip{0, 0, 9, 9};
  assay::RoutingJob rj;
  rj.start = Rect::from_size(4, 4, 3, 3);
  rj.goal = Rect{3, 3, 7, 7};  // permissive goal containing the start
  rj.hazard = chip;
  const RoutingMdp mdp = build_routing_mdp(rj, full_health_force(10, 10),
                                           chip, no_morph_rules());
  EXPECT_TRUE(mdp.is_goal[mdp.start]);
  EXPECT_TRUE(mdp.choices[mdp.start].empty());
}

TEST(RoutingMdpBuilder, ZeroForceCellsPruneTransitions) {
  const Rect chip{0, 0, 9, 9};
  DoubleMatrix force = full_health_force(10, 10);
  for (int y = 0; y < 10; ++y) force(5, y) = 0.0;  // dead column
  const RoutingMdp blocked = build_routing_mdp(
      corner_to_corner(10, 3), force, chip, no_morph_rules());
  const RoutingMdp open =
      build_routing_mdp(corner_to_corner(10, 3), full_health_force(10, 10),
                        chip, no_morph_rules());
  EXPECT_LT(blocked.stats().transitions, open.stats().transitions);
}

TEST(RoutingMdpBuilder, StatsCountChoicesAndTransitions) {
  const Rect chip{0, 0, 9, 9};
  const RoutingMdp mdp =
      build_routing_mdp(corner_to_corner(10, 4), full_health_force(10, 10),
                        chip, no_morph_rules());
  const ModelStats stats = mdp.stats();
  std::size_t choices = 0, transitions = 0;
  for (const auto& cs : mdp.choices) {
    choices += cs.size();
    for (const Choice& c : cs) transitions += c.transitions.size();
  }
  EXPECT_EQ(stats.choices, choices);
  EXPECT_EQ(stats.transitions, transitions);
  EXPECT_EQ(stats.states, mdp.droplets.size() + 1);
}

TEST(RoutingMdpBuilder, RejectsInvalidJobs) {
  const Rect chip{0, 0, 9, 9};
  const DoubleMatrix force = full_health_force(10, 10);
  assay::RoutingJob rj = corner_to_corner(10, 3);
  rj.start = Rect::none();
  EXPECT_THROW(build_routing_mdp(rj, force, chip, ActionRules{}),
               PreconditionError);
  rj = corner_to_corner(10, 3);
  rj.hazard = Rect{5, 5, 9, 9};  // start outside hazard
  EXPECT_THROW(build_routing_mdp(rj, force, chip, ActionRules{}),
               PreconditionError);
  rj = corner_to_corner(10, 3);
  EXPECT_THROW(
      build_routing_mdp(rj, full_health_force(5, 5), chip, ActionRules{}),
      PreconditionError);
}

}  // namespace
}  // namespace meda::core
