#include "core/evaluation.hpp"

#include <gtest/gtest.h>

#include "core/synthesizer.hpp"
#include "model/outcomes.hpp"
#include "util/check.hpp"

namespace meda::core {
namespace {

const Rect kChip{0, 0, 19, 19};

SynthesisConfig no_morph_config() {
  SynthesisConfig config;
  config.rules.enable_morphing = false;
  return config;
}

assay::RoutingJob east_job(int cells) {
  assay::RoutingJob rj;
  rj.start = Rect::from_size(0, 8, 4, 4);
  rj.goal = Rect::from_size(cells, 8, 4, 4);
  rj.hazard = kChip;
  return rj;
}

TEST(Evaluation, DeterministicStrategySucceedsEveryEpisode) {
  const assay::RoutingJob rj = east_job(8);
  const Synthesizer synth(kChip, no_morph_config());
  const SynthesisResult r =
      synth.synthesize_with_force(rj, full_health_force(20, 20));
  ASSERT_TRUE(r.feasible);
  Rng rng(1);
  EvaluationConfig config;
  config.episodes = 200;
  config.rules = no_morph_config().rules;
  const EvaluationResult eval =
      evaluate_strategy(r.strategy, rj, full_health_force(20, 20), kChip,
                        config, rng);
  EXPECT_EQ(eval.successes, 200);
  EXPECT_DOUBLE_EQ(eval.success_rate, 1.0);
  EXPECT_DOUBLE_EQ(eval.mean_cycles_on_success, r.expected_cycles);
  EXPECT_EQ(eval.hazard_violations, 0);
  EXPECT_EQ(eval.strategy_gaps, 0);
  EXPECT_EQ(eval.timeouts, 0);
}

TEST(Evaluation, MonteCarloMeanMatchesRminOnStochasticField) {
  // Cross-validation of value iteration: synthesize and evaluate on the
  // SAME degraded force field; the empirical mean cycle count must match
  // the Rmin value within Monte-Carlo error.
  const assay::RoutingJob rj = east_job(10);
  DoubleMatrix force(20, 20, 0.7);
  const Synthesizer synth(kChip, no_morph_config());
  const SynthesisResult r = synth.synthesize_with_force(rj, force);
  ASSERT_TRUE(r.feasible);
  Rng rng(2);
  EvaluationConfig config;
  config.episodes = 4000;
  config.rules = no_morph_config().rules;
  const EvaluationResult eval =
      evaluate_strategy(r.strategy, rj, force, kChip, config, rng);
  EXPECT_DOUBLE_EQ(eval.success_rate, 1.0);  // retry loops are a.s. winning
  EXPECT_NEAR(eval.mean_cycles_on_success, r.expected_cycles,
              r.expected_cycles * 0.05);
}

TEST(Evaluation, ModelRealityGapShowsUpAsSlowdown) {
  // Strategy synthesized from quantized health but executed against a much
  // weaker true field: success still a.s. (no hazard risk) but slower than
  // the model predicted.
  const assay::RoutingJob rj = east_job(10);
  IntMatrix health(20, 20, 3);
  for (int y = 0; y < 20; ++y) health(5, y) = 3;  // controller sees health
  const Synthesizer synth(kChip, no_morph_config());
  const SynthesisResult r = synth.synthesize(rj, health, 2);
  ASSERT_TRUE(r.feasible);
  DoubleMatrix true_force = full_health_force(20, 20);
  for (int y = 0; y < 20; ++y)
    for (int x = 4; x <= 6; ++x) true_force(x, y) = 0.3;  // hidden wear
  Rng rng(3);
  EvaluationConfig config;
  config.episodes = 500;
  config.rules = no_morph_config().rules;
  const EvaluationResult eval =
      evaluate_strategy(r.strategy, rj, true_force, kChip, config, rng);
  EXPECT_DOUBLE_EQ(eval.success_rate, 1.0);
  EXPECT_GT(eval.mean_cycles_on_success, r.expected_cycles);
}

TEST(Evaluation, UncoveredStateCountsAsGap) {
  Strategy partial;  // covers only the start state
  const assay::RoutingJob rj = east_job(8);
  partial.set(rj.start, Action::kEE);
  Rng rng(4);
  EvaluationConfig config;
  config.episodes = 50;
  config.rules = no_morph_config().rules;
  const EvaluationResult eval = evaluate_strategy(
      partial, rj, full_health_force(20, 20), kChip, config, rng);
  EXPECT_EQ(eval.successes, 0);
  EXPECT_EQ(eval.strategy_gaps, 50);
}

TEST(Evaluation, ZeroForceTimesOut) {
  Strategy strategy;
  const assay::RoutingJob rj = east_job(8);
  // A legal action that can never succeed on a dead chip.
  strategy.set(rj.start, Action::kE);
  Rng rng(5);
  EvaluationConfig config;
  config.episodes = 10;
  config.max_cycles = 50;
  config.rules = no_morph_config().rules;
  const EvaluationResult eval = evaluate_strategy(
      strategy, rj, DoubleMatrix(20, 20, 0.0), kChip, config, rng);
  EXPECT_EQ(eval.timeouts, 10);
  EXPECT_EQ(eval.successes, 0);
}

TEST(Evaluation, HazardViolationsAreDetected) {
  // A strategy that deliberately walks out of the hazard bounds.
  assay::RoutingJob rj;
  rj.start = Rect::from_size(5, 5, 3, 3);
  rj.goal = Rect::from_size(12, 5, 3, 3);
  rj.hazard = Rect{4, 4, 15, 9};
  Strategy bad;
  bad.set(rj.start, Action::kN);                       // (5,6,7,8)
  bad.set(Rect::from_size(5, 6, 3, 3), Action::kN);    // leaves y<=9...
  bad.set(Rect::from_size(5, 7, 3, 3), Action::kN);    // (5,8,7,10): yb=10>9
  Rng rng(6);
  EvaluationConfig config;
  config.episodes = 20;
  const EvaluationResult eval = evaluate_strategy(
      bad, rj, full_health_force(20, 20), kChip, config, rng);
  EXPECT_EQ(eval.hazard_violations, 20);
}

TEST(Evaluation, StartInsideGoalSucceedsInZeroCycles) {
  assay::RoutingJob rj;
  rj.start = Rect::from_size(5, 5, 3, 3);
  rj.goal = Rect{4, 4, 9, 9};
  rj.hazard = kChip;
  Rng rng(7);
  EvaluationConfig config;
  config.episodes = 5;
  const EvaluationResult eval = evaluate_strategy(
      Strategy{}, rj, full_health_force(20, 20), kChip, config, rng);
  EXPECT_EQ(eval.successes, 5);
  EXPECT_DOUBLE_EQ(eval.mean_cycles_on_success, 0.0);
}

TEST(Evaluation, RejectsBadConfig) {
  const assay::RoutingJob rj = east_job(8);
  Rng rng(8);
  EvaluationConfig config;
  config.episodes = 0;
  EXPECT_THROW(evaluate_strategy(Strategy{}, rj, full_health_force(20, 20),
                                 kChip, config, rng),
               PreconditionError);
}

}  // namespace
}  // namespace meda::core
