#include "sim/simulated_chip.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/check.hpp"

namespace meda::sim {
namespace {

SimulatedChipConfig small_config() {
  SimulatedChipConfig config;
  config.chip.width = 20;
  config.chip.height = 12;
  return config;
}

core::Command move(core::DropletId id, Action a, core::DropletId partner = -1) {
  return core::Command{id, a, partner};
}

TEST(SimulatedChip, DispenseAndSense) {
  SimulatedChip chip(small_config(), Rng(1));
  const Rect at{0, 4, 3, 7};
  ASSERT_TRUE(chip.location_clear(at));
  const core::DropletId id = chip.dispense(at);
  EXPECT_EQ(chip.droplet_position(id), at);
  EXPECT_FALSE(chip.location_clear(at));
  EXPECT_EQ(chip.droplets().size(), 1u);
  const IntMatrix h = chip.sense_health();
  EXPECT_EQ(h.width(), 20);
  EXPECT_EQ(h(5, 5), 3);
}

TEST(SimulatedChip, DispenseMustTouchAnEdge) {
  SimulatedChip chip(small_config(), Rng(1));
  EXPECT_THROW(chip.dispense(Rect{5, 5, 8, 8}), PreconditionError);
}

TEST(SimulatedChip, DispenseIntoOccupiedSpaceThrows) {
  SimulatedChip chip(small_config(), Rng(1));
  chip.dispense(Rect{0, 4, 3, 7});
  EXPECT_THROW(chip.dispense(Rect{0, 5, 3, 8}), PreconditionError);
}

TEST(SimulatedChip, FullHealthMovesAreDeterministic) {
  SimulatedChip chip(small_config(), Rng(2));
  const core::DropletId id = chip.dispense(Rect{0, 4, 3, 7});
  chip.step({move(id, Action::kE)});
  EXPECT_EQ(chip.droplet_position(id), (Rect{1, 4, 4, 7}));
  chip.step({move(id, Action::kNE)});
  EXPECT_EQ(chip.droplet_position(id), (Rect{2, 5, 5, 8}));
  chip.step({move(id, Action::kWW)});
  EXPECT_EQ(chip.droplet_position(id), (Rect{0, 5, 3, 8}));
  EXPECT_EQ(chip.cycle(), 3u);
}

TEST(SimulatedChip, StepActuatesTargetPatternCells) {
  SimulatedChip chip(small_config(), Rng(3));
  const core::DropletId id = chip.dispense(Rect{0, 4, 3, 7});
  chip.step({move(id, Action::kE)});
  // The shifted-in pattern is the move target (1,4)-(4,7): its cells gain
  // one actuation; the vacated column x=0 does not.
  EXPECT_EQ(chip.substrate().mc(4, 4).actuations(), 1u);
  EXPECT_EQ(chip.substrate().mc(1, 5).actuations(), 1u);
  EXPECT_EQ(chip.substrate().mc(0, 4).actuations(), 0u);
}

TEST(SimulatedChip, UncommandedDropletsAreHeldAndActuated) {
  SimulatedChip chip(small_config(), Rng(4));
  const core::DropletId id = chip.dispense(Rect{0, 4, 3, 7});
  chip.step({});
  chip.step({});
  EXPECT_EQ(chip.droplet_position(id), (Rect{0, 4, 3, 7}));
  EXPECT_EQ(chip.substrate().mc(1, 5).actuations(), 2u);
  EXPECT_EQ(chip.substrate().mc(4, 4).actuations(), 0u);
}

TEST(SimulatedChip, FailedPullLeavesDropletInPlace) {
  SimulatedChip chip(small_config(), Rng(5));
  const core::DropletId id = chip.dispense(Rect{0, 4, 3, 7});
  // Kill the entire frontier column for an eastward move.
  for (int y = 0; y < 12; ++y) chip.substrate().mc(4, y).inject_fault(0);
  chip.step({move(id, Action::kE)});
  EXPECT_EQ(chip.droplet_position(id), (Rect{0, 4, 3, 7}));
}

TEST(SimulatedChip, OutcomeFrequenciesTrackTrueForce) {
  // Uniform degradation D = 0.5 → force 0.25 on the frontier: success rate
  // of a single-step move should concentrate near 0.25. c is huge so the
  // wear added by the test itself stays negligible.
  SimulatedChipConfig config = small_config();
  config.chip.degradation = DegradationRange{0.5, 0.5, 1e5, 1e5};
  SimulatedChip chip(config, Rng(6));
  for (int y = 0; y < 12; ++y)
    for (int x = 0; x < 20; ++x)
      chip.substrate().mc(x, y).actuate_n(100000);
  const core::DropletId id = chip.dispense(Rect{0, 4, 3, 7});
  int successes = 0;
  const int attempts = 1500;
  for (int i = 0; i < attempts; ++i) {
    const Rect before = chip.droplet_position(id);
    chip.step({move(id, before.xa == 0 ? Action::kE : Action::kW)});
    if (chip.droplet_position(id) != before) ++successes;
  }
  EXPECT_NEAR(successes / static_cast<double>(attempts), 0.25, 0.04);
}

TEST(SimulatedChip, BlockedMoveIsCountedAndHeld) {
  SimulatedChip chip(small_config(), Rng(7));
  const core::DropletId a = chip.dispense(Rect{0, 0, 3, 3});
  const core::DropletId b = chip.dispense(Rect{6, 0, 9, 3});  // gap 3, south edge
  chip.step({move(a, Action::kE)});  // gap 3 → 2 (one free column): allowed
  EXPECT_EQ(chip.droplet_position(a), (Rect{1, 0, 4, 3}));
  chip.step({move(a, Action::kE)});  // gap 2 → 1 (contact): blocked
  EXPECT_EQ(chip.droplet_position(a), (Rect{1, 0, 4, 3}));
  EXPECT_EQ(chip.droplet_position(b), (Rect{6, 0, 9, 3}));
  EXPECT_EQ(chip.blocked_moves(), 1u);
}

TEST(SimulatedChip, MergePartnersMayTouchButNotOverlap) {
  SimulatedChip chip(small_config(), Rng(8));
  const core::DropletId a = chip.dispense(Rect{0, 0, 3, 3});
  const core::DropletId b = chip.dispense(Rect{6, 0, 9, 3});
  chip.step({move(a, Action::kE, b)});
  chip.step({move(a, Action::kE, b)});  // partner contact (gap 1) allowed
  EXPECT_EQ(chip.droplet_position(a), (Rect{2, 0, 5, 3}));
  EXPECT_EQ(chip.blocked_moves(), 0u);
  chip.step({move(a, Action::kE, b)});  // would overlap → blocked
  EXPECT_EQ(chip.droplet_position(a), (Rect{2, 0, 5, 3}));
  EXPECT_EQ(chip.blocked_moves(), 1u);
}

TEST(SimulatedChip, MergeRequiresContact) {
  SimulatedChip chip(small_config(), Rng(9));
  const core::DropletId a = chip.dispense(Rect{0, 0, 3, 3});
  const core::DropletId b = chip.dispense(Rect{6, 0, 9, 3});
  EXPECT_THROW(chip.merge(a, b, Rect{2, 0, 7, 4}), PreconditionError);
  chip.step({move(a, Action::kE, b)});
  chip.step({move(a, Action::kE, b)});  // now adjacent (gap 1)
  const core::DropletId m = chip.merge(a, b, Rect{3, 0, 8, 4});
  EXPECT_EQ(chip.droplet_position(m), (Rect{3, 0, 8, 4}));
  EXPECT_EQ(chip.droplets().size(), 1u);
  EXPECT_THROW(chip.droplet_position(a), PreconditionError);
}

TEST(SimulatedChip, SplitReplacesTheParent) {
  SimulatedChip chip(small_config(), Rng(10));
  const core::DropletId parent = chip.dispense(Rect{0, 3, 5, 7});
  const auto [p0, p1] =
      chip.split(parent, Rect{1, 4, 3, 6}, Rect{5, 4, 7, 6});
  EXPECT_EQ(chip.droplet_position(p0), (Rect{1, 4, 3, 6}));
  EXPECT_EQ(chip.droplet_position(p1), (Rect{5, 4, 7, 6}));
  EXPECT_THROW(chip.droplet_position(parent), PreconditionError);
  EXPECT_EQ(chip.droplets().size(), 2u);
}

TEST(SimulatedChip, SimultaneousCoordinatedMotionIsNotBlocked) {
  // B vacates the space A enters in the same operational cycle — legal on
  // real MEDA (all droplets actuate at once) and required by the pair
  // planner.
  SimulatedChip chip(small_config(), Rng(21));
  const core::DropletId a = chip.dispense(Rect{0, 0, 3, 3});
  const core::DropletId b = chip.dispense(Rect{6, 0, 9, 3});  // gap 3
  chip.step({move(a, Action::kE), move(b, Action::kE)});
  EXPECT_EQ(chip.droplet_position(a), (Rect{1, 0, 4, 3}));
  EXPECT_EQ(chip.droplet_position(b), (Rect{7, 0, 10, 3}));
  EXPECT_EQ(chip.blocked_moves(), 0u);
  // A convoy: both keep moving east at gap 3 forever.
  for (int i = 0; i < 5; ++i)
    chip.step({move(a, Action::kE), move(b, Action::kE)});
  EXPECT_EQ(chip.blocked_moves(), 0u);
  EXPECT_EQ(chip.droplet_position(a), (Rect{6, 0, 9, 3}));
}

TEST(SimulatedChip, HeadOnContactIsStillBlocked) {
  SimulatedChip chip(small_config(), Rng(22));
  const core::DropletId a = chip.dispense(Rect{0, 0, 3, 3});
  const core::DropletId b = chip.dispense(Rect{6, 0, 9, 3});  // gap 3
  // Moving toward each other would leave gap 1 (< 2): at least one of the
  // two must be held, and the final configuration stays legal.
  chip.step({move(a, Action::kE), move(b, Action::kW)});
  const Rect pa = chip.droplet_position(a);
  const Rect pb = chip.droplet_position(b);
  EXPECT_GE(pa.manhattan_gap(pb), 2);
  EXPECT_GE(chip.blocked_moves(), 1u);
}

TEST(SimulatedChip, SplitClearReflectsNeighborDroplets) {
  SimulatedChip chip(small_config(), Rng(20));
  const core::DropletId parent = chip.dispense(Rect{3, 0, 8, 4});
  const Rect p0{4, 0, 6, 2};
  const Rect p1{8, 0, 10, 2};
  EXPECT_TRUE(chip.split_clear(parent, p0, p1));
  // A neighbor in contact range of part1 (gap 1 < 2) blocks the split...
  const core::DropletId neighbor = chip.dispense(Rect{11, 0, 14, 3});
  EXPECT_FALSE(chip.split_clear(parent, p0, p1));
  // ...and removing it unblocks it (the scheduler waits in between).
  chip.discard(neighbor);
  EXPECT_TRUE(chip.split_clear(parent, p0, p1));
  EXPECT_NO_THROW(chip.split(parent, p0, p1));
}

TEST(SimulatedChip, SplitPartsMustNotOverlap) {
  SimulatedChip chip(small_config(), Rng(11));
  const core::DropletId parent = chip.dispense(Rect{0, 3, 5, 7});
  EXPECT_THROW(chip.split(parent, Rect{1, 4, 4, 6}, Rect{3, 4, 6, 6}),
               PreconditionError);
}

TEST(SimulatedChip, DiscardRemovesTheDroplet) {
  SimulatedChip chip(small_config(), Rng(12));
  const core::DropletId id = chip.dispense(Rect{0, 4, 3, 7});
  chip.discard(id);
  EXPECT_TRUE(chip.droplets().empty());
  EXPECT_THROW(chip.discard(id), PreconditionError);
}

TEST(SimulatedChip, ClearDropletsKeepsDegradation) {
  SimulatedChip chip(small_config(), Rng(13));
  const core::DropletId id = chip.dispense(Rect{0, 4, 3, 7});
  chip.step({});
  (void)id;
  chip.clear_droplets();
  EXPECT_TRUE(chip.droplets().empty());
  EXPECT_EQ(chip.substrate().mc(1, 5).actuations(), 1u);
}

TEST(SimulatedChip, ActuationTraceRecordsPatterns) {
  SimulatedChipConfig config = small_config();
  config.record_actuation_trace = true;
  SimulatedChip chip(config, Rng(14));
  const core::DropletId id = chip.dispense(Rect{0, 4, 3, 7});
  chip.step({move(id, Action::kE)});
  chip.step({});
  ASSERT_EQ(chip.actuation_trace().size(), 2u);
  EXPECT_TRUE(chip.actuation_trace()[0](4, 4));   // move target column
  EXPECT_FALSE(chip.actuation_trace()[1](5, 4));  // held pattern only
  EXPECT_TRUE(chip.actuation_trace()[1](1, 4));
}

TEST(SimulatedChip, PreWearAgesTheChipHeterogeneously) {
  SimulatedChipConfig config = small_config();
  config.pre_wear_max = 500;
  config.chip.degradation = DegradationRange{0.5, 0.5, 100.0, 100.0};
  SimulatedChip chip(config, Rng(15));
  std::uint64_t total = 0;
  std::uint64_t distinct_values = 0;
  std::uint64_t last = ~0ull;
  for (int y = 0; y < 12; ++y) {
    for (int x = 0; x < 20; ++x) {
      const std::uint64_t n = chip.substrate().mc(x, y).actuations();
      EXPECT_LE(n, 500u);
      total += n;
      if (n != last) ++distinct_values;
      last = n;
    }
  }
  EXPECT_NEAR(static_cast<double>(total) / 240.0, 250.0, 40.0);
  EXPECT_GT(distinct_values, 100u);  // heterogeneous, not constant
}

TEST(SimulatedChip, DropletTraceRecordsFrames) {
  SimulatedChipConfig config = small_config();
  config.record_droplet_trace = true;
  SimulatedChip chip(config, Rng(18));
  const core::DropletId id = chip.dispense(Rect{0, 4, 3, 7});
  chip.step({move(id, Action::kE)});
  chip.step({});
  ASSERT_EQ(chip.droplet_trace().size(), 2u);
  ASSERT_EQ(chip.droplet_trace()[0].size(), 1u);
  EXPECT_EQ(chip.droplet_trace()[0][0].second, (Rect{1, 4, 4, 7}));
  EXPECT_EQ(chip.droplet_trace()[1][0].second, (Rect{1, 4, 4, 7}));
}

TEST(SimulatedChip, RenderFrameShowsDropletsAndWear) {
  SimulatedChipConfig config = small_config();
  config.record_droplet_trace = true;
  SimulatedChip chip(config, Rng(19));
  chip.substrate().mc(10, 0).inject_fault(0);  // dead cell → '#'
  const core::DropletId id = chip.dispense(Rect{0, 0, 2, 2});
  chip.step({});
  const std::string frame =
      render_frame(chip, chip.droplet_trace().back());
  // 12 rows + 2 borders, each 20 cols + 2 walls + newline.
  EXPECT_EQ(frame.size(), 14u * 23u);
  EXPECT_NE(frame.find('#'), std::string::npos);
  EXPECT_NE(frame.find(static_cast<char>('A' + id % 26)),
            std::string::npos);
  // The droplet occupies exactly 9 cells.
  EXPECT_EQ(static_cast<int>(std::count(frame.begin(), frame.end(),
                                        static_cast<char>('A' + id % 26))),
            9);
}

TEST(SimulatedChip, CommandValidation) {
  SimulatedChip chip(small_config(), Rng(16));
  const core::DropletId id = chip.dispense(Rect{0, 4, 3, 7});
  EXPECT_THROW(chip.step({move(99, Action::kE)}), PreconditionError);
  EXPECT_THROW(chip.step({move(id, Action::kE), move(id, Action::kW)}),
               PreconditionError);
  // Disabled action (off-chip frontier) is rejected.
  EXPECT_THROW(chip.step({move(id, Action::kW)}), PreconditionError);
}

TEST(SimulatedChip, InjectedFaultsAreReported) {
  SimulatedChipConfig config = small_config();
  config.faults.mode = FaultMode::kUniform;
  config.faults.faulty_fraction = 0.1;
  SimulatedChip chip(config, Rng(17));
  EXPECT_EQ(chip.injected_faults().size(), 24u);  // 10% of 240
}

}  // namespace
}  // namespace meda::sim
