#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "assay/benchmarks.hpp"
#include "core/scheduler.hpp"
#include "sim/simulated_chip.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

/// @file recovery_ladder_test.cpp
/// End-to-end tests of the scheduler's recovery ladder, rung by rung:
/// watchdog → forced re-sense → quarantine → bounded re-synthesis with
/// backoff → graceful per-job abort (with dependent cascade).

namespace meda::core {
namespace {

/// A maximally misbehaving substrate: it reports full health everywhere but
/// silently drops every commanded action — droplets never move. The
/// watchdog rung is the only way a scheduler can notice.
class StuckChip : public BiochipIo {
 public:
  StuckChip(int w, int h) : bounds_{0, 0, w - 1, h - 1}, health_(w, h, 3) {}

  Rect bounds() const override { return bounds_; }
  int health_bits() const override { return 2; }
  IntMatrix sense_health() const override { return health_; }

  Rect droplet_position(DropletId id) const override {
    const auto it = droplets_.find(id);
    MEDA_REQUIRE(it != droplets_.end(), "unknown droplet id");
    return it->second;
  }

  bool location_clear(const Rect& at) const override {
    return bounds_.contains(at) &&
           std::all_of(droplets_.begin(), droplets_.end(),
                       [&at](const auto& entry) {
                         return entry.second.manhattan_gap(at) >= 2;
                       });
  }

  DropletId dispense(const Rect& at) override {
    const DropletId id = next_id_++;
    droplets_.emplace(id, at);
    return id;
  }

  void discard(DropletId id) override {
    MEDA_REQUIRE(droplets_.erase(id) == 1, "unknown droplet id");
  }

  DropletId merge(DropletId, DropletId, const Rect&) override {
    MEDA_REQUIRE(false, "merge not supported by StuckChip");
    return -1;
  }

  bool split_clear(DropletId, const Rect&, const Rect&) const override {
    return false;
  }

  std::pair<DropletId, DropletId> split(DropletId, const Rect&,
                                        const Rect&) override {
    MEDA_REQUIRE(false, "split not supported by StuckChip");
    return {-1, -1};
  }

  void step(const std::vector<Command>& commands) override {
    for (const Command& c : commands)
      (void)droplet_position(c.droplet);  // commands must address live ids
    ++cycle_;  // actions are silently lost; nothing moves
  }

  std::uint64_t cycle() const override { return cycle_; }

  int droplet_count() const { return static_cast<int>(droplets_.size()); }

 private:
  Rect bounds_;
  IntMatrix health_;
  std::unordered_map<DropletId, Rect> droplets_;
  DropletId next_id_ = 0;
  std::uint64_t cycle_ = 0;
};

/// Transport-only assay: dispense at the west edge, deliver to the east.
assay::MoList transport_assay(double out_x, double out_y) {
  assay::AssayBuilder b("transport");
  const int d = b.dispense(8.5, 7.5, 16);
  b.output({d}, out_x, out_y);
  return std::move(b).build();
}

SchedulerConfig ladder_config() {
  SchedulerConfig config;
  config.adaptive = true;
  config.max_cycles = 600;
  config.recovery.enabled = true;
  // These tests assert exact rung timing, so they pin the legacy
  // fixed-threshold watchdog; the adaptive progress-rate watchdog has its
  // own tests in core/scheduler_test.cpp.
  config.recovery.progress_watchdog = false;
  config.recovery.stuck_cycles = 4;
  config.recovery.quarantine_after_watchdogs = 2;
  config.recovery.max_retries = 2;
  config.recovery.backoff_base_cycles = 2;
  return config;
}

TEST(RecoveryLadder, WatchdogEscalatesThroughQuarantineToAbort) {
  StuckChip chip(30, 16);
  Scheduler scheduler(ladder_config());
  const ExecutionStats stats =
      scheduler.run(chip, transport_assay(24.5, 7.5));

  EXPECT_FALSE(stats.success);
  // Every rung below abort fired at least once.
  EXPECT_GT(stats.recovery.watchdog_fires, 0);
  EXPECT_GT(stats.recovery.forced_resenses, 0);
  EXPECT_GT(stats.recovery.quarantined_cells, 0);
  EXPECT_EQ(stats.recovery.aborted_jobs, 2);  // dispense + dependent output
  EXPECT_EQ(stats.aborted_mos, 2);
  EXPECT_EQ(stats.completed_mos, 0);
  EXPECT_NE(stats.failure_reason.find("aborted"), std::string::npos)
      << stats.failure_reason;
  // The abort is graceful: the stuck droplet was removed from the chip.
  EXPECT_EQ(chip.droplet_count(), 0);

  // The event log tells the story in order: the first event is a watchdog
  // firing, the last is the cascading abort of the dependent MO.
  ASSERT_GE(stats.recovery_events.size(), 3u);
  EXPECT_EQ(stats.recovery_events.front().action,
            RecoveryAction::kWatchdogResense);
  EXPECT_EQ(stats.recovery_events.back().action, RecoveryAction::kJobAbort);
  EXPECT_NE(stats.recovery_events.back().detail.find("predecessor"),
            std::string::npos);
  const auto fired = [&stats](RecoveryAction action) {
    return std::any_of(stats.recovery_events.begin(),
                       stats.recovery_events.end(),
                       [action](const RecoveryEvent& e) {
                         return e.action == action;
                       });
  };
  EXPECT_TRUE(fired(RecoveryAction::kQuarantine));
  EXPECT_TRUE(fired(RecoveryAction::kJobAbort));
}

TEST(RecoveryLadder, LegacyModeBurnsTheCycleBudgetInstead) {
  StuckChip chip(30, 16);
  SchedulerConfig config;
  config.adaptive = true;
  config.max_cycles = 120;  // recovery disabled: nothing stops the burn
  Scheduler scheduler(config);
  const ExecutionStats stats =
      scheduler.run(chip, transport_assay(24.5, 7.5));
  EXPECT_FALSE(stats.success);
  EXPECT_EQ(stats.failure_reason, "cycle limit exceeded");
  EXPECT_FALSE(stats.recovery.any());
  EXPECT_TRUE(stats.recovery_events.empty());
}

TEST(RecoveryLadder, InfeasibleSynthesisRetriesWithBackoffThenAborts) {
  // A dead wall spans the full chip height: no route from the west-edge
  // dispense to the east goal can exist, so synthesis is infeasible from
  // the first attempt and only the retry/backoff/abort rungs fire.
  sim::SimulatedChipConfig chip_config;
  chip_config.chip.width = 40;
  chip_config.chip.height = 16;
  sim::SimulatedChip chip(chip_config, Rng(11));
  for (int y = 0; y < 16; ++y)
    for (int x = 19; x <= 20; ++x) chip.substrate().mc(x, y).inject_fault(0);

  SchedulerConfig config = ladder_config();
  Scheduler scheduler(config);
  const ExecutionStats stats =
      scheduler.run(chip, transport_assay(34.5, 7.5));

  EXPECT_FALSE(stats.success);
  EXPECT_EQ(stats.recovery.synthesis_retries,
            config.recovery.max_retries + 1);
  EXPECT_GT(stats.recovery.backoff_cycles, 0u);
  EXPECT_EQ(stats.recovery.aborted_jobs, 1);  // only the output MO routes
  EXPECT_EQ(stats.completed_mos, 1);          // the dispense completed
  // Exponential backoff: 2, then 4 cycles (base << retries-1).
  std::vector<std::uint64_t> backoffs;
  for (const RecoveryEvent& e : stats.recovery_events)
    if (e.action == RecoveryAction::kBackoff)
      backoffs.push_back(e.cycle);
  ASSERT_EQ(backoffs.size(), 2u);
  // The aborted droplet is gone; the chip is clean for the next job.
  EXPECT_TRUE(chip.droplets().empty());
}

TEST(RecoveryLadder, InfeasibleSynthesisFailsHardWithoutRecovery) {
  sim::SimulatedChipConfig chip_config;
  chip_config.chip.width = 40;
  chip_config.chip.height = 16;
  sim::SimulatedChip chip(chip_config, Rng(11));
  for (int y = 0; y < 16; ++y)
    for (int x = 19; x <= 20; ++x) chip.substrate().mc(x, y).inject_fault(0);

  SchedulerConfig config;
  config.adaptive = true;
  config.max_cycles = 600;
  Scheduler scheduler(config);
  const ExecutionStats stats =
      scheduler.run(chip, transport_assay(34.5, 7.5));
  EXPECT_FALSE(stats.success);
  EXPECT_NE(stats.failure_reason.find("no feasible"), std::string::npos)
      << stats.failure_reason;
  EXPECT_EQ(stats.recovery.aborted_jobs, 0);
}

TEST(RecoveryLadder, QuietRunReportsNoRecoveryActivity) {
  sim::SimulatedChipConfig chip_config;
  chip_config.chip.width = 40;
  chip_config.chip.height = 16;
  sim::SimulatedChip chip(chip_config, Rng(3));
  SchedulerConfig config = ladder_config();
  config.filter.enabled = true;
  Scheduler scheduler(config);
  const ExecutionStats stats =
      scheduler.run(chip, transport_assay(34.5, 7.5));
  EXPECT_TRUE(stats.success) << stats.failure_reason;
  EXPECT_FALSE(stats.recovery.any());
  EXPECT_TRUE(stats.recovery_events.empty());
  EXPECT_EQ(stats.completed_mos, 2);
  EXPECT_EQ(stats.aborted_mos, 0);
}

TEST(ProgressWatchdog, FiresOnAPureStall) {
  // With the adaptive progress-rate watchdog (the default), a droplet that
  // never moves decays its EWMA progress rate from 1.0 below the 0.02
  // threshold in ~24 cycles — the ladder escalates exactly as the fixed
  // counter would, without any stuck_cycles tuning.
  StuckChip chip(30, 16);
  SchedulerConfig config = ladder_config();
  config.recovery.progress_watchdog = true;
  Scheduler scheduler(config);
  const ExecutionStats stats =
      scheduler.run(chip, transport_assay(24.5, 7.5));
  EXPECT_FALSE(stats.success);
  EXPECT_GT(stats.recovery.watchdog_fires, 0);
  EXPECT_GT(stats.recovery.forced_resenses, 0);
  EXPECT_GT(stats.recovery.aborted_jobs, 0);
  EXPECT_EQ(chip.droplet_count(), 0);
}

TEST(ProgressWatchdog, StaysQuietOnAHealthyRoute) {
  sim::SimulatedChipConfig chip_config;
  chip_config.chip.width = 40;
  chip_config.chip.height = 16;
  sim::SimulatedChip chip(chip_config, Rng(3));
  SchedulerConfig config = ladder_config();
  config.recovery.progress_watchdog = true;
  config.filter.enabled = true;
  Scheduler scheduler(config);
  const ExecutionStats stats =
      scheduler.run(chip, transport_assay(34.5, 7.5));
  EXPECT_TRUE(stats.success) << stats.failure_reason;
  EXPECT_EQ(stats.recovery.watchdog_fires, 0);
}

TEST(QuarantineParole, BudgetPressureReleasesTheOldestCells) {
  // A tiny quarantine budget fills after the first frontier quarantine (the
  // StuckChip droplet never moves, so the ladder keeps quarantining its
  // ring). Every forced re-sense then reads the quarantined cells alive
  // again (StuckChip reports full health), so parole must release the
  // oldest ones instead of blacklisting them forever.
  StuckChip chip(30, 16);
  SchedulerConfig config = ladder_config();
  config.recovery.max_quarantine_fraction = 0.02;  // 9 of 480 cells
  config.recovery.max_retries = 4;  // survive several quarantine rounds
  Scheduler scheduler(config);
  const ExecutionStats stats =
      scheduler.run(chip, transport_assay(24.5, 7.5));
  EXPECT_GT(stats.recovery.quarantined_cells, 0);
  EXPECT_GT(stats.recovery.paroled_cells, 0);
  const bool parole_event =
      std::any_of(stats.recovery_events.begin(), stats.recovery_events.end(),
                  [](const RecoveryEvent& e) {
                    return e.action == RecoveryAction::kQuarantineParole;
                  });
  EXPECT_TRUE(parole_event);
}

TEST(RecoveryLadder, RobustRouterBeatsRawScansUnderSensorNoise) {
  // The PR's acceptance scenario: with a noisy scan chain (1% transient
  // flips + 1% stuck DFFs), the filtered + ladder-armed router must succeed
  // at least as often as the same router acting on raw scans. Seeds are
  // paired: both routers see the same chips and the same noise processes.
  auto successes = [](bool robust) {
    int ok = 0;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      sim::SimulatedChipConfig chip_config;
      chip_config.chip.width = 40;
      chip_config.chip.height = 16;
      chip_config.sensor.bit_flip_p = 0.01;
      chip_config.sensor.stuck_fraction = 0.01;
      sim::SimulatedChip chip(chip_config, Rng(400 + seed));
      SchedulerConfig config;
      config.adaptive = true;
      config.max_cycles = 400;
      if (robust) {
        config.filter.enabled = true;
        config.recovery.enabled = true;
      }
      Scheduler scheduler(config);
      const ExecutionStats stats =
          scheduler.run(chip, transport_assay(34.5, 7.5));
      if (stats.success) ++ok;
    }
    return ok;
  };
  const int raw = successes(false);
  const int robust = successes(true);
  EXPECT_GE(robust, raw);
  EXPECT_GT(robust, 0);
}

}  // namespace
}  // namespace meda::core
