#include "sim/campaign.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "assay/benchmarks.hpp"
#include "util/check.hpp"

namespace meda::sim {
namespace {

CampaignConfig small_campaign() {
  CampaignConfig config;
  config.chip.chip.width = assay::kChipWidth;
  config.chip.chip.height = assay::kChipHeight;
  config.chips = 2;
  config.runs_per_chip = 2;
  config.seed0 = 9;
  return config;
}

std::vector<RouterConfig> two_routers() {
  std::vector<RouterConfig> routers(2);
  routers[0].name = "baseline";
  routers[0].scheduler.adaptive = false;
  routers[1].name = "adaptive";
  return routers;
}

TEST(Campaign, GridShapeAndAccounting) {
  const std::vector<assay::MoList> assays = {assay::covid_rat(),
                                             assay::master_mix()};
  const auto cells = run_campaign(assays, two_routers(), small_campaign());
  ASSERT_EQ(cells.size(), 4u);  // 2 assays × 2 routers
  for (const CampaignCell& cell : cells) {
    EXPECT_EQ(cell.rollup.runs, 4);  // 2 chips × 2 runs
    EXPECT_EQ(cell.rollup.successes, 4);  // healthy chips: all succeed
    EXPECT_DOUBLE_EQ(cell.rollup.success_rate(), 1.0);
    EXPECT_EQ(cell.rollup.cycles.count(), 4u);
    EXPECT_GT(cell.rollup.synthesis_calls + cell.rollup.library_hits, 0);
  }
  EXPECT_EQ(cells[0].assay, "COVID-RAT");
  EXPECT_EQ(cells[0].router, "baseline");
  EXPECT_EQ(cells[1].router, "adaptive");
  EXPECT_EQ(cells[2].assay, "Master-Mix");
}

TEST(Campaign, PairedSeedingMakesRoutersComparable) {
  // On healthy chips the adaptive and baseline routers take identical
  // cycle counts (same seeds, same deterministic routes).
  const std::vector<assay::MoList> assays = {assay::covid_rat()};
  const auto cells = run_campaign(assays, two_routers(), small_campaign());
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_DOUBLE_EQ(cells[0].rollup.cycles.mean(),
                   cells[1].rollup.cycles.mean());
}

TEST(Campaign, PrintsEveryCell) {
  const std::vector<assay::MoList> assays = {assay::covid_rat()};
  const auto cells = run_campaign(assays, two_routers(), small_campaign());
  std::ostringstream os;
  print_campaign(os, cells);
  const std::string text = os.str();
  EXPECT_NE(text.find("COVID-RAT"), std::string::npos);
  EXPECT_NE(text.find("baseline"), std::string::npos);
  EXPECT_NE(text.find("adaptive"), std::string::npos);
  EXPECT_NE(text.find("±"), std::string::npos);
}

ChaosCampaignConfig small_chaos() {
  ChaosCampaignConfig config;
  config.chip.chip.width = assay::kChipWidth;
  config.chip.chip.height = assay::kChipHeight;
  ChaosLevel clean;
  clean.name = "clean";
  ChaosLevel noisy;
  noisy.name = "p=0.02";
  noisy.sensor.bit_flip_p = 0.02;
  noisy.sensor.stuck_fraction = 0.01;
  config.levels = {clean, noisy};
  config.chips = 1;
  config.runs_per_chip = 2;
  config.seed0 = 21;
  return config;
}

std::vector<RouterConfig> robust_router() {
  std::vector<RouterConfig> routers(1);
  routers[0].name = "robust";
  routers[0].scheduler.filter.enabled = true;
  routers[0].scheduler.recovery.enabled = true;
  return routers;
}

TEST(ChaosCampaign, GridShapeAndNoiseAccounting) {
  const std::vector<assay::MoList> assays = {assay::covid_rat()};
  const auto cells =
      run_chaos_campaign(assays, robust_router(), small_chaos());
  ASSERT_EQ(cells.size(), 2u);  // 1 assay × 2 levels × 1 router
  EXPECT_EQ(cells[0].level, "clean");
  EXPECT_EQ(cells[1].level, "p=0.02");
  for (const ChaosCell& cell : cells) EXPECT_EQ(cell.rollup.runs, 2);
  // Channel accounting: the clean level never corrupts a bit; the noisy
  // level (2% of thousands of bits per frame) essentially always does.
  EXPECT_EQ(cells[0].bits_flipped, 0u);
  EXPECT_GT(cells[1].bits_flipped, 0u);
}

TEST(ChaosCampaign, ReproducibleFromTheMasterSeed) {
  // The entire campaign — substrates, noise processes, recovery firings —
  // derives from seed0; two invocations must agree cell by cell.
  const std::vector<assay::MoList> assays = {assay::covid_rat()};
  const auto a = run_chaos_campaign(assays, robust_router(), small_chaos());
  const auto b = run_chaos_campaign(assays, robust_router(), small_chaos());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const core::RunRollup& ra = a[i].rollup;
    const core::RunRollup& rb = b[i].rollup;
    EXPECT_EQ(ra.successes, rb.successes);
    EXPECT_EQ(ra.cycles.count(), rb.cycles.count());
    if (ra.cycles.count() > 0) {
      EXPECT_DOUBLE_EQ(ra.cycles.mean(), rb.cycles.mean());
    }
    EXPECT_EQ(ra.recovery, rb.recovery);
    EXPECT_EQ(a[i].bits_flipped, b[i].bits_flipped);
    EXPECT_EQ(a[i].frames_dropped, b[i].frames_dropped);
  }
}

TEST(ChaosCampaign, WritesOneCsvRowPerCell) {
  const std::vector<assay::MoList> assays = {assay::covid_rat()};
  const auto cells =
      run_chaos_campaign(assays, robust_router(), small_chaos());
  const std::string path =
      ::testing::TempDir() + "chaos_campaign_test.csv";
  write_chaos_csv(path, cells);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line.substr(0, 18), "assay,router,level");
  EXPECT_NE(line.find("success_rate"), std::string::npos);
  EXPECT_NE(line.find("quarantined_cells"), std::string::npos);
  int rows = 0;
  while (std::getline(in, line))
    if (!line.empty()) ++rows;
  EXPECT_EQ(rows, static_cast<int>(cells.size()));
}

TEST(ChaosCampaign, PrintsRecoveryColumns) {
  const std::vector<assay::MoList> assays = {assay::covid_rat()};
  const auto cells =
      run_chaos_campaign(assays, robust_router(), small_chaos());
  std::ostringstream os;
  print_chaos_campaign(os, cells);
  const std::string text = os.str();
  EXPECT_NE(text.find("noise"), std::string::npos);
  EXPECT_NE(text.find("quarantined"), std::string::npos);
  EXPECT_NE(text.find("p=0.02"), std::string::npos);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(ChaosCampaign, CsvIsByteIdenticalAtAnyJobCount) {
  // The parallel path derives every seed from the chip index and reduces
  // serially in grid order, so the CSV must match the serial one byte for
  // byte — the determinism contract of docs/performance.md.
  const std::vector<assay::MoList> assays = {assay::covid_rat()};
  ChaosCampaignConfig serial = small_chaos();
  serial.jobs = 1;
  ChaosCampaignConfig parallel = small_chaos();
  parallel.jobs = 8;
  const std::string serial_path =
      ::testing::TempDir() + "chaos_jobs1.csv";
  const std::string parallel_path =
      ::testing::TempDir() + "chaos_jobs8.csv";
  write_chaos_csv(serial_path,
                  run_chaos_campaign(assays, robust_router(), serial));
  write_chaos_csv(parallel_path,
                  run_chaos_campaign(assays, robust_router(), parallel));
  const std::string serial_csv = read_file(serial_path);
  ASSERT_FALSE(serial_csv.empty());
  EXPECT_EQ(serial_csv, read_file(parallel_path));
}

TEST(Campaign, ParallelCellsMatchTheSerialPath) {
  const std::vector<assay::MoList> assays = {assay::covid_rat()};
  CampaignConfig parallel = small_campaign();
  parallel.jobs = 4;
  const auto serial = run_campaign(assays, two_routers(), small_campaign());
  const auto cells = run_campaign(assays, two_routers(), parallel);
  ASSERT_EQ(cells.size(), serial.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].assay, serial[i].assay);
    EXPECT_EQ(cells[i].router, serial[i].router);
    EXPECT_EQ(cells[i].rollup.runs, serial[i].rollup.runs);
    EXPECT_EQ(cells[i].rollup.successes, serial[i].rollup.successes);
    // Bit-identical accumulation, not merely statistically equal.
    EXPECT_EQ(cells[i].rollup.cycles.mean(), serial[i].rollup.cycles.mean());
    EXPECT_EQ(cells[i].resyntheses.mean(), serial[i].resyntheses.mean());
  }
}

TEST(ChaosCampaign, MetricsCsvHasNameSortedColumnsAndOneRowPerCell) {
  const std::vector<assay::MoList> assays = {assay::covid_rat()};
  const auto cells =
      run_chaos_campaign(assays, robust_router(), small_chaos());
  const std::string path = ::testing::TempDir() + "chaos_metrics_test.csv";
  write_chaos_metrics_csv(path, cells);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  // The three identity columns, then one column per metric in name order.
  std::vector<std::string> columns;
  std::istringstream split(header);
  for (std::string field; std::getline(split, field, ',');)
    columns.push_back(field);
  ASSERT_GT(columns.size(), 3u);
  EXPECT_EQ(columns[0], "assay");
  EXPECT_EQ(columns[1], "router");
  EXPECT_EQ(columns[2], "level");
  EXPECT_TRUE(
      std::is_sorted(columns.begin() + 3, columns.end()));
  EXPECT_NE(header.find("recovery.fallback_routes"), std::string::npos);
  EXPECT_NE(header.find("sched.success_rate"), std::string::npos);
  int rows = 0;
  for (std::string line; std::getline(in, line);)
    if (!line.empty()) ++rows;
  EXPECT_EQ(rows, static_cast<int>(cells.size()));
}

ChaosCampaignConfig harsh_chaos() {
  // End-of-life chips in the spirit of bench/chaos_campaign: heavy pre-wear
  // plus a clustered fault population that keeps failing mid-run, so the
  // recovery ladder (and replica failover) actually fires.
  ChaosCampaignConfig config = small_chaos();
  config.chip.chip.degradation = DegradationRange{0.5, 0.9, 40.0, 100.0};
  config.chip.pre_wear_max = 250;
  config.chip.faults.mode = FaultMode::kClustered;
  config.chip.faults.faulty_fraction = 0.08;
  config.chip.faults.fail_at_lo = 10;
  config.chip.faults.fail_at_hi = 100;
  return config;
}

std::vector<RouterConfig> replicated_router() {
  std::vector<RouterConfig> routers = robust_router();
  routers[0].name = "robust+nmr";
  routers[0].scheduler.replicate_critical_dispenses = 2;
  return routers;
}

TEST(ChaosCampaign, AbortedMosMatchAbortedJobsWithReplicationLive) {
  // The ladder's abort invariant: every aborted MO is a graceful per-job
  // abort and vice versa. Replication must not disturb it — an abandoned
  // replica fails over silently and is NOT an aborted MO; only all-replica
  // failure escalates to the abort rung.
  const std::vector<assay::MoList> assays = {assay::master_mix()};
  const auto cells =
      run_chaos_campaign(assays, replicated_router(), harsh_chaos());
  std::uint64_t launched = 0;
  for (const ChaosCell& cell : cells) {
    EXPECT_EQ(cell.rollup.aborted_mos, cell.rollup.recovery.aborted_jobs)
        << cell.level;
    launched += static_cast<std::uint64_t>(cell.rollup.replica.launched);
  }
  EXPECT_GT(launched, 0u);  // replication was actually live

  // The replica counters reduce deterministically regardless of how the
  // (cell, chip) grid is spread over worker threads.
  ChaosCampaignConfig parallel = harsh_chaos();
  parallel.jobs = 3;
  const auto again =
      run_chaos_campaign(assays, replicated_router(), parallel);
  ASSERT_EQ(again.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].rollup.replica, again[i].rollup.replica);
    EXPECT_EQ(cells[i].rollup.aborted_mos, again[i].rollup.aborted_mos);
  }
}

TEST(ChaosCampaign, CheckpointedRunMatchesStraightThroughByteForByte) {
  const std::vector<assay::MoList> assays = {assay::covid_rat()};
  const std::string cp_path = ::testing::TempDir() + "chaos_cp.txt";
  std::remove(cp_path.c_str());

  ChaosCampaignConfig plain = small_chaos();
  const std::string plain_csv = ::testing::TempDir() + "chaos_plain.csv";
  write_chaos_csv(plain_csv,
                  run_chaos_campaign(assays, robust_router(), plain));

  ChaosCampaignConfig checkpointed = small_chaos();
  checkpointed.checkpoint.path = cp_path;
  checkpointed.checkpoint.flush_every = 1;
  const std::string cp_csv = ::testing::TempDir() + "chaos_cp.csv";
  write_chaos_csv(
      cp_csv, run_chaos_campaign(assays, robust_router(), checkpointed));

  const std::string expected = read_file(plain_csv);
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(expected, read_file(cp_csv));

  // Simulate a kill -9 partway through: drop the last slot lines from the
  // checkpoint, then resume at a different job count. Only the missing
  // slots recompute, and the CSV is still byte-identical.
  std::ifstream in(cp_path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  in.close();
  ASSERT_GT(lines.size(), 2u);  // header + at least two slots
  {
    std::ofstream out(cp_path, std::ios::trunc);
    for (std::size_t i = 0; i + 1 < lines.size(); ++i)
      out << lines[i] << '\n';
  }
  ChaosCampaignConfig resumed = small_chaos();
  resumed.checkpoint.path = cp_path;
  resumed.checkpoint.resume = true;
  resumed.jobs = 4;
  const std::string resumed_csv = ::testing::TempDir() + "chaos_resumed.csv";
  write_chaos_csv(resumed_csv,
                  run_chaos_campaign(assays, robust_router(), resumed));
  EXPECT_EQ(expected, read_file(resumed_csv));
}

TEST(ChaosCampaign, CheckpointDigestMismatchRecomputesEverything) {
  // A checkpoint from a different seed must never be grafted into a run:
  // the digest mismatch discards it and the results match a fresh run.
  const std::vector<assay::MoList> assays = {assay::covid_rat()};
  const std::string cp_path = ::testing::TempDir() + "chaos_cp_seed.txt";
  std::remove(cp_path.c_str());
  ChaosCampaignConfig first = small_chaos();
  first.checkpoint.path = cp_path;
  (void)run_chaos_campaign(assays, robust_router(), first);

  ChaosCampaignConfig reseeded = small_chaos();
  reseeded.seed0 = first.seed0 + 1;
  reseeded.checkpoint.path = cp_path;
  reseeded.checkpoint.resume = true;
  const auto resumed = run_chaos_campaign(assays, robust_router(), reseeded);
  ChaosCampaignConfig fresh = small_chaos();
  fresh.seed0 = reseeded.seed0;
  const auto expected = run_chaos_campaign(assays, robust_router(), fresh);
  ASSERT_EQ(resumed.size(), expected.size());
  for (std::size_t i = 0; i < resumed.size(); ++i) {
    EXPECT_EQ(resumed[i].rollup.successes, expected[i].rollup.successes);
    EXPECT_EQ(resumed[i].rollup.recovery, expected[i].rollup.recovery);
    EXPECT_EQ(resumed[i].bits_flipped, expected[i].bits_flipped);
  }
}

TEST(Campaign, CheckpointResumeReplaysOnlyMissingSlots) {
  const std::vector<assay::MoList> assays = {assay::covid_rat()};
  const std::string cp_path = ::testing::TempDir() + "campaign_cp.txt";
  std::remove(cp_path.c_str());
  CampaignConfig checkpointed = small_campaign();
  checkpointed.checkpoint.path = cp_path;
  checkpointed.checkpoint.flush_every = 1;
  const auto first =
      run_campaign(assays, two_routers(), checkpointed);

  CampaignConfig resumed_config = small_campaign();
  resumed_config.checkpoint.path = cp_path;
  resumed_config.checkpoint.resume = true;
  resumed_config.jobs = 3;
  const auto resumed = run_campaign(assays, two_routers(), resumed_config);
  ASSERT_EQ(resumed.size(), first.size());
  for (std::size_t i = 0; i < resumed.size(); ++i) {
    EXPECT_EQ(resumed[i].rollup.runs, first[i].rollup.runs);
    EXPECT_EQ(resumed[i].rollup.successes, first[i].rollup.successes);
    // Bit-identical: the replayed slots round-trip through the codec.
    EXPECT_EQ(resumed[i].rollup.cycles.mean(), first[i].rollup.cycles.mean());
    EXPECT_EQ(resumed[i].rollup.synthesis_seconds,
              first[i].rollup.synthesis_seconds);
    EXPECT_EQ(resumed[i].resyntheses.mean(), first[i].resyntheses.mean());
    EXPECT_EQ(resumed[i].rollup.recovery, first[i].rollup.recovery);
  }
}

TEST(ChaosCampaign, RejectsEmptyLevels) {
  ChaosCampaignConfig config = small_chaos();
  config.levels.clear();
  EXPECT_THROW(run_chaos_campaign({assay::covid_rat()}, robust_router(),
                                  config),
               PreconditionError);
}

TEST(Campaign, RejectsEmptyInputs) {
  EXPECT_THROW(run_campaign({}, two_routers(), small_campaign()),
               PreconditionError);
  EXPECT_THROW(run_campaign({assay::covid_rat()}, {}, small_campaign()),
               PreconditionError);
  CampaignConfig bad = small_campaign();
  bad.chips = 0;
  EXPECT_THROW(run_campaign({assay::covid_rat()}, two_routers(), bad),
               PreconditionError);
}

}  // namespace
}  // namespace meda::sim
