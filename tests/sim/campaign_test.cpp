#include "sim/campaign.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "assay/benchmarks.hpp"
#include "util/check.hpp"

namespace meda::sim {
namespace {

CampaignConfig small_campaign() {
  CampaignConfig config;
  config.chip.chip.width = assay::kChipWidth;
  config.chip.chip.height = assay::kChipHeight;
  config.chips = 2;
  config.runs_per_chip = 2;
  config.seed0 = 9;
  return config;
}

std::vector<RouterConfig> two_routers() {
  std::vector<RouterConfig> routers(2);
  routers[0].name = "baseline";
  routers[0].scheduler.adaptive = false;
  routers[1].name = "adaptive";
  return routers;
}

TEST(Campaign, GridShapeAndAccounting) {
  const std::vector<assay::MoList> assays = {assay::covid_rat(),
                                             assay::master_mix()};
  const auto cells = run_campaign(assays, two_routers(), small_campaign());
  ASSERT_EQ(cells.size(), 4u);  // 2 assays × 2 routers
  for (const CampaignCell& cell : cells) {
    EXPECT_EQ(cell.runs, 4);  // 2 chips × 2 runs
    EXPECT_EQ(cell.successes, 4);  // healthy chips: everything succeeds
    EXPECT_DOUBLE_EQ(cell.success_rate, 1.0);
    EXPECT_EQ(cell.cycles.count(), 4u);
  }
  EXPECT_EQ(cells[0].assay, "COVID-RAT");
  EXPECT_EQ(cells[0].router, "baseline");
  EXPECT_EQ(cells[1].router, "adaptive");
  EXPECT_EQ(cells[2].assay, "Master-Mix");
}

TEST(Campaign, PairedSeedingMakesRoutersComparable) {
  // On healthy chips the adaptive and baseline routers take identical
  // cycle counts (same seeds, same deterministic routes).
  const std::vector<assay::MoList> assays = {assay::covid_rat()};
  const auto cells = run_campaign(assays, two_routers(), small_campaign());
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_DOUBLE_EQ(cells[0].cycles.mean(), cells[1].cycles.mean());
}

TEST(Campaign, PrintsEveryCell) {
  const std::vector<assay::MoList> assays = {assay::covid_rat()};
  const auto cells = run_campaign(assays, two_routers(), small_campaign());
  std::ostringstream os;
  print_campaign(os, cells);
  const std::string text = os.str();
  EXPECT_NE(text.find("COVID-RAT"), std::string::npos);
  EXPECT_NE(text.find("baseline"), std::string::npos);
  EXPECT_NE(text.find("adaptive"), std::string::npos);
  EXPECT_NE(text.find("±"), std::string::npos);
}

TEST(Campaign, RejectsEmptyInputs) {
  EXPECT_THROW(run_campaign({}, two_routers(), small_campaign()),
               PreconditionError);
  EXPECT_THROW(run_campaign({assay::covid_rat()}, {}, small_campaign()),
               PreconditionError);
  CampaignConfig bad = small_campaign();
  bad.chips = 0;
  EXPECT_THROW(run_campaign({assay::covid_rat()}, two_routers(), bad),
               PreconditionError);
}

}  // namespace
}  // namespace meda::sim
