#include "sim/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "assay/benchmarks.hpp"
#include "core/scheduler.hpp"
#include "util/check.hpp"

namespace meda::sim {
namespace {

struct RunArtifacts {
  assay::MoList assay = assay::master_mix();
  core::ExecutionStats stats;
  std::unique_ptr<SimulatedChip> chip;
};

RunArtifacts run_master_mix(bool record_trace) {
  RunArtifacts artifacts;
  SimulatedChipConfig config;
  config.chip.width = assay::kChipWidth;
  config.chip.height = assay::kChipHeight;
  config.record_droplet_trace = record_trace;
  artifacts.chip = std::make_unique<SimulatedChip>(config, Rng(7));
  core::Scheduler scheduler(core::SchedulerConfig{});
  artifacts.stats = scheduler.run(*artifacts.chip, artifacts.assay);
  return artifacts;
}

TEST(HtmlReport, ContainsSummaryGanttAndHeatmap) {
  const RunArtifacts artifacts = run_master_mix(false);
  ASSERT_TRUE(artifacts.stats.success);
  const std::string html = render_html_report(
      artifacts.assay, artifacts.stats, *artifacts.chip);
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("Master-Mix"), std::string::npos);
  EXPECT_NE(html.find("success"), std::string::npos);
  EXPECT_NE(html.find("MO schedule"), std::string::npos);
  EXPECT_NE(html.find("Final health matrix"), std::string::npos);
  // One Gantt bar per completed MO.
  std::size_t bars = 0;
  for (std::size_t pos = html.find("rx='2'"); pos != std::string::npos;
       pos = html.find("rx='2'", pos + 1))
    ++bars;
  EXPECT_EQ(bars, artifacts.assay.ops.size());
  // One heatmap cell per MC.
  std::size_t cells = 0;
  for (std::size_t pos = html.find("<rect"); pos != std::string::npos;
       pos = html.find("<rect", pos + 1))
    ++cells;
  EXPECT_GE(cells, static_cast<std::size_t>(assay::kChipWidth *
                                            assay::kChipHeight));
  // No trace recorded → no animation section.
  EXPECT_EQ(html.find("Droplet trace"), std::string::npos);
}

TEST(HtmlReport, EmbedsTheDropletTraceWhenRecorded) {
  const RunArtifacts artifacts = run_master_mix(true);
  const std::string html = render_html_report(
      artifacts.assay, artifacts.stats, *artifacts.chip);
  EXPECT_NE(html.find("Droplet trace"), std::string::npos);
  EXPECT_NE(html.find("const frames=["), std::string::npos);
  EXPECT_NE(html.find("max='" + std::to_string(artifacts.stats.cycles - 1)),
            std::string::npos);
}

TEST(HtmlReport, ReportsFailuresFaithfully) {
  RunArtifacts artifacts;
  SimulatedChipConfig config;
  config.chip.width = assay::kChipWidth;
  config.chip.height = assay::kChipHeight;
  artifacts.chip = std::make_unique<SimulatedChip>(config, Rng(7));
  core::SchedulerConfig sched;
  sched.max_cycles = 5;
  core::Scheduler scheduler(sched);
  artifacts.stats = scheduler.run(*artifacts.chip, artifacts.assay);
  const std::string html = render_html_report(
      artifacts.assay, artifacts.stats, *artifacts.chip);
  EXPECT_NE(html.find("FAILED"), std::string::npos);
  EXPECT_NE(html.find("cycle limit exceeded"), std::string::npos);
}

TEST(HtmlReport, WritesToDisk) {
  const RunArtifacts artifacts = run_master_mix(false);
  const std::string path = "/tmp/meda_report_test.html";
  write_html_report(path, artifacts.assay, artifacts.stats, *artifacts.chip);
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first, "<!DOCTYPE html>");
  std::remove(path.c_str());
  EXPECT_THROW(write_html_report("/nonexistent/report.html", artifacts.assay,
                                 artifacts.stats, *artifacts.chip),
               PreconditionError);
}

}  // namespace
}  // namespace meda::sim
