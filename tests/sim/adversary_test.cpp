#include "sim/adversary.hpp"

#include <gtest/gtest.h>

#include "assay/benchmarks.hpp"
#include "core/scheduler.hpp"
#include "sim/simulated_chip.hpp"

namespace meda::sim {
namespace {

SimulatedChipConfig small_config() {
  SimulatedChipConfig config;
  config.chip.width = 20;
  config.chip.height = 12;
  // Low c so adversarial wear is visible in the health matrix quickly.
  config.chip.degradation = DegradationRange{0.5, 0.5, 100.0, 100.0};
  return config;
}

std::uint64_t total_wear(const Biochip& chip) {
  std::uint64_t total = 0;
  for (int y = 0; y < chip.height(); ++y)
    for (int x = 0; x < chip.width(); ++x)
      total += chip.mc(x, y).actuations();
  return total;
}

TEST(RandomAdversaryTest, AddsExactlyTheBudgetedWear) {
  SimulatedChip chip(small_config(), Rng(1));
  chip.set_adversary(
      std::make_unique<RandomAdversary>(AdversaryBudget{3, 40}));
  const std::uint64_t before = total_wear(chip.substrate());
  chip.step({});
  chip.step({});
  // No droplets → only adversary wear: 2 cycles × 3 cells × 40.
  EXPECT_EQ(total_wear(chip.substrate()) - before, 2u * 3u * 40u);
}

TEST(FrontierAdversaryTest, IdleWithoutDroplets) {
  SimulatedChip chip(small_config(), Rng(2));
  chip.set_adversary(
      std::make_unique<FrontierAdversary>(AdversaryBudget{5, 100}));
  chip.step({});
  EXPECT_EQ(total_wear(chip.substrate()), 0u);
}

TEST(FrontierAdversaryTest, DamagesOnlyTheRingAroundDroplets) {
  SimulatedChip chip(small_config(), Rng(3));
  chip.set_adversary(
      std::make_unique<FrontierAdversary>(AdversaryBudget{4, 25}));
  const core::DropletId id = chip.dispense(Rect{5, 0, 8, 3});
  (void)id;
  chip.step({});
  const Rect droplet{5, 0, 8, 3};
  const Rect ring = droplet.inflated(1);
  for (int y = 0; y < 12; ++y) {
    for (int x = 0; x < 20; ++x) {
      const std::uint64_t n = chip.substrate().mc(x, y).actuations();
      if (droplet.contains(x, y)) {
        // Held droplet pattern: exactly one actuation (adversary never hits
        // cells under the droplet).
        EXPECT_EQ(n, 1u) << x << "," << y;
      } else if (ring.contains(x, y)) {
        EXPECT_EQ(n % 25, 0u) << x << "," << y;  // 0 or k×25 hits
      } else {
        EXPECT_EQ(n, 0u) << x << "," << y;
      }
    }
  }
  EXPECT_EQ(total_wear(chip.substrate()),
            static_cast<std::uint64_t>(droplet.area()) + 4u * 25u);
}

TEST(AdversaryTest, RemovingTheAdversaryStopsTheDamage) {
  SimulatedChip chip(small_config(), Rng(4));
  chip.set_adversary(
      std::make_unique<RandomAdversary>(AdversaryBudget{2, 10}));
  chip.step({});
  EXPECT_EQ(total_wear(chip.substrate()), 20u);
  chip.set_adversary(nullptr);
  chip.step({});
  EXPECT_EQ(total_wear(chip.substrate()), 20u);
}

TEST(AdversaryTest, AdaptiveRouterSurvivesAFrontierAdversary) {
  // End-to-end robustness: under a frontier-targeting degradation player,
  // the adaptive router still completes COVID-RAT (it observes the damage
  // through H and reroutes), where the baseline may stall.
  SimulatedChipConfig config;
  config.chip.width = assay::kChipWidth;
  config.chip.height = assay::kChipHeight;
  config.chip.degradation = DegradationRange{0.5, 0.7, 80.0, 150.0};
  SimulatedChip chip(config, Rng(5));
  chip.set_adversary(
      std::make_unique<FrontierAdversary>(AdversaryBudget{2, 60}));
  core::SchedulerConfig sched;
  sched.adaptive = true;
  sched.max_cycles = 2000;
  core::Scheduler scheduler(sched);
  const core::ExecutionStats stats = scheduler.run(chip, assay::covid_rat());
  EXPECT_TRUE(stats.success) << stats.failure_reason;
  EXPECT_GT(stats.resyntheses, 0);  // the damage was observed and reacted to
}

}  // namespace
}  // namespace meda::sim
