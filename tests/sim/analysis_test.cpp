#include "sim/analysis.hpp"

#include <gtest/gtest.h>

#include <array>

#include "util/check.hpp"

namespace meda::sim {
namespace {

/// Builds a trace where cell (x, y) is actuated on cycle t iff
/// predicate(x, y, t).
template <typename Pred>
std::vector<BoolMatrix> make_trace(int w, int h, int cycles, Pred pred) {
  std::vector<BoolMatrix> trace;
  for (int t = 0; t < cycles; ++t) {
    BoolMatrix m(w, h);
    for (int y = 0; y < h; ++y)
      for (int x = 0; x < w; ++x) m(x, y) = pred(x, y, t) ? 1 : 0;
    trace.push_back(std::move(m));
  }
  return trace;
}

const std::array<int, 3> kDistances = {1, 2, 3};

TEST(ActuationCorrelation, PerfectlyCoupledNeighborsGiveRhoOne) {
  // All cells actuate together on even cycles: every pair correlates 1.
  Rng rng(1);
  const auto trace = make_trace(
      10, 10, 40, [](int, int, int t) { return t % 2 == 0; });
  const auto corr = actuation_correlation(trace, kDistances, 1000, rng);
  ASSERT_EQ(corr.distance.size(), 3u);
  for (double rho : corr.mean_rho) EXPECT_NEAR(rho, 1.0, 1e-9);
  for (int pairs : corr.pairs) EXPECT_GT(pairs, 0);
}

TEST(ActuationCorrelation, IndependentCellsGiveRhoNearZero) {
  Rng noise(7);
  std::vector<std::vector<unsigned char>> bits(
      100, std::vector<unsigned char>(400));
  for (auto& cell : bits)
    for (auto& b : cell) b = noise.bernoulli(0.5);
  const auto trace = make_trace(10, 10, 400, [&](int x, int y, int t) {
    return bits[static_cast<std::size_t>(y * 10 + x)]
               [static_cast<std::size_t>(t)] != 0;
  });
  Rng rng(2);
  const auto corr = actuation_correlation(trace, kDistances, 500, rng);
  for (double rho : corr.mean_rho) EXPECT_NEAR(rho, 0.0, 0.05);
}

TEST(ActuationCorrelation, DistanceDecayForAMovingBlock) {
  // A 4×4 block sweeping east one cell per cycle: nearby cells share most
  // of their actuation window, distant cells less — ρ decreases with d.
  const auto trace = make_trace(40, 8, 36, [](int x, int y, int t) {
    return y >= 2 && y <= 5 && x >= t && x < t + 4;
  });
  Rng rng(3);
  const std::array<int, 5> ds = {1, 2, 3, 4, 5};
  const auto corr = actuation_correlation(trace, ds, 4000, rng);
  for (std::size_t i = 1; i < corr.mean_rho.size(); ++i)
    EXPECT_LT(corr.mean_rho[i], corr.mean_rho[i - 1]) << "d=" << ds[i];
  EXPECT_GT(corr.mean_rho.front(), 0.5);
}

TEST(ActuationCorrelation, ConstantCellsAreExcluded) {
  // Only two cells ever toggle; all-zero and all-one cells must not join.
  const auto trace = make_trace(6, 6, 20, [](int x, int y, int t) {
    if (x == 0 && y == 0) return true;           // constant 1
    if (x == 2 && y == 2) return t % 2 == 0;     // toggling
    if (x == 3 && y == 2) return t % 2 == 0;     // toggling, d=1 from above
    return false;                                // constant 0
  });
  Rng rng(4);
  const auto corr = actuation_correlation(trace, std::array<int, 1>{1}, 100,
                                          rng);
  EXPECT_EQ(corr.pairs[0], 1);  // exactly the toggling pair
  EXPECT_NEAR(corr.mean_rho[0], 1.0, 1e-9);
}

TEST(ActuationCorrelation, PairBudgetIsRespected) {
  Rng rng(5);
  const auto trace = make_trace(
      12, 12, 30, [](int, int, int t) { return t % 3 == 0; });
  const auto corr =
      actuation_correlation(trace, std::array<int, 1>{1}, 10, rng);
  EXPECT_LE(corr.pairs[0], 10);
}

TEST(WearDistribution, UniformWearHasZeroGini) {
  const Matrix<std::uint64_t> counts(10, 5, 40);
  const WearDistribution dist = wear_distribution(counts);
  EXPECT_DOUBLE_EQ(dist.mean, 40.0);
  EXPECT_DOUBLE_EQ(dist.max, 40.0);
  EXPECT_DOUBLE_EQ(dist.p95, 40.0);
  EXPECT_NEAR(dist.gini, 0.0, 1e-12);
}

TEST(WearDistribution, ConcentratedWearHasHighGini) {
  Matrix<std::uint64_t> counts(10, 10, 0);
  counts(3, 3) = 1000;  // a single hot cell
  const WearDistribution dist = wear_distribution(counts);
  EXPECT_DOUBLE_EQ(dist.mean, 10.0);
  EXPECT_DOUBLE_EQ(dist.max, 1000.0);
  EXPECT_GT(dist.gini, 0.95);
}

TEST(WearDistribution, GiniMatchesClosedFormForTwoValues) {
  // Half the cells at 0, half at 2: Gini → 0.5 for large n.
  Matrix<std::uint64_t> counts(100, 2, 0);
  for (int x = 0; x < 100; ++x) counts(x, 1) = 2;
  const WearDistribution dist = wear_distribution(counts);
  EXPECT_NEAR(dist.gini, 0.5, 0.01);
  EXPECT_DOUBLE_EQ(dist.mean, 1.0);
}

TEST(WearDistribution, LevelledWearScoresLowerThanConcentrated) {
  Matrix<std::uint64_t> level(20, 20, 0);
  Matrix<std::uint64_t> hot(20, 20, 0);
  Rng rng(8);
  for (int i = 0; i < 4000; ++i) {
    level(rng.uniform_int(0, 19), rng.uniform_int(0, 19)) += 1;
    hot(rng.uniform_int(8, 11), rng.uniform_int(8, 11)) += 1;
  }
  EXPECT_LT(wear_distribution(level).gini, wear_distribution(hot).gini);
}

TEST(WearDistribution, RejectsEmptyMatrix) {
  EXPECT_THROW(wear_distribution(Matrix<std::uint64_t>{}),
               PreconditionError);
}

TEST(ActuationCorrelation, RejectsBadInput) {
  Rng rng(6);
  EXPECT_THROW(
      actuation_correlation({}, std::array<int, 1>{1}, 10, rng),
      PreconditionError);
  const auto trace = make_trace(4, 4, 5, [](int, int, int) { return true; });
  EXPECT_THROW(
      actuation_correlation(trace, std::array<int, 1>{0}, 10, rng),
      PreconditionError);
  EXPECT_THROW(
      actuation_correlation(trace, std::array<int, 1>{1}, 0, rng),
      PreconditionError);
}

}  // namespace
}  // namespace meda::sim
