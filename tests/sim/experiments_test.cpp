#include "sim/experiments.hpp"

#include <gtest/gtest.h>

#include "assay/benchmarks.hpp"
#include "util/check.hpp"

namespace meda::sim {
namespace {

RepeatedRunsConfig healthy_config(int runs = 3) {
  RepeatedRunsConfig config;
  config.chip.chip.width = assay::kChipWidth;
  config.chip.chip.height = assay::kChipHeight;
  config.runs = runs;
  config.seed = 7;
  return config;
}

TEST(RunRepeated, HealthyChipSucceedsEveryRun) {
  const auto runs = run_repeated(assay::covid_rat(), healthy_config());
  ASSERT_EQ(runs.size(), 3u);
  for (const RunRecord& r : runs) {
    EXPECT_TRUE(r.success) << r.stats.failure_reason;
    EXPECT_GT(r.cycles, 0u);
    EXPECT_EQ(r.cycles, r.stats.cycles);
  }
}

TEST(RunRepeated, IsDeterministicPerSeed) {
  const auto a = run_repeated(assay::covid_rat(), healthy_config());
  const auto b = run_repeated(assay::covid_rat(), healthy_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].success, b[i].success);
    EXPECT_EQ(a[i].cycles, b[i].cycles);
  }
}

TEST(RunRepeated, ChipDegradationPersistsAcrossRuns) {
  // With aggressive degradation, later runs take at least as long (the
  // transport corridor wears out).
  RepeatedRunsConfig config = healthy_config(10);
  config.chip.chip.degradation = DegradationRange{0.5, 0.7, 60.0, 120.0};
  const auto runs = run_repeated(assay::serial_dilution(), config);
  ASSERT_EQ(runs.size(), 10u);
  EXPECT_TRUE(runs.front().success);
  EXPECT_GT(runs.back().cycles + (runs.back().success ? 0 : 100000),
            runs.front().cycles);
}

TEST(ProbabilityOfSuccess, CountsOnlyRunsWithinBudget) {
  std::vector<RunRecord> records(4);
  records[0] = {true, 100, {}};
  records[1] = {true, 200, {}};
  records[2] = {false, 150, {}};  // failed runs never count
  records[3] = {true, 300, {}};
  EXPECT_DOUBLE_EQ(probability_of_success(records, 99), 0.0);
  EXPECT_DOUBLE_EQ(probability_of_success(records, 100), 0.25);
  EXPECT_DOUBLE_EQ(probability_of_success(records, 250), 0.5);
  EXPECT_DOUBLE_EQ(probability_of_success(records, 1000), 0.75);
}

TEST(ProbabilityOfSuccess, MonotoneInBudget) {
  RepeatedRunsConfig config = healthy_config(6);
  config.chip.chip.degradation = DegradationRange{0.5, 0.9, 80.0, 200.0};
  const auto runs = run_repeated(assay::master_mix(), config);
  double prev = 0.0;
  for (std::uint64_t k = 50; k <= 1000; k += 50) {
    const double pos = probability_of_success(runs, k);
    EXPECT_GE(pos, prev);
    prev = pos;
  }
}

TEST(ProbabilityOfSuccess, EmptyRecordsThrow) {
  EXPECT_THROW(probability_of_success({}, 100), PreconditionError);
}

TEST(RunTrial, HealthyChipReachesTheTarget) {
  TrialConfig config;
  config.chip.chip.width = assay::kChipWidth;
  config.chip.chip.height = assay::kChipHeight;
  config.successes_target = 3;
  config.kmax_total = 2000;
  config.seed = 11;
  const TrialResult r = run_trial(assay::covid_rat(), config);
  EXPECT_EQ(r.successes, 3);
  EXPECT_EQ(r.executions, 3);
  EXPECT_FALSE(r.aborted);
  EXPECT_EQ(r.first_failure_execution, 0);
  EXPECT_GT(r.total_cycles, 0u);
  EXPECT_LE(r.total_cycles, 2000u);
}

TEST(RunTrial, TinyBudgetAborts) {
  TrialConfig config;
  config.chip.chip.width = assay::kChipWidth;
  config.chip.chip.height = assay::kChipHeight;
  config.successes_target = 5;
  config.kmax_total = 30;  // far below one execution's cycle count
  config.seed = 11;
  const TrialResult r = run_trial(assay::covid_rat(), config);
  EXPECT_TRUE(r.aborted);
  EXPECT_EQ(r.successes, 0);
  EXPECT_GE(r.first_failure_execution, 1);
}

TEST(RunTrial, BudgetCapsTheCumulativeCycles) {
  TrialConfig config;
  config.chip.chip.width = assay::kChipWidth;
  config.chip.chip.height = assay::kChipHeight;
  config.chip.chip.degradation = DegradationRange{0.5, 0.7, 40.0, 80.0};
  config.successes_target = 20;  // unreachable on this dying chip
  config.kmax_total = 800;
  config.seed = 13;
  const TrialResult r = run_trial(assay::serial_dilution(), config);
  EXPECT_TRUE(r.aborted);
  EXPECT_LE(r.total_cycles, 800u + 100u);  // slack: the last run overshoots
}

TEST(OfflineLibrary, PrecomputeEliminatesRuntimeSynthesis) {
  // Section VI-D offline phase: after precomputing on the pristine twin, a
  // real execution on an equally fresh chip is served entirely from the
  // library.
  core::StrategyLibrary library;
  BiochipConfig chip_config;
  chip_config.width = assay::kChipWidth;
  chip_config.height = assay::kChipHeight;
  core::SchedulerConfig sched;
  const std::size_t entries = precompute_offline_library(
      library, assay::covid_pcr(), chip_config, sched);
  EXPECT_GT(entries, 0u);

  SimulatedChipConfig sim_config;
  sim_config.chip = chip_config;
  SimulatedChip chip(sim_config, Rng(123));
  core::Scheduler scheduler(sched, &library);
  const core::ExecutionStats stats = scheduler.run(chip, assay::covid_pcr());
  ASSERT_TRUE(stats.success) << stats.failure_reason;
  EXPECT_EQ(stats.synthesis_calls, 0);
  EXPECT_GT(stats.library_hits, 0);
}

TEST(OfflineLibrary, DegradedChipFallsBackToRuntimeSynthesis) {
  core::StrategyLibrary library;
  BiochipConfig chip_config;
  chip_config.width = assay::kChipWidth;
  chip_config.height = assay::kChipHeight;
  core::SchedulerConfig sched;
  precompute_offline_library(library, assay::covid_rat(), chip_config, sched);

  SimulatedChipConfig sim_config;
  sim_config.chip = chip_config;
  sim_config.chip.degradation = DegradationRange{0.5, 0.6, 60.0, 100.0};
  sim_config.pre_wear_max = 200;  // worn chip → different health digests
  SimulatedChip chip(sim_config, Rng(124));
  core::Scheduler scheduler(sched, &library);
  const core::ExecutionStats stats = scheduler.run(chip, assay::covid_rat());
  ASSERT_TRUE(stats.success) << stats.failure_reason;
  EXPECT_GT(stats.synthesis_calls, 0);
}

TEST(RunTrial, DeterministicPerSeed) {
  TrialConfig config;
  config.chip.chip.width = assay::kChipWidth;
  config.chip.chip.height = assay::kChipHeight;
  config.successes_target = 2;
  config.seed = 17;
  const TrialResult a = run_trial(assay::master_mix(), config);
  const TrialResult b = run_trial(assay::master_mix(), config);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.executions, b.executions);
}

}  // namespace
}  // namespace meda::sim
