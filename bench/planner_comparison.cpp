// Extension experiment: cooperative routing beyond the paper's disjoint-
// zone assumption. Two droplets exchange the ends of a corridor whose
// height we sweep; we compare
//   - joint search over the product space (pair_planner — optimal,
//     exponential state space), and
//   - prioritized time-expanded planning (fleet_planner — linear in the
//     fleet size, but incomplete).
// The interesting band is where the corridor is just wide enough for a
// coordinated pass but too tight for prioritized planning.

#include <iostream>

#include "core/fleet_planner.hpp"
#include "core/pair_planner.hpp"
#include "model/outcomes.hpp"
#include "util/table.hpp"

using namespace meda;

namespace {

struct Outcome {
  bool feasible = false;
  std::size_t makespan = 0;
  std::size_t effort = 0;  // states expanded / visited
};

}  // namespace

int main() {
  std::cout << "=== Extension — joint vs prioritized cooperative routing "
               "===\n(two 3×3 droplets swapping the ends of a 24-column "
               "corridor)\n\n";
  Table table({"corridor rows", "joint feasible", "joint makespan",
               "joint states expanded", "prioritized feasible",
               "prioritized makespan"});
  for (const int rows : {4, 6, 8, 10, 12}) {
    const Rect chip{0, 0, 23, rows - 1};
    const DoubleMatrix force = full_health_force(24, rows);
    assay::RoutingJob ja;
    ja.start = Rect::from_size(0, rows / 2 - 1, 3, 3);
    ja.goal = Rect::from_size(21, rows / 2 - 1, 3, 3);
    ja.hazard = chip;
    assay::RoutingJob jb;
    jb.start = ja.goal;
    jb.goal = ja.start;
    jb.hazard = chip;

    core::PairPlannerConfig pair_config;
    pair_config.rules.enable_morphing = false;
    const core::PairPlan joint =
        core::plan_pair(ja, jb, force, chip, pair_config);

    core::FleetPlannerConfig fleet_config;
    fleet_config.rules.enable_morphing = false;
    fleet_config.horizon = 128;
    const std::vector<assay::RoutingJob> jobs = {ja, jb};
    const core::FleetPlan prioritized =
        core::plan_fleet(jobs, chip, fleet_config);

    table.add_row({std::to_string(rows), joint.feasible ? "yes" : "no",
                   joint.feasible ? std::to_string(joint.steps.size()) : "-",
                   fmt_int(static_cast<long long>(joint.states_expanded)),
                   prioritized.feasible ? "yes" : "no",
                   prioritized.feasible
                       ? std::to_string(prioritized.makespan)
                       : "-"});
  }
  table.print(std::cout);
  std::cout
      << "\nExpected crossovers: two 3-cell droplets plus the one-free-cell\n"
         "separation rule need 8 rows to pass at all (3+2+3), so corridors\n"
         "of 6 rows or fewer are infeasible for everyone. At exactly 8 rows\n"
         "only the joint planner passes (droplet 0's solo optimum hogs the\n"
         "middle lane under prioritized planning); from 10 rows both\n"
         "succeed with identical makespans, with the joint search paying\n"
         "an order of magnitude more expansions.\n";
  return 0;
}
