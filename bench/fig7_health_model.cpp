// Reproduces Fig. 7: impact of the number of actuations n on the actual
// degradation level D_ij(n) = τ^(n/c) and the observed b-bit health code
// H_ij(n) = min(2^b−1, ⌊2^b·τ^(n/c)⌋) under different parameter
// configurations. The paper's observation: the MC health decays
// exponentially with the actuation count, and the quantized H tracks D as a
// staircase whose resolution grows with b.

#include <iostream>

#include "chip/degradation.hpp"
#include "util/table.hpp"

namespace {

void print_configuration(double tau, double c, int bits) {
  using namespace meda;
  std::cout << "Configuration: tau = " << tau << ", c = " << c
            << ", b = " << bits << " bits\n";
  Table table({"n", "D(n)", "H(n)", "F(n)=D^2"});
  const DegradationParams params{tau, c};
  for (int n = 0; n <= 2000; n += 200) {
    const double d = params.degradation(static_cast<std::uint64_t>(n));
    table.add_row({fmt_int(n), fmt_double(d, 4),
                   fmt_int(quantize_health(d, bits)),
                   fmt_double(params.relative_force(
                                  static_cast<std::uint64_t>(n)),
                              4)});
  }
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  std::cout << "=== Fig. 7 — degradation D(n) and observed health H(n) ===\n\n";
  // Parameter configurations spanning the fitted PCB values (Fig. 6) and the
  // simulation ranges of Section VII-B (tau in U(0.5, 0.9), c in U(200, 500)).
  print_configuration(0.556, 822.7, 2);
  print_configuration(0.543, 805.5, 2);
  print_configuration(0.530, 788.4, 2);
  print_configuration(0.5, 200.0, 2);
  print_configuration(0.9, 500.0, 2);
  // The model is valid for general b (Section IV-B); show the staircase
  // refinement at higher resolutions.
  print_configuration(0.7, 350.0, 3);
  print_configuration(0.7, 350.0, 4);
  std::cout << "Expected shape: D decays exponentially in n; H is the b-bit\n"
               "floor staircase under D and reaches 0 as the MC wears out.\n";
  return 0;
}
