// bench_compare: diff two Google-Benchmark JSON files and flag regressions.
//
//   bench_compare BASELINE.json CANDIDATE.json [options]
//
//   --threshold R   relative slowdown that counts as a regression
//                   (default 1.25: candidate > 1.25x baseline fails)
//   --metric M      cpu (default) or real time
//   --json PATH     also write the diff as machine-readable JSON
//
// Exit codes: 0 = no regression beyond threshold, 1 = at least one
// regression, 2 = usage or parse error. The human report prints every
// matched benchmark with its ratio, then added/removed names; CI runs this
// against the committed BENCH_synthesis.json baseline (see
// docs/performance.md for the BENCH_history/ trajectory convention).

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/benchjson.hpp"
#include "util/cli.hpp"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

std::string fmt_ns(double ns) {
  char buf[64];
  if (ns >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.3f s", ns / 1e9);
  } else if (ns >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.3f ms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.3f us", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f ns", ns);
  }
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using meda::util::flag_value;
  using meda::util::has_flag;

  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      // Skip a valued flag's detached value.
      if ((arg == "--threshold" || arg == "--metric" || arg == "--json") &&
          i + 1 < argc)
        ++i;
      continue;
    }
    files.push_back(arg);
  }
  if (has_flag(argc, argv, "--help") || files.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_compare BASELINE.json CANDIDATE.json"
                 " [--threshold R] [--metric cpu|real] [--json PATH]\n");
    return 2;
  }

  const double threshold =
      std::atof(flag_value(argc, argv, "--threshold", "1.25").c_str());
  if (threshold <= 0.0) {
    std::fprintf(stderr, "bench_compare: --threshold must be positive\n");
    return 2;
  }
  const std::string metric = flag_value(argc, argv, "--metric", "cpu");
  if (metric != "cpu" && metric != "real") {
    std::fprintf(stderr, "bench_compare: --metric must be cpu or real\n");
    return 2;
  }

  std::vector<meda::util::BenchEntry> baseline, candidate;
  for (int side = 0; side < 2; ++side) {
    std::string text, error;
    if (!read_file(files[side], text)) {
      std::fprintf(stderr, "bench_compare: cannot read %s\n",
                   files[side].c_str());
      return 2;
    }
    auto& entries = side == 0 ? baseline : candidate;
    if (!meda::util::parse_benchmark_json(text, entries, &error)) {
      std::fprintf(stderr, "bench_compare: %s: %s\n", files[side].c_str(),
                   error.c_str());
      return 2;
    }
  }

  const meda::util::BenchComparison diff =
      meda::util::compare_benchmarks(baseline, candidate, metric == "cpu");

  int regressions = 0;
  std::printf("bench_compare: %s vs %s (%s time, threshold %.2fx)\n",
              files[0].c_str(), files[1].c_str(), metric.c_str(), threshold);
  std::printf("%-40s %14s %14s %8s\n", "benchmark", "baseline", "candidate",
              "ratio");
  for (const meda::util::BenchDelta& d : diff.matched) {
    const bool regressed = d.ratio > threshold;
    if (regressed) ++regressions;
    std::printf("%-40s %14s %14s %7.2fx%s\n", d.name.c_str(),
                fmt_ns(d.baseline_ns).c_str(), fmt_ns(d.candidate_ns).c_str(),
                d.ratio, regressed ? "  REGRESSED" : "");
  }
  for (const std::string& name : diff.only_baseline)
    std::printf("%-40s removed (baseline only)\n", name.c_str());
  for (const std::string& name : diff.only_candidate)
    std::printf("%-40s added (candidate only)\n", name.c_str());
  std::printf("%d regression(s) beyond %.2fx across %zu matched benchmark(s)\n",
              regressions, threshold, diff.matched.size());

  const std::string json_path = flag_value(argc, argv, "--json");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "bench_compare: cannot write %s\n",
                   json_path.c_str());
      return 2;
    }
    out << "{\n  \"threshold\": " << threshold << ",\n  \"metric\": \""
        << metric << "\",\n  \"regressions\": " << regressions
        << ",\n  \"benchmarks\": [";
    for (std::size_t i = 0; i < diff.matched.size(); ++i) {
      const meda::util::BenchDelta& d = diff.matched[i];
      out << (i ? "," : "") << "\n    {\"name\": \"" << d.name
          << "\", \"baseline_ns\": " << d.baseline_ns
          << ", \"candidate_ns\": " << d.candidate_ns
          << ", \"ratio\": " << d.ratio << ", \"regressed\": "
          << (d.ratio > threshold ? "true" : "false") << "}";
    }
    out << "\n  ],\n  \"only_baseline\": [";
    for (std::size_t i = 0; i < diff.only_baseline.size(); ++i)
      out << (i ? "," : "") << "\"" << diff.only_baseline[i] << "\"";
    out << "],\n  \"only_candidate\": [";
    for (std::size_t i = 0; i < diff.only_candidate.size(); ++i)
      out << (i ? "," : "") << "\"" << diff.only_candidate[i] << "\"";
    out << "]\n}\n";
  }

  return regressions > 0 ? 1 : 0;
}
