// Ablation: scheduling schemes of Section VI-D and the synthesis-latency
// overhead of Section VII-D.
//
// Part 1 — offline / hybrid / online scheme comparison: runtime synthesis
// calls and wall time per execution on a fresh chip.
// Part 2 — synthesis latency: when each (re-)synthesis takes L cycles (the
// droplet continues under the stale strategy or holds meanwhile), how does
// the time-to-result grow on a degrading chip that forces re-syntheses?

#include <iostream>

#include "assay/benchmarks.hpp"
#include "sim/experiments.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace meda;

namespace {

BiochipConfig reference_chip() {
  BiochipConfig config;
  config.width = assay::kChipWidth;
  config.height = assay::kChipHeight;
  return config;
}

void scheme_comparison() {
  std::cout << "Scheduling schemes (COVID-PCR, fresh chip):\n";
  Table table({"scheme", "runtime synthesis calls", "library hits",
               "synthesis wall time (ms)", "cycles"});

  // Offline+hybrid: the library is pre-populated on a pristine twin.
  {
    core::StrategyLibrary library;
    core::SchedulerConfig sched;
    sim::precompute_offline_library(library, assay::covid_pcr(),
                                    reference_chip(), sched);
    sim::SimulatedChipConfig sim_config;
    sim_config.chip = reference_chip();
    sim::SimulatedChip chip(sim_config, Rng(1));
    core::Scheduler scheduler(sched, &library);
    const core::ExecutionStats stats =
        scheduler.run(chip, assay::covid_pcr());
    table.add_row({"offline + hybrid (precomputed library)",
                   std::to_string(stats.synthesis_calls),
                   std::to_string(stats.library_hits),
                   fmt_double(stats.synthesis_seconds * 1e3, 2),
                   std::to_string(stats.cycles)});
  }
  // Hybrid with a cold library.
  {
    sim::SimulatedChipConfig sim_config;
    sim_config.chip = reference_chip();
    sim::SimulatedChip chip(sim_config, Rng(1));
    core::Scheduler scheduler(core::SchedulerConfig{});
    const core::ExecutionStats stats =
        scheduler.run(chip, assay::covid_pcr());
    table.add_row({"hybrid (cold library)",
                   std::to_string(stats.synthesis_calls),
                   std::to_string(stats.library_hits),
                   fmt_double(stats.synthesis_seconds * 1e3, 2),
                   std::to_string(stats.cycles)});
  }
  // Pure online: synthesize on demand, never cache.
  {
    sim::SimulatedChipConfig sim_config;
    sim_config.chip = reference_chip();
    sim::SimulatedChip chip(sim_config, Rng(1));
    core::SchedulerConfig sched;
    sched.use_library = false;
    core::Scheduler scheduler(sched);
    const core::ExecutionStats stats =
        scheduler.run(chip, assay::covid_pcr());
    table.add_row({"online (no library)",
                   std::to_string(stats.synthesis_calls),
                   std::to_string(stats.library_hits),
                   fmt_double(stats.synthesis_seconds * 1e3, 2),
                   std::to_string(stats.cycles)});
  }
  table.print(std::cout);
}

void latency_sweep() {
  std::cout << "\nSynthesis latency (Serial Dilution, degrading chip, "
               "5 chips x 8 runs):\n";
  Table table({"latency (cycles/synthesis)", "success rate",
               "mean cycles (successful)"});
  for (const int latency : {0, 3, 6, 12}) {
    int successes = 0, total = 0;
    stats::RunningStats cycles;
    for (int chip_idx = 0; chip_idx < 5; ++chip_idx) {
      sim::RepeatedRunsConfig config;
      config.chip.chip = reference_chip();
      config.chip.chip.degradation = DegradationRange{0.5, 0.9, 60.0, 150.0};
      config.scheduler.adaptive = true;
      config.scheduler.synthesis_latency_cycles = latency;
      config.scheduler.max_cycles = 1500;
      config.runs = 8;
      config.seed = 700 + static_cast<std::uint64_t>(chip_idx);
      for (const sim::RunRecord& r :
           sim::run_repeated(assay::serial_dilution(), config)) {
        ++total;
        if (r.success) {
          ++successes;
          cycles.add(static_cast<double>(r.cycles));
        }
      }
    }
    table.add_row({std::to_string(latency),
                   fmt_prob(static_cast<double>(successes) / total),
                   fmt_double(cycles.count() ? cycles.mean() : 0.0, 1)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: the precomputed library removes all runtime\n"
               "synthesis on a fresh chip; the online scheme re-synthesizes\n"
               "every job. Latency adds cycles roughly linearly (droplets\n"
               "hold or follow stale strategies while waiting), matching\n"
               "Section VII-D's argument for the hybrid scheme.\n";
}

}  // namespace

int main() {
  std::cout << "=== Ablation — scheduling schemes and synthesis latency "
               "===\n\n";
  scheme_comparison();
  latency_sweep();
  return 0;
}
