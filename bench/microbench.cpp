// Google-benchmark microbenchmarks of the synthesis engine's hot kernels:
// model construction, MDP compilation, the two value-iteration queries on
// both the compiled and the legacy path, outcome-distribution evaluation,
// campaign-cell throughput, and health sensing. Complements Table V's
// end-to-end timings with per-kernel numbers.
//
// Refresh the committed perf record with:
//   ./build/bench/microbench --benchmark_out=BENCH_synthesis.json
//       --benchmark_out_format=json
// (see docs/performance.md for how to read the file).

#include <benchmark/benchmark.h>

#include "assay/benchmarks.hpp"
#include "assay/helper.hpp"
#include "chip/biochip.hpp"
#include "core/compiled_mdp.hpp"
#include "core/mdp.hpp"
#include "core/synthesizer.hpp"
#include "core/value_iteration.hpp"
#include "model/outcomes.hpp"
#include "obs/obs.hpp"
#include "sim/campaign.hpp"

namespace {

using namespace meda;

assay::RoutingJob corner_job(int area, int droplet) {
  assay::RoutingJob rj;
  rj.start = Rect::from_size(0, 0, droplet, droplet);
  rj.goal =
      Rect::from_size(area - droplet, area - droplet, droplet, droplet);
  rj.hazard = Rect{0, 0, area - 1, area - 1};
  return rj;
}

ActionRules bench_rules() {
  ActionRules rules;
  rules.enable_morphing = false;
  return rules;
}

void BM_BuildRoutingMdp(benchmark::State& state) {
  const int area = static_cast<int>(state.range(0));
  const assay::RoutingJob rj = corner_job(area, 4);
  const DoubleMatrix force(area, area, 0.6);
  const Rect chip{0, 0, area - 1, area - 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::build_routing_mdp(rj, force, chip, bench_rules()));
  }
  state.SetLabel(std::to_string(area) + "x" + std::to_string(area));
}
BENCHMARK(BM_BuildRoutingMdp)->Arg(10)->Arg(20)->Arg(30);

void BM_CompileMdp(benchmark::State& state) {
  const int area = static_cast<int>(state.range(0));
  const assay::RoutingJob rj = corner_job(area, 4);
  const DoubleMatrix force(area, area, 0.6);
  const Rect chip{0, 0, area - 1, area - 1};
  const core::RoutingMdp mdp =
      core::build_routing_mdp(rj, force, chip, bench_rules());
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compile_mdp(mdp));
  }
  state.SetLabel(std::to_string(mdp.state_count()) + " states");
}
BENCHMARK(BM_CompileMdp)->Arg(10)->Arg(20)->Arg(30);

void BM_SolveRmin(benchmark::State& state) {
  const int area = static_cast<int>(state.range(0));
  const assay::RoutingJob rj = corner_job(area, 4);
  const DoubleMatrix force(area, area, 0.6);
  const Rect chip{0, 0, area - 1, area - 1};
  const core::RoutingMdp mdp =
      core::build_routing_mdp(rj, force, chip, bench_rules());
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_rmin(mdp));
  }
  state.SetLabel(std::to_string(mdp.state_count()) + " states");
}
BENCHMARK(BM_SolveRmin)->Arg(10)->Arg(20)->Arg(30);

// Legacy reference solvers at the same sizes: the compiled-vs-legacy ratio
// (BM_SolveRmin/N vs BM_SolveRminLegacy/N) is the speedup this PR claims.
void BM_SolveRminLegacy(benchmark::State& state) {
  const int area = static_cast<int>(state.range(0));
  const assay::RoutingJob rj = corner_job(area, 4);
  const DoubleMatrix force(area, area, 0.6);
  const Rect chip{0, 0, area - 1, area - 1};
  const core::RoutingMdp mdp =
      core::build_routing_mdp(rj, force, chip, bench_rules());
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_rmin_legacy(mdp));
  }
  state.SetLabel(std::to_string(mdp.state_count()) + " states");
}
BENCHMARK(BM_SolveRminLegacy)->Arg(10)->Arg(20)->Arg(30);

void BM_SolvePmax(benchmark::State& state) {
  const int area = static_cast<int>(state.range(0));
  const assay::RoutingJob rj = corner_job(area, 4);
  const DoubleMatrix force(area, area, 0.6);
  const Rect chip{0, 0, area - 1, area - 1};
  const core::RoutingMdp mdp =
      core::build_routing_mdp(rj, force, chip, bench_rules());
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_pmax(mdp));
  }
}
BENCHMARK(BM_SolvePmax)->Arg(20);

void BM_SolvePmaxLegacy(benchmark::State& state) {
  const int area = static_cast<int>(state.range(0));
  const assay::RoutingJob rj = corner_job(area, 4);
  const DoubleMatrix force(area, area, 0.6);
  const Rect chip{0, 0, area - 1, area - 1};
  const core::RoutingMdp mdp =
      core::build_routing_mdp(rj, force, chip, bench_rules());
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_pmax_legacy(mdp));
  }
}
BENCHMARK(BM_SolvePmaxLegacy)->Arg(20);

// The scheduler's actual query: compile once, answer both φ_p and φ_r with a
// single pmax pass shared as rmin's winning region.
void BM_SolveReachAvoid(benchmark::State& state) {
  const int area = static_cast<int>(state.range(0));
  const assay::RoutingJob rj = corner_job(area, 4);
  const DoubleMatrix force(area, area, 0.6);
  const Rect chip{0, 0, area - 1, area - 1};
  const core::RoutingMdp mdp =
      core::build_routing_mdp(rj, force, chip, bench_rules());
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_reach_avoid(mdp));
  }
  state.SetLabel(std::to_string(mdp.state_count()) + " states");
}
BENCHMARK(BM_SolveReachAvoid)->Arg(10)->Arg(20)->Arg(30);

// The scheduler's hot re-synthesis kernel: patch the retained compiled
// model for a k-cell health delta and warm-start value iteration from the
// previous fixed point. Deltas are a compact wear cluster (the realistic
// shape: cells degrade along the route). The cold twin below re-solves the
// exact same patched model from scratch; warm/cold at equal delta is the
// speedup the incremental path claims. At the largest delta the dirty
// frontier exceeds SolveConfig::warm_dirty_fraction and the kernel
// deliberately falls back to full sweeps — that case bounds the overhead of
// choosing warm when cold would have been right.
constexpr int kWarmWidth = assay::kChipWidth;    // the reference chip,
constexpr int kWarmHeight = assay::kChipHeight;  // not a toy grid

assay::RoutingJob warm_job() {
  assay::RoutingJob rj;
  rj.start = Rect::from_size(0, 0, 4, 4);
  rj.goal = Rect::from_size(kWarmWidth - 4, kWarmHeight - 4, 4, 4);
  rj.hazard = Rect{0, 0, kWarmWidth - 1, kWarmHeight - 1};
  return rj;
}

std::vector<Vec2i> wear_cluster(int delta) {
  // A near-square block centred on the chip.
  int w = 1;
  while (w * w < delta) ++w;
  const int x0 = (kWarmWidth - w) / 2, y0 = (kWarmHeight - w) / 2;
  std::vector<Vec2i> cells;
  cells.reserve(static_cast<std::size_t>(delta));
  for (int i = 0; i < delta; ++i)
    cells.push_back(Vec2i{x0 + i % w, y0 + i / w});
  return cells;
}

void BM_SolveReachAvoidWarm(benchmark::State& state) {
  const int delta = static_cast<int>(state.range(0));
  const assay::RoutingJob rj = warm_job();
  const Rect chip = rj.hazard;
  DoubleMatrix force(kWarmWidth, kWarmHeight, 0.6);
  const core::RoutingMdp mdp =
      core::build_routing_mdp(rj, force, chip, bench_rules());
  core::CompiledMdp compiled = core::compile_mdp(mdp);
  const core::CompiledGeometry geometry = core::compile_geometry(mdp);
  core::ReachAvoidSolution prior = core::solve_reach_avoid(compiled);
  const std::vector<Vec2i> cells = wear_cluster(delta);
  bool flip = false;
  for (auto _ : state) {
    flip = !flip;
    for (const Vec2i& c : cells) force(c.x, c.y) = flip ? 0.5 : 0.6;
    const core::MdpPatch patch = core::patch_compiled_mdp(
        compiled, geometry, force, rj.hazard, chip, cells);
    core::ReachAvoidSolution sol =
        core::solve_reach_avoid_warm(compiled, prior, patch.dirty_states);
    benchmark::DoNotOptimize(sol.pmax.values.data());
    prior = std::move(sol);
  }
  state.SetLabel(std::to_string(compiled.num_droplet_states) + " states, " +
                 std::to_string(delta) + "-cell delta" +
                 (prior.pmax.warm_fell_back ? " (sweep fallback)" : ""));
}
BENCHMARK(BM_SolveReachAvoidWarm)->Arg(2)->Arg(16)->Arg(120);

void BM_SolveReachAvoidColdResolve(benchmark::State& state) {
  const int delta = static_cast<int>(state.range(0));
  const assay::RoutingJob rj = warm_job();
  const Rect chip = rj.hazard;
  DoubleMatrix force(kWarmWidth, kWarmHeight, 0.6);
  const core::RoutingMdp mdp =
      core::build_routing_mdp(rj, force, chip, bench_rules());
  core::CompiledMdp compiled = core::compile_mdp(mdp);
  const core::CompiledGeometry geometry = core::compile_geometry(mdp);
  const std::vector<Vec2i> cells = wear_cluster(delta);
  bool flip = false;
  for (auto _ : state) {
    flip = !flip;
    for (const Vec2i& c : cells) force(c.x, c.y) = flip ? 0.5 : 0.6;
    const core::MdpPatch patch = core::patch_compiled_mdp(
        compiled, geometry, force, rj.hazard, chip, cells);
    benchmark::DoNotOptimize(patch.choices_changed);
    benchmark::DoNotOptimize(core::solve_reach_avoid(compiled));
  }
  state.SetLabel(std::to_string(compiled.num_droplet_states) + " states, " +
                 std::to_string(delta) + "-cell delta");
}
BENCHMARK(BM_SolveReachAvoidColdResolve)->Arg(2)->Arg(16)->Arg(120);

void BM_FullSynthesis(benchmark::State& state) {
  const int area = static_cast<int>(state.range(0));
  core::SynthesisConfig config;
  config.rules = bench_rules();
  const core::Synthesizer synth(Rect{0, 0, area - 1, area - 1}, config);
  const assay::RoutingJob rj = corner_job(area, 4);
  const IntMatrix health(area, area, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth.synthesize(rj, health, 2));
  }
}
BENCHMARK(BM_FullSynthesis)->Arg(10)->Arg(20)->Arg(30);

// One campaign cell end to end (COVID-RAT assay, adaptive router, one chip,
// one run): the unit of work the parallel campaign drivers distribute.
void BM_CampaignCell(benchmark::State& state) {
  const std::vector<assay::MoList> assays = {assay::covid_rat()};
  std::vector<sim::RouterConfig> routers(1);
  routers[0].name = "adaptive";
  sim::CampaignConfig config;
  config.chip.chip.width = assay::kChipWidth;
  config.chip.chip.height = assay::kChipHeight;
  config.chips = 1;
  config.runs_per_chip = 1;
  config.seed0 = 11;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_campaign(assays, routers, config));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("COVID-RAT, 1 chip x 1 run");
}
BENCHMARK(BM_CampaignCell);

void BM_ActionOutcomes(benchmark::State& state) {
  const Rect droplet{8, 8, 12, 11};
  const DoubleMatrix force(30, 30, 0.7);
  for (auto _ : state) {
    for (const Action a : kAllActions)
      benchmark::DoNotOptimize(action_outcomes(droplet, a, force));
  }
}
BENCHMARK(BM_ActionOutcomes);

// Observability overhead, measured instead of asserted. One "site" is a
// span plus a counter bump and two histogram observations — denser than any
// real hot path. BM_ObsSitesNull measures the null-sink cost (one predicted
// branch per macro; rebuild with -DMEDA_OBS=OFF and the same bench measures
// the compiled-out cost, which should be indistinguishable from an empty
// loop). BM_ObsSitesEnabled measures full recording, including the periodic
// tracer clear a long-running instrumented process needs.
constexpr int kObsBatch = 256;

void obs_site_batch() {
  for (int i = 0; i < kObsBatch; ++i) {
    MEDA_OBS_SPAN(span, "bench", "site");
    MEDA_OBS_COUNT("bench.counter", 1);
    MEDA_OBS_OBSERVE("bench.histogram", static_cast<double>(i),
                     obs::kPow2Buckets);
    MEDA_OBS_OBSERVE_LOG2("bench.log2", static_cast<double>(i));
  }
}

void BM_ObsSitesNull(benchmark::State& state) {
  obs::ctx().reset();  // both sinks disabled: every macro is one branch
  for (auto _ : state) {
    obs_site_batch();
  }
  state.SetItemsProcessed(state.iterations() * kObsBatch);
  state.SetLabel("span+count+2 observes per site, sinks disabled");
}
BENCHMARK(BM_ObsSitesNull);

void BM_ObsSitesEnabled(benchmark::State& state) {
  obs::ctx().reset();
  obs::ctx().tracer().enable();
  obs::ctx().metrics().enable();
  for (auto _ : state) {
    obs_site_batch();
    obs::ctx().tracer().clear();  // bound the event buffer, cost included
  }
  state.SetItemsProcessed(state.iterations() * kObsBatch);
  state.SetLabel("span+count+2 observes per site, both sinks recording");
  obs::ctx().reset();  // leave the global context quiet for later benches
}
BENCHMARK(BM_ObsSitesEnabled);

// End-to-end check on a real kernel: BM_SolveReachAvoid (above) runs with
// null sinks; this is the identical solve with both sinks recording.
void BM_SolveReachAvoidInstrumented(benchmark::State& state) {
  const int area = static_cast<int>(state.range(0));
  const assay::RoutingJob rj = corner_job(area, 4);
  const DoubleMatrix force(area, area, 0.6);
  const Rect chip{0, 0, area - 1, area - 1};
  const core::RoutingMdp mdp =
      core::build_routing_mdp(rj, force, chip, bench_rules());
  obs::ctx().reset();
  obs::ctx().tracer().enable();
  obs::ctx().metrics().enable();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_reach_avoid(mdp));
    obs::ctx().tracer().clear();
  }
  state.SetLabel(std::to_string(mdp.state_count()) +
                 " states, sinks recording");
  obs::ctx().reset();
}
BENCHMARK(BM_SolveReachAvoidInstrumented)->Arg(20);

void BM_HealthSensing(benchmark::State& state) {
  Rng rng(1);
  BiochipConfig config;
  config.width = 60;
  config.height = 30;
  Biochip chip(config, rng);
  // Worn cells exercise the quantization path.
  for (int y = 0; y < 30; ++y)
    for (int x = 0; x < 60; ++x)
      chip.mc(x, y).actuate_n(static_cast<std::uint64_t>(x * y));
  for (auto _ : state) {
    benchmark::DoNotOptimize(chip.health_matrix());
  }
  state.SetLabel("60x30 scan");
}
BENCHMARK(BM_HealthSensing);

}  // namespace

BENCHMARK_MAIN();
