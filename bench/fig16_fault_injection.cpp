// Reproduces Fig. 16: mean number of cycles (±SD) required to repeatedly
// execute each bioassay on one chip under fault injection. A trial runs
// until five successful executions or until the cumulative cycle budget is
// exhausted (abort). Faulty MCs suffer sudden failure at a random actuation
// count; they are placed uniformly or as 2×2 clusters.
//
// Expected shape: the adaptive router needs fewer cycles with a smaller SD;
// the gap widens under clustered faults (clusters act as roadblocks); the
// baseline can fail as early as the first execution, while the adaptive
// router's mean executions-to-first-failure exceeds the five-success target.

// Pass `--jobs N` to run the trials of each configuration on N worker
// threads (0 = all hardware threads); trial seeds are index-derived and the
// per-trial results are folded in trial order, so the table and CSV are
// byte-identical at any job count.
// `--checkpoint PATH` persists completed trials; `--resume` reloads them.

#include <iostream>
#include <sstream>
#include <vector>

#include "assay/benchmarks.hpp"
#include "sim/experiments.hpp"
#include "util/checkpoint.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace meda;

namespace {

constexpr int kTrials = 8;
constexpr std::uint64_t kBudget = 2000;  // cumulative trial budget (cycles)

struct Summary {
  double mean_cycles = 0.0;
  double sd_cycles = 0.0;
  double mean_successes = 0.0;
  int aborted = 0;
  double mean_first_failure = 0.0;  // executions before the first failure
};

std::string encode_trial(const sim::TrialResult& r) {
  std::ostringstream os;
  os << r.total_cycles << ' ' << r.successes << ' ' << r.executions << ' '
     << r.first_failure_execution << ' ' << (r.aborted ? 1 : 0);
  return os.str();
}

bool decode_trial(const std::string& payload, sim::TrialResult& out) {
  std::istringstream is(payload);
  sim::TrialResult r;
  int aborted = 0;
  if (!(is >> r.total_cycles >> r.successes >> r.executions >>
        r.first_failure_execution >> aborted))
    return false;
  r.aborted = aborted != 0;
  out = r;
  return true;
}

Summary run_config(const assay::MoList& assay_list, bool adaptive,
                   FaultMode mode, int jobs,
                   util::SlotCheckpoint& checkpoint, std::size_t slot_base) {
  std::vector<sim::TrialResult> results(kTrials);
  util::parallel_for(jobs, results.size(), [&](std::size_t t) {
    const std::size_t slot = slot_base + t;
    if (const std::string* payload = checkpoint.restored(slot))
      if (decode_trial(*payload, results[t])) return;
    sim::TrialConfig config;
    config.chip.chip.width = assay::kChipWidth;
    config.chip.chip.height = assay::kChipHeight;
    // Mid-life chips (heterogeneous pre-wear) with accelerated degradation;
    // the injected faults trip within the first executions of the trial.
    config.chip.chip.degradation = DegradationRange{0.5, 0.9, 60.0, 150.0};
    config.chip.pre_wear_max = 150;
    config.chip.faults.mode = mode;
    config.chip.faults.faulty_fraction = 0.08;
    config.chip.faults.fail_at_lo = 15;
    config.chip.faults.fail_at_hi = 120;
    config.scheduler.adaptive = adaptive;
    config.scheduler.max_cycles = 1200;
    config.successes_target = 5;
    config.kmax_total = kBudget;
    config.seed = 7000 + static_cast<std::uint64_t>(t);  // same chips/faults
    results[t] = sim::run_trial(assay_list, config);
    if (checkpoint.active()) checkpoint.record(slot, encode_trial(results[t]));
  });
  stats::RunningStats cycles, successes, first_failure;
  int aborted = 0;
  for (const sim::TrialResult& r : results) {
    cycles.add(static_cast<double>(r.total_cycles));
    successes.add(static_cast<double>(r.successes));
    first_failure.add(r.first_failure_execution == 0
                          ? static_cast<double>(r.executions)
                          : static_cast<double>(r.first_failure_execution - 1));
    if (r.aborted) ++aborted;
  }
  return Summary{cycles.mean(), cycles.stddev(), successes.mean(), aborted,
                 first_failure.mean()};
}

}  // namespace

int main(int argc, char** argv) {
  const int jobs = util::parse_jobs_flag(argc, argv);
  std::cout << "=== Fig. 16 — trial cycles under fault injection ===\n("
            << kTrials << " trials; 5 successes or " << kBudget
            << "-cycle abort)\n\n";
  CsvWriter csv("fig16_fault_injection.csv",
                {"fault_mode", "assay", "router", "mean_cycles", "sd_cycles",
                 "mean_successes", "aborted_trials",
                 "mean_execs_before_first_failure"});
  // Global slot grid: (mode, assay, router) configurations in iteration
  // order, kTrials slots each.
  const std::vector<assay::MoList> suite = assay::evaluation_suite();
  util::SlotCheckpoint checkpoint;
  const std::string checkpoint_path =
      util::flag_value(argc, argv, "--checkpoint", "");
  if (!checkpoint_path.empty()) {
    util::DigestBuilder digest;
    digest.mix(std::string("fig16-v1"));
    digest.mix(kTrials).mix(static_cast<std::uint64_t>(kBudget)).mix(7000);
    for (const assay::MoList& assay_list : suite) digest.mix(assay_list.name);
    checkpoint.open(checkpoint_path, digest.value(),
                    util::has_flag(argc, argv, "--resume"),
                    2 * suite.size() * 2 * kTrials);
  }
  std::size_t slot_base = 0;
  for (const FaultMode mode :
       {FaultMode::kUniform, FaultMode::kClustered}) {
    std::cout << (mode == FaultMode::kUniform ? "Uniform" : "Clustered")
              << " fault injection:\n";
    Table table({"bioassay", "router", "mean cycles", "SD", "mean successes",
                 "aborted trials", "mean execs before 1st failure"});
    for (const assay::MoList& assay_list : suite) {
      for (const bool adaptive : {false, true}) {
        const Summary s = run_config(assay_list, adaptive, mode, jobs,
                                     checkpoint, slot_base);
        slot_base += kTrials;
        table.add_row({assay_list.name, adaptive ? "adaptive" : "baseline",
                       fmt_double(s.mean_cycles, 1),
                       fmt_double(s.sd_cycles, 1),
                       fmt_double(s.mean_successes, 1),
                       std::to_string(s.aborted),
                       fmt_double(s.mean_first_failure, 1)});
        csv.write_row({mode == FaultMode::kUniform ? "uniform" : "clustered",
                       assay_list.name, adaptive ? "adaptive" : "baseline",
                       fmt_double(s.mean_cycles, 2),
                       fmt_double(s.sd_cycles, 2),
                       fmt_double(s.mean_successes, 2),
                       std::to_string(s.aborted),
                       fmt_double(s.mean_first_failure, 2)});
      }
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  checkpoint.flush();
  std::cout << "Expected: adaptive rows complete the five executions in\n"
               "fewer cycles with smaller SD; baseline aborts dominate under\n"
               "clustered faults.\n";
  return 0;
}
