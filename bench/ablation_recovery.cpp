// Ablation: proactive adaptation vs reactive error recovery (Section II-C).
// The paper's framework *proactively* avoids degraded MCs using the
// real-time health sensor; the prior art reacts to errors after they occur
// (retrial-based recovery). We compare three controllers on identical
// mid-life faulty chips:
//   - baseline            : shortest path, no recovery;
//   - reactive recovery   : shortest path, re-route from sensed health only
//                           after a droplet has been stuck for T cycles;
//   - proactive (proposed): synthesize from sensed health, re-synthesize on
//                           every observed health change.

#include <iostream>

#include "assay/benchmarks.hpp"
#include "sim/experiments.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace meda;

namespace {

constexpr int kChips = 5;
constexpr int kRuns = 8;

struct Outcome {
  double success_rate = 0.0;
  double mean_cycles = 0.0;
  double mean_reroutes = 0.0;
};

Outcome run_config(bool adaptive, int reactive_stuck) {
  int successes = 0, total = 0;
  stats::RunningStats cycles, reroutes;
  for (int chip_idx = 0; chip_idx < kChips; ++chip_idx) {
    sim::RepeatedRunsConfig config;
    config.chip.chip.width = assay::kChipWidth;
    config.chip.chip.height = assay::kChipHeight;
    config.chip.chip.degradation = DegradationRange{0.5, 0.9, 60.0, 150.0};
    config.chip.pre_wear_max = 150;
    config.chip.faults.mode = FaultMode::kClustered;
    config.chip.faults.faulty_fraction = 0.08;
    config.chip.faults.fail_at_lo = 15;
    config.chip.faults.fail_at_hi = 120;
    config.scheduler.adaptive = adaptive;
    config.scheduler.reactive_recovery_stuck_cycles = reactive_stuck;
    config.scheduler.max_cycles = 1500;
    config.runs = kRuns;
    config.seed = 1100 + static_cast<std::uint64_t>(chip_idx);
    for (const sim::RunRecord& r :
         sim::run_repeated(assay::cep(), config)) {
      ++total;
      reroutes.add(r.stats.resyntheses);
      if (r.success) {
        ++successes;
        cycles.add(static_cast<double>(r.cycles));
      }
    }
  }
  return Outcome{static_cast<double>(successes) / total,
                 cycles.count() ? cycles.mean() : 0.0, reroutes.mean()};
}

}  // namespace

int main() {
  std::cout << "=== Ablation — proactive adaptation vs reactive recovery "
               "===\n(CEP, "
            << kChips << " mid-life faulty chips x " << kRuns << " runs)\n\n";
  Table table({"controller", "success rate", "mean cycles (successful)",
               "mean re-routes/run"});
  const struct {
    const char* name;
    bool adaptive;
    int reactive;
  } rows[] = {
      {"baseline (no recovery)", false, 0},
      {"reactive recovery, T = 12 stuck cycles", false, 12},
      {"reactive recovery, T = 4 stuck cycles", false, 4},
      {"proactive adaptive (proposed)", true, 0},
  };
  for (const auto& row : rows) {
    const Outcome o = run_config(row.adaptive, row.reactive);
    table.add_row({row.name, fmt_prob(o.success_rate),
                   fmt_double(o.mean_cycles, 1),
                   fmt_double(o.mean_reroutes, 1)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: reactive recovery rescues most stuck droplets\n"
               "but pays for every stall (wasted cycles + extra actuations\n"
               "that deepen the degradation); the proactive router avoids\n"
               "the stalls altogether — the paper's core argument.\n";
  return 0;
}
