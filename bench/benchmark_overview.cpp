// Reference table for the benchmark suite (Section VII-A): structural
// summary of every built-in bioassay plus its measured execution length on
// a pristine chip — the baseline the degradation experiments degrade from.

#include <iostream>

#include "assay/registry.hpp"
#include "assay/summary.hpp"
#include "core/scheduler.hpp"
#include "sim/simulated_chip.hpp"
#include "util/table.hpp"

using namespace meda;

int main() {
  const Rect chip_bounds{0, 0, assay::kChipWidth - 1,
                         assay::kChipHeight - 1};
  std::cout << "=== Benchmark overview — structure and fresh-chip cycles "
               "===\n\n";
  Table table({"benchmark", "ops", "dis/mix/dlt/spt/mag/out/dsc",
               "droplets", "critical path", "hold cycles",
               "transport (cells)", "cycles (fresh chip)"});
  for (const assay::BenchmarkInfo& info : assay::list_benchmarks()) {
    const assay::MoList list = assay::make_benchmark(info.key);
    const assay::AssaySummary s = assay::summarize(list, chip_bounds);

    sim::SimulatedChipConfig config;
    config.chip.width = assay::kChipWidth;
    config.chip.height = assay::kChipHeight;
    sim::SimulatedChip chip(config, Rng(42));
    core::Scheduler scheduler(core::SchedulerConfig{});
    const core::ExecutionStats stats = scheduler.run(chip, list);

    const std::string mix_counts =
        std::to_string(s.count(assay::MoType::kDispense)) + "/" +
        std::to_string(s.count(assay::MoType::kMix)) + "/" +
        std::to_string(s.count(assay::MoType::kDilute)) + "/" +
        std::to_string(s.count(assay::MoType::kSplit)) + "/" +
        std::to_string(s.count(assay::MoType::kMagSense)) + "/" +
        std::to_string(s.count(assay::MoType::kOutput)) + "/" +
        std::to_string(s.count(assay::MoType::kDiscard));
    table.add_row({list.name, std::to_string(s.operations), mix_counts,
                   std::to_string(s.droplets_created),
                   std::to_string(s.critical_path),
                   std::to_string(s.total_hold_cycles),
                   fmt_double(s.transport_distance, 0),
                   stats.success ? std::to_string(stats.cycles)
                                 : "FAILED"});
  }
  table.print(std::cout);
  std::cout << "\nThe paper's relative lengths hold: NuIP and Serial\n"
               "Dilution carry the largest transport+processing loads;\n"
               "COVID-RAT and Master-Mix the smallest.\n";
  return 0;
}
