// Reproduces Fig. 5: electrode degradation on the PCB DMFB prototype.
// (a) 1 s actuations — capacitance grows linearly with the actuation count
//     (charge trapping);
// (b) 5 s actuations — the growth is much faster (residual charge).
// The "measurement" path follows the paper: each point is obtained by timing
// the V_C(t) = Vpp(1 − e^{−t/RC}) charging curve through the 1 MΩ series
// resistor and inverting for C.

#include <iostream>

#include "pcb/pcb.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace meda;

namespace {

void run_mode(const char* title, double actuation_seconds, Rng& rng) {
  std::cout << title << "\n";
  Table table({"electrode", "C0 (pF)", "C @ 200", "C @ 400", "C @ 600",
               "fit slope (pF/actuation)", "R^2"});
  const pcb::MeasurementRig rig;
  for (const pcb::ElectrodeSpec& spec :
       {pcb::electrode_2mm(), pcb::electrode_3mm(), pcb::electrode_4mm()}) {
    const pcb::DegradationSeries series = pcb::run_degradation_experiment(
        spec, rig, actuation_seconds, 600, 50, rng);
    const stats::FitResult fit =
        stats::linear_fit(series.actuations, series.capacitance_pf);
    auto c_at = [&](double n) {
      for (std::size_t i = 0; i < series.actuations.size(); ++i)
        if (series.actuations[i] == n) return series.capacitance_pf[i];
      return 0.0;
    };
    table.add_row({fmt_double(spec.size_mm, 0) + "x" +
                       fmt_double(spec.size_mm, 0) + " mm",
                   fmt_double(spec.c0_pf, 1), fmt_double(c_at(200), 3),
                   fmt_double(c_at(400), 3), fmt_double(c_at(600), 3),
                   fmt_double(fit.slope, 5), fmt_double(fit.r2, 4)});
  }
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  std::cout << "=== Fig. 5 — PCB electrode degradation ===\n\n";
  Rng rng(20210201);
  run_mode("(a) charge trapping — 1 s actuations:", 1.0, rng);
  run_mode("(b) residual charge — 5 s actuations:", 5.0, rng);
  std::cout
      << "Expected shape: capacitance grows linearly with the number of\n"
         "actuations in both modes; the 5 s (residual-charge) slope is ~4x\n"
         "the 1 s (charge-trapping) slope, and larger electrodes trap\n"
         "charge faster.\n";
  return 0;
}
