// Reproduces Fig. 6: measured relative EWOD force F̄(n) versus the number of
// actuations, with the fitted exponential model F̄(n) = τ^(2n/c). The paper
// reports (τ2, c2) = (0.556, 822.7), (τ3, c3) = (0.543, 805.5),
// (τ4, c4) = (0.530, 788.4) with adjusted R² > 0.94 for all three electrode
// sizes. Only k = 2·ln(τ)/c is identifiable from one series; following
// DESIGN.md, c is pinned to the charge-trapping constant of the Fig. 5
// experiment for the same electrode and τ is fitted.

#include <iostream>

#include "pcb/pcb.hpp"
#include "util/table.hpp"

using namespace meda;

int main() {
  std::cout << "=== Fig. 6 — relative EWOD force vs actuation count ===\n\n";
  Rng rng(20210202);

  struct Config {
    const char* name;
    DegradationParams truth;  // paper's fitted values as ground truth
  };
  const Config configs[] = {
      {"2x2 mm", {0.556, 822.7}},
      {"3x3 mm", {0.543, 805.5}},
      {"4x4 mm", {0.530, 788.4}},
  };

  Table fits({"electrode", "tau (paper)", "c (paper)", "tau (fitted)",
              "c (pinned)", "k (1/actuation)", "adj R^2"});
  std::cout << "Measured force series (with 3% measurement noise):\n";
  Table series_table({"n", "2x2 mm", "3x3 mm", "4x4 mm"});
  std::vector<pcb::ForceSeries> all_series;
  for (const Config& cfg : configs) {
    all_series.push_back(
        pcb::measure_relative_force(cfg.truth, 1500, 100, 0.03, rng));
  }
  for (std::size_t i = 0; i < all_series[0].actuations.size(); ++i) {
    series_table.add_row(
        {fmt_int(static_cast<long long>(all_series[0].actuations[i])),
         fmt_double(all_series[0].relative_force[i], 4),
         fmt_double(all_series[1].relative_force[i], 4),
         fmt_double(all_series[2].relative_force[i], 4)});
  }
  series_table.print(std::cout);
  std::cout << '\n';

  bool all_good = true;
  for (std::size_t i = 0; i < all_series.size(); ++i) {
    const Config& cfg = configs[i];
    const pcb::ForceFit fit =
        pcb::fit_force_model(all_series[i], cfg.truth.c);
    fits.add_row({cfg.name, fmt_double(cfg.truth.tau, 3),
                  fmt_double(cfg.truth.c, 1), fmt_double(fit.tau, 3),
                  fmt_double(fit.c, 1), fmt_sci(fit.k, 3),
                  fmt_double(fit.r2_adjusted, 4)});
    all_good = all_good && fit.r2_adjusted > 0.94;
  }
  fits.print(std::cout);
  std::cout << "\nPaper's acceptance criterion (adj R^2 > 0.94 for all "
               "curves): "
            << (all_good ? "met" : "NOT met") << '\n';
  return all_good ? 0 : 1;
}
