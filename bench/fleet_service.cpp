// Fleet service bench: N simulated chips (tenants) share one in-process
// SynthesisService and drive it through open- and closed-loop load, tracing
// the robustness story end to end:
//
//   - admission control under overload: at the top arrival rates the
//     bounded queue and per-tenant in-flight caps shed submissions, and the
//     shed tenants degrade to the local bounded-A* fallback router with
//     exponential backoff (the assay slows down; nothing blocks or fails);
//   - per-tenant deadline budgets: each tenant's solver-sweep ledger is
//     refilled on a fixed window, so one tenant's storm cannot starve its
//     siblings;
//   - cross-tenant request coalescing: tenants are *paired* on the same
//     substrate and job-stream seeds, so identical jobs arrive together and
//     one solve fans out to both waiters;
//   - crash recovery: with --journal every completed solve is appended to
//     an AppendJournal; a run killed mid-campaign (SIGKILL) and relaunched
//     with --resume replays the journaled solves and produces a CSV that is
//     byte-identical to a run that never crashed.
//
// Everything is driven by the service's logical tick clock — no wall time
// anywhere in the outputs — so fleet_service.csv is byte-identical for a
// fixed seed at any --jobs count (the wave width is pinned independently of
// the worker count).
//
// Flags:
//   --jobs N        worker threads inside the service (0 = all hardware
//                   threads); outputs are byte-identical at any N.
//   --tenants N     simulated chips (default 8, rounded up to even).
//   --rounds N      submission rounds per load point (default 40).
//   --smoke         small grid for CI (8 tenants, 12 rounds, 2 open loads).
//   --journal PATH  append completed solves to a crash journal at PATH.
//   --resume        replay a compatible journal at PATH before solving.
//   --metrics       also write fleet_service_metrics.json (svc.* counters).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "core/fallback_router.hpp"
#include "obs/obs.hpp"
#include "svc/service.hpp"
#include "util/checkpoint.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/journal.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace meda;

namespace {

constexpr int kChipSize = 20;
constexpr int kHealthBits = 2;
constexpr std::uint64_t kDeadlineTicks = 16;
constexpr std::uint64_t kRoundTicks = 4;     // idle ticks between rounds
constexpr int kRefillEveryRounds = 8;        // tenant budget window
constexpr std::size_t kMaxBackoffRounds = 8;

const Rect kChip{0, 0, kChipSize - 1, kChipSize - 1};

/// Knuth's Poisson sampler over the deterministic Rng stream.
int poisson(Rng& rng, double lambda) {
  const double limit = std::exp(-lambda);
  double p = 1.0;
  int k = 0;
  do {
    ++k;
    p *= rng.uniform(0.0, 1.0);
  } while (p > limit);
  return k - 1;
}

/// One tenant pair's substrate: full health with a seeded sprinkle of dead
/// and weak cells. Both tenants of a pair see the same matrix (and digest),
/// which is what makes their identical jobs coalesce service-side.
IntMatrix pair_health(std::uint64_t pair_seed) {
  Rng rng(pair_seed);
  IntMatrix health(kChipSize, kChipSize, 3);
  const int dead = rng.uniform_int(2, 5);
  for (int i = 0; i < dead; ++i)
    health(rng.uniform_int(0, kChipSize - 1),
           rng.uniform_int(0, kChipSize - 1)) = 0;
  const int weak = rng.uniform_int(4, 10);
  for (int i = 0; i < weak; ++i)
    health(rng.uniform_int(0, kChipSize - 1),
           rng.uniform_int(0, kChipSize - 1)) = 1;
  return health;
}

std::uint64_t health_digest(const IntMatrix& health, std::uint64_t pair) {
  util::DigestBuilder d;
  d.mix(pair);
  for (const int v : health.data()) d.mix(v);
  return d.value();
}

/// Draws one routing job from the pair stream: a 3×3 droplet crossing a
/// decent chunk of the chip (goals too close to the start synthesize
/// trivially and would under-exercise the budget ledger).
assay::RoutingJob draw_job(Rng& rng) {
  assay::RoutingJob rj;
  for (;;) {
    const int sx = rng.uniform_int(0, kChipSize - 4);
    const int sy = rng.uniform_int(0, kChipSize - 4);
    const int gx = rng.uniform_int(0, kChipSize - 4);
    const int gy = rng.uniform_int(0, kChipSize - 4);
    if (std::abs(sx - gx) + std::abs(sy - gy) < 8) continue;
    rj.start = Rect::from_size(sx, sy, 3, 3);
    rj.goal = Rect::from_size(gx, gy, 3, 3);
    rj.hazard = kChip;
    return rj;
  }
}

struct LoadPoint {
  std::string mode;    // "open" | "closed"
  double lambda = 0.0; // arrivals per tenant per round (open mode)
};

struct CellResult {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t library_hits = 0;
  std::uint64_t solves = 0;  // live solves + journal replays (see below)
  std::uint64_t fallback_routes = 0;
  std::vector<std::uint64_t> waits;  // served jobs' queue waits, in ticks
  std::uint64_t final_clock = 0;

  std::uint64_t wait_percentile(double p) const {
    if (waits.empty()) return 0;
    std::vector<std::uint64_t> sorted = waits;
    std::sort(sorted.begin(), sorted.end());
    const double rank = p * static_cast<double>(sorted.size() - 1);
    return sorted[static_cast<std::size_t>(rank + 0.5)];
  }
};

struct BenchConfig {
  int jobs = 1;
  int tenants = 8;
  int rounds = 40;
  std::uint64_t seed0 = 7100;
  util::AppendJournal* journal = nullptr;
};

/// Runs one load point on a fresh service generation (the journal, if any,
/// spans every generation — that is the crash-recovery contract).
CellResult run_load_point(const BenchConfig& bench, const LoadPoint& load) {
  svc::ServiceConfig config;
  config.synthesis.rules.enable_morphing = false;
  config.synthesis.deadline_sweeps = 800;
  config.chip_bounds = kChip;
  config.health_bits = kHealthBits;
  config.queue_capacity = 12;       // small on purpose: saturation sheds
  config.tenant_inflight_cap = 2;
  config.tenant_budget_sweeps = 4000;
  config.jobs = bench.jobs;
  config.max_wave = 4;  // pinned: wave structure must not follow --jobs
  config.cost_state_divisor = 256;
  config.journal = bench.journal;
  svc::SynthesisService service(config);

  struct TenantState {
    int id = -1;
    Rng arrivals{0};
    Rng jobs{0};
    IntMatrix health;
    std::uint64_t digest = 0;
    std::size_t backoff_rounds = 0;   // rounds left to sit out
    std::size_t consecutive_sheds = 0;
  };
  std::vector<TenantState> tenants(static_cast<std::size_t>(bench.tenants));
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    TenantState& ts = tenants[t];
    ts.id = service.register_tenant("t" + std::to_string(t));
    // Paired streams: tenants 2k and 2k+1 share substrate and job/arrival
    // sequences, so their submissions coalesce whenever both are admitted.
    const std::uint64_t pair = bench.seed0 + t / 2;
    ts.arrivals = Rng(pair * 2654435761u + 1);
    ts.jobs = Rng(pair * 2654435761u + 2);
    ts.health = pair_health(pair);
    ts.digest = health_digest(ts.health, pair);
  }

  CellResult cell;
  core::FallbackConfig fallback_config;
  fallback_config.rules = config.synthesis.rules;
  const auto degrade_locally = [&](TenantState& ts,
                                   const assay::RoutingJob& rj) {
    // Overload degradation: the tenant routes this job itself with the
    // bounded-A* fallback and backs off the shared service exponentially.
    ++cell.fallback_routes;
    (void)core::fallback_route(rj, ts.health, kChip, fallback_config);
    ts.consecutive_sheds = std::min(ts.consecutive_sheds + 1,
                                    static_cast<std::size_t>(16));
    ts.backoff_rounds = std::min(std::size_t{1} << (ts.consecutive_sheds - 1),
                                 kMaxBackoffRounds);
  };

  struct OpenJob {
    svc::SubmitTicket ticket;
    assay::RoutingJob rj;
  };
  std::vector<OpenJob> open_tickets;
  for (int round = 0; round < bench.rounds; ++round) {
    if (round > 0 && round % kRefillEveryRounds == 0)
      service.refill_budgets();
    open_tickets.clear();
    for (TenantState& ts : tenants) {
      // Draw from the pair streams unconditionally (arrival count first,
      // then each job) so paired tenants stay in lockstep even when one of
      // them is backing off or shed.
      const int arriving = load.mode == "closed"
                               ? static_cast<int>(config.tenant_inflight_cap)
                               : poisson(ts.arrivals, load.lambda);
      for (int j = 0; j < arriving; ++j) {
        const assay::RoutingJob rj = draw_job(ts.jobs);
        ++cell.submitted;
        if (ts.backoff_rounds > 0) {
          // Still in backoff: don't even knock; route locally.
          degrade_locally(ts, rj);
          continue;
        }
        const svc::SubmitTicket ticket = service.submit(
            ts.id, rj, ts.health, kDeadlineTicks, ts.digest);
        if (!ticket.accepted) {
          ++cell.shed;
          degrade_locally(ts, rj);
          continue;
        }
        ++cell.accepted;
        ts.consecutive_sheds = 0;
        open_tickets.push_back({ticket, rj});
      }
      if (ts.backoff_rounds > 0) --ts.backoff_rounds;
    }
    service.drain();
    for (const OpenJob& open : open_tickets) {
      std::optional<svc::JobOutcome> out = service.take(open.ticket.seq);
      if (!out.has_value()) continue;  // unreachable: drain completes all
      if (out->cancelled) {
        // Its deadline lapsed in the queue: the service never spent a
        // solve on it; the tenant re-routes the same job locally, exactly
        // like a shed.
        ++cell.cancelled;
        degrade_locally(tenants[static_cast<std::size_t>(out->tenant)],
                        open.rj);
        continue;
      }
      cell.waits.push_back(out->wait_ticks);
      // Journal-replayed solves count as solves: whether a result came from
      // a live solve or from the crash journal is provenance, and the CSV
      // must be byte-identical across a crash/resume boundary.
      if (out->coalesced)
        ++cell.coalesced;
      else if (out->library_hit)
        ++cell.library_hits;
      else
        ++cell.solves;
    }
    service.advance(kRoundTicks);
  }
  cell.final_clock = service.now();
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = util::has_flag(argc, argv, "--smoke");
  BenchConfig bench;
  bench.jobs = util::parse_jobs_flag(argc, argv);
  bench.tenants = std::max(
      2, std::stoi(util::flag_value(argc, argv, "--tenants", "8")));
  bench.tenants += bench.tenants % 2;  // pairs
  bench.rounds = std::max(
      1, std::stoi(util::flag_value(argc, argv, "--rounds",
                                    smoke ? "12" : "40")));

  std::vector<LoadPoint> loads;
  loads.push_back({"open", 0.5});
  if (!smoke) loads.push_back({"open", 1.5});
  loads.push_back({"open", 3.0});
  loads.push_back({"closed", 0.0});

  if (util::has_flag(argc, argv, "--metrics")) obs::ctx().metrics().enable();

  // One journal spans every service generation in the campaign, keyed on
  // the campaign shape (never on --jobs: a crashed --jobs 4 run may resume
  // under --jobs 1 and must still replay byte-identically).
  util::AppendJournal journal;
  const std::string journal_path =
      util::flag_value(argc, argv, "--journal", "");
  if (!journal_path.empty()) {
    util::DigestBuilder digest;
    digest.mix(std::string("fleet_service v1"));
    digest.mix(bench.tenants);
    digest.mix(bench.rounds);
    digest.mix(static_cast<std::uint64_t>(bench.seed0));
    for (const LoadPoint& load : loads) {
      digest.mix(load.mode);
      digest.mix(load.lambda);
    }
    journal.open(journal_path, digest.value(),
                 util::has_flag(argc, argv, "--resume"));
    bench.journal = &journal;
  }

  std::cout << "=== Fleet service — " << bench.tenants
            << " tenants sharing one synthesis service ===\n(queue 12, "
               "in-flight cap 2/tenant, budget 4000 sweeps per "
            << kRefillEveryRounds << "-round window, " << bench.rounds
            << " rounds per load point"
            << (journal.enabled() ? ", crash journal on" : "") << ")\n\n";

  Table table({"mode", "load", "submitted", "shed%", "cancelled",
               "coalesced", "lib hits", "solves", "fallbacks", "p50 wait",
               "p99 wait"});
  CsvWriter csv("fleet_service.csv",
                {"mode", "load", "submitted", "accepted", "shed", "shed_rate",
                 "cancelled", "coalesced", "library_hits", "solves",
                 "fallback_routes", "p50_wait_ticks", "p90_wait_ticks",
                 "p99_wait_ticks", "final_clock_ticks"});
  for (const LoadPoint& load : loads) {
    const CellResult cell = run_load_point(bench, load);
    const double shed_rate =
        cell.submitted == 0
            ? 0.0
            : static_cast<double>(cell.shed) /
                  static_cast<double>(cell.submitted);
    const std::string load_label =
        load.mode == "closed" ? "cap" : fmt_double(load.lambda, 1);
    table.add_row({load.mode, load_label, std::to_string(cell.submitted),
                   fmt_double(100.0 * shed_rate, 1),
                   std::to_string(cell.cancelled),
                   std::to_string(cell.coalesced),
                   std::to_string(cell.library_hits),
                   std::to_string(cell.solves),
                   std::to_string(cell.fallback_routes),
                   std::to_string(cell.wait_percentile(0.5)),
                   std::to_string(cell.wait_percentile(0.99))});
    csv.write_row({load.mode, load_label, std::to_string(cell.submitted),
                 std::to_string(cell.accepted), std::to_string(cell.shed),
                 fmt_double(shed_rate, 4), std::to_string(cell.cancelled),
                 std::to_string(cell.coalesced),
                 std::to_string(cell.library_hits),
                 std::to_string(cell.solves),
                 std::to_string(cell.fallback_routes),
                 std::to_string(cell.wait_percentile(0.5)),
                 std::to_string(cell.wait_percentile(0.9)),
                 std::to_string(cell.wait_percentile(0.99)),
                 std::to_string(cell.final_clock)});
  }
  table.print(std::cout);
  std::cout << "\n(Series also written to fleet_service.csv.)\n";
  if (util::has_flag(argc, argv, "--metrics")) {
    obs::ctx().metrics().write_snapshot("fleet_service_metrics.json");
    std::cout << "(svc.* counters written to fleet_service_metrics.json.)\n";
  }
  return 0;
}
