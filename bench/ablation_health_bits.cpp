// Ablation: health-sensor resolution b (the paper's MC design provides
// b = 2; Section IV-B notes the model is valid for any b). Higher b lets
// the synthesizer distinguish mildly and severely worn MCs earlier, at the
// cost of one extra DFF per bit in hardware.

#include <iostream>

#include "assay/benchmarks.hpp"
#include "sim/experiments.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace meda;

namespace {

constexpr int kChips = 5;
constexpr int kRuns = 12;

struct Outcome {
  double success_rate = 0.0;
  double mean_cycles = 0.0;
  double mean_resyntheses = 0.0;
};

Outcome run_with(int health_bits) {
  int successes = 0, total = 0;
  stats::RunningStats cycles, resynth;
  for (int chip_idx = 0; chip_idx < kChips; ++chip_idx) {
    sim::RepeatedRunsConfig config;
    config.chip.chip.width = assay::kChipWidth;
    config.chip.chip.height = assay::kChipHeight;
    config.chip.chip.health_bits = health_bits;
    config.chip.chip.degradation = DegradationRange{0.5, 0.9, 60.0, 150.0};
    config.scheduler.adaptive = true;
    config.scheduler.max_cycles = 1200;
    config.runs = kRuns;
    config.seed = 500 + static_cast<std::uint64_t>(chip_idx);
    for (const sim::RunRecord& r :
         sim::run_repeated(assay::cep(), config)) {
      ++total;
      resynth.add(r.stats.resyntheses);
      if (r.success) {
        ++successes;
        cycles.add(static_cast<double>(r.cycles));
      }
    }
  }
  return Outcome{static_cast<double>(successes) / total,
                 cycles.count() > 0 ? cycles.mean() : 0.0, resynth.mean()};
}

}  // namespace

int main() {
  std::cout << "=== Ablation — health-sensor resolution b ===\n(CEP, "
            << kChips << " worn chips x " << kRuns << " runs)\n\n";
  Table table({"b (bits)", "health codes", "success rate",
               "mean cycles (successful)", "mean re-syntheses/run"});
  for (const int b : {1, 2, 3, 4}) {
    const Outcome o = run_with(b);
    table.add_row({std::to_string(b),
                   "0.." + std::to_string((1 << b) - 1),
                   fmt_prob(o.success_rate), fmt_double(o.mean_cycles, 1),
                   fmt_double(o.mean_resyntheses, 1)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: b = 1 only distinguishes dead-ish from alive-ish\n"
               "MCs and adapts late; b >= 2 (the proposed dual-DFF design)\n"
               "captures most of the benefit, with more re-syntheses (finer\n"
               "health changes are observable) at higher b.\n";
  return 0;
}
