// Extension experiment: how well does the synthesized model predict
// reality? The controller plans on the quantized b-bit health matrix H; the
// chip moves droplets according to the true degradation D. For every
// completed routing job the scheduler records (model-expected cycles,
// actual cycles); this bench aggregates the calibration across chip ages.
//
// Interpretation: expected/actual ≈ 1 means the 2-bit health sensor carries
// enough information to predict time-to-result; systematic drift is the
// cost of quantization (Section V-C's full- vs incomplete-information gap).

#include <iostream>

#include "assay/benchmarks.hpp"
#include "core/scheduler.hpp"
#include "sim/simulated_chip.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace meda;

namespace {

struct Calibration {
  stats::RunningStats ratio;   // actual / expected per route
  stats::RunningStats actual;  // actual cycles per route
  int routes = 0;
};

Calibration measure(std::uint64_t pre_wear, int health_bits) {
  Calibration cal;
  for (int seed = 0; seed < 4; ++seed) {
    sim::SimulatedChipConfig config;
    config.chip.width = assay::kChipWidth;
    config.chip.height = assay::kChipHeight;
    config.chip.health_bits = health_bits;
    config.chip.degradation = DegradationRange{0.5, 0.9, 60.0, 150.0};
    config.pre_wear_max = pre_wear;
    sim::SimulatedChip chip(config, Rng(1500 + static_cast<std::uint64_t>(seed)));
    core::SchedulerConfig sched;
    sched.max_cycles = 3000;
    core::Scheduler scheduler(sched);
    const core::ExecutionStats stats =
        scheduler.run(chip, assay::serial_dilution());
    if (!stats.success) continue;
    for (const core::RouteRecord& r : stats.routes) {
      if (r.expected_cycles <= 0.0) continue;  // trivial (start at goal)
      ++cal.routes;
      cal.ratio.add(static_cast<double>(r.actual_cycles) /
                    r.expected_cycles);
      cal.actual.add(static_cast<double>(r.actual_cycles));
    }
  }
  return cal;
}

}  // namespace

int main() {
  std::cout << "=== Extension — model calibration (expected vs actual "
               "route cycles) ===\n(Serial Dilution, 4 chips per row)\n\n";
  Table table({"chip age (pre-wear)", "b", "routes",
               "mean actual cycles", "actual/expected mean", "±95% CI"});
  for (const std::uint64_t wear : {0ull, 100ull, 200ull, 350ull}) {
    for (const int bits : {2, 4}) {
      Calibration cal = measure(wear, bits);
      if (cal.routes == 0) {
        table.add_row({std::to_string(wear), std::to_string(bits), "0",
                       "-", "-", "-"});
        continue;
      }
      table.add_row({std::to_string(wear), std::to_string(bits),
                     std::to_string(cal.routes),
                     fmt_double(cal.actual.mean(), 1),
                     fmt_double(cal.ratio.mean(), 3),
                     fmt_double(cal.ratio.ci95_halfwidth(), 3)});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected: the age-0 row is the scheduling-overhead floor\n"
               "(waiting on partners/ports inflates 'actual' slightly even\n"
               "with a perfect model). With age, b = 2 develops a clear\n"
               "optimistic bias on top of that floor (a code-3 cell may\n"
               "truly be at D = 0.75); b = 4 stays near the floor —\n"
               "quantifying what the extra sensing bits buy.\n";
  return 0;
}
