// Reproduces Fig. 15: probability of successful bioassay completion (PoS)
// within a cycle budget k_max, for the six benchmark bioassays, comparing the
// proposed adaptive synthesis framework against the degradation-unaware
// shortest-path baseline. Chips are reused: each chip executes the bioassay
// repeatedly and keeps degrading (the CMOS-reuse scenario of Section VII-B).
//
// Expected shape: adaptive >= baseline everywhere; the gap is largest for
// long bioassays at intermediate budgets (the paper quotes Serial Dilution at
// k_max = 300: 0.8 adaptive vs 0.1 baseline on their testbed).

// Pass `--jobs N` to run the chip instances of each configuration on N
// worker threads (0 = all hardware threads); every chip's seed is derived
// from its index alone and the per-chip results are concatenated in chip
// order, so the tables and CSV are byte-identical at any job count.
// `--checkpoint PATH` persists completed chips; `--resume` reloads them.

#include <iostream>
#include <sstream>
#include <vector>

#include "assay/benchmarks.hpp"
#include "sim/experiments.hpp"
#include "util/checkpoint.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace meda;

namespace {

constexpr int kChips = 6;          // chip instances per configuration
constexpr int kRunsPerChip = 14;   // executions per chip (reuse)

// PoS only consumes (success, cycles) per run, so that is all a slot
// persists (see probability_of_success).
std::string encode_chip(const std::vector<sim::RunRecord>& runs) {
  std::ostringstream os;
  os << runs.size();
  for (const sim::RunRecord& run : runs)
    os << ' ' << (run.success ? 1 : 0) << ' ' << run.cycles;
  return os.str();
}

bool decode_chip(const std::string& payload,
                 std::vector<sim::RunRecord>& out) {
  std::istringstream is(payload);
  std::size_t n = 0;
  if (!(is >> n) || n > 1u << 20) return false;
  std::vector<sim::RunRecord> runs(n);
  for (sim::RunRecord& run : runs) {
    int success = 0;
    if (!(is >> success >> run.cycles)) return false;
    run.success = success != 0;
    run.stats.success = run.success;
    run.stats.cycles = run.cycles;
  }
  out = std::move(runs);
  return true;
}

std::vector<sim::RunRecord> collect_runs(const assay::MoList& assay_list,
                                         bool adaptive, int jobs,
                                         util::SlotCheckpoint& checkpoint,
                                         std::size_t slot_base) {
  std::vector<std::vector<sim::RunRecord>> per_chip(kChips);
  util::parallel_for(jobs, per_chip.size(), [&](std::size_t chip_idx) {
    const std::size_t slot = slot_base + chip_idx;
    if (const std::string* payload = checkpoint.restored(slot))
      if (decode_chip(*payload, per_chip[chip_idx])) return;
    sim::RepeatedRunsConfig config;
    config.chip.chip.width = assay::kChipWidth;
    config.chip.chip.height = assay::kChipHeight;
    // Accelerated degradation constants (c scaled down ~3x from the paper's
    // U(200, 500)) so chip wear-out falls inside 14 executions; see
    // EXPERIMENTS.md for the scaling argument.
    config.chip.chip.degradation = DegradationRange{0.5, 0.9, 60.0, 150.0};
    config.scheduler.adaptive = adaptive;
    config.scheduler.max_cycles = 1200;
    config.runs = kRunsPerChip;
    config.seed = 1000 + static_cast<std::uint64_t>(chip_idx);  // same chips
    per_chip[chip_idx] = sim::run_repeated(assay_list, config);
    if (checkpoint.active())
      checkpoint.record(slot, encode_chip(per_chip[chip_idx]));
  });
  std::vector<sim::RunRecord> all;
  for (const auto& runs : per_chip)
    all.insert(all.end(), runs.begin(), runs.end());
  return all;
}

}  // namespace

int main(int argc, char** argv) {
  const int jobs = util::parse_jobs_flag(argc, argv);
  std::cout << "=== Fig. 15 — probability of successful completion vs k_max "
               "===\n("
            << kChips << " chips x " << kRunsPerChip
            << " executions per configuration)\n\n";

  const std::vector<std::uint64_t> kmax_grid = {100, 140, 180, 220, 260,
                                                300, 400, 600, 1000};

  // Machine-readable copy for external plotting.
  CsvWriter csv("fig15_pos.csv", {"assay", "router", "kmax", "pos"});

  // Global slot grid: (assay, router) configurations in iteration order,
  // kChips slots each. The digest ties the file to this grid shape and the
  // seed base.
  const std::vector<assay::MoList> suite = assay::evaluation_suite();
  util::SlotCheckpoint checkpoint;
  const std::string checkpoint_path =
      util::flag_value(argc, argv, "--checkpoint", "");
  if (!checkpoint_path.empty()) {
    util::DigestBuilder digest;
    digest.mix(std::string("fig15-v1"));
    digest.mix(kChips).mix(kRunsPerChip).mix(1000);
    for (const assay::MoList& assay_list : suite) digest.mix(assay_list.name);
    checkpoint.open(checkpoint_path, digest.value(),
                    util::has_flag(argc, argv, "--resume"),
                    suite.size() * 2 * kChips);
  }
  std::size_t slot_base = 0;
  for (const assay::MoList& assay_list : suite) {
    std::cout << assay_list.name << ":\n";
    std::vector<std::string> headers = {"router"};
    for (const std::uint64_t k : kmax_grid)
      headers.push_back("k<=" + std::to_string(k));
    Table table(std::move(headers));
    for (const bool adaptive : {false, true}) {
      const auto runs =
          collect_runs(assay_list, adaptive, jobs, checkpoint, slot_base);
      slot_base += kChips;
      std::vector<std::string> row = {adaptive ? "adaptive" : "baseline"};
      for (const std::uint64_t k : kmax_grid) {
        const double pos = sim::probability_of_success(runs, k);
        row.push_back(fmt_prob(pos));
        csv.write_row({assay_list.name, adaptive ? "adaptive" : "baseline",
                       std::to_string(k), fmt_prob(pos)});
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  checkpoint.flush();
  std::cout << "Expected: the adaptive row dominates the baseline row; the\n"
               "largest gaps appear for the longer bioassays (Serial\n"
               "Dilution, NuIP) at intermediate budgets.\n"
               "(Series also written to fig15_pos.csv.)\n";
  return 0;
}
