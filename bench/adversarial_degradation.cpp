// Extension experiment: adversarial resolutions of the SMG's degradation
// player (Section V-C frames degradation as a non-deterministic player
// precisely to support such analyses). An adversary with a fixed per-cycle
// damage budget attacks the chip while a bioassay executes:
//   - random adversary    — damage uncorrelated with the workload;
//   - frontier adversary  — damage targeted at the cells around droplets
//                           (the worst case for any router).
// We compare the baseline and adaptive routers under increasing budgets.

#include <iostream>
#include <memory>

#include "assay/benchmarks.hpp"
#include "core/scheduler.hpp"
#include "sim/simulated_chip.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace meda;

namespace {

constexpr int kRepeats = 6;

struct Outcome {
  double success_rate = 0.0;
  double mean_cycles = 0.0;
};

std::unique_ptr<sim::DegradationAdversary> make_adversary(
    const std::string& kind, int cells) {
  // 400 actuations' wear ≈ a near-kill per hit (D drops to 0.03-0.2 for the
  // simulated c range).
  const sim::AdversaryBudget budget{cells, 400};
  if (kind == "random")
    return std::make_unique<sim::RandomAdversary>(budget);
  if (kind == "frontier")
    return std::make_unique<sim::FrontierAdversary>(budget);
  return nullptr;
}

Outcome run_config(bool adaptive, const std::string& kind, int cells) {
  int successes = 0;
  stats::RunningStats cycles;
  for (int rep = 0; rep < kRepeats; ++rep) {
    sim::SimulatedChipConfig config;
    config.chip.width = assay::kChipWidth;
    config.chip.height = assay::kChipHeight;
    config.chip.degradation = DegradationRange{0.5, 0.9, 80.0, 200.0};
    sim::SimulatedChip chip(config, Rng(600 + static_cast<std::uint64_t>(rep)));
    chip.set_adversary(make_adversary(kind, cells));
    core::SchedulerConfig sched;
    sched.adaptive = adaptive;
    sched.max_cycles = 1500;
    core::Scheduler scheduler(sched);
    const core::ExecutionStats stats = scheduler.run(chip, assay::cep());
    if (stats.success) {
      ++successes;
      cycles.add(static_cast<double>(stats.cycles));
    }
  }
  return Outcome{static_cast<double>(successes) / kRepeats,
                 cycles.count() ? cycles.mean() : 0.0};
}

}  // namespace

int main() {
  std::cout << "=== Extension — adversarial degradation player (SMG player "
               "2) ===\n(CEP, "
            << kRepeats << " chips per configuration; damage = 400 "
               "actuations' wear per hit)\n\n";
  Table table({"adversary", "budget (cells/cycle)", "router", "success rate",
               "mean cycles (successful)"});
  for (const std::string kind : {"none", "random", "frontier"}) {
    for (const int cells : kind == "none" ? std::vector<int>{0}
                                          : std::vector<int>{1, 2, 4}) {
      for (const bool adaptive : {false, true}) {
        const Outcome o = run_config(adaptive, kind, cells);
        table.add_row({kind, std::to_string(cells),
                       adaptive ? "adaptive" : "baseline",
                       fmt_prob(o.success_rate),
                       fmt_double(o.mean_cycles, 1)});
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected: the frontier-targeting adversary is strictly\n"
               "harder than the random one at equal budget. At moderate\n"
               "budgets the adaptive router observes every hit through the\n"
               "2-bit health sensor and reroutes (it survives where the\n"
               "baseline's fixed corridor collapses); a sufficiently large\n"
               "budget lets the degradation player wall in any droplet —\n"
               "the game's value genuinely depends on the adversary's power.\n";
  return 0;
}
