// Extension experiment: sensitivity of the Fig. 15/16 comparison to the
// fault density. Sweeps the faulty-MC fraction and reports the success
// rate (PoS at a fixed cycle budget) for both routers, with 95% confidence
// intervals over chips. Shows where the baseline collapses and how far the
// adaptive router pushes the usable-fault-density frontier.

#include <iostream>

#include "assay/benchmarks.hpp"
#include "sim/experiments.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace meda;

namespace {

constexpr int kChips = 6;
constexpr int kRuns = 5;
constexpr std::uint64_t kBudget = 400;  // PoS cycle budget per execution

struct Outcome {
  double pos = 0.0;       ///< mean over chips of per-chip PoS
  double ci95 = 0.0;      ///< 95% CI half-width over chips
};

Outcome run_config(bool adaptive, double fault_fraction) {
  stats::RunningStats per_chip_pos;
  for (int chip_idx = 0; chip_idx < kChips; ++chip_idx) {
    sim::RepeatedRunsConfig config;
    config.chip.chip.width = assay::kChipWidth;
    config.chip.chip.height = assay::kChipHeight;
    config.chip.chip.degradation = DegradationRange{0.5, 0.9, 80.0, 200.0};
    config.chip.pre_wear_max = 120;
    config.chip.faults.mode = FaultMode::kClustered;
    config.chip.faults.faulty_fraction = fault_fraction;
    config.chip.faults.fail_at_lo = 15;
    config.chip.faults.fail_at_hi = 120;
    config.scheduler.adaptive = adaptive;
    config.scheduler.max_cycles = 1000;
    config.runs = kRuns;
    config.seed = 1300 + static_cast<std::uint64_t>(chip_idx);
    const auto runs = sim::run_repeated(assay::cep(), config);
    per_chip_pos.add(sim::probability_of_success(runs, kBudget));
  }
  return Outcome{per_chip_pos.mean(), per_chip_pos.ci95_halfwidth()};
}

}  // namespace

int main() {
  std::cout << "=== Extension — PoS vs fault density ===\n(CEP, " << kChips
            << " chips x " << kRuns << " runs, PoS budget " << kBudget
            << " cycles, clustered faults)\n\n";
  Table table({"faulty fraction", "baseline PoS (±95% CI)",
               "adaptive PoS (±95% CI)"});
  for (const double fraction : {0.0, 0.04, 0.08, 0.12, 0.16, 0.22, 0.30}) {
    const Outcome baseline = run_config(false, fraction);
    const Outcome adaptive = run_config(true, fraction);
    table.add_row({fmt_double(fraction, 2),
                   fmt_prob(baseline.pos) + " ± " + fmt_prob(baseline.ci95),
                   fmt_prob(adaptive.pos) + " ± " + fmt_prob(adaptive.ci95)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: both routers start near PoS 1 on fault-free\n"
               "chips; the baseline collapses first as clusters densify,\n"
               "while the adaptive router sustains high PoS several points\n"
               "of fault density further before the chip becomes\n"
               "geometrically unroutable for everyone.\n";
  return 0;
}
