// Extension experiment: wear-aware synthesis (proactive wear-leveling).
// The paper's Rmin reward counts cycles only; routes therefore reuse the
// same optimal corridor until it degrades enough for the health code to
// drop. The wear-aware extension charges each action
//   cost = 1 + λ·mean(1 − F̄) over its actuated pattern,
// so the synthesizer starts spreading traffic over healthy cells *before*
// the corridor wears out. We sweep λ on the chip-reuse scenario and report
// the resulting lifetime.

#include <iostream>

#include "assay/benchmarks.hpp"
#include "sim/analysis.hpp"
#include "sim/experiments.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace meda;

namespace {

constexpr int kChips = 5;
constexpr int kRuns = 16;

struct Outcome {
  double mean_successful_runs = 0.0;  ///< lifetime out of kRuns
  double mean_first3_cycles = 0.0;    ///< early-life cost of the penalty
  double mean_gini = 0.0;             ///< wear concentration (lower = leveled)
};

Outcome run_with(double lambda) {
  stats::RunningStats lifetime, early, gini;
  for (int chip_idx = 0; chip_idx < kChips; ++chip_idx) {
    sim::SimulatedChipConfig chip_config;
    chip_config.chip.width = assay::kChipWidth;
    chip_config.chip.height = assay::kChipHeight;
    chip_config.chip.degradation = DegradationRange{0.5, 0.9, 60.0, 150.0};
    sim::SimulatedChip chip(
        chip_config, Rng(900 + static_cast<std::uint64_t>(chip_idx)));
    core::SchedulerConfig sched;
    sched.adaptive = true;
    sched.synthesis.wear_penalty_lambda = lambda;
    sched.max_cycles = 1200;
    core::StrategyLibrary library;
    core::Scheduler scheduler(sched, &library);
    int successes = 0;
    double first3 = 0.0;
    for (int run = 0; run < kRuns; ++run) {
      chip.clear_droplets();
      const core::ExecutionStats stats =
          scheduler.run(chip, assay::serial_dilution());
      successes += stats.success;
      if (run < 3) first3 += static_cast<double>(stats.cycles) / 3.0;
    }
    lifetime.add(successes);
    early.add(first3);
    gini.add(
        sim::wear_distribution(chip.substrate().actuation_matrix()).gini);
  }
  return Outcome{lifetime.mean(), early.mean(), gini.mean()};
}

}  // namespace

int main() {
  std::cout << "=== Extension — wear-aware synthesis (λ sweep) ===\n(Serial "
               "Dilution, "
            << kChips << " chips x " << kRuns << " executions)\n\n";
  Table table({"lambda", "mean successful runs (of 16)",
               "mean cycles, runs 1-3", "wear Gini (lower = leveled)"});
  for (const double lambda : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    const Outcome o = run_with(lambda);
    table.add_row({fmt_double(lambda, 1),
                   fmt_double(o.mean_successful_runs, 1),
                   fmt_double(o.mean_first3_cycles, 1),
                   fmt_double(o.mean_gini, 3)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: moderate λ extends chip lifetime (routes start\n"
               "avoiding worn cells while they still work) at a small\n"
               "early-life cycle overhead; very large λ over-detours.\n";
  return 0;
}
