// Capstone experiment: the complete evaluation in one paired campaign —
// all six benchmark bioassays × three controllers (baseline, reactive
// recovery, the proposed adaptive framework) on identical populations of
// worn chips, with confidence intervals. Condenses the Fig. 15/16 story
// into a single table.

#include <iostream>

#include "assay/benchmarks.hpp"
#include "sim/campaign.hpp"

using namespace meda;

int main() {
  sim::CampaignConfig config;
  config.chip.chip.width = assay::kChipWidth;
  config.chip.chip.height = assay::kChipHeight;
  // Accelerated wear so chip end-of-life falls inside the campaign
  // (EXPERIMENTS.md discusses the scaling).
  config.chip.chip.degradation = DegradationRange{0.5, 0.9, 60.0, 150.0};
  config.chip.pre_wear_max = 100;
  config.chip.faults.mode = FaultMode::kClustered;
  config.chip.faults.faulty_fraction = 0.05;
  config.chip.faults.fail_at_lo = 20;
  config.chip.faults.fail_at_hi = 200;
  config.chips = 4;
  config.runs_per_chip = 8;
  config.seed0 = 2100;

  std::vector<sim::RouterConfig> routers(3);
  routers[0].name = "baseline";
  routers[0].scheduler.adaptive = false;
  routers[1].name = "reactive recovery (T=8)";
  routers[1].scheduler.adaptive = false;
  routers[1].scheduler.reactive_recovery_stuck_cycles = 8;
  routers[2].name = "adaptive (proposed)";
  for (sim::RouterConfig& r : routers) r.scheduler.max_cycles = 1200;

  std::cout << "=== Evaluation summary — all bioassays x all controllers "
               "===\n("
            << config.chips << " paired chips x " << config.runs_per_chip
            << " executions per cell; worn chips with 5% clustered "
               "faults)\n\n";
  const auto cells =
      sim::run_campaign(assay::evaluation_suite(), routers, config);
  sim::print_campaign(std::cout, cells);
  std::cout << "\nExpected ordering per bioassay: adaptive >= reactive >=\n"
               "baseline on success rate, with adaptive also fastest among\n"
               "the reliable controllers — the paper's Fig. 15/16 story in\n"
               "one paired comparison.\n";
  return 0;
}
