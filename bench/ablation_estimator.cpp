// Ablation: how the health-code → force estimator (DESIGN.md §5) affects
// adaptive routing on worn chips. The paper substitutes H for D directly;
// kScaled maps the top 2-bit code to full health and the bottom code to a
// dead MC. The bucket-based estimators (midpoint/lower/upper) mis-calibrate
// healthy cells (H=3 → force < 1), which makes the synthesizer over-avoid
// mildly worn cells and pay real detour cycles.

#include <iostream>

#include "assay/benchmarks.hpp"
#include "sim/experiments.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace meda;

namespace {

constexpr int kChips = 5;
constexpr int kRuns = 10;

struct Outcome {
  double success_rate = 0.0;
  double mean_cycles = 0.0;  // over successful runs
};

Outcome run_with(HealthEstimator estimator) {
  int successes = 0;
  int total = 0;
  stats::RunningStats cycles;
  for (int chip_idx = 0; chip_idx < kChips; ++chip_idx) {
    sim::RepeatedRunsConfig config;
    config.chip.chip.width = assay::kChipWidth;
    config.chip.chip.height = assay::kChipHeight;
    config.chip.chip.degradation = DegradationRange{0.5, 0.9, 60.0, 150.0};
    config.scheduler.adaptive = true;
    config.scheduler.synthesis.estimator = estimator;
    config.scheduler.max_cycles = 1200;
    config.runs = kRuns;
    config.seed = 300 + static_cast<std::uint64_t>(chip_idx);
    for (const sim::RunRecord& r :
         sim::run_repeated(assay::serial_dilution(), config)) {
      ++total;
      if (r.success) {
        ++successes;
        cycles.add(static_cast<double>(r.cycles));
      }
    }
  }
  return Outcome{static_cast<double>(successes) / total,
                 cycles.count() > 0 ? cycles.mean() : 0.0};
}

}  // namespace

int main() {
  std::cout << "=== Ablation — health-code force estimator ===\n(Serial "
               "Dilution, "
            << kChips << " worn chips x " << kRuns << " runs)\n\n";
  Table table({"estimator", "D-hat per code {0,1,2,3}", "success rate",
               "mean cycles (successful)"});
  const struct {
    const char* name;
    HealthEstimator estimator;
  } rows[] = {
      {"scaled  H/(2^b-1)  [default]", HealthEstimator::kScaled},
      {"midpoint (H+0.5)/2^b", HealthEstimator::kMidpoint},
      {"lower    H/2^b", HealthEstimator::kLower},
      {"upper    (H+1)/2^b", HealthEstimator::kUpper},
  };
  for (const auto& row : rows) {
    std::string codes;
    for (int h = 0; h <= 3; ++h) {
      codes += fmt_double(estimate_degradation(h, 2, row.estimator), 2);
      if (h < 3) codes += " ";
    }
    const Outcome o = run_with(row.estimator);
    table.add_row({row.name, codes, fmt_prob(o.success_rate),
                   fmt_double(o.mean_cycles, 1)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: the scaled estimator dominates — it synthesizes\n"
               "true shortest paths on healthy regions and hard-avoids dead\n"
               "cells; bucket estimators under-rate healthy MCs and detour\n"
               "unnecessarily.\n";
  return 0;
}
