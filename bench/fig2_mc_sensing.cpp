// Reproduces Fig. 2: transient simulation of the proposed dual-DFF
// microelectrode cell. The paper's HSPICE result: with the added DFF's clock
// edge asserted 5 ns after the original DFF's, the 2-bit sensing result
// separates healthy ("11"), partially degraded (DFFs disagree) and completely
// degraded ("00") microelectrodes. Our substitute is an ideal-switch RC
// transient with the Table I capacitances (see DESIGN.md).

#include <iostream>

#include "mcell/mcell.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace meda;

int main() {
  const mcell::CircuitParams params;

  std::cout << "=== Fig. 2 — microelectrode health sensing transient ===\n\n";

  // Table I sanity: a 50×50 um^2 electrode in silicone oil across a 20 um
  // gap gives the paper's healthy capacitance of 2.375 fF.
  const double c0 =
      mcell::parallel_plate_capacitance(50e-6 * 50e-6, 19e-12, 20e-6);
  std::cout << "Parallel-plate C for Table I parameters: " << fmt_sci(c0, 3)
            << " F (paper: 2.375e-15 F)\n\n";

  Table table({"MC class", "C (fF)", "Vth crossing (ns)",
               "V @ original clk", "V @ added clk", "code", "classified"});
  struct Row {
    mcell::HealthClass cls;
    const char* name;
    double r;
    double c;
  };
  const Row rows[] = {
      {mcell::HealthClass::kHealthy, "healthy", params.r_healthy,
       params.c_healthy},
      {mcell::HealthClass::kPartial, "partially degraded", params.r_partial,
       params.c_partial},
      {mcell::HealthClass::kComplete, "completely degraded",
       params.r_complete, params.c_complete},
  };
  const char* code_names[] = {"00", "01", "10", "11"};
  for (const Row& row : rows) {
    const mcell::Transient trace =
        mcell::simulate_discharge(row.r, row.c, params);
    const int code = mcell::sense_code(trace, params);
    const char* cls = "?";
    switch (mcell::classify(code)) {
      case mcell::HealthClass::kHealthy: cls = "healthy"; break;
      case mcell::HealthClass::kPartial: cls = "partial"; break;
      case mcell::HealthClass::kComplete: cls = "complete"; break;
    }
    table.add_row({row.name, fmt_double(row.c * 1e15, 3),
                   fmt_double(mcell::threshold_crossing_ns(trace, params.vth),
                              2),
                   fmt_double(trace.at(params.clk_original_ns), 3),
                   fmt_double(trace.at(params.clk_original_ns +
                                       params.clk_skew_ns),
                              3),
                   code_names[code], cls});
  }
  table.print(std::cout);

  const mcell::SkewWindow window = mcell::distinguishing_skew_window(params);
  std::cout << "\nDFF clock skews distinguishing partial from healthy: ("
            << fmt_double(window.lo_ns, 2) << " ns, "
            << fmt_double(window.hi_ns, 2) << " ns)\n"
            << "Paper's design point of 5 ns lies "
            << (window.contains(params.clk_skew_ns) ? "inside" : "OUTSIDE")
            << " this window.\n";

  // Voltage waveform samples (the Fig. 2 curves).
  std::cout << "\nDischarge waveforms (V):\n";
  Table wave({"t (ns)", "healthy", "partial", "complete"});
  const mcell::Transient h =
      mcell::simulate_discharge(params.r_healthy, params.c_healthy, params);
  const mcell::Transient p =
      mcell::simulate_discharge(params.r_partial, params.c_partial, params);
  const mcell::Transient c =
      mcell::simulate_discharge(params.r_complete, params.c_complete, params);
  for (double t = 0.0; t <= 60.0; t += 5.0) {
    wave.add_row({fmt_double(t, 0), fmt_double(h.at(t), 3),
                  fmt_double(p.at(t), 3), fmt_double(c.at(t), 3)});
  }
  wave.print(std::cout);

  // Design-margin extension: misclassification rates under clock jitter
  // and capacitance variation (10,000 Monte-Carlo sensing operations per
  // cell of the table).
  std::cout << "\nSensing robustness (misclassification rate, 10k samples):"
            << "\n";
  Table margin({"noise", "healthy", "partial", "complete"});
  Rng rng(20210301);
  const struct {
    const char* name;
    mcell::NoiseModel noise;
  } noise_rows[] = {
      {"none", {0.0, 0.0}},
      {"jitter 0.5 ns", {0.0, 0.5}},
      {"jitter 1.0 ns", {0.0, 1.0}},
      {"jitter 2.0 ns", {0.0, 2.0}},
      {"C +/-1%", {0.01, 0.0}},
      {"C +/-1% + jitter 1 ns", {0.01, 1.0}},
  };
  for (const auto& row : noise_rows) {
    std::vector<std::string> cells = {row.name};
    for (const mcell::HealthClass cls :
         {mcell::HealthClass::kHealthy, mcell::HealthClass::kPartial,
          mcell::HealthClass::kComplete}) {
      cells.push_back(fmt_prob(
          mcell::classification_errors(cls, params, row.noise, 10000, rng)
              .error_rate));
    }
    margin.add_row(std::move(cells));
  }
  margin.print(std::cout);
  std::cout << "\nThe partial class (smallest timing margin) degrades\n"
               "first; sub-nanosecond jitter keeps all classes reliable,\n"
               "supporting the paper's GHz-divider clocking argument.\n";
  return 0;
}
