// Chaos campaign: success-vs-sensor-noise curves (Fig. 16-style) under the
// composed adversaries of the robustness subsystem — a lying scan chain
// (transient bit flips + stuck DFFs + dropped frames), injected substrate
// faults with heterogeneous pre-wear, and an explicit degradation player.
//
// Two routers run on identical chips at every noise level:
//   - adaptive : the paper's proactive router acting on raw scan frames;
//   - robust   : the same router behind the health filter, with the
//                recovery ladder armed (watchdog → re-sense → bounded
//                retries/backoff → quarantine → per-job abort);
//   - robust+nmr : the robust router plus N-modular redundancy — every
//                dispense feeding a mix launches 2 racing replicas through
//                region-disjoint corridors (k = 1 of N vote/merge, replica
//                failover ahead of the abort rung). Buys success rate at
//                the cost of extra droplet traffic and synthesis calls,
//                both reported in the same CSV.
//
// Expected shape: both routers match on a clean channel; as noise grows the
// raw-scan router chases phantom health changes (re-synthesis storms,
// infeasible plans from phantom-dead cells) while the robust router's curve
// degrades gracefully.

// Flags:
//   --jobs N           spread the (cell, chip) grid over N worker threads
//                      (0 = all hardware threads); table and CSV are
//                      byte-identical at any job count.
//   --full             add a NuIP assay row next to CEP (slower).
//   --smoke            tiny grid (1 chip x 1 run, 2 levels) for CI.
//   --metrics          also write chaos_campaign_metrics.csv (per-cell
//                      roll-up, one name-sorted column per metric).
//   --checkpoint PATH  persist completed (cell, chip) slots to PATH.
//   --resume           reload compatible completed slots from PATH.

#include <iostream>

#include "assay/benchmarks.hpp"
#include "sim/campaign.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace meda;

int main(int argc, char** argv) {
  const bool full = util::has_flag(argc, argv, "--full");
  const bool smoke = util::has_flag(argc, argv, "--smoke");
  sim::ChaosCampaignConfig config;
  config.jobs = util::parse_jobs_flag(argc, argv);
  config.checkpoint.path = util::flag_value(argc, argv, "--checkpoint", "");
  config.checkpoint.resume = util::has_flag(argc, argv, "--resume");
  config.chip.chip.width = assay::kChipWidth;
  config.chip.chip.height = assay::kChipHeight;
  // End-of-life chips: fast degradation, heavy pre-wear, a dense clustered
  // fault population that keeps failing during the campaign. Harsh enough
  // that the curves collapse at the top of the noise axis (a full
  // Fig. 16-style success curve, not just its flat beginning).
  config.chip.chip.degradation = DegradationRange{0.5, 0.9, 40.0, 100.0};
  config.chip.pre_wear_max = 250;
  config.chip.faults.mode = FaultMode::kClustered;
  config.chip.faults.faulty_fraction = 0.08;
  config.chip.faults.fail_at_lo = 10;
  config.chip.faults.fail_at_hi = 100;
  config.chips = smoke ? 1 : 3;
  config.runs_per_chip = smoke ? 1 : 4;
  config.seed0 = 4200;

  // The noise axis now reaches deep into the failure regime: at the top
  // levels 5% of the scan chain's DFFs are stuck and a fifth of all health
  // frames never arrive, so the controller flies mostly blind.
  for (const double p : smoke ? std::vector<double>{0.0, 0.05}
                              : std::vector<double>{0.0, 0.01, 0.02, 0.05,
                                                    0.1}) {
    sim::ChaosLevel level;
    level.name = "p=" + fmt_double(p, 3);
    level.sensor.bit_flip_p = p;
    level.sensor.stuck_fraction = p >= 0.05 ? 0.05 : (p > 0.0 ? 0.01 : 0.0);
    level.sensor.frame_drop_p = p >= 0.05 ? 0.2 : (p > 0.0 ? 0.02 : 0.0);
    config.levels.push_back(level);
  }
  // Grid-shape flags feed the checkpoint digest via the salt so a smoke
  // checkpoint can never be resumed into a full campaign (or vice versa).
  config.checkpoint.salt =
      (full ? 1ull : 0ull) | (smoke ? 2ull : 0ull);

  // Longer assays than the smoke-test default: on a collapsing chip the
  // extra routing distance is exactly what exposes the late-life failures.
  sim::RouterConfig adaptive;
  adaptive.name = "adaptive";
  adaptive.scheduler.adaptive = true;
  adaptive.scheduler.max_cycles = 2500;

  sim::RouterConfig robust = adaptive;
  robust.name = "robust";
  robust.scheduler.filter.enabled = true;
  robust.scheduler.recovery.enabled = true;
  // End-of-life cells succeed with low probability rather than failing
  // outright, so droplets crawl. The progress-rate watchdog (EWMA of
  // Manhattan progress per cycle, on by default) gives them that patience
  // adaptively — no hand-tuned stuck_cycles override needed.
  robust.scheduler.recovery.quarantine_after_watchdogs = 3;

  sim::RouterConfig nmr = robust;
  nmr.name = "robust+nmr";
  nmr.scheduler.replicate_critical_dispenses = 2;

  std::cout << "=== Chaos campaign — success vs sensor noise ===\n("
            << (full ? "CEP + NuIP" : "CEP") << ", " << config.chips
            << " end-of-life faulty chips x " << config.runs_per_chip
            << " runs; stuck DFFs + frame drops at every p > 0,\n"
               " 5% stuck / 20% dropped frames at the harshest levels)\n\n";
  std::vector<assay::MoList> assays{assay::cep()};
  if (full) assays.push_back(assay::nuip());
  const std::vector<sim::ChaosCell> cells =
      sim::run_chaos_campaign(assays, {adaptive, robust, nmr}, config);
  sim::print_chaos_campaign(std::cout, cells);
  sim::write_chaos_csv("chaos_campaign.csv", cells);
  std::cout << "\n(Series also written to chaos_campaign.csv.)\n";
  if (util::has_flag(argc, argv, "--metrics")) {
    sim::write_chaos_metrics_csv("chaos_campaign_metrics.csv", cells);
    std::cout << "(Per-cell metrics written to chaos_campaign_metrics.csv.)\n";
  }
  std::cout << "Expected: the routers tie on a clean channel; the robust\n"
               "router leads through the mid-noise band (the filter absorbs\n"
               "phantom health changes the raw router chases), robust+nmr\n"
               "sits above it (a replicated critical dispense survives one\n"
               "dead corridor) at the price of extra droplet cycles and\n"
               "synthesis calls, and every curve collapses at the harshest\n"
               "level — with the chip this degraded, flying 80%-blind\n"
               "leaves no router a good plan.\n";
  return 0;
}
