// Chaos campaign: success-vs-sensor-noise curves (Fig. 16-style) under the
// composed adversaries of the robustness subsystem — a lying scan chain
// (transient bit flips + stuck DFFs + dropped frames), injected substrate
// faults with heterogeneous pre-wear, and an explicit degradation player.
//
// Two routers run on identical chips at every noise level:
//   - adaptive : the paper's proactive router acting on raw scan frames;
//   - robust   : the same router behind the health filter, with the
//                recovery ladder armed (watchdog → re-sense → bounded
//                retries/backoff → quarantine → per-job abort).
//
// Expected shape: both routers match on a clean channel; as noise grows the
// raw-scan router chases phantom health changes (re-synthesis storms,
// infeasible plans from phantom-dead cells) while the robust router's curve
// degrades gracefully.

#include <iostream>

#include "assay/benchmarks.hpp"
#include "sim/campaign.hpp"
#include "util/table.hpp"

using namespace meda;

int main() {
  sim::ChaosCampaignConfig config;
  config.chip.chip.width = assay::kChipWidth;
  config.chip.chip.height = assay::kChipHeight;
  // Mid-life faulty chips, as in the Fig. 16 fault-injection study.
  config.chip.chip.degradation = DegradationRange{0.5, 0.9, 60.0, 150.0};
  config.chip.pre_wear_max = 150;
  config.chip.faults.mode = FaultMode::kClustered;
  config.chip.faults.faulty_fraction = 0.05;
  config.chip.faults.fail_at_lo = 15;
  config.chip.faults.fail_at_hi = 120;
  config.chips = 3;
  config.runs_per_chip = 4;
  config.seed0 = 4200;

  // The noise axis: transient flips sweep while 1% of the scan chain's DFFs
  // are stuck and 2% of frames drop (held constant across levels).
  for (const double p : {0.0, 0.005, 0.01, 0.02, 0.05}) {
    sim::ChaosLevel level;
    level.name = "p=" + fmt_double(p, 3);
    level.sensor.bit_flip_p = p;
    level.sensor.stuck_fraction = p > 0.0 ? 0.01 : 0.0;
    level.sensor.frame_drop_p = p > 0.0 ? 0.02 : 0.0;
    config.levels.push_back(level);
  }

  sim::RouterConfig adaptive;
  adaptive.name = "adaptive";
  adaptive.scheduler.adaptive = true;
  adaptive.scheduler.max_cycles = 1500;

  sim::RouterConfig robust = adaptive;
  robust.name = "robust";
  robust.scheduler.filter.enabled = true;
  robust.scheduler.recovery.enabled = true;

  std::cout << "=== Chaos campaign — success vs sensor noise ===\n(CEP, "
            << config.chips << " mid-life faulty chips x "
            << config.runs_per_chip
            << " runs; stuck DFFs + frame drops at every p > 0)\n\n";
  const std::vector<sim::ChaosCell> cells = sim::run_chaos_campaign(
      {assay::cep()}, {adaptive, robust}, config);
  sim::print_chaos_campaign(std::cout, cells);
  sim::write_chaos_csv("chaos_campaign.csv", cells);
  std::cout << "\n(Series also written to chaos_campaign.csv.)\n"
               "Expected: the routers tie at p=0; the robust router holds\n"
               "its success rate as p grows while the raw-scan router's\n"
               "curve collapses into re-synthesis storms and aborts.\n";
  return 0;
}
