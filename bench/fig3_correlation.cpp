// Reproduces Fig. 3: correlation coefficient between the Boolean actuation
// vectors of microelectrode pairs versus their Manhattan distance, for
// droplet sizes 3×3 / 4×4 / 5×5 / 6×6 and the ChIP, multiplex in-vitro and
// gene-expression bioassays on a 60×30 MEDA biochip.
//
// Expected shape (paper): ρ decreases with distance, increases with droplet
// size, and is insensitive to which bioassay is executed.

#include <array>
#include <iostream>

#include "assay/benchmarks.hpp"
#include "core/scheduler.hpp"
#include "sim/analysis.hpp"
#include "sim/simulated_chip.hpp"
#include "util/table.hpp"

using namespace meda;

int main() {
  std::cout << "=== Fig. 3 — actuation correlation vs Manhattan distance ===\n\n";
  const std::array<int, 4> droplet_areas = {9, 16, 25, 36};  // 3x3 .. 6x6
  const std::array<int, 5> distances = {1, 2, 3, 4, 5};

  Table table({"bioassay", "droplet", "d=1", "d=2", "d=3", "d=4", "d=5"});
  // Per (size, distance) accumulation across bioassays for the summary.
  std::array<std::array<double, 5>, 4> by_size{};

  Rng rng(31337);
  for (std::size_t size_idx = 0; size_idx < droplet_areas.size(); ++size_idx) {
    const int area = droplet_areas[size_idx];
    const assay::DropletSize size = assay::size_for_area(area);
    for (const assay::MoList& assay_list : assay::correlation_suite(area)) {
      sim::SimulatedChipConfig config;
      config.chip.width = assay::kChipWidth;
      config.chip.height = assay::kChipHeight;
      config.record_actuation_trace = true;
      sim::SimulatedChip chip(config, rng.fork(size_idx * 16 + area));

      core::SchedulerConfig sched;
      sched.adaptive = true;
      sched.max_cycles = 4000;
      core::Scheduler scheduler(sched);
      const core::ExecutionStats stats = scheduler.run(chip, assay_list);

      Rng pair_rng = rng.fork(0x9A115 + size_idx);
      const sim::CorrelationByDistance corr = sim::actuation_correlation(
          chip.actuation_trace(), distances, 3000, pair_rng);

      std::vector<std::string> row = {
          assay_list.name + (stats.success ? "" : " (aborted)"),
          std::to_string(size.w) + "x" + std::to_string(size.h)};
      for (std::size_t i = 0; i < corr.mean_rho.size(); ++i) {
        row.push_back(fmt_double(corr.mean_rho[i], 3));
        by_size[size_idx][i] += corr.mean_rho[i] / 3.0;
      }
      table.add_row(std::move(row));
    }
  }
  table.print(std::cout);

  std::cout << "\nMean over the three bioassays:\n";
  Table summary({"droplet", "d=1", "d=2", "d=3", "d=4", "d=5"});
  for (std::size_t size_idx = 0; size_idx < droplet_areas.size(); ++size_idx) {
    const assay::DropletSize size =
        assay::size_for_area(droplet_areas[size_idx]);
    std::vector<std::string> row = {std::to_string(size.w) + "x" +
                                    std::to_string(size.h)};
    for (double v : by_size[size_idx]) row.push_back(fmt_double(v, 3));
    summary.add_row(std::move(row));
  }
  summary.print(std::cout);
  std::cout << "\nExpected: rows decrease left to right (inverse correlation\n"
               "with distance) and increase top to bottom (larger droplets\n"
               "actuate larger clusters).\n";
  return 0;
}
