#pragma once

#include <cstdint>

#include "core/synthesis_backend.hpp"
#include "svc/service.hpp"

/// @file client.hpp
/// The tenant-side adapter: a core::SynthesisBackend that submits the
/// scheduler's synthesis requests to a shared SynthesisService, with the
/// retry/timeout/backoff discipline of the PR 4 recovery machinery:
///
///  - Each request is submitted with a logical-tick deadline. Accepted
///    jobs are drained and collected; a job cancelled in the queue (its
///    deadline passed while waiting) comes back as shed("expired").
///  - A refused submission (queue full, tenant cap) is retried up to
///    `max_attempts` times with exponential backoff on the service's
///    logical clock — `backoff_base << attempt`, capped — mirroring the
///    scheduler's own fallback-backoff ladder.
///  - Refusals that retrying cannot fix inside this window (expired
///    deadline, exhausted tenant budget) shed immediately.
///
/// A shed outcome makes the scheduler degrade to its local bounded-A*
/// fallback router (see core/synthesis_backend.hpp): the assay slows down
/// instead of blocking on an overloaded service.

namespace meda::svc {

/// Client-side retry/backoff policy (all logical ticks).
struct ClientConfig {
  /// Deadline budget each submission is given (must be >= 1; 0 would be
  /// born-expired and always shed).
  std::uint64_t deadline_ticks = 64;
  /// Total submission attempts before giving up and shedding.
  int max_attempts = 3;
  /// Backoff after a retryable refusal: base << attempt ticks, capped.
  std::uint64_t backoff_base_ticks = 1;
  std::uint64_t backoff_max_ticks = 64;
};

/// One tenant's handle on the shared service.
class SynthesisClient : public core::SynthesisBackend {
 public:
  /// @p service outlives the client; @p tenant from register_tenant().
  SynthesisClient(SynthesisService* service, int tenant,
                  ClientConfig config = {});

  core::BackendOutcome synthesize(const assay::RoutingJob& rj,
                                  const IntMatrix& health, int health_bits,
                                  std::uint64_t digest,
                                  core::DigestClass cls) override;

  int tenant() const { return tenant_; }

 private:
  SynthesisService* service_;
  int tenant_;
  ClientConfig config_;
};

}  // namespace meda::svc
