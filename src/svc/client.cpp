#include "svc/client.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace meda::svc {

SynthesisClient::SynthesisClient(SynthesisService* service, int tenant,
                                 ClientConfig config)
    : service_(service), tenant_(tenant), config_(config) {
  MEDA_REQUIRE(service != nullptr, "SynthesisClient needs a service");
  MEDA_REQUIRE(tenant >= 0 && tenant < service->tenant_count(),
               "SynthesisClient tenant id out of range");
  MEDA_REQUIRE(config_.max_attempts >= 1,
               "SynthesisClient needs at least one attempt");
}

core::BackendOutcome SynthesisClient::synthesize(const assay::RoutingJob& rj,
                                                 const IntMatrix& health,
                                                 int health_bits,
                                                 std::uint64_t digest,
                                                 core::DigestClass cls) {
  (void)health_bits;  // the service's shared Synthesizer fixes the bit depth
  core::BackendOutcome outcome;
  for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
    const SubmitTicket ticket =
        service_->submit(tenant_, rj, health, config_.deadline_ticks, digest,
                         cls);
    if (!ticket.accepted) {
      outcome.shed = true;
      outcome.shed_reason = to_string(ticket.reason);
      // Transient refusals (queue pressure) are worth backing off and
      // retrying; an expired deadline or a spent budget window will refuse
      // identically until time passes that a retry loop cannot provide.
      const bool retryable = ticket.reason == ShedReason::kQueueFull ||
                             ticket.reason == ShedReason::kTenantCap;
      if (!retryable || attempt + 1 == config_.max_attempts) return outcome;
      const std::uint64_t shift =
          std::min<std::uint64_t>(static_cast<std::uint64_t>(attempt), 63);
      const std::uint64_t backoff = std::min(
          config_.backoff_max_ticks, config_.backoff_base_ticks << shift);
      MEDA_OBS_COUNT("svc.client.retries", 1);
      service_->advance(backoff);
      continue;
    }
    service_->drain();
    std::optional<JobOutcome> job = service_->take(ticket.seq);
    MEDA_ASSERT(job.has_value(), "drained job must have an outcome");
    if (job->cancelled) {
      // Deadline elapsed while queued: treated exactly like an up-front
      // expiry — shed, no strategy, caller falls back locally.
      outcome.shed = true;
      outcome.shed_reason = to_string(ShedReason::kExpired);
      return outcome;
    }
    outcome.result = std::move(job->result);
    outcome.shed = false;
    outcome.shed_reason = "";
    return outcome;
  }
  return outcome;
}

}  // namespace meda::svc
