#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "assay/helper.hpp"
#include "core/library.hpp"
#include "core/synthesizer.hpp"
#include "util/deadline.hpp"
#include "util/journal.hpp"
#include "util/matrix.hpp"
#include "util/thread_pool.hpp"

/// @file service.hpp
/// The fault-tolerant multi-tenant synthesis service: one persistent
/// in-process provider that owns the shared StrategyLibrary and a
/// util::ThreadPool, fed by an async job queue that N simulated chips
/// (tenants) submit routing jobs to. This is the ROADMAP's
/// "routing-as-a-service" layer, built so that robustness — not raw
/// throughput — is the headline:
///
///  - **Admission control + overload shedding.** The queue is bounded and
///    each tenant has an in-flight cap; a submission that would exceed
///    either is rejected deterministically with a typed ShedReason instead
///    of blocking the assay. Shed clients degrade to the local bounded-A*
///    fallback router (see core/synthesis_backend.hpp).
///  - **Per-tenant deadline budgets.** Every tenant owns a
///    util::DeadlineLedger of solver-sweep checks per refill window; each
///    of its solves is armed from the ledger and settled with the checks it
///    actually consumed. One chip's pathological re-synthesis storm
///    exhausts only its own window — its siblings' budgets are untouched.
///    Dispatch is earliest-deadline-first, and jobs whose deadline passed
///    while queued are cancelled *before* dispatch (counted, never after
///    wasting a solve).
///  - **Request coalescing.** Jobs with identical (position rects, masked-
///    health digest) keys — across tenants — batch into one solve whose
///    result fans out to every waiter; only the earliest submitter (the
///    primary) pays ledger budget.
///  - **Crash recovery.** Completed solves are appended to a
///    util::AppendJournal (atomic header, flushed line per solve, torn-tail
///    drop); after a kill -9, a resumed service replays journaled solves
///    through the normal dispatch path, so the run's observable outputs are
///    byte-identical to a run that never crashed.
///
/// Determinism: the service runs on a logical tick clock, never wall time.
/// Solves execute in parallel into preallocated slots; every decision that
/// orders or charges anything (admission, cancellation, EDF sort, ledger
/// settle, library store, journal append, metric emission) happens in
/// serial pre/post passes in a fixed order — the PR 3 serial-reduction
/// discipline — so all outputs are byte-identical for a fixed submission
/// sequence at any `jobs` count.

namespace meda::svc {

/// Why a submission was refused (or a queued job cancelled).
enum class ShedReason : unsigned char {
  kNone,             ///< accepted
  kQueueFull,        ///< bounded queue at capacity
  kTenantCap,        ///< tenant's in-flight cap reached
  kBudgetExhausted,  ///< tenant's deadline-budget window is spent
  kExpired,          ///< deadline elapsed (at submission or while queued)
};

/// Stable label: "none" / "queue_full" / "tenant_cap" / "budget_exhausted"
/// / "expired".
const char* to_string(ShedReason reason);

/// Service configuration. All limits are deterministic logical quantities.
struct ServiceConfig {
  /// Synthesis settings shared by every tenant's solves. Use
  /// `synthesis.deadline_sweeps` (not wall-clock seconds) for reproducible
  /// runs: it doubles as the per-solve cap drawn from tenant ledgers.
  core::SynthesisConfig synthesis{};
  Rect chip_bounds{};  ///< chip the shared Synthesizer is built for
  int health_bits = 3;
  /// Bounded queue: submissions beyond this many queued jobs shed with
  /// kQueueFull. Must be >= 1.
  std::size_t queue_capacity = 64;
  /// Per-tenant in-flight (queued) cap; beyond it submissions shed with
  /// kTenantCap. 0 = no per-tenant cap.
  std::size_t tenant_inflight_cap = 8;
  /// Per-tenant deadline budget: solver-sweep checks per refill window
  /// (see util::DeadlineLedger). 0 = unlimited.
  std::uint64_t tenant_budget_sweeps = 0;
  /// Worker threads for the solve waves (the service's own ThreadPool).
  int jobs = 1;
  /// Shared library capacity (0 = unlimited).
  std::size_t library_capacity = 0;
  /// Logical ticks one solve costs: 1 + states / cost_state_divisor.
  /// Library hits cost 0 ticks. Drives queue-wait accounting and
  /// before-dispatch cancellation, deterministically.
  std::uint64_t cost_state_divisor = 512;
  /// Max coalesced groups dispatched per wave (0 = `jobs`).
  std::size_t max_wave = 0;
  /// Optional crash journal, externally owned (so one journal can span
  /// several service generations in a bench). nullptr = no journal.
  util::AppendJournal* journal = nullptr;
};

/// Admission verdict for one submission.
struct SubmitTicket {
  bool accepted = false;
  ShedReason reason = ShedReason::kNone;
  std::uint64_t seq = 0;  ///< job sequence number; valid only when accepted
};

/// Terminal outcome of one accepted job.
struct JobOutcome {
  std::uint64_t seq = 0;
  int tenant = -1;
  /// Deadline passed while queued: cancelled before dispatch, no solve was
  /// spent on it. `result` is the default (infeasible).
  bool cancelled = false;
  /// Served by a wave-mate's solve (same key, different submitter).
  bool coalesced = false;
  /// Served by the crash journal instead of a fresh solve.
  bool replayed = false;
  /// Served straight from the shared library.
  bool library_hit = false;
  /// Logical ticks between submission and the dispatching wave.
  std::uint64_t wait_ticks = 0;
  core::SynthesisResult result;
};

/// The persistent multi-tenant synthesis service. Not thread-safe itself:
/// one logical owner submits and drains; parallelism lives inside drain().
class SynthesisService {
 public:
  explicit SynthesisService(ServiceConfig config);

  /// Registers a tenant (chip) and returns its id. Names feed per-tenant
  /// metrics (`svc.wait.<name>`) and must be unique non-empty.
  int register_tenant(const std::string& name);
  int tenant_count() const { return static_cast<int>(tenants_.size()); }

  /// Submits a routing job for @p tenant. @p deadline_ticks is the job's
  /// logical-time budget from now (0 = already expired → kExpired).
  /// Admission checks, in deterministic order: expired deadline → tenant
  /// budget window exhausted → tenant in-flight cap → queue capacity.
  /// @p digest is the (salted) library-key digest over the job's masked
  /// health view; @p cls its stats family.
  SubmitTicket submit(int tenant, const assay::RoutingJob& rj,
                      const IntMatrix& health, std::uint64_t deadline_ticks,
                      std::uint64_t digest,
                      core::DigestClass cls = core::DigestClass::kPlain);

  /// Runs the queue to empty: waves of EDF-ordered coalesced groups, solved
  /// in parallel, settled serially. Returns the number of jobs that reached
  /// a terminal outcome (including cancellations); fetch each with take().
  std::size_t drain();

  /// Pops the terminal outcome for @p seq, if that job has completed.
  std::optional<JobOutcome> take(std::uint64_t seq);

  /// Logical clock (ticks). Advanced by solve costs during drain() and by
  /// advance() — e.g. a client backing off.
  std::uint64_t now() const { return clock_; }
  void advance(std::uint64_t ticks) { clock_ += ticks; }

  /// Starts a fresh budget window for every tenant.
  void refill_budgets();

  const util::DeadlineLedger& tenant_ledger(int tenant) const;
  std::size_t queue_depth() const { return queue_.size(); }

  /// The shared strategy library (concurrent-safe; see core/library.hpp).
  core::StrategyLibrary& library() { return library_; }
  const core::StrategyLibrary& library() const { return library_; }

  const ServiceConfig& config() const { return config_; }

 private:
  struct PendingJob {
    std::uint64_t seq = 0;
    int tenant = -1;
    assay::RoutingJob rj;
    IntMatrix health;
    std::uint64_t digest = 0;
    core::DigestClass cls = core::DigestClass::kPlain;
    std::uint64_t submit_tick = 0;
    std::uint64_t deadline_tick = 0;  ///< absolute; ~0 when unbounded
  };

  /// One coalesced dispatch group: queue members sharing a solve key.
  struct Group {
    std::vector<std::size_t> members;  ///< indexes into the wave snapshot
    std::uint64_t min_deadline = 0;
    std::uint64_t min_seq = 0;
  };

  void cancel_expired();
  void run_wave();
  std::string journal_key(const PendingJob& job,
                          std::uint64_t armed_sweeps) const;

  ServiceConfig config_;
  core::Synthesizer synthesizer_;
  core::StrategyLibrary library_;
  util::ThreadPool pool_;

  struct Tenant {
    std::string name;
    util::DeadlineLedger ledger;
    std::size_t queued = 0;
  };
  std::vector<Tenant> tenants_;

  std::deque<PendingJob> queue_;
  std::map<std::uint64_t, JobOutcome> completed_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t clock_ = 0;

  /// Journal replay index: key → journal record body (parsed lazily).
  std::map<std::string, std::string> replay_;
};

}  // namespace meda::svc
