#include "svc/service.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <tuple>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace meda::svc {

namespace {

/// Hexfloat codec (cf. sim/campaign.cpp): "%a" round-trips doubles exactly,
/// which the crash-resume byte-identity guarantee depends on.
std::string hex_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

double parse_double(const std::string& token) {
  return std::strtod(token.c_str(), nullptr);
}

void write_rect(std::ostream& os, const Rect& r) {
  os << r.xa << ' ' << r.ya << ' ' << r.xb << ' ' << r.yb;
}

Rect read_rect(std::istream& is) {
  Rect r;
  is >> r.xa >> r.ya >> r.xb >> r.yb;
  return r;
}

/// Serializes the journal record body for one completed solve. The key
/// (rects + digest + armed budget) is prepended by the caller; the body
/// carries everything needed to reproduce the solve's observable effects:
/// the settled ledger charge, the result values, the model shape (the
/// logical cost formula reads stats.states), and the full strategy.
std::string encode_body(core::DigestClass cls, std::uint64_t used,
                        const core::SynthesisResult& result) {
  std::ostringstream os;
  std::vector<std::pair<Rect, Action>> rows(result.strategy.begin(),
                                                  result.strategy.end());
  std::sort(rows.begin(), rows.end());
  os << static_cast<int>(cls) << ' ' << used << ' '
     << (result.feasible ? 1 : 0) << ' ' << (result.deadline_expired ? 1 : 0)
     << ' ' << hex_double(result.expected_cycles) << ' '
     << hex_double(result.reach_probability) << ' ' << result.stats.states
     << ' ' << result.stats.transitions << ' ' << result.stats.choices << ' '
     << rows.size();
  for (const auto& [droplet, action] : rows) {
    os << ' ';
    write_rect(os, droplet);
    os << ' ' << static_cast<int>(action);
  }
  return os.str();
}

/// Inverse of encode_body. Returns false on any malformed field (a record
/// from a different build is skipped rather than trusted).
bool decode_body(const std::string& body, core::DigestClass& cls,
                 std::uint64_t& used, core::SynthesisResult& result) {
  std::istringstream is(body);
  int cls_raw = 0, feasible = 0, expired = 0;
  std::string e_token, p_token;
  std::size_t rows = 0;
  is >> cls_raw >> used >> feasible >> expired >> e_token >> p_token >>
      result.stats.states >> result.stats.transitions >>
      result.stats.choices >> rows;
  if (is.fail() || cls_raw < 0 || cls_raw > 2) return false;
  cls = static_cast<core::DigestClass>(cls_raw);
  result.feasible = feasible != 0;
  result.deadline_expired = expired != 0;
  result.expected_cycles = parse_double(e_token);
  result.reach_probability = parse_double(p_token);
  for (std::size_t i = 0; i < rows; ++i) {
    const Rect droplet = read_rect(is);
    int action = -1;
    is >> action;
    if (is.fail() || action < 0 ||
        action >= static_cast<int>(kAllActions.size()))
      return false;
    result.strategy.set(droplet, static_cast<Action>(action));
  }
  return true;
}

/// Splits a journal record into its key (the first 15 tokens: "solve",
/// 3 rects, digest, armed) and body. Returns false for records that are
/// not solve records.
bool split_record(const std::string& record, std::string& key,
                  std::string& body) {
  std::istringstream is(record);
  std::ostringstream key_os;
  std::string token;
  for (int i = 0; i < 15; ++i) {
    if (!(is >> token)) return false;
    if (i == 0) {
      if (token != "solve") return false;
      continue;  // the record tag is not part of the key
    }
    if (i > 1) key_os << ' ';
    key_os << token;
  }
  key = key_os.str();
  std::getline(is, body);
  if (!body.empty() && body.front() == ' ') body.erase(0, 1);
  return !body.empty();
}

}  // namespace

const char* to_string(ShedReason reason) {
  switch (reason) {
    case ShedReason::kNone: return "none";
    case ShedReason::kQueueFull: return "queue_full";
    case ShedReason::kTenantCap: return "tenant_cap";
    case ShedReason::kBudgetExhausted: return "budget_exhausted";
    case ShedReason::kExpired: return "expired";
  }
  return "none";
}

SynthesisService::SynthesisService(ServiceConfig config)
    : config_(std::move(config)),
      synthesizer_(config_.chip_bounds, config_.synthesis),
      pool_(std::max(1, config_.jobs)) {
  MEDA_REQUIRE(config_.queue_capacity >= 1,
               "service queue capacity must be at least 1");
  library_.set_capacity(config_.library_capacity);
  if (config_.journal != nullptr) {
    // Index every journaled solve (including ones appended by an earlier
    // service generation sharing this journal). First record wins: a key
    // can only repeat after a library eviction, and the re-solve is
    // deterministic, so duplicates carry identical payloads.
    for (const std::string& record : config_.journal->records()) {
      std::string key, body;
      if (split_record(record, key, body)) replay_.emplace(key, body);
    }
  }
}

int SynthesisService::register_tenant(const std::string& name) {
  MEDA_REQUIRE(!name.empty(), "tenant name must be non-empty");
  for (const Tenant& t : tenants_)
    MEDA_REQUIRE(t.name != name, "duplicate tenant name " + name);
  tenants_.push_back(
      Tenant{name, util::DeadlineLedger(config_.tenant_budget_sweeps), 0});
  return static_cast<int>(tenants_.size()) - 1;
}

SubmitTicket SynthesisService::submit(int tenant, const assay::RoutingJob& rj,
                                      const IntMatrix& health,
                                      std::uint64_t deadline_ticks,
                                      std::uint64_t digest,
                                      core::DigestClass cls) {
  MEDA_REQUIRE(tenant >= 0 && tenant < tenant_count(), "unknown tenant id");
  MEDA_OBS_COUNT("svc.submitted", 1);
  const auto shed = [](ShedReason reason) {
    MEDA_OBS_COUNT("svc.shed", 1);
    MEDA_OBS_COUNT(std::string("svc.shed.") + to_string(reason), 1);
    return SubmitTicket{false, reason, 0};
  };
  Tenant& t = tenants_[static_cast<std::size_t>(tenant)];
  if (deadline_ticks == 0) return shed(ShedReason::kExpired);
  if (t.ledger.exhausted()) return shed(ShedReason::kBudgetExhausted);
  if (config_.tenant_inflight_cap > 0 &&
      t.queued >= config_.tenant_inflight_cap)
    return shed(ShedReason::kTenantCap);
  if (queue_.size() >= config_.queue_capacity)
    return shed(ShedReason::kQueueFull);

  PendingJob job;
  job.seq = next_seq_++;
  job.tenant = tenant;
  job.rj = rj;
  job.health = health;
  job.digest = digest;
  job.cls = cls;
  job.submit_tick = clock_;
  const std::uint64_t kNever = ~std::uint64_t{0};
  job.deadline_tick = deadline_ticks > kNever - clock_
                          ? kNever
                          : clock_ + deadline_ticks;  // saturate, never wrap
  ++t.queued;
  queue_.push_back(std::move(job));
  MEDA_OBS_COUNT("svc.accepted", 1);
  MEDA_OBS_GAUGE("svc.queue_depth", static_cast<double>(queue_.size()));
  return SubmitTicket{true, ShedReason::kNone, next_seq_ - 1};
}

void SynthesisService::cancel_expired() {
  // Before-dispatch cancellation: a queued job whose deadline passed is
  // terminal *now*, before any solve is spent on it. Never after: a job
  // that made it into a wave completes even if the wave's own cost pushes
  // the clock past its deadline.
  for (std::size_t i = 0; i < queue_.size();) {
    PendingJob& job = queue_[i];
    if (clock_ < job.deadline_tick) {
      ++i;
      continue;
    }
    JobOutcome out;
    out.seq = job.seq;
    out.tenant = job.tenant;
    out.cancelled = true;
    out.wait_ticks = clock_ - job.submit_tick;
    MEDA_OBS_COUNT("svc.cancelled", 1);
    MEDA_OBS_OBSERVE_LOG2(
        "svc.wait." + tenants_[static_cast<std::size_t>(job.tenant)].name,
        static_cast<double>(out.wait_ticks));
    --tenants_[static_cast<std::size_t>(job.tenant)].queued;
    completed_.emplace(out.seq, std::move(out));
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
  }
}

std::string SynthesisService::journal_key(const PendingJob& job,
                                          std::uint64_t armed_sweeps) const {
  // The armed sweep budget is part of the key: the same routing key solved
  // under a different remaining budget can produce a different (e.g.
  // deadline-expired) result, and replay must never serve one for the
  // other.
  std::ostringstream os;
  write_rect(os, job.rj.start);
  os << ' ';
  write_rect(os, job.rj.goal);
  os << ' ';
  write_rect(os, job.rj.hazard);
  os << ' ' << job.digest << ' ' << armed_sweeps;
  return os.str();
}

std::size_t SynthesisService::drain() {
  const std::size_t before = completed_.size();
  while (!queue_.empty()) {
    cancel_expired();
    if (queue_.empty()) break;
    run_wave();
  }
  MEDA_OBS_GAUGE("svc.queue_depth", 0.0);
  return completed_.size() - before;
}

void SynthesisService::run_wave() {
  const std::uint64_t wave_start = clock_;

  // Coalesce: group queued jobs by solve key, members in seq order (the
  // queue is seq-ordered by construction).
  using SolveKey = std::tuple<Rect, Rect, Rect, std::uint64_t>;
  std::map<SolveKey, std::size_t> index_of;
  std::vector<Group> groups;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const PendingJob& job = queue_[i];
    const SolveKey key{job.rj.start, job.rj.goal, job.rj.hazard, job.digest};
    const auto [it, inserted] = index_of.emplace(key, groups.size());
    if (inserted) {
      groups.push_back(
          Group{{i}, job.deadline_tick, job.seq});
    } else {
      Group& g = groups[it->second];
      g.members.push_back(i);
      g.min_deadline = std::min(g.min_deadline, job.deadline_tick);
    }
  }

  // Earliest-deadline-first across groups; min_seq breaks ties so the
  // order is total and deterministic.
  std::sort(groups.begin(), groups.end(), [](const Group& a, const Group& b) {
    return std::tie(a.min_deadline, a.min_seq) <
           std::tie(b.min_deadline, b.min_seq);
  });
  const std::size_t width =
      config_.max_wave > 0 ? config_.max_wave
                           : static_cast<std::size_t>(std::max(1, config_.jobs));
  if (groups.size() > width) groups.resize(width);

  // Serial pre-pass, in EDF order: library probe, ledger arming, journal
  // replay probe. Every ledger/library/metric touch happens here or in the
  // post-pass — never inside the parallel section.
  enum class Mode : unsigned char { kLibrary, kReplay, kSolve };
  struct Dispatch {
    Group group;
    PendingJob primary;
    Mode mode = Mode::kSolve;
    util::Deadline token;
    std::uint64_t armed = 0;
    std::uint64_t replay_used = 0;
    core::SynthesisResult result;
  };
  std::vector<Dispatch> dispatches;
  dispatches.reserve(groups.size());
  for (const Group& g : groups) {
    Dispatch d;
    d.group = g;
    d.primary = queue_[g.members.front()];
    const std::optional<core::SynthesisResult> cached = library_.lookup_copy(
        d.primary.rj, d.primary.digest, d.primary.cls, d.primary.tenant);
    if (cached.has_value()) {
      d.mode = Mode::kLibrary;
      d.result = *cached;
      MEDA_OBS_COUNT("svc.library_hits", 1);
    } else {
      // Only the primary (earliest) submitter pays budget for the group.
      d.token = tenants_[static_cast<std::size_t>(d.primary.tenant)]
                    .ledger.acquire(config_.synthesis.deadline_sweeps);
      d.armed = d.token.check_limit();
      const auto it = replay_.find(journal_key(d.primary, d.armed));
      if (it != replay_.end()) {
        core::DigestClass cls = core::DigestClass::kPlain;
        core::SynthesisResult replayed;
        std::uint64_t used = 0;
        if (decode_body(it->second, cls, used, replayed)) {
          d.mode = Mode::kReplay;
          d.result = std::move(replayed);
          d.replay_used = used;
        }
      }
    }
    dispatches.push_back(std::move(d));
  }

  // Parallel solve wave into preallocated slots. Solves touch only their
  // own Dispatch; the Synthesizer is stateless and const.
  for (Dispatch& d : dispatches) {
    if (d.mode != Mode::kSolve) continue;
    pool_.submit([this, &d] {
      d.result = synthesizer_.synthesize(d.primary.rj, d.primary.health,
                                         config_.health_bits, d.token);
    });
  }
  pool_.wait();

  // Serial post-pass, in EDF order: settle, journal, store, fan out.
  std::uint64_t wave_cost = 0;
  for (Dispatch& d : dispatches) {
    Tenant& owner = tenants_[static_cast<std::size_t>(d.primary.tenant)];
    std::uint64_t cost = 0;
    if (d.mode == Mode::kSolve) {
      owner.ledger.settle(d.token);
      const std::uint64_t used =
          d.token.has_check_limit()
              ? std::min(d.token.checks_used(), d.token.check_limit())
              : 0;
      if (config_.journal != nullptr)
        config_.journal->append("solve " + journal_key(d.primary, d.armed) +
                                ' ' + encode_body(d.primary.cls, used,
                                                  d.result));
      MEDA_OBS_COUNT("svc.solves", 1);
    } else if (d.mode == Mode::kReplay) {
      owner.ledger.charge(d.replay_used);
      MEDA_OBS_COUNT("svc.journal_replayed", 1);
    }
    if (d.mode != Mode::kLibrary) {
      // Deadline-expired results describe a budget, not the health state —
      // never cached (same rule as the scheduler's local path).
      if (!d.result.deadline_expired)
        library_.store(d.primary.rj, d.primary.digest, d.result,
                       d.primary.cls, d.primary.tenant);
      cost = 1 + d.result.stats.states /
                     std::max<std::uint64_t>(1, config_.cost_state_divisor);
      MEDA_OBS_OBSERVE_LOG2("svc.solve_cost_ticks",
                            static_cast<double>(cost));
    }
    for (std::size_t m = 0; m < d.group.members.size(); ++m) {
      const PendingJob& job = queue_[d.group.members[m]];
      JobOutcome out;
      out.seq = job.seq;
      out.tenant = job.tenant;
      out.coalesced = job.seq != d.primary.seq;
      out.replayed = d.mode == Mode::kReplay;
      out.library_hit = d.mode == Mode::kLibrary;
      out.wait_ticks = wave_start - job.submit_tick;
      out.result = d.result;
      MEDA_OBS_OBSERVE_LOG2(
          "svc.wait." + tenants_[static_cast<std::size_t>(job.tenant)].name,
          static_cast<double>(out.wait_ticks));
      --tenants_[static_cast<std::size_t>(job.tenant)].queued;
      completed_.emplace(out.seq, std::move(out));
    }
    if (d.group.members.size() > 1)
      MEDA_OBS_COUNT("svc.coalesced",
                     static_cast<std::uint64_t>(d.group.members.size() - 1));
    wave_cost += cost;
  }
  clock_ += wave_cost;

  // Remove the dispatched jobs from the queue, highest index first so the
  // collected indexes stay valid.
  std::vector<std::size_t> dispatched;
  for (const Dispatch& d : dispatches)
    dispatched.insert(dispatched.end(), d.group.members.begin(),
                      d.group.members.end());
  std::sort(dispatched.rbegin(), dispatched.rend());
  for (const std::size_t i : dispatched)
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
}

std::optional<JobOutcome> SynthesisService::take(std::uint64_t seq) {
  const auto it = completed_.find(seq);
  if (it == completed_.end()) return std::nullopt;
  JobOutcome out = std::move(it->second);
  completed_.erase(it);
  return out;
}

void SynthesisService::refill_budgets() {
  for (Tenant& t : tenants_) t.ledger.refill();
}

const util::DeadlineLedger& SynthesisService::tenant_ledger(int tenant) const {
  MEDA_REQUIRE(tenant >= 0 && tenant < tenant_count(), "unknown tenant id");
  return tenants_[static_cast<std::size_t>(tenant)].ledger;
}

}  // namespace meda::svc
