#pragma once

#include <cstdint>
#include <string>
#include <vector>

/// @file events.hpp
/// Structured run-event log: the single event stream of one execution.
///
/// Supersedes the ad-hoc `RecoveryEvent` plumbing: every notable happening —
/// recovery-ladder rungs, stall classifications, health-change adoptions,
/// job lifecycle — is one Event with a category, a name, an optional scope
/// (the affected MO), and free-form detail. `ExecutionStats::recovery_events`
/// remains as a typed view of the `category == "recovery"` subset for
/// backward compatibility.

namespace meda::obs {

/// One structured run event.
struct Event {
  std::uint64_t cycle = 0;   ///< operational cycle, relative to run start
  std::string category;      ///< "recovery", "stall", "health", "job", ...
  std::string name;          ///< e.g. "watchdog-resense", "blocked-by-droplet"
  int scope = -1;            ///< affected MO id; -1 = execution-wide
  std::string detail;

  friend bool operator==(const Event&, const Event&) = default;
};

/// Renders events one per line:
/// `cycle 412 [recovery/quarantine] MO 3: 5 cell(s) ...`.
std::string format_events(const std::vector<Event>& events);

/// Renders events as a JSON array (for machine consumption and reports).
std::string events_json(const std::vector<Event>& events);

}  // namespace meda::obs
