#include "obs/trace.hpp"

#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace meda::obs {

namespace {

/// Length of the valid UTF-8 sequence starting at @p at, or 0 when the
/// bytes there are not well-formed UTF-8 (bad lead byte, truncated or
/// malformed continuation, overlong encoding, surrogate, or > U+10FFFF).
std::size_t utf8_sequence_length(std::string_view text, std::size_t at) {
  const auto byte = [&](std::size_t i) {
    return static_cast<unsigned char>(text[i]);
  };
  const unsigned char lead = byte(at);
  std::size_t len = 0;
  unsigned char lo = 0x80;  // bounds for the first continuation byte,
  unsigned char hi = 0xBF;  // tightened per RFC 3629 table 3-7
  if (lead >= 0xC2 && lead <= 0xDF) {
    len = 2;
  } else if (lead >= 0xE0 && lead <= 0xEF) {
    len = 3;
    if (lead == 0xE0) lo = 0xA0;  // reject overlong
    if (lead == 0xED) hi = 0x9F;  // reject surrogates
  } else if (lead >= 0xF0 && lead <= 0xF4) {
    len = 4;
    if (lead == 0xF0) lo = 0x90;  // reject overlong
    if (lead == 0xF4) hi = 0x8F;  // reject > U+10FFFF
  } else {
    return 0;  // 0x80–0xC1 and 0xF5–0xFF are never valid leads
  }
  if (at + len > text.size()) return 0;
  if (byte(at + 1) < lo || byte(at + 1) > hi) return 0;
  for (std::size_t i = 2; i < len; ++i) {
    if (byte(at + i) < 0x80 || byte(at + i) > 0xBF) return 0;
  }
  return len;
}

}  // namespace

std::string json_quote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (std::size_t i = 0; i < text.size();) {
    const char c = text[i];
    const unsigned char u = static_cast<unsigned char>(c);
    if (u < 0x80) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
          if (u < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", u);
            out += buf;
          } else {
            out.push_back(c);
          }
      }
      ++i;
      continue;
    }
    // Multi-byte: pass well-formed UTF-8 through verbatim; replace each
    // ill-formed byte with U+FFFD so the output is always valid JSON text.
    const std::size_t len = utf8_sequence_length(text, i);
    if (len > 0) {
      out.append(text.substr(i, len));
      i += len;
    } else {
      out += "\\ufffd";
      ++i;
    }
  }
  out.push_back('"');
  return out;
}

std::uint64_t Tracer::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  // Drop worker tid assignments too: pool threads are gone by the time a
  // test resets the context, and their ids may be recycled.
  thread_tids_.clear();
  next_worker_tid_ = TraceTrack::kFirstWorkerTid;
}

std::size_t Tracer::event_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

int Tracer::thread_tid_locked() {
  const std::thread::id self = std::this_thread::get_id();
  if (self == main_thread_) return TraceTrack::kMainTid;
  const auto it = thread_tids_.find(self);
  if (it != thread_tids_.end()) return it->second;
  const int tid = next_worker_tid_++;
  thread_tids_.emplace(self, tid);
  return tid;
}

void Tracer::push(TraceEvent e) {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

void Tracer::begin(std::string_view cat, std::string_view name) {
  if (!enabled()) return;
  TraceEvent e;
  e.ph = 'B';
  e.ts = now_us();
  e.name = name;
  e.cat = cat;
  const std::lock_guard<std::mutex> lock(mu_);
  e.tid = thread_tid_locked();
  events_.push_back(std::move(e));
}

void Tracer::end(std::vector<std::pair<std::string, std::string>> args) {
  if (!enabled()) return;
  TraceEvent e;
  e.ph = 'E';
  e.ts = now_us();
  e.args = std::move(args);
  const std::lock_guard<std::mutex> lock(mu_);
  e.tid = thread_tid_locked();
  events_.push_back(std::move(e));
}

void Tracer::complete(std::string_view cat, std::string_view name,
                      std::uint64_t start_us, std::uint64_t dur_us, int tid,
                      std::vector<std::pair<std::string, std::string>> args) {
  if (!enabled()) return;
  TraceEvent e;
  e.ph = 'X';
  e.ts = start_us;
  e.dur = dur_us;
  e.tid = tid;
  e.name = name;
  e.cat = cat;
  e.args = std::move(args);
  push(std::move(e));
}

void Tracer::async_begin(std::string_view cat, std::string_view name,
                         std::uint64_t id) {
  if (!enabled()) return;
  TraceEvent e;
  e.ph = 'b';
  e.ts = now_us();
  e.id = id;
  e.tid = TraceTrack::kJobTid;
  e.name = name;
  e.cat = cat;
  push(std::move(e));
}

void Tracer::async_end(std::string_view cat, std::string_view name,
                       std::uint64_t id,
                       std::vector<std::pair<std::string, std::string>> args) {
  if (!enabled()) return;
  TraceEvent e;
  e.ph = 'e';
  e.ts = now_us();
  e.id = id;
  e.tid = TraceTrack::kJobTid;
  e.name = name;
  e.cat = cat;
  e.args = std::move(args);
  push(std::move(e));
}

void Tracer::instant(std::string_view cat, std::string_view name,
                     std::string_view detail) {
  if (!enabled()) return;
  TraceEvent e;
  e.ph = 'i';
  e.ts = now_us();
  e.name = name;
  e.cat = cat;
  if (!detail.empty())
    e.args.emplace_back("detail", json_quote(detail));
  push(std::move(e));
}

void Tracer::cycle_counter(std::string_view name, double value,
                           std::uint64_t cycle) {
  if (!enabled()) return;
  TraceEvent e;
  e.ph = 'C';
  e.ts = cycle;
  e.pid = TraceTrack::kCyclePid;
  e.tid = TraceTrack::kMainTid;
  e.name = name;
  e.cat = "cycle";
  std::ostringstream v;
  v << value;
  e.args.emplace_back("value", v.str());
  push(std::move(e));
}

void Tracer::sweep_counter(std::string_view name, double value,
                           std::uint64_t sweep) {
  if (!enabled()) return;
  TraceEvent e;
  e.ph = 'C';
  e.ts = sweep;
  e.pid = TraceTrack::kSweepPid;
  e.tid = TraceTrack::kMainTid;
  e.name = name;
  e.cat = "sweep";
  std::ostringstream v;
  v << value;
  e.args.emplace_back("value", v.str());
  push(std::move(e));
}

void Tracer::cycle_instant(std::string_view name, std::uint64_t cycle) {
  if (!enabled()) return;
  TraceEvent e;
  e.ph = 'i';
  e.ts = cycle;
  e.pid = TraceTrack::kCyclePid;
  e.tid = TraceTrack::kMainTid;
  e.name = name;
  e.cat = "cycle";
  push(std::move(e));
}

namespace {

void emit_args(std::ostringstream& os,
               const std::vector<std::pair<std::string, std::string>>& args) {
  os << "{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    os << (i ? "," : "") << json_quote(args[i].first) << ":"
       << args[i].second;
  }
  os << "}";
}

void emit_metadata(std::ostringstream& os, int pid, int tid,
                   const char* kind, const char* label) {
  os << ",\n{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
     << ",\"name\":\"" << kind << "\",\"args\":{\"name\":"
     << json_quote(label) << "}}";
}

}  // namespace

std::string Tracer::to_json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  // Track naming metadata so Perfetto labels the two time domains.
  os << "{\"ph\":\"M\",\"pid\":" << TraceTrack::kWallPid
     << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":"
     << json_quote("meda-routing (wall clock, ts = us)") << "}}";
  emit_metadata(os, TraceTrack::kWallPid, TraceTrack::kMainTid,
                "thread_name", "scheduler");
  emit_metadata(os, TraceTrack::kWallPid, TraceTrack::kJobTid, "thread_name",
                "routing jobs");
  // Label every pool worker that recorded spans (campaign --jobs > 1).
  for (int tid = TraceTrack::kFirstWorkerTid; tid < next_worker_tid_; ++tid) {
    const std::string label =
        "worker-" + std::to_string(tid - TraceTrack::kFirstWorkerTid + 1);
    emit_metadata(os, TraceTrack::kWallPid, tid, "thread_name",
                  label.c_str());
  }
  os << ",\n{\"ph\":\"M\",\"pid\":" << TraceTrack::kCyclePid
     << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":"
     << json_quote("per-cycle telemetry (ts = operational cycle)") << "}}";
  os << ",\n{\"ph\":\"M\",\"pid\":" << TraceTrack::kSweepPid
     << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":"
     << json_quote("solver convergence (ts = Gauss-Seidel sweep)") << "}}";
  for (const TraceEvent& e : events_) {
    os << ",\n{\"ph\":\"" << e.ph << "\",\"ts\":" << e.ts
       << ",\"pid\":" << e.pid << ",\"tid\":" << e.tid;
    if (!e.name.empty()) os << ",\"name\":" << json_quote(e.name);
    if (!e.cat.empty()) os << ",\"cat\":" << json_quote(e.cat);
    if (e.ph == 'X') os << ",\"dur\":" << e.dur;
    if (e.ph == 'b' || e.ph == 'e') os << ",\"id\":" << e.id;
    if (e.ph == 'i') os << ",\"s\":\"t\"";  // thread-scoped instant
    if (!e.args.empty()) {
      os << ",\"args\":";
      emit_args(os, e.args);
    }
    os << "}";
  }
  os << "\n]}\n";
  return os.str();
}

void Tracer::write_json(const std::string& path) const {
  std::ofstream out(path);
  MEDA_REQUIRE(out.is_open(), "cannot open " + path + " for writing");
  out << to_json();
}

void SpanScope::arg(std::string_view key, double value) {
  if (!live_) return;
  std::ostringstream os;
  os << value;
  args_.emplace_back(std::string(key), os.str());
}

}  // namespace meda::obs
