#include "obs/obs.hpp"

namespace meda::obs {

Context& ctx() {
  static Context instance;
  return instance;
}

void FlushGuard::flush() {
  if (!armed_) return;
  // Write whatever the sinks hold right now; both formats are complete
  // documents, so a flush mid-run still yields parseable output. Swallow
  // write failures — the guard runs on error paths where the original
  // exception must win.
  try {
    if (!trace_path_.empty() && ctx().tracer().enabled()) {
      ctx().tracer().write_json(trace_path_);
    }
    if (!metrics_path_.empty() && ctx().metrics().enabled()) {
      ctx().metrics().write_snapshot(metrics_path_);
    }
  } catch (...) {  // NOLINT(bugprone-empty-catch)
  }
}

}  // namespace meda::obs
