#include "obs/obs.hpp"

namespace meda::obs {

Context& ctx() {
  static Context instance;
  return instance;
}

}  // namespace meda::obs
