#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

/// @file trace.hpp
/// Span-based tracer with Chrome `trace_event` JSON export.
///
/// The tracer records three kinds of telemetry:
///
///  - **Duration spans** (`ph: "B"/"E"`) — RAII-scoped via SpanScope; spans
///    nest naturally on the wall-clock thread track, giving the
///    scheduler → job → synthesis → value-iteration breakdown.
///  - **Async spans** (`ph: "b"/"e"`) — long-lived work such as a routing
///    job's whole lifetime, rendered on its own track so overlapping jobs
///    stay readable.
///  - **Counter samples** (`ph: "C"`) — cycle-accurate counter tracks
///    (droplets on chip, in-flight syntheses, health-change events) keyed by
///    the *operational cycle*, not wall time, on a dedicated pid so Perfetto
///    shows them as an aligned cycle-domain timeline.
///
/// Export with to_json()/write_json() and load the file in chrome://tracing
/// or https://ui.perfetto.dev. The tracer is a null sink until enable() is
/// called: every record call first checks one flag and returns, so an
/// instrumented hot path costs a predicted branch when tracing is off.
///
/// Thread safety: record calls may come from campaign worker threads
/// (util::ThreadPool), so the event buffer is mutex-protected and each
/// recording thread gets its own tid — the construction thread is the
/// scheduler track (kMainTid), workers are assigned kFirstWorkerTid,
/// kFirstWorkerTid+1, … on first use and labelled "worker-N" in the export.
/// Duration spans therefore nest correctly per thread; events from
/// different threads interleave in wall-clock order, which is
/// nondeterministic — run with jobs = 1 when a reproducible trace matters
/// (metrics and campaign results stay deterministic either way).
/// enable()/disable()/clear() and the accessors are meant for the quiet
/// phases before and after a parallel section.

namespace meda::obs {

/// Monotonic interval timer; the single source of truth for all wall-time
/// measurements reported by the library (spans and the timing fields of
/// SynthesisResult / ExecutionStats are derived from the same readings).
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()), lap_(start_) {}

  /// Seconds since construction.
  double total_seconds() const { return seconds(start_, clock::now()); }

  /// Seconds since the last lap() (or construction), then restarts the lap.
  double lap_seconds() {
    const clock::time_point now = clock::now();
    const double s = seconds(lap_, now);
    lap_ = now;
    return s;
  }

 private:
  using clock = std::chrono::steady_clock;
  static double seconds(clock::time_point a, clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
  }
  clock::time_point start_;
  clock::time_point lap_;
};

/// One recorded trace event (subset of the Chrome trace_event model).
struct TraceEvent {
  char ph = 'i';           ///< B, E, X, b, e, i, C
  std::uint64_t ts = 0;    ///< microseconds (or cycles on the cycle pid)
  std::uint64_t dur = 0;   ///< X only
  std::uint64_t id = 0;    ///< async pairing id (b/e only)
  int pid = 1;
  int tid = 1;
  std::string name;
  std::string cat;
  /// Pre-rendered JSON fragments: {"key", "3"} or {"key", "\"text\""}.
  std::vector<std::pair<std::string, std::string>> args;
};

/// Escapes and quotes @p text as a JSON string literal.
std::string json_quote(std::string_view text);

/// Process/thread ids used by the exporter.
struct TraceTrack {
  static constexpr int kWallPid = 1;    ///< wall-clock domain (ts = µs)
  static constexpr int kCyclePid = 2;   ///< cycle domain (ts = op. cycle)
  static constexpr int kSweepPid = 3;   ///< sweep domain (ts = GS sweep index)
  static constexpr int kMainTid = 1;    ///< nested scheduler/synthesis spans
  static constexpr int kJobTid = 2;     ///< async per-job lifetime spans
  static constexpr int kFirstWorkerTid = 3;  ///< pool workers count up from here
};

/// Event recorder. All record methods are no-ops until enable().
class Tracer {
 public:
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }

  /// Drops every recorded event (the enabled flag is unchanged).
  void clear();

  std::size_t event_count() const;
  /// Direct buffer access; only valid while no other thread records.
  const std::vector<TraceEvent>& events() const { return events_; }

  /// Microseconds since the tracer's epoch (process start of the tracer).
  std::uint64_t now_us() const;

  // Recording -------------------------------------------------------------
  void begin(std::string_view cat, std::string_view name);
  void end(std::vector<std::pair<std::string, std::string>> args = {});
  void complete(std::string_view cat, std::string_view name,
                std::uint64_t start_us, std::uint64_t dur_us, int tid,
                std::vector<std::pair<std::string, std::string>> args = {});
  void async_begin(std::string_view cat, std::string_view name,
                   std::uint64_t id);
  void async_end(std::string_view cat, std::string_view name,
                 std::uint64_t id,
                 std::vector<std::pair<std::string, std::string>> args = {});
  void instant(std::string_view cat, std::string_view name,
               std::string_view detail = {});
  /// One cycle-domain counter sample: track @p name gets @p value at
  /// operational cycle @p cycle (rendered on the cycle pid).
  void cycle_counter(std::string_view name, double value,
                     std::uint64_t cycle);
  /// One cycle-domain instant marker (e.g. a health-change event).
  void cycle_instant(std::string_view name, std::uint64_t cycle);
  /// One sweep-domain counter sample: track @p name gets @p value at
  /// Gauss-Seidel sweep @p sweep (rendered on the sweep pid, so the
  /// per-sweep max-residual decay of one solve reads as a curve).
  void sweep_counter(std::string_view name, double value,
                     std::uint64_t sweep);

  // Export ----------------------------------------------------------------
  /// Chrome trace_event JSON ({"traceEvents": [...]}); parses in
  /// chrome://tracing and Perfetto.
  std::string to_json() const;
  void write_json(const std::string& path) const;

 private:
  /// The calling thread's track id under mu_: the construction thread maps
  /// to TraceTrack::kMainTid, every other thread gets the next worker tid
  /// on first use.
  int thread_tid_locked();
  void push(TraceEvent e);

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
  mutable std::mutex mu_;
  std::thread::id main_thread_ = std::this_thread::get_id();
  std::map<std::thread::id, int> thread_tids_;  ///< assigned worker tids
  int next_worker_tid_ = TraceTrack::kFirstWorkerTid;
  std::vector<TraceEvent> events_;
};

/// RAII duration span on the main wall-clock track. Collect argument pairs
/// with arg(); they are attached to the closing event.
class SpanScope {
 public:
  SpanScope(Tracer& tracer, std::string_view cat, std::string_view name)
      : tracer_(tracer), live_(tracer.enabled()) {
    if (live_) tracer_.begin(cat, name);
  }
  ~SpanScope() {
    if (live_) tracer_.end(std::move(args_));
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  void arg(std::string_view key, std::int64_t value) {
    if (live_) args_.emplace_back(std::string(key), std::to_string(value));
  }
  void arg(std::string_view key, double value);
  void arg(std::string_view key, std::string_view text) {
    if (live_) args_.emplace_back(std::string(key), json_quote(text));
  }

 private:
  Tracer& tracer_;
  bool live_;
  std::vector<std::pair<std::string, std::string>> args_;
};

/// Stand-in for SpanScope when instrumentation is compiled out
/// (-DMEDA_OBS_DISABLED): every member is a no-op.
struct NullSpan {
  template <typename T>
  void arg(std::string_view, T&&) {}
};

}  // namespace meda::obs
