#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// @file metrics.hpp
/// Metrics registry: named counters, gauges, and histograms with a stable
/// text/JSON snapshot format.
///
/// Series are created on first use and iterate in name order, so two runs
/// that record the same series produce byte-identical snapshots. Every
/// instrumented quantity except wall-clock time is deterministic for a fixed
/// seed; time-valued series are suffixed `_seconds` by convention so
/// downstream consumers (and the determinism tests) can strip them.
///
/// Histograms come in two kinds:
///
///  - **fixed-bucket** — caller-supplied ascending upper bounds (the shared
///    layouts below), an implicit +inf bucket on top;
///  - **log2-bucket** — bounds are powers of two, materialized lazily from
///    the observed range (plus a `0` bucket for non-positive values). Right
///    for open-ended integer quantities (entry ages, strategy sizes, sweep
///    counts) where no fixed layout fits every workload.
///
/// Both kinds track exact min/max/sum/count and derive deterministic
/// quantiles (p50/p90/p99) from the buckets: a quantile is the smallest
/// bucket upper bound covering the rank, clamped into [min, max]. Snapshots
/// are therefore byte-identical for the same multiset of observations —
/// the property the campaign determinism tests pin at any --jobs count.
///
/// Like the tracer, the registry is a null sink until enable() is called:
/// record calls check one flag and return.
///
/// Thread safety: record and read calls are mutex-protected so campaign
/// worker threads (util::ThreadPool) can share the process-global registry.
/// Counters and histograms are commutative — their totals are identical at
/// any job count — but gauges are last-write-wins, so a gauge set from
/// concurrent workers keeps an arbitrary thread's value.

namespace meda::obs {

/// Derived summary of one histogram (see quantile() for the derivation).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Bucketed distribution: counts of observations ≤ each upper bound, plus
/// an implicit +inf bucket, with exact count/sum/min/max on the side.
class Histogram {
 public:
  Histogram() = default;
  /// Fixed-bucket histogram over ascending @p upper_bounds.
  explicit Histogram(std::span<const double> upper_bounds);
  /// Log2-bucket histogram (bounds materialize from the observed range).
  static Histogram log2();

  void observe(double value);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  /// Deterministic bucket quantile for q in [0, 1]: the smallest bucket
  /// upper bound whose cumulative count reaches rank ceil(q·count), clamped
  /// into [min, max] (observations in the +inf bucket resolve to max).
  double quantile(double q) const;

  /// count/sum/min/max plus p50/p90/p99 in one deterministic struct.
  HistogramSnapshot snapshot() const;

  /// The rendered bucket list: ascending (upper_bound, cumulative_count)
  /// pairs, excluding the implicit +inf bucket (whose count is count()).
  /// Fixed histograms list their configured bounds; log2 histograms list
  /// every power of two between the smallest and largest observed bucket
  /// (plus a 0 bucket when non-positive values were observed).
  std::vector<std::pair<double, std::uint64_t>> cumulative_buckets() const;

  /// Fixed-kind accessors (empty for log2 histograms).
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  enum class Kind : unsigned char { kFixed, kLog2 };

  Kind kind_ = Kind::kFixed;
  std::vector<double> bounds_;        ///< fixed: ascending upper bounds
  std::vector<std::uint64_t> counts_; ///< fixed: cumulative, one per bound
  std::map<int, std::uint64_t> log2_counts_;  ///< log2: exponent → count
  std::uint64_t zero_count_ = 0;      ///< log2: observations ≤ 0
  std::uint64_t count_ = 0;           ///< incl. the +inf bucket
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Shared bucket layouts for the library's instrumentation sites.
inline constexpr double kPow2Buckets[] = {1,   2,   4,    8,    16,  32,
                                          64,  128, 256,  512,  1024,
                                          2048, 4096, 8192, 16384};
inline constexpr double kStateCountBuckets[] = {
    50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000};
inline constexpr double kSecondsBuckets[] = {
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0};
/// Gauss-Seidel per-sweep max-residual layout: decades from convergence
/// tolerance (1e-9 and below) up to the first-sweep O(1) changes.
inline constexpr double kResidualBuckets[] = {
    1e-12, 1e-11, 1e-10, 1e-9, 1e-8, 1e-7, 1e-6,
    1e-5,  1e-4,  1e-3,  1e-2, 0.1,  1.0};

/// Name-addressed registry of counters, gauges, and histograms.
class MetricsRegistry {
 public:
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }

  /// Drops every series (the enabled flag is unchanged).
  void clear();

  // Recording (no-ops while disabled) -------------------------------------
  void add(std::string_view name, std::uint64_t delta = 1);
  void set(std::string_view name, double value);
  void observe(std::string_view name, double value,
               std::span<const double> upper_bounds);
  /// Observe into a log2-bucket histogram (created on first use).
  void observe_log2(std::string_view name, double value);

  // Inspection ------------------------------------------------------------
  /// Counter value, or 0 when the counter does not exist.
  std::uint64_t counter(std::string_view name) const;
  /// Gauge value, or 0.0 when the gauge does not exist.
  double gauge(std::string_view name) const;
  /// Pointer into the registry (stable across later inserts); dereference
  /// only while no other thread is recording.
  const Histogram* histogram(std::string_view name) const;
  bool empty() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  // Snapshots -------------------------------------------------------------
  /// Stable text snapshot: one `name value` line per series, name-sorted;
  /// histograms render as `name{le="b"} n` cumulative-bucket lines followed
  /// by `name_sum/_count/_min/_max/_p50/_p90/_p99` derived lines.
  std::string snapshot_text() const;
  /// The same snapshot as a JSON object with "counters" / "gauges" /
  /// "histograms" members (each histogram carries its buckets plus the
  /// derived count/sum/min/max/p50/p90/p99 fields).
  std::string snapshot_json() const;
  void write_snapshot(const std::string& path) const;  ///< JSON iff *.json

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace meda::obs
