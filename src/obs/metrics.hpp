#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

/// @file metrics.hpp
/// Metrics registry: named counters, gauges, and fixed-bucket histograms
/// with a stable text/JSON snapshot format.
///
/// Series are created on first use and iterate in name order, so two runs
/// that record the same series produce byte-identical snapshots. Every
/// instrumented quantity except wall-clock time is deterministic for a fixed
/// seed; time-valued series are suffixed `_seconds` by convention so
/// downstream consumers (and the determinism tests) can strip them.
///
/// Like the tracer, the registry is a null sink until enable() is called:
/// record calls check one flag and return.
///
/// Thread safety: record and read calls are mutex-protected so campaign
/// worker threads (util::ThreadPool) can share the process-global registry.
/// Counters and histograms are commutative — their totals are identical at
/// any job count — but gauges are last-write-wins, so a gauge set from
/// concurrent workers keeps an arbitrary thread's value.

namespace meda::obs {

/// Fixed-bucket histogram: counts of observations ≤ each upper bound, plus
/// an implicit +inf bucket, with sum/count for mean recovery.
class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(std::span<const double> upper_bounds);

  void observe(double value);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  /// Cumulative count of observations ≤ bounds()[i].
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  std::vector<double> bounds_;        ///< ascending upper bounds
  std::vector<std::uint64_t> counts_; ///< cumulative, one per bound
  std::uint64_t count_ = 0;           ///< incl. the +inf bucket
  double sum_ = 0.0;
};

/// Shared bucket layouts for the library's instrumentation sites.
inline constexpr double kPow2Buckets[] = {1,   2,   4,    8,    16,  32,
                                          64,  128, 256,  512,  1024,
                                          2048, 4096, 8192, 16384};
inline constexpr double kStateCountBuckets[] = {
    50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000};
inline constexpr double kSecondsBuckets[] = {
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0};

/// Name-addressed registry of counters, gauges, and histograms.
class MetricsRegistry {
 public:
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }

  /// Drops every series (the enabled flag is unchanged).
  void clear();

  // Recording (no-ops while disabled) -------------------------------------
  void add(std::string_view name, std::uint64_t delta = 1);
  void set(std::string_view name, double value);
  void observe(std::string_view name, double value,
               std::span<const double> upper_bounds);

  // Inspection ------------------------------------------------------------
  /// Counter value, or 0 when the counter does not exist.
  std::uint64_t counter(std::string_view name) const;
  /// Gauge value, or 0.0 when the gauge does not exist.
  double gauge(std::string_view name) const;
  /// Pointer into the registry (stable across later inserts); dereference
  /// only while no other thread is recording.
  const Histogram* histogram(std::string_view name) const;
  bool empty() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  // Snapshots -------------------------------------------------------------
  /// Stable text snapshot: one `name value` line per series, name-sorted;
  /// histograms render as `name{le="b"} n` cumulative-bucket lines.
  std::string snapshot_text() const;
  /// The same snapshot as a JSON object with "counters" / "gauges" /
  /// "histograms" members.
  std::string snapshot_json() const;
  void write_snapshot(const std::string& path) const;  ///< JSON iff *.json

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace meda::obs
