#pragma once

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

/// @file obs.hpp
/// Unified observability context: one process-wide tracer + metrics
/// registry, and the instrumentation macros the hot layers use.
///
/// Design:
///  - **Null sink by default.** Both sinks start disabled; every macro
///    checks one flag and returns, so instrumented code costs a predicted
///    branch per site when observability is off — and exactly nothing when
///    it is compiled out.
///  - **Compile-time toggle.** Configure with `-DMEDA_OBS=OFF` (which
///    defines `MEDA_OBS_DISABLED`) to compile every macro to a no-op; the
///    obs library itself stays available for direct use.
///  - **One context.** The library is single-threaded per process (the
///    scheduler owns the run loop), so a process-global context keeps the
///    instrumentation non-invasive: no plumbing of sink pointers through
///    Synthesizer/Scheduler/SimulatedChip constructors.
///
/// Typical use (see examples/run_assay.cpp):
///
///     meda::obs::ctx().tracer().enable();
///     meda::obs::ctx().metrics().enable();
///     ... run ...
///     meda::obs::ctx().tracer().write_json("trace.json");
///     meda::obs::ctx().metrics().write_snapshot("metrics.json");

namespace meda::obs {

/// The process-wide observability context.
class Context {
 public:
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// True when any sink records (instrumentation worth computing inputs for).
  bool any_enabled() const {
    return tracer_.enabled() || metrics_.enabled();
  }

  /// Disables both sinks and drops all recorded data (test isolation).
  void reset() {
    tracer_.disable();
    tracer_.clear();
    metrics_.disable();
    metrics_.clear();
  }

 private:
  Tracer tracer_;
  MetricsRegistry metrics_;
};

/// The global context (null sinks until enabled).
Context& ctx();

/// Writes the global context's trace/metrics outputs when destroyed, so
/// every exit path — normal return, uncaught exception, deadline bail-out —
/// leaves valid, parseable files on disk. Construct one at the top of a
/// driver's main after enabling the sinks; call disarm() on paths that
/// handle their own writes, or flush() to write early (destruction then
/// rewrites the files with any events recorded since, which is idempotent
/// for a finished run). Empty paths and disabled sinks are skipped.
class FlushGuard {
 public:
  FlushGuard(std::string trace_path, std::string metrics_path)
      : trace_path_(std::move(trace_path)),
        metrics_path_(std::move(metrics_path)) {}
  ~FlushGuard() { flush(); }

  FlushGuard(const FlushGuard&) = delete;
  FlushGuard& operator=(const FlushGuard&) = delete;

  void flush();
  void disarm() { armed_ = false; }

 private:
  std::string trace_path_;
  std::string metrics_path_;
  bool armed_ = true;
};

}  // namespace meda::obs

// Instrumentation macros ----------------------------------------------------
//
// MEDA_OBS_SPAN(var, cat, name)   RAII duration span named `var`
// MEDA_OBS_COUNT(name, delta)     bump a registry counter
// MEDA_OBS_GAUGE(name, value)     set a registry gauge
// MEDA_OBS_OBSERVE(name, v, b)    observe into a fixed-bucket histogram
// MEDA_OBS_OBSERVE_LOG2(name, v)  observe into a log2-bucket histogram
// MEDA_OBS_INSTANT(cat, name, d)  instant trace marker (wall clock)
// MEDA_OBS_CYCLE_COUNTER(n, v, c) cycle-domain counter sample
// MEDA_OBS_CYCLE_INSTANT(n, c)    cycle-domain instant marker
// MEDA_OBS_ACTIVE()               any sink enabled (gate derived inputs)

#ifndef MEDA_OBS_DISABLED

#define MEDA_OBS_SPAN(var, cat, name) \
  ::meda::obs::SpanScope var { ::meda::obs::ctx().tracer(), cat, name }
#define MEDA_OBS_COUNT(name, delta) \
  ::meda::obs::ctx().metrics().add(name, delta)
#define MEDA_OBS_GAUGE(name, value) \
  ::meda::obs::ctx().metrics().set(name, value)
#define MEDA_OBS_OBSERVE(name, value, bounds) \
  ::meda::obs::ctx().metrics().observe(name, value, bounds)
#define MEDA_OBS_OBSERVE_LOG2(name, value) \
  ::meda::obs::ctx().metrics().observe_log2(name, value)
#define MEDA_OBS_INSTANT(cat, name, detail) \
  ::meda::obs::ctx().tracer().instant(cat, name, detail)
#define MEDA_OBS_CYCLE_COUNTER(name, value, cycle) \
  ::meda::obs::ctx().tracer().cycle_counter(name, value, cycle)
#define MEDA_OBS_CYCLE_INSTANT(name, cycle) \
  ::meda::obs::ctx().tracer().cycle_instant(name, cycle)
#define MEDA_OBS_ACTIVE() ::meda::obs::ctx().any_enabled()

#else  // MEDA_OBS_DISABLED: compile instrumentation out entirely.

#define MEDA_OBS_SPAN(var, cat, name) \
  ::meda::obs::NullSpan var {}
#define MEDA_OBS_COUNT(name, delta) ((void)0)
#define MEDA_OBS_GAUGE(name, value) ((void)0)
#define MEDA_OBS_OBSERVE(name, value, bounds) ((void)0)
#define MEDA_OBS_OBSERVE_LOG2(name, value) ((void)0)
#define MEDA_OBS_INSTANT(cat, name, detail) ((void)0)
#define MEDA_OBS_CYCLE_COUNTER(name, value, cycle) ((void)0)
#define MEDA_OBS_CYCLE_INSTANT(name, cycle) ((void)0)
#define MEDA_OBS_ACTIVE() false

#endif  // MEDA_OBS_DISABLED
