#include "obs/metrics.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "obs/trace.hpp"
#include "util/check.hpp"

namespace meda::obs {

Histogram::Histogram(std::span<const double> upper_bounds)
    : bounds_(upper_bounds.begin(), upper_bounds.end()),
      counts_(upper_bounds.size(), 0) {
  MEDA_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()),
               "histogram bounds must ascend");
}

void Histogram::observe(double value) {
  ++count_;
  sum_ += value;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      // Cumulative buckets: every bound ≥ value counts the observation.
      for (std::size_t j = i; j < bounds_.size(); ++j) ++counts_[j];
      return;
    }
  }
}

void MetricsRegistry::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) {
    it->second += delta;
  } else {
    counters_.emplace(std::string(name), delta);
  }
}

void MetricsRegistry::set(std::string_view name, double value) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    it->second = value;
  } else {
    gauges_.emplace(std::string(name), value);
  }
}

void MetricsRegistry::observe(std::string_view name, double value,
                              std::span<const double> upper_bounds) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram(upper_bounds))
             .first;
  }
  it->second.observe(value);
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second : 0;
}

double MetricsRegistry::gauge(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second : 0.0;
}

const Histogram* MetricsRegistry::histogram(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  return it != histograms_.end() ? &it->second : nullptr;
}

namespace {

/// Shortest round-trip double rendering (snapshots must be stable).
std::string fmt_value(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  std::string s = os.str();
  // Prefer the shorter fixed form when it round-trips.
  std::ostringstream brief;
  brief.precision(12);
  brief << v;
  if (std::stod(brief.str()) == v) s = brief.str();
  return s;
}

}  // namespace

std::string MetricsRegistry::snapshot_text() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [name, value] : counters_)
    os << name << ' ' << value << '\n';
  for (const auto& [name, value] : gauges_)
    os << name << ' ' << fmt_value(value) << '\n';
  for (const auto& [name, h] : histograms_) {
    for (std::size_t i = 0; i < h.bounds().size(); ++i)
      os << name << "{le=\"" << fmt_value(h.bounds()[i]) << "\"} "
         << h.bucket_counts()[i] << '\n';
    os << name << "{le=\"+Inf\"} " << h.count() << '\n';
    os << name << "_sum " << fmt_value(h.sum()) << '\n';
    os << name << "_count " << h.count() << '\n';
  }
  return os.str();
}

std::string MetricsRegistry::snapshot_json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    os << (first ? "" : ",") << "\n    " << json_quote(name) << ": "
       << value;
    first = false;
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_) {
    os << (first ? "" : ",") << "\n    " << json_quote(name) << ": "
       << fmt_value(value);
    first = false;
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ",") << "\n    " << json_quote(name)
       << ": {\"count\": " << h.count() << ", \"sum\": " << fmt_value(h.sum())
       << ", \"buckets\": [";
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      os << (i ? "," : "") << "{\"le\": " << fmt_value(h.bounds()[i])
         << ", \"count\": " << h.bucket_counts()[i] << "}";
    }
    os << "]}";
    first = false;
  }
  os << "\n  }\n}\n";
  return os.str();
}

void MetricsRegistry::write_snapshot(const std::string& path) const {
  std::ofstream out(path);
  MEDA_REQUIRE(out.is_open(), "cannot open " + path + " for writing");
  out << (path.size() >= 5 && path.substr(path.size() - 5) == ".json"
              ? snapshot_json()
              : snapshot_text());
}

}  // namespace meda::obs
