#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "obs/trace.hpp"
#include "util/check.hpp"

namespace meda::obs {

namespace {

/// Exponent e such that a positive value lands in the log2 bucket
/// (2^(e-1), 2^e]. Exact powers of two land on their own bound, mirroring
/// the cumulative `value ≤ bound` convention of the fixed layouts.
int log2_bucket(double value) {
  int e = 0;
  const double m = std::frexp(value, &e);  // value = m * 2^e, m in [0.5, 1)
  return m == 0.5 ? e - 1 : e;
}

}  // namespace

Histogram::Histogram(std::span<const double> upper_bounds)
    : bounds_(upper_bounds.begin(), upper_bounds.end()),
      counts_(upper_bounds.size(), 0) {
  MEDA_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()),
               "histogram bounds must ascend");
}

Histogram Histogram::log2() {
  Histogram h;
  h.kind_ = Kind::kLog2;
  return h;
}

void Histogram::observe(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  if (kind_ == Kind::kFixed) {
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
      if (value <= bounds_[i]) {
        // Cumulative buckets: every bound ≥ value counts the observation.
        for (std::size_t j = i; j < bounds_.size(); ++j) ++counts_[j];
        return;
      }
    }
  } else if (value <= 0.0) {
    ++zero_count_;
  } else {
    ++log2_counts_[log2_bucket(value)];
  }
}

std::vector<std::pair<double, std::uint64_t>> Histogram::cumulative_buckets()
    const {
  std::vector<std::pair<double, std::uint64_t>> out;
  if (kind_ == Kind::kFixed) {
    out.reserve(bounds_.size());
    for (std::size_t i = 0; i < bounds_.size(); ++i)
      out.emplace_back(bounds_[i], counts_[i]);
    return out;
  }
  // Log2: render a gap-free run of power-of-two bounds spanning the
  // observed exponents, with a leading 0 bound when non-positive values
  // were seen. The rendered list depends only on the observation multiset,
  // which keeps snapshots deterministic at any --jobs count.
  std::uint64_t cumulative = zero_count_;
  if (zero_count_ > 0) out.emplace_back(0.0, cumulative);
  if (!log2_counts_.empty()) {
    const int lo = log2_counts_.begin()->first;
    const int hi = log2_counts_.rbegin()->first;
    for (int e = lo; e <= hi; ++e) {
      const auto it = log2_counts_.find(e);
      if (it != log2_counts_.end()) cumulative += it->second;
      out.emplace_back(std::ldexp(1.0, e), cumulative);
    }
  }
  return out;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  const auto rank = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(count_))));
  double at = max_;  // ranks past the last finite bucket fall in +Inf
  for (const auto& [bound, cumulative] : cumulative_buckets()) {
    if (cumulative >= rank) {
      at = bound;
      break;
    }
  }
  return std::clamp(at, min_, max_);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.count = count_;
  s.sum = sum_;
  s.min = min();
  s.max = max();
  s.p50 = quantile(0.50);
  s.p90 = quantile(0.90);
  s.p99 = quantile(0.99);
  return s;
}

void MetricsRegistry::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) {
    it->second += delta;
  } else {
    counters_.emplace(std::string(name), delta);
  }
}

void MetricsRegistry::set(std::string_view name, double value) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    it->second = value;
  } else {
    gauges_.emplace(std::string(name), value);
  }
}

void MetricsRegistry::observe(std::string_view name, double value,
                              std::span<const double> upper_bounds) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram(upper_bounds))
             .first;
  }
  it->second.observe(value);
}

void MetricsRegistry::observe_log2(std::string_view name, double value) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram::log2()).first;
  }
  it->second.observe(value);
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second : 0;
}

double MetricsRegistry::gauge(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second : 0.0;
}

const Histogram* MetricsRegistry::histogram(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  return it != histograms_.end() ? &it->second : nullptr;
}

namespace {

/// Shortest round-trip double rendering (snapshots must be stable).
std::string fmt_value(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  std::string s = os.str();
  // Prefer the shorter fixed form when it round-trips.
  std::ostringstream brief;
  brief.precision(12);
  brief << v;
  if (std::stod(brief.str()) == v) s = brief.str();
  return s;
}

}  // namespace

std::string MetricsRegistry::snapshot_text() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [name, value] : counters_)
    os << name << ' ' << value << '\n';
  for (const auto& [name, value] : gauges_)
    os << name << ' ' << fmt_value(value) << '\n';
  for (const auto& [name, h] : histograms_) {
    for (const auto& [bound, cumulative] : h.cumulative_buckets())
      os << name << "{le=\"" << fmt_value(bound) << "\"} " << cumulative
         << '\n';
    os << name << "{le=\"+Inf\"} " << h.count() << '\n';
    const HistogramSnapshot s = h.snapshot();
    os << name << "_sum " << fmt_value(s.sum) << '\n';
    os << name << "_count " << s.count << '\n';
    os << name << "_min " << fmt_value(s.min) << '\n';
    os << name << "_max " << fmt_value(s.max) << '\n';
    os << name << "_p50 " << fmt_value(s.p50) << '\n';
    os << name << "_p90 " << fmt_value(s.p90) << '\n';
    os << name << "_p99 " << fmt_value(s.p99) << '\n';
  }
  return os.str();
}

std::string MetricsRegistry::snapshot_json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    os << (first ? "" : ",") << "\n    " << json_quote(name) << ": "
       << value;
    first = false;
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_) {
    os << (first ? "" : ",") << "\n    " << json_quote(name) << ": "
       << fmt_value(value);
    first = false;
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    const HistogramSnapshot s = h.snapshot();
    os << (first ? "" : ",") << "\n    " << json_quote(name)
       << ": {\"count\": " << s.count << ", \"sum\": " << fmt_value(s.sum)
       << ", \"min\": " << fmt_value(s.min)
       << ", \"max\": " << fmt_value(s.max)
       << ", \"p50\": " << fmt_value(s.p50)
       << ", \"p90\": " << fmt_value(s.p90)
       << ", \"p99\": " << fmt_value(s.p99) << ", \"buckets\": [";
    bool first_bucket = true;
    for (const auto& [bound, cumulative] : h.cumulative_buckets()) {
      os << (first_bucket ? "" : ",") << "{\"le\": " << fmt_value(bound)
         << ", \"count\": " << cumulative << "}";
      first_bucket = false;
    }
    os << "]}";
    first = false;
  }
  os << "\n  }\n}\n";
  return os.str();
}

void MetricsRegistry::write_snapshot(const std::string& path) const {
  std::ofstream out(path);
  MEDA_REQUIRE(out.is_open(), "cannot open " + path + " for writing");
  out << (path.size() >= 5 && path.substr(path.size() - 5) == ".json"
              ? snapshot_json()
              : snapshot_text());
}

}  // namespace meda::obs
