#include "obs/events.hpp"

#include <sstream>

#include "obs/trace.hpp"

namespace meda::obs {

std::string format_events(const std::vector<Event>& events) {
  std::ostringstream os;
  for (const Event& e : events) {
    os << "cycle " << e.cycle << " [" << e.category << '/' << e.name << ']';
    if (e.scope >= 0) os << " MO " << e.scope;
    if (!e.detail.empty()) os << ": " << e.detail;
    os << '\n';
  }
  return os.str();
}

std::string events_json(const std::vector<Event>& events) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    os << (i ? ",\n " : "\n ") << "{\"cycle\": " << e.cycle
       << ", \"category\": " << json_quote(e.category)
       << ", \"name\": " << json_quote(e.name) << ", \"mo\": " << e.scope
       << ", \"detail\": " << json_quote(e.detail) << "}";
  }
  os << "\n]\n";
  return os.str();
}

}  // namespace meda::obs
