#pragma once

#include <map>
#include <vector>

#include "assay/mo.hpp"

/// @file concentration.hpp
/// Reagent-concentration bookkeeping through a bioassay. Dilution assays
/// exist to hit target concentrations; this module computes the analyte
/// concentration of every droplet in an MO list so a protocol can be
/// checked against its chemical intent (e.g. the Serial Dilution benchmark
/// must halve the concentration at every stage).
///
/// Model: droplet volume is proportional to its pattern area; mixing is
/// ideal (volume-weighted average); splitting preserves concentration.

namespace meda::assay {

/// Per-MO output concentrations: result[mo][out] is the analyte
/// concentration of that output droplet. Output/discard MOs have no
/// entries.
///
/// @param dispense_concentrations analyte concentration per dispense MO id;
///        dispense MOs not listed default to 0 (pure buffer).
std::vector<std::vector<double>> compute_concentrations(
    const MoList& list, const std::map<int, double>& dispense_concentrations);

/// Concentration of the droplet consumed by a given output/discard MO.
/// Requires the MO to be of type kOutput or kDiscard.
double exit_concentration(
    const MoList& list, int mo_id,
    const std::map<int, double>& dispense_concentrations);

}  // namespace meda::assay
