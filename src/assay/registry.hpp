#pragma once

#include <string>
#include <vector>

#include "assay/mo.hpp"

/// @file registry.hpp
/// Name-based access to the built-in benchmark bioassays, for CLIs,
/// experiment configs and scripts.

namespace meda::assay {

/// One registry entry.
struct BenchmarkInfo {
  std::string key;          ///< CLI-friendly identifier, e.g. "serial-dilution"
  std::string description;  ///< one-line description
};

/// All built-in benchmarks (the six evaluation bioassays, the three Fig. 3
/// bioassays, and the standalone CEP stages), in a stable order.
std::vector<BenchmarkInfo> list_benchmarks();

/// Instantiates a benchmark by key with the given dispensed-droplet area.
/// Throws PreconditionError for unknown keys (message lists valid keys).
MoList make_benchmark(const std::string& key, int droplet_area = 16);

}  // namespace meda::assay
