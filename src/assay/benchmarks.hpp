#pragma once

#include <vector>

#include "assay/mo.hpp"

/// @file benchmarks.hpp
/// The benchmark bioassays used in the paper's evaluation (Section VII) and
/// degradation-pattern study (Section III-C), written as sequencing graphs
/// pre-processed into placed MO lists for the fabricated 60×30 MEDA biochip.
///
/// The six evaluation bioassays (Fig. 15/16): Master-Mix, CEP, Serial
/// Dilution, NuIP, COVID-RAT, COVID-PCR. The three Fig. 3 bioassays: ChIP,
/// multiplex in-vitro, gene expression.
///
/// Each factory takes the dispensed-droplet area (16 = the default 4×4
/// pattern; the Fig. 3 sweep uses 9/16/25/36). The three Fig. 3 bioassays
/// are placed so every droplet pattern fits the 60×30 array for areas in
/// [9, 36]; the evaluation bioassays are placed for the default area.

namespace meda::assay {

inline constexpr int kChipWidth = 60;
inline constexpr int kChipHeight = 30;

/// Fluent MO-list builder used by the benchmark factories (and available for
/// user-defined bioassays). Methods return the new MO's id.
class AssayBuilder {
 public:
  explicit AssayBuilder(std::string name) { list_.name = std::move(name); }

  int dispense(double cx, double cy, int area);
  int mix(PreRef a, PreRef b, double cx, double cy, int hold_cycles = 8);
  int split(PreRef a, double cx0, double cy0, double cx1, double cy1);
  int dilute(PreRef a, PreRef b, double cx0, double cy0, double cx1,
             double cy1, int hold_cycles = 8);
  int mag(PreRef a, double cx, double cy, int hold_cycles = 15);
  int output(PreRef a, double cx, double cy);
  int discard(PreRef a, double cx, double cy);

  /// Finalizes the list (no validation; call assay::validate separately).
  MoList build() && { return std::move(list_); }

 private:
  int push(Mo mo);

  MoList list_;
};

// -- The six evaluation bioassays (Fig. 15/16) ------------------------------

/// PCR master-mix preparation: combine primer, polymerase and buffer, verify,
/// and output. The shortest benchmark.
MoList master_mix(int droplet_area = 16);

/// CEP bioprotocol: cell lysis, mRNA extraction, and mRNA purification as
/// three chained stages with bead-based separation.
MoList cep(int droplet_area = 16);

/// The three constituent bioassays of the CEP protocol, runnable standalone
/// (the paper names them explicitly in Section VII-A).
MoList cep_cell_lysis(int droplet_area = 16);
MoList cep_mrna_extraction(int droplet_area = 16);
MoList cep_mrna_purification(int droplet_area = 16);

/// Serial dilution: a chain of four dilution stages, each halving the sample
/// concentration [40]. The longest transport distances of the suite.
MoList serial_dilution(int droplet_area = 16);

/// Nucleosome immunoprecipitation (NuIP) [17]: antibody incubation, bead
/// capture, two wash stages, elution. The longest benchmark.
MoList nuip(int droplet_area = 16);

/// COVID-19 rapid antigen test: mix sample with antigen reagent and read.
MoList covid_rat(int droplet_area = 16);

/// COVID-19 PCR test: lysis, bead-based RNA capture, master-mix addition,
/// thermocycling (modeled as held sensing steps), detection.
MoList covid_pcr(int droplet_area = 16);

// -- The Fig. 3 degradation-pattern bioassays -------------------------------

/// Chromatin immunoprecipitation (ChIP).
MoList chip_ip(int droplet_area = 16);

/// Multiplexed in-vitro diagnostics: two independent assay chains running
/// concurrently.
MoList multiplex_invitro(int droplet_area = 16);

/// Gene-expression analysis: sample preparation followed by a split into two
/// probe branches.
MoList gene_expression(int droplet_area = 16);

/// The six Fig. 15/16 bioassays, in the paper's order.
std::vector<MoList> evaluation_suite(int droplet_area = 16);

/// The three Fig. 3 bioassays.
std::vector<MoList> correlation_suite(int droplet_area = 16);

}  // namespace meda::assay
