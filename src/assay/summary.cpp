#include "assay/summary.hpp"

#include <algorithm>
#include <cmath>

#include "assay/helper.hpp"
#include "util/check.hpp"

namespace meda::assay {

AssaySummary summarize(const MoList& list, const Rect& chip) {
  validate(list, chip);
  AssaySummary summary;
  summary.operations = static_cast<int>(list.ops.size());

  std::vector<int> depth(list.ops.size(), 1);
  for (const Mo& mo : list.ops) {
    ++summary.counts[static_cast<std::size_t>(mo.type)];
    summary.total_hold_cycles += mo.hold_cycles;
    switch (mo.type) {
      case MoType::kDispense:
        ++summary.droplets_created;
        break;
      case MoType::kSplit:
      case MoType::kDilute:
        // One input becomes two droplets (dilute first merges, then the
        // split re-creates the second droplet).
        ++summary.droplets_created;
        break;
      default:
        break;
    }
    for (const PreRef& ref : mo.pre)
      depth[static_cast<std::size_t>(mo.id)] =
          std::max(depth[static_cast<std::size_t>(mo.id)],
                   depth[static_cast<std::size_t>(ref.mo)] + 1);
  }
  summary.critical_path = *std::max_element(depth.begin(), depth.end());

  for (const RoutingJob& rj : make_all_routing_jobs(list, chip)) {
    if (!rj.start.valid()) continue;  // dispense entry legs excluded
    summary.transport_distance +=
        std::abs(rj.start.center_x() - rj.goal.center_x()) +
        std::abs(rj.start.center_y() - rj.goal.center_y());
  }
  return summary;
}

}  // namespace meda::assay
