#include "assay/registry.hpp"

#include <functional>

#include "assay/benchmarks.hpp"
#include "util/check.hpp"

namespace meda::assay {

namespace {

struct Entry {
  const char* key;
  const char* description;
  MoList (*factory)(int);
};

constexpr Entry kEntries[] = {
    {"master-mix", "PCR master-mix preparation (shortest benchmark)",
     &master_mix},
    {"cep", "CEP bioprotocol: lysis + mRNA extraction + purification", &cep},
    {"serial-dilution", "four-stage 1:1 dilution ladder", &serial_dilution},
    {"nuip", "nucleosome immunoprecipitation (longest benchmark)", &nuip},
    {"covid-rat", "COVID-19 rapid antigen test", &covid_rat},
    {"covid-pcr", "COVID-19 PCR test with thermocycling", &covid_pcr},
    {"chip-ip", "chromatin immunoprecipitation (Fig. 3 study)", &chip_ip},
    {"multiplex", "two concurrent in-vitro diagnostic chains (Fig. 3 study)",
     &multiplex_invitro},
    {"gene-expression", "sample prep + two probe branches (Fig. 3 study)",
     &gene_expression},
    {"cep-lysis", "CEP stage 1: cell lysis (standalone)", &cep_cell_lysis},
    {"cep-extraction", "CEP stage 2: mRNA extraction (standalone)",
     &cep_mrna_extraction},
    {"cep-purification", "CEP stage 3: mRNA purification (standalone)",
     &cep_mrna_purification},
};

}  // namespace

std::vector<BenchmarkInfo> list_benchmarks() {
  std::vector<BenchmarkInfo> out;
  for (const Entry& entry : kEntries)
    out.push_back(BenchmarkInfo{entry.key, entry.description});
  return out;
}

MoList make_benchmark(const std::string& key, int droplet_area) {
  for (const Entry& entry : kEntries)
    if (key == entry.key) return entry.factory(droplet_area);
  std::string known;
  for (const Entry& entry : kEntries) {
    if (!known.empty()) known += ", ";
    known += entry.key;
  }
  throw PreconditionError("unknown benchmark '" + key + "' (known: " + known +
                          ")");
}

}  // namespace meda::assay
