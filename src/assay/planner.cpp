#include "assay/planner.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/check.hpp"

namespace meda::assay {

namespace {

/// Output droplet areas per node (same propagation as validate()).
std::vector<std::vector<int>> propagate_areas(
    const std::vector<SgNode>& nodes) {
  std::vector<std::vector<int>> areas;
  areas.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const SgNode& node = nodes[i];
    MEDA_REQUIRE(static_cast<int>(node.pre.size()) == input_count(node.type),
                 "node " + std::to_string(i) +
                     ": wrong number of predecessor references");
    std::vector<int> in;
    for (const PreRef& ref : node.pre) {
      MEDA_REQUIRE(ref.mo >= 0 && ref.mo < static_cast<int>(i),
                   "node " + std::to_string(i) +
                       ": predecessor must point backwards");
      const auto& outs = areas[static_cast<std::size_t>(ref.mo)];
      MEDA_REQUIRE(ref.out >= 0 && ref.out < static_cast<int>(outs.size()),
                   "node " + std::to_string(i) +
                       ": predecessor output index out of range");
      in.push_back(outs[static_cast<std::size_t>(ref.out)]);
    }
    switch (node.type) {
      case MoType::kDispense:
        MEDA_REQUIRE(node.area >= 1, "dispense area must be positive");
        areas.push_back({node.area});
        break;
      case MoType::kMix:
        areas.push_back({in[0] + in[1]});
        break;
      case MoType::kSplit:
        areas.push_back({(in[0] + 1) / 2, in[0] / 2});
        break;
      case MoType::kDilute: {
        const int total = in[0] + in[1];
        areas.push_back({(total + 1) / 2, total / 2});
        break;
      }
      case MoType::kMagSense:
        areas.push_back({in[0]});
        break;
      case MoType::kOutput:
      case MoType::kDiscard:
        // No outputs; remember the consumed area (negated sentinel) for
        // port sizing. Successors referencing it are rejected by the final
        // validate().
        areas.push_back({-in[0]});
        break;
    }
  }
  return areas;
}

/// Geometry allocator for the placement bands and ports.
class SiteAllocator {
 public:
  SiteAllocator(const Rect& chip, int pitch)
      : chip_(chip), pitch_(pitch) {}

  /// Dispense ports: along the south edge west→east, then the north edge.
  Loc dispense_port(const DropletSize& size) {
    const int k = dispense_count_++;
    const int per_edge = std::max(1, chip_.width() / pitch_);
    const double cx =
        chip_.xa + (k % per_edge + 0.5) * static_cast<double>(pitch_);
    MEDA_REQUIRE(k < 2 * per_edge, "planner ran out of dispense ports");
    if (k < per_edge)
      return Loc{cx, chip_.ya + (size.h - 1) / 2.0 + 1.0};
    return Loc{cx, chip_.yb - (size.h - 1) / 2.0 - 1.0};
  }

  /// Processing sites: interior bands (middle, lower, upper), west→east.
  Loc processing_site(const DropletSize& /*size*/) {
    const int k = processing_count_++;
    const int ncols =
        std::max(1, (chip_.width() - pitch_) / pitch_);
    const int col = k % ncols;
    const int band = k / ncols;
    MEDA_REQUIRE(band < 3, "planner ran out of processing sites");
    const double mid_y = (chip_.ya + chip_.yb) / 2.0;
    const double cy = band == 0   ? mid_y
                      : band == 1 ? mid_y - pitch_
                                  : mid_y + pitch_;
    return Loc{chip_.xa + pitch_ + col * static_cast<double>(pitch_), cy};
  }

  /// Secondary location for a split/dilute output: one pitch above the
  /// site, or below when the top does not fit.
  Loc secondary_site(const Loc& primary, const DropletSize& size) const {
    const double above = primary.y + pitch_;
    if (above + size.h / 2.0 + 1.0 <= chip_.yb)
      return Loc{primary.x, above};
    return Loc{primary.x, primary.y - pitch_};
  }

  /// Output/discard ports: along the east edge (staggered vertically),
  /// overflowing onto the north edge counted from its east end.
  Loc exit_port(const DropletSize& size) {
    const int k = exit_count_++;
    const int per_col = std::max(1, chip_.height() / pitch_);
    if (k < per_col) {
      const double cx = chip_.xb - (size.w - 1) / 2.0 - 1.0;
      const double mid_y = (chip_.ya + chip_.yb) / 2.0;
      const double offset = ((k + 1) / 2) * static_cast<double>(pitch_);
      const double cy = k % 2 == 0 ? mid_y + offset : mid_y - offset;
      // Keep the pattern on the chip (ports near the corners clamp).
      const double lo = chip_.ya + (size.h - 1) / 2.0;
      const double hi = chip_.yb - (size.h - 1) / 2.0;
      return Loc{cx, std::clamp(cy, lo, hi)};
    }
    const int k2 = k - per_col;
    const int per_edge = std::max(1, chip_.width() / pitch_);
    MEDA_REQUIRE(k2 < per_edge, "planner ran out of exit ports");
    return Loc{chip_.xb - (k2 + 0.5) * static_cast<double>(pitch_),
               chip_.yb - (size.h - 1) / 2.0 - 1.0};
  }

 private:
  Rect chip_;
  int pitch_;
  int dispense_count_ = 0;
  int processing_count_ = 0;
  int exit_count_ = 0;
};

}  // namespace

MoList plan_placement(const std::string& name,
                      const std::vector<SgNode>& nodes, const Rect& chip,
                      const PlannerConfig& config) {
  MEDA_REQUIRE(!nodes.empty(), "empty sequencing graph");
  MEDA_REQUIRE(chip.valid(), "invalid chip bounds");
  MEDA_REQUIRE(config.site_margin >= 1, "site margin must be positive");

  const auto areas = propagate_areas(nodes);

  // The site pitch accommodates the largest pattern anywhere in the graph;
  // split/dilute sites additionally need room for the side-by-side split
  // box (both halves plus the separating column).
  int max_dim = 1;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (int a : areas[i]) {
      const DropletSize size = size_for_area(std::abs(a));
      max_dim = std::max({max_dim, size.w, size.h});
    }
    if (nodes[i].type == MoType::kSplit ||
        nodes[i].type == MoType::kDilute) {
      const DropletSize s0 = size_for_area(areas[i][0]);
      const DropletSize s1 = size_for_area(areas[i][1]);
      max_dim = std::max(max_dim, s0.w + 1 + s1.w);
    }
  }
  const int pitch = max_dim + config.site_margin;

  SiteAllocator allocator(chip, pitch);
  MoList list;
  list.name = name;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const SgNode& node = nodes[i];
    Mo mo;
    mo.id = static_cast<int>(i);
    mo.type = node.type;
    mo.pre = node.pre;
    mo.area = node.area;
    mo.hold_cycles = node.hold_cycles;
    switch (node.type) {
      case MoType::kDispense: {
        mo.locs = {allocator.dispense_port(size_for_area(node.area))};
        break;
      }
      case MoType::kMix:
      case MoType::kMagSense: {
        mo.locs = {
            allocator.processing_site(size_for_area(areas[i].front()))};
        break;
      }
      case MoType::kSplit:
      case MoType::kDilute: {
        const Loc primary =
            allocator.processing_site(size_for_area(areas[i][0]));
        mo.locs = {primary, allocator.secondary_site(
                                primary, size_for_area(areas[i][1]))};
        break;
      }
      case MoType::kOutput:
      case MoType::kDiscard: {
        mo.locs = {allocator.exit_port(size_for_area(-areas[i].front()))};
        break;
      }
    }
    list.ops.push_back(std::move(mo));
  }
  validate(list, chip);  // guarantees the plan is runnable geometry
  return list;
}

std::vector<SgNode> to_sequence_graph(const MoList& list) {
  std::vector<SgNode> nodes;
  nodes.reserve(list.ops.size());
  for (const Mo& mo : list.ops) {
    nodes.push_back(SgNode{mo.type, mo.pre, mo.area, mo.hold_cycles});
  }
  return nodes;
}

}  // namespace meda::assay
