#pragma once

#include <iosfwd>
#include <string>

#include "assay/mo.hpp"

/// @file parser.hpp
/// Text format for bioassay sequencing graphs, so custom bioassays can be
/// defined without recompiling. One microfluidic operation per line:
///
/// ```
/// # PCR master-mix preparation
/// name Master-Mix
/// M0 = dis 17.5 3.5 16          # dispense: cx cy area
/// M1 = dis 17.5 25.5 16
/// M2 = mix M0 M1 11 15 hold=8   # mix: refA refB cx cy [hold=N]
/// M3 = spt M2 11 8 11 22        # split: ref cx0 cy0 cx1 cy1
/// M4 = dsc M3.1 11 26           # discard: ref cx cy
/// M5 = mag M3.0 30 15 hold=15   # sense/process: ref cx cy [hold=N]
/// M6 = out M5 54 15             # output: ref cx cy
/// ```
///
/// References are `M<k>` (first output of MO k) or `M<k>.<i>` (output i).
/// Operation names must be `M<position>` in order. `dlt` takes
/// `refA refB cx0 cy0 cx1 cy1 [hold=N]`. Blank lines and `#` comments are
/// ignored. Errors throw PreconditionError with the line number.

namespace meda::assay {

/// Parses an assay description from a stream.
MoList parse_assay(std::istream& in);

/// Parses an assay description from a string.
MoList parse_assay_string(const std::string& text);

/// Loads and parses an assay file. Throws on I/O failure.
MoList load_assay_file(const std::string& path);

/// Serializes an MO list back into the text format (round-trips through
/// parse_assay_string).
std::string to_assay_text(const MoList& list);

}  // namespace meda::assay
