#include "assay/parser.hpp"

#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace meda::assay {

namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  throw PreconditionError("assay parse error at line " +
                          std::to_string(line) + ": " + what);
}

/// Splits a line into whitespace-separated tokens, dropping '#' comments.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    if (token[0] == '#') break;
    tokens.push_back(token);
  }
  return tokens;
}

/// Parses "M<k>" or "M<k>.<i>".
PreRef parse_ref(const std::string& token, int line, int current_id) {
  if (token.size() < 2 || token[0] != 'M') fail(line, "bad ref " + token);
  PreRef ref;
  try {
    const auto dot = token.find('.');
    ref.mo = std::stoi(token.substr(1, dot - 1));
    ref.out = dot == std::string::npos
                  ? 0
                  : std::stoi(token.substr(dot + 1));
  } catch (const std::exception&) {
    fail(line, "bad ref " + token);
  }
  if (ref.mo < 0 || ref.mo >= current_id)
    fail(line, "ref " + token + " must point to an earlier MO");
  return ref;
}

double parse_num(const std::string& token, int line) {
  try {
    std::size_t used = 0;
    const double v = std::stod(token, &used);
    if (used != token.size()) fail(line, "bad number " + token);
    return v;
  } catch (const PreconditionError&) {
    throw;
  } catch (const std::exception&) {
    fail(line, "bad number " + token);
  }
}

/// Consumes an optional trailing "hold=N" token.
int parse_hold(std::vector<std::string>& tokens, int line) {
  if (tokens.empty()) return 0;
  const std::string& last = tokens.back();
  if (last.rfind("hold=", 0) != 0) return 0;
  const int hold = static_cast<int>(parse_num(last.substr(5), line));
  if (hold < 0) fail(line, "negative hold");
  tokens.pop_back();
  return hold;
}

void expect_arity(const std::vector<std::string>& args, std::size_t n,
                  int line, const std::string& type) {
  if (args.size() != n)
    fail(line, type + " expects " + std::to_string(n) + " arguments, got " +
                   std::to_string(args.size()));
}

}  // namespace

MoList parse_assay(std::istream& in) {
  MoList list;
  list.name = "unnamed";
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::vector<std::string> tokens = tokenize(raw);
    if (tokens.empty()) continue;

    if (tokens[0] == "name") {
      // Everything after the keyword (re-joined) is the assay name.
      std::string name;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        if (i > 1) name += ' ';
        name += tokens[i];
      }
      if (name.empty()) fail(line_no, "empty assay name");
      list.name = name;
      continue;
    }

    // "M<k> = <type> <args...>"
    if (tokens.size() < 3 || tokens[1] != "=")
      fail(line_no, "expected 'M<k> = <type> ...'");
    const int id = static_cast<int>(list.ops.size());
    if (tokens[0] != "M" + std::to_string(id))
      fail(line_no, "expected operation name M" + std::to_string(id) +
                        ", got " + tokens[0]);
    const std::string type = tokens[2];
    std::vector<std::string> args(tokens.begin() + 3, tokens.end());
    const int hold = parse_hold(args, line_no);

    Mo mo;
    mo.id = id;
    mo.hold_cycles = hold;
    if (type == "dis") {
      expect_arity(args, 3, line_no, type);
      mo.type = MoType::kDispense;
      mo.locs = {Loc{parse_num(args[0], line_no), parse_num(args[1], line_no)}};
      mo.area = static_cast<int>(parse_num(args[2], line_no));
      if (mo.area < 1) fail(line_no, "dispense area must be positive");
    } else if (type == "mix" || type == "dlt") {
      const bool is_mix = type == "mix";
      expect_arity(args, is_mix ? 4 : 6, line_no, type);
      mo.type = is_mix ? MoType::kMix : MoType::kDilute;
      mo.pre = {parse_ref(args[0], line_no, id),
                parse_ref(args[1], line_no, id)};
      mo.locs = {Loc{parse_num(args[2], line_no), parse_num(args[3], line_no)}};
      if (!is_mix)
        mo.locs.push_back(
            Loc{parse_num(args[4], line_no), parse_num(args[5], line_no)});
    } else if (type == "spt") {
      expect_arity(args, 5, line_no, type);
      mo.type = MoType::kSplit;
      mo.pre = {parse_ref(args[0], line_no, id)};
      mo.locs = {Loc{parse_num(args[1], line_no), parse_num(args[2], line_no)},
                 Loc{parse_num(args[3], line_no), parse_num(args[4], line_no)}};
    } else if (type == "mag" || type == "out" || type == "dsc") {
      expect_arity(args, 3, line_no, type);
      mo.type = type == "mag"   ? MoType::kMagSense
                : type == "out" ? MoType::kOutput
                                : MoType::kDiscard;
      mo.pre = {parse_ref(args[0], line_no, id)};
      mo.locs = {Loc{parse_num(args[1], line_no), parse_num(args[2], line_no)}};
    } else {
      fail(line_no, "unknown operation type '" + type + "'");
    }
    if (hold != 0 && (mo.type == MoType::kDispense ||
                      mo.type == MoType::kOutput ||
                      mo.type == MoType::kDiscard ||
                      mo.type == MoType::kSplit))
      fail(line_no, "hold= is only valid for mix/dlt/mag");
    list.ops.push_back(std::move(mo));
  }
  if (list.ops.empty()) fail(line_no, "no operations");
  return list;
}

MoList parse_assay_string(const std::string& text) {
  std::istringstream is(text);
  return parse_assay(is);
}

MoList load_assay_file(const std::string& path) {
  std::ifstream in(path);
  MEDA_REQUIRE(in.is_open(), "cannot open assay file " + path);
  return parse_assay(in);
}

namespace {

std::string fmt_loc(const Loc& loc) {
  std::ostringstream os;
  os << loc.x << ' ' << loc.y;
  return os.str();
}

std::string fmt_ref(const PreRef& ref) {
  std::string out = "M" + std::to_string(ref.mo);
  if (ref.out != 0) out += "." + std::to_string(ref.out);
  return out;
}

}  // namespace

std::string to_assay_text(const MoList& list) {
  std::ostringstream os;
  os << "name " << list.name << '\n';
  for (const Mo& mo : list.ops) {
    os << 'M' << mo.id << " = " << to_string(mo.type);
    switch (mo.type) {
      case MoType::kDispense:
        os << ' ' << fmt_loc(mo.locs[0]) << ' ' << mo.area;
        break;
      case MoType::kMix:
        os << ' ' << fmt_ref(mo.pre[0]) << ' ' << fmt_ref(mo.pre[1]) << ' '
           << fmt_loc(mo.locs[0]);
        break;
      case MoType::kDilute:
        os << ' ' << fmt_ref(mo.pre[0]) << ' ' << fmt_ref(mo.pre[1]) << ' '
           << fmt_loc(mo.locs[0]) << ' ' << fmt_loc(mo.locs[1]);
        break;
      case MoType::kSplit:
        os << ' ' << fmt_ref(mo.pre[0]) << ' ' << fmt_loc(mo.locs[0]) << ' '
           << fmt_loc(mo.locs[1]);
        break;
      case MoType::kMagSense:
      case MoType::kOutput:
      case MoType::kDiscard:
        os << ' ' << fmt_ref(mo.pre[0]) << ' ' << fmt_loc(mo.locs[0]);
        break;
    }
    if (mo.hold_cycles > 0 && (mo.type == MoType::kMix ||
                               mo.type == MoType::kDilute ||
                               mo.type == MoType::kMagSense))
      os << " hold=" << mo.hold_cycles;
    os << '\n';
  }
  return os.str();
}

}  // namespace meda::assay
