#include "assay/concentration.hpp"

#include "util/check.hpp"

namespace meda::assay {

std::vector<std::vector<double>> compute_concentrations(
    const MoList& list,
    const std::map<int, double>& dispense_concentrations) {
  // Areas (volumes) propagate exactly as in validate(); concentrations mix
  // volume-weighted.
  std::vector<std::vector<int>> areas;
  std::vector<std::vector<double>> conc;
  areas.reserve(list.ops.size());
  conc.reserve(list.ops.size());

  for (const Mo& mo : list.ops) {
    std::vector<int> in_area;
    std::vector<double> in_conc;
    for (const PreRef& ref : mo.pre) {
      MEDA_REQUIRE(ref.mo >= 0 && ref.mo < mo.id,
                   "predecessor reference must point backwards");
      const auto& pre_areas = areas[static_cast<std::size_t>(ref.mo)];
      MEDA_REQUIRE(
          ref.out >= 0 && ref.out < static_cast<int>(pre_areas.size()),
          "predecessor output index out of range");
      in_area.push_back(pre_areas[static_cast<std::size_t>(ref.out)]);
      in_conc.push_back(conc[static_cast<std::size_t>(ref.mo)]
                            [static_cast<std::size_t>(ref.out)]);
    }
    switch (mo.type) {
      case MoType::kDispense: {
        const auto it = dispense_concentrations.find(mo.id);
        const double c = it == dispense_concentrations.end() ? 0.0
                                                             : it->second;
        MEDA_REQUIRE(c >= 0.0, "concentration must be non-negative");
        areas.push_back({mo.area});
        conc.push_back({c});
        break;
      }
      case MoType::kMix:
      case MoType::kDilute: {
        const int total = in_area[0] + in_area[1];
        const double mixed = (in_conc[0] * in_area[0] +
                              in_conc[1] * in_area[1]) /
                             static_cast<double>(total);
        if (mo.type == MoType::kMix) {
          areas.push_back({total});
          conc.push_back({mixed});
        } else {
          areas.push_back({(total + 1) / 2, total / 2});
          conc.push_back({mixed, mixed});
        }
        break;
      }
      case MoType::kSplit:
        areas.push_back({(in_area[0] + 1) / 2, in_area[0] / 2});
        conc.push_back({in_conc[0], in_conc[0]});
        break;
      case MoType::kMagSense:
        areas.push_back({in_area[0]});
        conc.push_back({in_conc[0]});
        break;
      case MoType::kOutput:
      case MoType::kDiscard:
        areas.push_back({});
        conc.push_back({});
        break;
    }
  }
  return conc;
}

double exit_concentration(
    const MoList& list, int mo_id,
    const std::map<int, double>& dispense_concentrations) {
  const Mo& mo = list.op(mo_id);
  MEDA_REQUIRE(mo.type == MoType::kOutput || mo.type == MoType::kDiscard,
               "exit_concentration expects an output/discard MO");
  const auto conc = compute_concentrations(list, dispense_concentrations);
  const PreRef& ref = mo.pre[0];
  return conc[static_cast<std::size_t>(ref.mo)]
             [static_cast<std::size_t>(ref.out)];
}

}  // namespace meda::assay
