#pragma once

#include <array>

#include "assay/mo.hpp"

/// @file summary.hpp
/// Structural summary of a planned bioassay: operation mix, dependency
/// depth, processing time and on-chip transport demand. Useful for
/// comparing benchmark sizes (the paper orders its evaluation by bioassay
/// length) and for sanity-checking custom assays before execution.

namespace meda::assay {

/// Aggregate structural metrics of an MO list.
struct AssaySummary {
  int operations = 0;
  /// Operation count per MoType (indexed by the enum's underlying value).
  std::array<int, 7> counts{};
  /// Total droplets ever created (dispensed + produced by splits/dilutions).
  int droplets_created = 0;
  /// Total in-place processing time (Σ hold_cycles).
  int total_hold_cycles = 0;
  /// Σ over routing jobs with on-chip starts of the Manhattan distance
  /// between the start and goal centers — a lower bound on transport
  /// cycles (dispense entry legs are excluded; they depend on the port).
  double transport_distance = 0.0;
  /// Length (in operations) of the longest dependency chain.
  int critical_path = 0;

  int count(MoType type) const {
    return counts[static_cast<std::size_t>(type)];
  }
};

/// Computes the summary. Requires a list that validates against @p chip.
AssaySummary summarize(const MoList& list, const Rect& chip);

}  // namespace meda::assay
