#include "assay/benchmarks.hpp"

#include "util/check.hpp"

namespace meda::assay {

int AssayBuilder::push(Mo mo) {
  mo.id = static_cast<int>(list_.ops.size());
  list_.ops.push_back(std::move(mo));
  return list_.ops.back().id;
}

int AssayBuilder::dispense(double cx, double cy, int area) {
  MEDA_REQUIRE(area >= 1, "dispense area must be positive");
  Mo mo;
  mo.type = MoType::kDispense;
  mo.locs = {Loc{cx, cy}};
  mo.area = area;
  return push(std::move(mo));
}

int AssayBuilder::mix(PreRef a, PreRef b, double cx, double cy,
                      int hold_cycles) {
  Mo mo;
  mo.type = MoType::kMix;
  mo.pre = {a, b};
  mo.locs = {Loc{cx, cy}};
  mo.hold_cycles = hold_cycles;
  return push(std::move(mo));
}

int AssayBuilder::split(PreRef a, double cx0, double cy0, double cx1,
                        double cy1) {
  Mo mo;
  mo.type = MoType::kSplit;
  mo.pre = {a};
  mo.locs = {Loc{cx0, cy0}, Loc{cx1, cy1}};
  return push(std::move(mo));
}

int AssayBuilder::dilute(PreRef a, PreRef b, double cx0, double cy0,
                         double cx1, double cy1, int hold_cycles) {
  Mo mo;
  mo.type = MoType::kDilute;
  mo.pre = {a, b};
  mo.locs = {Loc{cx0, cy0}, Loc{cx1, cy1}};
  mo.hold_cycles = hold_cycles;
  return push(std::move(mo));
}

int AssayBuilder::mag(PreRef a, double cx, double cy, int hold_cycles) {
  Mo mo;
  mo.type = MoType::kMagSense;
  mo.pre = {a};
  mo.locs = {Loc{cx, cy}};
  mo.hold_cycles = hold_cycles;
  return push(std::move(mo));
}

int AssayBuilder::output(PreRef a, double cx, double cy) {
  Mo mo;
  mo.type = MoType::kOutput;
  mo.pre = {a};
  mo.locs = {Loc{cx, cy}};
  return push(std::move(mo));
}

int AssayBuilder::discard(PreRef a, double cx, double cy) {
  Mo mo;
  mo.type = MoType::kDiscard;
  mo.pre = {a};
  mo.locs = {Loc{cx, cy}};
  return push(std::move(mo));
}

MoList master_mix(int droplet_area) {
  AssayBuilder b("Master-Mix");
  const int primer = b.dispense(17.5, 3.5, droplet_area);
  const int polymerase = b.dispense(17.5, 25.5, droplet_area);
  const int premix = b.mix({primer}, {polymerase}, 11.0, 15.0, 8);
  const int buffer = b.dispense(45.5, 3.5, droplet_area);
  const int full = b.mix({premix}, {buffer}, 30.0, 15.0, 8);
  const int sensed = b.mag({full}, 45.0, 15.0, 15);
  b.output({sensed}, 54.0, 15.0);
  return std::move(b).build();
}

MoList cep(int droplet_area) {
  AssayBuilder b("CEP");
  // Stage 1 — cell lysis.
  const int cells = b.dispense(4.5, 3.5, droplet_area);
  const int lysis = b.dispense(4.5, 25.5, droplet_area);
  const int lysed = b.mix({cells}, {lysis}, 11.0, 15.0, 10);
  const int lysed_s = b.mag({lysed}, 19.0, 15.0, 15);
  // Stage 2 — mRNA extraction (bead capture, discard supernatant).
  const int cut1 = b.split({lysed_s}, 19.0, 8.0, 19.0, 22.0);
  b.discard({cut1, 1}, 19.0, 26.0);
  const int beads = b.dispense(29.5, 3.5, droplet_area);
  const int captured = b.mix({cut1, 0}, {beads}, 29.0, 15.0, 10);
  const int captured_s = b.mag({captured}, 37.0, 15.0, 15);
  const int cut2 = b.split({captured_s}, 37.0, 8.0, 37.0, 22.0);
  b.discard({cut2, 1}, 37.0, 26.0);
  // Stage 3 — mRNA purification (wash and elute).
  const int wash = b.dispense(47.5, 3.5, droplet_area);
  const int washed = b.mix({cut2, 0}, {wash}, 47.0, 15.0, 10);
  const int washed_s = b.mag({washed}, 52.0, 15.0, 15);
  b.output({washed_s}, 55.0, 15.0);
  return std::move(b).build();
}

MoList cep_cell_lysis(int droplet_area) {
  // Stage 1 of CEP standalone: lyse the cells and pellet the debris.
  AssayBuilder b("CEP: cell lysis");
  const int cells = b.dispense(4.5, 3.5, droplet_area);
  const int lysis = b.dispense(4.5, 25.5, droplet_area);
  const int lysed = b.mix({cells}, {lysis}, 16.0, 15.0, 10);
  const int lysed_s = b.mag({lysed}, 30.0, 15.0, 15);
  const int cut = b.split({lysed_s}, 30.0, 8.0, 30.0, 22.0);
  b.discard({cut, 1}, 30.0, 26.0);
  b.output({cut, 0}, 54.0, 9.0);
  return std::move(b).build();
}

MoList cep_mrna_extraction(int droplet_area) {
  // Stage 2 standalone: bead-capture the mRNA from a lysate droplet.
  AssayBuilder b("CEP: mRNA extraction");
  const int lysate = b.dispense(4.5, 15.5, droplet_area);
  const int beads = b.dispense(18.5, 3.5, droplet_area);
  const int captured = b.mix({lysate}, {beads}, 24.0, 15.0, 10);
  const int captured_s = b.mag({captured}, 36.0, 15.0, 15);
  const int cut = b.split({captured_s}, 36.0, 8.0, 36.0, 22.0);
  b.discard({cut, 1}, 36.0, 26.0);
  b.output({cut, 0}, 54.0, 9.0);
  return std::move(b).build();
}

MoList cep_mrna_purification(int droplet_area) {
  // Stage 3 standalone: wash the captured mRNA and elute.
  AssayBuilder b("CEP: mRNA purification");
  const int captured = b.dispense(4.5, 15.5, droplet_area);
  const int wash = b.dispense(18.5, 3.5, droplet_area);
  const int washed = b.mix({captured}, {wash}, 24.0, 15.0, 10);
  const int washed_s = b.mag({washed}, 34.0, 15.0, 15);
  const int cut = b.split({washed_s}, 34.0, 8.0, 34.0, 22.0);
  b.discard({cut, 1}, 34.0, 26.0);
  const int elution = b.dispense(42.5, 3.5, droplet_area);
  const int eluted = b.mix({cut, 0}, {elution}, 44.0, 9.0, 10);
  b.output({eluted}, 54.0, 9.0);
  return std::move(b).build();
}

MoList serial_dilution(int droplet_area) {
  AssayBuilder b("Serial Dilution");
  // A four-stage dilution ladder; each stage halves the concentration and
  // discards the byproduct. Droplet areas stay constant along the chain.
  PreRef sample{b.dispense(3.5, 15.5, droplet_area)};
  for (int stage = 0; stage < 4; ++stage) {
    const double x = 11.0 + 12.0 * stage;  // 11, 23, 35, 47
    const int buffer = b.dispense(x, 3.5, droplet_area);
    const int dlt =
        b.dilute(sample, {buffer}, x, 15.0, x, 22.0, 8);
    b.discard({dlt, 1}, x, 26.0);
    sample = PreRef{dlt, 0};
  }
  b.output(sample, 55.0, 15.0);
  return std::move(b).build();
}

MoList nuip(int droplet_area) {
  AssayBuilder b("NuIP");
  const int chromatin = b.dispense(4.5, 3.5, droplet_area);
  const int antibody = b.dispense(4.5, 25.5, droplet_area);
  const int incubated = b.mix({chromatin}, {antibody}, 9.0, 15.0, 12);
  const int incubated_s = b.mag({incubated}, 14.0, 15.0, 20);
  const int beads = b.dispense(14.5, 3.5, droplet_area);
  const int bound = b.mix({incubated_s}, {beads}, 20.0, 15.0, 12);
  const int bound_s = b.mag({bound}, 26.0, 15.0, 20);
  const int cut1 = b.split({bound_s}, 26.0, 8.0, 26.0, 22.0);
  b.discard({cut1, 1}, 26.0, 26.0);
  const int wash1 = b.dispense(33.5, 3.5, droplet_area);
  const int washed1 = b.mix({cut1, 0}, {wash1}, 33.0, 15.0, 10);
  const int washed1_s = b.mag({washed1}, 39.0, 15.0, 20);
  const int cut2 = b.split({washed1_s}, 39.0, 8.0, 39.0, 22.0);
  b.discard({cut2, 1}, 39.0, 26.0);
  const int elution = b.dispense(46.5, 3.5, droplet_area);
  const int eluted = b.mix({cut2, 0}, {elution}, 46.0, 15.0, 10);
  const int eluted_s = b.mag({eluted}, 51.0, 15.0, 20);
  b.output({eluted_s}, 55.0, 15.0);
  return std::move(b).build();
}

MoList covid_rat(int droplet_area) {
  AssayBuilder b("COVID-RAT");
  const int sample = b.dispense(3.5, 15.5, droplet_area);
  const int reagent = b.dispense(17.5, 3.5, droplet_area);
  const int mixed = b.mix({sample}, {reagent}, 18.0, 15.0, 10);
  const int read = b.mag({mixed}, 36.0, 15.0, 25);
  b.output({read}, 54.0, 15.0);
  return std::move(b).build();
}

MoList covid_pcr(int droplet_area) {
  AssayBuilder b("COVID-PCR");
  const int sample = b.dispense(4.5, 3.5, droplet_area);
  const int lysis = b.dispense(4.5, 25.5, droplet_area);
  const int lysed = b.mix({sample}, {lysis}, 10.0, 15.0, 10);
  const int lysed_s = b.mag({lysed}, 16.0, 15.0, 15);
  const int beads = b.dispense(16.5, 3.5, droplet_area);
  const int captured = b.mix({lysed_s}, {beads}, 23.0, 15.0, 10);
  const int captured_s = b.mag({captured}, 30.0, 15.0, 15);
  const int cut = b.split({captured_s}, 30.0, 8.0, 30.0, 22.0);
  b.discard({cut, 1}, 30.0, 26.0);
  const int mastermix = b.dispense(38.5, 3.5, droplet_area);
  const int reaction = b.mix({cut, 0}, {mastermix}, 38.0, 15.0, 10);
  // Thermocycling: modeled as successive held processing steps.
  const int thermo1 = b.mag({reaction}, 44.0, 15.0, 20);
  const int thermo2 = b.mag({thermo1}, 50.0, 15.0, 20);
  const int detect = b.mag({thermo2}, 54.0, 15.0, 10);
  b.output({detect}, 55.0, 15.0);
  return std::move(b).build();
}

MoList chip_ip(int droplet_area) {
  AssayBuilder b("ChIP");
  const int chromatin = b.dispense(4.5, 4.5, droplet_area);
  const int antibody = b.dispense(4.5, 24.5, droplet_area);
  const int incubated = b.mix({chromatin}, {antibody}, 12.0, 15.0, 12);
  const int incubated_s = b.mag({incubated}, 20.0, 15.0, 18);
  const int beads = b.dispense(20.5, 4.5, droplet_area);
  const int bound = b.mix({incubated_s}, {beads}, 28.0, 15.0, 12);
  const int bound_s = b.mag({bound}, 35.0, 15.0, 18);
  const int cut = b.split({bound_s}, 35.0, 8.0, 35.0, 22.0);
  b.discard({cut, 1}, 35.0, 25.0);
  const int elution = b.dispense(44.5, 4.5, droplet_area);
  const int eluted = b.mix({cut, 0}, {elution}, 44.0, 15.0, 10);
  const int eluted_s = b.mag({eluted}, 50.0, 15.0, 18);
  b.output({eluted_s}, 54.0, 15.0);
  return std::move(b).build();
}

MoList multiplex_invitro(int droplet_area) {
  AssayBuilder b("Multiplex in-vitro");
  // Two independent assay chains that execute concurrently.
  const int a_sample = b.dispense(4.5, 4.5, droplet_area);
  const int a_reagent = b.dispense(4.5, 13.5, droplet_area);
  const int a_mixed = b.mix({a_sample}, {a_reagent}, 14.0, 9.0, 10);
  const int a_read = b.mag({a_mixed}, 28.0, 9.0, 15);
  b.output({a_read}, 54.0, 9.0);
  const int b_sample = b.dispense(4.5, 24.5, droplet_area);
  const int b_reagent = b.dispense(17.5, 24.5, droplet_area);
  const int b_mixed = b.mix({b_sample}, {b_reagent}, 27.0, 20.0, 10);
  const int b_read = b.mag({b_mixed}, 40.0, 20.0, 15);
  b.output({b_read}, 54.0, 20.0);
  return std::move(b).build();
}

MoList gene_expression(int droplet_area) {
  AssayBuilder b("Gene Expression");
  const int sample = b.dispense(4.5, 15.5, droplet_area);
  const int reagent = b.dispense(12.5, 3.5, droplet_area);
  const int prepared = b.mix({sample}, {reagent}, 13.0, 15.0, 10);
  const int prepared_s = b.mag({prepared}, 20.0, 15.0, 15);
  const int cut = b.split({prepared_s}, 20.0, 8.0, 20.0, 22.0);
  const int probe1 = b.dispense(30.5, 3.5, droplet_area);
  const int branch1 = b.mix({cut, 0}, {probe1}, 31.0, 9.0, 10);
  const int branch1_s = b.mag({branch1}, 41.0, 9.0, 15);
  b.output({branch1_s}, 54.0, 9.0);
  const int probe2 = b.dispense(30.5, 25.5, droplet_area);
  const int branch2 = b.mix({cut, 1}, {probe2}, 31.0, 21.0, 10);
  const int branch2_s = b.mag({branch2}, 41.0, 21.0, 15);
  b.output({branch2_s}, 54.0, 21.0);
  return std::move(b).build();
}

std::vector<MoList> evaluation_suite(int droplet_area) {
  std::vector<MoList> suite;
  suite.push_back(master_mix(droplet_area));
  suite.push_back(cep(droplet_area));
  suite.push_back(serial_dilution(droplet_area));
  suite.push_back(nuip(droplet_area));
  suite.push_back(covid_rat(droplet_area));
  suite.push_back(covid_pcr(droplet_area));
  return suite;
}

std::vector<MoList> correlation_suite(int droplet_area) {
  std::vector<MoList> suite;
  suite.push_back(chip_ip(droplet_area));
  suite.push_back(multiplex_invitro(droplet_area));
  suite.push_back(gene_expression(droplet_area));
  return suite;
}

}  // namespace meda::assay
