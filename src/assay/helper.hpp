#pragma once

#include <vector>

#include "assay/mo.hpp"
#include "geometry/rect.hpp"

/// @file helper.hpp
/// The RJ-helper of Section VI-B (Algorithm 1): decomposes each microfluidic
/// operation into single-droplet routing jobs.

namespace meda::assay {

/// A single-droplet routing problem RJ = (δ_s, δ_g, δ_h): route the droplet
/// from its start location to the goal location without ever leaving the
/// hazard bounds.
struct RoutingJob {
  Rect start = Rect::none();  ///< δ_s; Rect::none() when entering the chip
  Rect goal;                  ///< δ_g
  Rect hazard;                ///< δ_h — the area the droplet may move within
  int mo = -1;                ///< owning MO id
  int index = 0;              ///< RJ index within the MO (RJ<mo>.<index>)

  friend bool operator==(const RoutingJob&, const RoutingJob&) = default;
};

/// Hazard bounds ZONE(δ_s, δ_g): the bounding box of start and goal inflated
/// by @p margin MCs on each side (to prevent accidental merging with
/// concurrent droplets) and clamped to @p chip. When @p start is invalid
/// (dispense), only the goal contributes.
Rect zone(const Rect& start, const Rect& goal, const Rect& chip,
          int margin = 3);

/// Output droplet rectangles per MO: outputs[id] lists the droplets MO id
/// leaves on the chip (empty for out/dsc). Requires a validated list.
std::vector<std::vector<Rect>> compute_outputs(const MoList& list);

/// Algorithm 1 — converts MO @p mo_id into its routing jobs, using the
/// predecessor output locations in @p outputs.
///
/// dis      → 1 RJ entering the chip (δ_s = none)
/// out/dsc  → 1 RJ to the exit location
/// mag      → 1 RJ to the sensing location
/// mix      → 2 RJs converging on loc[0]
/// spt      → 2 RJs from the split point to loc[0] and loc[1]
/// dlt      → 4 RJs: the mix phase (2) then the split phase (2)
std::vector<RoutingJob> make_routing_jobs(
    const MoList& list, int mo_id,
    const std::vector<std::vector<Rect>>& outputs, const Rect& chip,
    int margin = 3);

/// Convenience: routing jobs for every MO in order.
std::vector<RoutingJob> make_all_routing_jobs(const MoList& list,
                                              const Rect& chip,
                                              int margin = 3);

}  // namespace meda::assay
