#include "assay/helper.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace meda::assay {

Rect zone(const Rect& start, const Rect& goal, const Rect& chip, int margin) {
  MEDA_REQUIRE(goal.valid(), "zone needs a valid goal");
  MEDA_REQUIRE(chip.valid(), "zone needs valid chip bounds");
  MEDA_REQUIRE(margin >= 0, "zone margin must be non-negative");
  const Rect box = start.valid() ? start.union_with(goal) : goal;
  const Rect inflated = box.inflated(margin);
  // Clamp to the chip (the paper's min(..., 1)/max(..., W) terms).
  return Rect{std::max(inflated.xa, chip.xa), std::max(inflated.ya, chip.ya),
              std::min(inflated.xb, chip.xb), std::min(inflated.yb, chip.yb)};
}

namespace {

/// The droplet rectangle for @p area centered at @p loc.
Rect placed_rect(const Loc& loc, int area) {
  const DropletSize size = size_for_area(area);
  return Rect::from_center(loc.x, loc.y, size.w, size.h);
}

/// Input droplet areas of @p mo given the output areas of its predecessors.
std::vector<int> input_areas(const MoList& list, const Mo& mo,
                             const std::vector<std::vector<Rect>>& outputs) {
  std::vector<int> areas;
  for (const PreRef& ref : mo.pre) {
    const auto& outs = outputs[static_cast<std::size_t>(ref.mo)];
    MEDA_REQUIRE(ref.out >= 0 && ref.out < static_cast<int>(outs.size()),
                 "predecessor output index out of range");
    areas.push_back(outs[static_cast<std::size_t>(ref.out)].area());
    (void)list;
  }
  return areas;
}

}  // namespace

std::vector<std::vector<Rect>> compute_outputs(const MoList& list) {
  std::vector<std::vector<Rect>> outputs;
  outputs.reserve(list.ops.size());
  for (const Mo& mo : list.ops) {
    const std::vector<int> in = input_areas(list, mo, outputs);
    std::vector<Rect> out;
    switch (mo.type) {
      case MoType::kDispense:
        out = {placed_rect(mo.locs[0], mo.area)};
        break;
      case MoType::kMix:
        out = {placed_rect(mo.locs[0], in[0] + in[1])};
        break;
      case MoType::kSplit:
        out = {placed_rect(mo.locs[0], (in[0] + 1) / 2),
               placed_rect(mo.locs[1], in[0] / 2)};
        break;
      case MoType::kDilute: {
        const int total = in[0] + in[1];
        out = {placed_rect(mo.locs[0], (total + 1) / 2),
               placed_rect(mo.locs[1], total / 2)};
        break;
      }
      case MoType::kMagSense:
        out = {placed_rect(mo.locs[0], in[0])};
        break;
      case MoType::kOutput:
      case MoType::kDiscard:
        break;
    }
    outputs.push_back(std::move(out));
  }
  return outputs;
}

std::vector<RoutingJob> make_routing_jobs(
    const MoList& list, int mo_id,
    const std::vector<std::vector<Rect>>& outputs, const Rect& chip,
    int margin) {
  const Mo& mo = list.op(mo_id);
  MEDA_REQUIRE(outputs.size() == list.ops.size(),
               "outputs do not match the MO list");

  // δ_g of a predecessor reference: where its output droplet sits.
  auto pre_rect = [&](int which) -> Rect {
    const PreRef& ref = mo.pre[static_cast<std::size_t>(which)];
    return outputs[static_cast<std::size_t>(ref.mo)]
                  [static_cast<std::size_t>(ref.out)];
  };
  auto make = [&](int index, const Rect& start, const Rect& goal) {
    return RoutingJob{start, goal, zone(start, goal, chip, margin), mo.id,
                      index};
  };

  const std::vector<int> in = input_areas(list, mo, outputs);
  std::vector<RoutingJob> rjs;
  switch (mo.type) {
    case MoType::kDispense: {
      // The droplet starts off-chip; the dispensing strategy is a movement
      // perpendicular to the entry edge, so start is none.
      rjs.push_back(make(0, Rect::none(), placed_rect(mo.locs[0], mo.area)));
      break;
    }
    case MoType::kOutput:
    case MoType::kDiscard: {
      // Goal is the last on-chip location before exiting through an edge.
      rjs.push_back(make(0, pre_rect(0), placed_rect(mo.locs[0], in[0])));
      break;
    }
    case MoType::kMagSense: {
      rjs.push_back(make(0, pre_rect(0), placed_rect(mo.locs[0], in[0])));
      break;
    }
    case MoType::kMix: {
      // Both inputs route to the mixer location; goals are input-sized
      // (the droplets only become one merged droplet on contact).
      rjs.push_back(make(0, pre_rect(0), placed_rect(mo.locs[0], in[0])));
      rjs.push_back(make(1, pre_rect(1), placed_rect(mo.locs[0], in[1])));
      break;
    }
    case MoType::kSplit: {
      const int a0 = (in[0] + 1) / 2;
      const int a1 = in[0] / 2;
      rjs.push_back(make(0, pre_rect(0), placed_rect(mo.locs[0], a0)));
      rjs.push_back(make(1, pre_rect(0), placed_rect(mo.locs[1], a1)));
      break;
    }
    case MoType::kDilute: {
      // Mix phase: both inputs converge on loc[0]; split phase: the merged
      // halves go to loc[0] (stay) and loc[1].
      const int total = in[0] + in[1];
      const int a0 = (total + 1) / 2;
      const int a1 = total / 2;
      const Rect mix_goal0 = placed_rect(mo.locs[0], in[0]);
      const Rect mix_goal1 = placed_rect(mo.locs[0], in[1]);
      rjs.push_back(make(0, pre_rect(0), mix_goal0));
      rjs.push_back(make(1, pre_rect(1), mix_goal1));
      rjs.push_back(make(2, placed_rect(mo.locs[0], a0),
                         placed_rect(mo.locs[0], a0)));
      rjs.push_back(make(3, placed_rect(mo.locs[0], a1),
                         placed_rect(mo.locs[1], a1)));
      break;
    }
  }
  return rjs;
}

std::vector<RoutingJob> make_all_routing_jobs(const MoList& list,
                                              const Rect& chip, int margin) {
  const auto outputs = compute_outputs(list);
  std::vector<RoutingJob> all;
  for (const Mo& mo : list.ops) {
    auto rjs = make_routing_jobs(list, mo.id, outputs, chip, margin);
    all.insert(all.end(), rjs.begin(), rjs.end());
  }
  return all;
}

}  // namespace meda::assay
