#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "geometry/rect.hpp"

/// @file mo.hpp
/// Microfluidic operations (MOs) and sequencing graphs (Section VI-A,
/// Table III). A bioassay is a list of MOs, each with a type, predecessor
/// references, and a placement (module center location) determined by the
/// planner.

namespace meda::assay {

/// Microfluidic operation types (Table III). (In, Out) droplet counts:
/// dis (0,1) · out/dsc (1,0) · mix (2,1) · spt (1,2) · dlt (2,2) · mag (1,1).
enum class MoType : unsigned char {
  kDispense,  ///< dis — dispense a droplet (enter biochip)
  kOutput,    ///< out — output a droplet (exit biochip)
  kDiscard,   ///< dsc — discard a droplet (exit biochip)
  kMix,       ///< mix — mix two droplets into one
  kSplit,     ///< spt — split a droplet into two
  kDilute,    ///< dlt — dilute a droplet using another (mix then split)
  kMagSense,  ///< mag — magnetic-bead sensing / in-place processing
};

std::string_view to_string(MoType type);

/// Number of input droplets consumed by an MO type.
int input_count(MoType type);

/// Number of output droplets produced by an MO type.
int output_count(MoType type);

/// A fractional module-center location on the chip, e.g. (17.5, 2.5) for a
/// 4×4 droplet spanning cells [16, 19]×[1, 4].
struct Loc {
  double x = 0.0;
  double y = 0.0;
};

/// Reference to one output droplet of a predecessor MO.
struct PreRef {
  int mo = -1;   ///< predecessor MO id
  int out = 0;   ///< which of its output droplets (0 or 1)

  friend bool operator==(const PreRef&, const PreRef&) = default;
};

/// One microfluidic operation MO = (type, pre, loc).
struct Mo {
  int id = -1;
  MoType type = MoType::kDispense;
  std::vector<PreRef> pre;  ///< one entry per consumed input droplet
  std::vector<Loc> locs;    ///< 1 center (2 for spt/dlt: the two outputs)
  int area = 16;            ///< dispensed droplet area (kDispense only)
  int hold_cycles = 0;      ///< in-place processing time at the location
  /// Criticality annotation: N-modular redundancy degree (kDispense only).
  /// With replicas = N > 1 an adaptive scheduler launches N droplets of the
  /// same reagent racing through pairwise region-disjoint corridors; the
  /// first arrival completes the MO (k = 1 vote/merge) and the rest retire
  /// to waste. Other MO types must keep the default 1.
  int replicas = 1;
};

/// A planned bioassay: an MO list in dependency order.
struct MoList {
  std::string name;
  std::vector<Mo> ops;

  const Mo& op(int id) const;
};

/// Droplet actuation-pattern dimensions chosen for a target area: the w×h
/// (w >= h, |w − h| <= 1) pattern minimizing the area error (Section VI-B).
/// Ties prefer the larger pattern (conserving droplet volume).
struct DropletSize {
  int w = 1;
  int h = 1;
  double error = 0.0;  ///< |w·h − area| / area

  int area() const { return w * h; }
};

/// Computes the pattern size for @p area (requires area >= 1). E.g. area 32
/// gives 6×5 with 6.3% error (Table IV).
DropletSize size_for_area(int area);

/// Concatenates two placed bioassays into one MO list that executes both
/// concurrently under a single scheduler (a multi-assay panel on one chip):
/// ids and predecessor references of @p b are shifted past @p a's. The two
/// assays must not place droplets at conflicting locations — validate the
/// result against the chip before running it.
MoList merge_assays(const MoList& a, const MoList& b);

/// Shifts every module location of @p list by (dx, dy) — e.g. to move a
/// panel member into its own chip region before merging.
MoList translate_assay(const MoList& list, double dx, double dy);

/// Returns a copy of @p list with every dispense MO that directly feeds a
/// mixing operation (mix or dilute) marked critical with `replicas = n`
/// (n < 2 returns the list unchanged). Dispenses already annotated with a
/// higher degree keep it. This is the assay-level NMR annotation; the
/// scheduler also accepts the same policy at run time via
/// SchedulerConfig::replicate_critical_dispenses.
MoList replicate_critical_dispenses(const MoList& list, int n);

/// Validates an MO list against a chip: ids are positional, predecessor
/// references point backwards to existing outputs, each output droplet is
/// consumed at most once, every non-sink output is eventually consumed, loc
/// counts match the type, and all placed droplets fit on @p chip.
/// Throws PreconditionError with a diagnostic on violation.
void validate(const MoList& list, const Rect& chip);

}  // namespace meda::assay
