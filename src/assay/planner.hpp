#pragma once

#include <string>
#include <vector>

#include "assay/mo.hpp"
#include "geometry/rect.hpp"

/// @file planner.hpp
/// A simple module-placement planner. The paper assumes the sequencing
/// graph "is preprocessed by a planner that determines the dependencies and
/// module placements of MOs" and cites external synthesis tools; this
/// planner provides that preprocessing for users who only have an unplaced
/// sequencing graph:
///
///  - dispense ports alternate along the south and north chip edges,
///  - processing sites (mix / dilute / sense) fill interior bands from
///    west to east in dependency order,
///  - split/dilute secondary outputs go to a band above or below the site,
///  - outputs and discards use ports along the east edge and the corners.
///
/// The result is *valid and runnable*, not optimal — placements simply
/// respect pattern sizes and a configurable inter-site margin.

namespace meda::assay {

/// One unplaced sequencing-graph node (dependencies but no locations).
struct SgNode {
  MoType type = MoType::kDispense;
  std::vector<PreRef> pre;
  int area = 16;        ///< dispensed droplet area (kDispense only)
  int hold_cycles = 0;  ///< processing time (mix/dlt/mag)
};

/// Planner tuning.
struct PlannerConfig {
  int site_margin = 3;  ///< minimum free cells between placed patterns
};

/// Places @p nodes onto @p chip and returns a validated MO list.
/// Throws PreconditionError when the graph is malformed or does not fit.
MoList plan_placement(const std::string& name,
                      const std::vector<SgNode>& nodes, const Rect& chip,
                      const PlannerConfig& config = {});

/// Strips the placements from an MO list, recovering the pure sequencing
/// graph (useful for re-planning an existing bioassay on another chip).
std::vector<SgNode> to_sequence_graph(const MoList& list);

}  // namespace meda::assay
