#include "assay/mo.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace meda::assay {

std::string_view to_string(MoType type) {
  switch (type) {
    case MoType::kDispense: return "dis";
    case MoType::kOutput: return "out";
    case MoType::kDiscard: return "dsc";
    case MoType::kMix: return "mix";
    case MoType::kSplit: return "spt";
    case MoType::kDilute: return "dlt";
    case MoType::kMagSense: return "mag";
  }
  return "?";
}

int input_count(MoType type) {
  switch (type) {
    case MoType::kDispense: return 0;
    case MoType::kOutput:
    case MoType::kDiscard:
    case MoType::kSplit:
    case MoType::kMagSense: return 1;
    case MoType::kMix:
    case MoType::kDilute: return 2;
  }
  return 0;
}

int output_count(MoType type) {
  switch (type) {
    case MoType::kDispense:
    case MoType::kMix:
    case MoType::kMagSense: return 1;
    case MoType::kOutput:
    case MoType::kDiscard: return 0;
    case MoType::kSplit:
    case MoType::kDilute: return 2;
  }
  return 0;
}

/// Number of module-center locations an MO type carries.
static int loc_count(MoType type) {
  switch (type) {
    case MoType::kSplit:
    case MoType::kDilute: return 2;
    default: return 1;
  }
}

const Mo& MoList::op(int id) const {
  MEDA_REQUIRE(id >= 0 && id < static_cast<int>(ops.size()),
               "MO id out of range");
  return ops[static_cast<std::size_t>(id)];
}

DropletSize size_for_area(int area) {
  MEDA_REQUIRE(area >= 1, "droplet area must be positive");
  DropletSize best;
  bool have_best = false;
  // Candidate patterns: h×h and (h+1)×h around sqrt(area).
  const int h_max = static_cast<int>(std::ceil(std::sqrt(area))) + 1;
  for (int h = 1; h <= h_max; ++h) {
    for (int w : {h, h + 1}) {
      const double err =
          std::abs(w * h - area) / static_cast<double>(area);
      const bool better =
          !have_best || err < best.error - 1e-12 ||
          (std::abs(err - best.error) <= 1e-12 && w * h > best.area());
      if (better) {
        best = DropletSize{w, h, err};
        have_best = true;
      }
    }
  }
  MEDA_ASSERT(have_best, "no candidate pattern found");
  return best;
}

MoList merge_assays(const MoList& a, const MoList& b) {
  MoList merged;
  merged.name = a.name + " + " + b.name;
  merged.ops = a.ops;
  const int offset = static_cast<int>(a.ops.size());
  for (Mo mo : b.ops) {
    mo.id += offset;
    for (PreRef& ref : mo.pre) ref.mo += offset;
    merged.ops.push_back(std::move(mo));
  }
  return merged;
}

MoList translate_assay(const MoList& list, double dx, double dy) {
  MoList shifted = list;
  for (Mo& mo : shifted.ops)
    for (Loc& loc : mo.locs) {
      loc.x += dx;
      loc.y += dy;
    }
  return shifted;
}

MoList replicate_critical_dispenses(const MoList& list, int n) {
  if (n < 2) return list;
  MoList annotated = list;
  for (const Mo& mo : annotated.ops) {
    if (mo.type != MoType::kMix && mo.type != MoType::kDilute) continue;
    for (const PreRef& ref : mo.pre) {
      if (ref.mo < 0 || ref.mo >= static_cast<int>(annotated.ops.size()))
        continue;
      Mo& pre = annotated.ops[static_cast<std::size_t>(ref.mo)];
      if (pre.type == MoType::kDispense)
        pre.replicas = std::max(pre.replicas, n);
    }
  }
  return annotated;
}

namespace {

[[noreturn]] void fail(const MoList& list, int id, const std::string& what) {
  std::ostringstream os;
  os << "MO list '" << list.name << "' op " << id << ": " << what;
  throw PreconditionError(os.str());
}

}  // namespace

void validate(const MoList& list, const Rect& chip) {
  MEDA_REQUIRE(chip.valid(), "invalid chip bounds");
  MEDA_REQUIRE(!list.ops.empty(), "empty MO list");

  // consumption[mo][out] counts how many successors consume that droplet.
  std::vector<std::vector<int>> consumption;
  consumption.reserve(list.ops.size());
  std::vector<std::vector<int>> areas;  // output droplet areas per MO
  areas.reserve(list.ops.size());

  for (std::size_t i = 0; i < list.ops.size(); ++i) {
    const Mo& mo = list.ops[i];
    const int id = static_cast<int>(i);
    if (mo.id != id) fail(list, id, "id must equal its list position");
    if (static_cast<int>(mo.pre.size()) != input_count(mo.type))
      fail(list, id, "wrong number of predecessor references");
    if (static_cast<int>(mo.locs.size()) != loc_count(mo.type))
      fail(list, id, "wrong number of locations");
    if (mo.hold_cycles < 0) fail(list, id, "negative hold time");
    if (mo.replicas < 1) fail(list, id, "replicas must be at least 1");
    if (mo.replicas > 1 && mo.type != MoType::kDispense)
      fail(list, id, "replicas > 1 is only meaningful on dispense MOs");

    std::vector<int> in_areas;
    for (const PreRef& ref : mo.pre) {
      if (ref.mo < 0 || ref.mo >= id)
        fail(list, id, "predecessor reference must point backwards");
      const auto& pre_outs = areas[static_cast<std::size_t>(ref.mo)];
      if (ref.out < 0 || ref.out >= static_cast<int>(pre_outs.size()))
        fail(list, id, "predecessor output index out of range");
      auto& uses = consumption[static_cast<std::size_t>(ref.mo)]
                              [static_cast<std::size_t>(ref.out)];
      if (uses > 0) fail(list, id, "predecessor droplet consumed twice");
      ++uses;
      in_areas.push_back(pre_outs[static_cast<std::size_t>(ref.out)]);
    }

    // Propagate droplet areas (Section VI-B sizing).
    std::vector<int> out_areas;
    switch (mo.type) {
      case MoType::kDispense:
        if (mo.area < 1) fail(list, id, "dispense area must be positive");
        out_areas = {mo.area};
        break;
      case MoType::kMix:
        out_areas = {in_areas[0] + in_areas[1]};
        break;
      case MoType::kSplit:
        out_areas = {(in_areas[0] + 1) / 2, in_areas[0] / 2};
        break;
      case MoType::kDilute: {
        const int total = in_areas[0] + in_areas[1];
        out_areas = {(total + 1) / 2, total / 2};
        break;
      }
      case MoType::kMagSense:
        out_areas = {in_areas[0]};
        break;
      case MoType::kOutput:
      case MoType::kDiscard:
        break;
    }

    // Each placed droplet (output or exit location) must fit on the chip.
    for (std::size_t k = 0; k < mo.locs.size(); ++k) {
      const int area = out_areas.empty() ? in_areas[0]
                                         : out_areas[std::min(
                                               k, out_areas.size() - 1)];
      const DropletSize size = size_for_area(area);
      const Rect rect =
          Rect::from_center(mo.locs[k].x, mo.locs[k].y, size.w, size.h);
      if (!chip.contains(rect))
        fail(list, id, "placed droplet " + rect.to_string() +
                           " does not fit on the chip");
    }

    consumption.emplace_back(out_areas.size(), 0);
    areas.push_back(std::move(out_areas));
  }

  // Every produced droplet must eventually be consumed (no orphans sitting
  // on the chip when the bioassay completes).
  for (std::size_t i = 0; i < list.ops.size(); ++i) {
    for (std::size_t k = 0; k < consumption[i].size(); ++k) {
      if (consumption[i][k] == 0)
        fail(list, static_cast<int>(i),
             "output droplet " + std::to_string(k) + " is never consumed");
    }
  }
}

}  // namespace meda::assay
