#pragma once

#include "geometry/rect.hpp"
#include "model/action.hpp"

/// @file guards.hpp
/// Action guards of Section V-B. A guard is a necessary condition for an
/// action to be enabled:
///
///  - morphing keeps the aspect ratio within [1/r, r] (to avoid unintended
///    splitting):  g_↑: (y_b−y_a+2)/(x_b−x_a) ≤ r,
///                 g_↓: (x_b−x_a+2)/(y_b−y_a) ≤ r;
///  - a droplet can only be moved two cells per cycle if the distance is at
///    most half its length: g_NN/g_SS: h ≥ 4, g_EE/g_WW: w ≥ 4.

namespace meda {

/// Guard/enabling configuration for the action set.
struct ActionRules {
  double max_aspect_ratio = 1.5;    ///< r; allowed AR range is [1/r, r]
  bool enable_double_steps = true;  ///< include A_dd in the enabled set
  bool enable_ordinal = true;       ///< include A_dd' in the enabled set
  bool enable_morphing = true;      ///< include A_↓/A_↑ in the enabled set
};

/// Evaluates the guard of @p a on @p droplet (geometry-only; ignores the
/// enable_* switches). Movement actions are unguarded and return true.
bool guard_satisfied(Action a, const Rect& droplet, const ActionRules& rules);

/// Full enabling check used by the model builder and the simulator: the
/// action class is enabled by @p rules, its guard holds, and both its
/// frontier MCs and its successful-outcome droplet lie within @p chip
/// (a droplet cannot be pulled by microelectrodes that do not exist).
bool action_enabled(Action a, const Rect& droplet, const ActionRules& rules,
                    const Rect& chip);

}  // namespace meda
