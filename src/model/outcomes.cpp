#include "model/outcomes.hpp"

#include <algorithm>

#include "model/frontier.hpp"
#include "util/check.hpp"

namespace meda {

double mean_frontier_force(const ForceFn& force, const Rect& fr) {
  MEDA_REQUIRE(fr.valid(), "mean force over an empty frontier");
  double total = 0.0;
  for (int y = fr.ya; y <= fr.yb; ++y)
    for (int x = fr.xa; x <= fr.xb; ++x)
      total += std::clamp(force(x, y), 0.0, 1.0);
  return total / static_cast<double>(fr.area());
}

double mean_frontier_force(const DoubleMatrix& force, const Rect& fr) {
  MEDA_REQUIRE(fr.valid(), "mean force over an empty frontier");
  MEDA_REQUIRE(fr.xa >= 0 && fr.ya >= 0 && fr.xb < force.width() &&
                   fr.yb < force.height(),
               "frontier outside the force matrix");
  double total = 0.0;
  for (int y = fr.ya; y <= fr.yb; ++y)
    for (int x = fr.xa; x <= fr.xb; ++x)
      total += std::clamp(force(x, y), 0.0, 1.0);
  return total / static_cast<double>(fr.area());
}

namespace {

/// Success probability of the pull in direction @p d for action @p a.
double pull_probability(const Rect& droplet, Action a, Dir d,
                        const ForceFn& force) {
  return mean_frontier_force(force, frontier(droplet, a, d));
}

void push_outcome(std::vector<Outcome>& out, const Rect& droplet, double p) {
  if (p <= 0.0) return;
  out.push_back(Outcome{droplet, p});
}

}  // namespace

std::vector<Outcome> action_outcomes(const Rect& droplet, Action a,
                                     const DoubleMatrix& force) {
  return action_outcomes(droplet, a, ForceFn([&force](int x, int y) {
                           MEDA_REQUIRE(force.in_bounds(x, y),
                                        "frontier outside the force matrix");
                           return force(x, y);
                         }));
}

std::vector<Outcome> action_outcomes(const Rect& droplet, Action a,
                                     const ForceFn& force) {
  MEDA_REQUIRE(droplet.valid(), "outcomes of an invalid droplet");
  std::vector<Outcome> out;
  switch (action_class(a)) {
    case ActionClass::kCardinal: {
      const Dir d = cardinal_of(a);
      const double s = pull_probability(droplet, a, d, force);
      push_outcome(out, apply(a, droplet), s);
      push_outcome(out, droplet, 1.0 - s);
      break;
    }
    case ActionClass::kDouble: {
      const Dir d = cardinal_of(a);
      const Vec2i step = unit(d);
      const Rect mid = droplet.shifted(step.x, step.y);
      // p(dd) = s1·s2, p(d) = s1·(1−s2), p(ε) = 1−s1 (second step is
      // conditioned on the first succeeding).
      const double s1 = pull_probability(droplet, a, d, force);
      const double s2 = pull_probability(mid, a, d, force);
      push_outcome(out, apply(a, droplet), s1 * s2);
      push_outcome(out, mid, s1 * (1.0 - s2));
      push_outcome(out, droplet, 1.0 - s1);
      break;
    }
    case ActionClass::kOrdinal: {
      const Ordinal o = ordinal_of(a);
      const Dir dv = vertical(o);
      const Dir dh = horizontal(o);
      const double sv = pull_probability(droplet, a, dv, force);
      const double sh = pull_probability(droplet, a, dh, force);
      const Vec2i uv = unit(dv);
      const Vec2i uh = unit(dh);
      push_outcome(out, apply(a, droplet), sv * sh);          // dd'
      push_outcome(out, droplet.shifted(uv.x, uv.y), sv * (1.0 - sh));  // d
      push_outcome(out, droplet.shifted(uh.x, uh.y), (1.0 - sv) * sh);  // d'
      push_outcome(out, droplet, (1.0 - sv) * (1.0 - sh));    // ε
      break;
    }
    case ActionClass::kWiden:
    case ActionClass::kHeighten: {
      const FrontierDirs dirs = pulling_directions(a);
      MEDA_ASSERT(dirs.count == 1, "morph must have one pulling direction");
      const double s = pull_probability(droplet, a, dirs.dirs[0], force);
      push_outcome(out, apply(a, droplet), s);
      push_outcome(out, droplet, 1.0 - s);
      break;
    }
  }
  MEDA_ASSERT(!out.empty(), "action produced no outcomes");
  return out;
}

DoubleMatrix force_from_degradation(const DoubleMatrix& degradation) {
  DoubleMatrix f(degradation.width(), degradation.height());
  for (int y = 0; y < f.height(); ++y) {
    for (int x = 0; x < f.width(); ++x) {
      const double d = std::clamp(degradation(x, y), 0.0, 1.0);
      f(x, y) = d * d;  // F̄ = (V/V_a)² = D²
    }
  }
  return f;
}

DoubleMatrix force_from_health(const IntMatrix& health, int bits,
                               HealthEstimator estimator) {
  DoubleMatrix f(health.width(), health.height());
  for (int y = 0; y < f.height(); ++y) {
    for (int x = 0; x < f.width(); ++x) {
      const double d = estimate_degradation(health(x, y), bits, estimator);
      f(x, y) = d * d;
    }
  }
  return f;
}

DoubleMatrix full_health_force(int width, int height) {
  return DoubleMatrix(width, height, 1.0);
}

}  // namespace meda
