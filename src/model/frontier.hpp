#pragma once

#include "geometry/direction.hpp"
#include "geometry/rect.hpp"
#include "model/action.hpp"

/// @file frontier.hpp
/// Frontier-set function Fr(δ; a, d) of Table II: the subset of MCs that
/// pull the droplet δ in direction d when action a is actuated. All frontier
/// sets are (possibly empty) rectangles.

namespace meda {

/// Frontier set Fr(δ; a, d). Returns an invalid Rect when the frontier is ∅
/// (e.g. Fr(δ; a_N, E)). For double-step actions this is the *first-step*
/// frontier, identical to the single-step action's (the second step's
/// frontier is evaluated on the shifted droplet, per Section V-B).
///
/// Requires a valid droplet. Morphing frontiers require the shrinking
/// dimension to be >= 2 (otherwise the frontier formula is degenerate; the
/// guards disable such actions).
Rect frontier(const Rect& droplet, Action a, Dir d);

/// The (up to two) directions for which Fr(δ; a, ·) is non-empty.
/// Cardinal/double/morph actions have one pulling direction; ordinal actions
/// have two (vertical first, horizontal second).
struct FrontierDirs {
  Dir dirs[2] = {Dir::N, Dir::N};
  int count = 0;
};
FrontierDirs pulling_directions(Action a);

/// Number of MCs in Fr(δ; a, d); 0 when the frontier is ∅. Matches the
/// |Fr(δ; a, d)| column of Table II.
int frontier_size(const Rect& droplet, Action a, Dir d);

}  // namespace meda
