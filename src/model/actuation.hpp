#pragma once

#include <optional>
#include <span>
#include <utility>

#include "geometry/rect.hpp"
#include "model/action.hpp"
#include "util/matrix.hpp"

/// @file actuation.hpp
/// The biochip actuation matrix U of Section V-A: U_ij = 1 iff MC_ij is
/// charged this operational cycle. Under Algorithm 3 the pattern for a
/// droplet commanded with action a is its *target* pattern a(δ) (the
/// shifted-in cells pull the droplet); droplets without a command are held
/// by keeping their current pattern charged (free-roaming is not allowed).

namespace meda {

/// One droplet's contribution to the cycle's pattern: its current position
/// and the commanded action (nullopt = hold).
using DropletCommand = std::pair<Rect, std::optional<Action>>;

/// Builds the W×H actuation matrix for one operational cycle. Patterns are
/// clipped to the chip; overlapping contributions merge (logical OR).
BoolMatrix build_actuation_matrix(int width, int height,
                                  std::span<const DropletCommand> commands);

/// The cells a single droplet charges this cycle (target pattern under a
/// command, the held pattern otherwise).
Rect actuated_pattern(const Rect& droplet, std::optional<Action> action);

/// Number of set cells in an actuation matrix (Σ U_ij).
int actuated_count(const BoolMatrix& pattern);

}  // namespace meda
