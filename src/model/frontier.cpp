#include "model/frontier.hpp"

#include "util/check.hpp"

namespace meda {

Rect frontier(const Rect& d, Action a, Dir dir) {
  MEDA_REQUIRE(d.valid(), "frontier of an invalid droplet");
  const int xa = d.xa, ya = d.ya, xb = d.xb, yb = d.yb;
  const Rect empty = Rect::none();

  switch (a) {
    case Action::kN:
    case Action::kNN:
      return dir == Dir::N ? Rect{xa, yb + 1, xb, yb + 1} : empty;
    case Action::kS:
    case Action::kSS:
      return dir == Dir::S ? Rect{xa, ya - 1, xb, ya - 1} : empty;
    case Action::kE:
    case Action::kEE:
      return dir == Dir::E ? Rect{xb + 1, ya, xb + 1, yb} : empty;
    case Action::kW:
    case Action::kWW:
      return dir == Dir::W ? Rect{xa - 1, ya, xa - 1, yb} : empty;

    case Action::kNE:
      if (dir == Dir::N) return Rect{xa + 1, yb + 1, xb + 1, yb + 1};
      if (dir == Dir::E) return Rect{xb + 1, ya + 1, xb + 1, yb + 1};
      return empty;
    case Action::kNW:
      if (dir == Dir::N) return Rect{xa - 1, yb + 1, xb - 1, yb + 1};
      if (dir == Dir::W) return Rect{xa - 1, ya + 1, xa - 1, yb + 1};
      return empty;
    case Action::kSE:
      if (dir == Dir::S) return Rect{xa + 1, ya - 1, xb + 1, ya - 1};
      if (dir == Dir::E) return Rect{xb + 1, ya - 1, xb + 1, yb - 1};
      return empty;
    case Action::kSW:
      if (dir == Dir::S) return Rect{xa - 1, ya - 1, xb - 1, ya - 1};
      if (dir == Dir::W) return Rect{xa - 1, ya - 1, xa - 1, yb - 1};
      return empty;

    // A_↓ pull sideways with a column one cell shorter than the droplet.
    case Action::kWidenNE:
      MEDA_REQUIRE(d.height() >= 2, "widen frontier on unit-height droplet");
      return dir == Dir::E ? Rect{xb + 1, ya + 1, xb + 1, yb} : empty;
    case Action::kWidenNW:
      MEDA_REQUIRE(d.height() >= 2, "widen frontier on unit-height droplet");
      return dir == Dir::W ? Rect{xa - 1, ya + 1, xa - 1, yb} : empty;
    case Action::kWidenSE:
      MEDA_REQUIRE(d.height() >= 2, "widen frontier on unit-height droplet");
      return dir == Dir::E ? Rect{xb + 1, ya, xb + 1, yb - 1} : empty;
    case Action::kWidenSW:
      MEDA_REQUIRE(d.height() >= 2, "widen frontier on unit-height droplet");
      return dir == Dir::W ? Rect{xa - 1, ya, xa - 1, yb - 1} : empty;

    // A_↑ pull vertically with a row one cell narrower than the droplet.
    case Action::kHeightenNE:
      MEDA_REQUIRE(d.width() >= 2, "heighten frontier on unit-width droplet");
      return dir == Dir::N ? Rect{xa + 1, yb + 1, xb, yb + 1} : empty;
    case Action::kHeightenNW:
      MEDA_REQUIRE(d.width() >= 2, "heighten frontier on unit-width droplet");
      return dir == Dir::N ? Rect{xa, yb + 1, xb - 1, yb + 1} : empty;
    case Action::kHeightenSE:
      MEDA_REQUIRE(d.width() >= 2, "heighten frontier on unit-width droplet");
      return dir == Dir::S ? Rect{xa + 1, ya - 1, xb, ya - 1} : empty;
    case Action::kHeightenSW:
      MEDA_REQUIRE(d.width() >= 2, "heighten frontier on unit-width droplet");
      return dir == Dir::S ? Rect{xa, ya - 1, xb - 1, ya - 1} : empty;
  }
  throw InvariantError("unknown action");
}

FrontierDirs pulling_directions(Action a) {
  FrontierDirs out;
  switch (action_class(a)) {
    case ActionClass::kCardinal:
    case ActionClass::kDouble:
      out.dirs[0] = cardinal_of(a);
      out.count = 1;
      break;
    case ActionClass::kOrdinal:
      out.dirs[0] = vertical(ordinal_of(a));
      out.dirs[1] = horizontal(ordinal_of(a));
      out.count = 2;
      break;
    case ActionClass::kWiden:
      out.dirs[0] = horizontal(ordinal_of(a));
      out.count = 1;
      break;
    case ActionClass::kHeighten:
      out.dirs[0] = vertical(ordinal_of(a));
      out.count = 1;
      break;
  }
  return out;
}

int frontier_size(const Rect& droplet, Action a, Dir d) {
  const Rect fr = frontier(droplet, a, d);
  return fr.valid() ? fr.area() : 0;
}

}  // namespace meda
