#pragma once

#include <vector>

#include "chip/degradation.hpp"
#include "geometry/rect.hpp"
#include "model/action.hpp"
#include "model/guards.hpp"
#include "model/outcomes.hpp"
#include "util/matrix.hpp"

/// @file smg.hpp
/// The MEDA biochip stochastic multiplayer game G = (S, A₁ ∪ A₂, γ, s₀) of
/// Section V-C.
///
/// A game state is s = (δ, H, λ): the droplet, the health matrix, and whose
/// turn it is. Player ① (the droplet controller) picks microfluidic actions;
/// player ② (biochip degradation) non-deterministically decrements health
/// cells. Because H is visible to the controller, the game has full
/// information and — since H changes negligibly within one routing job — is
/// reduced to an MDP by freezing H (the induced MDP is built by
/// core::ModelBuilder). The simulator plays the *incomplete-information*
/// variant of the same game: player ② is the true degradation process, which
/// the controller can only observe through the quantized H.

namespace meda::smg {

/// Whose turn it is.
enum class Player : unsigned char { kController, kDegradation };

/// A full game state.
struct State {
  Rect droplet;      ///< δ
  IntMatrix health;  ///< H (b-bit codes per MC)
  Player turn = Player::kController;
};

/// A degradation-player move: the set of MCs whose health decrements by one
/// this turn (②'s action set is the power set of per-cell decrements; a move
/// is one element of it).
struct DegradationMove {
  std::vector<Vec2i> cells;
};

/// One probabilistic branch of the transition function γ.
struct Branch {
  State state;
  double probability;
};

/// The MEDA SMG with a fixed arena and rules.
class Game {
 public:
  /// @param chip_bounds the MC array extent
  /// @param rules guard/enabling configuration for A₁
  /// @param health_bits b, the health-code resolution
  /// @param estimator how ① converts health codes into force estimates
  Game(Rect chip_bounds, ActionRules rules, int health_bits,
       HealthEstimator estimator);

  const Rect& chip_bounds() const { return chip_bounds_; }
  const ActionRules& rules() const { return rules_; }
  int health_bits() const { return health_bits_; }

  /// Controller actions enabled in @p s (requires s.turn == kController).
  std::vector<Action> enabled_actions(const State& s) const;

  /// Transition distribution for a controller action: probabilistic droplet
  /// outcomes, after which the turn passes to the degradation player.
  /// Requires the action to be enabled in @p s.
  std::vector<Branch> controller_transition(const State& s, Action a) const;

  /// Transition for a degradation move: deterministic health decrements
  /// (clamped at 0), after which the turn passes back to the controller.
  /// Requires s.turn == kDegradation.
  State degradation_transition(const State& s, const DegradationMove& m) const;

 private:
  Rect chip_bounds_;
  ActionRules rules_;
  int health_bits_;
  HealthEstimator estimator_;
};

}  // namespace meda::smg
