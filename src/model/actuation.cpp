#include "model/actuation.hpp"

#include "util/check.hpp"

namespace meda {

Rect actuated_pattern(const Rect& droplet, std::optional<Action> action) {
  MEDA_REQUIRE(droplet.valid(), "actuation pattern of an invalid droplet");
  return action.has_value() ? apply(*action, droplet) : droplet;
}

BoolMatrix build_actuation_matrix(int width, int height,
                                  std::span<const DropletCommand> commands) {
  MEDA_REQUIRE(width >= 1 && height >= 1, "invalid matrix dimensions");
  BoolMatrix pattern(width, height);
  const Rect chip{0, 0, width - 1, height - 1};
  for (const auto& [droplet, action] : commands) {
    const Rect cells =
        actuated_pattern(droplet, action).intersection_with(chip);
    if (!cells.valid()) continue;
    for (int y = cells.ya; y <= cells.yb; ++y)
      for (int x = cells.xa; x <= cells.xb; ++x) pattern(x, y) = 1;
  }
  return pattern;
}

int actuated_count(const BoolMatrix& pattern) {
  int count = 0;
  for (unsigned char v : pattern.data()) count += v;
  return count;
}

}  // namespace meda
