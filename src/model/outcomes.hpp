#pragma once

#include <functional>
#include <vector>

#include "chip/degradation.hpp"
#include "geometry/rect.hpp"
#include "model/action.hpp"
#include "util/matrix.hpp"

/// @file outcomes.hpp
/// The probabilistic actuation model of Section V-B: given the per-MC
/// relative EWOD forces, each action induces a distribution over resulting
/// droplet rectangles. Success of a pull in direction d has probability
///
///   p = F̄(δ; a, d) / |Fr(δ; a, d)|,   F̄(δ; a, d) = Σ_{(i,j)∈Fr} F̄_ij,
///
/// i.e. the mean relative force over the frontier (every frontier MC
/// contributes equally). Event spaces:
///
///   cardinal a_d : {d, ε}
///   double a_dd  : {dd, d, ε}    (second step conditioned on the first)
///   ordinal a_dd': {dd', d, d', ε}
///   morph a_↓/a_↑: {morphed, ε}

namespace meda {

/// One possible result of executing an action.
struct Outcome {
  Rect droplet;        ///< resulting droplet δ^(k+1)
  double probability;  ///< event probability (outcomes sum to 1)
};

/// Per-MC relative-force source F̄_ij; must be defined for every cell an
/// enabled action's frontier can touch. Values are clamped to [0, 1].
using ForceFn = std::function<double(int x, int y)>;

/// Mean relative force over a frontier rectangle.
double mean_frontier_force(const ForceFn& force, const Rect& fr);

/// Mean relative force over a frontier rectangle. Requires the frontier to
/// lie within the force matrix. Values are clamped to [0, 1].
double mean_frontier_force(const DoubleMatrix& force, const Rect& fr);

/// Full outcome distribution of action @p a on @p droplet under the per-MC
/// relative-force field @p force.
///
/// The caller must have established that the action is enabled
/// (action_enabled), so all frontiers index valid cells. Zero-probability
/// outcomes are omitted; the remaining probabilities sum to 1.
std::vector<Outcome> action_outcomes(const Rect& droplet, Action a,
                                     const ForceFn& force);

/// Overload reading forces from a chip-sized matrix.
std::vector<Outcome> action_outcomes(const Rect& droplet, Action a,
                                     const DoubleMatrix& force);

/// Builds the relative-force matrix F̄ = D² from a true degradation matrix
/// (simulator view; full information).
DoubleMatrix force_from_degradation(const DoubleMatrix& degradation);

/// Builds the relative-force matrix from a sensed b-bit health matrix
/// (controller view): F̄ = D̂² with D̂ = estimate_degradation(H).
DoubleMatrix force_from_health(const IntMatrix& health, int bits,
                               HealthEstimator estimator);

/// A force field with every MC at full health (used by the
/// degradation-unaware baseline router).
DoubleMatrix full_health_force(int width, int height);

}  // namespace meda
