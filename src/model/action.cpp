#include "model/action.hpp"

#include "util/check.hpp"

namespace meda {

ActionClass action_class(Action a) {
  switch (a) {
    case Action::kN:
    case Action::kS:
    case Action::kE:
    case Action::kW:
      return ActionClass::kCardinal;
    case Action::kNN:
    case Action::kSS:
    case Action::kEE:
    case Action::kWW:
      return ActionClass::kDouble;
    case Action::kNE:
    case Action::kNW:
    case Action::kSE:
    case Action::kSW:
      return ActionClass::kOrdinal;
    case Action::kWidenNE:
    case Action::kWidenNW:
    case Action::kWidenSE:
    case Action::kWidenSW:
      return ActionClass::kWiden;
    case Action::kHeightenNE:
    case Action::kHeightenNW:
    case Action::kHeightenSE:
    case Action::kHeightenSW:
      return ActionClass::kHeighten;
  }
  throw InvariantError("unknown action");
}

Dir cardinal_of(Action a) {
  switch (a) {
    case Action::kN:
    case Action::kNN:
      return Dir::N;
    case Action::kS:
    case Action::kSS:
      return Dir::S;
    case Action::kE:
    case Action::kEE:
      return Dir::E;
    case Action::kW:
    case Action::kWW:
      return Dir::W;
    default:
      throw PreconditionError("cardinal_of on a non-cardinal action");
  }
}

Ordinal ordinal_of(Action a) {
  switch (a) {
    case Action::kNE:
    case Action::kWidenNE:
    case Action::kHeightenNE:
      return Ordinal::NE;
    case Action::kNW:
    case Action::kWidenNW:
    case Action::kHeightenNW:
      return Ordinal::NW;
    case Action::kSE:
    case Action::kWidenSE:
    case Action::kHeightenSE:
      return Ordinal::SE;
    case Action::kSW:
    case Action::kWidenSW:
    case Action::kHeightenSW:
      return Ordinal::SW;
    default:
      throw PreconditionError("ordinal_of on a cardinal/double action");
  }
}

Rect apply(Action a, const Rect& droplet) {
  MEDA_REQUIRE(droplet.valid(), "apply on an invalid droplet");
  const Rect& d = droplet;
  switch (a) {
    case Action::kN: return d.shifted(0, 1);
    case Action::kS: return d.shifted(0, -1);
    case Action::kE: return d.shifted(1, 0);
    case Action::kW: return d.shifted(-1, 0);
    case Action::kNN: return d.shifted(0, 2);
    case Action::kSS: return d.shifted(0, -2);
    case Action::kEE: return d.shifted(2, 0);
    case Action::kWW: return d.shifted(-2, 0);
    case Action::kNE: return d.shifted(1, 1);
    case Action::kNW: return d.shifted(-1, 1);
    case Action::kSE: return d.shifted(1, -1);
    case Action::kSW: return d.shifted(-1, -1);
    // A_↓: width +1 toward the corner's E/W side, height −1 from the
    // corner's opposite N/S side (the droplet creeps toward the corner).
    case Action::kWidenNE:
      MEDA_REQUIRE(d.height() >= 2, "widen on unit-height droplet");
      return Rect{d.xa, d.ya + 1, d.xb + 1, d.yb};
    case Action::kWidenNW:
      MEDA_REQUIRE(d.height() >= 2, "widen on unit-height droplet");
      return Rect{d.xa - 1, d.ya + 1, d.xb, d.yb};
    case Action::kWidenSE:
      MEDA_REQUIRE(d.height() >= 2, "widen on unit-height droplet");
      return Rect{d.xa, d.ya, d.xb + 1, d.yb - 1};
    case Action::kWidenSW:
      MEDA_REQUIRE(d.height() >= 2, "widen on unit-height droplet");
      return Rect{d.xa - 1, d.ya, d.xb, d.yb - 1};
    // A_↑: height +1 toward the corner's N/S side, width −1 from the
    // corner's opposite E/W side.
    case Action::kHeightenNE:
      MEDA_REQUIRE(d.width() >= 2, "heighten on unit-width droplet");
      return Rect{d.xa + 1, d.ya, d.xb, d.yb + 1};
    case Action::kHeightenNW:
      MEDA_REQUIRE(d.width() >= 2, "heighten on unit-width droplet");
      return Rect{d.xa, d.ya, d.xb - 1, d.yb + 1};
    case Action::kHeightenSE:
      MEDA_REQUIRE(d.width() >= 2, "heighten on unit-width droplet");
      return Rect{d.xa + 1, d.ya - 1, d.xb, d.yb};
    case Action::kHeightenSW:
      MEDA_REQUIRE(d.width() >= 2, "heighten on unit-width droplet");
      return Rect{d.xa, d.ya - 1, d.xb - 1, d.yb};
  }
  throw InvariantError("unknown action");
}

std::string_view to_string(Action a) {
  switch (a) {
    case Action::kN: return "a_N";
    case Action::kS: return "a_S";
    case Action::kE: return "a_E";
    case Action::kW: return "a_W";
    case Action::kNN: return "a_NN";
    case Action::kSS: return "a_SS";
    case Action::kEE: return "a_EE";
    case Action::kWW: return "a_WW";
    case Action::kNE: return "a_NE";
    case Action::kNW: return "a_NW";
    case Action::kSE: return "a_SE";
    case Action::kSW: return "a_SW";
    case Action::kWidenNE: return "a_dn_NE";
    case Action::kWidenNW: return "a_dn_NW";
    case Action::kWidenSE: return "a_dn_SE";
    case Action::kWidenSW: return "a_dn_SW";
    case Action::kHeightenNE: return "a_up_NE";
    case Action::kHeightenNW: return "a_up_NW";
    case Action::kHeightenSE: return "a_up_SE";
    case Action::kHeightenSW: return "a_up_SW";
  }
  return "a_?";
}

}  // namespace meda
