#include "model/smg.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace meda::smg {

Game::Game(Rect chip_bounds, ActionRules rules, int health_bits,
           HealthEstimator estimator)
    : chip_bounds_(chip_bounds),
      rules_(rules),
      health_bits_(health_bits),
      estimator_(estimator) {
  MEDA_REQUIRE(chip_bounds.valid(), "invalid chip bounds");
  MEDA_REQUIRE(health_bits >= 1 && health_bits <= 16,
               "health bits out of range");
}

std::vector<Action> Game::enabled_actions(const State& s) const {
  MEDA_REQUIRE(s.turn == Player::kController, "not the controller's turn");
  std::vector<Action> actions;
  for (Action a : kAllActions)
    if (action_enabled(a, s.droplet, rules_, chip_bounds_))
      actions.push_back(a);
  return actions;
}

std::vector<Branch> Game::controller_transition(const State& s,
                                                Action a) const {
  MEDA_REQUIRE(s.turn == Player::kController, "not the controller's turn");
  MEDA_REQUIRE(action_enabled(a, s.droplet, rules_, chip_bounds_),
               "action not enabled in this state");
  const DoubleMatrix force =
      force_from_health(s.health, health_bits_, estimator_);
  std::vector<Branch> branches;
  for (const Outcome& o : action_outcomes(s.droplet, a, force)) {
    Branch b;
    b.state = State{o.droplet, s.health, Player::kDegradation};
    b.probability = o.probability;
    branches.push_back(std::move(b));
  }
  return branches;
}

State Game::degradation_transition(const State& s,
                                   const DegradationMove& m) const {
  MEDA_REQUIRE(s.turn == Player::kDegradation,
               "not the degradation player's turn");
  State next = s;
  for (const Vec2i& cell : m.cells) {
    MEDA_REQUIRE(next.health.in_bounds(cell.x, cell.y),
                 "degradation move outside the chip");
    int& h = next.health.at(cell.x, cell.y);
    h = std::max(0, h - 1);
  }
  next.turn = Player::kController;
  return next;
}

}  // namespace meda::smg
