#pragma once

#include <array>
#include <string_view>

#include "geometry/direction.hpp"
#include "geometry/rect.hpp"

/// @file action.hpp
/// The microfluidic action set A = A_d ∪ A_dd ∪ A_dd' ∪ A_↓ ∪ A_↑ of
/// Section V-B and the effect of each action on a droplet (Fig. 9).

namespace meda {

/// A droplet-controller action. The 20 actions split into five classes:
///  - single-step cardinal movements (A_d),
///  - double-step cardinal movements (A_dd),
///  - ordinal (diagonal) movements (A_dd'),
///  - width-increasing morphs A_↓ (droplet gets wider and shorter), and
///  - height-increasing morphs A_↑ (droplet gets taller and narrower).
enum class Action : unsigned char {
  // A_d
  kN, kS, kE, kW,
  // A_dd
  kNN, kSS, kEE, kWW,
  // A_dd'
  kNE, kNW, kSE, kSW,
  // A_↓ — increase width toward the named corner
  kWidenNE, kWidenNW, kWidenSE, kWidenSW,
  // A_↑ — increase height toward the named corner
  kHeightenNE, kHeightenNW, kHeightenSE, kHeightenSW,
};

inline constexpr std::array<Action, 20> kAllActions = {
    Action::kN,          Action::kS,          Action::kE,
    Action::kW,          Action::kNN,         Action::kSS,
    Action::kEE,         Action::kWW,         Action::kNE,
    Action::kNW,         Action::kSE,         Action::kSW,
    Action::kWidenNE,    Action::kWidenNW,    Action::kWidenSE,
    Action::kWidenSW,    Action::kHeightenNE, Action::kHeightenNW,
    Action::kHeightenSE, Action::kHeightenSW,
};

/// Structural class of an action; determines its event space (Section V-B).
enum class ActionClass : unsigned char {
  kCardinal,  ///< A_d: move one MC in a cardinal direction
  kDouble,    ///< A_dd: move two MCs in a cardinal direction
  kOrdinal,   ///< A_dd': move one MC diagonally
  kWiden,     ///< A_↓: width +1, height −1
  kHeighten,  ///< A_↑: height +1, width −1
};

/// Returns the class of @p a.
ActionClass action_class(Action a);

/// Cardinal direction of a movement action. Requires class kCardinal/kDouble.
Dir cardinal_of(Action a);

/// Ordinal corner of an ordinal or morphing action. Requires class
/// kOrdinal/kWiden/kHeighten.
Ordinal ordinal_of(Action a);

/// The droplet resulting from *successful* execution of @p a on @p droplet
/// (δ^(k+1) = a(δ^(k))). Requires a valid droplet; morphs additionally
/// require the shrinking dimension to be at least 2 (else the result would
/// be degenerate — guards prevent this upstream).
Rect apply(Action a, const Rect& droplet);

/// Short mnemonic, e.g. "a_NE", "a_dn_SE" (A_↓), "a_up_NW" (A_↑).
std::string_view to_string(Action a);

}  // namespace meda
