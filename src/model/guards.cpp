#include "model/guards.hpp"

#include "model/frontier.hpp"
#include "util/check.hpp"

namespace meda {

bool guard_satisfied(Action a, const Rect& d, const ActionRules& rules) {
  MEDA_REQUIRE(d.valid(), "guard on an invalid droplet");
  MEDA_REQUIRE(rules.max_aspect_ratio >= 1.0, "aspect ratio bound must be >= 1");
  const double r = rules.max_aspect_ratio;
  switch (action_class(a)) {
    case ActionClass::kCardinal:
    case ActionClass::kOrdinal:
      return true;
    case ActionClass::kDouble:
      // A droplet is reliably movable at most half its length per cycle.
      return is_vertical(cardinal_of(a)) ? d.height() >= 4 : d.width() >= 4;
    case ActionClass::kHeighten: {
      // g_↑: (y_b − y_a + 2)/(x_b − x_a) ≤ r — the post-morph aspect h'/w'.
      if (d.width() < 2) return false;  // result would have zero width
      return static_cast<double>(d.yb - d.ya + 2) <=
             r * static_cast<double>(d.xb - d.xa);
    }
    case ActionClass::kWiden: {
      // g_↓: (x_b − x_a + 2)/(y_b − y_a) ≤ r — the post-morph aspect w'/h'.
      if (d.height() < 2) return false;  // result would have zero height
      return static_cast<double>(d.xb - d.xa + 2) <=
             r * static_cast<double>(d.yb - d.ya);
    }
  }
  throw InvariantError("unknown action class");
}

bool action_enabled(Action a, const Rect& d, const ActionRules& rules,
                    const Rect& chip) {
  switch (action_class(a)) {
    case ActionClass::kCardinal:
      break;
    case ActionClass::kDouble:
      if (!rules.enable_double_steps) return false;
      break;
    case ActionClass::kOrdinal:
      if (!rules.enable_ordinal) return false;
      break;
    case ActionClass::kWiden:
    case ActionClass::kHeighten:
      if (!rules.enable_morphing) return false;
      break;
  }
  if (!guard_satisfied(a, d, rules)) return false;

  // The final droplet must stay on the chip.
  if (!chip.contains(apply(a, d))) return false;

  // Every pulling frontier must consist of existing MCs. For double-step
  // actions this covers both steps (the second step's frontier is evaluated
  // on the one-step-shifted droplet).
  const FrontierDirs dirs = pulling_directions(a);
  for (int i = 0; i < dirs.count; ++i) {
    const Rect fr = frontier(d, a, dirs.dirs[i]);
    if (!fr.valid() || !chip.contains(fr)) return false;
  }
  if (action_class(a) == ActionClass::kDouble) {
    const Vec2i step = unit(cardinal_of(a));
    const Rect mid = d.shifted(step.x, step.y);
    const Rect fr2 = frontier(mid, a, cardinal_of(a));
    if (!fr2.valid() || !chip.contains(fr2)) return false;
  }
  return true;
}

}  // namespace meda
