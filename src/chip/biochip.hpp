#pragma once

#include <cstdint>
#include <vector>

#include "chip/microelectrode.hpp"
#include "geometry/rect.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

/// @file biochip.hpp
/// The MEDA biochip substrate: a W×H array of microelectrode cells with
/// degradation tracking and health sensing (Sections III-V).

namespace meda {

/// Uniform sampling range for per-MC degradation constants
/// (Section VII-B uses c ~ U(200, 500) and τ ~ U(0.5, 0.9)).
struct DegradationRange {
  double tau_lo = 0.5;
  double tau_hi = 0.9;
  double c_lo = 200.0;
  double c_hi = 500.0;

  /// Samples one (τ, c) pair.
  DegradationParams sample(Rng& rng) const;
};

/// Chip-level configuration.
struct BiochipConfig {
  int width = 60;        ///< W, number of MC columns
  int height = 30;       ///< H, number of MC rows
  int health_bits = 2;   ///< b, health-sensor resolution (paper's design: 2)
  DegradationRange degradation{};  ///< constants for normal MCs
};

/// A MEDA biochip: owns the MC array, applies actuation patterns, and exposes
/// the three matrices of the paper — actuation counts N, true degradation D,
/// and sensed health H.
class Biochip {
 public:
  /// Builds a chip whose MCs get (τ, c) sampled from config.degradation.
  Biochip(const BiochipConfig& config, Rng& rng);

  int width() const { return config_.width; }
  int height() const { return config_.height; }
  int health_bits() const { return config_.health_bits; }
  const BiochipConfig& config() const { return config_; }

  /// The full chip area as a rectangle (0, 0, W-1, H-1).
  Rect bounds() const {
    return Rect{0, 0, config_.width - 1, config_.height - 1};
  }

  bool in_bounds(int x, int y) const {
    return x >= 0 && x < config_.width && y >= 0 && y < config_.height;
  }
  bool in_bounds(const Rect& r) const {
    return r.valid() && bounds().contains(r);
  }

  Microelectrode& mc(int x, int y);
  const Microelectrode& mc(int x, int y) const;

  /// Applies one operational cycle's actuation pattern: every set cell in
  /// @p pattern is charged once (its actuation count increments).
  void actuate(const BoolMatrix& pattern);

  /// Actuates every cell inside @p cells (clipped to the chip bounds).
  void actuate(const Rect& cells);

  /// True degradation matrix D (full-information view; simulator-only).
  DoubleMatrix degradation_matrix() const;

  /// Sensed b-bit health matrix H (what the controller observes).
  IntMatrix health_matrix() const;

  /// Sensed health restricted to @p area (clipped to chip bounds); cells are
  /// addressed by absolute chip coordinates in the returned matrix' frame
  /// starting at the clipped area's lower-left corner.
  IntMatrix health_matrix(const Rect& area) const;

  /// Actuation-count matrix N.
  Matrix<std::uint64_t> actuation_matrix() const;

  /// Total number of MC actuations applied so far (Σ N_ij).
  std::uint64_t total_actuations() const { return total_actuations_; }

  /// Number of operational cycles applied via actuate().
  std::uint64_t cycles() const { return cycles_; }

 private:
  std::size_t index(int x, int y) const {
    return static_cast<std::size_t>(y) *
               static_cast<std::size_t>(config_.width) +
           static_cast<std::size_t>(x);
  }

  BiochipConfig config_;
  std::vector<Microelectrode> cells_;
  std::uint64_t total_actuations_ = 0;
  std::uint64_t cycles_ = 0;
};

}  // namespace meda
