#include "chip/scan_chain.hpp"

#include "util/check.hpp"

namespace meda {

std::vector<bool> scan_out_health(const IntMatrix& health, int bits) {
  MEDA_REQUIRE(bits >= 1 && bits <= 16, "health bits out of range");
  std::vector<bool> stream;
  stream.reserve(health.size() * static_cast<std::size_t>(bits));
  for (int y = 0; y < health.height(); ++y) {
    for (int x = 0; x < health.width(); ++x) {
      const int code = health(x, y);
      MEDA_REQUIRE(code >= 0 && code < (1 << bits),
                   "health code does not fit the scan width");
      for (int b = 0; b < bits; ++b) stream.push_back((code >> b) & 1);
    }
  }
  return stream;
}

IntMatrix scan_in_health(const std::vector<bool>& stream, int width,
                         int height, int bits) {
  MEDA_REQUIRE(bits >= 1 && bits <= 16, "health bits out of range");
  MEDA_REQUIRE(stream.size() == static_cast<std::size_t>(width) * height *
                                    static_cast<std::size_t>(bits),
               "scan stream length mismatch");
  IntMatrix health(width, height);
  std::size_t pos = 0;
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      int code = 0;
      for (int b = 0; b < bits; ++b)
        code |= static_cast<int>(stream[pos++]) << b;
      health(x, y) = code;
    }
  }
  return health;
}

std::vector<bool> scan_out_actuation(const BoolMatrix& pattern) {
  std::vector<bool> stream;
  stream.reserve(pattern.size());
  for (int y = 0; y < pattern.height(); ++y)
    for (int x = 0; x < pattern.width(); ++x)
      stream.push_back(pattern(x, y) != 0);
  return stream;
}

BoolMatrix scan_in_actuation(const std::vector<bool>& stream, int width,
                             int height) {
  MEDA_REQUIRE(stream.size() == static_cast<std::size_t>(width) * height,
               "scan stream length mismatch");
  BoolMatrix pattern(width, height);
  std::size_t pos = 0;
  for (int y = 0; y < height; ++y)
    for (int x = 0; x < width; ++x)
      pattern(x, y) = stream[pos++] ? 1 : 0;
  return pattern;
}

}  // namespace meda
