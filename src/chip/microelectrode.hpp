#pragma once

#include <cstdint>
#include <limits>

#include "chip/degradation.hpp"

/// @file microelectrode.hpp
/// A single microelectrode cell's reliability state.

namespace meda {

/// Reliability state of one microelectrode cell (MC).
///
/// Tracks the actuation count n and evaluates the degradation model of
/// Section IV-B. A "faulty" MC (Section VII-C fault injection) additionally
/// exhibits a sudden, permanent failure — D drops to 0 — once its actuation
/// count reaches a preassigned threshold.
class Microelectrode {
 public:
  Microelectrode() = default;

  /// Healthy MC with the given degradation constants.
  explicit Microelectrode(DegradationParams params) : params_(params) {}

  /// Marks this MC as fault-injected: it fails permanently when the actuation
  /// count reaches @p fail_at_actuations.
  void inject_fault(std::uint64_t fail_at_actuations) {
    fail_at_ = fail_at_actuations;
  }

  /// True if a fault was injected (regardless of whether it has tripped yet).
  bool fault_injected() const {
    return fail_at_ != std::numeric_limits<std::uint64_t>::max();
  }

  /// True once an injected fault has tripped (n >= threshold).
  bool failed() const { return actuations_ >= fail_at_; }

  /// Registers one actuation (one operational cycle with this MC charged).
  void actuate() { ++actuations_; }

  /// Registers @p n actuations at once (used by accelerated-aging setups).
  void actuate_n(std::uint64_t n) { actuations_ += n; }

  std::uint64_t actuations() const { return actuations_; }
  const DegradationParams& params() const { return params_; }

  /// True degradation level D(n); 0 after a sudden failure. Cached per
  /// actuation count — health is sensed every operational cycle, while most
  /// MCs are not actuated most cycles.
  double degradation() const {
    if (failed()) return 0.0;
    if (cached_for_ != actuations_ + 1) {
      cached_degradation_ = params_.degradation(actuations_);
      cached_for_ = actuations_ + 1;  // +1 keeps 0 as the "unset" marker
    }
    return cached_degradation_;
  }

  /// True relative EWOD force F̄(n) = D(n)².
  double relative_force() const {
    const double d = degradation();
    return d * d;
  }

  /// b-bit sensed health code H(n) as produced by the dual-DFF sensor.
  int health(int bits) const { return quantize_health(degradation(), bits); }

 private:
  DegradationParams params_{};
  std::uint64_t actuations_ = 0;
  std::uint64_t fail_at_ = std::numeric_limits<std::uint64_t>::max();
  mutable std::uint64_t cached_for_ = 0;
  mutable double cached_degradation_ = 1.0;
};

}  // namespace meda
