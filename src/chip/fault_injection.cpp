#include "chip/fault_injection.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/check.hpp"

namespace meda {

namespace {

std::uint64_t sample_threshold(const FaultInjectionConfig& cfg, Rng& rng) {
  MEDA_REQUIRE(cfg.fail_at_lo <= cfg.fail_at_hi,
               "fault threshold range invalid");
  return static_cast<std::uint64_t>(rng.uniform_int(
      static_cast<int>(cfg.fail_at_lo), static_cast<int>(cfg.fail_at_hi)));
}

/// Grows @p chosen to exactly @p target cells by repeatedly adding a random
/// unchosen 4-neighbor of an already-chosen cell (so every added cell stays
/// attached to a cluster). No-op when @p chosen is empty or already large
/// enough; stops early if the whole chip is chosen.
void grow_frontier(std::unordered_set<Vec2i>& chosen, int width, int height,
                   int target, Rng& rng) {
  while (!chosen.empty() && static_cast<int>(chosen.size()) < target) {
    std::vector<Vec2i> frontier;
    for (const Vec2i& p : chosen) {
      const Vec2i neighbors[4] = {{p.x + 1, p.y}, {p.x - 1, p.y},
                                  {p.x, p.y + 1}, {p.x, p.y - 1}};
      for (const Vec2i& n : neighbors)
        if (n.x >= 0 && n.x < width && n.y >= 0 && n.y < height &&
            !chosen.contains(n))
          frontier.push_back(n);
    }
    if (frontier.empty()) return;  // the whole chip is faulty
    // The set's iteration order is unspecified; sort for per-seed
    // determinism before drawing.
    std::sort(frontier.begin(), frontier.end());
    frontier.erase(std::unique(frontier.begin(), frontier.end()),
                   frontier.end());
    chosen.insert(
        frontier[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<int>(frontier.size()) - 1))]);
  }
}

}  // namespace

std::vector<Vec2i> inject_faults(Biochip& chip,
                                 const FaultInjectionConfig& config,
                                 Rng& rng) {
  MEDA_REQUIRE(config.faulty_fraction >= 0.0 && config.faulty_fraction <= 1.0,
               "faulty fraction out of range");
  std::vector<Vec2i> injected;
  if (config.mode == FaultMode::kNone || config.faulty_fraction == 0.0)
    return injected;

  const int total = chip.width() * chip.height();
  const int target =
      static_cast<int>(std::llround(config.faulty_fraction * total));
  if (target == 0) return injected;

  std::unordered_set<Vec2i> chosen;
  if (config.mode == FaultMode::kUniform) {
    for (int flat : sample_without_replacement(rng, total, target))
      chosen.insert(Vec2i{flat % chip.width(), flat / chip.width()});
  } else {
    MEDA_REQUIRE(config.cluster_size >= 1, "cluster size must be positive");
    const int cs = std::min({config.cluster_size, chip.width(), chip.height()});
    // Place clusters until the target cell count is covered. Clusters are
    // placed independently, so overlaps are possible (and simply merge).
    // Two guarantees keep the count exact (no silent over/undershoot):
    //  - a cluster that would overshoot the target is inserted as a raster
    //    prefix of its cells (a prefix of >= 2 cells is always contiguous,
    //    so no isolated faulty cell appears); a 1-cell remainder is instead
    //    grown from the frontier of already-chosen cells;
    //  - if random placement stalls (attempt budget exhausted on a dense
    //    chip), the deficit is grown from the frontier as well.
    const int max_attempts = 50 * (target / (cs * cs) + 1);
    int attempts = 0;
    while (static_cast<int>(chosen.size()) < target &&
           attempts++ < max_attempts) {
      const int remaining = target - static_cast<int>(chosen.size());
      if (remaining == 1 && !chosen.empty()) break;  // grow from the frontier
      const int x0 = rng.uniform_int(0, chip.width() - cs);
      const int y0 = rng.uniform_int(0, chip.height() - cs);
      for (int dy = 0; dy < cs && static_cast<int>(chosen.size()) < target;
           ++dy)
        for (int dx = 0; dx < cs && static_cast<int>(chosen.size()) < target;
             ++dx)
          chosen.insert(Vec2i{x0 + dx, y0 + dy});
    }
    grow_frontier(chosen, chip.width(), chip.height(), target, rng);
  }

  injected.reserve(chosen.size());
  for (const Vec2i& p : chosen) {
    chip.mc(p.x, p.y).inject_fault(sample_threshold(config, rng));
    injected.push_back(p);
  }
  // Deterministic output order (the set iteration order is unspecified).
  std::sort(injected.begin(), injected.end());
  return injected;
}

}  // namespace meda
