#include "chip/fault_injection.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/check.hpp"

namespace meda {

namespace {

std::uint64_t sample_threshold(const FaultInjectionConfig& cfg, Rng& rng) {
  MEDA_REQUIRE(cfg.fail_at_lo <= cfg.fail_at_hi,
               "fault threshold range invalid");
  return static_cast<std::uint64_t>(rng.uniform_int(
      static_cast<int>(cfg.fail_at_lo), static_cast<int>(cfg.fail_at_hi)));
}

}  // namespace

std::vector<Vec2i> inject_faults(Biochip& chip,
                                 const FaultInjectionConfig& config,
                                 Rng& rng) {
  MEDA_REQUIRE(config.faulty_fraction >= 0.0 && config.faulty_fraction <= 1.0,
               "faulty fraction out of range");
  std::vector<Vec2i> injected;
  if (config.mode == FaultMode::kNone || config.faulty_fraction == 0.0)
    return injected;

  const int total = chip.width() * chip.height();
  const int target =
      static_cast<int>(std::llround(config.faulty_fraction * total));
  if (target == 0) return injected;

  std::unordered_set<Vec2i> chosen;
  if (config.mode == FaultMode::kUniform) {
    for (int flat : sample_without_replacement(rng, total, target))
      chosen.insert(Vec2i{flat % chip.width(), flat / chip.width()});
  } else {
    MEDA_REQUIRE(config.cluster_size >= 1, "cluster size must be positive");
    const int cs = std::min({config.cluster_size, chip.width(), chip.height()});
    // Place clusters until the target cell count is covered. Clusters are
    // placed independently, so overlaps are possible (and simply merge).
    const int max_attempts = 50 * (target / (cs * cs) + 1);
    int attempts = 0;
    while (static_cast<int>(chosen.size()) < target &&
           attempts++ < max_attempts) {
      const int x0 = rng.uniform_int(0, chip.width() - cs);
      const int y0 = rng.uniform_int(0, chip.height() - cs);
      for (int dy = 0; dy < cs; ++dy)
        for (int dx = 0; dx < cs; ++dx)
          chosen.insert(Vec2i{x0 + dx, y0 + dy});
    }
  }

  injected.reserve(chosen.size());
  for (const Vec2i& p : chosen) {
    chip.mc(p.x, p.y).inject_fault(sample_threshold(config, rng));
    injected.push_back(p);
  }
  // Deterministic output order (the set iteration order is unspecified).
  std::sort(injected.begin(), injected.end());
  return injected;
}

}  // namespace meda
