#pragma once

#include <vector>

#include "util/matrix.hpp"

/// @file scan_chain.hpp
/// The MEDA scan-chain readout path (Section III-A): every operational
/// cycle the actuation pattern is shifted *into* the MC array as a
/// bitstream, and the sensing results are shifted *out* as a bitstream.
/// With the proposed dual-DFF cell the scan-out carries b bits per MC.
///
/// Bit order: row-major from MC(0, 0), least-significant health bit first
/// within each MC (the original DFF's bit is the MSB of each code — it
/// samples first, see Section III-B).

namespace meda {

/// Serializes a b-bit health matrix into the scan-out bitstream.
/// Every code must fit in @p bits.
std::vector<bool> scan_out_health(const IntMatrix& health, int bits);

/// Parses a scan-out bitstream back into the health matrix.
/// Requires stream.size() == width·height·bits.
IntMatrix scan_in_health(const std::vector<bool>& stream, int width,
                         int height, int bits);

/// Serializes an actuation pattern into the scan-in bitstream (1 bit/MC).
std::vector<bool> scan_out_actuation(const BoolMatrix& pattern);

/// Parses an actuation bitstream. Requires stream.size() == width·height.
BoolMatrix scan_in_actuation(const std::vector<bool>& stream, int width,
                             int height);

}  // namespace meda
