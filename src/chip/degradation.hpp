#pragma once

#include <cstdint>

/// @file degradation.hpp
/// The microelectrode degradation/health model of Section IV-B.
///
/// Charge trapping makes the effective actuation voltage decay exponentially
/// with the number of actuations n:
///
///   degradation level  D(n) = V(n)/V_a ≈ τ^(n/c)        ∈ [0, 1]   (eq. 3)
///   relative EWOD force F̄(n) ≈ (V(n)/V_a)² = τ^(2n/c)   ∈ [0, 1]   (eq. 1-2)
///   observed health     H(n) = min(2^b − 1, ⌊2^b·D(n)⌋)             (b-bit)
///
/// τ ∈ [0,1] and c > 0 are per-microelectrode constants capturing the
/// degradation rate (the paper fits e.g. (τ, c) = (0.556, 822.7) from PCB
/// measurements). b is the health sensor resolution; the proposed MC design
/// of Section III provides b = 2.

namespace meda {

/// Per-microelectrode degradation constants (τ, c) of eq. (2)-(3).
struct DegradationParams {
  double tau = 0.7;  ///< base of the exponential decay, in [0, 1]
  double c = 350.0;  ///< actuation-count scale, > 0

  /// Degradation level D(n) = τ^(n/c).
  double degradation(std::uint64_t n) const;

  /// Relative EWOD force F̄(n) = τ^(2n/c) = D(n)².
  double relative_force(std::uint64_t n) const;
};

/// Quantizes a degradation level into a b-bit health code
/// H = min(2^b − 1, ⌊2^b·D⌋). The clamp keeps a brand-new microelectrode
/// (D = 1) representable in b bits; the paper's 2-bit code "11" = 3.
int quantize_health(double degradation, int bits);

/// How the synthesizer turns a quantized b-bit health code back into a
/// degradation estimate D̂ (the simulator always uses the true D).
enum class HealthEstimator : unsigned char {
  /// D̂ = H/(2^b − 1) — the paper's "substitute H for D" convention: the top
  /// code is full health and the bottom code is a dead microelectrode, so a
  /// fresh chip synthesizes exactly the shortest path and dead MCs are
  /// genuinely avoided (zero-probability transitions).
  kScaled,
  kMidpoint,  ///< D̂ = (H + 0.5)/2^b  — center of the quantization bucket
  kLower,     ///< D̂ = H/2^b          — pessimistic
  kUpper,     ///< D̂ = (H + 1)/2^b    — optimistic
};

/// Degradation estimate for health code @p health under @p bits-bit sensing.
/// Result is clamped to [0, 1].
double estimate_degradation(int health, int bits, HealthEstimator estimator);

}  // namespace meda
