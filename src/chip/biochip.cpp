#include "chip/biochip.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace meda {

DegradationParams DegradationRange::sample(Rng& rng) const {
  MEDA_REQUIRE(0.0 <= tau_lo && tau_lo <= tau_hi && tau_hi <= 1.0,
               "tau range invalid");
  MEDA_REQUIRE(0.0 < c_lo && c_lo <= c_hi, "c range invalid");
  return DegradationParams{rng.uniform(tau_lo, tau_hi),
                           rng.uniform(c_lo, c_hi)};
}

Biochip::Biochip(const BiochipConfig& config, Rng& rng) : config_(config) {
  MEDA_REQUIRE(config.width >= 1 && config.height >= 1,
               "chip dimensions must be positive");
  MEDA_REQUIRE(config.health_bits >= 1 && config.health_bits <= 16,
               "health bits out of range");
  const std::size_t n = static_cast<std::size_t>(config.width) *
                        static_cast<std::size_t>(config.height);
  cells_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    cells_.emplace_back(config.degradation.sample(rng));
}

Microelectrode& Biochip::mc(int x, int y) {
  MEDA_REQUIRE(in_bounds(x, y), "MC coordinates out of bounds");
  return cells_[index(x, y)];
}

const Microelectrode& Biochip::mc(int x, int y) const {
  MEDA_REQUIRE(in_bounds(x, y), "MC coordinates out of bounds");
  return cells_[index(x, y)];
}

void Biochip::actuate(const BoolMatrix& pattern) {
  MEDA_REQUIRE(pattern.width() == config_.width &&
                   pattern.height() == config_.height,
               "actuation pattern dimensions mismatch");
  for (int y = 0; y < config_.height; ++y) {
    for (int x = 0; x < config_.width; ++x) {
      if (pattern(x, y)) {
        cells_[index(x, y)].actuate();
        ++total_actuations_;
      }
    }
  }
  ++cycles_;
}

void Biochip::actuate(const Rect& cells) {
  const Rect clipped = cells.intersection_with(bounds());
  if (!clipped.valid()) return;
  for (int y = clipped.ya; y <= clipped.yb; ++y) {
    for (int x = clipped.xa; x <= clipped.xb; ++x) {
      cells_[index(x, y)].actuate();
      ++total_actuations_;
    }
  }
}

DoubleMatrix Biochip::degradation_matrix() const {
  DoubleMatrix d(config_.width, config_.height);
  for (int y = 0; y < config_.height; ++y)
    for (int x = 0; x < config_.width; ++x)
      d(x, y) = cells_[index(x, y)].degradation();
  return d;
}

IntMatrix Biochip::health_matrix() const {
  IntMatrix h(config_.width, config_.height);
  for (int y = 0; y < config_.height; ++y)
    for (int x = 0; x < config_.width; ++x)
      h(x, y) = cells_[index(x, y)].health(config_.health_bits);
  return h;
}

IntMatrix Biochip::health_matrix(const Rect& area) const {
  const Rect clipped = area.intersection_with(bounds());
  MEDA_REQUIRE(clipped.valid(), "health area lies outside the chip");
  IntMatrix h(clipped.width(), clipped.height());
  for (int y = clipped.ya; y <= clipped.yb; ++y)
    for (int x = clipped.xa; x <= clipped.xb; ++x)
      h(x - clipped.xa, y - clipped.ya) =
          cells_[index(x, y)].health(config_.health_bits);
  return h;
}

Matrix<std::uint64_t> Biochip::actuation_matrix() const {
  Matrix<std::uint64_t> n(config_.width, config_.height);
  for (int y = 0; y < config_.height; ++y)
    for (int x = 0; x < config_.width; ++x)
      n(x, y) = cells_[index(x, y)].actuations();
  return n;
}

}  // namespace meda
