#include "chip/sensor_channel.hpp"

#include "chip/scan_chain.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"

namespace meda {

SensorChannel::SensorChannel(const SensorNoiseConfig& config, int width,
                             int height, int bits, Rng rng)
    : config_(config), width_(width), height_(height), bits_(bits) {
  MEDA_REQUIRE(width >= 1 && height >= 1, "sensor channel needs a chip area");
  MEDA_REQUIRE(bits >= 1 && bits <= 16, "health bits out of range");
  MEDA_REQUIRE(config.bit_flip_p >= 0.0 && config.bit_flip_p <= 1.0 &&
                   config.stuck_fraction >= 0.0 &&
                   config.stuck_fraction <= 1.0 &&
                   config.frame_drop_p >= 0.0 && config.frame_drop_p < 1.0,
               "sensor noise probabilities out of range");
  const std::size_t positions = static_cast<std::size_t>(width) *
                                static_cast<std::size_t>(height) *
                                static_cast<std::size_t>(bits);
  stuck_.assign(positions, 0);
  if (config.stuck_fraction > 0.0) {
    const int n = static_cast<int>(positions);
    const int target =
        static_cast<int>(config.stuck_fraction * static_cast<double>(n) + 0.5);
    for (int flat : sample_without_replacement(rng, n, target)) {
      stuck_[static_cast<std::size_t>(flat)] =
          rng.bernoulli(config.stuck_at_one_share) ? 2 : 1;
    }
    stuck_count_ = target;
  }
}

IntMatrix SensorChannel::read(const IntMatrix& truth, Rng& rng) {
  ++frames_read_;
  if (bits_ == 0) return truth;  // default-constructed: transparent
  MEDA_OBS_COUNT("sensor.frames_read", 1);
  MEDA_REQUIRE(truth.width() == width_ && truth.height() == height_,
               "health frame does not match the channel dimensions");
  // A dropped frame never reaches the controller: it keeps the previous
  // frame. The drop is decided before per-bit noise so the random stream
  // stays aligned whether or not the frame survives.
  if (has_last_ && config_.frame_drop_p > 0.0 &&
      rng.bernoulli(config_.frame_drop_p)) {
    ++frames_dropped_;
    ++staleness_;
    MEDA_OBS_COUNT("sensor.frames_dropped", 1);
    return last_frame_;
  }
  std::vector<bool> stream = scan_out_health(truth, bits_);
  std::uint64_t flips = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    if (stuck_[i] != 0) {
      stream[i] = stuck_[i] == 2;
      continue;
    }
    if (config_.bit_flip_p > 0.0 && rng.bernoulli(config_.bit_flip_p)) {
      stream[i] = !stream[i];
      ++bits_flipped_;
      ++flips;
    }
  }
  if (flips > 0) MEDA_OBS_COUNT("sensor.bits_flipped", flips);
  last_frame_ = scan_in_health(stream, width_, height_, bits_);
  has_last_ = true;
  staleness_ = 0;
  return last_frame_;
}

}  // namespace meda
