#pragma once

#include <cstdint>
#include <vector>

#include "util/matrix.hpp"
#include "util/rng.hpp"

/// @file sensor_channel.hpp
/// Imperfect health scan-out (robustness extension of Section III).
///
/// The paper's dual-DFF sensor design assumes the b-bit health codes arrive
/// at the controller intact. Real charge-trapping hardware does not: the
/// scan chain is a long shift register clocked at speed, so readouts suffer
/// transient bit flips, individual DFFs can be stuck-at-0/1 (a manufacturing
/// or wear-out defect that persists for the chip's lifetime), and a whole
/// scan frame can be lost to a timing violation — in which case the
/// controller only has the previous (stale) frame to act on.
///
/// SensorChannel models exactly these three error modes on top of the
/// bitstream layout of scan_chain.hpp. With a default-constructed
/// SensorNoiseConfig the channel is transparent (it still serializes and
/// re-parses the frame, exercising the real readout path).

namespace meda {

/// Error-channel configuration for the health scan-out path.
struct SensorNoiseConfig {
  /// Per-bit probability of a transient flip (independent per read).
  double bit_flip_p = 0.0;
  /// Fraction of scan-chain DFF positions that are permanently stuck.
  /// Stuck positions are sampled once per chip and persist across reads.
  double stuck_fraction = 0.0;
  /// Share of stuck DFFs that are stuck-at-1 (the rest are stuck-at-0).
  double stuck_at_one_share = 0.5;
  /// Probability a whole scan frame is dropped; the reader then sees the
  /// last successfully transferred frame (staleness). The first frame is
  /// never dropped (there is nothing stale to fall back to).
  double frame_drop_p = 0.0;

  /// True when any error mode is active.
  bool enabled() const {
    return bit_flip_p > 0.0 || stuck_fraction > 0.0 || frame_drop_p > 0.0;
  }
};

/// Stateful noisy readout channel for one chip's health scan chain.
class SensorChannel {
 public:
  /// Transparent channel (no noise, no state).
  SensorChannel() = default;

  /// Samples the persistent stuck-at defects for a width×height×bits scan
  /// chain from @p rng (consumed at construction only).
  SensorChannel(const SensorNoiseConfig& config, int width, int height,
                int bits, Rng rng);

  /// Reads @p truth through the channel: serialize, corrupt, parse.
  /// Transient randomness (flips, frame drops) draws from @p rng.
  IntMatrix read(const IntMatrix& truth, Rng& rng);

  // Channel statistics ---------------------------------------------------
  std::uint64_t frames_read() const { return frames_read_; }
  std::uint64_t frames_dropped() const { return frames_dropped_; }
  std::uint64_t bits_flipped() const { return bits_flipped_; }
  /// Number of permanently stuck DFF positions.
  int stuck_bits() const { return stuck_count_; }
  /// Reads since the last fresh frame (0 right after a successful read).
  std::uint64_t staleness() const { return staleness_; }

 private:
  SensorNoiseConfig config_{};
  int width_ = 0;
  int height_ = 0;
  int bits_ = 0;
  /// Per-DFF persistence: 0 = healthy, 1 = stuck-at-0, 2 = stuck-at-1.
  std::vector<std::uint8_t> stuck_;
  int stuck_count_ = 0;
  IntMatrix last_frame_;
  bool has_last_ = false;
  std::uint64_t frames_read_ = 0;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t bits_flipped_ = 0;
  std::uint64_t staleness_ = 0;
};

}  // namespace meda
