#include "chip/degradation.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace meda {

double DegradationParams::degradation(std::uint64_t n) const {
  MEDA_REQUIRE(tau >= 0.0 && tau <= 1.0, "tau must lie in [0, 1]");
  MEDA_REQUIRE(c > 0.0, "c must be positive");
  if (n == 0) return 1.0;
  if (tau == 0.0) return 0.0;
  return std::pow(tau, static_cast<double>(n) / c);
}

double DegradationParams::relative_force(std::uint64_t n) const {
  const double d = degradation(n);
  return d * d;
}

int quantize_health(double degradation, int bits) {
  MEDA_REQUIRE(bits >= 1 && bits <= 16, "health bits out of range");
  MEDA_REQUIRE(degradation >= 0.0 && degradation <= 1.0,
               "degradation level out of range");
  const int levels = 1 << bits;
  const int h = static_cast<int>(
      std::floor(static_cast<double>(levels) * degradation));
  return std::min(h, levels - 1);
}

double estimate_degradation(int health, int bits, HealthEstimator estimator) {
  MEDA_REQUIRE(bits >= 1 && bits <= 16, "health bits out of range");
  const int levels = 1 << bits;
  MEDA_REQUIRE(health >= 0 && health < levels, "health code out of range");
  double d = 0.0;
  switch (estimator) {
    case HealthEstimator::kScaled:
      d = static_cast<double>(health) / static_cast<double>(levels - 1);
      break;
    case HealthEstimator::kMidpoint:
      d = (static_cast<double>(health) + 0.5) / static_cast<double>(levels);
      break;
    case HealthEstimator::kLower:
      d = static_cast<double>(health) / static_cast<double>(levels);
      break;
    case HealthEstimator::kUpper:
      d = (static_cast<double>(health) + 1.0) / static_cast<double>(levels);
      break;
  }
  return std::clamp(d, 0.0, 1.0);
}

}  // namespace meda
