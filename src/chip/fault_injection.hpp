#pragma once

#include <cstdint>
#include <vector>

#include "chip/biochip.hpp"
#include "geometry/point.hpp"
#include "util/rng.hpp"

/// @file fault_injection.hpp
/// Fault-injection modes of Section VII-C: a configurable fraction of MCs is
/// designated "faulty"; a faulty MC follows the normal degradation model but
/// additionally suffers a sudden permanent failure (D = 0) at a random
/// actuation count. Faulty MCs are placed either uniformly at random or as
/// randomly placed 2×2 clusters (degradation correlates spatially, Fig. 3).

namespace meda {

/// Spatial placement of fault-injected MCs.
enum class FaultMode : unsigned char {
  kNone,      ///< no injected faults
  kUniform,   ///< faulty MCs i.i.d. uniform over the array
  kClustered, ///< faulty MCs appear as 2×2 clusters
};

/// Fault-injection configuration.
struct FaultInjectionConfig {
  FaultMode mode = FaultMode::kNone;
  double faulty_fraction = 0.05;   ///< fraction of MCs made faulty
  std::uint64_t fail_at_lo = 50;   ///< sudden-failure threshold, lower bound
  std::uint64_t fail_at_hi = 400;  ///< sudden-failure threshold, upper bound
  int cluster_size = 2;            ///< cluster edge length (paper: 2×2)
};

/// Marks MCs of @p chip as faulty according to @p config and returns the
/// coordinates that were injected. Clusters may overlap (they are placed
/// independently); every injected MC gets an independent failure threshold
/// drawn from U(fail_at_lo, fail_at_hi).
std::vector<Vec2i> inject_faults(Biochip& chip,
                                 const FaultInjectionConfig& config, Rng& rng);

}  // namespace meda
