#include "core/routability.hpp"

#include <cmath>

#include "model/outcomes.hpp"
#include "util/check.hpp"

namespace meda::core {

RoutabilityReport assess_routability(const IntMatrix& health, int health_bits,
                                     const RoutabilityConfig& config,
                                     Rng& rng) {
  MEDA_REQUIRE(config.jobs > 0, "need at least one job");
  MEDA_REQUIRE(config.droplet_side >= 1, "droplet side must be positive");
  const int width = health.width();
  const int height = health.height();
  const int side = config.droplet_side;
  MEDA_REQUIRE(width > side && height > side,
               "chip too small for the droplet");
  const Rect chip{0, 0, width - 1, height - 1};

  const Synthesizer synthesizer(chip, config.synthesis);
  const DoubleMatrix fresh = full_health_force(width, height);

  RoutabilityReport report;
  report.jobs = config.jobs;
  double cycles_sum = 0.0;
  double stretch_sum = 0.0;

  for (int j = 0; j < config.jobs; ++j) {
    // Sample a start/goal pair with a minimum separation (re-draw the goal
    // a bounded number of times; fall back to whatever we have).
    const auto sample_corner = [&] {
      return Vec2i{rng.uniform_int(0, width - side),
                   rng.uniform_int(0, height - side)};
    };
    const Vec2i s = sample_corner();
    Vec2i g = sample_corner();
    for (int attempt = 0; attempt < 16 && manhattan(s, g) < config.min_distance;
         ++attempt)
      g = sample_corner();

    assay::RoutingJob rj;
    rj.start = Rect::from_size(s.x, s.y, side, side);
    rj.goal = Rect::from_size(g.x, g.y, side, side);
    rj.hazard = assay::zone(rj.start, rj.goal, chip, config.zone_margin);

    const SynthesisResult degraded =
        synthesizer.synthesize(rj, health, health_bits);
    if (!degraded.feasible || !std::isfinite(degraded.expected_cycles))
      continue;
    ++report.feasible;
    cycles_sum += degraded.expected_cycles;
    const SynthesisResult baseline =
        synthesizer.synthesize_with_force(rj, fresh);
    if (baseline.expected_cycles > 0.0)
      stretch_sum += degraded.expected_cycles / baseline.expected_cycles;
    else
      stretch_sum += 1.0;  // zero-length job
  }

  report.feasible_fraction =
      static_cast<double>(report.feasible) / report.jobs;
  if (report.feasible > 0) {
    report.mean_expected_cycles = cycles_sum / report.feasible;
    report.mean_stretch = stretch_sum / report.feasible;
  }
  return report;
}

}  // namespace meda::core
