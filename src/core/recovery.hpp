#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

/// @file recovery.hpp
/// The scheduler's structured recovery ladder (robustness extension of
/// Algorithm 3). When execution misbehaves — a droplet stops making
/// progress, synthesis comes back infeasible, sensing contradicts reality —
/// the scheduler escalates through a fixed ladder instead of burning its
/// cycle budget or failing the whole bioassay outright:
///
///   1. droplet-stuck watchdog        → forced re-sense + strategy drop
///   2. re-synthesis, bounded retries → exponential backoff between attempts
///   3. hazard quarantine             → persistently misbehaving cells are
///                                      clamped dead in the health view and
///                                      routed around (routability-gated)
///   4. replica failover              → on N-modular-redundant MOs a replica
///                                      that runs out of retries is abandoned
///                                      while its siblings keep racing
///   5. graceful per-job abort        → the MO (and its dependents) abort
///                                      with a structured reason; unrelated
///                                      MOs keep running
///
/// Every rung fired is recorded as a RecoveryEvent in the execution stats
/// and surfaced in the HTML execution report.

namespace meda::core {

/// Which rung of the ladder fired.
enum class RecoveryAction : unsigned char {
  kWatchdogResense,    ///< stuck droplet: forced re-sense, strategy dropped
  kSynthesisRetry,     ///< infeasible synthesis: retry scheduled
  kBackoff,            ///< exponential backoff wait entered
  kQuarantine,         ///< cells quarantined out of the health view
  kContentionDetour,   ///< droplet-blocked stall: re-route around the
                       ///< blocker instead of quarantining healthy cells
  kJobAbort,           ///< one MO aborted gracefully
  kSynthesisDeadline,  ///< synthesis blew its deadline: fallback route
                       ///< installed, full re-synthesis backed off
  kQuarantineParole,   ///< budget pressure: oldest quarantined cells that
                       ///< re-sensed alive were released back to the router
  kReplicaFailover,    ///< a redundant replica exhausted its per-replica
                       ///< retry budget and was abandoned; the MO keeps
                       ///< running on the surviving replicas (only
                       ///< all-replica failure escalates to kJobAbort)
};

std::string_view to_string(RecoveryAction action);

/// One recovery-ladder firing.
struct RecoveryEvent {
  RecoveryAction action = RecoveryAction::kWatchdogResense;
  std::uint64_t cycle = 0;  ///< relative to the start of the execution
  int mo = -1;              ///< affected MO (-1: execution-wide)
  std::string detail;

  friend bool operator==(const RecoveryEvent&, const RecoveryEvent&) =
      default;
};

/// Ladder tuning. `enabled = false` preserves the legacy behavior: any
/// infeasible synthesis fails the whole execution immediately and stuck
/// droplets run into the cycle limit.
struct RecoveryConfig {
  bool enabled = false;
  /// Commanded cycles without droplet progress before the watchdog fires.
  int stuck_cycles = 12;
  /// Re-synthesis attempts per routing job before escalating past retries.
  int max_retries = 3;
  /// Backoff before retry i is backoff_base_cycles << (i-1) cycles.
  int backoff_base_cycles = 4;
  /// Watchdog firings on the same routing job before its blocked frontier
  /// is quarantined.
  int quarantine_after_watchdogs = 2;
  /// Also quarantine cells the health filter flags as suspect.
  bool quarantine_suspects = true;
  /// Ceiling on the quarantine set as a fraction of the chip area.
  /// Quarantine targets a few persistently misbehaving cells; when the
  /// filter floods the scheduler with suspects (a failing *sensing
  /// channel*, not a failing substrate), quarantining them all would blind
  /// the router to most of a still-routable chip. Past the budget the
  /// ladder stops quarantining and trusts the filtered estimate instead.
  double max_quarantine_fraction = 0.15;
  /// Droplet-aware stall classification: when the watchdog fires, decide
  /// whether the droplet is blocked by another droplet (contention) or by
  /// dead/unresponsive cells. Contention stalls re-route around the
  /// blocker's footprint instead of quarantining healthy cells.
  bool classify_stalls = true;
  /// Contention detours on the same stuck task (without progress) before
  /// falling back to the quarantine escalation (livelock safety valve).
  int max_contention_detours = 3;
  /// When > 0: after each quarantine, probe chip-wide routability with this
  /// many sampled jobs; abort the job early if the feasible fraction falls
  /// below min_routable_fraction (the chip is effectively unroutable).
  int routability_probe_jobs = 0;
  double min_routable_fraction = 0.25;
  /// Progress-rate watchdog (the default): instead of "exactly stuck_cycles
  /// commanded cycles at the same position", track an EWMA of Manhattan
  /// progress toward the goal frontier per commanded cycle and fire when it
  /// decays below min_progress_rate. End-of-life chips where pulls land
  /// every few cycles keep a healthy rate and are left to crawl; true
  /// stalls decay to zero and still fire. `false` restores the fixed
  /// stuck_cycles counter (the equivalence-test behavior).
  bool progress_watchdog = true;
  /// EWMA smoothing factor α for the progress rate (weight of the newest
  /// cycle's progress). With the defaults a pure stall entered from a full
  /// rate fires in ~50 cycles and from an end-of-life crawl (~0.3
  /// cells/cycle) in ~39 — deliberately more patient than the legacy
  /// stuck_cycles=12, because a premature firing escalates toward
  /// quarantining cells that were merely slow.
  double progress_alpha = 0.10;
  /// Watchdog threshold on the smoothed progress rate (cells/cycle).
  double min_progress_rate = 0.005;
  /// Deadline-expired synthesis degrades to the bounded fallback router
  /// instead of the infeasible-synthesis retry ladder.
  bool fallback_on_deadline = true;
  /// Expansion budget handed to the fallback router.
  int fallback_max_expansions = 20000;
  /// While a fallback route is active, full re-synthesis is retried only
  /// after an exponential backoff on health changes: attempt i waits
  /// fallback_backoff_base_cycles << (i-1) cycles (capped below) after the
  /// deadline expiry before the next full attempt.
  int fallback_backoff_base_cycles = 16;
  int fallback_backoff_max_cycles = 256;
};

/// Aggregated ladder counters for one execution.
struct RecoveryCounters {
  int watchdog_fires = 0;
  int forced_resenses = 0;
  int synthesis_retries = 0;
  std::uint64_t backoff_cycles = 0;
  int quarantined_cells = 0;
  int contention_detours = 0;
  int aborted_jobs = 0;
  int synthesis_deadlines = 0;  ///< deadline-expired synthesis calls
  int fallback_routes = 0;      ///< fallback routes installed
  int paroled_cells = 0;        ///< quarantined cells released on re-sense

  bool any() const {
    return watchdog_fires > 0 || forced_resenses > 0 ||
           synthesis_retries > 0 || backoff_cycles > 0 ||
           quarantined_cells > 0 || contention_detours > 0 ||
           aborted_jobs > 0 || synthesis_deadlines > 0 ||
           fallback_routes > 0 || paroled_cells > 0;
  }

  /// Sums @p other into this (campaign roll-ups).
  void accumulate(const RecoveryCounters& other) {
    watchdog_fires += other.watchdog_fires;
    forced_resenses += other.forced_resenses;
    synthesis_retries += other.synthesis_retries;
    backoff_cycles += other.backoff_cycles;
    quarantined_cells += other.quarantined_cells;
    contention_detours += other.contention_detours;
    aborted_jobs += other.aborted_jobs;
    synthesis_deadlines += other.synthesis_deadlines;
    fallback_routes += other.fallback_routes;
    paroled_cells += other.paroled_cells;
  }

  friend bool operator==(const RecoveryCounters&, const RecoveryCounters&) =
      default;
};

/// Renders events as one line each ("cycle 412 [quarantine] MO 3: ...").
std::string format_events(const std::vector<RecoveryEvent>& events);

}  // namespace meda::core
