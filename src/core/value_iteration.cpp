#include "core/value_iteration.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace meda::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Probability mass a choice keeps in state @p s (failed-pull self-loop).
double self_loop_mass(const Choice& choice, std::uint32_t s) {
  double q = 0.0;
  for (const Transition& t : choice.transitions)
    if (t.target == s) q += t.probability;
  return q;
}

/// Σ p·V(target) over the non-self-loop branches.
double off_state_value(const Choice& choice, std::uint32_t s,
                       const std::vector<double>& values) {
  double acc = 0.0;
  for (const Transition& t : choice.transitions)
    if (t.target != s) acc += t.probability * values[t.target];
  return acc;
}

/// Shared solver telemetry: sweeps/residual per query, both as span args
/// and registry metrics.
template <typename Span>
void record_solve(Span& span, const Solution& sol, const char* query) {
  if (!MEDA_OBS_ACTIVE()) return;  // skip the name formatting entirely
  span.arg("sweeps", static_cast<std::int64_t>(sol.iterations));
  span.arg("residual", sol.final_residual);
  span.arg("converged", static_cast<std::int64_t>(sol.converged ? 1 : 0));
  MEDA_OBS_COUNT(std::string("vi.") + query + ".solves", 1);
  MEDA_OBS_COUNT(std::string("vi.") + query + ".sweeps",
                 static_cast<std::uint64_t>(sol.iterations));
  MEDA_OBS_OBSERVE(std::string("vi.") + query + ".sweeps_per_solve",
                   static_cast<double>(sol.iterations), obs::kPow2Buckets);
  if (!sol.converged) MEDA_OBS_COUNT("vi.nonconverged", 1);
}

}  // namespace

Solution solve_pmax(const RoutingMdp& mdp, const SolveConfig& config) {
  MEDA_REQUIRE(config.tolerance > 0.0 && config.max_iterations > 0,
               "invalid solve configuration");
  MEDA_OBS_SPAN(span, "vi", "pmax");
  const std::size_t n = mdp.droplets.size();
  Solution sol;
  sol.values.assign(mdp.state_count(), 0.0);
  sol.chosen.assign(n, -1);
  for (std::size_t s = 0; s < n; ++s)
    if (mdp.is_goal[s]) sol.values[s] = 1.0;

  for (int iter = 0; iter < config.max_iterations; ++iter) {
    double delta = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      if (mdp.is_goal[s] || mdp.choices[s].empty()) continue;
      double best = 0.0;
      int best_choice = -1;
      for (std::size_t c = 0; c < mdp.choices[s].size(); ++c) {
        const Choice& choice = mdp.choices[s][c];
        const double q =
            self_loop_mass(choice, static_cast<std::uint32_t>(s));
        double value;
        if (q >= 1.0 - 1e-12) {
          value = 0.0;  // pure self-loop: never reaches goal
        } else {
          // Value of committing to this choice until the state changes.
          value = off_state_value(choice, static_cast<std::uint32_t>(s),
                                  sol.values) /
                  (1.0 - q);
        }
        if (value > best + 1e-15 || best_choice < 0) {
          best = value;
          best_choice = static_cast<int>(c);
        }
      }
      best = std::min(best, 1.0);  // numeric slack
      delta = std::max(delta, std::abs(best - sol.values[s]));
      sol.values[s] = best;
      sol.chosen[s] = best_choice;
    }
    sol.iterations = iter + 1;
    sol.final_residual = delta;
    if (delta < config.tolerance) {
      sol.converged = true;
      break;
    }
  }
  record_solve(span, sol, "pmax");
  return sol;
}

Solution solve_rmin(const RoutingMdp& mdp, const SolveConfig& config) {
  MEDA_REQUIRE(config.tolerance > 0.0 && config.max_iterations > 0,
               "invalid solve configuration");
  MEDA_OBS_SPAN(span, "vi", "rmin");
  const std::size_t n = mdp.droplets.size();

  // Almost-sure-winning region: with retry self-loops the maximum reach
  // probability is 1 exactly on the states that admit an a.s. strategy.
  const Solution pmax = solve_pmax(mdp, config);
  std::vector<bool> winning(mdp.state_count(), false);
  for (std::size_t s = 0; s < mdp.state_count(); ++s)
    winning[s] = pmax.values[s] >= 1.0 - 1e-6;

  Solution sol;
  sol.values.assign(mdp.state_count(), kInf);
  sol.chosen.assign(n, -1);
  sol.values[mdp.hazard_sink()] = kInf;
  for (std::size_t s = 0; s < n; ++s)
    if (mdp.is_goal[s] && winning[s]) sol.values[s] = 0.0;

  for (int iter = 0; iter < config.max_iterations; ++iter) {
    double delta = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      if (mdp.is_goal[s] || !winning[s] || mdp.choices[s].empty()) continue;
      double best = kInf;
      int best_choice = -1;
      for (std::size_t c = 0; c < mdp.choices[s].size(); ++c) {
        const Choice& choice = mdp.choices[s][c];
        // A choice is admissible only if it keeps the run inside the
        // winning region with probability 1.
        bool safe = true;
        for (const Transition& t : choice.transitions) {
          if (t.probability > 0.0 && !winning[t.target]) {
            safe = false;
            break;
          }
        }
        if (!safe) continue;
        const double q =
            self_loop_mass(choice, static_cast<std::uint32_t>(s));
        if (q >= 1.0 - 1e-12) continue;  // no progress possible
        const double rest = off_state_value(
            choice, static_cast<std::uint32_t>(s), sol.values);
        const double value = (choice.cost + rest) / (1.0 - q);
        if (value < best - 1e-15) {
          best = value;
          best_choice = static_cast<int>(c);
        }
      }
      if (best_choice < 0) continue;  // keep ∞ (should not happen in S1)
      const double prev = sol.values[s];
      const double diff = std::isinf(prev) ? 1.0 : std::abs(best - prev);
      delta = std::max(delta, diff);
      sol.values[s] = best;
      sol.chosen[s] = best_choice;
    }
    sol.iterations = iter + 1;
    sol.final_residual = delta;
    if (delta < config.tolerance) {
      sol.converged = true;
      break;
    }
  }
  record_solve(span, sol, "rmin");
  return sol;
}

}  // namespace meda::core
