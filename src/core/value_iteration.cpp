#include "core/value_iteration.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <string>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace meda::core {

const char* to_string(SolveTermination termination) {
  switch (termination) {
    case SolveTermination::kConverged: return "converged";
    case SolveTermination::kSweepLimit: return "sweep_limit";
    case SolveTermination::kDeadline: return "deadline";
  }
  return "unknown";
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Fixed-capacity ring for the per-sweep residual history; drained in
/// chronological order into Solution::sweep_residuals.
class ResidualRing {
 public:
  void push(double residual) {
    if (buf_.size() < kResidualRingCapacity) {
      buf_.push_back(residual);
    } else {
      buf_[next_] = residual;  // next_ is the oldest entry once full
      next_ = (next_ + 1) % kResidualRingCapacity;
    }
  }
  std::vector<double> take_chronological() {
    std::rotate(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(next_),
                buf_.end());
    next_ = 0;
    return std::move(buf_);
  }

 private:
  std::vector<double> buf_;
  std::size_t next_ = 0;
};

/// Probability mass a choice keeps in state @p s (failed-pull self-loop).
double self_loop_mass(const Choice& choice, std::uint32_t s) {
  double q = 0.0;
  for (const Transition& t : choice.transitions)
    if (t.target == s) q += t.probability;
  return q;
}

/// Σ p·V(target) over the non-self-loop branches.
double off_state_value(const Choice& choice, std::uint32_t s,
                       const std::vector<double>& values) {
  double acc = 0.0;
  for (const Transition& t : choice.transitions)
    if (t.target != s) acc += t.probability * values[t.target];
  return acc;
}

/// Shared solver telemetry: per-solve sweep count, residual curve, states
/// touched, and termination cause — as span args, registry metrics, and
/// (when tracing) sweep-domain counter samples.
template <typename Span>
void record_solve(Span& span, const Solution& sol, const char* query,
                  const SolveConfig& config) {
  if (!MEDA_OBS_ACTIVE()) return;  // skip the name formatting entirely
  span.arg("sweeps", static_cast<std::int64_t>(sol.iterations));
  span.arg("residual", sol.final_residual);
  span.arg("converged", static_cast<std::int64_t>(sol.converged ? 1 : 0));
  span.arg("termination", to_string(sol.termination));
  span.arg("states_touched", static_cast<std::int64_t>(sol.states_touched));
  MEDA_OBS_COUNT(std::string("vi.") + query + ".solves", 1);
  MEDA_OBS_COUNT(std::string("vi.") + query + ".sweeps",
                 static_cast<std::uint64_t>(sol.iterations));
  MEDA_OBS_COUNT(std::string("vi.") + query + ".states_touched",
                 sol.states_touched);
  MEDA_OBS_OBSERVE(std::string("vi.") + query + ".sweeps_per_solve",
                   static_cast<double>(sol.iterations), obs::kPow2Buckets);
  // Cross-query sweep-count distribution (one observation per solve) and
  // the warm/cold split the incremental re-synthesis work will compare.
  MEDA_OBS_OBSERVE_LOG2("vi.sweep_count", static_cast<double>(sol.iterations));
  MEDA_OBS_OBSERVE_LOG2(config.warm_start ? "vi.sweep_count.warm"
                                          : "vi.sweep_count.cold",
                        static_cast<double>(sol.iterations));
  MEDA_OBS_COUNT(std::string("vi.term.") + to_string(sol.termination), 1);
  // Residual curve: the ring's sweeps feed the convergence histogram and,
  // when the tracer is on, a sweep-domain counter track per query.
  const std::size_t ring = sol.sweep_residuals.size();
  const bool traced = obs::ctx().tracer().enabled();
  for (std::size_t i = 0; i < ring; ++i) {
    const double residual = sol.sweep_residuals[i];
    MEDA_OBS_OBSERVE("vi.sweep_residual", residual, obs::kResidualBuckets);
    if (traced) {
      const std::uint64_t sweep =
          static_cast<std::uint64_t>(sol.iterations) - ring + i + 1;
      obs::ctx().tracer().sweep_counter(std::string("vi.residual.") + query,
                                        residual, sweep);
    }
  }
  if (!sol.converged) MEDA_OBS_COUNT("vi.nonconverged", 1);
  if (sol.deadline_expired) MEDA_OBS_COUNT("vi.deadline_expired", 1);
}

void require_valid(const SolveConfig& config) {
  MEDA_REQUIRE(config.tolerance > 0.0 && config.max_iterations > 0,
               "invalid solve configuration");
  MEDA_REQUIRE(config.warm_dirty_fraction >= 0.0 &&
                   config.warm_pop_budget_sweeps >= 0,
               "invalid warm-solve configuration");
}

// Compiled kernels ----------------------------------------------------------

/// One Bellman backup at a state: the optimizing value and local choice
/// index. Shared verbatim between the sweep loops and the warm worklist so
/// both paths perform byte-identical arithmetic and tie-breaks.
struct Backup {
  double value;
  int choice;
};

Backup pmax_backup(const CompiledMdp& m, const std::vector<double>& values,
                   std::uint32_t s) {
  const std::uint32_t cb = m.choice_offset[s];
  const std::uint32_t ce = m.choice_offset[s + 1];
  double best = 0.0;
  int best_choice = -1;
  for (std::uint32_t c = cb; c < ce; ++c) {
    double rest = 0.0;
    const std::uint32_t te = m.trans_offset[c + 1];
    for (std::uint32_t i = m.trans_offset[c]; i < te; ++i)
      rest += m.probability[i] * values[m.target[i]];
    // Pure self-loops carry inv_one_minus_q == 0 (and no off-state
    // branches), so their committed value is 0: never reaches goal.
    const double value = rest * m.inv_one_minus_q[c];
    if (value > best + kTieEps || best_choice < 0) {
      best = value;
      best_choice = static_cast<int>(c - cb);
    }
  }
  return {std::min(best, 1.0), best_choice};  // numeric slack
}

Backup rmin_backup(const CompiledMdp& m, const std::vector<double>& values,
                   const std::vector<std::uint8_t>& winning, std::uint32_t s) {
  const std::uint32_t cb = m.choice_offset[s];
  const std::uint32_t ce = m.choice_offset[s + 1];
  double best = kInf;
  int best_choice = -1;
  for (std::uint32_t c = cb; c < ce; ++c) {
    const double inv = m.inv_one_minus_q[c];
    if (inv == 0.0) continue;  // pure self-loop: no progress possible
    // Admissible only if every off-state branch stays inside the
    // winning region (the self-loop stays in s, which is winning).
    bool safe = true;
    double rest = 0.0;
    const std::uint32_t te = m.trans_offset[c + 1];
    for (std::uint32_t i = m.trans_offset[c]; i < te; ++i) {
      const std::uint32_t t = m.target[i];
      if (m.probability[i] > 0.0 && !winning[t]) {
        safe = false;
        break;
      }
      rest += m.probability[i] * values[t];
    }
    if (!safe) continue;
    const double value = (m.cost[c] + rest) * inv;
    if (value < best - kTieEps) {
      best = value;
      best_choice = static_cast<int>(c - cb);
    }
  }
  return {best, best_choice};
}

/// Goal-anchored Gauss-Seidel sweeps over the current values of @p sol until
/// convergence, the sweep limit, or the deadline. The cold kernels run this
/// from their initial seeding; the warm kernels run it after the worklist
/// phase as the verification pass — same loop, same termination criterion.
void pmax_sweeps(const CompiledMdp& m, const SolveConfig& config,
                 Solution& sol, ResidualRing& residuals) {
  while (sol.iterations < config.max_iterations) {
    // Deadline poll once per sweep: coarse enough to be free, fine enough
    // that a stuck solve stops within one sweep of the budget.
    if (config.deadline.expired()) {
      sol.deadline_expired = true;
      sol.termination = SolveTermination::kDeadline;
      return;
    }
    double delta = 0.0;
    std::uint64_t touched = 0;
    for (const std::uint32_t s : m.sweep_order) {
      if (m.is_goal[s]) continue;
      if (m.choice_offset[s] == m.choice_offset[s + 1]) continue;
      const Backup b = pmax_backup(m, sol.values, s);
      delta = std::max(delta, std::abs(b.value - sol.values[s]));
      sol.values[s] = b.value;
      sol.chosen[s] = b.choice;
      ++touched;
    }
    ++sol.iterations;
    sol.final_residual = delta;
    sol.states_touched += touched;
    residuals.push(delta);
    if (delta < config.tolerance) {
      sol.converged = true;
      sol.termination = SolveTermination::kConverged;
      return;
    }
  }
}

void rmin_sweeps(const CompiledMdp& m, const SolveConfig& config,
                 const std::vector<std::uint8_t>& winning, Solution& sol,
                 ResidualRing& residuals) {
  while (sol.iterations < config.max_iterations) {
    if (config.deadline.expired()) {
      sol.deadline_expired = true;
      sol.termination = SolveTermination::kDeadline;
      return;
    }
    double delta = 0.0;
    std::uint64_t touched = 0;
    for (const std::uint32_t s : m.sweep_order) {
      if (m.is_goal[s] || !winning[s]) continue;
      const Backup b = rmin_backup(m, sol.values, winning, s);
      if (b.choice < 0) continue;  // keep ∞ (should not happen in S1)
      const double prev = sol.values[s];
      const double diff = std::isinf(prev) ? 1.0 : std::abs(b.value - prev);
      delta = std::max(delta, diff);
      sol.values[s] = b.value;
      sol.chosen[s] = b.choice;
      ++touched;
    }
    ++sol.iterations;
    sol.final_residual = delta;
    sol.states_touched += touched;
    residuals.push(delta);
    if (delta < config.tolerance) {
      sol.converged = true;
      sol.termination = SolveTermination::kConverged;
      return;
    }
  }
}

Solution run_pmax(const CompiledMdp& m, const SolveConfig& config) {
  const std::size_t n = m.num_droplet_states;
  Solution sol;
  sol.values.assign(m.state_count(), 0.0);
  sol.chosen.assign(n, -1);
  for (std::size_t s = 0; s < n; ++s)
    if (m.is_goal[s]) sol.values[s] = 1.0;

  ResidualRing residuals;
  pmax_sweeps(m, config, sol, residuals);
  sol.sweep_residuals = residuals.take_chronological();
  return sol;
}

Solution run_rmin(const CompiledMdp& m, const SolveConfig& config,
                  const std::vector<std::uint8_t>& winning) {
  const std::size_t n = m.num_droplet_states;
  Solution sol;
  sol.values.assign(m.state_count(), kInf);
  sol.chosen.assign(n, -1);
  for (std::size_t s = 0; s < n; ++s)
    if (m.is_goal[s] && winning[s]) sol.values[s] = 0.0;

  ResidualRing residuals;
  rmin_sweeps(m, config, winning, sol, residuals);
  sol.sweep_residuals = residuals.take_chronological();
  return sol;
}

// Warm (incremental) kernels ------------------------------------------------

/// Residual-prioritized worklist with deterministic order: states bucket by
/// residual decade above tolerance (larger residuals drain first) and are
/// FIFO within a bucket. Re-pushing at a higher priority supersedes the
/// queued entry (the stale one is skipped on pop); re-pushing at the same
/// or lower priority is a no-op.
class PriorityWorklist {
 public:
  PriorityWorklist(std::size_t n, double tolerance)
      : queued_(n, -1), tol_(tolerance) {}

  void push(std::uint32_t s, double priority) {
    const std::int8_t b = bucket_of(priority);
    if (queued_[s] >= 0 && queued_[s] <= b) return;
    queued_[s] = b;
    queue_[static_cast<std::size_t>(b)].push_back(s);
  }

  /// Pops the highest-priority state into @p s; false when drained.
  bool pop(std::uint32_t& s) {
    for (std::size_t b = 0; b < kBuckets; ++b) {
      std::vector<std::uint32_t>& q = queue_[b];
      while (head_[b] < q.size()) {
        const std::uint32_t cand = q[head_[b]++];
        if (queued_[cand] == static_cast<std::int8_t>(b)) {
          queued_[cand] = -1;
          s = cand;
          return true;
        }
      }
    }
    return false;
  }

 private:
  static constexpr std::size_t kBuckets = 4;

  std::int8_t bucket_of(double priority) const {
    if (priority >= tol_ * 1e6) return 0;  // also +∞ seed priority
    if (priority >= tol_ * 1e3) return 1;
    if (priority >= tol_ * 10.0) return 2;
    return 3;
  }

  std::array<std::vector<std::uint32_t>, kBuckets> queue_;
  std::array<std::size_t, kBuckets> head_{};
  std::vector<std::int8_t> queued_;
  double tol_;
};

/// The shared worklist phase: drains @p wl with @p backup (a Backup-returning
/// callable), pushing predecessors of states whose value moved more than the
/// tolerance. Returns false when the deadline expired mid-drain. Deadline
/// polls are amortized to once per droplet-state-count pops so deterministic
/// check budgets stay sweep-denominated like the cold path's.
template <typename BackupFn, typename DiffFn>
bool drain_worklist(const CompiledMdp& m, const SolveConfig& config,
                    PriorityWorklist& wl, Solution& sol, BackupFn&& backup,
                    DiffFn&& diff_of) {
  const std::size_t n = m.num_droplet_states;
  const std::uint64_t budget =
      static_cast<std::uint64_t>(config.warm_pop_budget_sweeps) *
      static_cast<std::uint64_t>(n);
  std::uint64_t since_poll = 0;
  std::uint32_t s = 0;
  while (wl.pop(s)) {
    if (sol.warm_pops >= budget) {
      sol.warm_fell_back = true;  // adversarial delta: sweeps are cheaper
      return true;
    }
    if (++since_poll >= n) {
      since_poll = 0;
      if (config.deadline.expired()) {
        sol.deadline_expired = true;
        sol.termination = SolveTermination::kDeadline;
        return false;
      }
    }
    if (m.is_goal[s]) continue;
    if (m.choice_offset[s] == m.choice_offset[s + 1]) continue;
    const Backup b = backup(s);
    if (b.choice < 0) continue;  // rmin: no admissible choice, keep ∞
    const double diff = diff_of(sol.values[s], b.value);
    sol.values[s] = b.value;
    sol.chosen[s] = b.choice;
    ++sol.warm_pops;
    ++sol.states_touched;
    if (diff > config.tolerance) {
      for (std::uint32_t i = m.pred_offset[s]; i < m.pred_offset[s + 1]; ++i)
        wl.push(m.pred_state[i], diff);
    }
  }
  return true;
}

/// Merges the patch's dirty states with the kernel's own seed states into
/// one ascending, deduplicated worklist seed.
std::vector<std::uint32_t> merge_seeds(const std::vector<std::uint32_t>& dirty,
                                       std::vector<std::uint32_t> seeds) {
  seeds.insert(seeds.end(), dirty.begin(), dirty.end());
  std::sort(seeds.begin(), seeds.end());
  seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
  return seeds;
}

Solution run_pmax_warm(const CompiledMdp& m, const Solution& prior,
                       const std::vector<std::uint32_t>& dirty,
                       const SolveConfig& config) {
  const std::size_t n = m.num_droplet_states;
  Solution sol;
  sol.warm_started = true;
  sol.values.assign(m.state_count(), 0.0);
  sol.chosen.assign(n, -1);

  // Seed from below: goals at 1 and prior almost-sure-winning states at
  // their prior (≤ true) values — winning/losing are graph properties, so a
  // probability-only patch cannot flip them. Quantitative (0,1) states
  // restart at 0 and re-rise through the worklist: iterating pmax from
  // above is unsound (stale values survive on no-leak cycles).
  std::vector<std::uint32_t> seeds;
  for (std::size_t s = 0; s < n; ++s) {
    if (m.is_goal[s]) {
      sol.values[s] = 1.0;
      continue;
    }
    const double pv = prior.values[s];
    if (pv >= 1.0 - 1e-6) {
      sol.values[s] = pv;
    } else if (pv > 0.0) {
      seeds.push_back(static_cast<std::uint32_t>(s));
    }
  }

  const std::vector<std::uint32_t> work = merge_seeds(dirty, std::move(seeds));
  sol.warm_seeds = static_cast<std::uint32_t>(work.size());
  ResidualRing residuals;
  if (static_cast<double>(work.size()) >
      config.warm_dirty_fraction * static_cast<double>(n)) {
    sol.warm_fell_back = true;
  } else if (config.warm_pop_budget_sweeps > 0) {
    PriorityWorklist wl(n, config.tolerance);
    for (const std::uint32_t s : work) wl.push(s, kInf);
    const bool alive = drain_worklist(
        m, config, wl, sol,
        [&m, &sol](std::uint32_t s) { return pmax_backup(m, sol.values, s); },
        [](double prev, double next) { return std::abs(next - prev); });
    if (!alive) {
      sol.sweep_residuals = residuals.take_chronological();
      return sol;  // deadline: partial values, caller discards
    }
  }

  // Verification pass: plain sweeps to the cold convergence criterion. The
  // first sweep also (re)computes every state's argmax, so strategies come
  // out identical to a cold solve's.
  pmax_sweeps(m, config, sol, residuals);
  sol.sweep_residuals = residuals.take_chronological();
  return sol;
}

Solution run_rmin_warm(const CompiledMdp& m, const ReachAvoidSolution& prior,
                       const std::vector<std::uint32_t>& dirty,
                       const SolveConfig& config,
                       const std::vector<std::uint8_t>& winning) {
  const std::size_t n = m.num_droplet_states;
  Solution sol;
  sol.warm_started = true;
  sol.values.assign(m.state_count(), kInf);
  sol.chosen.assign(n, -1);

  // Seed winning states from the prior expected-cycle values (rmin's fixed
  // point over the winning region is unique — every action costs ≥ 1 — so
  // any finite seed converges). States that just entered the winning region
  // or carried no finite prior value start at ∞ and join the worklist.
  std::vector<std::uint32_t> seeds;
  for (std::size_t s = 0; s < n; ++s) {
    if (!winning[s]) continue;
    if (m.is_goal[s]) {
      sol.values[s] = 0.0;
      continue;
    }
    const bool prior_winning = prior.pmax.values[s] >= 1.0 - 1e-6;
    if (prior_winning && std::isfinite(prior.rmin.values[s]))
      sol.values[s] = prior.rmin.values[s];
    else
      seeds.push_back(static_cast<std::uint32_t>(s));
  }

  const std::vector<std::uint32_t> work = merge_seeds(dirty, std::move(seeds));
  sol.warm_seeds = static_cast<std::uint32_t>(work.size());
  ResidualRing residuals;
  if (static_cast<double>(work.size()) >
      config.warm_dirty_fraction * static_cast<double>(n)) {
    sol.warm_fell_back = true;
  } else if (config.warm_pop_budget_sweeps > 0) {
    PriorityWorklist wl(n, config.tolerance);
    for (const std::uint32_t s : work)
      if (winning[s]) wl.push(s, kInf);
    const bool alive = drain_worklist(
        m, config, wl, sol,
        [&m, &sol, &winning](std::uint32_t s) {
          if (!winning[s]) return Backup{kInf, -1};
          return rmin_backup(m, sol.values, winning, s);
        },
        [](double prev, double next) {
          return std::isinf(prev) ? 1.0 : std::abs(next - prev);
        });
    if (!alive) {
      sol.sweep_residuals = residuals.take_chronological();
      return sol;
    }
  }

  rmin_sweeps(m, config, winning, sol, residuals);
  sol.sweep_residuals = residuals.take_chronological();
  return sol;
}

/// vi.warm.* metrics behind the standard record_solve (cold solves never
/// emit these).
void record_warm_solve(const Solution& sol) {
  if (!MEDA_OBS_ACTIVE()) return;
  MEDA_OBS_COUNT("vi.warm.solves", 1);
  MEDA_OBS_COUNT("vi.warm.pops", sol.warm_pops);
  MEDA_OBS_OBSERVE_LOG2("vi.warm.dirty_seeds",
                        static_cast<double>(sol.warm_seeds));
  if (sol.warm_fell_back) MEDA_OBS_COUNT("vi.warm.full_sweep_fallbacks", 1);
}

/// Almost-sure-winning region: with retry self-loops the maximum reach
/// probability is 1 exactly on the states that admit an a.s. strategy. The
/// hazard sink (pmax 0) stays outside.
std::vector<std::uint8_t> winning_region(const CompiledMdp& m,
                                         const Solution& pmax) {
  std::vector<std::uint8_t> winning(m.state_count(), 0);
  for (std::size_t s = 0; s < m.state_count(); ++s)
    winning[s] = pmax.values[s] >= 1.0 - 1e-6 ? 1 : 0;
  return winning;
}

}  // namespace

// Compiled fast path --------------------------------------------------------

Solution solve_pmax(const CompiledMdp& mdp, const SolveConfig& config) {
  require_valid(config);
  MEDA_OBS_SPAN(span, "vi", "pmax");
  Solution sol = run_pmax(mdp, config);
  record_solve(span, sol, "pmax", config);
  return sol;
}

ReachAvoidSolution solve_reach_avoid(const CompiledMdp& mdp,
                                     const SolveConfig& config) {
  require_valid(config);
  ReachAvoidSolution out;
  out.pmax = solve_pmax(mdp, config);
  {
    MEDA_OBS_SPAN(span, "vi", "rmin");
    out.rmin = run_rmin(mdp, config, winning_region(mdp, out.pmax));
    record_solve(span, out.rmin, "rmin", config);
  }
  return out;
}

ReachAvoidSolution solve_reach_avoid(const RoutingMdp& mdp,
                                     const SolveConfig& config) {
  require_valid(config);
  return solve_reach_avoid(compile_mdp(mdp), config);
}

ReachAvoidSolution solve_reach_avoid_warm(
    const CompiledMdp& mdp, const ReachAvoidSolution& prior,
    const std::vector<std::uint32_t>& dirty, const SolveConfig& base_config) {
  require_valid(base_config);
  MEDA_REQUIRE(prior.pmax.values.size() == mdp.state_count() &&
                   prior.rmin.values.size() == mdp.state_count(),
               "prior solution does not match the compiled model");
  SolveConfig config = base_config;
  config.warm_start = true;  // truthful warm/cold telemetry split

  ReachAvoidSolution out;
  {
    MEDA_OBS_SPAN(span, "vi", "pmax");
    out.pmax = run_pmax_warm(mdp, prior.pmax, dirty, config);
    record_solve(span, out.pmax, "pmax", config);
    record_warm_solve(out.pmax);
  }
  if (out.pmax.deadline_expired) {
    // Leave rmin at its defaults; the combined result is as unusable as a
    // deadline-expired cold solve and the caller must discard it.
    out.rmin.deadline_expired = true;
    out.rmin.termination = SolveTermination::kDeadline;
    return out;
  }
  {
    MEDA_OBS_SPAN(span, "vi", "rmin");
    out.rmin = run_rmin_warm(mdp, prior, dirty, config,
                             winning_region(mdp, out.pmax));
    record_solve(span, out.rmin, "rmin", config);
    record_warm_solve(out.rmin);
  }
  return out;
}

// RoutingMdp wrappers -------------------------------------------------------

Solution solve_pmax(const RoutingMdp& mdp, const SolveConfig& config) {
  require_valid(config);
  return solve_pmax(compile_mdp(mdp), config);
}

Solution solve_rmin(const RoutingMdp& mdp, const SolveConfig& config) {
  require_valid(config);
  return solve_reach_avoid(compile_mdp(mdp), config).rmin;
}

// Legacy reference path -----------------------------------------------------

Solution solve_pmax_legacy(const RoutingMdp& mdp, const SolveConfig& config) {
  require_valid(config);
  MEDA_OBS_SPAN(span, "vi", "pmax_legacy");
  const std::size_t n = mdp.droplets.size();
  Solution sol;
  sol.values.assign(mdp.state_count(), 0.0);
  sol.chosen.assign(n, -1);
  for (std::size_t s = 0; s < n; ++s)
    if (mdp.is_goal[s]) sol.values[s] = 1.0;

  ResidualRing residuals;
  for (int iter = 0; iter < config.max_iterations; ++iter) {
    if (config.deadline.expired()) {
      sol.deadline_expired = true;
      sol.termination = SolveTermination::kDeadline;
      break;
    }
    double delta = 0.0;
    std::uint64_t touched = 0;
    for (std::size_t s = 0; s < n; ++s) {
      if (mdp.is_goal[s] || mdp.choices[s].empty()) continue;
      double best = 0.0;
      int best_choice = -1;
      for (std::size_t c = 0; c < mdp.choices[s].size(); ++c) {
        const Choice& choice = mdp.choices[s][c];
        const double q =
            self_loop_mass(choice, static_cast<std::uint32_t>(s));
        double value;
        if (q >= 1.0 - 1e-12) {
          value = 0.0;  // pure self-loop: never reaches goal
        } else {
          // Value of committing to this choice until the state changes.
          value = off_state_value(choice, static_cast<std::uint32_t>(s),
                                  sol.values) /
                  (1.0 - q);
        }
        if (value > best + kTieEps || best_choice < 0) {
          best = value;
          best_choice = static_cast<int>(c);
        }
      }
      best = std::min(best, 1.0);  // numeric slack
      delta = std::max(delta, std::abs(best - sol.values[s]));
      sol.values[s] = best;
      sol.chosen[s] = best_choice;
      ++touched;
    }
    sol.iterations = iter + 1;
    sol.final_residual = delta;
    sol.states_touched += touched;
    residuals.push(delta);
    if (delta < config.tolerance) {
      sol.converged = true;
      sol.termination = SolveTermination::kConverged;
      break;
    }
  }
  sol.sweep_residuals = residuals.take_chronological();
  record_solve(span, sol, "pmax_legacy", config);
  return sol;
}

Solution solve_rmin_legacy(const RoutingMdp& mdp, const SolveConfig& config) {
  require_valid(config);
  MEDA_OBS_SPAN(span, "vi", "rmin_legacy");
  const std::size_t n = mdp.droplets.size();

  // The legacy path's known double-solve: a full pmax from scratch just for
  // the winning region (solve_reach_avoid shares it instead).
  const Solution pmax = solve_pmax_legacy(mdp, config);
  std::vector<bool> winning(mdp.state_count(), false);
  for (std::size_t s = 0; s < mdp.state_count(); ++s)
    winning[s] = pmax.values[s] >= 1.0 - 1e-6;

  Solution sol;
  sol.values.assign(mdp.state_count(), kInf);
  sol.chosen.assign(n, -1);
  sol.values[mdp.hazard_sink()] = kInf;
  for (std::size_t s = 0; s < n; ++s)
    if (mdp.is_goal[s] && winning[s]) sol.values[s] = 0.0;

  ResidualRing residuals;
  for (int iter = 0; iter < config.max_iterations; ++iter) {
    if (config.deadline.expired()) {
      sol.deadline_expired = true;
      sol.termination = SolveTermination::kDeadline;
      break;
    }
    double delta = 0.0;
    std::uint64_t touched = 0;
    for (std::size_t s = 0; s < n; ++s) {
      if (mdp.is_goal[s] || !winning[s] || mdp.choices[s].empty()) continue;
      double best = kInf;
      int best_choice = -1;
      for (std::size_t c = 0; c < mdp.choices[s].size(); ++c) {
        const Choice& choice = mdp.choices[s][c];
        // A choice is admissible only if it keeps the run inside the
        // winning region with probability 1.
        bool safe = true;
        for (const Transition& t : choice.transitions) {
          if (t.probability > 0.0 && !winning[t.target]) {
            safe = false;
            break;
          }
        }
        if (!safe) continue;
        const double q =
            self_loop_mass(choice, static_cast<std::uint32_t>(s));
        if (q >= 1.0 - 1e-12) continue;  // no progress possible
        const double rest = off_state_value(
            choice, static_cast<std::uint32_t>(s), sol.values);
        const double value = (choice.cost + rest) / (1.0 - q);
        if (value < best - kTieEps) {
          best = value;
          best_choice = static_cast<int>(c);
        }
      }
      if (best_choice < 0) continue;  // keep ∞ (should not happen in S1)
      const double prev = sol.values[s];
      const double diff = std::isinf(prev) ? 1.0 : std::abs(best - prev);
      delta = std::max(delta, diff);
      sol.values[s] = best;
      sol.chosen[s] = best_choice;
      ++touched;
    }
    sol.iterations = iter + 1;
    sol.final_residual = delta;
    sol.states_touched += touched;
    residuals.push(delta);
    if (delta < config.tolerance) {
      sol.converged = true;
      sol.termination = SolveTermination::kConverged;
      break;
    }
  }
  sol.sweep_residuals = residuals.take_chronological();
  record_solve(span, sol, "rmin_legacy", config);
  return sol;
}

}  // namespace meda::core
