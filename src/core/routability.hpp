#pragma once

#include "core/synthesizer.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

/// @file routability.hpp
/// Chip-health analytics: how routable is a (partially degraded) MEDA
/// biochip? Samples representative routing jobs over the sensed health
/// matrix and synthesizes each one, reporting the feasible fraction and the
/// slowdown relative to a pristine chip. Useful as an end-of-life detector
/// for reused CMOS biochips (Section VII-B motivation): retire the chip
/// when the feasible fraction drops below a threshold, before a bioassay is
/// lost mid-run.

namespace meda::core {

/// Sampling configuration.
struct RoutabilityConfig {
  int jobs = 50;            ///< random start/goal pairs to sample
  int droplet_side = 4;     ///< droplet pattern edge length
  int zone_margin = 3;      ///< hazard-bound margin (ZONE rule)
  int min_distance = 10;    ///< minimum start→goal Manhattan distance
  SynthesisConfig synthesis{};
};

/// Aggregate routability of a health state.
struct RoutabilityReport {
  int jobs = 0;
  int feasible = 0;
  double feasible_fraction = 0.0;
  /// Mean model-checked E[cycles] over feasible jobs.
  double mean_expected_cycles = 0.0;
  /// Mean ratio of E[cycles] to the same job's full-health E[cycles];
  /// 1.0 on a pristine chip, grows as corridors wear out.
  double mean_stretch = 0.0;
};

/// Assesses routability of @p health (b-bit codes) by sampling random jobs.
/// Deterministic for a given @p rng state.
RoutabilityReport assess_routability(const IntMatrix& health, int health_bits,
                                     const RoutabilityConfig& config,
                                     Rng& rng);

}  // namespace meda::core
