#pragma once

#include <cstdint>
#include <vector>

#include "assay/helper.hpp"
#include "geometry/rect.hpp"
#include "model/action.hpp"
#include "model/guards.hpp"
#include "util/matrix.hpp"

/// @file mdp.hpp
/// The routing-job MDP induced from the MEDA SMG by freezing the health
/// matrix (Section VI-C, partial-order reduction): states are droplet
/// rectangles within the routing job's hazard bounds plus one absorbing
/// hazard sink; choices are the enabled microfluidic actions with their
/// probabilistic outcomes.

namespace meda::core {

/// One probabilistic branch of a choice.
struct Transition {
  std::uint32_t target = 0;   ///< state index (see RoutingMdp indexing)
  double probability = 0.0;
};

/// One enabled action in a state and its outcome distribution.
struct Choice {
  Action action = Action::kN;
  /// Reward charged when the action is taken. 1.0 under the paper's r_k
  /// (one cycle per action); the wear-aware extension adds a penalty
  /// proportional to the wear of the actuated cells.
  double cost = 1.0;
  std::vector<Transition> transitions;
};

/// PRISM-style model statistics (Table V columns).
struct ModelStats {
  std::size_t states = 0;       ///< droplet states + 1 hazard sink
  std::size_t transitions = 0;  ///< total probabilistic branches
  std::size_t choices = 0;      ///< total state-action pairs
};

/// Explicit-state MDP for one routing job.
///
/// Indexing: states 0..droplets.size()-1 are droplet rectangles; index
/// droplets.size() is the absorbing hazard sink. Goal states (droplet inside
/// δ_g) are absorbing: they carry no choices.
struct RoutingMdp {
  std::vector<Rect> droplets;             ///< droplet state rectangles
  std::vector<std::vector<Choice>> choices;  ///< per droplet state
  std::vector<bool> is_goal;              ///< per droplet state
  std::uint32_t start = 0;                ///< index of δ_s

  std::uint32_t hazard_sink() const {
    return static_cast<std::uint32_t>(droplets.size());
  }
  std::size_t state_count() const { return droplets.size() + 1; }

  ModelStats stats() const;
};

/// Builds the routing MDP by forward exploration from the job's start
/// droplet over all enabled actions under @p rules. Outcome droplets leaving
/// the hazard bounds map to the hazard sink; outcome droplets inside goal
/// become absorbing goal states.
///
/// @param rj     the routing job; rj.start must be a valid on-chip droplet
///               inside rj.hazard
/// @param force  chip-sized per-MC relative-force matrix F̄ (from the frozen
///               health matrix via force_from_health, or the true D² in
///               simulator-side analyses)
/// @param chip   chip bounds (frontier MCs must exist on the chip)
/// @param wear_penalty_lambda  λ ≥ 0 for the wear-aware extension: each
///               choice costs 1 + λ·mean(1 − F̄) over the actuated target
///               pattern, so Rmin trades cycles against wear imposed on
///               already-degraded cells (0 = the paper's r_k reward)
RoutingMdp build_routing_mdp(const assay::RoutingJob& rj,
                             const DoubleMatrix& force, const Rect& chip,
                             const ActionRules& rules,
                             double wear_penalty_lambda = 0.0);

}  // namespace meda::core
