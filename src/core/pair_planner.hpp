#pragma once

#include <optional>
#include <vector>

#include "assay/helper.hpp"
#include "model/guards.hpp"
#include "util/matrix.hpp"

/// @file pair_planner.hpp
/// Cooperative two-droplet routing (an extension beyond the paper).
///
/// The paper's framework routes each droplet independently and relies on
/// disjoint hazard zones (plus runtime blocking) to keep droplets apart.
/// That breaks down when two routing jobs *must* share a corridor — e.g.
/// two droplets exchanging ends of a narrow channel, where every
/// independent strategy deadlocks. This planner searches the product state
/// space (δ_a, δ_b) with Dijkstra, enforcing the MEDA separation rule
/// (≥ 1 free cell between the droplets) on every intermediate state, and
/// weighting each joint step by the expected number of cycles of its slower
/// move (1/p under the retry semantics of Section V-B).
///
/// The result is an open-loop joint plan — under stochastic outcomes the
/// caller re-plans from the current pair state when execution deviates
/// (the plan is exact on a full-health chip, where moves are
/// deterministic).

namespace meda::core {

/// One joint step: an action (or hold) per droplet. Both-hold never occurs.
struct PairPlanStep {
  std::optional<Action> a;
  std::optional<Action> b;
};

/// Result of a pair-planning query.
struct PairPlan {
  bool feasible = false;
  std::vector<PairPlanStep> steps;  ///< joint actions, start → goals
  double expected_cycles = 0.0;     ///< Σ per-step max expected move cost
  std::size_t states_expanded = 0;  ///< search effort (diagnostics)
};

/// Pair-planner configuration.
struct PairPlannerConfig {
  ActionRules rules{};
  /// Minimum manhattan gap between the droplets at every step (2 = one
  /// free cell, the MEDA separation rule).
  int min_gap = 2;
  /// Search-effort bound; the query fails (feasible = false) beyond it.
  std::size_t max_expansions = 2'000'000;
};

/// Plans joint motion for two routing jobs on the same chip. Both start
/// pairs and all intermediate pairs must respect the separation rule;
/// the plan ends when each droplet is inside its own goal.
PairPlan plan_pair(const assay::RoutingJob& job_a,
                   const assay::RoutingJob& job_b, const DoubleMatrix& force,
                   const Rect& chip, const PairPlannerConfig& config = {});

}  // namespace meda::core
