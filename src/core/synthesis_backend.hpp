#pragma once

#include <cstdint>

#include "assay/helper.hpp"
#include "core/library.hpp"
#include "core/synthesizer.hpp"
#include "util/matrix.hpp"

/// @file synthesis_backend.hpp
/// Seam between the scheduler and an external synthesis provider.
///
/// By default the scheduler synthesizes locally (its own Synthesizer, its
/// own library). A SynthesisBackend lets a deployment route those solves
/// through a shared provider instead — the in-process multi-tenant
/// SynthesisService in src/svc — without core depending on svc: the
/// scheduler sees only this interface; svc implements it.
///
/// The provider is allowed to *refuse* a solve (admission control under
/// overload, exhausted tenant budget): a shed outcome carries no strategy
/// and the scheduler degrades to its local bounded-A* fallback router,
/// exactly as it does for a deadline-expired local synthesis. Shedding is
/// therefore a graceful-degradation signal, never an error.

namespace meda::core {

/// What the backend produced for one synthesis request.
struct BackendOutcome {
  /// The synthesis result. Meaningless when `shed` is set (default
  /// infeasible); may itself be deadline-expired, which the scheduler
  /// handles through its normal deadline ladder.
  SynthesisResult result;
  /// The provider refused admission; no solve was attempted. The caller
  /// must degrade locally (fallback route) rather than block or abort.
  bool shed = false;
  /// Stable human-readable reason when shed ("queue_full", "tenant_cap",
  /// "budget_exhausted", "expired"); "" otherwise.
  const char* shed_reason = "";
};

/// Abstract synthesis provider the scheduler can delegate to.
class SynthesisBackend {
 public:
  virtual ~SynthesisBackend() = default;

  /// Synthesizes a strategy for @p rj over the sensed @p health view.
  /// @p digest is the caller-computed library key digest (already salted
  /// for detour/replica families) and @p cls its stats class, so provider
  /// and caller agree on cache identity.
  virtual BackendOutcome synthesize(const assay::RoutingJob& rj,
                                    const IntMatrix& health, int health_bits,
                                    std::uint64_t digest, DigestClass cls) = 0;
};

}  // namespace meda::core
