#include "core/pair_planner.hpp"

#include <queue>
#include <unordered_map>

#include "model/frontier.hpp"
#include "model/outcomes.hpp"
#include "util/check.hpp"

namespace meda::core {

namespace {

struct PairKey {
  Rect a, b;
  friend bool operator==(const PairKey&, const PairKey&) = default;
};

struct PairKeyHash {
  std::size_t operator()(const PairKey& k) const noexcept {
    const std::size_t ha = std::hash<Rect>{}(k.a);
    const std::size_t hb = std::hash<Rect>{}(k.b);
    return ha ^ (hb + 0x9e3779b97f4a7c15ull + (ha << 6) + (ha >> 2));
  }
};

/// One droplet's motion option: an action (or hold), its resulting
/// rectangle, and the expected cycles to complete the move under the retry
/// semantics (1 for a hold).
struct MoveOption {
  std::optional<Action> action;
  Rect target;
  double cost = 1.0;
};

/// Probability that @p action completes in one attempt on @p droplet.
double success_probability(const Rect& droplet, Action action,
                           const DoubleMatrix& force) {
  double p = 1.0;
  const FrontierDirs dirs = pulling_directions(action);
  for (int i = 0; i < dirs.count; ++i)
    p *= mean_frontier_force(force, frontier(droplet, action, dirs.dirs[i]));
  if (action_class(action) == ActionClass::kDouble) {
    const Vec2i step = unit(cardinal_of(action));
    const Rect mid = droplet.shifted(step.x, step.y);
    p *= mean_frontier_force(force,
                             frontier(mid, action, cardinal_of(action)));
  }
  return p;
}

/// All motion options for one droplet within its hazard bounds.
std::vector<MoveOption> move_options(const Rect& droplet,
                                     const assay::RoutingJob& job,
                                     const DoubleMatrix& force,
                                     const Rect& chip,
                                     const ActionRules& rules) {
  std::vector<MoveOption> options;
  options.push_back(MoveOption{std::nullopt, droplet, 1.0});
  for (const Action a : kAllActions) {
    if (!action_enabled(a, droplet, rules, chip)) continue;
    const Rect target = apply(a, droplet);
    if (!job.hazard.contains(target)) continue;
    const double p = success_probability(droplet, a, force);
    if (p <= 1e-9) continue;  // dead frontier: the move can never complete
    options.push_back(MoveOption{a, target, 1.0 / p});
  }
  return options;
}

}  // namespace

PairPlan plan_pair(const assay::RoutingJob& job_a,
                   const assay::RoutingJob& job_b, const DoubleMatrix& force,
                   const Rect& chip, const PairPlannerConfig& config) {
  MEDA_REQUIRE(job_a.start.valid() && job_b.start.valid(),
               "pair planning needs valid start droplets");
  MEDA_REQUIRE(config.min_gap >= 1, "separation gap must be positive");
  MEDA_REQUIRE(job_a.start.manhattan_gap(job_b.start) >= config.min_gap,
               "start pair violates the separation rule");

  struct NodeInfo {
    double dist = 0.0;
    PairKey parent;
    PairPlanStep step;
    bool closed = false;
    bool has_parent = false;
  };
  std::unordered_map<PairKey, NodeInfo, PairKeyHash> nodes;
  using QueueEntry = std::pair<double, PairKey>;
  const auto cmp = [](const QueueEntry& x, const QueueEntry& y) {
    return x.first > y.first;
  };
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, decltype(cmp)>
      queue(cmp);

  const PairKey start{job_a.start, job_b.start};
  nodes[start] = NodeInfo{};
  queue.push({0.0, start});

  PairPlan plan;
  std::optional<PairKey> goal_key;
  while (!queue.empty()) {
    const auto [dist, key] = queue.top();
    queue.pop();
    NodeInfo& node = nodes[key];
    if (node.closed) continue;
    node.closed = true;
    ++plan.states_expanded;
    if (plan.states_expanded > config.max_expansions) break;

    if (job_a.goal.contains(key.a) && job_b.goal.contains(key.b)) {
      goal_key = key;
      plan.expected_cycles = dist;
      break;
    }

    const auto options_a = move_options(key.a, job_a, force, chip,
                                        config.rules);
    const auto options_b = move_options(key.b, job_b, force, chip,
                                        config.rules);
    for (const MoveOption& oa : options_a) {
      for (const MoveOption& ob : options_b) {
        if (!oa.action.has_value() && !ob.action.has_value())
          continue;  // both-hold makes no progress
        if (oa.target.manhattan_gap(ob.target) < config.min_gap) continue;
        const PairKey next{oa.target, ob.target};
        const double weight = std::max(oa.cost, ob.cost);
        const double next_dist = dist + weight;
        auto [it, inserted] = nodes.try_emplace(next);
        if (!inserted && (it->second.closed || it->second.dist <= next_dist))
          continue;
        it->second.dist = next_dist;
        it->second.parent = key;
        it->second.step = PairPlanStep{oa.action, ob.action};
        it->second.has_parent = true;
        it->second.closed = false;
        queue.push({next_dist, next});
      }
    }
  }

  if (!goal_key.has_value()) return plan;  // infeasible (or effort bound)

  // Walk the parent chain back to the start.
  std::vector<PairPlanStep> reversed;
  PairKey cursor = *goal_key;
  while (nodes[cursor].has_parent) {
    reversed.push_back(nodes[cursor].step);
    cursor = nodes[cursor].parent;
  }
  plan.steps.assign(reversed.rbegin(), reversed.rend());
  plan.feasible = true;
  return plan;
}

}  // namespace meda::core
