#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "assay/helper.hpp"
#include "core/synthesizer.hpp"
#include "util/matrix.hpp"

/// @file library.hpp
/// The offline/online strategy library of the hybrid scheduling scheme
/// (Section VI-D): pre-synthesized strategies are cached and retrieved by
/// (routing job, health digest); a health change within the job's hazard
/// area changes the digest and forces a fresh synthesis.
///
/// Introspection: the library keeps per-digest-class hit/miss/insert/
/// overwrite/eviction counts (LibraryStats) and, when the global metrics
/// registry is enabled, feeds two log2 histograms — `library.entry_age`
/// (operations between an entry's insertion and a hit on it, a reuse-
/// distance proxy) and `library.strategy_cells` (stored strategy size).
/// Ages are measured on a logical operation clock (one tick per lookup or
/// store), so the numbers are deterministic for a fixed workload.

namespace meda::core {

/// FNV-1a digest of the health values inside @p area (clipped to the
/// matrix). Two health matrices that agree on the area produce equal
/// digests; the digest therefore identifies the inputs that can affect a
/// routing job's synthesized strategy.
std::uint64_t health_digest(const IntMatrix& health, const Rect& area);

/// Salt separating detour-digest keys from plain health-digest keys in the
/// same library. Contention detours synthesize against a droplet-masked
/// health view; without the salt, a plain health matrix that happens to
/// equal some masked view would collide with the detour entry and the two
/// key families could serve each other's strategies.
inline constexpr std::uint64_t kDetourDigestSalt = 0xDE70C2C41E5ull;

/// Library key for a contention-detour entry: the digest of the
/// droplet-*masked* health view (folding the obstacle rectangles into the
/// key position by position) xor kDetourDigestSalt. See
/// Runner::ensure_strategy for the caching rationale.
std::uint64_t detour_digest(const IntMatrix& masked_health, const Rect& area);

/// Salt separating replica-corridor keys from the plain and detour key
/// families. Replicated droplets synthesize against a health view with the
/// sibling replicas' corridor bands clamped dead; the masked view could
/// coincide with a plain (or detour-masked) matrix, so the families must
/// not share keys.
inline constexpr std::uint64_t kReplicaDigestSalt = 0x4E4D52AC0551Dull;

/// Library key for a replica-corridor entry: the digest of the
/// corridor-masked health view xor kReplicaDigestSalt. The mask folds the
/// replica's band geometry into the key, so an entry is only served to a
/// replica whose corridor kills the same cells.
std::uint64_t replica_digest(const IntMatrix& masked_health, const Rect& area);

/// Which digest family a library operation belongs to (stats bucketing
/// only — the digest itself already separates the key spaces).
enum class DigestClass : unsigned char {
  kPlain,    ///< health_digest keys (normal routing jobs)
  kDetour,   ///< detour_digest keys (contention detours)
  kReplica,  ///< replica_digest keys (corridor-masked replica routes)
};

/// Stable label: "plain" / "detour" / "replica".
const char* to_string(DigestClass cls);

/// Operation counts for one digest class.
struct LibraryClassStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;     ///< stores that created a new entry
  std::uint64_t overwrites = 0;  ///< stores that replaced an entry
  std::uint64_t evictions = 0;   ///< entries dropped by the FIFO capacity

  LibraryClassStats& operator+=(const LibraryClassStats& other) {
    hits += other.hits;
    misses += other.misses;
    inserts += other.inserts;
    overwrites += other.overwrites;
    evictions += other.evictions;
    return *this;
  }
  friend bool operator==(const LibraryClassStats&,
                         const LibraryClassStats&) = default;
};

/// Per-class operation counts plus the cross-class roll-up.
struct LibraryStats {
  LibraryClassStats plain;
  LibraryClassStats detour;
  LibraryClassStats replica;

  LibraryClassStats totals() const {
    LibraryClassStats t = plain;
    t += detour;
    t += replica;
    return t;
  }
  LibraryStats& operator+=(const LibraryStats& other) {
    plain += other.plain;
    detour += other.detour;
    replica += other.replica;
    return *this;
  }
  friend bool operator==(const LibraryStats&, const LibraryStats&) = default;
};

/// Cache of synthesized strategies keyed by (δ_s, δ_g, δ_h, health digest).
///
/// Concurrency: every public method takes an internal mutex, so a library
/// shared by the synthesis service's tenants is safe to hit from multiple
/// threads. `lookup()` returns a pointer into the cache and is therefore
/// only safe for a single-owner scheduler (a concurrent `store` can evict
/// or overwrite the entry under the caller); shared users must take
/// `lookup_copy()` instead. The mutex lives behind a shared_ptr so the
/// library type stays copyable (copies share the mutex, which is harmless —
/// their data is independent).
///
/// Multi-tenant attribution: lookup/store accept an optional tenant id
/// (>= 0); operations are then double-counted into that tenant's own
/// LibraryStats, so the service can report per-chip hit rates from one
/// shared cache. Tenant -1 (the default) is unattributed.
class StrategyLibrary {
 public:
  StrategyLibrary() : mutex_(std::make_shared<std::mutex>()) {}

  /// Returns the cached result for the job under the digest, if present.
  /// @p cls only attributes the hit/miss to a stats class. Single-owner
  /// use only — see the class comment; concurrent readers must use
  /// `lookup_copy()`.
  const SynthesisResult* lookup(const assay::RoutingJob& rj,
                                std::uint64_t digest,
                                DigestClass cls = DigestClass::kPlain,
                                int tenant = -1) const;

  /// Like `lookup()`, but returns a copy made under the lock — safe when
  /// other threads may store/evict concurrently.
  std::optional<SynthesisResult> lookup_copy(
      const assay::RoutingJob& rj, std::uint64_t digest,
      DigestClass cls = DigestClass::kPlain, int tenant = -1) const;

  /// Stores @p result for the job/digest (overwrites an existing entry —
  /// health can only degrade, so newer entries supersede older ones). When
  /// a capacity is set and the library is full, the oldest entry by
  /// insertion order is evicted first.
  void store(const assay::RoutingJob& rj, std::uint64_t digest,
             SynthesisResult result, DigestClass cls = DigestClass::kPlain,
             int tenant = -1);

  /// Caps the entry count; 0 (the default) means unlimited. Shrinking
  /// below the current size evicts oldest-first immediately.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const { return capacity_; }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(*mutex_);
    return entries_.size();
  }
  const LibraryStats& stats() const { return stats_; }
  std::uint64_t hits() const { return stats_.totals().hits; }
  std::uint64_t misses() const { return stats_.totals().misses; }

  /// Per-tenant operation counts (key: tenant id passed to lookup/store),
  /// copied under the lock. Deterministically ordered by tenant id.
  std::map<int, LibraryStats> tenant_stats() const {
    std::lock_guard<std::mutex> lock(*mutex_);
    return tenant_stats_;
  }

  void clear();

  /// A read-only view of one cached entry (used by persistence/inspection).
  struct EntryView {
    Rect start, goal, hazard;
    std::uint64_t digest = 0;
    const SynthesisResult* result = nullptr;
  };

  /// All entries in a deterministic (key-sorted) order.
  std::vector<EntryView> entries() const;

 private:
  struct Key {
    Rect start, goal, hazard;
    std::uint64_t digest = 0;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept;
  };
  struct Entry {
    SynthesisResult result;
    std::uint64_t inserted_tick = 0;  ///< operation-clock time of insertion
    DigestClass cls = DigestClass::kPlain;
  };

  void evict_down_to(std::size_t limit);
  const SynthesisResult* lookup_locked(const assay::RoutingJob& rj,
                                       std::uint64_t digest, DigestClass cls,
                                       int tenant) const;

  std::unordered_map<Key, Entry, KeyHash> entries_;
  /// Insertion order for FIFO eviction: operation tick → key. Overwrites
  /// keep the original tick (the entry's age is since first insertion).
  std::map<std::uint64_t, Key> insertion_order_;
  std::size_t capacity_ = 0;  ///< 0 = unlimited
  mutable std::uint64_t tick_ = 0;
  mutable LibraryStats stats_;
  mutable std::map<int, LibraryStats> tenant_stats_;
  /// shared_ptr keeps StrategyLibrary copyable; see the class comment.
  std::shared_ptr<std::mutex> mutex_;
};

}  // namespace meda::core
