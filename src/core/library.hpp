#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "assay/helper.hpp"
#include "core/synthesizer.hpp"
#include "util/matrix.hpp"

/// @file library.hpp
/// The offline/online strategy library of the hybrid scheduling scheme
/// (Section VI-D): pre-synthesized strategies are cached and retrieved by
/// (routing job, health digest); a health change within the job's hazard
/// area changes the digest and forces a fresh synthesis.

namespace meda::core {

/// FNV-1a digest of the health values inside @p area (clipped to the
/// matrix). Two health matrices that agree on the area produce equal
/// digests; the digest therefore identifies the inputs that can affect a
/// routing job's synthesized strategy.
std::uint64_t health_digest(const IntMatrix& health, const Rect& area);

/// Salt separating detour-digest keys from plain health-digest keys in the
/// same library. Contention detours synthesize against a droplet-masked
/// health view; without the salt, a plain health matrix that happens to
/// equal some masked view would collide with the detour entry and the two
/// key families could serve each other's strategies.
inline constexpr std::uint64_t kDetourDigestSalt = 0xDE70C2C41E5ull;

/// Library key for a contention-detour entry: the digest of the
/// droplet-*masked* health view (folding the obstacle rectangles into the
/// key position by position) xor kDetourDigestSalt. See
/// Runner::ensure_strategy for the caching rationale.
std::uint64_t detour_digest(const IntMatrix& masked_health, const Rect& area);

/// Cache of synthesized strategies keyed by (δ_s, δ_g, δ_h, health digest).
class StrategyLibrary {
 public:
  /// Returns the cached result for the job under the digest, if present.
  const SynthesisResult* lookup(const assay::RoutingJob& rj,
                                std::uint64_t digest) const;

  /// Stores @p result for the job/digest (overwrites an existing entry —
  /// health can only degrade, so newer entries supersede older ones).
  void store(const assay::RoutingJob& rj, std::uint64_t digest,
             SynthesisResult result);

  std::size_t size() const { return entries_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  void clear();

  /// A read-only view of one cached entry (used by persistence/inspection).
  struct EntryView {
    Rect start, goal, hazard;
    std::uint64_t digest = 0;
    const SynthesisResult* result = nullptr;
  };

  /// All entries in a deterministic (key-sorted) order.
  std::vector<EntryView> entries() const;

 private:
  struct Key {
    Rect start, goal, hazard;
    std::uint64_t digest = 0;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept;
  };

  std::unordered_map<Key, SynthesisResult, KeyHash> entries_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
};

}  // namespace meda::core
