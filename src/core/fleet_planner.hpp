#pragma once

#include <optional>
#include <span>
#include <vector>

#include "assay/helper.hpp"
#include "model/guards.hpp"

/// @file fleet_planner.hpp
/// Prioritized multi-droplet planning (an extension beyond the paper and
/// beyond the two-droplet pair planner): each droplet plans in priority
/// order through a *time-expanded* search that treats the trajectories of
/// higher-priority droplets as moving obstacles, enforcing the MEDA
/// separation rule at every cycle.
///
/// Compared to `pair_planner` (jointly optimal, two droplets, exponential
/// in the pair) this scales linearly in the number of droplets but is
/// incomplete: a bad priority order can make a solvable instance fail
/// (the classic prioritized-MAPF trade-off). Planning is kinematic
/// (full-health, one action per cycle); under degradation, execute with
/// re-planning.

namespace meda::core {

/// Per-droplet plan: one entry per cycle until the fleet's makespan
/// (nullopt = hold).
struct FleetPlan {
  bool feasible = false;
  /// steps[i][t] is droplet i's action at cycle t.
  std::vector<std::vector<std::optional<Action>>> steps;
  std::size_t makespan = 0;
  /// Droplet trajectories including the start (trajectories[i][t] is the
  /// position of droplet i at the *beginning* of cycle t).
  std::vector<std::vector<Rect>> trajectories;
};

/// Fleet-planner configuration.
struct FleetPlannerConfig {
  ActionRules rules{};
  int min_gap = 2;        ///< separation (one free cell) at every cycle
  std::size_t horizon = 256;  ///< maximum plan length in cycles
};

/// Plans all jobs in the given (priority) order on @p chip. Starts must be
/// pairwise separated by min_gap. Each droplet parks inside its goal once
/// it arrives; the parking position must stay conflict-free for the rest of
/// the horizon.
FleetPlan plan_fleet(std::span<const assay::RoutingJob> jobs,
                     const Rect& chip, const FleetPlannerConfig& config = {});

}  // namespace meda::core
