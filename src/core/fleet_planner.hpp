#pragma once

#include <optional>
#include <span>
#include <vector>

#include "assay/helper.hpp"
#include "model/guards.hpp"

/// @file fleet_planner.hpp
/// Prioritized multi-droplet planning (an extension beyond the paper and
/// beyond the two-droplet pair planner): each droplet plans in priority
/// order through a *time-expanded* search that treats the trajectories of
/// higher-priority droplets as moving obstacles, enforcing the MEDA
/// separation rule at every cycle.
///
/// Compared to `pair_planner` (jointly optimal, two droplets, exponential
/// in the pair) this scales linearly in the number of droplets but is
/// incomplete: a bad priority order can make a solvable instance fail
/// (the classic prioritized-MAPF trade-off). Planning is kinematic
/// (full-health, one action per cycle); under degradation, execute with
/// re-planning.

namespace meda::core {

/// Per-droplet plan: one entry per cycle until the fleet's makespan
/// (nullopt = hold).
struct FleetPlan {
  bool feasible = false;
  /// steps[i][t] is droplet i's action at cycle t.
  std::vector<std::vector<std::optional<Action>>> steps;
  std::size_t makespan = 0;
  /// Droplet trajectories including the start (trajectories[i][t] is the
  /// position of droplet i at the *beginning* of cycle t).
  std::vector<std::vector<Rect>> trajectories;
};

/// Fleet-planner configuration.
struct FleetPlannerConfig {
  ActionRules rules{};
  int min_gap = 2;        ///< separation (one free cell) at every cycle
  std::size_t horizon = 256;  ///< maximum plan length in cycles
};

/// Plans all jobs in the given (priority) order on @p chip. Starts must be
/// pairwise separated by min_gap. Each droplet parks inside its goal once
/// it arrives; the parking position must stay conflict-free for the rest of
/// the horizon.
FleetPlan plan_fleet(std::span<const assay::RoutingJob> jobs,
                     const Rect& chip, const FleetPlannerConfig& config = {});

/// One replica's private routing corridor: the band it owns plus the
/// sibling bands its synthesis view must clamp dead.
struct ReplicaCorridor {
  Rect band = Rect::none();    ///< this replica's private slice of the zone
  std::vector<Rect> masked;    ///< sibling bands to mask dead (empty when the
                               ///< plan degraded to best-effort disjointness)
};

/// Corridor placement for one N-modular-redundant routing job.
struct ReplicaCorridorPlan {
  bool feasible = false;  ///< corridors were placed (one per replica)
  /// The bands are pairwise disjoint and each is wide enough to route the
  /// droplet — the masks enforce true region-disjoint replica routes. False
  /// means the plan degraded to best-effort: all replicas share the full
  /// zone and the degradation is the caller's to record.
  bool disjoint = false;
  /// Shared endpoint funnels: full-thickness slabs of the zone across the
  /// start and goal so every replica can reach its band from the dispense
  /// port and converge back on the goal. Disjointness is enforced *outside*
  /// these slabs; sibling-band cells inside a funnel stay unmasked.
  Rect start_funnel = Rect::none();
  Rect goal_funnel = Rect::none();
  std::vector<ReplicaCorridor> corridors;  ///< one per replica, in order
};

/// Places @p replicas pairwise-disjoint corridor bands for @p rj inside its
/// hazard zone: the zone is sliced perpendicular to the dominant travel
/// axis into equal-thickness bands (replica i owns band i), with shared
/// full-thickness funnels around the start and goal connecting every band
/// to both endpoints. Each band must be at least the droplet's cross-axis
/// dimension plus one cell thick; when the zone cannot fit that (or
/// replicas < 2), the plan degrades to best-effort — feasible, not
/// disjoint, with unmasked corridors — rather than failing the job.
ReplicaCorridorPlan plan_replica_corridors(const assay::RoutingJob& rj,
                                           int replicas, const Rect& chip,
                                           int funnel_margin = 2);

}  // namespace meda::core
