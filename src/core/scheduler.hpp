#pragma once

#include <cstdint>
#include <string>

#include "assay/benchmarks.hpp"
#include "assay/helper.hpp"
#include "assay/mo.hpp"
#include "core/biochip_io.hpp"
#include "core/fleet_planner.hpp"
#include "core/health_filter.hpp"
#include "core/library.hpp"
#include "core/recovery.hpp"
#include "core/synthesizer.hpp"
#include "obs/events.hpp"
#include "util/stats.hpp"

/// @file scheduler.hpp
/// The hybrid scheduler of Section VI-D (Algorithm 3): executes a planned
/// bioassay on a MEDA biochip, decomposing each microfluidic operation into
/// routing jobs, retrieving or synthesizing routing strategies, and
/// re-synthesizing whenever the sensed health matrix changes within a job's
/// hazard area. With `adaptive = false` it degenerates into the
/// degradation-unaware baseline of Section VII-A: shortest-path strategies
/// synthesized once against a full-health force model and never revised.

namespace meda::core {

class SynthesisBackend;  // core/synthesis_backend.hpp

/// Scheduler configuration.
struct SchedulerConfig {
  SynthesisConfig synthesis{};
  /// true — the proposed adaptive framework (synthesize from sensed H,
  /// re-synthesize on health changes); false — the baseline router
  /// (full-health shortest paths, never re-synthesized).
  bool adaptive = true;
  /// Cache strategies in a StrategyLibrary (hybrid scheme). When false,
  /// every job is synthesized on demand (pure online scheme).
  bool use_library = true;
  /// Abort the execution after this many operational cycles.
  std::uint64_t max_cycles = 5000;
  /// Safety margin around routing jobs (ZONE margin, Section VI-B).
  int zone_margin = 3;
  /// Cycles a (re)synthesis takes; the droplet continues under the previous
  /// strategy (or holds) until the new one is ready (Section VI-D discusses
  /// this online-scheme delay; 0 models instantaneous synthesis).
  int synthesis_latency_cycles = 0;
  /// Reactive error recovery (the retrial-based techniques of Section II-C,
  /// as a comparison point for the proactive framework): with
  /// `adaptive = false`, re-route from the sensed health matrix only after
  /// a droplet has made no progress for this many consecutive commanded
  /// cycles. 0 disables recovery (the pure baseline). Ignored when
  /// `adaptive` is true — the proactive router never waits to get stuck.
  int reactive_recovery_stuck_cycles = 0;
  /// Health estimation over the (possibly noisy) scan chain: when enabled
  /// the scheduler acts on the filtered estimate, never on a raw frame.
  HealthFilterConfig filter{};
  /// The structured recovery ladder (watchdog → re-sense → bounded
  /// re-synthesis with backoff → quarantine → replica failover → per-job
  /// abort).
  RecoveryConfig recovery{};
  /// N-modular redundancy degree applied to every dispense MO that feeds a
  /// mix or dilute (the assay's critical reagents): the scheduler launches
  /// this many racing replicas per such dispense, routed through pairwise
  /// region-disjoint corridors, and completes the MO on the first arrival
  /// (k = 1 of N). 1 (the default) disables replication; per-MO
  /// `Mo::replicas` annotations above this floor are honored. Requires
  /// `adaptive` — the baseline router cannot mask corridor views.
  int replicate_critical_dispenses = 1;
  /// Record every replica's per-cycle position trail into
  /// ExecutionStats::replica_routes. Off by default: trails exist for the
  /// disjointness tests and debugging, and campaigns must not pay the
  /// memory (replica route *records* without trails are always kept).
  bool record_replica_trails = false;
  /// Optional external synthesis provider (e.g. the multi-tenant
  /// svc::SynthesisService behind a svc::SynthesisClient). When set, plain
  /// and detour solves that miss the library are submitted here instead of
  /// running on the local Synthesizer; a *shed* submission (admission
  /// control under overload, spent tenant budget) degrades to the bounded
  /// fallback router through the recovery ladder, exactly like a
  /// deadline-expired local synthesis. Replica solves and the non-adaptive
  /// baseline always stay local. Not owned; must outlive the scheduler.
  SynthesisBackend* backend = nullptr;
};

/// Activation/completion cycle of one MO within an execution (cycle counts
/// are relative to the start of the execution).
struct MoTiming {
  int mo = -1;
  std::uint64_t activated = 0;
  std::uint64_t completed = 0;
  bool done = false;
};

/// Model-vs-reality record of one completed routing job: the synthesized
/// strategy's expected cycle count (computed from the sensed H) against the
/// cycles the route actually took on the chip (driven by the true D).
struct RouteRecord {
  int mo = -1;
  double expected_cycles = 0.0;   ///< model prediction at synthesis time
  std::uint64_t actual_cycles = 0;
};

/// Counters of the N-modular-redundant replica machinery, all deterministic
/// (droplet cycles, not wall time). Zero throughout when no MO replicates.
struct ReplicaCounters {
  int launched = 0;   ///< replica droplets dispensed (includes winners)
  int failovers = 0;  ///< replicas abandoned after exhausting their retries
  int merges = 0;     ///< MOs completed by a first-arrival vote (k = 1)
  int retired = 0;    ///< losing replicas retired to waste after a merge
  /// Replicated MOs whose corridor plan degraded to best-effort
  /// disjointness (zone too thin for N masked bands).
  int best_effort_masks = 0;
  /// Chip cycles consumed by non-winning replica droplets (abandoned +
  /// retired), i.e. the redundancy's extra droplet traffic.
  std::uint64_t droplet_cycles = 0;

  bool any() const {
    return launched || failovers || merges || retired || best_effort_masks ||
           droplet_cycles;
  }
  ReplicaCounters& operator+=(const ReplicaCounters& other) {
    launched += other.launched;
    failovers += other.failovers;
    merges += other.merges;
    retired += other.retired;
    best_effort_masks += other.best_effort_masks;
    droplet_cycles += other.droplet_cycles;
    return *this;
  }
  friend bool operator==(const ReplicaCounters&,
                         const ReplicaCounters&) = default;
};

/// Outcome of one replica of a replicated MO, recorded when its fate is
/// sealed (merge, abandonment, or execution teardown). The corridor
/// geometry lets tests verify pairwise region-disjointness of the replica
/// routes outside the shared endpoint funnels.
struct ReplicaRouteRecord {
  int mo = -1;
  int replica = -1;          ///< replica index within the MO (0-based)
  bool winner = false;       ///< first arrival — completed the MO
  bool abandoned = false;    ///< failed over (per-replica retries exhausted)
  bool mask_best_effort = false;  ///< corridor plan was not truly disjoint
  Rect band = Rect::none();  ///< corridor band this replica owned
  Rect start_funnel = Rect::none();  ///< shared funnels (disjointness is
  Rect goal_funnel = Rect::none();   ///< only promised outside them)
  /// Per-cycle positions, only with SchedulerConfig::record_replica_trails.
  std::vector<Rect> trail;
};

/// Outcome of one bioassay execution.
struct ExecutionStats {
  bool success = false;
  std::uint64_t cycles = 0;           ///< operational cycles consumed
  int synthesis_calls = 0;            ///< model-checker invocations
  int library_hits = 0;               ///< strategies served from the library
  int resyntheses = 0;                ///< syntheses triggered by H changes
  /// Syntheses served by the incremental warm path (retained model patched
  /// in place + warm-started solve) rather than a cold rebuild.
  int resyntheses_warm = 0;
  double synthesis_seconds = 0.0;     ///< wall time spent synthesizing
  /// Solves the external synthesis backend refused (shed) and the scheduler
  /// degraded to the fallback router. Always 0 without a backend; kept out
  /// of RunRollup so campaign codecs are unchanged.
  int service_sheds = 0;
  std::string failure_reason;         ///< empty on success
  std::vector<MoTiming> mo_timings;   ///< per-MO schedule (by MO id)
  std::vector<RouteRecord> routes;    ///< per-route model-vs-reality data
  RecoveryCounters recovery;          ///< ladder counters (all zero if quiet)
  std::vector<RecoveryEvent> recovery_events;  ///< ladder firings, in order
  /// The unified structured event log: recovery-ladder firings plus stall
  /// classifications and other scheduler events, in emission order. The
  /// typed `recovery_events` view above is kept as a compatibility lens on
  /// the ladder subset; new consumers should read this log.
  std::vector<obs::Event> events;
  int completed_mos = 0;              ///< MOs that finished
  int aborted_mos = 0;                ///< MOs gracefully aborted (== recovery.aborted_jobs)
  ReplicaCounters replica;            ///< NMR counters (all zero if unused)
  /// Per-replica outcomes of every replicated MO, in seal order.
  std::vector<ReplicaRouteRecord> replica_routes;
};

/// Campaign-level roll-up of many ExecutionStats: the single accumulator the
/// campaign drivers, chaos benches, and HTML report consume instead of
/// hand-rolled private counters.
struct RunRollup {
  int runs = 0;
  int successes = 0;
  int completed_mos = 0;
  int aborted_mos = 0;
  int synthesis_calls = 0;
  int library_hits = 0;
  int resyntheses = 0;
  int resyntheses_warm = 0;
  double synthesis_seconds = 0.0;
  stats::RunningStats cycles;       ///< completion cycles, successful runs only
  RecoveryCounters recovery;        ///< ladder counters summed over all runs
  ReplicaCounters replica;          ///< NMR counters summed over all runs

  /// Folds one execution's outcome into the roll-up.
  void absorb(const ExecutionStats& stats);

  double success_rate() const {
    return runs > 0 ? static_cast<double>(successes) / runs : 0.0;
  }
  double library_hit_rate() const {
    const int lookups = library_hits + synthesis_calls;
    return lookups > 0 ? static_cast<double>(library_hits) / lookups : 0.0;
  }
};

/// Executes planned bioassays on a biochip.
class Scheduler {
 public:
  /// @param library optional shared strategy library (hybrid scheme across
  ///        executions); pass nullptr for a per-run private library.
  explicit Scheduler(SchedulerConfig config = {},
                     StrategyLibrary* library = nullptr);

  const SchedulerConfig& config() const { return config_; }

  /// Runs @p assay to completion (or abort) on @p chip. Algorithm 3.
  ExecutionStats run(BiochipIo& chip, const assay::MoList& assay);

 private:
  SchedulerConfig config_;
  StrategyLibrary* shared_library_;
};

/// The edge-adjacent rectangle a dispensed droplet enters through: the goal
/// pattern translated to touch the nearest chip edge.
Rect dispense_entry_rect(const Rect& goal, const Rect& chip);

/// Geometric halves a droplet splits into: two patterns of the given areas
/// placed side by side (separated by one cell) along the droplet's longer
/// axis, clamped to the chip.
std::pair<Rect, Rect> split_rects(const Rect& droplet, int area0, int area1,
                                  const Rect& chip);

}  // namespace meda::core
