#pragma once

#include <string>

#include "assay/helper.hpp"
#include "core/strategy.hpp"

/// @file strategy_render.hpp
/// ASCII rendering of a synthesized routing strategy as a vector field:
/// one glyph per droplet position (anchored at the pattern's lower-left
/// corner) showing the prescribed action. Useful for debugging detours and
/// for documentation.
///
/// Glyph legend:
///   ^ v > <   single-step cardinal moves
///   N S E W   double-step moves
///   / \ r j   ordinal moves toward NE, NW, SE, SW
///   w h       morphs (widen / heighten, any corner)
///   *         goal positions (droplet inside δ_g)
///   (space)   positions the strategy does not cover

namespace meda::core {

/// Renders the strategy field for droplets of @p width × @p height over the
/// job's hazard area. Rows are printed north-to-south; the column/row of
/// each glyph is the droplet's lower-left anchor.
std::string render_strategy_field(const Strategy& strategy,
                                  const assay::RoutingJob& rj, int width,
                                  int height);

/// The glyph used for @p action in the field rendering.
char action_glyph(Action action);

}  // namespace meda::core
