#include "core/health_filter.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace meda::core {

void HealthFilter::observe(const IntMatrix& scan) {
  MEDA_REQUIRE(scan.width() > 0 && scan.height() > 0,
               "health filter needs a non-empty frame");
  ++frames_;
  if (!seeded_ || force_resense_) {
    if (seeded_) {
      MEDA_REQUIRE(scan.width() == estimate_.width() &&
                       scan.height() == estimate_.height(),
                   "health frame dimensions changed");
    }
    estimate_ = scan;
    confidence_ = IntMatrix(scan.width(), scan.height(), 1);
    candidate_ = IntMatrix(scan.width(), scan.height(), -1);
    streak_ = IntMatrix(scan.width(), scan.height(), 0);
    if (!seeded_) {
      disagree_ = IntMatrix(scan.width(), scan.height(), 0);
      suspect_ = BoolMatrix(scan.width(), scan.height(), 0);
    }
    seeded_ = true;
    force_resense_ = false;
    return;
  }
  MEDA_REQUIRE(scan.width() == estimate_.width() &&
                   scan.height() == estimate_.height(),
               "health frame dimensions changed");

  const std::uint64_t adopted_before = adopted_updates_;
  const std::uint64_t rejected_before = rejected_updates_;
  const bool decay = config_.suspect_decay_frames > 0 &&
                     frames_ % static_cast<std::uint64_t>(
                                   config_.suspect_decay_frames) ==
                         0;
  for (int y = 0; y < scan.height(); ++y) {
    for (int x = 0; x < scan.width(); ++x) {
      const int v = scan(x, y);
      int& e = estimate_(x, y);
      if (decay) disagree_(x, y) /= 2;
      if (v == e) {
        confidence_(x, y) =
            std::min(confidence_(x, y) + 1, config_.confidence_cap);
        streak_(x, y) = 0;
        candidate_(x, y) = -1;
        continue;
      }
      // Reading disagrees with the settled estimate.
      if (++disagree_(x, y) >= config_.suspect_threshold &&
          suspect_(x, y) == 0) {
        suspect_(x, y) = 1;
        ++suspect_count_;
      }
      if (v == candidate_(x, y)) {
        ++streak_(x, y);
      } else {
        candidate_(x, y) = v;
        streak_(x, y) = 1;
      }
      const int needed =
          v < e ? std::max(1, config_.down_confirm)
                : std::max(std::max(1, config_.down_confirm),
                           config_.up_confirm);
      if (streak_(x, y) >= needed) {
        e = v;
        confidence_(x, y) = 1;
        streak_(x, y) = 0;
        candidate_(x, y) = -1;
        ++adopted_updates_;
      } else {
        ++rejected_updates_;
      }
    }
  }
  if (MEDA_OBS_ACTIVE()) {
    MEDA_OBS_COUNT("filter.frames", 1);
    MEDA_OBS_COUNT("filter.adopted_updates",
                   adopted_updates_ - adopted_before);
    MEDA_OBS_COUNT("filter.rejected_updates",
                   rejected_updates_ - rejected_before);
    MEDA_OBS_GAUGE("filter.suspects", static_cast<double>(suspect_count_));
  }
}

}  // namespace meda::core
