#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "core/library.hpp"
#include "util/check.hpp"

/// @file library_io.hpp
/// Persistence for the strategy library, so the offline phase of the hybrid
/// scheduling scheme (Section VI-D) survives process restarts: pre-compute
/// once per (chip, bioassay) pair, save, and ship the file with the
/// instrument.
///
/// Format (line-oriented text, versioned):
///   medalib 1
///   entry <start> <goal> <hazard> <digest> <feasible> <E[cycles]> <pmax> <n>
///   <xa> <ya> <xb> <yb> <action-index>     (n strategy rows)
/// Rectangles are four integers; infinities serialize as "inf".
///
/// Corruption contract: a file whose *header* is wrong (bad magic, wrong
/// version, unopenable path) throws LibraryLoadError — the file as a whole
/// is not a library and the caller must decide what to do. Past a valid
/// header, corruption is entry-granular: a truncated, garbled, or
/// absurdly-sized entry is skipped whole (never partially stored — an
/// entry's strategy is parsed into a temporary and only stored on success),
/// counted in LibraryLoadStats::rejected and the `library.load_rejected`
/// metric, and the loader resynchronizes at the next "entry" keyword. Every
/// entry before the corruption loads normally, so a torn tail costs only
/// the torn entries.

namespace meda::core {

/// Typed error for files that are not loadable libraries at all (header or
/// I/O failures). Derives from PreconditionError so pre-existing callers
/// catching that still work.
struct LibraryLoadError : PreconditionError {
  using PreconditionError::PreconditionError;
};

/// Outcome of a load: entries stored vs entries skipped as corrupt.
struct LibraryLoadStats {
  std::size_t loaded = 0;
  std::size_t rejected = 0;
};

/// Writes every library entry to @p os.
void save_library(const StrategyLibrary& library, std::ostream& os);

/// Reads entries from @p is into @p library (merging with existing
/// entries). Throws LibraryLoadError on a bad header; corrupt entries past
/// the header are skipped and counted (see the corruption contract above).
LibraryLoadStats load_library(StrategyLibrary& library, std::istream& is);

/// File conveniences. Throw LibraryLoadError on I/O failure.
void save_library_file(const StrategyLibrary& library,
                       const std::string& path);
LibraryLoadStats load_library_file(StrategyLibrary& library,
                                   const std::string& path);

}  // namespace meda::core
