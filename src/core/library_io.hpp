#pragma once

#include <iosfwd>
#include <string>

#include "core/library.hpp"

/// @file library_io.hpp
/// Persistence for the strategy library, so the offline phase of the hybrid
/// scheduling scheme (Section VI-D) survives process restarts: pre-compute
/// once per (chip, bioassay) pair, save, and ship the file with the
/// instrument.
///
/// Format (line-oriented text, versioned):
///   medalib 1
///   entry <start> <goal> <hazard> <digest> <feasible> <E[cycles]> <pmax> <n>
///   <xa> <ya> <xb> <yb> <action-index>     (n strategy rows)
/// Rectangles are four integers; infinities serialize as "inf".

namespace meda::core {

/// Writes every library entry to @p os.
void save_library(const StrategyLibrary& library, std::ostream& os);

/// Reads entries from @p is into @p library (merging with existing
/// entries). Throws PreconditionError on malformed input.
void load_library(StrategyLibrary& library, std::istream& is);

/// File conveniences. Throw on I/O failure.
void save_library_file(const StrategyLibrary& library,
                       const std::string& path);
void load_library_file(StrategyLibrary& library, const std::string& path);

}  // namespace meda::core
