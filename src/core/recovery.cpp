#include "core/recovery.hpp"

#include <sstream>

namespace meda::core {

std::string_view to_string(RecoveryAction action) {
  switch (action) {
    case RecoveryAction::kWatchdogResense: return "watchdog-resense";
    case RecoveryAction::kSynthesisRetry: return "synthesis-retry";
    case RecoveryAction::kBackoff: return "backoff";
    case RecoveryAction::kQuarantine: return "quarantine";
    case RecoveryAction::kContentionDetour: return "contention-detour";
    case RecoveryAction::kJobAbort: return "job-abort";
    case RecoveryAction::kSynthesisDeadline: return "synthesis-deadline";
    case RecoveryAction::kQuarantineParole: return "quarantine-parole";
    case RecoveryAction::kReplicaFailover: return "replica-failover";
  }
  return "?";
}

std::string format_events(const std::vector<RecoveryEvent>& events) {
  std::ostringstream os;
  for (const RecoveryEvent& e : events) {
    os << "cycle " << e.cycle << " [" << to_string(e.action) << ']';
    if (e.mo >= 0) os << " MO " << e.mo;
    if (!e.detail.empty()) os << ": " << e.detail;
    os << '\n';
  }
  return os.str();
}

}  // namespace meda::core
