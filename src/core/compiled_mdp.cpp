#include "core/compiled_mdp.hpp"

#include <cstddef>

#include "obs/obs.hpp"

namespace meda::core {

CompiledMdp compile_mdp(const RoutingMdp& mdp) {
  MEDA_OBS_SPAN(span, "vi", "compile");
  CompiledMdp out;
  const std::size_t n = mdp.droplets.size();
  out.num_droplet_states = static_cast<std::uint32_t>(n);
  out.start = mdp.start;

  std::size_t total_choices = 0;
  std::size_t total_transitions = 0;
  for (const auto& state_choices : mdp.choices) {
    total_choices += state_choices.size();
    for (const Choice& c : state_choices)
      total_transitions += c.transitions.size();
  }

  out.choice_offset.reserve(n + 1);
  out.trans_offset.reserve(total_choices + 1);
  out.cost.reserve(total_choices);
  out.inv_one_minus_q.reserve(total_choices);
  out.target.reserve(total_transitions);
  out.probability.reserve(total_transitions);
  out.is_goal.resize(n);

  out.choice_offset.push_back(0);
  out.trans_offset.push_back(0);
  for (std::size_t s = 0; s < n; ++s) {
    out.is_goal[s] = mdp.is_goal[s] ? 1 : 0;
    for (const Choice& choice : mdp.choices[s]) {
      // Factor the self-loop branch out of the transition list: sum its
      // mass q exactly as the legacy solver does (in transition order) and
      // keep only the off-state branches.
      double q = 0.0;
      for (const Transition& t : choice.transitions)
        if (t.target == s) q += t.probability;
      for (const Transition& t : choice.transitions) {
        if (t.target == static_cast<std::uint32_t>(s)) continue;
        out.target.push_back(t.target);
        out.probability.push_back(t.probability);
      }
      out.cost.push_back(choice.cost);
      out.inv_one_minus_q.push_back(q >= 1.0 - 1e-12 ? 0.0 : 1.0 / (1.0 - q));
      out.trans_offset.push_back(
          static_cast<std::uint32_t>(out.target.size()));
    }
    out.choice_offset.push_back(
        static_cast<std::uint32_t>(out.trans_offset.size() - 1));
  }

  // Goal-anchored sweep order: reverse BFS from the goal set over the
  // off-state edges. Predecessor lists are built CSR-style as well (counting
  // pass + placement pass) to stay allocation-light.
  std::vector<std::uint32_t> pred_count(n, 0);
  for (std::size_t i = 0; i < out.target.size(); ++i) {
    const std::uint32_t t = out.target[i];
    if (t < n) ++pred_count[t];
  }
  std::vector<std::uint32_t> pred_offset(n + 1, 0);
  for (std::size_t s = 0; s < n; ++s)
    pred_offset[s + 1] = pred_offset[s] + pred_count[s];
  std::vector<std::uint32_t> pred(pred_offset[n]);
  std::vector<std::uint32_t> fill(pred_offset.begin(), pred_offset.end() - 1);
  for (std::size_t s = 0; s < n; ++s) {
    const std::uint32_t tb = out.trans_offset[out.choice_offset[s]];
    const std::uint32_t te = out.trans_offset[out.choice_offset[s + 1]];
    for (std::uint32_t i = tb; i < te; ++i) {
      const std::uint32_t t = out.target[i];
      if (t < n) pred[fill[t]++] = static_cast<std::uint32_t>(s);
    }
  }

  out.sweep_order.reserve(n);
  std::vector<std::uint8_t> seen(n, 0);
  for (std::size_t s = 0; s < n; ++s) {
    if (out.is_goal[s]) {
      seen[s] = 1;
      out.sweep_order.push_back(static_cast<std::uint32_t>(s));
    }
  }
  for (std::size_t head = 0; head < out.sweep_order.size(); ++head) {
    const std::uint32_t s = out.sweep_order[head];
    for (std::uint32_t i = pred_offset[s]; i < pred_offset[s + 1]; ++i) {
      const std::uint32_t p = pred[i];
      if (!seen[p]) {
        seen[p] = 1;
        out.sweep_order.push_back(p);
      }
    }
  }
  out.goal_reachable = static_cast<std::uint32_t>(out.sweep_order.size());
  for (std::size_t s = 0; s < n; ++s)
    if (!seen[s]) out.sweep_order.push_back(static_cast<std::uint32_t>(s));

  if (MEDA_OBS_ACTIVE()) {
    span.arg("states", static_cast<std::int64_t>(out.state_count()));
    span.arg("choices", static_cast<std::int64_t>(out.choice_count()));
    span.arg("transitions", static_cast<std::int64_t>(out.target.size()));
    span.arg("goal_reachable", static_cast<std::int64_t>(out.goal_reachable));
    MEDA_OBS_COUNT("vi.compile.calls", 1);
    MEDA_OBS_OBSERVE("vi.compile.states",
                     static_cast<double>(out.state_count()),
                     obs::kStateCountBuckets);
    // States the reverse BFS could not anchor to a goal (they keep their
    // initial value, so an increase here flags degenerate models).
    MEDA_OBS_COUNT("vi.compile.unanchored_states",
                   static_cast<std::uint64_t>(n) - out.goal_reachable);
  }
  return out;
}

}  // namespace meda::core
