#include "core/compiled_mdp.hpp"

#include <algorithm>
#include <cstddef>

#include "model/outcomes.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"

namespace meda::core {

CompiledMdp compile_mdp(const RoutingMdp& mdp) {
  MEDA_OBS_SPAN(span, "vi", "compile");
  CompiledMdp out;
  const std::size_t n = mdp.droplets.size();
  out.num_droplet_states = static_cast<std::uint32_t>(n);
  out.start = mdp.start;

  std::size_t total_choices = 0;
  std::size_t total_transitions = 0;
  for (const auto& state_choices : mdp.choices) {
    total_choices += state_choices.size();
    for (const Choice& c : state_choices)
      total_transitions += c.transitions.size();
  }

  out.choice_offset.reserve(n + 1);
  out.trans_offset.reserve(total_choices + 1);
  out.cost.reserve(total_choices);
  out.inv_one_minus_q.reserve(total_choices);
  out.target.reserve(total_transitions);
  out.probability.reserve(total_transitions);
  out.is_goal.resize(n);

  out.choice_offset.push_back(0);
  out.trans_offset.push_back(0);
  for (std::size_t s = 0; s < n; ++s) {
    out.is_goal[s] = mdp.is_goal[s] ? 1 : 0;
    for (const Choice& choice : mdp.choices[s]) {
      // Factor the self-loop branch out of the transition list: sum its
      // mass q exactly as the legacy solver does (in transition order) and
      // keep only the off-state branches.
      double q = 0.0;
      for (const Transition& t : choice.transitions)
        if (t.target == s) q += t.probability;
      for (const Transition& t : choice.transitions) {
        if (t.target == static_cast<std::uint32_t>(s)) continue;
        out.target.push_back(t.target);
        out.probability.push_back(t.probability);
      }
      out.cost.push_back(choice.cost);
      out.inv_one_minus_q.push_back(q >= 1.0 - 1e-12 ? 0.0 : 1.0 / (1.0 - q));
      out.trans_offset.push_back(
          static_cast<std::uint32_t>(out.target.size()));
    }
    out.choice_offset.push_back(
        static_cast<std::uint32_t>(out.trans_offset.size() - 1));
  }

  // Reverse adjacency over the off-state edges, built CSR-style (counting
  // pass + placement pass) to stay allocation-light. Kept on the compiled
  // model: the reverse BFS below anchors sweep_order on it, and the warm
  // solver's dirty-set propagation walks it on every incremental solve.
  std::vector<std::uint32_t> pred_count(n, 0);
  for (std::size_t i = 0; i < out.target.size(); ++i) {
    const std::uint32_t t = out.target[i];
    if (t < n) ++pred_count[t];
  }
  out.pred_offset.assign(n + 1, 0);
  for (std::size_t s = 0; s < n; ++s)
    out.pred_offset[s + 1] = out.pred_offset[s] + pred_count[s];
  out.pred_state.resize(out.pred_offset[n]);
  std::vector<std::uint32_t> fill(out.pred_offset.begin(),
                                  out.pred_offset.end() - 1);
  for (std::size_t s = 0; s < n; ++s) {
    const std::uint32_t tb = out.trans_offset[out.choice_offset[s]];
    const std::uint32_t te = out.trans_offset[out.choice_offset[s + 1]];
    for (std::uint32_t i = tb; i < te; ++i) {
      const std::uint32_t t = out.target[i];
      if (t < n) out.pred_state[fill[t]++] = static_cast<std::uint32_t>(s);
    }
  }

  // Goal-anchored sweep order: reverse BFS from the goal set.
  out.sweep_order.reserve(n);
  std::vector<std::uint8_t> seen(n, 0);
  for (std::size_t s = 0; s < n; ++s) {
    if (out.is_goal[s]) {
      seen[s] = 1;
      out.sweep_order.push_back(static_cast<std::uint32_t>(s));
    }
  }
  for (std::size_t head = 0; head < out.sweep_order.size(); ++head) {
    const std::uint32_t s = out.sweep_order[head];
    for (std::uint32_t i = out.pred_offset[s]; i < out.pred_offset[s + 1];
         ++i) {
      const std::uint32_t p = out.pred_state[i];
      if (!seen[p]) {
        seen[p] = 1;
        out.sweep_order.push_back(p);
      }
    }
  }
  out.goal_reachable = static_cast<std::uint32_t>(out.sweep_order.size());
  for (std::size_t s = 0; s < n; ++s)
    if (!seen[s]) out.sweep_order.push_back(static_cast<std::uint32_t>(s));

  if (MEDA_OBS_ACTIVE()) {
    span.arg("states", static_cast<std::int64_t>(out.state_count()));
    span.arg("choices", static_cast<std::int64_t>(out.choice_count()));
    span.arg("transitions", static_cast<std::int64_t>(out.target.size()));
    span.arg("goal_reachable", static_cast<std::int64_t>(out.goal_reachable));
    MEDA_OBS_COUNT("vi.compile.calls", 1);
    MEDA_OBS_OBSERVE("vi.compile.states",
                     static_cast<double>(out.state_count()),
                     obs::kStateCountBuckets);
    // States the reverse BFS could not anchor to a goal (they keep their
    // initial value, so an increase here flags degenerate models).
    MEDA_OBS_COUNT("vi.compile.unanchored_states",
                   static_cast<std::uint64_t>(n) - out.goal_reachable);
  }
  return out;
}

CompiledGeometry compile_geometry(const RoutingMdp& mdp) {
  CompiledGeometry geo;
  geo.droplets = mdp.droplets;
  geo.state_index.reserve(mdp.droplets.size());
  for (std::size_t s = 0; s < mdp.droplets.size(); ++s)
    geo.state_index.emplace(mdp.droplets[s], static_cast<std::uint32_t>(s));
  std::size_t total_choices = 0;
  for (const auto& state_choices : mdp.choices)
    total_choices += state_choices.size();
  geo.choice_action.reserve(total_choices);
  for (const auto& state_choices : mdp.choices)
    for (const Choice& c : state_choices) geo.choice_action.push_back(c.action);
  return geo;
}

namespace {

/// Every cell an action's outcome distribution or wear cost can read lies
/// within the droplet inflated by this margin: single-step frontiers sit one
/// cell out, a double move's second-step frontier and target pattern two.
constexpr int kInfluenceRadius = 2;

}  // namespace

MdpPatch patch_compiled_mdp(CompiledMdp& mdp, const CompiledGeometry& geometry,
                            const DoubleMatrix& force, const Rect& hazard,
                            const Rect& chip,
                            const std::vector<Vec2i>& changed_cells,
                            double wear_penalty_lambda) {
  MEDA_OBS_SPAN(span, "vi", "patch");
  MEDA_OBS_COUNT("vi.patch.calls", 1);  // attempts; aborts are a subset
  const std::size_t n = mdp.num_droplet_states;
  MEDA_REQUIRE(geometry.droplets.size() == n &&
                   geometry.choice_action.size() == mdp.choice_count(),
               "geometry side table does not match the compiled model");
  MdpPatch out;
  if (changed_cells.empty()) {
    out.patched = true;
    return out;
  }

  // Bounding box of the delta for a cheap per-state reject before the exact
  // per-cell containment test.
  Rect box{changed_cells.front().x, changed_cells.front().y,
           changed_cells.front().x, changed_cells.front().y};
  for (const Vec2i cell : changed_cells) {
    box.xa = std::min(box.xa, cell.x);
    box.ya = std::min(box.ya, cell.y);
    box.xb = std::max(box.xb, cell.x);
    box.yb = std::max(box.yb, cell.y);
  }

  for (std::size_t s = 0; s < n; ++s) {
    if (mdp.is_goal[s]) continue;  // absorbing: no choices to refresh
    const Rect droplet = geometry.droplets[s];
    const Rect influence = droplet.inflated(kInfluenceRadius);
    if (!influence.intersects(box)) continue;
    bool affected = false;
    for (const Vec2i cell : changed_cells) {
      if (influence.contains(cell)) {
        affected = true;
        break;
      }
    }
    if (!affected) continue;
    ++out.states_rescanned;

    bool state_dirty = false;
    const std::uint32_t cb = mdp.choice_offset[s];
    const std::uint32_t ce = mdp.choice_offset[s + 1];
    for (std::uint32_t c = cb; c < ce; ++c) {
      const Action a = geometry.choice_action[c];
      const std::vector<Outcome> outcomes = action_outcomes(droplet, a, force);
      // Self-loop mass summed in outcome order — the same accumulation
      // order compile_mdp uses, so a topology-preserving patch reproduces a
      // fresh compile bit for bit.
      double q = 0.0;
      for (const Outcome& o : outcomes)
        if (o.droplet == droplet) q += o.probability;
      bool choice_dirty = false;
      std::uint32_t i = mdp.trans_offset[c];
      const std::uint32_t te = mdp.trans_offset[c + 1];
      bool topology_ok = true;
      for (const Outcome& o : outcomes) {
        if (o.droplet == droplet) continue;
        std::uint32_t target;
        if (!hazard.contains(o.droplet)) {
          target = mdp.hazard_sink();
        } else {
          const auto it = geometry.state_index.find(o.droplet);
          if (it == geometry.state_index.end()) {
            // A cell revived: this branch had probability 0 at build time,
            // its target state was never explored.
            topology_ok = false;
            break;
          }
          target = it->second;
        }
        if (i >= te || mdp.target[i] != target) {
          topology_ok = false;  // outcome set changed shape under the delta
          break;
        }
        if (mdp.probability[i] != o.probability) {
          mdp.probability[i] = o.probability;
          choice_dirty = true;
        }
        ++i;
      }
      if (!topology_ok || i != te) {
        // A cell died or revived inside the influence box: branches were
        // added or dropped (action_outcomes omits zero-probability
        // outcomes), so the CSR shape no longer matches. The arrays are
        // partially rewritten at this point — the caller must recompile.
        MEDA_OBS_COUNT("vi.patch.topology_aborts", 1);
        out.patched = false;
        out.dirty_states.clear();
        return out;
      }
      const double inv = q >= 1.0 - 1e-12 ? 0.0 : 1.0 / (1.0 - q);
      if (mdp.inv_one_minus_q[c] != inv) {
        mdp.inv_one_minus_q[c] = inv;
        choice_dirty = true;
      }
      if (wear_penalty_lambda > 0.0) {
        const Rect target_pattern = apply(a, droplet).intersection_with(chip);
        const double cost =
            1.0 + wear_penalty_lambda *
                      (1.0 - mean_frontier_force(force, target_pattern));
        if (mdp.cost[c] != cost) {
          mdp.cost[c] = cost;
          choice_dirty = true;
        }
      }
      if (choice_dirty) {
        ++out.choices_changed;
        state_dirty = true;
      }
    }
    if (state_dirty) out.dirty_states.push_back(static_cast<std::uint32_t>(s));
  }

  out.patched = true;
  if (MEDA_OBS_ACTIVE()) {
    span.arg("changed_cells", static_cast<std::int64_t>(changed_cells.size()));
    span.arg("states_rescanned",
             static_cast<std::int64_t>(out.states_rescanned));
    span.arg("dirty_states", static_cast<std::int64_t>(out.dirty_states.size()));
    MEDA_OBS_COUNT("vi.patch.choices_changed",
                   static_cast<std::uint64_t>(out.choices_changed));
    MEDA_OBS_OBSERVE_LOG2("vi.patch.dirty_states",
                          static_cast<double>(out.dirty_states.size()));
  }
  return out;
}

}  // namespace meda::core
