#pragma once

#include "assay/helper.hpp"
#include "core/strategy.hpp"
#include "model/guards.hpp"
#include "util/matrix.hpp"

/// @file fallback_router.hpp
/// Bounded A* fallback router for deadline-expired synthesis.
///
/// When a full MDP synthesis blows its deadline (end-of-life chips widen
/// hazard zones until the model has hundreds of thousands of states), the
/// scheduler still needs *some* route now: this router runs a deterministic
/// A* over droplet rectangles using the same action set and guards as the
/// MDP builder, treating every move as succeeding (ignoring the
/// probabilistic outcome model entirely). The resulting path is wrapped as
/// a core::Strategy; because failed pulls leave the droplet in place and
/// path states re-command their own action, execution simply retries until
/// the pull lands — slower than the Rmin-optimal strategy, but the assay
/// degrades to "slower route" instead of "aborted job".
///
/// Cost model: every action costs 1 cycle; the heuristic is
/// ceil(manhattan_gap/2) (admissible: double steps move at most 2 cells), so
/// the path minimizes commanded-action count, not expected cycles. Expansion
/// is bounded by FallbackConfig::max_expansions so the fallback itself can
/// never hang.
namespace meda::core {

/// Fallback router controls.
struct FallbackConfig {
  ActionRules rules{};
  /// A* open-list pops allowed before giving up (the router's own budget;
  /// generously above any single-job state count on our chips).
  int max_expansions = 20000;
  /// Minimum sensed health for the *new* cells an action pulls the droplet
  /// onto (cells already under the droplet are occluded from sensing and
  /// exempt). 1 skips only dead/quarantined cells.
  int min_health = 1;
};

/// Result of one fallback routing attempt.
struct FallbackResult {
  Strategy strategy;     ///< path strategy; empty when infeasible
  bool feasible = false;
  int path_length = 0;   ///< actions on the found path
  int expansions = 0;    ///< A* pops performed
};

/// Routes @p rj over the sensed b-bit health matrix @p health (chip-sized)
/// within chip bounds @p chip. Deterministic: ties in f-cost resolve to
/// insertion order, and neighbors are generated in kAllActions order.
FallbackResult fallback_route(const assay::RoutingJob& rj,
                              const IntMatrix& health, const Rect& chip,
                              const FallbackConfig& config = {});

}  // namespace meda::core
