#pragma once

#include <cstdint>

#include "util/matrix.hpp"

/// @file health_filter.hpp
/// Health estimation over a noisy scan chain (robustness extension of
/// Section VI). The scheduler never acts on a raw scan frame; it acts on
/// this filter's per-cell estimate, which is hardened three ways:
///
///  - **Debounce / majority vote** — a changed reading is adopted only after
///    it repeats for a configurable number of consecutive frames, so a
///    transient bit flip cannot trigger a re-synthesis storm.
///  - **Monotone-wear prior** — charge-trapping degradation only lowers a
///    cell's health (architecture invariant "health can only decay"), so an
///    apparent *increase* needs strictly more confirming reads than a
///    decrease before it is believed.
///  - **Suspect flagging** — cells whose readings keep disagreeing with the
///    settled estimate (stuck DFFs, flaky chain segments) are flagged so the
///    scheduler's recovery ladder can quarantine them.

namespace meda::core {

/// Filter tuning. The defaults are a reasonable operating point for the
/// noise levels of bench/chaos_campaign; `enabled = false` keeps the
/// scheduler on raw scans (the paper's idealized-sensor behavior).
struct HealthFilterConfig {
  bool enabled = false;
  /// Consecutive agreeing reads to accept a *decrease* (wear direction).
  int down_confirm = 2;
  /// Consecutive agreeing reads to accept an *increase* (against the
  /// monotone-wear prior; only a persistent re-read overrides it).
  int up_confirm = 4;
  /// Disagreement score at which a cell is flagged suspect (sticky).
  int suspect_threshold = 12;
  /// Frames between halvings of the disagreement score: transient noise
  /// decays away, persistent disagreement accumulates.
  int suspect_decay_frames = 16;
  /// Cap on the per-cell agreement streak (confidence saturates).
  int confidence_cap = 16;
};

/// Stateful per-cell health estimator. Feed every scanned frame through
/// observe(); read estimate() instead of the scan.
class HealthFilter {
 public:
  HealthFilter() = default;
  explicit HealthFilter(HealthFilterConfig config) : config_(config) {}

  const HealthFilterConfig& config() const { return config_; }

  /// Folds one scanned health frame into the estimate. The first frame
  /// seeds the estimate verbatim.
  void observe(const IntMatrix& scan);

  /// Forced re-sense: the next observe() re-seeds the estimate from the
  /// frame verbatim, bypassing the debounce (used by the recovery ladder
  /// when reality demonstrably contradicts the estimate). Confidence and
  /// candidate state reset; suspect flags and scores are kept.
  void force_resense() { force_resense_ = true; }

  /// True once at least one frame has been observed.
  bool seeded() const { return seeded_; }

  /// Current per-cell health estimate (valid once seeded).
  const IntMatrix& estimate() const { return estimate_; }

  /// Per-cell agreement streak, capped at confidence_cap.
  const IntMatrix& confidence() const { return confidence_; }

  /// Per-cell suspect flags (sticky once set).
  const BoolMatrix& suspect() const { return suspect_; }
  int suspect_count() const { return suspect_count_; }

  std::uint64_t frames() const { return frames_; }
  /// Readings rejected (not yet adopted) by debounce or the wear prior.
  std::uint64_t rejected_updates() const { return rejected_updates_; }
  /// Estimate changes actually adopted after confirmation.
  std::uint64_t adopted_updates() const { return adopted_updates_; }

 private:
  HealthFilterConfig config_{};
  bool seeded_ = false;
  bool force_resense_ = false;
  IntMatrix estimate_;
  IntMatrix confidence_;
  IntMatrix candidate_;   ///< last disagreeing value per cell
  IntMatrix streak_;      ///< consecutive reads of candidate_
  IntMatrix disagree_;    ///< decaying disagreement score
  BoolMatrix suspect_;
  int suspect_count_ = 0;
  std::uint64_t frames_ = 0;
  std::uint64_t rejected_updates_ = 0;
  std::uint64_t adopted_updates_ = 0;
};

}  // namespace meda::core
