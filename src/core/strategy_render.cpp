#include "core/strategy_render.hpp"

#include <sstream>

#include "util/check.hpp"

namespace meda::core {

char action_glyph(Action action) {
  switch (action) {
    case Action::kN: return '^';
    case Action::kS: return 'v';
    case Action::kE: return '>';
    case Action::kW: return '<';
    case Action::kNN: return 'N';
    case Action::kSS: return 'S';
    case Action::kEE: return 'E';
    case Action::kWW: return 'W';
    case Action::kNE: return '/';
    case Action::kNW: return '\\';
    case Action::kSE: return 'r';
    case Action::kSW: return 'j';
    case Action::kWidenNE:
    case Action::kWidenNW:
    case Action::kWidenSE:
    case Action::kWidenSW: return 'w';
    case Action::kHeightenNE:
    case Action::kHeightenNW:
    case Action::kHeightenSE:
    case Action::kHeightenSW: return 'h';
  }
  return '?';
}

std::string render_strategy_field(const Strategy& strategy,
                                  const assay::RoutingJob& rj, int width,
                                  int height) {
  MEDA_REQUIRE(width >= 1 && height >= 1, "invalid droplet dimensions");
  MEDA_REQUIRE(rj.hazard.valid(), "invalid hazard bounds");
  std::ostringstream os;
  // Anchor range: lower-left corners keeping the droplet inside δ_h.
  const int x_max = rj.hazard.xb - width + 1;
  const int y_max = rj.hazard.yb - height + 1;
  for (int y = y_max; y >= rj.hazard.ya; --y) {
    for (int x = rj.hazard.xa; x <= x_max; ++x) {
      const Rect droplet = Rect::from_size(x, y, width, height);
      if (rj.goal.contains(droplet)) {
        os << '*';
        continue;
      }
      const auto action = strategy.action(droplet);
      os << (action ? action_glyph(*action) : ' ');
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace meda::core
