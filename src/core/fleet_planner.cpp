#include "core/fleet_planner.hpp"

#include <cmath>
#include <queue>
#include <unordered_map>

#include "util/check.hpp"

namespace meda::core {

namespace {

struct TimedState {
  Rect rect;
  std::size_t t = 0;
  friend bool operator==(const TimedState&, const TimedState&) = default;
};

struct TimedStateHash {
  std::size_t operator()(const TimedState& s) const noexcept {
    return std::hash<Rect>{}(s.rect) ^
           (std::hash<std::size_t>{}(s.t) * 0x9e3779b97f4a7c15ull);
  }
};

/// Position of an already-planned droplet at cycle @p t (parked at its
/// final position beyond its trajectory's end).
const Rect& position_at(const std::vector<Rect>& trajectory, std::size_t t) {
  return t < trajectory.size() ? trajectory[t] : trajectory.back();
}

}  // namespace

FleetPlan plan_fleet(std::span<const assay::RoutingJob> jobs,
                     const Rect& chip, const FleetPlannerConfig& config) {
  MEDA_REQUIRE(!jobs.empty(), "fleet planning needs at least one job");
  MEDA_REQUIRE(config.min_gap >= 1, "separation gap must be positive");
  MEDA_REQUIRE(config.horizon >= 1, "horizon must be positive");
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    MEDA_REQUIRE(jobs[i].start.valid() &&
                     jobs[i].hazard.contains(jobs[i].start),
                 "job " + std::to_string(i) + ": invalid start");
    for (std::size_t j = i + 1; j < jobs.size(); ++j)
      MEDA_REQUIRE(
          jobs[i].start.manhattan_gap(jobs[j].start) >= config.min_gap,
          "starts of jobs " + std::to_string(i) + " and " +
              std::to_string(j) + " violate the separation rule");
  }

  FleetPlan plan;
  std::vector<std::vector<Rect>> planned;  // trajectories of planned fleet

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const assay::RoutingJob& job = jobs[i];

    // A position is blocked at cycle t if it conflicts with any planned
    // trajectory's position at t.
    const auto blocked = [&](const Rect& rect, std::size_t t) {
      for (const auto& trajectory : planned)
        if (rect.manhattan_gap(position_at(trajectory, t)) < config.min_gap)
          return true;
      return false;
    };
    // Parking check: staying at @p rect from cycle t to the horizon.
    const auto can_park = [&](const Rect& rect, std::size_t t) {
      for (std::size_t k = t; k <= config.horizon; ++k)
        if (blocked(rect, k)) return false;
      return true;
    };

    // BFS over (rect, t) — unit step costs, so BFS is optimal in time.
    std::unordered_map<TimedState, std::pair<TimedState, std::optional<Action>>,
                       TimedStateHash>
        parent;
    std::queue<TimedState> frontier;
    const TimedState start{job.start, 0};
    MEDA_REQUIRE(!blocked(job.start, 0),
                 "job " + std::to_string(i) +
                     ": start conflicts with a planned trajectory");
    parent.emplace(start, std::pair{start, std::optional<Action>{}});
    frontier.push(start);
    std::optional<TimedState> arrival;

    while (!frontier.empty() && !arrival.has_value()) {
      const TimedState current = frontier.front();
      frontier.pop();
      if (job.goal.contains(current.rect) &&
          can_park(current.rect, current.t)) {
        arrival = current;
        break;
      }
      if (current.t >= config.horizon) continue;
      const std::size_t next_t = current.t + 1;
      // Hold, then every enabled action.
      const auto try_push = [&](const Rect& target,
                                std::optional<Action> action) {
        if (!job.hazard.contains(target)) return;
        if (blocked(target, next_t)) return;
        const TimedState next{target, next_t};
        if (parent.contains(next)) return;
        parent.emplace(next, std::pair{current, action});
        frontier.push(next);
      };
      try_push(current.rect, std::nullopt);
      for (const Action a : kAllActions) {
        if (!action_enabled(a, current.rect, config.rules, chip)) continue;
        try_push(apply(a, current.rect), a);
      }
    }

    if (!arrival.has_value()) return plan;  // infeasible under this order

    // Reconstruct the trajectory and the action sequence.
    std::vector<Rect> trajectory(arrival->t + 1);
    std::vector<std::optional<Action>> actions(arrival->t);
    TimedState cursor = *arrival;
    while (cursor.t > 0) {
      trajectory[cursor.t] = cursor.rect;
      const auto& [prev, action] = parent.at(cursor);
      actions[cursor.t - 1] = action;
      cursor = prev;
    }
    trajectory[0] = job.start;
    planned.push_back(std::move(trajectory));
    plan.steps.push_back(std::move(actions));
  }

  // Pad every droplet's plan to the fleet makespan with holds.
  plan.makespan = 0;
  for (const auto& steps : plan.steps)
    plan.makespan = std::max(plan.makespan, steps.size());
  for (auto& steps : plan.steps) steps.resize(plan.makespan, std::nullopt);
  for (auto& trajectory : planned) {
    while (trajectory.size() <= plan.makespan)
      trajectory.push_back(trajectory.back());
  }
  plan.trajectories = std::move(planned);
  plan.feasible = true;
  return plan;
}

ReplicaCorridorPlan plan_replica_corridors(const assay::RoutingJob& rj,
                                           int replicas, const Rect& chip,
                                           int funnel_margin) {
  MEDA_REQUIRE(replicas >= 1, "replica count must be positive");
  MEDA_REQUIRE(rj.start.valid() && rj.goal.valid(),
               "replica corridors need a valid start and goal");
  MEDA_REQUIRE(funnel_margin >= 0, "funnel margin must be non-negative");
  const Rect zone = rj.hazard.intersection_with(chip);
  MEDA_REQUIRE(zone.valid(), "hazard zone lies off the chip");

  ReplicaCorridorPlan plan;
  plan.feasible = true;

  // The bands are stacked perpendicular to the dominant travel axis, so
  // each replica crosses the zone inside its own slice.
  const bool horizontal =
      std::abs(rj.goal.center_x() - rj.start.center_x()) >=
      std::abs(rj.goal.center_y() - rj.start.center_y());

  // Full-thickness slabs of the zone across the endpoints: every band stays
  // reachable from the dispense port and can converge back on the goal.
  const auto slab = [&](const Rect& anchor) {
    if (horizontal)
      return Rect{std::max(zone.xa, anchor.xa - funnel_margin), zone.ya,
                  std::min(zone.xb, anchor.xb + funnel_margin), zone.yb};
    return Rect{zone.xa, std::max(zone.ya, anchor.ya - funnel_margin),
                zone.xb, std::min(zone.yb, anchor.yb + funnel_margin)};
  };
  plan.start_funnel = slab(rj.start);
  plan.goal_funnel = slab(rj.goal);

  // A band must fit the droplet's cross-axis dimension plus one spare cell
  // of slack, or its masked synthesis is dead on arrival.
  const int cross_extent = horizontal ? zone.height() : zone.width();
  const int cross_need =
      1 + (horizontal ? std::max(rj.start.height(), rj.goal.height())
                      : std::max(rj.start.width(), rj.goal.width()));
  const bool disjoint =
      replicas >= 2 && cross_extent >= replicas * cross_need;

  plan.corridors.resize(static_cast<std::size_t>(replicas));
  if (!disjoint) {
    // Best-effort degradation: every replica owns the whole zone, unmasked.
    for (ReplicaCorridor& corridor : plan.corridors) corridor.band = zone;
    return plan;
  }
  plan.disjoint = true;
  const int base = cross_extent / replicas;
  const int rem = cross_extent % replicas;
  int lo = horizontal ? zone.ya : zone.xa;
  for (int i = 0; i < replicas; ++i) {
    const int hi = lo + base + (i < rem ? 1 : 0) - 1;
    plan.corridors[static_cast<std::size_t>(i)].band =
        horizontal ? Rect{zone.xa, lo, zone.xb, hi}
                   : Rect{lo, zone.ya, hi, zone.yb};
    lo = hi + 1;
  }
  for (int i = 0; i < replicas; ++i)
    for (int j = 0; j < replicas; ++j)
      if (j != i)
        plan.corridors[static_cast<std::size_t>(i)].masked.push_back(
            plan.corridors[static_cast<std::size_t>(j)].band);
  return plan;
}

}  // namespace meda::core
