#pragma once

#include <cstdint>
#include <vector>

#include "core/mdp.hpp"

/// @file compiled_mdp.hpp
/// Compiled sparse form of a RoutingMdp: the solver-facing representation
/// behind the synthesis fast path.
///
/// The explicit RoutingMdp is a pointer-chasing `vector<vector<Choice>>`
/// whose per-choice self-loop mass is recomputed on every Bellman sweep.
/// Compiling flattens it once into CSR-style contiguous arrays:
///
///  - per-state choice ranges (`choice_offset`),
///  - per-choice transition ranges (`trans_offset`) over flat
///    `target`/`probability` arrays with the self-loop branch *factored
///    out* — a choice with stay-probability q keeps only its off-state
///    branches and carries the precomputed committed-value scale
///    `1/(1−q)` (0 marks a pure self-loop),
///  - a goal-anchored sweep order: droplet states in reverse-BFS distance
///    from the goal set, so Gauss-Seidel value updates propagate from the
///    goal outward and converge in a near-constant number of sweeps
///    instead of O(diameter).
///
/// The flat layout preserves the RoutingMdp's state and per-state choice
/// order, so a choice's local index (`c - choice_offset[s]`) is exactly the
/// RoutingMdp choice index — Solution::chosen stays interchangeable between
/// the legacy and compiled solvers.

namespace meda::core {

/// Flattened CSR view of one routing-job MDP (see file comment).
struct CompiledMdp {
  /// Droplet-state count (states 0..n-1; the hazard sink is index n).
  std::uint32_t num_droplet_states = 0;
  std::uint32_t start = 0;

  // CSR ranges: choices of state s are [choice_offset[s], choice_offset[s+1]),
  // off-state transitions of choice c are [trans_offset[c], trans_offset[c+1]).
  std::vector<std::uint32_t> choice_offset;  ///< size n+1
  std::vector<std::uint32_t> trans_offset;   ///< size choices+1

  // Per-choice precomputations.
  std::vector<double> cost;             ///< reward charged per attempt
  std::vector<double> inv_one_minus_q;  ///< 1/(1−q); 0.0 ⇒ pure self-loop

  // Per-transition flat arrays (self-loop branches removed).
  std::vector<std::uint32_t> target;
  std::vector<double> probability;

  std::vector<std::uint8_t> is_goal;  ///< per droplet state

  /// Goal-anchored Gauss-Seidel sweep order over the droplet states:
  /// reverse-BFS layers from the goal set first, then any states the goal
  /// cannot be reached from (in index order; they keep value 0/∞ anyway).
  std::vector<std::uint32_t> sweep_order;
  /// Number of leading sweep_order entries reached by the reverse BFS.
  std::uint32_t goal_reachable = 0;

  std::uint32_t hazard_sink() const { return num_droplet_states; }
  std::size_t state_count() const { return num_droplet_states + 1u; }
  std::size_t choice_count() const { return cost.size(); }
};

/// Flattens @p mdp into the compiled form (one pass over the graph plus one
/// reverse BFS). Emits a `vi.compile` span and compile-shape metrics when
/// observability is enabled.
CompiledMdp compile_mdp(const RoutingMdp& mdp);

}  // namespace meda::core
