#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/mdp.hpp"
#include "geometry/rect.hpp"
#include "model/action.hpp"
#include "util/matrix.hpp"

/// @file compiled_mdp.hpp
/// Compiled sparse form of a RoutingMdp: the solver-facing representation
/// behind the synthesis fast path.
///
/// The explicit RoutingMdp is a pointer-chasing `vector<vector<Choice>>`
/// whose per-choice self-loop mass is recomputed on every Bellman sweep.
/// Compiling flattens it once into CSR-style contiguous arrays:
///
///  - per-state choice ranges (`choice_offset`),
///  - per-choice transition ranges (`trans_offset`) over flat
///    `target`/`probability` arrays with the self-loop branch *factored
///    out* — a choice with stay-probability q keeps only its off-state
///    branches and carries the precomputed committed-value scale
///    `1/(1−q)` (0 marks a pure self-loop),
///  - a goal-anchored sweep order: droplet states in reverse-BFS distance
///    from the goal set, so Gauss-Seidel value updates propagate from the
///    goal outward and converge in a near-constant number of sweeps
///    instead of O(diameter).
///
/// The flat layout preserves the RoutingMdp's state and per-state choice
/// order, so a choice's local index (`c - choice_offset[s]`) is exactly the
/// RoutingMdp choice index — Solution::chosen stays interchangeable between
/// the legacy and compiled solvers.

namespace meda::core {

/// Flattened CSR view of one routing-job MDP (see file comment).
struct CompiledMdp {
  /// Droplet-state count (states 0..n-1; the hazard sink is index n).
  std::uint32_t num_droplet_states = 0;
  std::uint32_t start = 0;

  // CSR ranges: choices of state s are [choice_offset[s], choice_offset[s+1]),
  // off-state transitions of choice c are [trans_offset[c], trans_offset[c+1]).
  std::vector<std::uint32_t> choice_offset;  ///< size n+1
  std::vector<std::uint32_t> trans_offset;   ///< size choices+1

  // Per-choice precomputations.
  std::vector<double> cost;             ///< reward charged per attempt
  std::vector<double> inv_one_minus_q;  ///< 1/(1−q); 0.0 ⇒ pure self-loop

  // Per-transition flat arrays (self-loop branches removed).
  std::vector<std::uint32_t> target;
  std::vector<double> probability;

  std::vector<std::uint8_t> is_goal;  ///< per droplet state

  /// Goal-anchored Gauss-Seidel sweep order over the droplet states:
  /// reverse-BFS layers from the goal set first, then any states the goal
  /// cannot be reached from (in index order; they keep value 0/∞ anyway).
  std::vector<std::uint32_t> sweep_order;
  /// Number of leading sweep_order entries reached by the reverse BFS.
  std::uint32_t goal_reachable = 0;

  /// Reverse adjacency, CSR-style: the source states with an off-state edge
  /// into s are pred_state[pred_offset[s]..pred_offset[s+1]), in ascending
  /// source order (one entry per edge, so multiplicity is preserved). The
  /// warm solver's dirty-set propagation walks this index; the compile-time
  /// reverse BFS that builds sweep_order uses the same arrays.
  std::vector<std::uint32_t> pred_offset;  ///< size n+1
  std::vector<std::uint32_t> pred_state;   ///< size = edges into droplet states

  std::uint32_t hazard_sink() const { return num_droplet_states; }
  std::size_t state_count() const { return num_droplet_states + 1u; }
  std::size_t choice_count() const { return cost.size(); }
};

/// Flattens @p mdp into the compiled form (one pass over the graph plus one
/// reverse BFS). Emits a `vi.compile` span and compile-shape metrics when
/// observability is enabled.
CompiledMdp compile_mdp(const RoutingMdp& mdp);

/// Geometry side table a CompiledMdp needs for in-place health patching:
/// the per-state droplet rectangles, the action behind every flat choice,
/// and the rect → state interning map of the original exploration. Kept
/// separate from CompiledMdp so the solver's hot arrays stay lean.
struct CompiledGeometry {
  std::vector<Rect> droplets;        ///< per droplet state
  std::vector<Action> choice_action; ///< per flat choice (CompiledMdp order)
  std::unordered_map<Rect, std::uint32_t> state_index;
};

/// Builds the geometry side table for the CompiledMdp compiled from @p mdp.
CompiledGeometry compile_geometry(const RoutingMdp& mdp);

/// Outcome of patch_compiled_mdp.
struct MdpPatch {
  /// The delta was probability/cost-only and the model was updated in
  /// place. false ⇒ the delta changed the transition topology (a cell died
  /// or revived, adding/removing outcomes or reachable states — the
  /// quarantine/parole case); the model is left partially written and must
  /// be recompiled from scratch.
  bool patched = false;
  /// Droplet states whose choice parameters actually changed, ascending —
  /// the dirty seed set for solve_reach_avoid_warm.
  std::vector<std::uint32_t> dirty_states;
  std::size_t states_rescanned = 0;  ///< states whose choices were recomputed
  std::size_t choices_changed = 0;   ///< choices with any param delta
};

/// Patches @p mdp in place for a localized force change instead of a full
/// re-flatten: recomputes the outcome distributions only for states whose
/// influence box (droplet inflated by 2, covering every frontier and target
/// pattern an action can touch) contains a changed cell, and rewrites their
/// choice costs / probabilities / self-loop scales. The transition targets
/// must be unchanged — any added, removed, or retargeted outcome (possible
/// because zero-probability branches are omitted from the model) aborts the
/// patch with patched == false. Topology-preserving patches keep sweep_order
/// and the predecessor index valid, and leave the arrays byte-identical to a
/// fresh compile of the same job under @p force.
///
/// @param geometry   side table from compile_geometry for the same model
/// @param force      chip-sized force matrix the model should now reflect
/// @param hazard     the routing job's hazard bounds used at build time
/// @param chip       chip bounds
/// @param changed_cells  cells whose force changed (health_delta_cells)
/// @param wear_penalty_lambda  λ the model was built with
MdpPatch patch_compiled_mdp(CompiledMdp& mdp, const CompiledGeometry& geometry,
                            const DoubleMatrix& force, const Rect& hazard,
                            const Rect& chip,
                            const std::vector<Vec2i>& changed_cells,
                            double wear_penalty_lambda = 0.0);

}  // namespace meda::core
